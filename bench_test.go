// Benchmark harness regenerating every experiment in DESIGN.md's index
// (E1–E23), one benchmark per paper table/figure/claim. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the quantities the paper argues about via
// b.ReportMetric (conflicts, decisions, ratios…), so the "shape" of each
// claim — who wins and by roughly what factor — is visible directly in
// the benchmark output. EXPERIMENTS.md records paper-claim vs measured.
package sateda

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/atpg"
	"repro/internal/bmc"
	"repro/internal/cec"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/cover"
	"repro/internal/csat"
	"repro/internal/delay"
	"repro/internal/dpll"
	"repro/internal/euf"
	"repro/internal/funcvec"
	"repro/internal/gen"
	"repro/internal/hwsat"
	"repro/internal/localsearch"
	"repro/internal/portfolio"
	"repro/internal/preprocess"
	"repro/internal/reclearn"
	"repro/internal/redund"
	"repro/internal/route"
	"repro/internal/solver"
	"repro/internal/xtalk"
)

// E1 (Table 1): CNF encoding throughput over a large circuit.
func BenchmarkE01_EncodeCircuit(b *testing.B) {
	c := circuit.ArrayMultiplier(8)
	b.ResetTimer()
	var clauses int
	for i := 0; i < b.N; i++ {
		e := circuit.Encode(c)
		clauses = e.F.NumClauses()
	}
	b.ReportMetric(float64(clauses), "clauses")
}

// E2 (Figure 1): property objective solving on the example circuit.
func BenchmarkE02_Figure1Property(b *testing.B) {
	c := circuit.Figure1()
	for i := 0; i < b.N; i++ {
		f, _ := circuit.EncodeProperty(c, c.Outputs[0], true)
		s := solver.FromFormula(f, solver.Options{})
		if s.Solve() != solver.Sat {
			b.Fatal("Figure 1 objective must be SAT")
		}
	}
}

// E3 (Figure 2): the generic template instantiated as DPLL vs GRASP.
func BenchmarkE03_SearchConfigs(b *testing.B) {
	php := gen.Pigeonhole(6)
	rnd := gen.Random3SATHard(60, 11)
	run := func(name string, f *cnf.Formula, solve func(*cnf.Formula) int64) {
		b.Run(name, func(b *testing.B) {
			var effort int64
			for i := 0; i < b.N; i++ {
				effort = solve(f)
			}
			b.ReportMetric(float64(effort), "decisions")
		})
	}
	cdcl := func(f *cnf.Formula) int64 {
		s := solver.FromFormula(f, solver.Options{})
		s.Solve()
		return s.Stats.Decisions
	}
	classic := func(f *cnf.Formula) int64 {
		res := dpll.Solve(f, dpll.Options{})
		return res.Stats.Decisions
	}
	run("php6/dpll", php, classic)
	run("php6/grasp", php, cdcl)
	run("rand60/dpll", rnd, classic)
	run("rand60/grasp", rnd, cdcl)
}

// E4 (§4.1 items 1-2): non-chronological backtracking + clause recording
// vs chronological search on structured UNSAT instances.
func BenchmarkE04_Backjumping(b *testing.B) {
	php := gen.Pigeonhole(7)
	cases := map[string]solver.Options{
		"chronological":    {Chronological: true},
		"nonchronological": {},
		"chrono+nolearn":   {Chronological: true, NoLearning: true},
	}
	for name, opt := range cases {
		b.Run(name, func(b *testing.B) {
			var st solver.Stats
			for i := 0; i < b.N; i++ {
				s := solver.FromFormula(php, opt)
				if s.Solve() != solver.Unsat {
					b.Fatal("PHP(7) must be UNSAT")
				}
				st = s.Stats
			}
			b.ReportMetric(float64(st.Conflicts), "conflicts")
			b.ReportMetric(float64(st.MaxJump), "maxjump")
		})
	}
}

// E5 (§4.1 item 3): relevance-based learning vs activity deletion vs
// keeping everything.
func BenchmarkE05_Relevance(b *testing.B) {
	f := gen.Random3SATHard(100, 3)
	cases := map[string]solver.Options{
		"activity":   {MaxLearnts: 200},
		"relevance3": {Deletion: solver.DeleteByRelevance, RelevanceBound: 3, MaxLearnts: 200},
		"keepall":    {Deletion: solver.DeleteNever},
		"nolearning": {NoLearning: true, MaxConflicts: 200000},
	}
	for name, opt := range cases {
		b.Run(name, func(b *testing.B) {
			var st solver.Stats
			for i := 0; i < b.N; i++ {
				s := solver.FromFormula(f, opt)
				s.Solve()
				st = s.Stats
			}
			b.ReportMetric(float64(st.Conflicts), "conflicts")
			b.ReportMetric(float64(st.MaxLearnts), "peakDB")
		})
	}
}

// E6 (Figure 3): conflict analysis learns (¬x1 ∨ ¬w ∨ y3).
func BenchmarkE06_Figure3Conflict(b *testing.B) {
	c := circuit.Figure3()
	for i := 0; i < b.N; i++ {
		f := circuit.Encode(c)
		s := solver.FromFormula(f.F, solver.Options{})
		// Objective w=1 ∧ y3=0 (the figure's setting); x1 then cannot
		// be 1: the solver must prove the conflict.
		w := f.Lit(c.NodeByName("w"), true)
		y3 := f.Lit(c.NodeByName("y3"), false)
		x1 := f.Lit(c.NodeByName("x1"), true)
		if s.Solve(w, y3, x1) != solver.Unsat {
			b.Fatal("x1=1,w=1,y3=0 must conflict")
		}
	}
}

// E7 (Figure 4 / §4.2): recursive learning on the CNF of untestable
// (redundant) fault ATPG instances — the UNSAT class it targets. The
// paper's claim: recorded implicates decide such instances with little
// or no search. Workload: every redundant fault of a circuit family
// with injected redundancies.
func BenchmarkE07_RecLearnRedundant(b *testing.B) {
	// A circuit with several redundant cones: ORs fed by AND(a, NOT a).
	build := func() *circuit.Circuit {
		c := circuit.New()
		var feeds []circuit.NodeID
		for k := 0; k < 3; k++ {
			a := c.AddInput(fmt.Sprintf("a%d", k))
			na := c.AddGate(circuit.Not, fmt.Sprintf("na%d", k), a)
			feeds = append(feeds, c.AddGate(circuit.And, fmt.Sprintf("dead%d", k), a, na))
		}
		x := c.AddInput("x")
		z := c.AddGate(circuit.Or, "z", append(feeds, x)...)
		c.MarkOutput(z)
		return c
	}
	c := build()
	var miters []*cnf.Formula
	for _, flt := range atpg.FaultUniverse(c) {
		m := atpg.BuildMiter(c, flt)
		if !m.Detectable {
			continue
		}
		f, _ := circuit.EncodeProperty(m.C, m.Diff, true)
		s := solver.FromFormula(f.Clone(), solver.Options{})
		if s.Solve() == solver.Unsat {
			miters = append(miters, f)
		}
	}
	b.Run("cdcl-only", func(b *testing.B) {
		var conflicts int64
		for i := 0; i < b.N; i++ {
			conflicts = 0
			for _, f := range miters {
				s := solver.FromFormula(f, solver.Options{})
				if s.Solve() != solver.Unsat {
					b.Fatal("redundant miter must be UNSAT")
				}
				conflicts += s.Stats.Conflicts
			}
		}
		b.ReportMetric(float64(conflicts), "conflicts")
		b.ReportMetric(0, "provedByLearning")
	})
	b.Run("reclearn-depth1", func(b *testing.B) {
		var conflicts int64
		var proved int
		for i := 0; i < b.N; i++ {
			conflicts, proved = 0, 0
			for _, f := range miters {
				res := reclearn.Learn(f, nil, reclearn.Options{MaxDepth: 1, MaxWidth: 4})
				if res.Unsat {
					proved++ // decided without any search
					continue
				}
				strengthened, _ := reclearn.Strengthen(f, reclearn.Options{MaxDepth: 1, MaxWidth: 4})
				s := solver.FromFormula(strengthened, solver.Options{})
				if s.Solve() != solver.Unsat {
					b.Fatal("redundant miter must be UNSAT")
				}
				conflicts += s.Stats.Conflicts
			}
		}
		b.ReportMetric(float64(conflicts), "conflicts")
		b.ReportMetric(float64(proved), "provedByLearning")
	})
}

// E8 (Tables 2-3 / §5): solving circuit objectives with and without the
// justification-frontier layer.
func BenchmarkE08_JustificationLayer(b *testing.B) {
	c := circuit.MuxTree(4)
	for _, layered := range []bool{false, true} {
		name := "plain"
		if layered {
			name = "structural"
		}
		b.Run(name, func(b *testing.B) {
			var decisions int64
			for i := 0; i < b.N; i++ {
				f, enc := circuit.EncodeProperty(c, c.Outputs[0], true)
				s := solver.FromFormula(f, solver.Options{})
				if layered {
					csat.Attach(c, enc, s, csat.Options{Backtrace: true})
				}
				if s.Solve() != solver.Sat {
					b.Fatal("mux objective must be SAT")
				}
				decisions = s.Stats.Decisions
			}
			b.ReportMetric(float64(decisions), "decisions")
		})
	}
}

// E9 (§5): overspecification — fraction of specified primary inputs in
// ATPG patterns, plain CNF vs structural layer.
func BenchmarkE09_SpecifiedInputs(b *testing.B) {
	c := circuit.MuxTree(4)
	for _, structural := range []bool{false, true} {
		name := "plain"
		if structural {
			name = "structural"
		}
		b.Run(name, func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				rep := atpg.GenerateTests(c, atpg.Options{Structural: structural, Seed: 2})
				if rep.PatternBits > 0 {
					frac = float64(rep.SpecifiedBits) / float64(rep.PatternBits)
				}
			}
			b.ReportMetric(100*frac, "%specified")
		})
	}
}

// E10 (§6): equivalency reasoning on equivalence-rich formulas — a hard
// random 3-SAT instance whose variables were duplicated and tied with
// equivalence clauses. Substitution collapses the doubled variable
// space back to the original.
func BenchmarkE10_EquivReasoning(b *testing.B) {
	f := gen.DuplicateWithEquivalences(gen.Random3SATHard(70, 5), 5)
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var conflicts int64
			var substituted int
			for i := 0; i < b.N; i++ {
				work := f
				if on {
					res := preprocess.Simplify(f, preprocess.Options{Equivalences: true})
					substituted = res.Stats.VarsSubstituted
					if res.Decided != cnf.Undef {
						conflicts = 0
						continue
					}
					work = res.Formula
				}
				s := solver.FromFormula(work, solver.Options{})
				if s.Solve() == solver.Unknown {
					b.Fatal("must decide")
				}
				conflicts = s.Stats.Conflicts
			}
			b.ReportMetric(float64(conflicts), "conflicts")
			b.ReportMetric(float64(substituted), "varsRemoved")
		})
	}
}

// E11 (§6): randomization + restarts on satisfiable instances.
func BenchmarkE11_Restarts(b *testing.B) {
	f := gen.Queens(20)
	cases := map[string]solver.Options{
		"none":        {Restart: solver.RestartNone, Decide: solver.DecideOrdered},
		"luby+random": {Restart: solver.RestartLuby, RestartBase: 50, RandomFreq: 0.05, Seed: 3, Decide: solver.DecideOrdered},
	}
	for name, opt := range cases {
		b.Run(name, func(b *testing.B) {
			var st solver.Stats
			for i := 0; i < b.N; i++ {
				s := solver.FromFormula(f, opt)
				if s.Solve() != solver.Sat {
					b.Fatal("queens(20) is SAT")
				}
				st = s.Stats
			}
			b.ReportMetric(float64(st.Decisions), "decisions")
			b.ReportMetric(float64(st.Restarts), "restarts")
		})
	}
}

// E12 (§6): incremental vs from-scratch SAT across an ATPG fault list.
func BenchmarkE12_Incremental(b *testing.B) {
	c := circuit.RippleCarryAdder(6)
	for _, incr := range []bool{false, true} {
		name := "scratch"
		if incr {
			name = "incremental"
		}
		b.Run(name, func(b *testing.B) {
			var conflicts int64
			for i := 0; i < b.N; i++ {
				rep := atpg.GenerateTests(c, atpg.Options{Incremental: incr, Seed: 1})
				conflicts = rep.Conflicts
			}
			b.ReportMetric(float64(conflicts), "conflicts")
		})
	}
}

// E13 (§6): the reconfigurable-hardware deduction model — cycles vs
// sequential BCP steps. Circuit CNF is the deduction-heavy class the
// hardware papers target: each wave implies a whole logic level.
func BenchmarkE13_HardwareSAT(b *testing.B) {
	workloads := map[string]*cnf.Formula{}
	mult := circuit.ArrayMultiplier(4)
	enc := circuit.Encode(mult)
	mf := enc.F.Clone()
	// Objective on the product's top bit forces wide deduction.
	mf.Add(cnf.PosLit(enc.VarOf[mult.Outputs[len(mult.Outputs)-2]]))
	workloads["multiplier"] = mf
	// Implication tree: a unit root implying a complete binary tree of
	// depth 10 — each wave latches an entire level in parallel (the
	// "specific class of instances" the hardware papers accelerate).
	tree := cnf.New(1 << 11)
	tree.AddDIMACS(1)
	for p := 1; p < 1<<10; p++ {
		tree.AddDIMACS(-p, 2*p)
		tree.AddDIMACS(-p, 2*p+1)
	}
	workloads["impltree"] = tree
	for name, f := range workloads {
		b.Run(name, func(b *testing.B) {
			var st hwsat.Stats
			for i := 0; i < b.N; i++ {
				res := hwsat.Solve(f, 0)
				if res.Unknown {
					b.Fatal("must decide")
				}
				st = res.Stats
			}
			b.ReportMetric(float64(st.Cycles), "hwCycles")
			b.ReportMetric(float64(hwsat.SoftwareBCPSteps(st)), "swSteps")
			b.ReportMetric(st.Parallelism(), "parallelism")
		})
	}
}

// E14 (§4): local search vs backtrack search; only the latter proves
// UNSAT.
func BenchmarkE14_LocalVsBacktrack(b *testing.B) {
	sat := gen.RandomKSAT(100, 380, 3, 4) // below threshold: satisfiable
	unsat := gen.Pigeonhole(6)
	b.Run("walksat/sat", func(b *testing.B) {
		found := 0
		for i := 0; i < b.N; i++ {
			res := localsearch.Solve(sat, localsearch.Options{Algorithm: localsearch.WalkSAT, Seed: int64(i), MaxFlips: 100000})
			if res.Sat {
				found++
			}
		}
		b.ReportMetric(float64(found)/float64(b.N), "solveRate")
	})
	b.Run("cdcl/sat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := solver.FromFormula(sat, solver.Options{})
			if s.Solve() != solver.Sat {
				b.Fatal("expected SAT")
			}
		}
		b.ReportMetric(1, "solveRate")
	})
	b.Run("walksat/unsat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := localsearch.Solve(unsat, localsearch.Options{Algorithm: localsearch.WalkSAT, Seed: int64(i), MaxFlips: 2000, MaxTries: 2})
			if res.Sat {
				b.Fatal("impossible: PHP(6) is UNSAT")
			}
		}
		b.ReportMetric(0, "proofRate") // local search can never prove it
	})
	b.Run("cdcl/unsat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := solver.FromFormula(unsat, solver.Options{})
			if s.Solve() != solver.Unsat {
				b.Fatal("expected UNSAT")
			}
		}
		b.ReportMetric(1, "proofRate")
	})
}

// E15 (§3 ATPG): the full test-generation flow per circuit family.
func BenchmarkE15_ATPG(b *testing.B) {
	families := []struct {
		name string
		c    *circuit.Circuit
	}{
		{"c17", circuit.C17()},
		{"adder8", circuit.RippleCarryAdder(8)},
		{"mult4", circuit.ArrayMultiplier(4)},
		{"dag", circuit.RandomDAG(10, 60, 3, 8)},
		{"alu6", circuit.ALU(6)},
	}
	for _, fam := range families {
		b.Run(fam.name, func(b *testing.B) {
			var rep *atpg.Report
			for i := 0; i < b.N; i++ {
				rep = atpg.GenerateTests(fam.c, atpg.Options{FaultSim: true, Compact: true, Seed: 7})
			}
			b.ReportMetric(100*rep.Coverage(), "%coverage")
			b.ReportMetric(float64(len(rep.Tests)), "tests")
			b.ReportMetric(float64(rep.UncompactedTests), "testsPreCompact")
			b.ReportMetric(float64(rep.SATCalls), "satCalls")
			b.ReportMetric(float64(rep.Redundant), "redundant")
		})
	}
}

// E16 (§3 CEC): plain miter vs internal-equivalence engine on
// structurally similar pairs.
func BenchmarkE16_CEC(b *testing.B) {
	a := circuit.RippleCarryAdder(8)
	// A structurally different but functionally identical adder (carry
	// logic in NAND-NAND form).
	alt := circuit.RippleCarryAdderNAND(8)
	modes := map[string]cec.Options{
		"plain":    {},
		"internal": {Internal: true, Seed: 3},
		"strash":   {Strash: true},
	}
	for name, mode := range modes {
		b.Run(name, func(b *testing.B) {
			var res *cec.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = cec.Check(a, alt, mode)
				if err != nil || !res.Equivalent {
					b.Fatal("adders must be equivalent")
				}
			}
			b.ReportMetric(float64(res.Conflicts), "conflicts")
			b.ReportMetric(float64(res.SATCalls), "satCalls")
		})
	}
}

// E17 (§3 BMC): counterexample search depth scaling and induction.
func BenchmarkE17_BMC(b *testing.B) {
	b.Run("counter-depth24", func(b *testing.B) {
		q := bmc.NewCounter(5, 24)
		var res *bmc.Result
		for i := 0; i < b.N; i++ {
			res = bmc.Check(q, 30, bmc.Options{})
		}
		if !res.Violated || res.Depth != 24 {
			b.Fatal("depth must be 24")
		}
		b.ReportMetric(float64(res.SATCalls), "satCalls")
		b.ReportMetric(float64(res.Conflicts), "conflicts")
	})
	b.Run("ring-induction", func(b *testing.B) {
		q := bmc.NewRingOneHot(8)
		for i := 0; i < b.N; i++ {
			proved, decided := bmc.Induction(q, 1, bmc.Options{})
			if !proved || !decided {
				b.Fatal("induction must prove the ring invariant")
			}
		}
	})
}

// E18 (§3 delay): sensitizable vs topological delay; false paths in
// carry-skip adders.
func BenchmarkE18_Delay(b *testing.B) {
	cases := []struct {
		name string
		c    *circuit.Circuit
	}{
		{"ripple8", circuit.RippleCarryAdder(8)},
		{"carryskip8", circuit.CarrySkipAdder(8, 4)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var res *delay.Result
			for i := 0; i < b.N; i++ {
				res = delay.ComputeDelay(tc.c, delay.Options{MaxPaths: 5000})
			}
			b.ReportMetric(float64(res.Topological), "topoDelay")
			b.ReportMetric(float64(res.Sensitizable), "sensDelay")
			b.ReportMetric(float64(res.FalsePaths), "falsePaths")
		})
	}
}

// E19 (§3 covering): SAT optimizer vs branch and bound.
func BenchmarkE19_Covering(b *testing.B) {
	p := cover.RandomUnate(25, 18, 3, 6)
	b.Run("sat", func(b *testing.B) {
		var res *cover.Result
		for i := 0; i < b.N; i++ {
			res = cover.SolveSAT(p, cover.Options{})
		}
		b.ReportMetric(float64(res.Cost), "optimum")
		b.ReportMetric(float64(res.SATCalls), "satCalls")
	})
	b.Run("bb", func(b *testing.B) {
		var res *cover.Result
		for i := 0; i < b.N; i++ {
			res = cover.SolveBB(p, cover.Options{})
		}
		b.ReportMetric(float64(res.Cost), "optimum")
		b.ReportMetric(float64(res.Nodes), "nodes")
	})
	b.Run("sat+reduce", func(b *testing.B) {
		var res *cover.Result
		for i := 0; i < b.N; i++ {
			res = cover.SolveSAT(p, cover.Options{Reduce: true})
		}
		b.ReportMetric(float64(res.Cost), "optimum")
		b.ReportMetric(float64(res.SATCalls), "satCalls")
	})
}

// E20 (§3 primes): minimum-size prime implicant computation.
func BenchmarkE20_PrimeImplicants(b *testing.B) {
	f := gen.RandomKSAT(12, 24, 3, 13)
	var res *cover.PrimeResult
	for i := 0; i < b.N; i++ {
		res = cover.MinPrimeImplicant(f, cover.Options{})
	}
	if res.Found {
		b.ReportMetric(float64(len(res.Implicant)), "size")
		b.ReportMetric(float64(res.SATCalls), "satCalls")
	}
}

// E21 (§3 routing): channel min-track search and grid routability.
func BenchmarkE21_Routing(b *testing.B) {
	b.Run("channel", func(b *testing.B) {
		ch := route.RandomChannel(12, 16, 4, 2)
		var tracks int
		for i := 0; i < b.N; i++ {
			tracks, _, _ = route.MinTracks(ch, 14, route.Options{})
		}
		b.ReportMetric(float64(tracks), "minTracks")
		b.ReportMetric(float64(ch.Density()), "density")
	})
	b.Run("grid", func(b *testing.B) {
		routable := 0
		total := 0
		for i := 0; i < b.N; i++ {
			for seed := int64(0); seed < 8; seed++ {
				g := route.RandomGrid(7, 7, 4, seed)
				res := route.RouteGrid(g, route.Options{MaxRoutesPerNet: 16})
				total++
				if res.Routable {
					routable++
				}
			}
		}
		b.ReportMetric(float64(routable)/float64(total), "routeRate")
	})
}

// E22 (§3 redundancy): identification and removal with CEC validation.
func BenchmarkE22_Redundancy(b *testing.B) {
	build := func() *circuit.Circuit {
		c := circuit.New()
		a := c.AddInput("a")
		x := c.AddInput("b")
		na := c.AddGate(circuit.Not, "na", a)
		dead := c.AddGate(circuit.And, "dead", a, na)
		or1 := c.AddGate(circuit.Or, "or1", x, dead)
		or2 := c.AddGate(circuit.Or, "or2", or1, dead)
		c.MarkOutput(or2)
		return c
	}
	var removed int
	var after int
	for i := 0; i < b.N; i++ {
		c := build()
		opt, rep := redund.Remove(c, redund.Options{})
		removed = len(rep.RemovedFaults)
		after = opt.NumGates()
	}
	b.ReportMetric(float64(removed), "removedFaults")
	b.ReportMetric(float64(after), "gatesAfter")
}

// E23 (§3 functional vectors): constrained distinct-vector generation.
func BenchmarkE23_FuncVec(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		m := funcvec.NewModel()
		a := m.Word("a", 8)
		c := m.Word("b", 8)
		m.RequireLessEq(m.Add(a, c), m.Const(200, 9))
		m.RequireLess(m.Const(50, 8), a)
		vecs := m.Generate(32, funcvec.Options{Seed: int64(i)})
		n = len(vecs)
	}
	b.ReportMetric(float64(n), "vectors")
}

// ---- Ablation benches for design choices beyond the paper's headline
// ---- claims (DESIGN.md §5).

// E24: learned-clause minimization ablation.
func BenchmarkE24_ClauseMinimization(b *testing.B) {
	f := gen.Pigeonhole(7)
	for _, off := range []bool{false, true} {
		name := "minimize"
		if off {
			name = "nominimize"
		}
		b.Run(name, func(b *testing.B) {
			var st solver.Stats
			for i := 0; i < b.N; i++ {
				s := solver.FromFormula(f, solver.Options{NoMinimize: off})
				if s.Solve() != solver.Unsat {
					b.Fatal("PHP(7) must be UNSAT")
				}
				st = s.Stats
			}
			b.ReportMetric(float64(st.Conflicts), "conflicts")
			b.ReportMetric(float64(st.MinimizedLit), "litsRemoved")
		})
	}
}

// E25: phase-saving ablation on satisfiable structured instances.
func BenchmarkE25_PhaseSaving(b *testing.B) {
	f := gen.Queens(16)
	for _, off := range []bool{false, true} {
		name := "phasesaving"
		if off {
			name = "nophase"
		}
		b.Run(name, func(b *testing.B) {
			var st solver.Stats
			for i := 0; i < b.N; i++ {
				s := solver.FromFormula(f, solver.Options{NoPhaseSaving: off, Restart: solver.RestartLuby, RestartBase: 50})
				if s.Solve() != solver.Sat {
					b.Fatal("queens(16) is SAT")
				}
				st = s.Stats
			}
			b.ReportMetric(float64(st.Decisions), "decisions")
		})
	}
}

// E26 (§3 crosstalk): pessimistic vs true aligned noise on a one-hot
// decoded aggressor bus — the claim of "true" crosstalk analysis.
func BenchmarkE26_Crosstalk(b *testing.B) {
	c := circuit.New()
	vin := c.AddInput("vin")
	s0 := c.AddInput("s0")
	s1 := c.AddInput("s1")
	s2 := c.AddInput("s2")
	sel := []circuit.NodeID{s0, s1, s2}
	var aggr []circuit.NodeID
	for i := 0; i < 8; i++ {
		ins := make([]circuit.NodeID, 3)
		for bit := 0; bit < 3; bit++ {
			if i&(1<<bit) != 0 {
				ins[bit] = sel[bit]
			} else {
				name := fmt.Sprintf("n%d_%d", i, bit)
				if id := c.NodeByName(name); id != circuit.NoNode {
					ins[bit] = id
				} else {
					ins[bit] = c.AddGate(circuit.Not, name, sel[bit])
				}
			}
		}
		aggr = append(aggr, c.AddGate(circuit.And, fmt.Sprintf("y%d", i), ins...))
	}
	victim := c.AddGate(circuit.Buf, "victim", vin)
	for _, g := range aggr {
		c.MarkOutput(g)
	}
	c.MarkOutput(victim)
	cp := xtalk.Coupling{Victim: victim, Aggressors: aggr}
	var res *xtalk.Result
	for i := 0; i < b.N; i++ {
		res = xtalk.MaxAlignedNoise(c, cp, xtalk.Options{})
	}
	b.ReportMetric(float64(res.Pessimistic), "pessimistic")
	b.ReportMetric(float64(res.MaxNoise), "trueNoise")
	b.ReportMetric(float64(res.SATCalls), "satCalls")
}

// E27 (§3 processor verification): EUF pipeline-equivalence query size
// and time as the forwarding network deepens.
func BenchmarkE27_EUFPipeline(b *testing.B) {
	for _, stages := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("stages%d", stages), func(b *testing.B) {
			var vars, clauses int
			for i := 0; i < b.N; i++ {
				bd := euf.NewBuilder()
				op := bd.Var("op")
				src2 := bd.Var("src2")
				regVal := bd.Var("regVal")
				operand := regVal
				var sides []euf.Prop
				for st := 0; st < stages; st++ {
					hazard := euf.Eq(bd.Var(fmt.Sprintf("rs%d", st)), bd.Var(fmt.Sprintf("rd%d", st)))
					fwd := bd.Var(fmt.Sprintf("fwd%d", st))
					operand = bd.Ite(hazard, fwd, operand)
					sides = append(sides, euf.Implies(hazard, euf.Eq(fwd, regVal)))
				}
				impl := bd.Apply("alu", op, operand, src2)
				spec := bd.Apply("alu", op, regVal, src2)
				ok, res := bd.Valid(euf.Implies(euf.And(sides...), euf.Eq(impl, spec)), euf.Options{})
				if !ok {
					b.Fatal("pipeline must verify")
				}
				vars, clauses = res.Vars, res.Clauses
			}
			b.ReportMetric(float64(vars), "satVars")
			b.ReportMetric(float64(clauses), "satClauses")
		})
	}
}

// E28: proof-logging overhead and independent verification cost.
func BenchmarkE28_ProofLogging(b *testing.B) {
	f := gen.Pigeonhole(6)
	b.Run("solve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := solver.FromFormula(f, solver.Options{})
			if s.Solve() != solver.Unsat {
				b.Fatal("UNSAT expected")
			}
		}
	})
	b.Run("solve+log", func(b *testing.B) {
		var lemmas int
		for i := 0; i < b.N; i++ {
			s := solver.FromFormula(f, solver.Options{LogProof: true})
			if s.Solve() != solver.Unsat {
				b.Fatal("UNSAT expected")
			}
			lemmas = s.Proof().NumLemmas()
		}
		b.ReportMetric(float64(lemmas), "lemmas")
	})
	b.Run("solve+log+verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := solver.FromFormula(f, solver.Options{LogProof: true})
			if s.Solve() != solver.Unsat {
				b.Fatal("UNSAT expected")
			}
			if err := solver.VerifyUnsat(f, s.Proof()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E29 (§3 sequential testing): test-sequence generation by time-frame
// expansion — detection depth and SAT effort per fault class.
func BenchmarkE29_SequentialATPG(b *testing.B) {
	cases := []struct {
		name  string
		q     *bmc.Sequential
		fault func(*bmc.Sequential) atpg.Fault
	}{
		{"counter-nextstate", bmc.NewCounter(4, 5), func(q *bmc.Sequential) atpg.Fault {
			return atpg.Fault{Node: q.Comb.NodeByName("d1"), Pin: -1, StuckAt: false}
		}},
		{"ring-token", bmc.NewRingOneHot(5), func(q *bmc.Sequential) atpg.Fault {
			return atpg.Fault{Node: q.Comb.NodeByName("d0"), Pin: -1, StuckAt: false}
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var res atpg.SeqResult
			for i := 0; i < b.N; i++ {
				res = atpg.TestSequentialFault(tc.q, tc.fault(tc.q), atpg.SeqOptions{MaxDepth: 16})
			}
			if res.Status != atpg.Detected {
				b.Fatalf("fault must be sequence-detectable: %+v", res)
			}
			b.ReportMetric(float64(res.Depth), "depth")
			b.ReportMetric(float64(res.SATCalls), "satCalls")
		})
	}
}

// E30 (Preprocess() of Figure 2): full preprocessing pipeline ablation —
// clause/variable reductions and end-to-end solve effect.
func BenchmarkE30_Preprocessing(b *testing.B) {
	f := gen.DuplicateWithEquivalences(gen.Random3SATHard(60, 21), 21)
	b.Run("solve-only", func(b *testing.B) {
		var st solver.Stats
		for i := 0; i < b.N; i++ {
			s := solver.FromFormula(f, solver.Options{})
			if s.Solve() == solver.Unknown {
				b.Fatal("must decide")
			}
			st = s.Stats
		}
		b.ReportMetric(float64(st.Conflicts), "conflicts")
		b.ReportMetric(float64(f.NumClauses()), "clauses")
	})
	b.Run("preprocess+solve", func(b *testing.B) {
		var st solver.Stats
		var clauses, elim, subst int
		for i := 0; i < b.N; i++ {
			res := preprocess.Simplify(f, preprocess.All())
			clauses = res.Formula.NumClauses()
			elim = res.Stats.VarsEliminated
			subst = res.Stats.VarsSubstituted
			if res.Decided != cnf.Undef {
				continue
			}
			s := solver.FromFormula(res.Formula, solver.Options{})
			if s.Solve() == solver.Unknown {
				b.Fatal("must decide")
			}
			st = s.Stats
		}
		b.ReportMetric(float64(st.Conflicts), "conflicts")
		b.ReportMetric(float64(clauses), "clauses")
		b.ReportMetric(float64(elim+subst), "varsRemoved")
	})
}

// E31/E32 below cover this repo's own subsystems beyond the paper's
// claims: the parallel portfolio and the arena clause database.
//
// E31 (portfolio, this repo's parallel subsystem): wall-clock of 1, 2
// and 4 diversified workers racing with clause sharing. Two instance
// classes: a hard satisfiable random 3-SAT instance where the base
// configuration is unlucky and recipe diversity pays even when workers
// time-slice a single core (the §6 variance argument), and a pigeonhole
// proof where sharing feeds every worker the same lemmas (UNSAT
// cooperation; on a single-CPU host the extra workers cost more than
// they save here — the metric to watch across BENCH captures as cores
// grow).
func BenchmarkE31_Portfolio(b *testing.B) {
	instances := []struct {
		name string
		f    *cnf.Formula
	}{
		{"rand220sat", gen.Random3SATHard(220, 5)},
		{"php8", gen.Pigeonhole(8)},
	}
	for _, inst := range instances {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers%d", inst.name, workers), func(b *testing.B) {
				var res *portfolio.Result
				for i := 0; i < b.N; i++ {
					res = portfolio.Solve(context.Background(), inst.f,
						portfolio.Options{Workers: workers})
					if res.Status == solver.Unknown {
						b.Fatal("portfolio must decide")
					}
				}
				var conflicts int64
				for _, w := range res.Workers {
					conflicts += w.Stats.Conflicts
				}
				b.ReportMetric(float64(conflicts), "conflicts")
				b.ReportMetric(float64(res.SharedExported), "sharedClauses")
				b.ReportMetric(float64(res.Winner), "winnerID")
			})
		}
	}
}

// E32 (clause arena): BCP throughput and allocation behavior of the
// flat CRef-addressed clause database on hard phase-transition
// instances. Before the arena refactor the same workload allocated one
// heap object (plus a literal slice) per clause and the hot loop chased
// *clause pointers; now the whole database is one pointer-free slice,
// binary clauses propagate without touching it at all, and conflict
// analysis reuses one learnt buffer — so allocs/op (reported via
// -benchmem) collapse to the arena's few geometric growths and props/s
// measures raw propagation throughput. Compare across BENCH captures:
// the seed (pointer) representation paid several allocations per
// conflict; the arena holds allocs/op roughly flat in conflict count.
func BenchmarkE32_ClauseArena(b *testing.B) {
	instances := []struct {
		name string
		f    *cnf.Formula
	}{
		{"rand150unsat", gen.Random3SATHard(150, 9)},
		{"rand220sat", gen.Random3SATHard(220, 5)},
	}
	for _, inst := range instances {
		b.Run(inst.name, func(b *testing.B) {
			b.ReportAllocs()
			var props, conflicts, gcs int64
			for i := 0; i < b.N; i++ {
				s := solver.FromFormula(inst.f, solver.Options{})
				if s.Solve() == solver.Unknown {
					b.Fatal("must decide")
				}
				props += s.Stats.Propagations
				conflicts += s.Stats.Conflicts
				gcs += s.Stats.ArenaGCs
			}
			b.ReportMetric(float64(props)/b.Elapsed().Seconds(), "props/s")
			b.ReportMetric(float64(conflicts)/float64(b.N), "conflicts")
			b.ReportMetric(float64(gcs)/float64(b.N), "arenaGCs")
		})
	}

	// Watcher-store variant: the paged flat store against the
	// slice-of-slices baseline it replaced (kept in-tree behind
	// Options.LegacyWatcherStore precisely for this comparison). Both
	// configurations run the identical propagation algorithm and — by
	// the differential test — bit-identical searches, so allocs/op and
	// props/s differences are attributable purely to the watcher
	// representation: the baseline pays one heap object per non-empty
	// watch list (plus regrowth), the paged store a handful of
	// geometric growths of one backing slice, with freed pages recycled
	// through size-class free chains.
	for _, store := range []struct {
		name   string
		legacy bool
	}{
		{"paged", false},
		{"sliceOfSlices", true},
	} {
		for _, inst := range instances {
			b.Run(fmt.Sprintf("watchstore=%s/%s", store.name, inst.name), func(b *testing.B) {
				b.ReportAllocs()
				var props int64
				for i := 0; i < b.N; i++ {
					s := solver.FromFormula(inst.f, solver.Options{LegacyWatcherStore: store.legacy})
					if s.Solve() == solver.Unknown {
						b.Fatal("must decide")
					}
					props += s.Stats.Propagations
				}
				b.ReportMetric(float64(props)/b.Elapsed().Seconds(), "props/s")
			})
		}
	}
}

// E33 (adaptive portfolio scheduling): wall-clock of the static recipe
// table vs the adaptive supervisor on a 4-worker portfolio over the
// instance mix the paper's EDA framing implies is heterogeneous: hard
// random 3-SAT in both phases, a structured UNSAT proof (pigeonhole)
// and a CEC miter (ripple-carry vs carry-skip adder). Adaptive
// scheduling kills recipes whose progress score (conflicts/s ×
// learnt-LBD quality) falls clearly behind the leader once a grace
// period passes. Two adaptive variants: sched=adaptive respawns killed
// slots from the explore/exploit schedule (fresh lottery tickets, the
// multi-core configuration); sched=adaptive-retire (MaxRespawns < 0)
// only retires them, shrinking the portfolio toward the leaders — on a
// CPU-starved host the win comes from the cycles the losers stop
// burning. Instances faster than the grace period run bit-identically
// to static. Compare per instance across BENCH captures: adaptive must
// be wall-clock no worse everywhere and strictly better where the
// static table has a systematic loser.
func BenchmarkE33_Adaptive(b *testing.B) {
	adderMiter := func(bits int) *cnf.Formula {
		m, out, err := cec.BuildMiter(circuit.RippleCarryAdder(bits), circuit.CarrySkipAdder(bits, 4))
		if err != nil {
			b.Fatal(err)
		}
		f, _ := circuit.EncodeProperty(m, out, true)
		return f
	}
	instances := []struct {
		name string
		f    *cnf.Formula
	}{
		{"rand220sat", gen.Random3SATHard(220, 5)},
		{"rand150unsat", gen.Random3SATHard(150, 9)},
		{"php8", gen.Pigeonhole(8)},
		{"miter-adder12", adderMiter(12)},
	}
	for _, inst := range instances {
		for _, sched := range []struct {
			name        string
			adaptive    bool
			maxRespawns int
		}{
			{"static", false, 0},
			{"adaptive", true, 0},
			{"adaptive-retire", true, -1},
		} {
			b.Run(fmt.Sprintf("%s/sched=%s", inst.name, sched.name), func(b *testing.B) {
				var res *portfolio.Result
				for i := 0; i < b.N; i++ {
					res = portfolio.Solve(context.Background(), inst.f, portfolio.Options{
						Workers:     4,
						Adaptive:    sched.adaptive,
						Grace:       100 * time.Millisecond,
						MaxRespawns: sched.maxRespawns,
					})
					if res.Status == solver.Unknown {
						b.Fatal("portfolio must decide")
					}
				}
				b.ReportMetric(float64(res.Kills), "kills")
				b.ReportMetric(float64(res.Respawns), "respawns")
				b.ReportMetric(float64(res.Pool.Admitted), "poolAdmitted")
				b.ReportMetric(float64(res.Pool.Evicted), "poolEvicted")
				b.ReportMetric(float64(res.Winner), "winnerID")
			})
		}
	}
}

// e36Row is one measured cell of E36, serialized into
// BENCH_inprocess.json so the inprocessing/warm-start effect can be
// diffed across machines and revisions. Conflicts and decisions are
// summed over the instance family and deterministic per cell.
type e36Row struct {
	Family      string  `json:"family"`
	Instances   int     `json:"instances"`
	Inprocess   bool    `json:"inprocess"`
	WarmStart   bool    `json:"warm_start"`
	Conflicts   int64   `json:"conflicts"`
	Decisions   int64   `json:"decisions"`
	PropsPerSec float64 `json:"props_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	InprocStats struct {
		Rounds           int64 `json:"rounds"`
		Vivified         int64 `json:"vivified"`
		VivifiedLits     int64 `json:"vivified_lits"`
		Subsumed         int64 `json:"subsumed"`
		StrengthenedLits int64 `json:"strengthened_lits"`
	} `json:"inproc"`
}

// E36 (in-search inprocessing + learned warm start): conflicts to
// solution, propagation throughput and allocation behavior with the
// restart-boundary inprocessing engine and the recipe-memory warm start
// off/on, crossed.
//
// The inprocess=on cells run clause vivification and on-the-fly
// subsumption at every restart boundary (InprocessEvery: 1) — the
// configuration that pays on this suite's proof-shaped instances;
// bounded variable elimination is covered by the soak and fuzz
// harnesses but stays off here because resolvent blow-up lengthens
// pigeonhole proofs. The warm=on cells replay a WarmProfile(16)
// harvested from a completed prior solve of the same instance — exactly
// what the serve layer's recipe memory records on a win and reinjects
// into the next same-class job.
//
// Instance families are chosen so conflicts-to-solution is a robust
// measure: an unsatisfiable random 3-SAT family (5 seeds, summed —
// refutation cost cannot get lucky the way satisfiable near-threshold
// search can), the php8 pigeonhole proof, and the E33 CEC adder miter
// at 16 bits. The full grid goes to BENCH_inprocess.json; conflict
// counts are deterministic, so the JSON diffs cleanly across revisions.
func BenchmarkE36_Inprocess(b *testing.B) {
	adderMiter := func(bits int) *cnf.Formula {
		m, out, err := cec.BuildMiter(circuit.RippleCarryAdder(bits), circuit.CarrySkipAdder(bits, 4))
		if err != nil {
			b.Fatal(err)
		}
		f, _ := circuit.EncodeProperty(m, out, true)
		return f
	}
	var rand220 []*cnf.Formula
	for seed := int64(1); seed <= 5; seed++ {
		rand220 = append(rand220, gen.RandomKSAT(220, 1320, 3, seed))
	}
	families := []struct {
		name string
		fs   []*cnf.Formula
	}{
		{"rand220uns", rand220},
		{"php8", []*cnf.Formula{gen.Pigeonhole(8)}},
		{"miter-adder16", []*cnf.Formula{adderMiter(16)}},
	}
	inprocOpts := solver.Options{Inprocess: true, InprocessEvery: 1}
	rows := map[string]e36Row{}
	for _, fam := range families {
		// The warm profile the serve recipe memory would hold for this
		// class: the top-activity variables and saved phases of a
		// completed prior solve.
		warms := make([][]solver.WarmVar, len(fam.fs))
		for i, f := range fam.fs {
			prior := solver.FromFormula(f, solver.Options{})
			prior.Solve()
			warms[i] = prior.WarmProfile(16)
		}
		for _, v := range []struct {
			inproc, warm bool
		}{{false, false}, {true, false}, {false, true}, {true, true}} {
			name := fmt.Sprintf("%s/inprocess=%v/warm=%v", fam.name, v.inproc, v.warm)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				var row e36Row
				var props int64
				var m0, m1 runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&m0)
				start := time.Now()
				for i := 0; i < b.N; i++ {
					row = e36Row{Family: fam.name, Instances: len(fam.fs),
						Inprocess: v.inproc, WarmStart: v.warm}
					for j, f := range fam.fs {
						opts := solver.Options{}
						if v.inproc {
							opts = inprocOpts
						}
						if v.warm {
							opts.WarmStart = warms[j]
						}
						s := solver.FromFormula(f, opts)
						if s.Solve() == solver.Unknown {
							b.Fatal("must decide")
						}
						props += s.Stats.Propagations
						row.Conflicts += s.Stats.Conflicts
						row.Decisions += s.Stats.Decisions
						row.InprocStats.Rounds += s.Stats.InprocRounds
						row.InprocStats.Vivified += s.Stats.Vivified
						row.InprocStats.VivifiedLits += s.Stats.VivifiedLits
						row.InprocStats.Subsumed += s.Stats.Subsumed
						row.InprocStats.StrengthenedLits += s.Stats.StrengthenedLits
					}
				}
				wall := time.Since(start)
				runtime.ReadMemStats(&m1)
				row.PropsPerSec = float64(props) / wall.Seconds()
				row.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(b.N)
				rows[name] = row // highest-b.N invocation wins
				b.ReportMetric(float64(row.Conflicts), "conflicts")
				b.ReportMetric(row.PropsPerSec, "props/s")
			})
		}
	}
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]e36Row, 0, len(keys))
	for _, k := range keys {
		out = append(out, rows[k])
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_inprocess.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
