// Package sateda is a Boolean-satisfiability toolkit for electronic
// design automation, reproducing Marques-Silva & Sakallah, "Boolean
// Satisfiability in Electronic Design Automation" (DAC 2000).
//
// It bundles a GRASP-style CDCL SAT solver with every technique the
// paper surveys (non-chronological backtracking, clause recording,
// relevance-based learning, restarts and randomization, recursive
// learning on CNF formulas, equivalency reasoning, incremental solving,
// the structural circuit-SAT layer with justification frontiers) and the
// EDA applications built on them: ATPG, redundancy removal, delay
// computation and path delay fault testing, combinational equivalence
// checking, bounded model checking, functional vector generation,
// covering/pseudo-Boolean optimization, prime implicants and SAT-based
// routing.
//
// This facade re-exports the user-facing API; implementation lives in
// the internal packages. Typical usage:
//
//	f := sateda.NewFormula(3)
//	f.AddDIMACS(1, 2)
//	f.AddDIMACS(-1, 3)
//	s := sateda.NewSolver(f, sateda.SolverOptions{})
//	if s.Solve() == sateda.Sat {
//	    m := s.Model()
//	    _ = m
//	}
//
// See the examples directory for complete application flows.
package sateda

import (
	"repro/internal/atpg"
	"repro/internal/bmc"
	"repro/internal/cec"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/csat"
	"repro/internal/delay"
	"repro/internal/funcvec"
	"repro/internal/gen"
	"repro/internal/portfolio"
	"repro/internal/redund"
	"repro/internal/route"
	"repro/internal/solver"
	"repro/internal/xtalk"
)

// CNF layer.
type (
	// Var is a propositional variable (1-based).
	Var = cnf.Var
	// Lit is a literal (variable or complement).
	Lit = cnf.Lit
	// Clause is a disjunction of literals.
	Clause = cnf.Clause
	// Formula is a CNF formula.
	Formula = cnf.Formula
	// Assignment maps variables to three-valued results.
	Assignment = cnf.Assignment
	// LBool is a three-valued Boolean.
	LBool = cnf.LBool
)

// Three-valued constants.
const (
	True  = cnf.True
	False = cnf.False
	Undef = cnf.Undef
)

// NewFormula returns an empty CNF formula with n variables.
func NewFormula(n int) *Formula { return cnf.New(n) }

// PosLit and NegLit construct literals.
var (
	PosLit = cnf.PosLit
	NegLit = cnf.NegLit
)

// ParseDIMACS reads DIMACS CNF; WriteDIMACS writes it.
var (
	ParseDIMACS = cnf.ParseDIMACS
	WriteDIMACS = cnf.WriteDIMACS
)

// Solver layer (paper §4, §6).
type (
	// Solver is the incremental CDCL solver.
	Solver = solver.Solver
	// SolverOptions configures it.
	SolverOptions = solver.Options
	// Status is a solve verdict.
	Status = solver.Status
	// SolverProgress is a race-free snapshot of a running search
	// (Solver.Snapshot), the probe adaptive scheduling samples.
	SolverProgress = solver.Progress
	// Theory is the structural-layer hook of §5.
	Theory = solver.Theory
)

// Solve verdicts.
const (
	Sat     = solver.Sat
	Unsat   = solver.Unsat
	Unknown = solver.Unknown
)

// NewSolver builds a solver loaded with f.
func NewSolver(f *Formula, opts SolverOptions) *Solver {
	return solver.FromFormula(f, opts)
}

// Parallel portfolio layer: diversified solver configurations racing on
// goroutines with learned-clause sharing (§6 randomization/restart
// diversity turned into multicore speedup).
type (
	// Portfolio races diversified solvers over one formula.
	Portfolio = portfolio.Portfolio
	// PortfolioOptions configures worker count, sharing and recipes.
	PortfolioOptions = portfolio.Options
	// PortfolioResult is the aggregate outcome with per-worker stats.
	PortfolioResult = portfolio.Result
	// PortfolioWorkerReport is one worker's verdict and statistics
	// (under adaptive scheduling: one lineage entry per worker ever
	// run, with slot, generation and reason-for-death).
	PortfolioWorkerReport = portfolio.WorkerReport
	// PortfolioPoolStats reports the shared pool's dynamic-admission
	// counters.
	PortfolioPoolStats = portfolio.PoolStats
)

// NewPortfolio builds a reusable portfolio over f; SolvePortfolio is the
// one-shot convenience (pass context.Background() when no cancellation
// or deadline is needed).
var (
	NewPortfolio   = portfolio.New
	SolvePortfolio = portfolio.Solve
)

// Pipeline is the full Preprocess+Learn+Search stack of Figure 2.
type (
	// PipelineOptions configures core.Solve.
	PipelineOptions = core.Options
	// PipelineAnswer is its verdict.
	PipelineAnswer = core.Answer
)

// SolvePipeline runs preprocessing, recursive learning and search;
// SolvePipelineContext is the cancellable/deadline-aware variant.
var (
	SolvePipeline        = core.Solve
	SolvePipelineContext = core.SolveContext
)

// Circuit layer (paper §2, §5).
type (
	// Circuit is a gate-level combinational netlist.
	Circuit = circuit.Circuit
	// GateType enumerates gate functions.
	GateType = circuit.GateType
	// NodeID identifies a circuit node.
	NodeID = circuit.NodeID
	// Encoding maps a circuit to CNF (Table 1).
	Encoding = circuit.Encoding
	// StructuralLayer is the justification-frontier theory of §5.
	StructuralLayer = csat.Layer
	// StructuralOptions configures it.
	StructuralOptions = csat.Options
)

// Gate types (Table 1).
const (
	Input = circuit.Input
	And   = circuit.And
	Nand  = circuit.Nand
	Or    = circuit.Or
	Nor   = circuit.Nor
	Xor   = circuit.Xor
	Xnor  = circuit.Xnor
	Not   = circuit.Not
	Buf   = circuit.Buf
)

// Circuit constructors and I/O.
var (
	NewCircuit     = circuit.New
	ParseBench     = circuit.ParseBench
	WriteBench     = circuit.WriteBench
	EncodeCircuit  = circuit.Encode
	EncodeProperty = circuit.EncodeProperty
	AttachLayer    = csat.Attach
)

// Application layers (paper §3).
type (
	// ATPGOptions configures test generation; ATPGReport aggregates it.
	ATPGOptions = atpg.Options
	ATPGReport  = atpg.Report
	// Fault is a single stuck-at fault.
	Fault = atpg.Fault
	// CECOptions / CECResult drive equivalence checking.
	CECOptions = cec.Options
	CECResult  = cec.Result
	// Sequential is a sequential circuit for BMC.
	Sequential = bmc.Sequential
	// BMCOptions / BMCResult drive bounded model checking.
	BMCOptions = bmc.Options
	BMCResult  = bmc.Result
	// DelayOptions / DelayResult drive delay computation.
	DelayOptions = delay.Options
	DelayResult  = delay.Result
	// SeqOptions / SeqResult drive sequential (time-frame) ATPG.
	SeqOptions = atpg.SeqOptions
	SeqResult  = atpg.SeqResult
	// RedundOptions / RedundReport drive redundancy removal.
	RedundOptions = redund.Options
	RedundReport  = redund.Report
	// CoverProblem is a (binate) covering problem.
	CoverProblem = cover.Problem
	// FuncVecModel is a word-level constraint model.
	FuncVecModel = funcvec.Model
	// Channel is a channel-routing instance; Grid a detailed-routing one.
	Channel = route.Channel
	Grid    = route.Grid
	// Coupling describes a crosstalk victim/aggressor neighbourhood.
	Coupling = xtalk.Coupling
	// XtalkResult reports worst-case feasible aligned noise.
	XtalkResult = xtalk.Result
)

// Application entry points.
var (
	GenerateTests     = atpg.GenerateTests
	TestFault         = atpg.TestFault
	TestSeqFault      = atpg.TestSequentialFault
	CheckEquivalence  = cec.Check
	BMCCheck          = bmc.Check
	BMCInduction      = bmc.Induction
	ComputeDelay      = delay.ComputeDelay
	GeneratePathTest  = delay.GeneratePathTest
	KLongestPaths     = delay.KLongestSensitizable
	VerifySequence    = atpg.VerifySequence
	RemoveRedundancy  = redund.Remove
	IdentifyRedundant = redund.Identify
	SolveCoverSAT     = cover.SolveSAT
	SolveCoverBB      = cover.SolveBB
	MinPrimeImplicant = cover.MinPrimeImplicant
	NewFuncVecModel   = funcvec.NewModel
	RouteChannel      = route.RouteChannel
	MinTracks         = route.MinTracks
	RouteGrid         = route.RouteGrid
	MaxAlignedNoise   = xtalk.MaxAlignedNoise
	Strash            = circuit.Strash
	CompactTests      = atpg.CompactTests
	ReduceCover       = cover.Reduce
	VerifyUnsat       = solver.VerifyUnsat
	VerifyModel       = solver.VerifyModel
)

// Workload generators.
var (
	RandomKSAT      = gen.RandomKSAT
	Random3SATHard  = gen.Random3SATHard
	Pigeonhole      = gen.Pigeonhole
	XorChain        = gen.XorChain
	Queens          = gen.Queens
	GraphColoring   = gen.GraphColoring
	RippleAdder     = circuit.RippleCarryAdder
	CarrySkipAdder  = circuit.CarrySkipAdder
	ArrayMultiplier = circuit.ArrayMultiplier
	ALU             = circuit.ALU
	ParityTree      = circuit.ParityTree
	MuxTree         = circuit.MuxTree
	RandomDAG       = circuit.RandomDAG
	C17             = circuit.C17
	NewCounter      = bmc.NewCounter
	NewRingOneHot   = bmc.NewRingOneHot
)
