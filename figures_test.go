// Literal reproductions of the paper's figures as executable tests
// (complementing the Table 1/2/3 tests inside the packages).
package sateda

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/solver"
)

// TestFigure1Formula checks that the CNF of the Figure 1 circuit is the
// conjunction of its gates' Table 1 formulas plus the property unit
// clause — the construction §2 describes ("the CNF formula of a
// combinational circuit is the conjunction of the CNF formulas for each
// gate output").
func TestFigure1Formula(t *testing.T) {
	c := circuit.Figure1()
	f, enc := circuit.EncodeProperty(c, c.Outputs[0], false)

	// Rebuild the expected clause set gate by gate from Table 1.
	expect := cnf.New(f.NumVars())
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if n.Type == circuit.Input {
			continue
		}
		ins := make([]cnf.Var, len(n.Fanin))
		for j, fn := range n.Fanin {
			ins[j] = enc.VarOf[fn]
		}
		circuit.AppendGateCNF(expect, n.Type, enc.VarOf[i], ins)
	}
	expect.Add(enc.Lit(c.Outputs[0], false)) // property z = 0

	key := func(g *cnf.Formula) string {
		var cs []string
		for _, cl := range g.Clauses {
			n, _ := cl.Normalize()
			cs = append(cs, n.String())
		}
		sort.Strings(cs)
		return strings.Join(cs, " ")
	}
	if key(f) != key(expect) {
		t.Fatalf("Figure 1 formula is not the conjunction of gate formulas:\n got  %s\n want %s",
			key(f), key(expect))
	}
}

// TestFigure3ConflictClause reproduces §4.1's conflict walkthrough: with
// w = 1 and y3 = 0, the assignment x1 = 1 yields a conflict; the
// diagnosis must blame exactly the assignments {x1=1, w=1, y3=0},
// i.e. derive the implicate (¬x1 + ¬w + y3).
func TestFigure3ConflictClause(t *testing.T) {
	c := circuit.Figure3()
	enc := circuit.Encode(c)
	s := solver.FromFormula(enc.F, solver.Options{})
	w := enc.Lit(c.NodeByName("w"), true)
	y3 := enc.Lit(c.NodeByName("y3"), false)
	x1 := enc.Lit(c.NodeByName("x1"), true)
	if st := s.Solve(x1, w, y3); st != solver.Unsat {
		t.Fatalf("x1=1 ∧ w=1 ∧ y3=0 must conflict, got %v", st)
	}
	// The conflict core is the set of assumptions whose complement
	// disjunction is the derived clause (¬x1 + ¬w + y3).
	core := s.Core()
	if len(core) == 0 || len(core) > 3 {
		t.Fatalf("core size %d: %v", len(core), core)
	}
	inCore := map[cnf.Lit]bool{}
	for _, l := range core {
		inCore[l] = true
	}
	// x1 must be in the core (it is the assignment the paper's text
	// says must be complemented); the others participate unless the
	// diagnosis found a smaller explanation.
	if !inCore[x1] && !inCore[w] && !inCore[y3] {
		t.Fatalf("core unrelated to the figure's assignments: %v", core)
	}
	// The clause (¬x1 ∨ ¬w ∨ y3) must be an implicate of the circuit
	// formula: formula ∧ x1 ∧ w ∧ ¬y3 is UNSAT (verified independently
	// by brute force).
	g := enc.F.Clone()
	g.AddUnit(x1)
	g.AddUnit(w)
	g.AddUnit(y3)
	if sat, _ := cnf.BruteForce(g); sat {
		t.Fatal("(¬x1 + ¬w + y3) is not an implicate — Figure 3 broken")
	}
	// And removing any one assumption must make it satisfiable (the
	// clause is a PRIME implicate for this circuit).
	for _, drop := range []cnf.Lit{x1, w, y3} {
		h := enc.F.Clone()
		for _, keep := range []cnf.Lit{x1, w, y3} {
			if keep != drop {
				h.AddUnit(keep)
			}
		}
		if sat, _ := cnf.BruteForce(h); !sat {
			t.Fatalf("dropping %v should be satisfiable (primality)", drop)
		}
	}
}

// TestFigure2Template checks that the four Figure 2 ingredients are
// individually observable through the solver's statistics on a workload
// that exercises them all.
func TestFigure2Template(t *testing.T) {
	c := circuit.CarrySkipAdder(6, 3)
	f, enc := circuit.EncodeProperty(c, c.Outputs[len(c.Outputs)-1], true)
	_ = enc
	s := solver.FromFormula(f, solver.Options{})
	if s.Solve() != solver.Sat {
		t.Fatal("carry-out=1 is achievable")
	}
	st := s.Stats
	if st.Decisions == 0 {
		t.Fatal("Decide() unused")
	}
	if st.Propagations == 0 {
		t.Fatal("Deduce() unused")
	}
	// Diagnose()/Erase() need conflicts that survive top-level BCP; the
	// pigeonhole principle guarantees genuine search.
	u := solver.FromFormula(gen.Pigeonhole(4), solver.Options{})
	if u.Solve() != solver.Unsat {
		t.Fatal("PHP(4) must be UNSAT")
	}
	if u.Stats.Conflicts == 0 {
		t.Fatal("Diagnose() unused on UNSAT run")
	}
}
