// CLI integration tests: build each command once and exercise it the way
// a user would, checking output and exit-code conventions.
package sateda

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles a command into dir and returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// run executes a binary with optional stdin, returning stdout and the
// exit code.
func run(t *testing.T, bin string, stdin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %s: %v", bin, err)
	}
	return out.String(), code
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	satsolve := buildTool(t, dir, "satsolve")
	cnfgen := buildTool(t, dir, "cnfgen")
	atpgBin := buildTool(t, dir, "atpg")
	cecBin := buildTool(t, dir, "cec")
	bmcBin := buildTool(t, dir, "bmc")
	delayBin := buildTool(t, dir, "delaycomp")

	// cnfgen | satsolve on an UNSAT family: exit code 20.
	php, code := run(t, cnfgen, "", "-family", "php", "-n", "4")
	if code != 0 || !strings.Contains(php, "p cnf") {
		t.Fatalf("cnfgen failed: %d\n%s", code, php)
	}
	out, code := run(t, satsolve, php, "-stats")
	if code != 20 || !strings.Contains(out, "s UNSATISFIABLE") {
		t.Fatalf("satsolve UNSAT: code %d\n%s", code, out)
	}
	if !strings.Contains(out, "conflicts") {
		t.Fatal("-stats output missing")
	}

	// Satisfiable instance: exit 10 with a model line that verifies.
	queens, _ := run(t, cnfgen, "", "-family", "queens", "-n", "6")
	out, code = run(t, satsolve, queens)
	if code != 10 || !strings.Contains(out, "s SATISFIABLE") || !strings.Contains(out, "v ") {
		t.Fatalf("satsolve SAT: code %d\n%s", code, out)
	}

	// Solver configuration flags must all be accepted.
	for _, args := range [][]string{
		{"-chronological"}, {"-no-learning"}, {"-relevance", "3"},
		{"-restarts", "geometric"}, {"-decide", "dlis"}, {"-equiv"},
		{"-reclearn", "1"}, {"-q"},
	} {
		if _, code := run(t, satsolve, php, args...); code != 20 {
			t.Fatalf("satsolve %v on PHP: exit %d", args, code)
		}
	}
	// Local search cannot prove UNSAT: exit 30 (unknown).
	if _, code := run(t, satsolve, php, "-local-search"); code != 30 {
		t.Fatalf("local search on UNSAT should be UNKNOWN, got %d", code)
	}

	// Portfolio mode: same verdicts, and -stats reports the parallel run.
	out, code = run(t, satsolve, php, "-workers", "4", "-stats")
	if code != 20 || !strings.Contains(out, "s UNSATISFIABLE") {
		t.Fatalf("portfolio UNSAT: code %d\n%s", code, out)
	}
	if !strings.Contains(out, "c portfolio workers 4") || !strings.Contains(out, "recipe") {
		t.Fatalf("-workers -stats missing portfolio report:\n%s", out)
	}
	out, code = run(t, satsolve, queens, "-workers", "0", "-share=false")
	if code != 10 || !strings.Contains(out, "s SATISFIABLE") {
		t.Fatalf("portfolio SAT: code %d\n%s", code, out)
	}
	// Adaptive scheduling: same verdict; -stats reports the pool's
	// dynamic-admission counters and per-worker lineage columns.
	out, code = run(t, satsolve, php, "-workers", "4", "-adaptive", "-grace", "5ms", "-pool-quantile", "0.7", "-stats")
	if code != 20 || !strings.Contains(out, "s UNSATISFIABLE") {
		t.Fatalf("adaptive portfolio UNSAT: code %d\n%s", code, out)
	}
	if !strings.Contains(out, "c pool admitted") || !strings.Contains(out, "slot") {
		t.Fatalf("-adaptive -stats missing pool/lineage report:\n%s", out)
	}

	// Wall-clock timeout: a hard instance must give up with s UNKNOWN
	// and the distinct exit code 40.
	hard, _ := run(t, cnfgen, "", "-family", "php", "-n", "11")
	out, code = run(t, satsolve, hard, "-timeout", "100ms")
	if code != 40 || !strings.Contains(out, "s UNKNOWN") {
		t.Fatalf("timeout: code %d (want 40)\n%s", code, out)
	}
	// The same budget must also interrupt a portfolio run.
	out, code = run(t, satsolve, hard, "-timeout", "100ms", "-workers", "4")
	if code != 40 || !strings.Contains(out, "s UNKNOWN") {
		t.Fatalf("portfolio timeout: code %d (want 40)\n%s", code, out)
	}
	// A generous timeout must not perturb an easy answer.
	if _, code = run(t, satsolve, php, "-timeout", "1m"); code != 20 {
		t.Fatalf("easy instance under timeout: code %d (want 20)", code)
	}

	// ATPG on a generated adder.
	adder, _ := run(t, cnfgen, "", "-family", "adder", "-n", "4")
	benchFile := filepath.Join(dir, "adder.bench")
	if err := os.WriteFile(benchFile, []byte(adder), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = run(t, atpgBin, "", "-structural", benchFile)
	if code != 0 || !strings.Contains(out, "coverage    100.00%") {
		t.Fatalf("atpg: code %d\n%s", code, out)
	}

	// CEC: adder vs itself (equivalent, exit 0); adder vs parity (shape
	// mismatch is an error, nonzero).
	out, code = run(t, cecBin, "", benchFile, benchFile)
	if code != 0 || !strings.Contains(out, "EQUIVALENT") {
		t.Fatalf("cec self: code %d\n%s", code, out)
	}

	// BMC on a toggling latch that reaches bad at depth 1.
	seq := `INPUT(en)
OUTPUT(bad)
q = DFF(d)
d = NOT(q)
bad = AND(q, en)
`
	seqFile := filepath.Join(dir, "toggle.bench")
	if err := os.WriteFile(seqFile, []byte(seq), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = run(t, bmcBin, "", "-depth", "4", seqFile)
	if code != 20 || !strings.Contains(out, "VIOLATED at depth 1") {
		t.Fatalf("bmc: code %d\n%s", code, out)
	}
	// With k-induction on a safe design (en tied is not expressible here;
	// use the ring via cnfgen? bmc reads files only) — depth-bounded safe:
	out, code = run(t, bmcBin, "", "-depth", "0", seqFile)
	if code != 0 || !strings.Contains(out, "SAFE") {
		t.Fatalf("bmc depth 0 should be safe: code %d\n%s", code, out)
	}

	// delaycomp on a carry-skip adder must find false paths.
	skip, _ := run(t, cnfgen, "", "-family", "skipadder", "-n", "8", "-k", "4")
	skipFile := filepath.Join(dir, "skip.bench")
	if err := os.WriteFile(skipFile, []byte(skip), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = run(t, delayBin, "", skipFile)
	if code != 0 || !strings.Contains(out, "false paths proven") {
		t.Fatalf("delaycomp: code %d\n%s", code, out)
	}
	if !strings.Contains(out, "topological delay:   21") {
		t.Fatalf("unexpected topological delay:\n%s", out)
	}
}
