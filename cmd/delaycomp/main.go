// Command delaycomp computes the sensitizable (true) delay of a
// combinational .bench netlist via SAT path sensitization (paper §3):
// structural longest paths that cannot be activated by any input vector
// are proven false, and the reported circuit delay is the longest
// sensitizable path. Optionally generates a two-vector path delay fault
// test for the critical path.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuit"
	"repro/internal/delay"
)

func main() {
	var (
		maxPaths = flag.Int("max-paths", 10000, "cap on paths tested for sensitizability")
		maxConfl = flag.Int64("max-conflicts", 0, "conflict budget per SAT query")
		genTest  = flag.Bool("path-test", false, "generate a two-vector test for the critical path")
		robust   = flag.Bool("robust", false, "require a robust (stable side-input) test")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: delaycomp [flags] circuit.bench")
		os.Exit(1)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "delaycomp:", err)
		os.Exit(1)
	}
	defer f.Close()
	c, latches, err := circuit.ParseBench(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "delaycomp:", err)
		os.Exit(1)
	}
	if len(latches) > 0 {
		fmt.Fprintln(os.Stderr, "delaycomp: combinational analysis only")
		os.Exit(1)
	}

	res := delay.ComputeDelay(c, delay.Options{MaxPaths: *maxPaths, MaxConflicts: *maxConfl})
	fmt.Printf("topological delay:   %d\n", res.Topological)
	fmt.Printf("sensitizable delay:  %d%s\n", res.Sensitizable, exactSuffix(res.Exact))
	fmt.Printf("false paths proven:  %d (of %d paths tested)\n", res.FalsePaths, res.PathsTested)
	if res.Critical != nil {
		fmt.Print("critical path:      ")
		for _, n := range res.Critical {
			fmt.Printf(" %s", c.Name(n))
		}
		fmt.Println()
	}
	if *genTest && res.Critical != nil {
		tp, st := delay.GeneratePathTest(c, res.Critical, *robust, delay.Options{MaxConflicts: *maxConfl})
		switch st {
		case delay.PathTestFound:
			fmt.Printf("path delay test:     V1=%s V2=%s (verified %v)\n",
				bits(tp.V1), bits(tp.V2), delay.VerifyPathTest(c, res.Critical, tp))
		case delay.PathUntestable:
			fmt.Println("path delay test:     untestable under the chosen conditions")
		default:
			fmt.Println("path delay test:     aborted (budget)")
		}
	}
}

func exactSuffix(exact bool) string {
	if exact {
		return ""
	}
	return " (lower bound: path cap reached)"
}

func bits(v []bool) string {
	out := make([]byte, len(v))
	for i, b := range v {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
