// Command satload is the SLO load harness: it drives a satserved
// instance (or fleet) with a scenario of mixed job kinds at a
// controlled arrival rate, measures client-observed latency per kind,
// harvests per-phase attribution from each job's trace
// (/v1/jobs/{id}/trace), and writes a slogate.Report (BENCH_serve.json
// in CI) that cmd/slogate gates against the committed SLOs.
//
// Usage:
//
//	satload -addr http://127.0.0.1:8080[,http://127.0.0.1:8081] \
//	        -scenario mixed -rate 20 -duration 30s -out BENCH_serve.json
//
// Scenarios: mixed (default), dimacs, cec, bmc, session, batch.
package main

import (
	"bytes"
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/obs/slogate"
)

// counterBench is a 3-bit binary counter whose bad output first fires
// at depth 7 — a small but non-trivial BMC workload.
const counterBench = `
OUTPUT(bad)
q0 = DFF(d0)
q1 = DFF(d1)
q2 = DFF(d2)
d0 = NOT(q0)
d1 = XOR(q1, q0)
c2 = AND(q0, q1)
d2 = XOR(q2, c2)
bad = AND(q0, q1, q2)
`

// spec mirrors the serve.Spec JSON shape (the harness speaks the wire
// format, not the server's internal types).
type spec struct {
	Kind   string `json:"kind"`
	DIMACS string `json:"dimacs,omitempty"`
	Left   string `json:"left,omitempty"`
	Right  string `json:"right,omitempty"`
	Model  string `json:"model,omitempty"`
	Depth  int    `json:"depth,omitempty"`
}

type jobView struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Result *struct {
		Verdict string `json:"verdict"`
		Decided bool   `json:"decided"`
	} `json:"result"`
}

// collector accumulates thread-safe latency samples and op outcomes.
type collector struct {
	mu     sync.Mutex
	ops    slogate.Ops
	kinds  map[string][]float64
	phases map[string][]float64
}

func newCollector() *collector {
	return &collector{kinds: map[string][]float64{}, phases: map[string][]float64{}}
}

func (c *collector) submitted() { c.mu.Lock(); c.ops.Submitted++; c.mu.Unlock() }

func (c *collector) completed(kind string, latMS float64) {
	c.mu.Lock()
	c.ops.Completed++
	c.kinds[kind] = append(c.kinds[kind], latMS)
	c.mu.Unlock()
}

func (c *collector) shed()   { c.mu.Lock(); c.ops.Shed++; c.mu.Unlock() }
func (c *collector) failed() { c.mu.Lock(); c.ops.Failed++; c.mu.Unlock() }
func (c *collector) errored() { c.mu.Lock(); c.ops.Errors++; c.mu.Unlock() }

func (c *collector) phase(name string, ms float64) {
	c.mu.Lock()
	c.phases[name] = append(c.phases[name], ms)
	c.mu.Unlock()
}

func (c *collector) report(scenario string, durationS, rate float64) *slogate.Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := &slogate.Report{
		Scenario: scenario, DurationS: durationS, TargetRate: rate,
		Ops:   c.ops,
		Kinds: map[string]slogate.Dist{}, Phases: map[string]slogate.Dist{},
	}
	for k, v := range c.kinds {
		r.Kinds[k] = slogate.Summarize(v)
	}
	for k, v := range c.phases {
		r.Phases[k] = slogate.Summarize(v)
	}
	return r
}

// loader owns the HTTP side of one run.
type loader struct {
	client *http.Client
	addrs  []string
	next   atomic.Int64
	col    *collector
	seed   atomic.Int64

	// sessions maps a base URL to its pre-created session ID (session
	// scenario only).
	sessions map[string]string
}

func (l *loader) addr() string {
	return l.addrs[int(l.next.Add(1))%len(l.addrs)]
}

func (l *loader) nextSeed() int64 { return l.seed.Add(1) }

// post sends one JSON body and returns the response with its body read.
func (l *loader) post(url string, body any) (int, []byte, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := l.client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	return resp.StatusCode, out, err
}

// runJob submits one job synchronously, records its latency under
// kind, and harvests the per-phase attribution from its trace.
func (l *loader) runJob(kind string, sp spec) {
	l.col.submitted()
	base := l.addr()
	start := time.Now()
	code, body, err := l.post(base+"/v1/jobs", sp) // spec fields inline: submitRequest embeds Spec
	latMS := float64(time.Since(start).Microseconds()) / 1000
	switch {
	case err != nil:
		l.col.errored()
		return
	case code == http.StatusTooManyRequests:
		l.col.shed()
		return
	case code != http.StatusOK:
		l.col.failed()
		return
	}
	var v jobView
	if json.Unmarshal(body, &v) != nil || v.Result == nil || !v.Result.Decided {
		l.col.failed()
		return
	}
	l.col.completed(kind, latMS)
	l.harvestTrace(base, v.ID)
}

// harvestTrace attributes one completed job's latency to its lifecycle
// phases via the trace endpoint.
func (l *loader) harvestTrace(base, id string) {
	resp, err := l.client.Get(base + "/v1/jobs/" + id + "/trace")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var tv obs.View
	if json.NewDecoder(resp.Body).Decode(&tv) != nil {
		return
	}
	for name, us := range tv.PhaseTotals() {
		l.col.phase(name, float64(us)/1000)
	}
}

func (l *loader) dimacsOp(rng *rand.Rand) {
	var f *cnf.Formula
	switch rng.Intn(3) {
	case 0:
		f = gen.RandomKSAT(40, 160, 3, l.nextSeed()) // under-constrained, SAT
	case 1:
		f = gen.XorChain(14, true, l.nextSeed()) // UNSAT xor chain
	default:
		f = gen.Pigeonhole(5) // small UNSAT with real search
	}
	l.runJob("dimacs", spec{Kind: "dimacs", DIMACS: cnf.DIMACSString(f)})
}

func (l *loader) cecOp(rng *rand.Rand) {
	n := 3 + rng.Intn(3)
	left, err1 := circuit.BenchString(circuit.RippleCarryAdder(n), nil)
	right, err2 := circuit.BenchString(circuit.CarrySkipAdder(n, 2), nil)
	if err1 != nil || err2 != nil {
		l.col.errored()
		return
	}
	l.runJob("cec", spec{Kind: "cec", Left: left, Right: right})
}

func (l *loader) bmcOp(rng *rand.Rand) {
	l.runJob("bmc", spec{Kind: "bmc", Model: counterBench, Depth: 5 + rng.Intn(4)})
}

func (l *loader) batchOp(rng *rand.Rand) {
	l.col.submitted()
	items := make([]spec, 0, 4)
	for i := 0; i < 4; i++ {
		f := gen.RandomKSAT(30, 120, 3, l.nextSeed())
		items = append(items, spec{Kind: "dimacs", DIMACS: cnf.DIMACSString(f)})
	}
	buf, _ := json.Marshal(map[string]any{"items": items})
	start := time.Now()
	resp, err := l.client.Post(l.addr()+"/v1/jobs/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		l.col.errored()
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body)
		l.col.shed()
		return
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		l.col.failed()
		return
	}
	// Drain the NDJSON stream; the batch completes when the last item
	// line arrives.
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) > 0 {
			lines++
		}
	}
	latMS := float64(time.Since(start).Microseconds()) / 1000
	if sc.Err() != nil || lines < len(items) {
		l.col.failed()
		return
	}
	l.col.completed("batch", latMS)
}

// ensureSession lazily creates one resident session per base URL.
func (l *loader) ensureSession(base string) (string, error) {
	if id, ok := l.sessions[base]; ok {
		return id, nil
	}
	f := gen.RandomKSAT(50, 180, 3, 42)
	code, body, err := l.post(base+"/v1/sessions", map[string]string{"dimacs": cnf.DIMACSString(f)})
	if err != nil {
		return "", err
	}
	if code != http.StatusCreated && code != http.StatusOK {
		return "", fmt.Errorf("session create: status %d", code)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &info); err != nil || info.ID == "" {
		return "", fmt.Errorf("session create: bad body %q", body)
	}
	l.sessions[base] = info.ID
	return info.ID, nil
}

func (l *loader) sessionOp(rng *rand.Rand, mu *sync.Mutex) {
	l.col.submitted()
	base := l.addr()
	mu.Lock()
	id, err := l.ensureSession(base)
	mu.Unlock()
	if err != nil {
		l.col.errored()
		return
	}
	assume := []int{}
	for v := 1 + rng.Intn(45); len(assume) < 3; v = 1 + rng.Intn(45) {
		lit := v
		if rng.Intn(2) == 0 {
			lit = -v
		}
		assume = append(assume, lit)
	}
	start := time.Now()
	code, body, err := l.post(base+"/v1/sessions/"+id+"/query",
		map[string]any{"assume": assume, "max_conflicts": 20000})
	latMS := float64(time.Since(start).Microseconds()) / 1000
	switch {
	case err != nil:
		l.col.errored()
	case code == http.StatusTooManyRequests:
		l.col.shed()
	case code != http.StatusOK:
		l.col.failed()
	default:
		var res struct {
			Verdict string `json:"verdict"`
		}
		if json.Unmarshal(body, &res) != nil || res.Verdict == "" {
			l.col.failed()
			return
		}
		l.col.completed("session", latMS)
		l.col.phase("session_query", latMS)
	}
}

func main() {
	var (
		addrFlag = flag.String("addr", "http://127.0.0.1:8080", "comma-separated satserved base URLs")
		scenario = flag.String("scenario", "mixed", "workload: mixed|dimacs|cec|bmc|session|batch")
		rate     = flag.Float64("rate", 20, "target arrival rate (ops/sec)")
		duration = flag.Duration("duration", 30*time.Second, "run length")
		seed     = flag.Int64("seed", 1, "workload seed")
		out      = flag.String("out", "", "report path (empty = stdout)")
	)
	flag.Parse()

	addrs := []string{}
	for _, a := range strings.Split(*addrFlag, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, strings.TrimRight(a, "/"))
		}
	}
	if len(addrs) == 0 || *rate <= 0 {
		fmt.Fprintln(os.Stderr, "satload: need at least one -addr and a positive -rate")
		os.Exit(2)
	}

	l := &loader{
		client:   &http.Client{Timeout: 60 * time.Second},
		addrs:    addrs,
		col:      newCollector(),
		sessions: map[string]string{},
	}
	l.seed.Store(*seed << 20)

	rng := rand.New(rand.NewSource(*seed))
	var sessMu sync.Mutex
	dispatch := func(op string, r *rand.Rand) {
		switch op {
		case "dimacs":
			l.dimacsOp(r)
		case "cec":
			l.cecOp(r)
		case "bmc":
			l.bmcOp(r)
		case "session":
			l.sessionOp(r, &sessMu)
		case "batch":
			l.batchOp(r)
		}
	}
	// The mixed scenario leans on dimacs (the dominant production
	// kind) with the other kinds riding along.
	mixed := []string{"dimacs", "dimacs", "dimacs", "cec", "bmc", "session", "dimacs", "batch"}

	interval := time.Duration(float64(time.Second) / *rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.After(*duration)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 64) // bound in-flight ops so a stall sheds client-side instead of leaking goroutines
	start := time.Now()
	i := 0
loop:
	for {
		select {
		case <-stop:
			break loop
		case <-ticker.C:
			op := *scenario
			if op == "mixed" {
				op = mixed[i%len(mixed)]
			}
			i++
			opSeed := rng.Int63()
			select {
			case sem <- struct{}{}:
			default:
				l.col.submitted()
				l.col.shed() // client-side backpressure counts as shed load
				continue
			}
			wg.Add(1)
			go func(op string, s int64) {
				defer wg.Done()
				defer func() { <-sem }()
				dispatch(op, rand.New(rand.NewSource(s)))
			}(op, opSeed)
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	r := l.col.report(*scenario, elapsed, *rate)
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "satload:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" || *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "satload:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"satload: scenario=%s %.1fs submitted=%d completed=%d failed=%d shed=%d errors=%d\n",
		r.Scenario, r.DurationS, r.Ops.Submitted, r.Ops.Completed, r.Ops.Failed, r.Ops.Shed, r.Ops.Errors)
	for name, d := range r.Kinds {
		fmt.Fprintf(os.Stderr, "  kind %-8s n=%-4d p50=%.1fms p95=%.1fms p99=%.1fms\n",
			name, d.Count, d.P50MS, d.P95MS, d.P99MS)
	}
}
