// Command satsolve is a DIMACS CNF SAT solver exposing the paper's
// solver configurations: chronological vs non-chronological
// backtracking, clause recording policies, restarts, decision
// heuristics, preprocessing, equivalency reasoning and recursive
// learning.
//
// Usage:
//
//	satsolve [flags] file.cnf     (or stdin with no file)
//
// Output follows the SAT-competition convention: a solution line
// "s SATISFIABLE" / "s UNSATISFIABLE" and, when satisfiable, "v" lines
// with the model.
//
// Proof logging: -drat FILE streams a DRAT refutation (deletion lines
// included) to FILE while solving; -drat-check FILE verifies such a
// file against the formula with the independent RUP checker instead of
// solving ("s VERIFIED" and exit 0 on success).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/solver"
)

func main() {
	var (
		chrono    = flag.Bool("chronological", false, "disable non-chronological backtracking")
		nolearn   = flag.Bool("no-learning", false, "disable clause recording")
		relevance = flag.Int("relevance", 0, "relevance-based deletion bound (0 = activity-based)")
		restarts  = flag.String("restarts", "luby", "restart policy: none|luby|geometric|fixed")
		decide    = flag.String("decide", "vsids", "decision heuristic: vsids|dlis|ordered|random")
		rnd       = flag.Float64("random-freq", 0, "random decision probability")
		seed      = flag.Int64("seed", 0, "random seed")
		pre       = flag.Bool("preprocess", false, "run the preprocessing pipeline")
		equiv     = flag.Bool("equiv", false, "equivalency reasoning (implies -preprocess)")
		reclearn  = flag.Int("reclearn", 0, "recursive learning depth (0 = off)")
		local     = flag.Bool("local-search", false, "use WalkSAT (incomplete)")
		maxConfl  = flag.Int64("max-conflicts", 0, "conflict budget (0 = unlimited)")
		inprocess = flag.Bool("inprocess", false, "in-search inprocessing at restart boundaries: clause vivification, on-the-fly subsumption and bounded variable elimination on the learnt database")
		warmStart = flag.Int64("warm-start", 0, "run a probe solve with this conflict budget first and seed the main search's branching from the probe's most active variables (0 = off)")
		watchPage = flag.Int("watch-page", 0, "min page capacity of the paged watcher store, rounded up to a power of two (values below 2 select the default of 4)")
		workers   = flag.Int("workers", 1, "portfolio workers racing in parallel (0 = all CPUs, 1 = sequential)")
		share     = flag.Bool("share", true, "share short learned clauses between portfolio workers")
		adaptive  = flag.Bool("adaptive", false, "adaptive portfolio scheduling: kill clearly-losing recipes and respawn with fresh seeds (needs -workers > 1)")
		grace     = flag.Duration("grace", 0, "adaptive scheduling: minimum worker age before it may be killed (0 = 2s)")
		poolQuant = flag.Float64("pool-quantile", 0, "shared-pool dynamic admission quantile in (0,1]: lower admits only the best-LBD clauses (0 = 0.5)")
		dratPath  = flag.String("drat", "", "stream a DRAT proof (deletion lines included) to this file while solving; an UNSAT answer is certified when no incompleteness warning is printed")
		dratCheck = flag.String("drat-check", "", "verify a DRAT proof file against the formula instead of solving: prints s VERIFIED and exits 0 when the refutation is accepted, exits 1 otherwise")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget, e.g. 10s (0 = none); exhaustion exits 40 with s UNKNOWN")
		stats     = flag.Bool("stats", false, "print search statistics")
		quiet     = flag.Bool("q", false, "suppress model output")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "satsolve:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	formula, err := cnf.ParseDIMACS(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "satsolve:", err)
		os.Exit(1)
	}

	if *dratCheck != "" {
		// Checker mode: no solving, just the independent incremental RUP
		// verification of an existing proof file.
		pf, err := os.Open(*dratCheck)
		if err != nil {
			fmt.Fprintln(os.Stderr, "satsolve:", err)
			os.Exit(1)
		}
		verr := solver.VerifyDRAT(formula, pf)
		pf.Close()
		if verr != nil {
			fmt.Fprintln(os.Stderr, "satsolve: proof rejected:", verr)
			os.Exit(1)
		}
		fmt.Println("s VERIFIED")
		os.Exit(0)
	}

	opts := core.Options{
		Preprocess:           *pre,
		EquivalencyReasoning: *equiv,
		RecursiveLearning:    *reclearn,
		Solver: solver.Options{
			Chronological: *chrono,
			NoLearning:    *nolearn,
			RandomFreq:    *rnd,
			Seed:          *seed,
			MaxConflicts:  *maxConfl,
			WatchPageSize: *watchPage,
		},
	}
	if *inprocess {
		opts.Solver.Inprocess = true
		opts.Solver.InprocessVarElim = true
	}
	if *relevance > 0 {
		opts.Solver.Deletion = solver.DeleteByRelevance
		opts.Solver.RelevanceBound = *relevance
	}
	switch *restarts {
	case "none":
		opts.Solver.Restart = solver.RestartNone
	case "luby":
		opts.Solver.Restart = solver.RestartLuby
	case "geometric":
		opts.Solver.Restart = solver.RestartGeometric
	case "fixed":
		opts.Solver.Restart = solver.RestartFixed
	default:
		fmt.Fprintf(os.Stderr, "satsolve: unknown restart policy %q\n", *restarts)
		os.Exit(1)
	}
	switch *decide {
	case "vsids":
		opts.Solver.Decide = solver.DecideVSIDS
	case "dlis":
		opts.Solver.Decide = solver.DecideDLIS
	case "ordered":
		opts.Solver.Decide = solver.DecideOrdered
	case "random":
		opts.Solver.Decide = solver.DecideRandom
	default:
		fmt.Fprintf(os.Stderr, "satsolve: unknown heuristic %q\n", *decide)
		os.Exit(1)
	}
	if *local {
		opts.Engine = core.EngineLocalSearch
		opts.LocalSearch.Seed = *seed
	}
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *workers > 1 {
		if *local {
			fmt.Fprintln(os.Stderr, "satsolve: -workers applies to the CDCL engine only; ignored with -local-search")
		}
		opts.PortfolioWorkers = *workers
		opts.PortfolioNoShare = !*share
		opts.PortfolioAdaptive = *adaptive
		opts.PortfolioGrace = *grace
		opts.PortfolioPoolQuantile = *poolQuant
	} else if *adaptive {
		fmt.Fprintln(os.Stderr, "satsolve: -adaptive needs -workers > 1; ignored")
	}

	var dratFile *os.File
	var dratW *solver.DRATWriter
	if *dratPath != "" {
		if *pre || *equiv || *reclearn > 0 || *local {
			// The proof must refute the INPUT formula; any transforming
			// stage (or an incomplete engine) voids it.
			fmt.Fprintln(os.Stderr, "satsolve: -drat requires the plain CDCL engine (no -preprocess, -equiv, -reclearn or -local-search)")
			os.Exit(1)
		}
		f, err := os.Create(*dratPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "satsolve:", err)
			os.Exit(1)
		}
		dratFile = f
		dratW = solver.NewDRATWriter(f)
		opts.Proof = dratW
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var ans *core.Answer
	if *warmStart > 0 && !*local {
		// Probe solve: a short sequential run under its own conflict
		// budget. A lucky probe decides the instance outright; otherwise
		// its most active variables seed the main search's branching.
		probeOpts := opts
		probeOpts.PortfolioWorkers = 0
		probeOpts.Solver.MaxConflicts = *warmStart
		// The probe must not write into the proof stream: interleaving
		// its lemmas with the main solve's would corrupt the refutation.
		probeOpts.Proof = nil
		probe := core.SolveContext(ctx, formula, probeOpts)
		if probe.Status != solver.Unknown {
			ans = probe
		} else {
			opts.Solver.WarmStart = probe.Warm
			if *stats {
				fmt.Printf("c warm-start: probe spent %d conflicts, seeding %d variables\n",
					probe.SolverStats.Conflicts, len(probe.Warm))
			}
		}
	}
	if ans == nil {
		ans = core.SolveContext(ctx, formula, opts)
	}
	if dratW != nil {
		if err := dratW.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "satsolve: drat:", err)
			os.Exit(1)
		}
		if err := dratFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "satsolve: drat:", err)
			os.Exit(1)
		}
		if ans.Status == solver.Unsat && !ans.Proved {
			// The verdict came from a worker other than the proof logger
			// (or from a proof-suppressed stage): the file is not a
			// complete refutation and must not be treated as one.
			fmt.Fprintln(os.Stderr, "satsolve: warning: DRAT stream incomplete — the UNSAT verdict was not derived by the proof-logging solver")
		}
	}
	if *stats {
		if ans.Pre != nil {
			fmt.Printf("c preprocess: %+v\n", *ans.Pre)
		}
		if ans.Learn != nil {
			fmt.Printf("c reclearn: %+v\n", *ans.Learn)
		}
		if ans.SolverStats != nil {
			s := ans.SolverStats
			fmt.Printf("c decisions %d conflicts %d propagations %d learned %d deleted %d demoted %d restarts %d maxjump %d\n",
				s.Decisions, s.Conflicts, s.Propagations, s.Learned, s.Deleted, s.Demoted, s.Restarts, s.MaxJump)
		}
		if p := ans.Portfolio; p != nil {
			fmt.Printf("c portfolio workers %d winner %d recipe %s kills %d respawns %d\n",
				len(p.Workers), p.Winner, p.Recipe, p.Kills, p.Respawns)
			fmt.Printf("c pool admitted %d rejected %d duplicates %d evicted %d held %d threshold %d\n",
				p.Pool.Admitted, p.Pool.Rejected, p.Pool.Duplicates, p.Pool.Evicted, p.Pool.Held, p.Pool.Threshold)
			for _, w := range p.Workers {
				reason := w.Reason
				if reason == "" {
					reason = "-"
				}
				fmt.Printf("c   worker %d slot %d gen %d %-20s %-13s %-12s conflicts %d imported %d exported %d\n",
					w.ID, w.Slot, w.Gen, w.Recipe, w.Status, reason, w.Stats.Conflicts, w.Stats.Imported, w.Stats.Exported)
			}
		}
	}
	switch ans.Status {
	case solver.Sat:
		fmt.Println("s SATISFIABLE")
		if !*quiet {
			fmt.Print("v ")
			for v := cnf.Var(1); int(v) <= formula.NumVars(); v++ {
				lit := int(v)
				if ans.Model.Value(v) != cnf.True {
					lit = -lit
				}
				fmt.Printf("%d ", lit)
			}
			fmt.Println("0")
		}
	case solver.Unsat:
		fmt.Println("s UNSATISFIABLE")
		os.Exit(20)
	default:
		fmt.Println("s UNKNOWN")
		if ctx.Err() == context.DeadlineExceeded {
			os.Exit(40) // wall-clock budget exhausted (distinct from exit 30)
		}
		os.Exit(30)
	}
	os.Exit(10)
}
