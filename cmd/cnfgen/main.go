// Command cnfgen emits benchmark workloads: random k-SAT, pigeonhole,
// XOR chains, graph colouring and queens in DIMACS, or circuit families
// (adders, multipliers, parity trees, muxes, random DAGs, c17) in .bench
// format.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/gen"
)

func main() {
	var (
		family = flag.String("family", "ksat", "ksat|php|xor|color|queens|adder|skipadder|mult|parity|mux|dag|c17")
		n      = flag.Int("n", 20, "size parameter (variables / bits / inputs)")
		m      = flag.Int("m", 0, "clause/edge/gate count (family-dependent; 0 = derived)")
		k      = flag.Int("k", 3, "clause width / colours / block size")
		seed   = flag.Int64("seed", 1, "random seed")
		unsat  = flag.Bool("unsat", false, "xor: generate the unsatisfiable variant")
	)
	flag.Parse()

	emitCNF := func(f *cnf.Formula) {
		if err := cnf.WriteDIMACS(os.Stdout, f); err != nil {
			fmt.Fprintln(os.Stderr, "cnfgen:", err)
			os.Exit(1)
		}
	}
	emitBench := func(c *circuit.Circuit) {
		if err := circuit.WriteBench(os.Stdout, c, nil); err != nil {
			fmt.Fprintln(os.Stderr, "cnfgen:", err)
			os.Exit(1)
		}
	}

	switch *family {
	case "ksat":
		mm := *m
		if mm == 0 {
			mm = int(4.26 * float64(*n))
		}
		emitCNF(gen.RandomKSAT(*n, mm, *k, *seed))
	case "php":
		emitCNF(gen.Pigeonhole(*n))
	case "xor":
		emitCNF(gen.XorChain(*n, *unsat, *seed))
	case "color":
		mm := *m
		if mm == 0 {
			mm = 2 * *n
		}
		emitCNF(gen.GraphColoring(*n, mm, *k, *seed))
	case "queens":
		emitCNF(gen.Queens(*n))
	case "adder":
		emitBench(circuit.RippleCarryAdder(*n))
	case "skipadder":
		emitBench(circuit.CarrySkipAdder(*n, *k))
	case "mult":
		emitBench(circuit.ArrayMultiplier(*n))
	case "parity":
		emitBench(circuit.ParityTree(*n))
	case "mux":
		emitBench(circuit.MuxTree(*n))
	case "dag":
		mm := *m
		if mm == 0 {
			mm = 4 * *n
		}
		emitBench(circuit.RandomDAG(*n, mm, 3, *seed))
	case "c17":
		emitBench(circuit.C17())
	default:
		fmt.Fprintf(os.Stderr, "cnfgen: unknown family %q\n", *family)
		os.Exit(1)
	}
}
