// Command atpg generates stuck-at test patterns for a combinational
// .bench netlist using SAT (paper §3): it reports per-fault verdicts
// (detected / redundant / aborted), overall fault coverage, and the
// generated test set. The structural layer of §5 (-structural) yields
// partially-specified patterns; -incremental shares one solver across
// the fault list; -session runs the fault list as assumption queries
// against one resident solve session (the same engine satserved
// exposes over HTTP), with identical verdicts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/atpg"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/session"
)

func main() {
	var (
		structural = flag.Bool("structural", false, "use the justification-frontier layer (partial patterns)")
		incr       = flag.Bool("incremental", false, "share one solver across faults")
		useSession = flag.Bool("session", false, "run the fault list through one resident solve session")
		faultSim   = flag.Bool("faultsim", true, "drop faults by parallel-pattern fault simulation")
		collapse   = flag.Bool("collapse", true, "collapse equivalent faults")
		maxConfl   = flag.Int64("max-conflicts", 0, "per-fault conflict budget")
		seed       = flag.Int64("seed", 1, "random seed for pattern completion")
		verbose    = flag.Bool("v", false, "print per-fault results")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: atpg [flags] circuit.bench")
		os.Exit(1)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "atpg:", err)
		os.Exit(1)
	}
	defer f.Close()
	c, latches, err := circuit.ParseBench(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atpg:", err)
		os.Exit(1)
	}
	if len(latches) > 0 {
		fmt.Fprintln(os.Stderr, "atpg: sequential circuits not supported (combinational ATPG)")
		os.Exit(1)
	}

	opts := atpg.Options{
		Structural:   *structural,
		Incremental:  *incr,
		FaultSim:     *faultSim,
		NoCollapse:   !*collapse,
		MaxConflicts: *maxConfl,
		Seed:         *seed,
	}
	var rep *atpg.Report
	if *useSession {
		m := session.NewManager(session.Config{})
		defer m.Close()
		var err error
		rep, err = atpg.GenerateTestsSession(context.Background(), m, c, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atpg:", err)
			os.Exit(1)
		}
	} else {
		rep = atpg.GenerateTests(c, opts)
	}
	if *verbose {
		for _, fr := range rep.Results {
			how := "sat"
			if fr.BySim {
				how = "sim"
			}
			fmt.Printf("%-20s %-10s %s\n", fr.Fault, fr.Status, how)
		}
	}
	fmt.Printf("faults      %d\n", rep.Total)
	fmt.Printf("detected    %d (%d by simulation)\n", rep.Detected, rep.BySimulation)
	fmt.Printf("redundant   %d\n", rep.Redundant)
	fmt.Printf("aborted     %d\n", rep.Aborted)
	fmt.Printf("coverage    %.2f%%\n", 100*rep.Coverage())
	fmt.Printf("tests       %d\n", len(rep.Tests))
	fmt.Printf("sat calls   %d\n", rep.SATCalls)
	if rep.PatternBits > 0 {
		fmt.Printf("specified   %.1f%% of pattern bits\n", 100*float64(rep.SpecifiedBits)/float64(rep.PatternBits))
	}
	for i, pat := range rep.Tests {
		fmt.Printf("t%-3d ", i)
		for _, v := range pat {
			switch v {
			case cnf.True:
				fmt.Print("1")
			case cnf.False:
				fmt.Print("0")
			default:
				fmt.Print("X")
			}
		}
		fmt.Println()
	}
}
