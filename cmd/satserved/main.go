// Command satserved serves the repository's SAT engines over HTTP: a
// concurrent solve scheduler (internal/serve) with fair-share
// admission, a canonical-fingerprint result cache with singleflight
// coalescing, three job kinds (raw DIMACS solve, CEC miter check, BMC
// to a depth), live streaming progress, and incremental solve sessions
// (a formula POSTed once stays resident; assumption queries stream
// against the warm solver).
//
// Usage:
//
//	satserved [flags]
//
// The server prints one line — "satserved listening on HOST:PORT" — to
// stdout once the listener is up (use -addr :0 for an ephemeral port;
// the printed line carries the real one), then runs until SIGINT or
// SIGTERM, shutting down gracefully: in-flight jobs are cancelled
// cooperatively and every worker is drained.
//
// Endpoints: POST /v1/jobs (sync by default, "async": true for a job
// handle), POST /v1/jobs/batch (NDJSON result stream), GET
// /v1/jobs/{id}, DELETE /v1/jobs/{id}, SSE progress on GET
// /v1/jobs/{id}/watch; certified results on GET /v1/jobs/{id}/proof
// for DIMACS jobs submitted with "proof": true (server-verified DRAT
// refutation or model check), with the hash-chained audit trail on GET
// /v1/audit/head and /v1/audit/{seq}; POST /v1/sessions, GET/DELETE
// /v1/sessions/{id}, POST /v1/sessions/{id}/query ("stream": true for
// SSE progress); plus /healthz, Prometheus-style /metrics, per-job
// latency-attribution traces on GET /v1/jobs/{id}/trace, and — only
// with -pprof — the net/http/pprof profiling endpoints under
// /debug/pprof/. See the README quickstart for curl examples.
//
// With -store-dir the result cache, recipe memory, warm-start profiles
// AND the certified-result audit chain survive restarts (snapshot+WAL,
// internal/store); with -peers and -advertise the replica joins a
// consistent-hash fleet that routes each formula to one owner
// (internal/serve fleet routing).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8723", "listen address (use :0 for an ephemeral port)")
		cpu        = flag.Int("cpu", 0, "total portfolio workers across running jobs (0 = all CPUs)")
		maxRunning = flag.Int("max-running", 0, "jobs solving concurrently (0 = min(4, cpu))")
		queue      = flag.Int("queue", 0, "queued-job backlog before submissions shed with 429 (0 = 64)")
		cacheCap   = flag.Int("cache", 0, "result-cache entries (0 = 256)")
		deadline   = flag.Duration("deadline", 0, "default per-job deadline (0 = 30s)")
		maxDead    = flag.Duration("max-deadline", 0, "hard per-job deadline ceiling (0 = 5m)")
		sessMax    = flag.Int("session-max-resident", 0, "sessions kept solver-resident before LRU checkpointing (0 = 32)")
		sessTTL    = flag.Duration("session-idle-ttl", 0, "idle time before a session is checkpointed to bytes (0 = 2m)")
		sessQueue  = flag.Int("session-queue", 0, "pending queries per session before 429 (0 = 16)")

		storeDir     = flag.String("store-dir", "", "durable store directory for cache/recipe/warm state (empty = in-memory only)")
		storeSync    = flag.Int("store-sync", 0, "fsync the WAL every N records (0 = every record, <0 = let the OS decide)")
		storeCompact = flag.Int64("store-compact", 0, "WAL bytes before auto-compaction into a snapshot (0 = 4MiB, <0 = never)")

		peers     = flag.String("peers", "", "comma-separated base URLs of the OTHER fleet replicas (enables consistent-hash job routing)")
		advertise = flag.String("advertise", "", "this replica's base URL exactly as it appears in peers' -peers lists (required with -peers)")

		pprof = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default: profiling endpoints are unauthenticated)")
	)
	flag.Parse()

	var st store.Store
	if *storeDir != "" {
		fs, err := store.OpenFile(*storeDir, store.FileOptions{SyncEvery: *storeSync, CompactBytes: *storeCompact})
		if err != nil {
			fmt.Fprintln(os.Stderr, "satserved: store:", err)
			os.Exit(1)
		}
		st = fs
		defer fs.Close() // after sched.Close has drained the write-behind queue
	}

	sched := serve.NewScheduler(serve.Config{
		Store:              st,
		CPUBudget:          *cpu,
		MaxRunning:         *maxRunning,
		QueueDepth:         *queue,
		CacheCap:           *cacheCap,
		DefaultTimeout:     *deadline,
		MaxTimeout:         *maxDead,
		SessionMaxResident: *sessMax,
		SessionIdleTTL:     *sessTTL,
		SessionQueueDepth:  *sessQueue,
	})
	api := serve.NewServer(sched)
	if *pprof {
		api.EnablePprof()
	}
	if *peers != "" {
		if *advertise == "" {
			fmt.Fprintln(os.Stderr, "satserved: -peers requires -advertise (this replica's base URL as the fleet knows it)")
			os.Exit(1)
		}
		var list []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		fleet, err := serve.NewFleet(*advertise, list, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "satserved:", err)
			os.Exit(1)
		}
		api.SetFleet(fleet)
	}
	srv := &http.Server{
		Handler: api,
		// Submit is synchronous by default and /watch streams for a
		// job's whole life, so no blanket write/idle timeouts; the
		// header read timeout still sheds dead or trickling clients.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "satserved:", err)
		os.Exit(1)
	}
	fmt.Printf("satserved listening on %s\n", ln.Addr())

	errC := make(chan error, 1)
	go func() { errC <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
	case err := <-errC:
		fmt.Fprintln(os.Stderr, "satserved:", err)
		sched.Close()
		os.Exit(1)
	}

	// Graceful stop: stop accepting, cancel in-flight jobs, drain.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	sched.Close()
}
