// Command doclint enforces the repository's documentation floor: every
// Go package under internal/ and cmd/, plus the root facade package,
// must carry a package-level doc comment (a comment block immediately
// preceding the package clause in at least one non-test file). CI runs
// it next to go vet; it exits non-zero listing every offending package.
//
// The check is deliberately narrow — it verifies the comment exists and
// is attached (a blank line between comment and package clause detaches
// it in godoc), not that it is good prose. Reviewers own the prose.
//
// Usage:
//
//	go run ./cmd/doclint [root]
//
// root defaults to the current directory.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}

	// Collect every directory containing non-test .go files under the
	// audited roots.
	dirs := map[string]bool{}
	addGoFiles := func(path string, d fs.DirEntry) {
		if !d.IsDir() && strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
	}
	for _, sub := range []string{"internal", "cmd"} {
		tree := filepath.Join(root, sub)
		if _, err := os.Stat(tree); os.IsNotExist(err) {
			continue
		}
		err := filepath.WalkDir(tree, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			addGoFiles(path, d)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
	}
	// The facade package: only the root directory itself, when it holds
	// Go files.
	if entries, err := os.ReadDir(root); err == nil {
		for _, e := range entries {
			addGoFiles(filepath.Join(root, e.Name()), e)
		}
	}

	var missing []string
	for dir := range dirs {
		ok, pkg, err := hasPackageComment(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		if !ok {
			missing = append(missing, fmt.Sprintf("%s (package %s)", dir, pkg))
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		fmt.Fprintf(os.Stderr, "doclint: no package doc comment: %s\n", m)
	}
	if len(missing) > 0 {
		os.Exit(1)
	}
}

// hasPackageComment reports whether any non-test Go file in dir carries
// a doc comment attached to its package clause.
func hasPackageComment(dir string) (bool, string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil {
		return false, "", err
	}
	name := ""
	for pkgName, pkg := range pkgs {
		name = pkgName
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				return true, pkgName, nil
			}
		}
	}
	return false, name, nil
}
