// Command cec checks two combinational .bench netlists for equivalence
// via a SAT miter (paper §3). With -internal it runs the
// simulation-guided internal-equivalence engine (candidate equivalent
// node pairs proven front-to-back with incremental SAT).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cec"
	"repro/internal/circuit"
)

func loadBench(path string) *circuit.Circuit {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cec:", err)
		os.Exit(1)
	}
	defer f.Close()
	c, latches, err := circuit.ParseBench(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cec:", err)
		os.Exit(1)
	}
	if len(latches) > 0 {
		fmt.Fprintln(os.Stderr, "cec: sequential circuits not supported")
		os.Exit(1)
	}
	return c
}

func main() {
	var (
		internal = flag.Bool("internal", false, "simulation-guided internal equivalences")
		maxConfl = flag.Int64("max-conflicts", 0, "conflict budget per query")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: cec [flags] a.bench b.bench")
		os.Exit(1)
	}
	a := loadBench(flag.Arg(0))
	b := loadBench(flag.Arg(1))
	res, err := cec.Check(a, b, cec.Options{
		Internal:     *internal,
		MaxConflicts: *maxConfl,
		Seed:         *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cec:", err)
		os.Exit(1)
	}
	if !res.Decided {
		fmt.Println("UNDECIDED (budget exhausted)")
		os.Exit(30)
	}
	if res.Equivalent {
		fmt.Printf("EQUIVALENT (sat calls %d, conflicts %d", res.SATCalls, res.Conflicts)
		if *internal {
			fmt.Printf(", candidates %d proven %d", res.Candidates, res.Proven)
		}
		fmt.Println(")")
		return
	}
	fmt.Print("NOT EQUIVALENT, counterexample:")
	for i, v := range res.Counterexample {
		bit := 0
		if v {
			bit = 1
		}
		fmt.Printf(" %s=%d", a.Name(a.Inputs[i]), bit)
	}
	fmt.Println()
	os.Exit(20)
}
