// Command bmc bounded-model-checks a sequential .bench netlist
// (paper §3 [Biere et al.]): the first declared output is the bad
// signal, latches reset to 0. It searches for a counterexample up to
// the given depth and can attempt a k-induction proof.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bmc"
)

func main() {
	var (
		depth    = flag.Int("depth", 20, "maximum unrolling depth")
		induct   = flag.Int("induction", 0, "attempt k-induction proof with this k (0 = off)")
		maxConfl = flag.Int64("max-conflicts", 0, "conflict budget per depth")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bmc [flags] design.bench")
		os.Exit(1)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmc:", err)
		os.Exit(1)
	}
	defer f.Close()
	seq, err := bmc.FromBench(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmc:", err)
		os.Exit(1)
	}
	opts := bmc.Options{MaxConflicts: *maxConfl}

	if *induct > 0 {
		proved, decided := bmc.Induction(seq, *induct, opts)
		switch {
		case proved:
			fmt.Printf("PROVED by %d-induction\n", *induct)
			return
		case decided:
			fmt.Printf("induction at k=%d inconclusive; falling back to BMC\n", *induct)
		default:
			fmt.Println("induction undecided (budget)")
		}
	}

	res := bmc.Check(seq, *depth, opts)
	if !res.Decided {
		fmt.Println("UNDECIDED (budget exhausted)")
		os.Exit(30)
	}
	if !res.Violated {
		fmt.Printf("SAFE up to depth %d (sat calls %d, conflicts %d)\n", *depth, res.SATCalls, res.Conflicts)
		return
	}
	fmt.Printf("VIOLATED at depth %d\n", res.Depth)
	free := seq.FreeInputs()
	for t, in := range res.Trace.Inputs {
		fmt.Printf("frame %d:", t)
		for i, v := range in {
			bit := 0
			if v {
				bit = 1
			}
			fmt.Printf(" %s=%d", seq.Comb.Name(free[i]), bit)
		}
		fmt.Println()
	}
	os.Exit(20)
}
