// Command slogate is the CI release gate: it evaluates a satload
// report (BENCH_serve.json) against the committed SLO definition
// (SLO.json) and prints every violation. With -enforce it exits
// non-zero on any violation — report-only on pull requests, enforcing
// on the main branch.
//
// Usage:
//
//	slogate -report BENCH_serve.json -slo SLO.json [-enforce]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/slogate"
)

func readJSON(path string, v any) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func main() {
	var (
		reportPath = flag.String("report", "BENCH_serve.json", "satload report to evaluate")
		sloPath    = flag.String("slo", "SLO.json", "committed SLO definition")
		enforce    = flag.Bool("enforce", false, "exit non-zero on violation (CI main-branch mode)")
	)
	flag.Parse()

	var report slogate.Report
	var slo slogate.SLO
	if err := readJSON(*reportPath, &report); err != nil {
		fmt.Fprintln(os.Stderr, "slogate:", err)
		os.Exit(2)
	}
	if err := readJSON(*sloPath, &slo); err != nil {
		fmt.Fprintln(os.Stderr, "slogate:", err)
		os.Exit(2)
	}

	violations := slogate.Evaluate(&report, &slo)
	fmt.Printf("slogate: scenario=%s duration=%.1fs completed=%d shed=%d errors=%d\n",
		report.Scenario, report.DurationS, report.Ops.Completed, report.Ops.Shed,
		report.Ops.Failed+report.Ops.Errors)
	if len(violations) == 0 {
		fmt.Println("slogate: PASS — all SLOs met")
		return
	}
	for _, v := range violations {
		fmt.Printf("slogate: VIOLATION %s\n", v)
	}
	if *enforce {
		fmt.Printf("slogate: FAIL — %d violation(s), enforcing\n", len(violations))
		os.Exit(1)
	}
	fmt.Printf("slogate: %d violation(s), report-only mode (pass -enforce to gate)\n", len(violations))
}
