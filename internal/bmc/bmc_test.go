package bmc

import (
	"context"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/solver"
)

func TestCounterExactDepth(t *testing.T) {
	for _, target := range []uint64{0, 1, 5, 11} {
		q := NewCounter(4, target)
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
		res := Check(q, 16, Options{})
		if !res.Decided || !res.Violated {
			t.Fatalf("target %d: expected violation", target)
		}
		if res.Depth != int(target) {
			t.Fatalf("target %d: depth %d, want %d", target, res.Depth, target)
		}
		if !ReplayTrace(q, res.Trace) {
			t.Fatalf("target %d: trace replay does not hit bad", target)
		}
	}
}

func TestCounterSafeWithinBound(t *testing.T) {
	q := NewCounter(4, 12)
	res := Check(q, 11, Options{})
	if !res.Decided {
		t.Fatal("expected decided")
	}
	if res.Violated {
		t.Fatal("target 12 not reachable within 11 steps")
	}
}

func TestStepSimulator(t *testing.T) {
	q := NewCounter(3, 7)
	state := q.InitialState()
	for step := 0; step < 7; step++ {
		var bad bool
		state, bad = q.Step(state, nil)
		if bad {
			t.Fatalf("bad fired early at step %d", step)
		}
	}
	// After 7 increments the state is 7 → bad must fire now.
	_, bad := q.Step(state, nil)
	if !bad {
		t.Fatal("bad should fire at count 7")
	}
}

func TestLoadableCounterTrace(t *testing.T) {
	q := NewLoadableCounter(4, 9)
	res := Check(q, 5, Options{})
	if !res.Violated {
		t.Fatal("loadable counter can reach any value quickly")
	}
	if res.Depth > 2 {
		t.Fatalf("depth %d; loading should reach target in <= 2 steps", res.Depth)
	}
	if !ReplayTrace(q, res.Trace) {
		t.Fatal("trace replay failed")
	}
	if len(res.Trace.Inputs[0]) != len(q.FreeInputs()) {
		t.Fatalf("trace input arity wrong: %d vs %d", len(res.Trace.Inputs[0]), len(q.FreeInputs()))
	}
}

func TestRingInvariantNoViolation(t *testing.T) {
	q := NewRingOneHot(5)
	res := Check(q, 12, Options{})
	if !res.Decided {
		t.Fatal("expected decided")
	}
	if res.Violated {
		t.Fatal("one-hot invariant must hold under rotation")
	}
}

func TestInductionProvesRing(t *testing.T) {
	q := NewRingOneHot(4)
	proved, decided := Induction(q, 1, Options{})
	if !decided {
		t.Fatal("induction ran out of budget")
	}
	if !proved {
		t.Fatal("1-induction should prove the rotation invariant")
	}
}

func TestInductionRejectsReachableBad(t *testing.T) {
	q := NewCounter(3, 5)
	proved, decided := Induction(q, 2, Options{})
	if !decided {
		t.Fatal("undecided")
	}
	if proved {
		t.Fatal("induction must not prove a violated property")
	}
}

func TestInductionEventuallyProvesCounterSafety(t *testing.T) {
	// 2-bit counter with unreachable target? All 4 values are reachable,
	// so use the ring instead with larger k to exercise simple-path
	// constraints: at k too small the step case may fail, at larger k it
	// must prove.
	q := NewRingOneHot(3)
	for k := 1; k <= 3; k++ {
		proved, decided := Induction(q, k, Options{})
		if decided && proved {
			return
		}
	}
	t.Fatal("induction failed up to k=3 on a true invariant")
}

func TestFromBench(t *testing.T) {
	src := `
# toggling latch: q' = NOT q, bad = q
INPUT(en)
OUTPUT(bad)
q = DFF(d)
d = NOT(q)
bad = AND(q, en)
`
	q, err := FromBench(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(q.Latches) != 1 || len(q.FreeInputs()) != 1 {
		t.Fatalf("shape wrong: %d latches, %d free inputs", len(q.Latches), len(q.FreeInputs()))
	}
	res := Check(q, 4, Options{})
	if !res.Violated {
		t.Fatal("bad reachable: q toggles to 1 at step 1 with en=1")
	}
	if res.Depth != 1 {
		t.Fatalf("depth %d, want 1", res.Depth)
	}
	if !ReplayTrace(q, res.Trace) {
		t.Fatal("replay failed")
	}
}

func TestUnconstrainedInitialState(t *testing.T) {
	// With a free initial state the counter can start AT the target.
	q := NewCounter(3, 6)
	for i := range q.Init {
		q.Init[i] = cnf.Undef
	}
	res := Check(q, 0, Options{})
	if !res.Violated || res.Depth != 0 {
		t.Fatalf("free init should violate at depth 0: %+v", res)
	}
}

func TestBudgetReturnsUndecided(t *testing.T) {
	// A deterministic counter is decided by propagation alone, so budget
	// exhaustion needs free inputs that force decisions.
	q := NewLoadableCounter(4, 9)
	res := Check(q, 5, Options{Solver: solver.Options{MaxDecisions: 1}})
	if res.Decided {
		t.Fatal("tiny decision budget should leave the check undecided")
	}
}

func TestLFSRDepthMatchesSimulation(t *testing.T) {
	// 4-bit maximal LFSR (taps 3,2): simulate to find when state 9 is
	// reached, then confirm BMC reports exactly that depth.
	q := NewLFSR(4, []int{3, 2}, 9)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	state := q.InitialState()
	wantDepth := -1
	for step := 0; step < 20; step++ {
		// Check bad at current state via Step's bad output: Step returns
		// bad computed from the CURRENT state.
		_, bad := q.Step(state, nil)
		if bad {
			wantDepth = step
			break
		}
		state, _ = q.Step(state, nil)
	}
	if wantDepth < 0 {
		t.Skip("state 9 not reached within 20 steps for this tap choice")
	}
	res := Check(q, 20, Options{})
	if !res.Violated || res.Depth != wantDepth {
		t.Fatalf("BMC depth %d (violated=%v), simulation says %d", res.Depth, res.Violated, wantDepth)
	}
	if !ReplayTrace(q, res.Trace) {
		t.Fatal("trace replay failed")
	}
}

func TestSequentialBenchRoundTrip(t *testing.T) {
	// The counter model contains a constant node, which .bench cannot
	// express: serialization must fail loudly rather than corrupt.
	q := NewCounter(3, 5)
	if _, err := circuit.BenchString(q.Comb, q.Latches); err == nil {
		t.Fatal("serializing a constant node should error")
	}
	// A latch design without constants round-trips.
	src := `
INPUT(en)
OUTPUT(bad)
q0 = DFF(d0)
q1 = DFF(d1)
d0 = XOR(q0, en)
d1 = XOR(q1, q0)
bad = AND(q0, q1)
`
	q2, err := FromBench(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out, err := circuit.BenchString(q2.Comb, q2.Latches)
	if err != nil {
		t.Fatal(err)
	}
	q3, err := FromBench(strings.NewReader(out))
	if err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, out)
	}
	r2 := Check(q2, 8, Options{})
	r3 := Check(q3, 8, Options{})
	if r2.Violated != r3.Violated || r2.Depth != r3.Depth {
		t.Fatalf("round trip changed behaviour: %+v vs %+v", r2, r3)
	}
}

// TestTraceInputVectorCount pins the "k+1 input vectors" contract of
// extractTrace: a depth-k counterexample carries exactly k+1 input
// vectors and k+1 states (the violating frame's inputs matter — bad is
// combinational in frame k), and the trace replays to a violation.
func TestTraceInputVectorCount(t *testing.T) {
	q := NewLoadableCounter(3, 5)
	res := Check(q, 8, Options{})
	if !res.Violated {
		t.Fatal("expected a violation")
	}
	tr := res.Trace
	if len(tr.Inputs) != res.Depth+1 {
		t.Fatalf("%d input vectors for depth %d, want %d", len(tr.Inputs), res.Depth, res.Depth+1)
	}
	if len(tr.States) != res.Depth+1 {
		t.Fatalf("%d states for depth %d, want %d", len(tr.States), res.Depth, res.Depth+1)
	}
	if tr.Depth() != res.Depth {
		t.Fatalf("Trace.Depth() = %d, want %d", tr.Depth(), res.Depth)
	}
	if !ReplayTrace(q, tr) {
		t.Fatal("trace replay does not hit bad")
	}
}

// TestCheckContextCancel checks cooperative cancellation: a cancelled
// context makes CheckContext return undecided instead of running the
// full unrolling.
func TestCheckContextCancel(t *testing.T) {
	q := NewCounter(12, 4000) // deep enough that 4000 frames take a while
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := CheckContext(ctx, q, 4000, Options{})
	if res.Decided {
		t.Fatal("cancelled run should be undecided")
	}
}
