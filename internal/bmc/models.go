package bmc

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/cnf"
)

// NewCounter builds an n-bit binary counter starting at 0 and
// incrementing every cycle, with the bad signal asserted when the count
// equals target. The shortest counterexample has exactly `target` steps,
// giving BMC benches a known ground truth.
func NewCounter(n int, target uint64) *Sequential {
	if target >= 1<<uint(n) {
		panic("bmc: target out of range")
	}
	c := circuit.New()
	qs := make([]circuit.NodeID, n)
	for i := 0; i < n; i++ {
		qs[i] = c.AddInput(fmt.Sprintf("q%d", i))
	}
	// next = q + 1 (ripple increment): sum_i = q_i XOR carry_i,
	// carry_0 = 1, carry_{i+1} = q_i AND carry_i.
	ds := make([]circuit.NodeID, n)
	carry := c.AddConst(true, "c0")
	for i := 0; i < n; i++ {
		ds[i] = c.AddGate(circuit.Xor, fmt.Sprintf("d%d", i), qs[i], carry)
		if i < n-1 {
			carry = c.AddGate(circuit.And, fmt.Sprintf("c%d", i+1), qs[i], carry)
		}
	}
	// bad = (q == target).
	bits := make([]circuit.NodeID, n)
	for i := 0; i < n; i++ {
		if target&(1<<uint(i)) != 0 {
			bits[i] = qs[i]
		} else {
			bits[i] = c.AddGate(circuit.Not, fmt.Sprintf("nq%d", i), qs[i])
		}
	}
	var bad circuit.NodeID
	if n == 1 {
		bad = c.AddGate(circuit.Buf, "bad", bits[0])
	} else {
		bad = c.AddGate(circuit.And, "bad", bits...)
	}
	c.MarkOutput(bad)

	latches := make([]circuit.Latch, n)
	init := make([]cnf.LBool, n)
	for i := 0; i < n; i++ {
		latches[i] = circuit.Latch{Output: qs[i], Input: ds[i]}
		init[i] = cnf.False
	}
	return &Sequential{Comb: c, Latches: latches, Init: init, Bad: bad}
}

// NewRingOneHot builds an n-bit one-hot ring counter initialized to
// 10…0 whose bad signal fires when the state is NOT one-hot. The
// property is a true invariant (rotation preserves one-hotness), so BMC
// never finds a violation and 1-induction with simple-path constraints
// proves it.
func NewRingOneHot(n int) *Sequential {
	c := circuit.New()
	qs := make([]circuit.NodeID, n)
	for i := 0; i < n; i++ {
		qs[i] = c.AddInput(fmt.Sprintf("q%d", i))
	}
	// next_i = q_{i-1 mod n} (rotate left by one).
	ds := make([]circuit.NodeID, n)
	for i := 0; i < n; i++ {
		ds[i] = c.AddGate(circuit.Buf, fmt.Sprintf("d%d", i), qs[(i+n-1)%n])
	}
	// one-hot check: exactly one bit set. atLeastOne = OR(q); no pair
	// set = NOR over pairwise ANDs.
	atLeast := c.AddGate(circuit.Or, "atleast1", qs...)
	var pairs []circuit.NodeID
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, c.AddGate(circuit.And, fmt.Sprintf("p%d_%d", i, j), qs[i], qs[j]))
		}
	}
	var anyPair circuit.NodeID
	if len(pairs) == 1 {
		anyPair = pairs[0]
	} else {
		anyPair = c.AddGate(circuit.Or, "anypair", pairs...)
	}
	notAtLeast := c.AddGate(circuit.Not, "none", atLeast)
	bad := c.AddGate(circuit.Or, "bad", notAtLeast, anyPair)
	c.MarkOutput(bad)

	latches := make([]circuit.Latch, n)
	init := make([]cnf.LBool, n)
	for i := 0; i < n; i++ {
		latches[i] = circuit.Latch{Output: qs[i], Input: ds[i]}
		init[i] = cnf.False
	}
	init[0] = cnf.True
	return &Sequential{Comb: c, Latches: latches, Init: init, Bad: bad}
}

// NewLoadableCounter builds an n-bit counter with a free `load` input
// that, when 1, loads the value from n free data inputs instead of
// incrementing. Reaching the target then takes 2 steps (load then
// compare) regardless of target — exercising input extraction in traces.
func NewLoadableCounter(n int, target uint64) *Sequential {
	c := circuit.New()
	qs := make([]circuit.NodeID, n)
	for i := 0; i < n; i++ {
		qs[i] = c.AddInput(fmt.Sprintf("q%d", i))
	}
	load := c.AddInput("load")
	data := make([]circuit.NodeID, n)
	for i := 0; i < n; i++ {
		data[i] = c.AddInput(fmt.Sprintf("in%d", i))
	}
	nload := c.AddGate(circuit.Not, "nload", load)
	carry := c.AddConst(true, "c0")
	ds := make([]circuit.NodeID, n)
	for i := 0; i < n; i++ {
		inc := c.AddGate(circuit.Xor, fmt.Sprintf("inc%d", i), qs[i], carry)
		if i < n-1 {
			carry = c.AddGate(circuit.And, fmt.Sprintf("c%d", i+1), qs[i], carry)
		}
		a := c.AddGate(circuit.And, fmt.Sprintf("selinc%d", i), inc, nload)
		b := c.AddGate(circuit.And, fmt.Sprintf("seldat%d", i), data[i], load)
		ds[i] = c.AddGate(circuit.Or, fmt.Sprintf("d%d", i), a, b)
	}
	bits := make([]circuit.NodeID, n)
	for i := 0; i < n; i++ {
		if target&(1<<uint(i)) != 0 {
			bits[i] = qs[i]
		} else {
			bits[i] = c.AddGate(circuit.Not, fmt.Sprintf("nq%d", i), qs[i])
		}
	}
	bad := c.AddGate(circuit.And, "bad", bits...)
	c.MarkOutput(bad)

	latches := make([]circuit.Latch, n)
	init := make([]cnf.LBool, n)
	for i := 0; i < n; i++ {
		latches[i] = circuit.Latch{Output: qs[i], Input: ds[i]}
		init[i] = cnf.False
	}
	return &Sequential{Comb: c, Latches: latches, Init: init, Bad: bad}
}

// NewLFSR builds an n-bit Fibonacci linear feedback shift register with
// the given tap positions (bit indices XORed into the new bit, which
// shifts in at position 0). Seeded with 1, a maximal-length LFSR walks
// 2^n - 1 states; the bad signal fires when the state equals `target`,
// giving BMC workloads with depths determined by the LFSR sequence.
func NewLFSR(n int, taps []int, target uint64) *Sequential {
	c := circuit.New()
	qs := make([]circuit.NodeID, n)
	for i := 0; i < n; i++ {
		qs[i] = c.AddInput(fmt.Sprintf("q%d", i))
	}
	tapNodes := make([]circuit.NodeID, len(taps))
	for i, tp := range taps {
		tapNodes[i] = qs[tp]
	}
	var fb circuit.NodeID
	if len(tapNodes) == 1 {
		fb = c.AddGate(circuit.Buf, "fb", tapNodes[0])
	} else {
		fb = c.AddGate(circuit.Xor, "fb", tapNodes...)
	}
	ds := make([]circuit.NodeID, n)
	ds[0] = fb
	for i := 1; i < n; i++ {
		ds[i] = c.AddGate(circuit.Buf, fmt.Sprintf("d%d", i), qs[i-1])
	}
	bits := make([]circuit.NodeID, n)
	for i := 0; i < n; i++ {
		if target&(1<<uint(i)) != 0 {
			bits[i] = qs[i]
		} else {
			bits[i] = c.AddGate(circuit.Not, fmt.Sprintf("nq%d", i), qs[i])
		}
	}
	bad := c.AddGate(circuit.And, "bad", bits...)
	c.MarkOutput(bad)

	latches := make([]circuit.Latch, n)
	init := make([]cnf.LBool, n)
	for i := 0; i < n; i++ {
		latches[i] = circuit.Latch{Output: qs[i], Input: ds[i]}
		init[i] = cnf.False
	}
	init[0] = cnf.True // seed = 1
	return &Sequential{Comb: c, Latches: latches, Init: init, Bad: bad}
}
