// Package bmc implements SAT-based bounded model checking of sequential
// circuits (paper §3; [Biere, Cimatti, Clarke & Zhu, "Symbolic Model
// Checking without BDDs"]). The transition relation is a combinational
// circuit whose latch outputs are pseudo primary inputs; checking whether
// a bad state is reachable within k steps unrolls k copies of the
// circuit into one CNF formula and asks SAT for a violating path. The
// unrolling is incremental (§6): each new time frame is added to the same
// solver and the bad-state question is posed as an assumption, so
// learned clauses carry across depths. A k-induction engine (with
// simple-path uniqueness constraints) can prove safety of invariant
// properties.
package bmc

import (
	"context"
	"fmt"
	"io"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/portfolio"
	"repro/internal/solver"
)

// Sequential is a sequential circuit: a combinational core whose latch
// outputs appear as pseudo primary inputs, plus latch wiring and initial
// values. Bad is the property node: the design is safe iff Bad is never
// 1 in any reachable state.
type Sequential struct {
	Comb    *circuit.Circuit
	Latches []circuit.Latch
	// Init holds the initial value per latch (parallel to Latches);
	// Undef means unconstrained.
	Init []cnf.LBool
	// Bad is the property violation signal within Comb.
	Bad circuit.NodeID
}

// FromBench parses a sequential .bench netlist; the property is the
// first declared output (1 = violation), latches reset to 0.
func FromBench(r io.Reader) (*Sequential, error) {
	c, latches, err := circuit.ParseBench(r)
	if err != nil {
		return nil, err
	}
	if len(c.Outputs) == 0 {
		return nil, fmt.Errorf("bmc: no outputs (property signal) declared")
	}
	init := make([]cnf.LBool, len(latches))
	for i := range init {
		init[i] = cnf.False
	}
	return &Sequential{Comb: c, Latches: latches, Init: init, Bad: c.Outputs[0]}, nil
}

// Validate checks structural sanity.
func (q *Sequential) Validate() error {
	if err := q.Comb.Validate(); err != nil {
		return err
	}
	if len(q.Init) != len(q.Latches) {
		return fmt.Errorf("bmc: %d init values for %d latches", len(q.Init), len(q.Latches))
	}
	isInput := make(map[circuit.NodeID]bool)
	for _, in := range q.Comb.Inputs {
		isInput[in] = true
	}
	for _, l := range q.Latches {
		if !isInput[l.Output] {
			return fmt.Errorf("bmc: latch output %d is not a pseudo-input", l.Output)
		}
	}
	return nil
}

// FreeInputs returns the true primary inputs (excluding latch outputs).
func (q *Sequential) FreeInputs() []circuit.NodeID {
	isLatch := make(map[circuit.NodeID]bool)
	for _, l := range q.Latches {
		isLatch[l.Output] = true
	}
	var out []circuit.NodeID
	for _, in := range q.Comb.Inputs {
		if !isLatch[in] {
			out = append(out, in)
		}
	}
	return out
}

// Step computes the next latch state and the bad flag from the current
// state and one input vector — the reference sequential simulator used
// to replay counterexample traces.
func (q *Sequential) Step(state []bool, inputs []bool) (next []bool, bad bool) {
	free := q.FreeInputs()
	if len(inputs) != len(free) {
		panic("bmc: Step input count mismatch")
	}
	if len(state) != len(q.Latches) {
		panic("bmc: Step state size mismatch")
	}
	full := make([]bool, len(q.Comb.Inputs))
	idxOf := make(map[circuit.NodeID]int)
	for i, in := range q.Comb.Inputs {
		idxOf[in] = i
	}
	for i, in := range free {
		full[idxOf[in]] = inputs[i]
	}
	for i, l := range q.Latches {
		full[idxOf[l.Output]] = state[i]
	}
	vals := q.Comb.SimulateBool(full)
	next = make([]bool, len(q.Latches))
	for i, l := range q.Latches {
		next[i] = vals[l.Input]
	}
	return next, vals[q.Bad]
}

// InitialState returns the initial latch state (Undef entries default to
// false for simulation purposes).
func (q *Sequential) InitialState() []bool {
	st := make([]bool, len(q.Latches))
	for i, v := range q.Init {
		st[i] = v == cnf.True
	}
	return st
}

// Trace is a counterexample: per-frame free-input vectors leading from
// the initial state to a bad state.
type Trace struct {
	Inputs [][]bool // [frame][free input]
	States [][]bool // [frame][latch] (includes the initial state)
}

// Depth returns the number of steps to the violation. A depth-k trace
// carries k+1 input vectors — the violating frame's inputs feed the
// combinational bad signal — so this is one less than len(Inputs).
func (t *Trace) Depth() int {
	if len(t.Inputs) == 0 {
		return 0
	}
	return len(t.Inputs) - 1
}

// Result reports a BMC run.
type Result struct {
	// Violated is true if a bad state is reachable within the bound.
	Violated bool
	// Depth is the first violating frame (when Violated).
	Depth int
	// Trace is the counterexample (when Violated).
	Trace *Trace
	// Decided is false if a budget was exhausted before the bound.
	Decided   bool
	Conflicts int64
	SATCalls  int
}

// Options configures BMC.
type Options struct {
	// MaxConflicts bounds each depth query (0 = unlimited).
	MaxConflicts int64
	// Solver carries base solver options.
	Solver solver.Options
	// Monitor, when non-nil, receives the incremental unrolling solver
	// for live progress sampling while CheckContext runs (conflicts,
	// restarts, glue share). The Monitor must be private to this run.
	Monitor *portfolio.Monitor
}

// unroller incrementally adds time frames to one solver.
type unroller struct {
	q       *Sequential
	s       *solver.Solver
	varOf   [][]cnf.Var // [frame][node] -> solver var
	numVars int
}

func newUnroller(q *Sequential, opts Options) *unroller {
	sopts := opts.Solver
	sopts.MaxConflicts = opts.MaxConflicts
	return &unroller{q: q, s: solver.New(0, sopts)}
}

// addFrame encodes frame t (0-based) and returns the bad literal of that
// frame. Frames must be added in order.
func (u *unroller) addFrame() cnf.Lit {
	t := len(u.varOf)
	scratch := cnf.New(u.s.NumVars())
	enc := circuit.EncodeInto(scratch, u.q.Comb)
	vars := make([]cnf.Var, len(u.q.Comb.Nodes))
	copy(vars, enc.VarOf)
	u.varOf = append(u.varOf, vars)
	for u.s.NumVars() < scratch.NumVars() {
		u.s.NewVar()
	}
	for _, cl := range scratch.Clauses {
		u.s.AddClause(cl)
	}
	if t == 0 {
		for i, l := range u.q.Latches {
			switch u.q.Init[i] {
			case cnf.True:
				u.s.AddClause(cnf.Clause{cnf.PosLit(vars[l.Output])})
			case cnf.False:
				u.s.AddClause(cnf.Clause{cnf.NegLit(vars[l.Output])})
			}
		}
	} else {
		prev := u.varOf[t-1]
		for _, l := range u.q.Latches {
			q, d := vars[l.Output], prev[l.Input]
			u.s.AddClause(cnf.Clause{cnf.NegLit(q), cnf.PosLit(d)})
			u.s.AddClause(cnf.Clause{cnf.PosLit(q), cnf.NegLit(d)})
		}
	}
	return cnf.PosLit(vars[u.q.Bad])
}

// Check runs BMC for depths 0..maxDepth and returns the first violation.
func Check(q *Sequential, maxDepth int, opts Options) *Result {
	return CheckContext(context.Background(), q, maxDepth, opts)
}

// CheckContext is Check under a context: cancelling ctx interrupts the
// current SAT query cooperatively (solver.Interrupt) and the run
// returns with Decided false. When opts.Monitor is set, the unrolling
// solver is attached to it for the duration of the run, so another
// goroutine can sample live progress.
func CheckContext(ctx context.Context, q *Sequential, maxDepth int, opts Options) *Result {
	res := &Result{}
	u := newUnroller(q, opts)
	stopWatch := context.AfterFunc(ctx, u.s.Interrupt)
	defer stopWatch()
	detach := opts.Monitor.Attach(0, 0, "bmc-unroll", u.s)
	defer detach("")
	for k := 0; k <= maxDepth; k++ {
		bad := u.addFrame()
		res.SATCalls++
		switch u.s.Solve(bad) {
		case solver.Sat:
			res.Violated = true
			res.Decided = true
			res.Depth = k
			res.Trace = u.extractTrace(k)
			res.Conflicts = u.s.Stats.Conflicts
			return res
		case solver.Unsat:
			// No violation at exactly depth k; continue deeper.
		default:
			res.Conflicts = u.s.Stats.Conflicts
			return res // budget exhausted: Decided stays false
		}
	}
	res.Decided = true
	res.Conflicts = u.s.Stats.Conflicts
	return res
}

func (u *unroller) extractTrace(k int) *Trace {
	m := u.s.Model()
	tr := &Trace{}
	free := u.q.FreeInputs()
	// Every frame 0..k contributes one state and one input vector: the
	// inputs at the violating frame itself matter too (bad is
	// combinational in frame k), so the trace carries k+1 input vectors
	// while reporting depth k.
	for t := 0; t <= k; t++ {
		st := make([]bool, len(u.q.Latches))
		for i, l := range u.q.Latches {
			st[i] = m.Value(u.varOf[t][l.Output]) == cnf.True
		}
		tr.States = append(tr.States, st)
		in := make([]bool, len(free))
		for i, id := range free {
			in[i] = m.Value(u.varOf[t][id]) == cnf.True
		}
		tr.Inputs = append(tr.Inputs, in)
	}
	return tr
}

// ReplayTrace simulates the trace and reports whether the bad signal
// fires at its final frame — used to validate counterexamples.
func ReplayTrace(q *Sequential, tr *Trace) bool {
	state := make([]bool, len(q.Latches))
	copy(state, tr.States[0])
	// Frames 0..depth-1 step; at the final frame only the bad output
	// matters.
	for t := 0; t < len(tr.Inputs); t++ {
		next, bad := q.Step(state, tr.Inputs[t])
		if t == len(tr.Inputs)-1 {
			return bad
		}
		state = next
	}
	return false
}

// Induction attempts to prove the property by k-induction with
// simple-path constraints: if no bad state is reachable in k steps from
// the initial state (base, via Check) and every length-k path of
// distinct states ending in a bad state is impossible (step), the
// property holds for all depths. It returns (proved, decided).
func Induction(q *Sequential, k int, opts Options) (bool, bool) {
	base := Check(q, k, opts)
	if !base.Decided {
		return false, false
	}
	if base.Violated {
		return false, true
	}
	// Step case: frames 0..k with free initial state, ¬bad in frames
	// 0..k-1, bad at frame k, all states pairwise distinct.
	sopts := opts.Solver
	sopts.MaxConflicts = opts.MaxConflicts
	s := solver.New(0, sopts)
	var frames [][]cnf.Var
	addFrame := func() []cnf.Var {
		scratch := cnf.New(s.NumVars())
		enc := circuit.EncodeInto(scratch, q.Comb)
		for s.NumVars() < scratch.NumVars() {
			s.NewVar()
		}
		for _, cl := range scratch.Clauses {
			s.AddClause(cl)
		}
		vars := make([]cnf.Var, len(q.Comb.Nodes))
		copy(vars, enc.VarOf)
		frames = append(frames, vars)
		return vars
	}
	for t := 0; t <= k; t++ {
		vars := addFrame()
		if t > 0 {
			prev := frames[t-1]
			for _, l := range q.Latches {
				qv, d := vars[l.Output], prev[l.Input]
				s.AddClause(cnf.Clause{cnf.NegLit(qv), cnf.PosLit(d)})
				s.AddClause(cnf.Clause{cnf.PosLit(qv), cnf.NegLit(d)})
			}
		}
		if t < k {
			s.AddClause(cnf.Clause{cnf.NegLit(vars[q.Bad])}) // ¬bad_t
		} else {
			s.AddClause(cnf.Clause{cnf.PosLit(vars[q.Bad])}) // bad_k
		}
	}
	// Simple-path: states pairwise distinct (some latch differs).
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			diff := make(cnf.Clause, 0, len(q.Latches))
			for _, l := range q.Latches {
				scratch := cnf.New(s.NumVars())
				d := scratch.NewVar()
				circuit.AppendGateCNF(scratch, circuit.Xor, d,
					[]cnf.Var{frames[i][l.Output], frames[j][l.Output]})
				for s.NumVars() < scratch.NumVars() {
					s.NewVar()
				}
				for _, cl := range scratch.Clauses {
					s.AddClause(cl)
				}
				diff = append(diff, cnf.PosLit(d))
			}
			if len(diff) > 0 {
				s.AddClause(diff)
			}
		}
	}
	switch s.Solve() {
	case solver.Unsat:
		return true, true // induction step holds: property proved
	case solver.Sat:
		return false, true // step fails at this k
	}
	return false, false
}
