package redund

import "repro/internal/circuit"

// Cleanup simplifies a circuit by constant folding, buffer collapsing
// and dead-node elimination, preserving the primary inputs, the output
// count/order and the circuit function. It is the consolidation step run
// after each redundancy removal.
func Cleanup(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New()
	// folded[i]: either a constant (isConst) or a node in `out`.
	folded := make([]foldT, len(c.Nodes))

	var c0, c1 circuit.NodeID = circuit.NoNode, circuit.NoNode
	constNode := func(v bool) circuit.NodeID {
		if v {
			if c1 == circuit.NoNode {
				c1 = out.AddConst(true, "const1")
			}
			return c1
		}
		if c0 == circuit.NoNode {
			c0 = out.AddConst(false, "const0")
		}
		return c0
	}

	nameUsed := make(map[string]bool)
	freshName := func(base string) string {
		name := base
		for i := 2; nameUsed[name]; i++ {
			name = base + "_" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		nameUsed[name] = true
		return name
	}

	for i := range c.Nodes {
		n := &c.Nodes[i]
		switch n.Type {
		case circuit.Input:
			folded[i] = foldT{id: out.AddInput(freshName(n.Name))}
			continue
		case circuit.Const0:
			folded[i] = foldT{isConst: true, cv: false}
			continue
		case circuit.Const1:
			folded[i] = foldT{isConst: true, cv: true}
			continue
		}

		ins := make([]foldT, len(n.Fanin))
		for j, fn := range n.Fanin {
			ins[j] = folded[fn]
		}
		folded[i] = foldGate(out, n, ins, freshName)
	}

	for _, o := range c.Outputs {
		f := folded[o]
		if f.isConst {
			out.MarkOutput(constNode(f.cv))
		} else {
			out.MarkOutput(f.id)
		}
	}
	return prune(out)
}

// foldT is the folding state of a node: a known constant or a node id
// in the rebuilt circuit.
type foldT struct {
	isConst bool
	cv      bool
	id      circuit.NodeID
}

// foldGate folds one gate given its (possibly constant) fanins.
func foldGate(out *circuit.Circuit, n *circuit.Node, ins []foldT, freshName func(string) string) foldT {
	mk := func(t circuit.GateType, fanin ...circuit.NodeID) foldT {
		return foldT{id: out.AddGate(t, freshName(n.Name), fanin...)}
	}
	konst := func(v bool) foldT { return foldT{isConst: true, cv: v} }

	switch n.Type {
	case circuit.Buf, circuit.Not:
		inv := n.Type == circuit.Not
		if ins[0].isConst {
			return konst(ins[0].cv != inv)
		}
		if !inv {
			return ins[0] // collapse buffers
		}
		return mk(circuit.Not, ins[0].id)

	case circuit.And, circuit.Nand, circuit.Or, circuit.Nor:
		isAnd := n.Type == circuit.And || n.Type == circuit.Nand
		invOut := n.Type == circuit.Nand || n.Type == circuit.Nor
		controlling := !isAnd // 1 controls OR/NOR, 0 controls AND/NAND
		var live []circuit.NodeID
		for _, in := range ins {
			if in.isConst {
				if in.cv == controlling {
					return konst(controlling != invOut)
				}
				continue // neutral constant: drop
			}
			live = append(live, in.id)
		}
		switch len(live) {
		case 0:
			// All inputs neutral: identity value.
			return konst(!controlling != invOut)
		case 1:
			if invOut {
				return mk(circuit.Not, live[0])
			}
			return foldT{id: live[0]}
		default:
			return mk(n.Type, live...)
		}

	case circuit.Xor, circuit.Xnor:
		parity := n.Type == circuit.Xnor // accumulated constant parity
		var live []circuit.NodeID
		for _, in := range ins {
			if in.isConst {
				if in.cv {
					parity = !parity
				}
				continue
			}
			live = append(live, in.id)
		}
		switch len(live) {
		case 0:
			return konst(parity)
		case 1:
			if parity {
				return mk(circuit.Not, live[0])
			}
			return foldT{id: live[0]}
		default:
			if parity {
				return mk(circuit.Xnor, live...)
			}
			return mk(circuit.Xor, live...)
		}
	}
	panic("redund: foldGate on non-gate")
}

// prune removes nodes not reachable from the outputs (primary inputs are
// always kept to preserve the interface).
func prune(c *circuit.Circuit) *circuit.Circuit {
	keep := make([]bool, len(c.Nodes))
	var stack []circuit.NodeID
	for _, o := range c.Outputs {
		stack = append(stack, o)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if keep[n] {
			continue
		}
		keep[n] = true
		stack = append(stack, c.Nodes[n].Fanin...)
	}
	for _, in := range c.Inputs {
		keep[in] = true
	}
	out := circuit.New()
	newID := make([]circuit.NodeID, len(c.Nodes))
	for i := range c.Nodes {
		if !keep[i] {
			newID[i] = circuit.NoNode
			continue
		}
		n := &c.Nodes[i]
		switch n.Type {
		case circuit.Input:
			newID[i] = out.AddInput(n.Name)
		case circuit.Const0, circuit.Const1:
			newID[i] = out.AddConst(n.Type == circuit.Const1, n.Name)
		default:
			fanin := make([]circuit.NodeID, len(n.Fanin))
			for j, f := range n.Fanin {
				fanin[j] = newID[f]
			}
			newID[i] = out.AddGate(n.Type, n.Name, fanin...)
		}
	}
	for _, o := range c.Outputs {
		out.MarkOutput(newID[o])
	}
	return out
}
