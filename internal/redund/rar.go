package redund

import (
	"repro/internal/atpg"
	"repro/internal/cec"
	"repro/internal/circuit"
)

// RARReport describes a redundancy-addition-and-removal attempt.
type RARReport struct {
	CandidatesTried int
	Added           bool
	AddedSource     circuit.NodeID
	AddedTarget     circuit.NodeID
	RemovedFault    atpg.Fault
}

// AddAndRemove performs one step of redundancy addition and removal
// ([Entrena & Cheng], paper §3 "logic synthesis"): it searches for a
// connection (source → target gate) whose addition leaves the circuit
// function unchanged (the new connection is redundant) but makes some
// other existing connection redundant, then removes that connection.
// It returns the rewritten circuit (functionally equivalent to the
// input) and a report; when no profitable addition is found within
// maxCandidates, the original circuit is returned with Added=false.
func AddAndRemove(c *circuit.Circuit, maxCandidates int, opts Options) (*circuit.Circuit, *RARReport) {
	rep := &RARReport{}
	if maxCandidates == 0 {
		maxCandidates = 50
	}

	// Baseline redundancies: connections already removable are not RAR
	// wins; we look for NEW redundancies exposed by an addition.
	baseRedundant := map[string]bool{}
	base, _ := Identify(c, opts)
	for _, f := range base {
		baseRedundant[f.String()] = true
	}

	for gi := range c.Nodes {
		g := circuit.NodeID(gi)
		t := c.Nodes[g].Type
		if t != circuit.And && t != circuit.Or && t != circuit.Nand && t != circuit.Nor {
			continue
		}
		cone := c.TransitiveFanoutOf(g)
		inCone := map[circuit.NodeID]bool{}
		for _, n := range cone {
			inCone[n] = true
		}
		for ui := range c.Nodes {
			u := circuit.NodeID(ui)
			if u == g || inCone[u] {
				continue // would create a cycle
			}
			already := false
			for _, f := range c.Nodes[g].Fanin {
				if f == u {
					already = true
					break
				}
			}
			if already {
				continue
			}
			if rep.CandidatesTried >= maxCandidates {
				return c, rep
			}
			rep.CandidatesTried++

			c2 := addConnection(c, g, u)
			eq, err := cec.Check(c, c2, cec.Options{MaxConflicts: opts.MaxConflicts})
			if err != nil || !eq.Decided || !eq.Equivalent {
				continue // addition changes the function: not redundant
			}
			// The addition is redundant. Does it expose a NEW redundant
			// branch elsewhere?
			newRed, _ := Identify(c2, opts)
			for _, f := range newRed {
				if f.Pin < 0 {
					continue
				}
				// Skip the wire we just added (last pin of g).
				if f.Node == g && f.Pin == len(c2.Nodes[g].Fanin)-1 {
					continue
				}
				if baseRedundant[f.String()] {
					continue
				}
				c3 := Cleanup(applyRemoval(c2, f))
				rep.Added = true
				rep.AddedSource = u
				rep.AddedTarget = g
				rep.RemovedFault = f
				return c3, rep
			}
		}
	}
	return c, rep
}

// addConnection returns a copy of c with node u appended to gate g's
// fanin list. u must precede g topologically.
func addConnection(c *circuit.Circuit, g, u circuit.NodeID) *circuit.Circuit {
	d := c.Clone()
	if u < g {
		d.Nodes[g].Fanin = append(d.Nodes[g].Fanin, u)
		return d
	}
	// u comes after g in construction order: rebuild with g moved after u
	// is complex; instead rebuild the whole circuit in a topological
	// order that respects the new edge.
	out := circuit.New()
	newID := make([]circuit.NodeID, len(c.Nodes))
	done := make([]bool, len(c.Nodes))
	var visit func(id circuit.NodeID)
	visit = func(id circuit.NodeID) {
		if done[id] {
			return
		}
		n := &c.Nodes[id]
		for _, f := range n.Fanin {
			visit(f)
		}
		if id == g {
			visit(u)
		}
		done[id] = true
		switch n.Type {
		case circuit.Input:
			newID[id] = out.AddInput(n.Name)
		case circuit.Const0, circuit.Const1:
			newID[id] = out.AddConst(n.Type == circuit.Const1, n.Name)
		default:
			fanin := make([]circuit.NodeID, len(n.Fanin))
			for j, f := range n.Fanin {
				fanin[j] = newID[f]
			}
			if id == g {
				fanin = append(fanin, newID[u])
			}
			newID[id] = out.AddGate(n.Type, n.Name, fanin...)
		}
	}
	// Inputs first to preserve the interface order.
	for _, in := range c.Inputs {
		visit(in)
	}
	for i := range c.Nodes {
		visit(circuit.NodeID(i))
	}
	for _, o := range c.Outputs {
		out.MarkOutput(newID[o])
	}
	return out
}
