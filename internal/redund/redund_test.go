package redund

import (
	"math/rand"
	"testing"

	"repro/internal/atpg"
	"repro/internal/cec"
	"repro/internal/circuit"
)

// redundantCircuit builds a circuit with an obviously redundant cone:
// z = OR(b, AND(a, NOT(a))) — the AND is constant 0 and removable.
func redundantCircuit() *circuit.Circuit {
	c := circuit.New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	na := c.AddGate(circuit.Not, "na", a)
	dead := c.AddGate(circuit.And, "dead", a, na)
	z := c.AddGate(circuit.Or, "z", b, dead)
	c.MarkOutput(z)
	return c
}

func TestIdentifyFindsRedundancy(t *testing.T) {
	c := redundantCircuit()
	red, aborted := Identify(c, Options{})
	if aborted != 0 {
		t.Fatalf("aborted %d classifications", aborted)
	}
	found := false
	for _, f := range red {
		if f.Node == c.NodeByName("dead") && f.Pin < 0 && !f.StuckAt {
			found = true
		}
	}
	if !found {
		t.Fatalf("dead s-a-0 should be redundant; got %v", red)
	}
}

func TestRemovePreservesFunction(t *testing.T) {
	c := redundantCircuit()
	opt, rep := Remove(c, Options{})
	if len(rep.RemovedFaults) == 0 {
		t.Fatal("nothing removed")
	}
	if opt.NumGates() >= c.NumGates() {
		t.Fatalf("gates did not shrink: %d -> %d", c.NumGates(), opt.NumGates())
	}
	res, err := cec.Check(c, opt, cec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("removal changed the function")
	}
	// The optimized circuit should be irredundant except for faults on
	// dangling primary inputs (kept to preserve the interface).
	red, _ := Identify(opt, Options{})
	fo := opt.Fanouts()
	for _, f := range red {
		if opt.Nodes[f.Node].Type == circuit.Input && len(fo[f.Node]) == 0 {
			continue
		}
		t.Fatalf("still redundant after Remove: %v", red)
	}
}

func TestRemoveOnIrredundantCircuit(t *testing.T) {
	c := circuit.C17()
	opt, rep := Remove(c, Options{})
	if len(rep.RemovedFaults) != 0 {
		t.Fatalf("c17 is irredundant, removed %v", rep.RemovedFaults)
	}
	res, _ := cec.Check(c, opt, cec.Options{})
	if !res.Equivalent {
		t.Fatal("no-op removal changed function")
	}
}

func TestCleanupFoldsConstants(t *testing.T) {
	c := circuit.New()
	a := c.AddInput("a")
	one := c.AddConst(true, "one")
	zero := c.AddConst(false, "zero")
	g1 := c.AddGate(circuit.And, "g1", a, one)  // = a
	g2 := c.AddGate(circuit.Or, "g2", g1, zero) // = a
	g3 := c.AddGate(circuit.Xor, "g3", g2, one) // = NOT a
	c.MarkOutput(g3)
	opt := Cleanup(c)
	if opt.NumGates() != 1 {
		t.Fatalf("expected single NOT after folding, got %d gates", opt.NumGates())
	}
	res, _ := cec.Check(c, opt, cec.Options{})
	if !res.Equivalent {
		t.Fatal("cleanup changed function")
	}
}

func TestCleanupControllingConstants(t *testing.T) {
	c := circuit.New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	zero := c.AddConst(false, "zero")
	g := c.AddGate(circuit.And, "g", a, zero) // = 0
	h := c.AddGate(circuit.Or, "h", g, b)     // = b
	c.MarkOutput(h)
	opt := Cleanup(c)
	res, _ := cec.Check(c, opt, cec.Options{})
	if !res.Equivalent {
		t.Fatal("cleanup changed function")
	}
	if opt.NumGates() != 0 {
		t.Fatalf("expected all gates folded, got %d", opt.NumGates())
	}
}

func TestCleanupPreservesRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		c := circuit.RandomDAG(5, 20, 3, seed)
		opt := Cleanup(c)
		if err := opt.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 20; trial++ {
			in := make([]uint64, len(c.Inputs))
			for i := range in {
				in[i] = rng.Uint64()
			}
			cv := c.Simulate(in)
			ov := opt.Simulate(in)
			for i := range c.Outputs {
				if cv[c.Outputs[i]] != ov[opt.Outputs[i]] {
					t.Fatalf("seed %d: cleanup changed output %d", seed, i)
				}
			}
		}
	}
}

func TestCleanupNandNorFolding(t *testing.T) {
	c := circuit.New()
	a := c.AddInput("a")
	zero := c.AddConst(false, "zero")
	one := c.AddConst(true, "one")
	n1 := c.AddGate(circuit.Nand, "n1", a, zero) // = 1
	n2 := c.AddGate(circuit.Nor, "n2", a, one)   // = 0
	n3 := c.AddGate(circuit.Nand, "n3", a, one)  // = NOT a
	z := c.AddGate(circuit.Or, "z", n1, n2, n3)  // = 1
	c.MarkOutput(z)
	opt := Cleanup(c)
	res, _ := cec.Check(c, opt, cec.Options{})
	if !res.Equivalent {
		t.Fatal("cleanup changed function")
	}
	if opt.NumGates() != 0 {
		t.Fatalf("z is constant 1; expected full fold, got %d gates", opt.NumGates())
	}
}

func TestApplyRemovalBranch(t *testing.T) {
	// Branch redundancy: z = AND(a, OR(a, b)) — the OR gate is redundant
	// since AND(a, OR(a,b)) = a; the branch (z, pin1) can be set to 1.
	c := circuit.New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	or := c.AddGate(circuit.Or, "or", a, b)
	z := c.AddGate(circuit.And, "z", a, or)
	c.MarkOutput(z)
	fr := atpg.TestFault(c, atpg.Fault{Node: z, Pin: 1, StuckAt: true}, atpg.Options{})
	if fr.Status != atpg.Redundant {
		t.Fatalf("branch z.in1 s-a-1 should be redundant, got %v", fr.Status)
	}
	opt, rep := Remove(c, Options{})
	if len(rep.RemovedFaults) == 0 {
		t.Fatal("nothing removed")
	}
	res, _ := cec.Check(c, opt, cec.Options{})
	if !res.Equivalent {
		t.Fatal("branch removal changed function")
	}
	if opt.NumGates() >= c.NumGates() {
		t.Fatalf("expected shrink: %d -> %d", c.NumGates(), opt.NumGates())
	}
}

func TestAddAndRemovePreservesFunction(t *testing.T) {
	// RAR on a small circuit: whatever it does, the result must stay
	// equivalent; on this redundant circuit it may or may not find a
	// profitable move, both are acceptable.
	c := circuit.New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.Or, "g2", g1, d)
	g3 := c.AddGate(circuit.And, "g3", g2, a)
	c.MarkOutput(g3)
	opt, rep := AddAndRemove(c, 20, Options{})
	res, err := cec.Check(c, opt, cec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("RAR changed the function (report %+v)", rep)
	}
}

func TestAddConnectionTopology(t *testing.T) {
	// Adding a connection from a later node must produce a valid DAG.
	c := circuit.New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.Or, "g2", a, b) // later than g1, independent
	c.MarkOutput(g1)
	c.MarkOutput(g2)
	d := addConnection(c, g1, g2) // g1 gains fanin g2 (requires reorder)
	if err := d.Validate(); err != nil {
		t.Fatalf("reordered circuit invalid: %v", err)
	}
	// Function check: g1' = AND(a, b, OR(a, b)) = AND(a,b).
	for pat := 0; pat < 4; pat++ {
		in := []bool{pat&1 != 0, pat&2 != 0}
		v1 := c.SimulateBool(in)
		v2 := d.SimulateBool(in)
		want := v1[c.Outputs[0]] && (in[0] || in[1])
		if v2[d.Outputs[0]] != want {
			t.Fatalf("pattern %d: wrong function after addConnection", pat)
		}
	}
}
