// Package redund implements redundancy identification and removal
// (paper §3; [RID-GRASP: Kim, Marques-Silva, Savoj & Sakallah]) and a
// simplified redundancy-addition-and-removal (RAR) logic optimization
// pass ([Entrena & Cheng]).
//
// A single stuck-at fault whose ATPG instance is unsatisfiable is
// untestable; the corresponding circuitry is redundant and can be
// removed without changing the circuit function: a redundant stem
// s-a-v fault allows replacing the node with the constant v, and a
// redundant branch s-a-v fault allows replacing that connection with
// the constant v. Removal exposes further redundancies, so the flow
// iterates to a fixpoint.
package redund

import (
	"repro/internal/atpg"
	"repro/internal/circuit"
	"repro/internal/solver"
)

// Options configures redundancy removal.
type Options struct {
	// MaxIterations bounds the identify-remove loop (0 = 50).
	MaxIterations int
	// MaxConflicts bounds each ATPG SAT call (0 = atpg default).
	MaxConflicts int64
	// Solver carries base solver options.
	Solver solver.Options
}

// Report describes a removal run.
type Report struct {
	Iterations    int
	RemovedFaults []atpg.Fault
	GatesBefore   int
	GatesAfter    int
	NodesBefore   int
	NodesAfter    int
	Aborted       int // faults whose classification ran out of budget
}

// Identify returns the redundant (untestable) faults of c.
func Identify(c *circuit.Circuit, opts Options) ([]atpg.Fault, int) {
	faults := atpg.FaultUniverse(c)
	var redundant []atpg.Fault
	aborted := 0
	for _, f := range faults {
		fr := atpg.TestFault(c, f, atpg.Options{MaxConflicts: opts.MaxConflicts, Solver: opts.Solver})
		switch fr.Status {
		case atpg.Redundant:
			redundant = append(redundant, f)
		case atpg.Aborted:
			aborted++
		}
	}
	return redundant, aborted
}

// Remove iterates redundancy identification and removal until no
// redundant fault remains (or the iteration budget is hit). The returned
// circuit is functionally equivalent to the input.
func Remove(c *circuit.Circuit, opts Options) (*circuit.Circuit, *Report) {
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 50
	}
	rep := &Report{
		GatesBefore: c.NumGates(),
		NodesBefore: c.NumNodes(),
	}
	cur := c.Clone()
	for iter := 0; iter < opts.MaxIterations; iter++ {
		rep.Iterations = iter + 1
		redundant, aborted := Identify(cur, opts)
		rep.Aborted += aborted
		// Remove the first redundancy that makes progress, then
		// re-analyze: removals interact. Faults on dangling primary
		// inputs are permanently redundant but removable only by
		// changing the interface, which we never do.
		progressed := false
		fo := cur.Fanouts()
		for _, f := range redundant {
			if cur.Nodes[f.Node].Type == circuit.Input && len(fo[f.Node]) == 0 {
				continue // dangling PI: nothing to remove
			}
			next := Cleanup(applyRemoval(cur, f))
			if sameStructure(cur, next) {
				continue
			}
			cur = next
			rep.RemovedFaults = append(rep.RemovedFaults, f)
			progressed = true
			break
		}
		if !progressed {
			break
		}
	}
	rep.GatesAfter = cur.NumGates()
	rep.NodesAfter = cur.NumNodes()
	return cur, rep
}

// applyRemoval rewrites the circuit exploiting one redundant fault.
func applyRemoval(c *circuit.Circuit, f atpg.Fault) *circuit.Circuit {
	d := c.Clone()
	if f.Pin < 0 {
		if c.Nodes[f.Node].Type == circuit.Input {
			// A redundant PI fault means the input is a don't-care; its
			// uses become constant but the input itself stays so the
			// circuit interface is preserved.
			return replaceUsesWithConst(d, f.Node, f.StuckAt)
		}
		// Gate stem: the node is replaceable by the stuck constant.
		n := &d.Nodes[f.Node]
		if f.StuckAt {
			n.Type = circuit.Const1
		} else {
			n.Type = circuit.Const0
		}
		n.Fanin = nil
		return d
	}
	// Branch: the connection sees the constant. Insert a constant node;
	// it must come before the gate topologically, so rebuild with the
	// constant inserted at the front.
	return replacePinWithConst(d, f.Node, f.Pin, f.StuckAt)
}

// replaceUsesWithConst rebuilds the circuit with every fanin reference to
// node u replaced by a constant, keeping u itself.
func replaceUsesWithConst(c *circuit.Circuit, u circuit.NodeID, v bool) *circuit.Circuit {
	out := circuit.New()
	konst := out.AddConst(v, "redund_const")
	newID := make([]circuit.NodeID, len(c.Nodes))
	for i := range c.Nodes {
		n := &c.Nodes[i]
		switch n.Type {
		case circuit.Input:
			newID[i] = out.AddInput(n.Name)
		case circuit.Const0, circuit.Const1:
			newID[i] = out.AddConst(n.Type == circuit.Const1, n.Name)
		default:
			fanin := make([]circuit.NodeID, len(n.Fanin))
			for j, fn := range n.Fanin {
				if fn == u {
					fanin[j] = konst
				} else {
					fanin[j] = newID[fn]
				}
			}
			newID[i] = out.AddGate(n.Type, n.Name, fanin...)
		}
	}
	for _, o := range c.Outputs {
		if o == u {
			out.MarkOutput(konst)
		} else {
			out.MarkOutput(newID[o])
		}
	}
	return out
}

// replacePinWithConst rebuilds the circuit with gate `g`'s fanin `pin`
// replaced by a constant node.
func replacePinWithConst(c *circuit.Circuit, g circuit.NodeID, pin int, v bool) *circuit.Circuit {
	out := circuit.New()
	konst := out.AddConst(v, "redund_const")
	newID := make([]circuit.NodeID, len(c.Nodes))
	for i := range c.Nodes {
		n := &c.Nodes[i]
		switch n.Type {
		case circuit.Input:
			newID[i] = out.AddInput(n.Name)
		case circuit.Const0, circuit.Const1:
			newID[i] = out.AddConst(n.Type == circuit.Const1, n.Name)
		default:
			fanin := make([]circuit.NodeID, len(n.Fanin))
			for j, fn := range n.Fanin {
				if circuit.NodeID(i) == g && j == pin {
					fanin[j] = konst
				} else {
					fanin[j] = newID[fn]
				}
			}
			newID[i] = out.AddGate(n.Type, n.Name, fanin...)
		}
	}
	for _, o := range c.Outputs {
		out.MarkOutput(newID[o])
	}
	return out
}

// sameStructure reports whether two circuits have identical node lists —
// the no-progress test for the removal loop.
func sameStructure(a, b *circuit.Circuit) bool {
	if len(a.Nodes) != len(b.Nodes) || len(a.Outputs) != len(b.Outputs) {
		return false
	}
	for i := range a.Nodes {
		na, nb := &a.Nodes[i], &b.Nodes[i]
		if na.Type != nb.Type || len(na.Fanin) != len(nb.Fanin) {
			return false
		}
		for j := range na.Fanin {
			if na.Fanin[j] != nb.Fanin[j] {
				return false
			}
		}
	}
	for i := range a.Outputs {
		if a.Outputs[i] != b.Outputs[i] {
			return false
		}
	}
	return true
}
