// Package store is the durability layer under the serving fleet: a
// pluggable key-value record store that persists the serve-layer's
// result cache, recipe memory and branching warm-start profiles across
// restarts, plus the consistent-hash ring that shards those keys
// across satserved replicas.
//
// The contract is deliberately small — a Store is a last-write-wins
// map of (Kind, Key) → Val with append (Put), point lookup (Get), full
// replay (Replay) and on-demand compaction (Snapshot) — so backends
// can range from the in-memory MemStore to the crash-safe
// snapshot+WAL FileStore in this package, to an external database
// later without touching the serving layer.
//
// Durability model (FileStore): every Put appends one length-prefixed,
// CRC-checksummed record to an append-only WAL and fsyncs on a
// configurable cadence; on open, a snapshot (the compacted live state)
// is loaded first and the WAL replayed over it. A torn or corrupt WAL
// tail — the signature of a crash mid-write — is detected by the
// checksum, cleanly truncated at the last whole record, and never
// replayed partially. When the WAL outgrows a threshold the live state
// is rewritten into a new snapshot (write-to-temp, fsync, rename) and
// the WAL reset.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"
	"time"
)

// Kind namespaces record keys: the serving layer uses distinct kinds
// for result-cache entries, recipe-memory classes and warm-start
// profiles. Kinds are part of the on-disk format; never renumber a
// live one.
type Kind uint8

// Record is one durable fact: the latest Val stored under (Kind, Key).
// A nil Val is a tombstone — the key is deleted. (An empty-but-non-nil
// Val is a legal stored value, distinct from a tombstone.)
type Record struct {
	Kind Kind
	Key  []byte
	Val  []byte
}

// Store is the pluggable persistence contract. Implementations are
// safe for concurrent use. Put applies last-write-wins; Get reads the
// current value; Replay streams every live (non-deleted) record in a
// deterministic order; Snapshot compacts the backing log (a no-op for
// purely in-memory backends).
type Store interface {
	// Put records rec durably (rec.Val == nil deletes the key). The
	// record's slices are copied; the caller keeps ownership.
	Put(rec Record) error
	// Get returns a copy of the current value under (kind, key) and
	// whether the key is live.
	Get(kind Kind, key []byte) ([]byte, bool)
	// Replay calls fn for every live record, sorted by (Kind, Key); a
	// non-nil fn error aborts the walk and is returned. The Record
	// passed to fn aliases store-internal memory only for the duration
	// of the call.
	Replay(fn func(rec Record) error) error
	// Snapshot compacts the backing log into a snapshot of the live
	// state.
	Snapshot() error
	// Metrics reports the backend's durability counters.
	Metrics() Metrics
	// Close flushes and releases the backing resources. The store is
	// unusable afterwards.
	Close() error
}

// Metrics are a Store's durability counters, surfaced through the
// serving layer's /metrics endpoint.
type Metrics struct {
	// Keys is the live key count.
	Keys int
	// WALRecords / WALBytes describe the current (post-snapshot) WAL.
	WALRecords int64
	WALBytes   int64
	// SnapshotRecords is the record count of the snapshot on disk.
	SnapshotRecords int64
	// Compactions counts snapshot rewrites since open.
	Compactions int64
	// TailTruncations counts corrupt/torn WAL tails dropped at open.
	TailTruncations int64
	// Replay is the time spent loading state at open.
	Replay time.Duration
}

// ErrCorrupt marks a record that failed its structural or checksum
// validation. FileStore recovery treats a corrupt WAL *tail* as a torn
// write and truncates it; a corrupt snapshot is a hard open error.
var ErrCorrupt = errors.New("store: corrupt record")

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// --- record codec --------------------------------------------------------
//
// On-disk record framing (all integers little-endian):
//
//	u32  body length
//	u32  CRC-32C (Castagnoli) of body
//	body:
//	  u8   kind
//	  u8   flags (bit0 = tombstone)
//	  u32  key length
//	  ...  key bytes
//	  ...  value bytes (rest of body; absent for tombstones)

const (
	recHeaderLen  = 8        // length + checksum
	bodyFixedLen  = 6        // kind + flags + key length
	maxBodyLen    = 64 << 20 // structural sanity bound; rejects garbage lengths
	flagTombstone = 0x01
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendRecord appends rec's framed encoding to buf and returns the
// extended slice.
func appendRecord(buf []byte, rec Record) ([]byte, error) {
	bodyLen := bodyFixedLen + len(rec.Key)
	if rec.Val != nil {
		bodyLen += len(rec.Val)
	}
	if bodyLen > maxBodyLen {
		return buf, fmt.Errorf("%w: record body %d bytes exceeds %d", ErrCorrupt, bodyLen, maxBodyLen)
	}
	var flags byte
	if rec.Val == nil {
		flags |= flagTombstone
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header backfilled below
	buf = append(buf, byte(rec.Kind), flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Key)))
	buf = append(buf, rec.Key...)
	if rec.Val != nil {
		buf = append(buf, rec.Val...)
	}
	body := buf[start+recHeaderLen:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(body, crcTable))
	return buf, nil
}

// decodeBody parses a framed record body (past the length/CRC header).
// The returned Record's slices are copies.
func decodeBody(body []byte) (Record, error) {
	var rec Record
	if len(body) < bodyFixedLen {
		return rec, fmt.Errorf("%w: body %d bytes, need at least %d", ErrCorrupt, len(body), bodyFixedLen)
	}
	rec.Kind = Kind(body[0])
	flags := body[1]
	if flags&^flagTombstone != 0 {
		return rec, fmt.Errorf("%w: unknown flag bits %#x", ErrCorrupt, flags)
	}
	keyLen := binary.LittleEndian.Uint32(body[2:6])
	if uint64(keyLen) > uint64(len(body)-bodyFixedLen) {
		return rec, fmt.Errorf("%w: key length %d overruns body", ErrCorrupt, keyLen)
	}
	rec.Key = append([]byte{}, body[bodyFixedLen:bodyFixedLen+int(keyLen)]...)
	val := body[bodyFixedLen+int(keyLen):]
	if flags&flagTombstone != 0 {
		if len(val) != 0 {
			return rec, fmt.Errorf("%w: tombstone carries %d value bytes", ErrCorrupt, len(val))
		}
		rec.Val = nil
	} else {
		rec.Val = append([]byte{}, val...)
	}
	return rec, nil
}

// readRecord reads one framed record from r. It returns the record and
// the number of bytes consumed. io.EOF (with consumed == 0) is the
// clean end of the log; any partial read or checksum mismatch returns
// an error wrapping ErrCorrupt — the torn-tail signal recovery keys on.
func readRecord(r io.Reader) (Record, int, error) {
	var hdr [recHeaderLen]byte
	n, err := io.ReadFull(r, hdr[:])
	if err == io.EOF {
		return Record{}, 0, io.EOF
	}
	if err != nil {
		return Record{}, n, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, n)
	}
	bodyLen := binary.LittleEndian.Uint32(hdr[:4])
	if bodyLen < bodyFixedLen || bodyLen > maxBodyLen {
		return Record{}, n, fmt.Errorf("%w: implausible body length %d", ErrCorrupt, bodyLen)
	}
	body := make([]byte, bodyLen)
	m, err := io.ReadFull(r, body)
	if err != nil {
		return Record{}, n + m, fmt.Errorf("%w: short body (%d of %d bytes)", ErrCorrupt, m, bodyLen)
	}
	if sum := crc32.Checksum(body, crcTable); sum != binary.LittleEndian.Uint32(hdr[4:8]) {
		return Record{}, n + m, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	rec, err := decodeBody(body)
	if err != nil {
		return Record{}, n + m, err
	}
	return rec, n + m, nil
}

// --- shared in-memory state ----------------------------------------------

// compositeKey is the map key of the live state: kind byte + raw key.
func compositeKey(kind Kind, key []byte) string {
	b := make([]byte, 1+len(key))
	b[0] = byte(kind)
	copy(b[1:], key)
	return string(b)
}

// liveMap is the last-write-wins state both backends share.
type liveMap map[string][]byte

func (m liveMap) apply(rec Record) {
	ck := compositeKey(rec.Kind, rec.Key)
	if rec.Val == nil {
		delete(m, ck)
		return
	}
	m[ck] = append([]byte{}, rec.Val...)
}

// replay walks the live state sorted by composite key (Kind, then Key
// bytewise) so every replica and every reopen observes one order.
func (m liveMap) replay(fn func(rec Record) error) error {
	keys := make([]string, 0, len(m))
	for ck := range m {
		keys = append(keys, ck)
	}
	sort.Strings(keys)
	for _, ck := range keys {
		rec := Record{Kind: Kind(ck[0]), Key: []byte(ck[1:]), Val: m[ck]}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// --- MemStore -------------------------------------------------------------

// MemStore is the in-memory Store: full interface semantics, no
// durability. It backs tests and store-less deployments that still
// want the Store plumbing exercised.
type MemStore struct {
	mu     sync.Mutex
	live   liveMap
	closed bool
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore { return &MemStore{live: make(liveMap)} }

// Put implements Store.
func (s *MemStore) Put(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.live.apply(rec)
	return nil
}

// Get implements Store.
func (s *MemStore) Get(kind Kind, key []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.live[compositeKey(kind, key)]
	if !ok {
		return nil, false
	}
	return append([]byte{}, v...), true
}

// Replay implements Store.
func (s *MemStore) Replay(fn func(rec Record) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.live.replay(fn)
}

// Snapshot implements Store (a no-op: memory has no log to compact).
func (s *MemStore) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return nil
}

// Metrics implements Store.
func (s *MemStore) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Metrics{Keys: len(s.live)}
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
