package store

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// File names inside a store directory.
const (
	snapshotName = "snapshot"
	snapshotTemp = "snapshot.tmp"
	walName      = "wal"
)

// Magic headers: 8 bytes at offset 0 of each file. Versioned — bump
// the trailing digit on any incompatible format change.
var (
	snapshotMagic = []byte("SATSNAP1")
	walMagic      = []byte("SATWAL01")
)

// FileOptions tunes a FileStore.
type FileOptions struct {
	// SyncEvery fsyncs the WAL after every n Puts: 1 (the default when
	// 0) makes every record durable before Put returns; larger values
	// trade the tail of a crash for throughput; negative disables
	// explicit fsync entirely (the OS flushes on its own schedule).
	SyncEvery int
	// CompactBytes is the WAL size that triggers compaction into a
	// fresh snapshot (0 = 4 MiB; negative disables auto-compaction —
	// Snapshot still compacts on demand).
	CompactBytes int64
}

func (o FileOptions) syncEvery() int {
	if o.SyncEvery == 0 {
		return 1
	}
	return o.SyncEvery
}

func (o FileOptions) compactBytes() int64 {
	if o.CompactBytes == 0 {
		return 4 << 20
	}
	return o.CompactBytes
}

// FileStore is the crash-safe Store: live state in memory, durability
// from a snapshot file plus an append-only WAL in one directory. See
// the package comment for the recovery model.
type FileStore struct {
	dir  string
	opts FileOptions

	mu     sync.Mutex
	closed bool
	live   liveMap
	wal    *os.File
	// unsynced counts Puts since the last fsync (SyncEvery cadence).
	unsynced int
	// encBuf is the reusable record-encoding scratch buffer.
	encBuf []byte

	walRecords      int64
	walBytes        int64
	snapRecords     int64
	compactions     int64
	tailTruncations int64
	replayDur       time.Duration
}

// OpenFile opens (creating if needed) the store directory dir: loads
// the snapshot, replays the WAL over it — truncating a torn or corrupt
// tail at the last whole record — and leaves the WAL open for appends.
func OpenFile(dir string, opts FileOptions) (*FileStore, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// A leftover snapshot.tmp is a compaction that never reached its
	// atomic rename: the previous snapshot + WAL are still the truth.
	if err := os.Remove(filepath.Join(dir, snapshotTemp)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: %w", err)
	}

	s := &FileStore{dir: dir, opts: opts, live: make(liveMap)}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.openWAL(); err != nil {
		return nil, err
	}
	s.replayDur = time.Since(start)
	return s, nil
}

// loadSnapshot reads dir/snapshot into the live map. A missing
// snapshot is an empty store; a malformed one is a hard error — the
// snapshot is written via fsync+rename, so corruption there is bit
// rot, not a torn write, and silently dropping it would lose an
// unbounded amount of compacted state.
func (s *FileStore) loadSnapshot() error {
	f, err := os.Open(filepath.Join(s.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || !bytes.Equal(magic[:], snapshotMagic) {
		return fmt.Errorf("%w: snapshot header", ErrCorrupt)
	}
	r := bufio.NewReader(f)
	for {
		rec, _, err := readRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		s.live.apply(rec)
		s.snapRecords++
	}
	return nil
}

// openWAL opens dir/wal (creating it with a fresh header when absent
// or shorter than one), replays its records over the snapshot state,
// and truncates any torn tail so the file ends on a whole record.
func (s *FileStore) openWAL() error {
	path := filepath.Join(s.dir, walName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if info.Size() < int64(len(walMagic)) {
		// Brand new, or a crash before even the header landed: rewrite
		// the header and start clean. (A crash this early cannot have
		// fsynced any record, so nothing durable is lost.)
		if info.Size() > 0 {
			s.tailTruncations++
		}
		if err := f.Truncate(0); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		if _, err := f.WriteAt(walMagic, 0); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		s.wal = f
		s.walBytes = int64(len(walMagic))
		if _, err := f.Seek(s.walBytes, io.SeekStart); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		return nil
	}
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if !bytes.Equal(magic[:], walMagic) {
		f.Close()
		return fmt.Errorf("%w: wal header", ErrCorrupt)
	}
	// Replay to the last whole, checksum-valid record; everything past
	// that offset is a torn write and is cut off.
	good := int64(len(walMagic))
	r := bufio.NewReader(f)
	for {
		rec, n, err := readRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			s.tailTruncations++
			if err := f.Truncate(good); err != nil {
				f.Close()
				return fmt.Errorf("store: truncating torn tail: %w", err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return fmt.Errorf("store: %w", err)
			}
			break
		}
		s.live.apply(rec)
		s.walRecords++
		good += int64(n)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.wal = f
	s.walBytes = good
	return nil
}

// Put implements Store: append to the WAL (fsync per the SyncEvery
// cadence), apply to the live state, and compact when the WAL has
// outgrown its threshold.
func (s *FileStore) Put(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	buf, err := appendRecord(s.encBuf[:0], rec)
	if err != nil {
		return err
	}
	s.encBuf = buf[:0]
	if _, err := s.wal.Write(buf); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	s.walBytes += int64(len(buf))
	s.walRecords++
	s.unsynced++
	if se := s.opts.syncEvery(); se > 0 && s.unsynced >= se {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("store: wal sync: %w", err)
		}
		s.unsynced = 0
	}
	s.live.apply(rec)
	if cb := s.opts.compactBytes(); cb > 0 && s.walBytes >= cb {
		return s.compactLocked()
	}
	return nil
}

// Get implements Store.
func (s *FileStore) Get(kind Kind, key []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.live[compositeKey(kind, key)]
	if !ok {
		return nil, false
	}
	return append([]byte{}, v...), true
}

// Replay implements Store.
func (s *FileStore) Replay(fn func(rec Record) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.live.replay(fn)
}

// Snapshot implements Store: compact the log on demand.
func (s *FileStore) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

// compactLocked rewrites the live state as dir/snapshot (write temp,
// fsync, rename, fsync dir) and resets the WAL to an empty header.
// Crash-ordering: until the rename lands, the old snapshot + full WAL
// remain the recovery source; after it, replaying the not-yet-reset
// WAL over the new snapshot is idempotent (last-write-wins).
func (s *FileStore) compactLocked() error {
	tmpPath := filepath.Join(s.dir, snapshotTemp)
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w := bufio.NewWriter(tmp)
	if _, err := w.Write(snapshotMagic); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	var count int64
	var encErr error
	s.live.replay(func(rec Record) error {
		buf, err := appendRecord(s.encBuf[:0], rec)
		if err != nil {
			encErr = err
			return err
		}
		s.encBuf = buf[:0]
		if _, err := w.Write(buf); err != nil {
			encErr = err
			return err
		}
		count++
		return nil
	})
	if encErr != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot write: %w", encErr)
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	// The snapshot is durable; the WAL restarts empty.
	if err := s.wal.Truncate(int64(len(walMagic))); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.wal.Seek(int64(len(walMagic)), io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.walBytes = int64(len(walMagic))
	s.walRecords = 0
	s.unsynced = 0
	s.snapRecords = count
	s.compactions++
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Metrics implements Store.
func (s *FileStore) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Metrics{
		Keys:            len(s.live),
		WALRecords:      s.walRecords,
		WALBytes:        s.walBytes,
		SnapshotRecords: s.snapRecords,
		Compactions:     s.compactions,
		TailTruncations: s.tailTruncations,
		Replay:          s.replayDur,
	}
}

// Close implements Store: fsync and close the WAL.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := s.wal.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
