package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
)

// FuzzWALRecord drives arbitrary bytes through the WAL record decoder:
// it must never panic, a successful decode must re-encode to the
// byte-identical consumed prefix (the codec is canonical), and any
// single flipped bit in the checksum-protected region must be
// rejected — the property torn-tail recovery rests on.
func FuzzWALRecord(f *testing.F) {
	seed := func(rec Record) {
		buf, err := appendRecord(nil, rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	seed(Record{Kind: 1, Key: []byte("class/dimacs"), Val: []byte(`{"fams":{"luby":3}}`)})
	seed(Record{Kind: 2, Key: bytes.Repeat([]byte{0xaa}, 32), Val: []byte("cached result")})
	seed(Record{Kind: 3, Key: []byte("tomb")})
	seed(Record{Kind: 0, Key: nil, Val: []byte{}})
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})                 // absurd length
	f.Add(append([]byte{6, 0, 0, 0}, bytes.Repeat([]byte{0}, 10)...)) // zero CRC

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := readRecord(bytes.NewReader(data))
		if err != nil {
			if err != io.EOF && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error outside the contract: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Canonical codec: re-encoding the decoded record reproduces
		// the exact bytes that were consumed.
		re, err := appendRecord(nil, rec)
		if err != nil {
			t.Fatalf("re-encode of decoded record failed: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("round trip diverged:\n got %x\nwant %x", re, data[:n])
		}
		// Every single-bit corruption of the CRC or body region must be
		// caught (CRC-32C detects all 1-bit errors over the protected
		// span; a corrupted CRC field trivially mismatches).
		if n <= 256 {
			for off := 4; off < n; off++ {
				for bit := 0; bit < 8; bit++ {
					mutated := append([]byte{}, data[:n]...)
					mutated[off] ^= 1 << bit
					if _, _, err := readRecord(bytes.NewReader(mutated)); err == nil {
						t.Fatalf("flipped bit %d at offset %d went undetected", bit, off)
					}
				}
			}
		}
	})
}

// FuzzSnapshotRoundTrip derives a record workload from the fuzz input,
// writes it through a FileStore, snapshots, reopens — twice — and
// requires the live state to survive identically: snapshot encode →
// decode is the identity on every reachable state.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(bytes.Repeat([]byte{0x5a}, 64))
	f.Add([]byte("kind/key/value soup with tombstones \x00\x01\x02"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode the input as a record script: [kind][keySel][valLen][val...]
		var script []Record
		for i := 0; i+3 <= len(data) && len(script) < 64; {
			kind := Kind(data[i] % 5)
			keySel := int(data[i+1]) % 8 // small key space → overwrites happen
			valLen := int(data[i+2]) % 23
			i += 3
			var val []byte
			if valLen == 22 {
				val = nil // tombstone
			} else {
				end := i + valLen
				if end > len(data) {
					end = len(data)
				}
				val = append([]byte{}, data[i:end]...)
				i = end
			}
			script = append(script, Record{
				Kind: kind,
				Key:  []byte(fmt.Sprintf("key%d", keySel)),
				Val:  val,
			})
		}

		dir := t.TempDir()
		s, err := OpenFile(dir, FileOptions{SyncEvery: -1, CompactBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		want := make(liveMap)
		for _, rec := range script {
			if err := s.Put(rec); err != nil {
				t.Fatal(err)
			}
			want.apply(rec)
		}
		check := func(stage string, st *FileStore) {
			got := make(map[string]string)
			if err := st.Replay(func(rec Record) error {
				got[compositeKey(rec.Kind, rec.Key)] = string(rec.Val)
				return nil
			}); err != nil {
				t.Fatalf("%s: replay: %v", stage, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: %d keys, want %d", stage, len(got), len(want))
			}
			for ck, v := range want {
				if got[ck] != string(v) {
					t.Fatalf("%s: key %x = %q, want %q", stage, ck, got[ck], v)
				}
			}
		}
		// Snapshot, reopen from snapshot only: identical state.
		if err := s.Snapshot(); err != nil {
			t.Fatal(err)
		}
		s = mustReopen(t, s)
		check("after snapshot+reopen", s)
		// Append one more record over the snapshot, reopen again:
		// snapshot + WAL replay still identical.
		extra := Record{Kind: 4, Key: []byte("extra"), Val: []byte("tail")}
		if err := s.Put(extra); err != nil {
			t.Fatal(err)
		}
		want.apply(extra)
		s = mustReopen(t, s)
		check("after tail+reopen", s)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func mustReopen(t *testing.T, s *FileStore) *FileStore {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := OpenFile(s.dir, FileOptions{SyncEvery: -1, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	return n
}
