package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// reopen closes s and opens the same directory again.
func reopen(t *testing.T, s *FileStore, opts FileOptions) *FileStore {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	n, err := OpenFile(s.dir, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return n
}

// collect replays s into a map "kind/key" → value for comparisons.
func collect(t *testing.T, s Store) map[string]string {
	t.Helper()
	out := make(map[string]string)
	err := s.Replay(func(rec Record) error {
		out[fmt.Sprintf("%d/%s", rec.Kind, rec.Key)] = string(rec.Val)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestMemStoreBasics(t *testing.T) {
	s := NewMem()
	if err := s.Put(Record{Kind: 1, Key: []byte("a"), Val: []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{Kind: 1, Key: []byte("a"), Val: []byte("v2")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{Kind: 2, Key: []byte("a"), Val: []byte("other-kind")}); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get(1, []byte("a"))
	if !ok || string(v) != "v2" {
		t.Fatalf("get = %q, %v; want v2 (last write wins)", v, ok)
	}
	// Tombstone deletes only its own kind's key.
	if err := s.Put(Record{Kind: 1, Key: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(1, []byte("a")); ok {
		t.Fatal("tombstoned key still live")
	}
	if _, ok := s.Get(2, []byte("a")); !ok {
		t.Fatal("tombstone leaked across kinds")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{Kind: 1, Key: []byte("x"), Val: []byte("y")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v, want ErrClosed", err)
	}
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key%02d", i)
		v := fmt.Sprintf("val%02d", i*i)
		if err := s.Put(Record{Kind: Kind(i % 3), Key: []byte(k), Val: []byte(v)}); err != nil {
			t.Fatal(err)
		}
		want[fmt.Sprintf("%d/%s", i%3, k)] = v
	}
	// Overwrites and a tombstone.
	if err := s.Put(Record{Kind: 0, Key: []byte("key00"), Val: []byte("rewritten")}); err != nil {
		t.Fatal(err)
	}
	want["0/key00"] = "rewritten"
	if err := s.Put(Record{Kind: 1, Key: []byte("key01")}); err != nil {
		t.Fatal(err)
	}
	delete(want, "1/key01")

	s = reopen(t, s, FileOptions{})
	defer s.Close()
	got := collect(t, s)
	if len(got) != len(want) {
		t.Fatalf("reopened with %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %s = %q, want %q", k, got[k], v)
		}
	}
	m := s.Metrics()
	if m.Keys != len(want) {
		t.Errorf("Metrics.Keys = %d, want %d", m.Keys, len(want))
	}
	if m.WALRecords != 52 {
		t.Errorf("WALRecords = %d, want 52", m.WALRecords)
	}
	if m.Replay <= 0 {
		t.Error("Replay duration not recorded")
	}
}

func TestFileStoreEmptyValueVsTombstone(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{Kind: 7, Key: []byte("empty"), Val: []byte{}}); err != nil {
		t.Fatal(err)
	}
	s = reopen(t, s, FileOptions{})
	defer s.Close()
	v, ok := s.Get(7, []byte("empty"))
	if !ok {
		t.Fatal("empty (non-nil) value was treated as a tombstone")
	}
	if len(v) != 0 {
		t.Fatalf("value = %q, want empty", v)
	}
}

func TestFileStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every few records trigger a compaction.
	opts := FileOptions{CompactBytes: 256}
	s, err := OpenFile(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		// 10 distinct keys rewritten 20 times each: live state stays
		// small while the log churns.
		k := fmt.Sprintf("k%d", i%10)
		if err := s.Put(Record{Kind: 1, Key: []byte(k), Val: []byte(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	m := s.Metrics()
	if m.Compactions == 0 {
		t.Fatal("no compaction despite tiny threshold")
	}
	if m.Keys != 10 {
		t.Fatalf("live keys = %d, want 10", m.Keys)
	}
	if m.WALBytes > 512 {
		t.Fatalf("WAL grew to %d bytes despite compaction", m.WALBytes)
	}
	// The snapshot alone (reopen after wiping nothing) restores state.
	s = reopen(t, s, opts)
	defer s.Close()
	got := collect(t, s)
	if len(got) != 10 {
		t.Fatalf("reopened with %d keys, want 10", len(got))
	}
	for i := 190; i < 200; i++ {
		k := fmt.Sprintf("1/k%d", i%10)
		if got[k] != fmt.Sprintf("v%d", i) {
			t.Errorf("%s = %q, want v%d", k, got[k], i)
		}
	}
}

func TestFileStoreOnDemandSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir, FileOptions{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 20; i++ {
		if err := s.Put(Record{Kind: 1, Key: []byte(fmt.Sprintf("k%d", i)), Val: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	if m := s.Metrics(); m.Compactions != 0 {
		t.Fatalf("auto-compaction ran with CompactBytes<0 (%d)", m.Compactions)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Compactions != 1 || m.SnapshotRecords != 20 || m.WALRecords != 0 {
		t.Fatalf("after Snapshot: %+v", m)
	}
}

func TestFileStoreLeftoverTempSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{Kind: 1, Key: []byte("k"), Val: []byte("good")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-compaction: a garbage temp snapshot on disk.
	if err := os.WriteFile(filepath.Join(dir, snapshotTemp), []byte("partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatalf("open with leftover temp snapshot: %v", err)
	}
	defer s2.Close()
	if v, ok := s2.Get(1, []byte("k")); !ok || string(v) != "good" {
		t.Fatalf("state lost: %q, %v", v, ok)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotTemp)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp snapshot not cleaned up")
	}
}

func TestFileStoreCorruptSnapshotIsHardError(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{Kind: 1, Key: []byte("k"), Val: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the snapshot body: bit rot, not a torn tail.
	path := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(dir, FileOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over corrupt snapshot: %v, want ErrCorrupt", err)
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	cases := []Record{
		{Kind: 0, Key: nil, Val: []byte{}},
		{Kind: 1, Key: []byte("k"), Val: []byte("v")},
		{Kind: 255, Key: bytes.Repeat([]byte{0xab}, 300), Val: bytes.Repeat([]byte{0}, 1000)},
		{Kind: 3, Key: []byte("tomb"), Val: nil},
		{Kind: 9, Key: []byte{}, Val: []byte("empty key")},
	}
	var buf []byte
	var err error
	for _, rec := range cases {
		buf, err = appendRecord(buf, rec)
		if err != nil {
			t.Fatalf("encode %+v: %v", rec, err)
		}
	}
	r := bytes.NewReader(buf)
	for i, want := range cases {
		got, _, err := readRecord(r)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got.Kind != want.Kind || !bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Val, want.Val) {
			t.Fatalf("record %d round-tripped to %+v, want %+v", i, got, want)
		}
		if (got.Val == nil) != (want.Val == nil) {
			t.Fatalf("record %d lost its tombstone-ness", i)
		}
	}
}

func TestReadRecordRejectsFlippedChecksum(t *testing.T) {
	buf, err := appendRecord(nil, Record{Kind: 1, Key: []byte("key"), Val: []byte("value")})
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		bad := append([]byte{}, buf...)
		bad[i] ^= 0x01
		_, _, err := readRecord(bytes.NewReader(bad))
		if err == nil {
			// A flip in the length header can only "succeed" by reading
			// a different region that still checksums — impossible for
			// a single bit flip over CRC-32C within one record.
			t.Fatalf("bit flip at offset %d went undetected", i)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at offset %d: %v, want ErrCorrupt", i, err)
		}
	}
}
