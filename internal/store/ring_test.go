package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"
)

// sampleKeys returns n distinct 32-byte keys shaped like
// cnf.FormulaFingerprint values (SHA-256 digests).
func sampleKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		var seed [8]byte
		binary.LittleEndian.PutUint64(seed[:], uint64(i))
		sum := sha256.Sum256(seed[:])
		keys[i] = sum[:]
	}
	return keys
}

func fleet(n int) []string {
	members := make([]string, n)
	for i := range members {
		members[i] = fmt.Sprintf("10.0.0.%d:8723", i+1)
	}
	return members
}

// TestRingDeterministicAcrossReplicas is the fleet-agreement property:
// every replica builds its ring independently from the (possibly
// reordered, duplicated) member list and MUST compute the same owner
// for every fingerprint.
func TestRingDeterministicAcrossReplicas(t *testing.T) {
	members := fleet(5)
	a := NewRing(members, 0)
	// Same set, scrambled order, with duplicates and an empty entry.
	scrambled := []string{members[3], members[0], "", members[4], members[1], members[3], members[2]}
	b := NewRing(scrambled, 0)

	if got, want := fmt.Sprint(a.Members()), fmt.Sprint(b.Members()); got != want {
		t.Fatalf("member normalization diverged: %s vs %s", got, want)
	}
	for i, key := range sampleKeys(10000) {
		if oa, ob := a.Owner(key), b.Owner(key); oa != ob {
			t.Fatalf("key %d: replica A says %s, replica B says %s", i, oa, ob)
		}
	}
}

// TestRingRebalanceBounds: adding or removing one member must remap
// only ~1/N of a 10k-fingerprint sample (≤ 2/N allowed for vnode
// variance), and removal must never move a key between two SURVIVING
// members.
func TestRingRebalanceBounds(t *testing.T) {
	keys := sampleKeys(10000)
	for _, n := range []int{3, 5, 8} {
		members := fleet(n)
		base := NewRing(members, 0)

		// Add one member.
		grown := NewRing(append(append([]string{}, members...), "10.0.1.99:8723"), 0)
		moved := 0
		for _, key := range keys {
			if base.Owner(key) != grown.Owner(key) {
				moved++
			}
		}
		if limit := 2 * len(keys) / (n + 1); moved > limit {
			t.Errorf("n=%d: adding one member moved %d/%d keys, limit %d", n, moved, len(keys), limit)
		}
		if moved == 0 {
			t.Errorf("n=%d: adding a member moved nothing — it owns no keyspace", n)
		}

		// Remove one member: only its keys may move.
		removed := members[n/2]
		shrunk := NewRing(append(append([]string{}, members[:n/2]...), members[n/2+1:]...), 0)
		movedAway, fromRemoved := 0, 0
		for _, key := range keys {
			before, after := base.Owner(key), shrunk.Owner(key)
			if before == removed {
				fromRemoved++
				continue
			}
			if before != after {
				movedAway++
			}
		}
		if movedAway != 0 {
			t.Errorf("n=%d: removing %s moved %d keys between surviving members", n, removed, movedAway)
		}
		if limit := 2 * len(keys) / n; fromRemoved > limit {
			t.Errorf("n=%d: removed member owned %d/%d keys, limit %d", n, fromRemoved, len(keys), limit)
		}
	}
}

// TestRingDistribution sanity-checks load spread: with default vnodes
// every member owns a non-degenerate share of a 10k sample.
func TestRingDistribution(t *testing.T) {
	members := fleet(5)
	r := NewRing(members, 0)
	counts := make(map[string]int)
	keys := sampleKeys(10000)
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / float64(len(keys))
		if share < 0.08 || share > 0.40 {
			t.Errorf("member %s owns %.1f%% of keys — degenerate spread", m, 100*share)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	if owner := NewRing(nil, 0).Owner([]byte("x")); owner != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", owner)
	}
	solo := NewRing([]string{"only:1"}, 0)
	for _, key := range sampleKeys(100) {
		if owner := solo.Owner(key); owner != "only:1" {
			t.Fatalf("single-member ring routed to %q", owner)
		}
	}
}
