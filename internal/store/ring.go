package store

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Ring is a consistent-hash ring assigning keys — canonically the
// serve layer's job keys derived from cnf.FormulaFingerprint — to
// fleet members. Every replica builds its ring from the same member
// list and MUST agree on ownership: construction is fully
// deterministic (members are deduplicated and sorted; vnode points are
// SHA-256 positions), so identical member sets yield identical
// assignments on every replica with no coordination. Adding or
// removing one member remaps only the keys whose nearest point
// belonged to it — about 1/N of the keyspace.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	members []string
	points  []ringPoint
}

type ringPoint struct {
	hash  uint64
	owner int32 // index into members
}

// DefaultVnodes is the per-member virtual-node count used when
// NewRing is given 0: enough points that single-member changes remap
// close to the ideal 1/N of keys without making lookup tables large.
const DefaultVnodes = 128

// NewRing builds a ring over members with vnodes virtual nodes each
// (0 = DefaultVnodes). Duplicate and empty member names are dropped;
// an empty member list yields a ring whose Owner is always "".
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	var buf [8]byte
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			h := sha256.New()
			h.Write([]byte(m))
			h.Write([]byte{'#'})
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
			sum := h.Sum(nil)
			r.points = append(r.points, ringPoint{
				hash:  binary.BigEndian.Uint64(sum[:8]),
				owner: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Equal hash points (astronomically unlikely) tie-break on the
		// sorted member index so every replica still agrees.
		return r.points[a].owner < r.points[b].owner
	})
	return r
}

// Members returns the ring's deduplicated, sorted member list (a
// copy).
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Owner returns the member owning key: the member of the first vnode
// point clockwise of the key's hash position. An empty ring owns
// nothing and returns "".
func (r *Ring) Owner(key []byte) string {
	if len(r.points) == 0 {
		return ""
	}
	sum := sha256.Sum256(key)
	h := binary.BigEndian.Uint64(sum[:8])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the lowest point owns the top arc
	}
	return r.members[r.points[i].owner]
}
