package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// recoveryScript is a deterministic mixed workload: fresh keys,
// overwrites and tombstones across three kinds, so a replayed prefix
// exercises every record shape.
func recoveryScript() []Record {
	var script []Record
	for i := 0; i < 18; i++ {
		script = append(script, Record{
			Kind: Kind(i % 3),
			Key:  []byte(fmt.Sprintf("key%02d", i%6)), // 6 keys per kind → overwrites
			Val:  []byte(fmt.Sprintf("value-%02d-%d", i, i*i)),
		})
	}
	// Two tombstones over live keys, then one resurrection.
	script = append(script,
		Record{Kind: 0, Key: []byte("key00")},
		Record{Kind: 1, Key: []byte("key01")},
		Record{Kind: 0, Key: []byte("key00"), Val: []byte("back")},
	)
	return script
}

// applyScript folds the first n records into the expected live state,
// keyed like collect().
func applyScript(script []Record, n int) map[string]string {
	want := make(map[string]string)
	for _, rec := range script[:n] {
		ck := fmt.Sprintf("%d/%s", rec.Kind, rec.Key)
		if rec.Val == nil {
			delete(want, ck)
		} else {
			want[ck] = string(rec.Val)
		}
	}
	return want
}

// writeWAL writes the full script through a real store (SyncEvery=1:
// every record fsynced, so every boundary is a legal crash point) and
// returns the WAL bytes plus the byte offset of every record boundary
// (boundaries[i] = WAL size after i records; boundaries[0] is the
// header).
func writeWAL(t *testing.T, script []Record) (wal []byte, boundaries []int64) {
	t.Helper()
	dir := t.TempDir()
	s, err := OpenFile(dir, FileOptions{CompactBytes: -1, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	boundaries = append(boundaries, int64(len(walMagic)))
	for _, rec := range script {
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, s.Metrics().WALBytes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err = os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(wal)) != boundaries[len(boundaries)-1] {
		t.Fatalf("WAL is %d bytes, metrics said %d", len(wal), boundaries[len(boundaries)-1])
	}
	return wal, boundaries
}

// prefixLen returns how many whole records fit within cut bytes, and
// the byte offset of the last whole record's end.
func prefixLen(boundaries []int64, cut int64) (records int, end int64) {
	records, end = 0, boundaries[0]
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= cut {
			records, end = i, boundaries[i]
		}
	}
	return records, end
}

// TestCrashRecoveryAtEveryTruncationPoint is the kill-mid-write
// harness: the WAL is cut at EVERY byte offset — every record boundary
// and every intra-record position — and reopened. The recovered state
// must equal exactly the last fully-written (fsynced) prefix of
// records: no partial record is ever replayed, and the torn tail is
// physically truncated so the store is immediately appendable again.
func TestCrashRecoveryAtEveryTruncationPoint(t *testing.T) {
	script := recoveryScript()
	wal, boundaries := writeWAL(t, script)

	base := t.TempDir()
	for cut := int64(0); cut <= int64(len(wal)); cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut%04d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walName), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenFile(dir, FileOptions{CompactBytes: -1, SyncEvery: 1})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		nRec, end := prefixLen(boundaries, cut)
		if cut < int64(len(walMagic)) {
			end = int64(len(walMagic)) // header rewritten from scratch
		}
		want := applyScript(script, nRec)
		got := collect(t, s)
		if len(got) != len(want) {
			t.Fatalf("cut %d: %d live keys, want %d (prefix of %d records)", cut, len(got), len(want), nRec)
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("cut %d: key %s = %q, want %q", cut, k, got[k], v)
			}
		}
		m := s.Metrics()
		if m.WALBytes != end {
			t.Fatalf("cut %d: WALBytes = %d, want truncation to %d", cut, m.WALBytes, end)
		}
		wantTrunc := int64(0)
		if cut != end || (cut > 0 && cut < int64(len(walMagic))) {
			wantTrunc = 1
		}
		if cut < int64(len(walMagic)) && cut == 0 {
			wantTrunc = 0
		}
		if m.TailTruncations != wantTrunc {
			t.Fatalf("cut %d: TailTruncations = %d, want %d", cut, m.TailTruncations, wantTrunc)
		}
		// The file itself must have been cut back: a later crash must
		// not resurrect the torn bytes.
		info, err := os.Stat(filepath.Join(dir, walName))
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() != end {
			t.Fatalf("cut %d: WAL file is %d bytes on disk, want %d", cut, info.Size(), end)
		}
		// The recovered store accepts and persists new writes.
		if err := s.Put(Record{Kind: 9, Key: []byte("post"), Val: []byte("recovery")}); err != nil {
			t.Fatalf("cut %d: put after recovery: %v", cut, err)
		}
		s = reopen(t, s, FileOptions{CompactBytes: -1, SyncEvery: 1})
		if v, ok := s.Get(9, []byte("post")); !ok || string(v) != "recovery" {
			t.Fatalf("cut %d: post-recovery write lost (%q, %v)", cut, v, ok)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashRecoveryOverSnapshot cuts the WAL tail with a snapshot
// underneath: recovery must land on snapshot + whole-WAL-prefix.
func TestCrashRecoveryOverSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFile(dir, FileOptions{CompactBytes: -1, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot half the script, then a WAL tail over it.
	script := recoveryScript()
	half := len(script) / 2
	for _, rec := range script[:half] {
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	var boundaries []int64
	boundaries = append(boundaries, s.Metrics().WALBytes)
	for _, rec := range script[half:] {
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, s.Metrics().WALBytes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName)
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-record: halfway into the record after boundary 2.
	cut := boundaries[2] + (boundaries[3]-boundaries[2])/2
	if err := os.WriteFile(walPath, wal[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = OpenFile(dir, FileOptions{CompactBytes: -1, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := applyScript(script, half+2)
	got := collect(t, s)
	if len(got) != len(want) {
		t.Fatalf("%d live keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %s = %q, want %q", k, got[k], v)
		}
	}
	if m := s.Metrics(); m.TailTruncations != 1 || m.WALRecords != 2 {
		t.Fatalf("metrics after snapshot+tail recovery: %+v", m)
	}
}

// TestCrashRecoveryCorruptMiddleTruncatesFromThere pins the scan-order
// contract: a checksum-corrupt record in the MIDDLE of the WAL ends
// the trusted prefix right there — later records (which may depend on
// the corrupt one) are dropped with it, never replayed over a hole.
func TestCrashRecoveryCorruptMiddleTruncatesFromThere(t *testing.T) {
	script := recoveryScript()
	wal, boundaries := writeWAL(t, script)

	corruptAfter := 5 // flip a byte inside record 6
	off := boundaries[corruptAfter] + recHeaderLen + 2
	mutated := append([]byte{}, wal...)
	mutated[off] ^= 0x40

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName), mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFile(dir, FileOptions{CompactBytes: -1, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := applyScript(script, corruptAfter)
	got := collect(t, s)
	if len(got) != len(want) {
		t.Fatalf("%d live keys, want %d (records before the corruption)", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %s = %q, want %q", k, got[k], v)
		}
	}
	m := s.Metrics()
	if m.WALBytes != boundaries[corruptAfter] {
		t.Fatalf("WALBytes = %d, want %d", m.WALBytes, boundaries[corruptAfter])
	}
	if m.TailTruncations != 1 {
		t.Fatalf("TailTruncations = %d, want 1", m.TailTruncations)
	}
}

// TestRecoveredWALBytesMatchPrefix double-checks the physical file
// after a torn-tail recovery equals the byte-exact good prefix (no
// rewriting, no reordering — just the truncation).
func TestRecoveredWALBytesMatchPrefix(t *testing.T) {
	script := recoveryScript()
	wal, boundaries := writeWAL(t, script)
	cut := boundaries[len(boundaries)-1] - 3 // tear the final record

	dir := t.TempDir()
	path := filepath.Join(dir, walName)
	if err := os.WriteFile(path, wal[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFile(dir, FileOptions{CompactBytes: -1, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantEnd := boundaries[len(boundaries)-2]
	if !bytes.Equal(after, wal[:wantEnd]) {
		t.Fatalf("recovered WAL diverged from the good prefix (%d vs %d bytes)", len(after), wantEnd)
	}
}
