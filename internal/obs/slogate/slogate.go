// Package slogate is the release gate of the SLO load harness: it
// defines the latency-attribution report cmd/satload emits
// (BENCH_serve.json), the committed SLO definition (SLO.json), and the
// evaluation that compares one against the other. CI runs the harness
// against a freshly built fleet, then gates the result: report-only on
// pull requests, enforcing (non-zero exit via cmd/slogate) on the main
// branch, so a latency regression — a 5× queue wait, a solve-phase
// blow-up, an error-ratio spike — fails the release instead of
// shipping silently.
package slogate

import (
	"fmt"
	"math"
	"sort"
)

// Dist summarizes one latency distribution in milliseconds.
type Dist struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Ops counts the harness's operation outcomes.
type Ops struct {
	// Submitted counts attempted operations; Completed the ones that
	// returned a decided verdict, Failed the ones answered with a
	// non-retryable error, Shed the 429 rejections, Errors the
	// transport-level failures.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Shed      int64 `json:"shed"`
	Errors    int64 `json:"errors"`
}

// Report is the harness output: end-to-end client latency per job kind
// plus the per-phase attribution harvested from job traces
// (/v1/jobs/{id}/trace), so a latency regression is localized to the
// lifecycle phase that caused it — queue wait vs coalesce vs solve.
type Report struct {
	Scenario   string  `json:"scenario"`
	DurationS  float64 `json:"duration_s"`
	TargetRate float64 `json:"target_rate"`
	Ops        Ops     `json:"ops"`
	// Kinds maps job kind (dimacs, cec, bmc, session, batch) to its
	// end-to-end client-observed latency distribution.
	Kinds map[string]Dist `json:"kinds"`
	// Phases maps trace span name (parse, queue, admit, solve, persist,
	// respond, coalesce_wait) to the attributed latency distribution.
	Phases map[string]Dist `json:"phases"`
}

// Limit bounds one distribution's percentiles; 0 leaves a percentile
// unchecked.
type Limit struct {
	P50MS float64 `json:"p50_ms,omitempty"`
	P95MS float64 `json:"p95_ms,omitempty"`
	P99MS float64 `json:"p99_ms,omitempty"`
}

// SLO is the committed service-level objective the gate enforces.
type SLO struct {
	// MaxErrorRatio bounds (Failed+Errors)/Submitted; MaxShedRatio
	// bounds Shed/Submitted (shedding is load defense, but a smoke
	// scenario sized under capacity should barely shed).
	MaxErrorRatio float64 `json:"max_error_ratio"`
	MaxShedRatio  float64 `json:"max_shed_ratio"`
	// MinCompleted guards against a vacuously green run: a harness that
	// completed almost nothing must not pass its latency checks.
	MinCompleted int64 `json:"min_completed"`
	// Kinds / Phases bound the matching report distributions. A limit
	// over a distribution the report lacks (or has no samples for) is
	// itself a violation — silence must not pass the gate.
	Kinds  map[string]Limit `json:"kinds,omitempty"`
	Phases map[string]Limit `json:"phases,omitempty"`
}

// Violation is one failed SLO check.
type Violation struct {
	// Metric names the failed check, e.g. "phases.queue.p95_ms".
	Metric string  `json:"metric"`
	Limit  float64 `json:"limit"`
	Actual float64 `json:"actual"`
	// Factor is Actual/Limit — the regression magnitude.
	Factor float64 `json:"factor"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %.3g > limit %.3g (%.2fx)", v.Metric, v.Actual, v.Limit, v.Factor)
}

// Summarize computes the distribution summary of latency samples in
// milliseconds. Percentiles use the nearest-rank method on the sorted
// samples; an empty sample set yields a zero Dist.
func Summarize(samplesMS []float64) Dist {
	if len(samplesMS) == 0 {
		return Dist{}
	}
	s := append([]float64(nil), samplesMS...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	rank := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return Dist{
		Count:  int64(len(s)),
		MeanMS: sum / float64(len(s)),
		P50MS:  rank(0.50),
		P95MS:  rank(0.95),
		P99MS:  rank(0.99),
		MaxMS:  s[len(s)-1],
	}
}

// Evaluate compares a report against an SLO and returns every
// violation (empty = the gate passes). Checks are independent: one
// blown limit does not mask the others.
func Evaluate(r *Report, s *SLO) []Violation {
	var out []Violation
	add := func(metric string, limit, actual float64) {
		if limit <= 0 || actual <= limit {
			return
		}
		factor := math.Inf(1)
		if limit > 0 {
			factor = actual / limit
		}
		out = append(out, Violation{Metric: metric, Limit: limit, Actual: actual, Factor: factor})
	}
	if r.Ops.Submitted > 0 {
		add("ops.error_ratio", s.MaxErrorRatio,
			float64(r.Ops.Failed+r.Ops.Errors)/float64(r.Ops.Submitted))
		add("ops.shed_ratio", s.MaxShedRatio,
			float64(r.Ops.Shed)/float64(r.Ops.Submitted))
	}
	if s.MinCompleted > 0 && r.Ops.Completed < s.MinCompleted {
		out = append(out, Violation{
			Metric: "ops.completed", Limit: float64(s.MinCompleted),
			Actual: float64(r.Ops.Completed),
			Factor: float64(s.MinCompleted) / math.Max(1, float64(r.Ops.Completed)),
		})
	}
	out = append(out, evalDists("kinds", r.Kinds, s.Kinds)...)
	out = append(out, evalDists("phases", r.Phases, s.Phases)...)
	return out
}

// evalDists checks every limited distribution in deterministic name
// order.
func evalDists(group string, dists map[string]Dist, limits map[string]Limit) []Violation {
	names := make([]string, 0, len(limits))
	for name := range limits {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Violation
	for _, name := range names {
		lim := limits[name]
		d, ok := dists[name]
		if !ok || d.Count == 0 {
			// A bound over a distribution with no samples: the scenario
			// regressed to the point of not exercising it, which must not
			// read as green.
			out = append(out, Violation{
				Metric: group + "." + name + ".count",
				Limit:  1, Actual: 0, Factor: math.Inf(1),
			})
			continue
		}
		prefix := group + "." + name
		check := func(suffix string, limit, actual float64) []Violation {
			if limit > 0 && actual > limit {
				return []Violation{{Metric: prefix + "." + suffix, Limit: limit, Actual: actual, Factor: actual / limit}}
			}
			return nil
		}
		out = append(out, check("p50_ms", lim.P50MS, d.P50MS)...)
		out = append(out, check("p95_ms", lim.P95MS, d.P95MS)...)
		out = append(out, check("p99_ms", lim.P99MS, d.P99MS)...)
	}
	return out
}
