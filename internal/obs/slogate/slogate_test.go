package slogate

import (
	"math"
	"strings"
	"testing"
)

// baselineReport builds a healthy mixed-scenario report whose queue
// phase sits comfortably under the SLO used in the tests.
func baselineReport() *Report {
	queue := make([]float64, 0, 200)
	solve := make([]float64, 0, 200)
	e2e := make([]float64, 0, 200)
	for i := 0; i < 200; i++ {
		q := 1.0 + float64(i%20)*0.1 // 1.0 .. 2.9 ms queue wait
		s := 5.0 + float64(i%50)*0.2 // 5.0 .. 14.8 ms solve
		queue = append(queue, q)
		solve = append(solve, s)
		e2e = append(e2e, q+s+1.0)
	}
	return &Report{
		Scenario:   "mixed",
		DurationS:  30,
		TargetRate: 20,
		Ops:        Ops{Submitted: 200, Completed: 198, Failed: 0, Shed: 2, Errors: 0},
		Kinds:      map[string]Dist{"dimacs": Summarize(e2e)},
		Phases: map[string]Dist{
			"queue": Summarize(queue),
			"solve": Summarize(solve),
		},
	}
}

func testSLO() *SLO {
	return &SLO{
		MaxErrorRatio: 0.02,
		MaxShedRatio:  0.05,
		MinCompleted:  50,
		Kinds: map[string]Limit{
			"dimacs": {P50MS: 50, P95MS: 100, P99MS: 200},
		},
		Phases: map[string]Limit{
			"queue": {P95MS: 10},
			"solve": {P95MS: 60},
		},
	}
}

func TestBaselinePassesGate(t *testing.T) {
	if vs := Evaluate(baselineReport(), testSLO()); len(vs) != 0 {
		t.Fatalf("baseline report must pass, got violations %v", vs)
	}
}

// TestQueueRegressionFailsGate is the release-gate acceptance
// criterion: the same workload with its queue-wait latencies inflated
// 5x must fail the gate, and the violation must name the queue phase
// so the regression is attributed, not just detected.
func TestQueueRegressionFailsGate(t *testing.T) {
	r := baselineReport()
	q := r.Phases["queue"]
	q.P50MS *= 5
	q.P95MS *= 5
	q.P99MS *= 5
	q.MaxMS *= 5
	q.MeanMS *= 5
	r.Phases["queue"] = q

	vs := Evaluate(r, testSLO())
	if len(vs) == 0 {
		t.Fatal("5x queue-wait regression passed the gate")
	}
	found := false
	for _, v := range vs {
		if strings.HasPrefix(v.Metric, "phases.queue.") {
			found = true
			if v.Factor < 1.2 {
				t.Fatalf("violation factor %v understates the regression", v.Factor)
			}
		}
		if strings.HasPrefix(v.Metric, "phases.solve.") || strings.HasPrefix(v.Metric, "kinds.") {
			t.Fatalf("regression misattributed to %s", v.Metric)
		}
	}
	if !found {
		t.Fatalf("no violation names the queue phase: %v", vs)
	}
}

func TestOpsChecks(t *testing.T) {
	slo := testSLO()

	r := baselineReport()
	r.Ops.Errors = 50
	if vs := Evaluate(r, slo); len(vs) == 0 || vs[0].Metric != "ops.error_ratio" {
		t.Fatalf("error-ratio breach not caught: %v", vs)
	}

	r = baselineReport()
	r.Ops.Shed = 100
	if vs := Evaluate(r, slo); len(vs) == 0 || vs[0].Metric != "ops.shed_ratio" {
		t.Fatalf("shed-ratio breach not caught: %v", vs)
	}

	r = baselineReport()
	r.Ops.Completed = 3
	vs := Evaluate(r, slo)
	found := false
	for _, v := range vs {
		if v.Metric == "ops.completed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("min-completed breach not caught: %v", vs)
	}
}

// TestMissingDistributionViolates: a limit over a phase the report
// never sampled is a violation — an instrumentation regression must
// not read as a pass.
func TestMissingDistributionViolates(t *testing.T) {
	r := baselineReport()
	delete(r.Phases, "queue")
	vs := Evaluate(r, testSLO())
	if len(vs) != 1 || vs[0].Metric != "phases.queue.count" {
		t.Fatalf("missing distribution not flagged: %v", vs)
	}
	if !math.IsInf(vs[0].Factor, 1) {
		t.Fatalf("missing distribution factor should be +Inf, got %v", vs[0].Factor)
	}
}

func TestSummarize(t *testing.T) {
	if d := Summarize(nil); d.Count != 0 {
		t.Fatalf("empty summarize: %+v", d)
	}
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(100 - i) // 1..100, reversed to exercise sorting
	}
	d := Summarize(samples)
	if d.Count != 100 || d.P50MS != 50 || d.P95MS != 95 || d.P99MS != 99 || d.MaxMS != 100 {
		t.Fatalf("summarize percentiles wrong: %+v", d)
	}
	if math.Abs(d.MeanMS-50.5) > 1e-9 {
		t.Fatalf("mean %v, want 50.5", d.MeanMS)
	}
}
