package obs

import (
	"sync"
	"time"
)

// DefaultSpanCap bounds the spans a Trace retains when NewTrace is
// given 0. Beyond it the oldest finished non-root span is dropped and
// counted, so a pathological job (thousands of certify retries, say)
// degrades its own trace instead of growing without bound.
const DefaultSpanCap = 256

// RootSpan is the ID of the root span every Trace starts with; pass it
// as the parent of top-level phase spans.
const RootSpan = 1

// Attr is one key=value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// A is shorthand for constructing an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is one timed operation inside a Trace. Times are offsets from
// the trace start in microseconds: self-describing in JSON, compact,
// and immune to clock skew between replicas (a trace never crosses a
// process).
type Span struct {
	// ID is unique within the trace; Parent is the enclosing span's ID
	// (0 only for the root).
	ID     int    `json:"id"`
	Parent int    `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartUS is the offset from the trace start; DurUS the span's
	// duration (-1 while still open).
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Trace is a bounded collection of spans describing one job (or one
// session query). It is safe for concurrent use; recording a span is
// one short mutex hold, no allocation beyond the span itself.
type Trace struct {
	mu      sync.Mutex
	start   time.Time
	seq     int
	spans   []Span // spans[0] is the root, never dropped
	cap     int
	dropped int
}

// NewTrace creates a trace whose root span is named name and open as
// of now. capacity bounds retained spans (0 = DefaultSpanCap).
func NewTrace(name string, capacity int) *Trace {
	return NewTraceAt(name, capacity, time.Now())
}

// NewTraceAt is NewTrace with an explicit start instant, for callers
// that must anchor the trace before any parsing work they also want to
// attribute (the scheduler stamps the submit entry time).
func NewTraceAt(name string, capacity int, start time.Time) *Trace {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	t := &Trace{start: start, cap: capacity, seq: RootSpan}
	t.spans = append(t.spans, Span{ID: RootSpan, Name: name, StartUS: 0, DurUS: -1})
	return t
}

// Start returns the trace's start instant (the root span's zero
// offset).
func (t *Trace) Start() time.Time { return t.start }

// Add records a completed span under parent covering [start, start+d)
// and returns its ID.
func (t *Trace) Add(parent int, name string, start time.Time, d time.Duration, attrs ...Attr) int {
	return t.AddOffset(parent, name, start.Sub(t.start).Microseconds(), d.Microseconds(), attrs...)
}

// AddOffset records a completed span from explicit microsecond
// offsets. It is the hook for synthetic attribution spans — e.g. the
// solver's sampled phase totals, which have durations but no real
// timeline positions.
func (t *Trace) AddOffset(parent int, name string, startUS, durUS int64, attrs ...Attr) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	id := t.seq
	if len(t.spans) >= t.cap {
		t.evictLocked()
	}
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Name: name,
		StartUS: startUS, DurUS: durUS, Attrs: attrs,
	})
	return id
}

// Begin opens a span under parent as of now; close it with End. For
// strictly sequential phases Add (record-after-the-fact) is simpler;
// Begin exists for spans whose end is observed elsewhere.
func (t *Trace) Begin(parent int, name string, attrs ...Attr) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	id := t.seq
	if len(t.spans) >= t.cap {
		t.evictLocked()
	}
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Name: name,
		StartUS: time.Since(t.start).Microseconds(), DurUS: -1, Attrs: attrs,
	})
	return id
}

// End closes an open span, appending any attrs. Unknown IDs (a span
// evicted while open) are ignored; End is idempotent per span.
func (t *Trace) End(id int, attrs ...Attr) {
	now := time.Since(t.start).Microseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.spans {
		if t.spans[i].ID == id {
			if t.spans[i].DurUS < 0 {
				t.spans[i].DurUS = now - t.spans[i].StartUS
				t.spans[i].Attrs = append(t.spans[i].Attrs, attrs...)
			}
			return
		}
	}
}

// Annotate appends attrs to an existing span (no-op on evicted IDs).
func (t *Trace) Annotate(id int, attrs ...Attr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.spans {
		if t.spans[i].ID == id {
			t.spans[i].Attrs = append(t.spans[i].Attrs, attrs...)
			return
		}
	}
}

// Finish closes the root span; the trace is complete. Further Adds are
// permitted (late async spans keep their data) but the root duration
// no longer moves.
func (t *Trace) Finish(attrs ...Attr) { t.End(RootSpan, attrs...) }

// evictLocked drops the oldest finished non-root span. If every
// retained span is open (pathological), the oldest non-root span goes
// regardless — boundedness beats completeness.
func (t *Trace) evictLocked() {
	victim := -1
	for i := 1; i < len(t.spans); i++ {
		if t.spans[i].DurUS >= 0 {
			victim = i
			break
		}
	}
	if victim < 0 && len(t.spans) > 1 {
		victim = 1
	}
	if victim < 0 {
		return
	}
	t.spans = append(t.spans[:victim], t.spans[victim+1:]...)
	t.dropped++
}

// View is a trace's serializable snapshot.
type View struct {
	// Name is the root span's name; StartUnixUS the trace start as a
	// Unix-epoch microsecond timestamp.
	Name        string `json:"name"`
	StartUnixUS int64  `json:"start_unix_us"`
	// DurUS is the root span's duration (-1 while the trace is open).
	DurUS int64 `json:"dur_us"`
	// Dropped counts spans evicted by the ring bound.
	Dropped int    `json:"dropped,omitempty"`
	Spans   []Span `json:"spans"`
}

// Snapshot copies the trace for serialization. Safe at any time; an
// unfinished trace reports DurUS -1 on its open spans.
func (t *Trace) Snapshot() View {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := View{
		Name:        t.spans[0].Name,
		StartUnixUS: t.start.UnixMicro(),
		DurUS:       t.spans[0].DurUS,
		Dropped:     t.dropped,
		Spans:       make([]Span, len(t.spans)),
	}
	copy(v.Spans, t.spans)
	for i := range v.Spans {
		v.Spans[i].Attrs = append([]Attr(nil), t.spans[i].Attrs...)
	}
	return v
}

// PhaseTotals sums the durations of the root's direct children by
// name, in microseconds — the per-phase attribution a latency report
// aggregates. Open spans contribute nothing.
func (v *View) PhaseTotals() map[string]int64 {
	out := make(map[string]int64)
	for _, s := range v.Spans {
		if s.Parent == RootSpan && s.DurUS >= 0 {
			out[s.Name] += s.DurUS
		}
	}
	return out
}
