package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair qualifying a metric within its family.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// DefBuckets are the default latency histogram bounds in seconds:
// sub-millisecond cache hits through multi-second portfolio solves.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Registry is a unified metric namespace: every family (one metric
// name) carries HELP/TYPE metadata and any number of label-qualified
// children. WritePrometheus renders the whole registry as parse-clean
// Prometheus text in deterministic sorted order. A Registry is safe
// for concurrent use.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []func()
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type family struct {
	name string
	help string
	kind metricKind
	mu   sync.Mutex
	// children maps the rendered label string ("" for the bare metric)
	// to its instrument; funcs are read-at-scrape gauges.
	children map[string]any
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// AddCollector registers a hook run at the start of every scrape
// (WritePrometheus), before values are read. Components whose counters
// live behind their own locks register one collector that copies a
// consistent snapshot into their registered gauges/counters.
func (r *Registry) AddCollector(fn func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]any)}
		r.families[name] = f
	}
	return f
}

// renderLabels produces the canonical sorted {k="v",…} suffix.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Counter is a monotonically increasing int64 metric. Set exists for
// collector-fed counters whose source of truth is elsewhere (a
// scheduler's locked counter snapshot).
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the counter contract to hold).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Set overwrites the value; for collector-fed counters only.
func (c *Counter) Set(n int64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution with an optional exemplar:
// the most recent (value, trace ID) pair, surfaced as a comment line
// in the exposition so scrapes stay parse-clean while humans (and the
// trace endpoint) can jump from a tail bucket to a concrete job.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	mu     sync.Mutex
	counts []uint64 // len(bounds)+1
	sum    float64
	total  uint64
	exVal  float64
	exID   string
}

// Observe records v (in the family's unit, typically seconds).
func (h *Histogram) Observe(v float64) { h.ObserveEx(v, "") }

// ObserveEx records v and, when exemplar is non-empty, remembers it as
// the histogram's exemplar trace ID.
func (h *Histogram) ObserveEx(v float64, exemplar string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sum += v
	if exemplar != "" {
		h.exVal, h.exID = v, exemplar
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Counter returns (registering on first use) the counter name{labels}.
// help and type metadata are taken from the first registration of the
// family.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, kindCounter)
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key].(*Counter); ok {
		return c
	}
	c := &Counter{}
	f.children[key] = c
	return c
}

// Gauge returns (registering on first use) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, kindGauge)
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if g, ok := f.children[key].(*Gauge); ok {
		return g
	}
	g := &Gauge{}
	f.children[key] = g
	return g
}

// GaugeFunc registers a gauge whose value is read at scrape time.
// Re-registering the same name+labels replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.family(name, help, kindGauge)
	key := renderLabels(labels)
	f.mu.Lock()
	f.children[key] = fn
	f.mu.Unlock()
}

// Histogram returns (registering on first use) the histogram
// name{labels} with the given bucket upper bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	f := r.family(name, help, kindHistogram)
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok := f.children[key].(*Histogram); ok {
		return h
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	h := &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	f.children[key] = h
	return h
}

// WritePrometheus renders every family in sorted order with # HELP and
// # TYPE metadata, children sorted by label string. Exemplars are
// emitted as comment lines ("# exemplar …") so Prometheus text-format
// parsers — which reject inline exemplar syntax outside OpenMetrics —
// stay happy.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, fn := range collectors {
		fn()
	}

	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, k := range keys {
			switch m := f.children[k].(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, k, m.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, k, fmtFloat(m.Value()))
			case func() float64:
				fmt.Fprintf(w, "%s%s %s\n", f.name, k, fmtFloat(m()))
			case *Histogram:
				writeHistogram(w, f.name, k, m)
			}
		}
		f.mu.Unlock()
	}
}

// writeHistogram renders one histogram child: cumulative _bucket
// series, _sum and _count, plus the exemplar comment.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	exVal, exID := h.exVal, h.exID
	h.mu.Unlock()

	cum := uint64(0)
	for i, b := range bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLE(labels, fmtFloat(b)), cum)
	}
	cum += counts[len(bounds)]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLE(labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, fmtFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, total)
	if exID != "" {
		fmt.Fprintf(w, "# exemplar %s%s trace_id=%s value=%s\n", name, labels, exID, fmtFloat(exVal))
	}
}

// mergeLE splices the le label into an existing (possibly empty)
// rendered label string.
func mergeLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// fmtFloat renders floats the way Prometheus likes them: integers
// without a decimal point, everything else in minimal form.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
