package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTraceSpansAndPhaseTotals(t *testing.T) {
	start := time.Now()
	tr := NewTraceAt("job", 0, start)
	tr.Add(RootSpan, "parse", start, 2*time.Millisecond, A("kind", "dimacs"))
	tr.Add(RootSpan, "queue", start.Add(2*time.Millisecond), 3*time.Millisecond)
	solve := tr.Add(RootSpan, "solve", start.Add(5*time.Millisecond), 10*time.Millisecond)
	tr.AddOffset(solve, "propagate", 5000, 7000, A("attribution", "sampled"))
	tr.Finish()

	v := tr.Snapshot()
	if v.DurUS < 0 {
		t.Fatalf("root still open after Finish: %+v", v)
	}
	if len(v.Spans) != 5 {
		t.Fatalf("want 5 spans, got %d", len(v.Spans))
	}
	ph := v.PhaseTotals()
	if ph["parse"] != 2000 || ph["queue"] != 3000 || ph["solve"] != 10000 {
		t.Fatalf("phase totals wrong: %v", ph)
	}
	if _, ok := ph["propagate"]; ok {
		t.Fatalf("nested span leaked into top-level phase totals: %v", ph)
	}
	if _, err := json.Marshal(v); err != nil {
		t.Fatalf("view not serializable: %v", err)
	}
}

func TestTraceRingBound(t *testing.T) {
	tr := NewTrace("job", 8)
	for i := 0; i < 50; i++ {
		tr.Add(RootSpan, "s", tr.Start(), time.Millisecond)
	}
	v := tr.Snapshot()
	if len(v.Spans) > 8 {
		t.Fatalf("ring bound violated: %d spans retained", len(v.Spans))
	}
	if v.Spans[0].ID != RootSpan {
		t.Fatalf("root evicted: %+v", v.Spans[0])
	}
	if v.Dropped != 50-(8-1) {
		t.Fatalf("dropped count wrong: %d", v.Dropped)
	}
}

func TestTraceBeginEndIdempotent(t *testing.T) {
	tr := NewTrace("job", 0)
	id := tr.Begin(RootSpan, "work")
	if v := tr.Snapshot(); v.Spans[1].DurUS != -1 {
		t.Fatalf("span should be open: %+v", v.Spans[1])
	}
	tr.End(id, A("outcome", "ok"))
	first := tr.Snapshot().Spans[1].DurUS
	if first < 0 {
		t.Fatal("span still open after End")
	}
	time.Sleep(2 * time.Millisecond)
	tr.End(id) // second End must not move the duration
	if got := tr.Snapshot().Spans[1].DurUS; got != first {
		t.Fatalf("End not idempotent: %d != %d", got, first)
	}
	tr.End(99999) // unknown ID: no panic
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("job", 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := tr.Begin(RootSpan, "w")
				tr.End(id)
				_ = tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	if v := tr.Snapshot(); len(v.Spans) > 64 {
		t.Fatalf("bound violated under concurrency: %d", len(v.Spans))
	}
}
