package obs

import (
	"bufio"
	"strings"
	"sync"
	"testing"
)

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second family").Add(7)
	r.Counter("a_jobs_total", "jobs by kind", L("kind", "dimacs")).Add(3)
	r.Counter("a_jobs_total", "jobs by kind", L("kind", "cec")).Inc()
	r.Gauge("c_depth", "queue depth").Set(4)
	r.GaugeFunc("d_dynamic", "read at scrape", func() float64 { return 2.5 })
	h := r.Histogram("e_latency_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.ObserveEx(0.5, "j42")
	h.Observe(5)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	// Families in sorted order.
	for _, pair := range [][2]string{
		{"# TYPE a_jobs_total counter", "# TYPE b_total counter"},
		{"# TYPE b_total counter", "# TYPE c_depth gauge"},
		{"# TYPE c_depth gauge", "# TYPE e_latency_seconds histogram"},
	} {
		if strings.Index(out, pair[0]) >= strings.Index(out, pair[1]) {
			t.Fatalf("family order wrong: %q not before %q in\n%s", pair[0], pair[1], out)
		}
	}
	for _, want := range []string{
		"# HELP a_jobs_total jobs by kind",
		`a_jobs_total{kind="cec"} 1`,
		`a_jobs_total{kind="dimacs"} 3`,
		"b_total 7",
		"c_depth 4",
		"d_dynamic 2.5",
		`e_latency_seconds_bucket{le="0.1"} 1`,
		`e_latency_seconds_bucket{le="1"} 2`,
		`e_latency_seconds_bucket{le="+Inf"} 3`,
		"e_latency_seconds_count 3",
		"# exemplar e_latency_seconds trace_id=j42 value=0.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in\n%s", want, out)
		}
	}
	// Children inside a family sorted by label string (cec before dimacs).
	if strings.Index(out, `kind="cec"`) >= strings.Index(out, `kind="dimacs"`) {
		t.Fatalf("child order wrong:\n%s", out)
	}
	// Parse-clean: every non-comment line is exactly "name value".
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Fatalf("unparseable exposition line %q", line)
		}
	}
}

func TestRegistryIdentityAndCollector(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "x")
	c2 := r.Counter("x_total", "x")
	if c1 != c2 {
		t.Fatal("same name must return the same counter")
	}
	collected := false
	r.AddCollector(func() { collected = true; c1.Set(9) })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !collected || !strings.Contains(sb.String(), "x_total 9") {
		t.Fatalf("collector not run before read:\n%s", sb.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("conc_total", "c", L("g", string(rune('a'+g)))).Inc()
				r.Histogram("conc_seconds", "h", nil).Observe(float64(i) / 100)
				var sb strings.Builder
				r.WritePrometheus(&sb)
			}
		}(g)
	}
	wg.Wait()
	if r.Histogram("conc_seconds", "h", nil).Count() != 8*200 {
		t.Fatal("lost observations")
	}
}

func TestHistogramLabelMergeLE(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat_seconds", "l", []float64{1}, L("kind", "bmc")).Observe(0.5)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `lat_seconds_bucket{kind="bmc",le="1"} 1`) {
		t.Fatalf("labelled bucket wrong:\n%s", sb.String())
	}
}
