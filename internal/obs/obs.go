// Package obs is the serving stack's zero-dependency observability
// layer: lightweight span tracing (Trace) and a unified metrics
// registry (Registry) with Prometheus text exposition.
//
// The paper's EDA workloads — ATPG, BMC, CEC — are long streams of
// related SAT queries where tail latency, not single-solve throughput,
// is the product metric. Improving a tail requires knowing where each
// millisecond goes: queue wait vs coalescing vs parse vs portfolio
// solve vs proof certification vs persistence. This package provides
// the two primitives the whole vertical threads through:
//
//   - Trace: a bounded, per-job ring of spans (name, start, duration,
//     parent, attrs). The scheduler records one span per lifecycle
//     phase; the solver's sampled phase timers become synthetic child
//     spans of the solve. Exported as JSON on GET /v1/jobs/{id}/trace.
//   - Registry: named counters, gauges and histograms (with exemplar
//     trace IDs) that serve, session, store, fleet and audit register
//     into, rendered as parse-clean Prometheus text — # HELP/# TYPE
//     lines, deterministic sorted order.
//
// Both are self-contained (standard library only) and safe for
// concurrent use.
package obs
