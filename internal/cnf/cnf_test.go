package cnf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLitEncoding(t *testing.T) {
	cases := []struct {
		v   Var
		neg bool
	}{{1, false}, {1, true}, {7, false}, {7, true}, {1000, true}}
	for _, c := range cases {
		l := NewLit(c.v, c.neg)
		if l.Var() != c.v {
			t.Errorf("NewLit(%d,%v).Var() = %d", c.v, c.neg, l.Var())
		}
		if l.IsNeg() != c.neg {
			t.Errorf("NewLit(%d,%v).IsNeg() = %v", c.v, c.neg, l.IsNeg())
		}
		if l.Not().Not() != l {
			t.Errorf("double negation of %v changed literal", l)
		}
		if l.Not().Var() != c.v {
			t.Errorf("negation changed variable")
		}
		if l.Not().IsNeg() == c.neg {
			t.Errorf("negation did not flip sign")
		}
	}
}

func TestLitDIMACSRoundTrip(t *testing.T) {
	f := func(n int16) bool {
		if n == 0 {
			return FromDIMACS(0) == LitUndef
		}
		return FromDIMACS(int(n)).DIMACS() == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPosNegLit(t *testing.T) {
	if PosLit(3).DIMACS() != 3 || NegLit(3).DIMACS() != -3 {
		t.Fatalf("PosLit/NegLit broken: %v %v", PosLit(3), NegLit(3))
	}
	if PosLit(3).Not() != NegLit(3) {
		t.Fatal("Not(PosLit) != NegLit")
	}
}

func TestClauseNormalize(t *testing.T) {
	c := NewClause(3, -1, 3, 2)
	n, taut := c.Normalize()
	if taut {
		t.Fatal("unexpected tautology")
	}
	if len(n) != 3 {
		t.Fatalf("dedup failed: %v", n)
	}
	c2 := NewClause(1, -1, 2)
	if _, taut := c2.Normalize(); !taut {
		t.Fatal("tautology not detected")
	}
	if !c2.IsTautology() {
		t.Fatal("IsTautology false for (1 -1 2)")
	}
	one := NewClause(5)
	if n, taut := one.Normalize(); taut || len(n) != 1 {
		t.Fatal("singleton normalize broken")
	}
}

func TestClauseSubsumes(t *testing.T) {
	a := NewClause(1, -2)
	b := NewClause(1, -2, 3)
	if !a.Subsumes(b) {
		t.Fatal("(1 -2) should subsume (1 -2 3)")
	}
	if b.Subsumes(a) {
		t.Fatal("(1 -2 3) should not subsume (1 -2)")
	}
	if !a.Subsumes(a) {
		t.Fatal("clause should subsume itself")
	}
	// Signature filter must never rule out a true subsumption.
	if a.Signature()&^b.Signature() != 0 {
		t.Fatal("signature filter contradicts subsumption")
	}
	c := NewClause(1, 2)
	if c.Subsumes(NewClause(-1, 2, 3)) {
		t.Fatal("polarity must matter for subsumption")
	}
}

func TestFormulaBasics(t *testing.T) {
	f := New(2)
	f.AddDIMACS(1, -2)
	f.AddDIMACS(2, 3) // grows variable count
	if f.NumVars() != 3 {
		t.Fatalf("NumVars = %d, want 3", f.NumVars())
	}
	if f.NumClauses() != 2 {
		t.Fatalf("NumClauses = %d", f.NumClauses())
	}
	v := f.NewVar()
	if v != 4 {
		t.Fatalf("NewVar = %d, want 4", v)
	}
	vs := f.NewVars(3)
	if len(vs) != 3 || vs[2] != 7 {
		t.Fatalf("NewVars = %v", vs)
	}
	if f.NumLiterals() != 4 {
		t.Fatalf("NumLiterals = %d", f.NumLiterals())
	}
	g := f.Clone()
	g.Clauses[0][0] = NegLit(9)
	if f.Clauses[0][0] == NegLit(9) {
		t.Fatal("Clone did not deep-copy clauses")
	}
}

func TestAssignmentEval(t *testing.T) {
	f := New(3)
	f.AddDIMACS(1, 2)
	f.AddDIMACS(-1, 3)
	a := NewAssignment(3)
	if a.Eval(f) != Undef {
		t.Fatal("empty assignment should be Undef")
	}
	a.Assign(PosLit(1))
	if a.EvalClause(f.Clauses[0]) != True {
		t.Fatal("clause 0 should be satisfied")
	}
	if a.Eval(f) != Undef {
		t.Fatal("formula should still be Undef")
	}
	a.Assign(NegLit(3))
	if a.Eval(f) != False {
		t.Fatal("formula should be falsified")
	}
	a.Assign(PosLit(3))
	if !a.Satisfies(f) {
		t.Fatal("formula should be satisfied")
	}
	if a.NumAssigned() != 2 {
		t.Fatalf("NumAssigned = %d", a.NumAssigned())
	}
	a.Unassign(PosLit(1))
	if a.Value(1) != Undef {
		t.Fatal("Unassign failed")
	}
}

func TestLBool(t *testing.T) {
	if True.Not() != False || False.Not() != True || Undef.Not() != Undef {
		t.Fatal("LBool.Not broken")
	}
	if True.String() != "1" || False.String() != "0" || Undef.String() != "X" {
		t.Fatal("LBool.String broken")
	}
	if FromBool(true) != True || FromBool(false) != False {
		t.Fatal("FromBool broken")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	f := New(4)
	f.AddDIMACS(1, -2, 3)
	f.AddDIMACS(-4)
	f.AddDIMACS(2, 4)
	s := DIMACSString(f)
	g, err := ParseDIMACSString(s)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars() != 4 || g.NumClauses() != 3 {
		t.Fatalf("round trip lost structure: %d vars %d clauses", g.NumVars(), g.NumClauses())
	}
	for i := range f.Clauses {
		if f.Clauses[i].String() != g.Clauses[i].String() {
			t.Fatalf("clause %d mismatch: %v vs %v", i, f.Clauses[i], g.Clauses[i])
		}
	}
}

func TestParseDIMACSForms(t *testing.T) {
	// Header, comments, clause split across lines, trailing % (SATLIB).
	src := `c example
p cnf 3 2
1 -2
0
2 3 0
%
`
	f, err := ParseDIMACSString(src)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 2 || f.NumVars() != 3 {
		t.Fatalf("parse: %d clauses %d vars", f.NumClauses(), f.NumVars())
	}
	// Missing header is tolerated.
	f2, err := ParseDIMACSString("1 2 0\n-1 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if f2.NumVars() != 2 || f2.NumClauses() != 2 {
		t.Fatalf("headerless parse: %d vars %d clauses", f2.NumVars(), f2.NumClauses())
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"p cnf x 2\n1 0\n",
		"p cnf 2\n1 0\n",
		"1 2 foo 0\n",
		"1 2 3\n", // unterminated clause
	}
	for _, src := range cases {
		if _, err := ParseDIMACSString(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestWriteDIMACSComments(t *testing.T) {
	f := New(1)
	f.Comments = append(f.Comments, "hello world")
	f.AddDIMACS(1)
	s := DIMACSString(f)
	if !strings.Contains(s, "c hello world\n") {
		t.Fatalf("comment missing from output:\n%s", s)
	}
}

func TestClauseString(t *testing.T) {
	c := NewClause(1, -2)
	if c.String() != "(1 -2)" {
		t.Fatalf("Clause.String = %q", c.String())
	}
	if LitUndef.String() != "?" {
		t.Fatal("LitUndef.String")
	}
}

// Property: Normalize preserves the clause's truth value under any
// assignment (tautologies are always true).
func TestNormalizePreservesSemantics(t *testing.T) {
	f := func(raw []int8, bits uint8) bool {
		var c Clause
		for _, r := range raw {
			v := Var(int(r)%4 + 1)
			if v <= 0 {
				v = -v + 1
			}
			c = append(c, NewLit(v, r < 0))
		}
		if len(c) == 0 {
			return true
		}
		a := NewAssignment(8)
		for v := Var(1); v <= 8; v++ {
			a[v] = FromBool(bits&(1<<uint(v-1)) != 0)
		}
		n, taut := c.Normalize()
		if taut {
			// Tautologies must evaluate true under total assignments.
			return a.EvalClause(c) == True
		}
		return a.EvalClause(c) == a.EvalClause(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Parser robustness: arbitrary byte soup must never panic, only return
// errors or valid formulas.
func TestParseDIMACSFuzzish(t *testing.T) {
	inputs := []string{
		"", "\x00\x01\x02", "p cnf", "p cnf -1 -1\n", "1 2 3 0 0 0",
		"p cnf 999999999999999999999 1\n1 0\n", "c only comments\nc more\n",
		"p cnf 2 1\n1 -2 0\np cnf 3 1\n3 0\n", "-0 0\n", "1 2 0 trailing",
		"%\n0\n", "p cnf 1 1\n\n\n1 0", "1\n2\n0\n-1 0",
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", in, r)
				}
			}()
			f, err := ParseDIMACSString(in)
			if err == nil && f != nil {
				// Returned formulas must be internally consistent.
				if int(f.MaxVar()) > f.NumVars() {
					t.Errorf("inconsistent formula from %q", in)
				}
			}
		}()
	}
}

// Bench parser robustness under the same regime.
func TestClauseHasAndClone(t *testing.T) {
	c := NewClause(1, -2, 3)
	if !c.Has(PosLit(1)) || c.Has(PosLit(2)) || !c.Has(NegLit(2)) {
		t.Fatal("Has broken")
	}
	d := c.Clone()
	d[0] = NegLit(9)
	if c[0] == NegLit(9) {
		t.Fatal("Clone aliases")
	}
}
