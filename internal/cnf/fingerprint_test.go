package cnf

import "testing"

func TestFingerprintInvariances(t *testing.T) {
	base, err := ParseDIMACSString("p cnf 4 3\n1 -2 3 0\n-1 4 0\n2 0\n")
	if err != nil {
		t.Fatal(err)
	}
	fp := FormulaFingerprint(base)

	variants := []string{
		// Clause order permuted.
		"p cnf 4 3\n2 0\n-1 4 0\n1 -2 3 0\n",
		// Literal order permuted within clauses.
		"p cnf 4 3\n3 1 -2 0\n4 -1 0\n2 0\n",
		// Duplicate literals inside a clause.
		"p cnf 4 3\n1 1 -2 3 0\n-1 4 4 0\n2 0\n",
		// Duplicate clause.
		"p cnf 4 4\n1 -2 3 0\n-1 4 0\n2 0\n2 0\n",
		// Comments and whitespace.
		"c a comment\np cnf 4 3\n 1  -2 3 0\nc mid\n-1 4 0\n2 0\n",
	}
	for i, s := range variants {
		g, err := ParseDIMACSString(s)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if got := FormulaFingerprint(g); got != fp {
			t.Fatalf("variant %d: fingerprint %s != base %s", i, got, fp)
		}
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	a, _ := ParseDIMACSString("p cnf 3 2\n1 2 0\n-3 0\n")
	fp := FormulaFingerprint(a)

	// Different clause set.
	b, _ := ParseDIMACSString("p cnf 3 2\n1 2 0\n3 0\n")
	if FormulaFingerprint(b) == fp {
		t.Fatal("negated unit should change the fingerprint")
	}
	// Same clauses, more declared variables: the model shape differs.
	c, _ := ParseDIMACSString("p cnf 5 2\n1 2 0\n-3 0\n")
	if FormulaFingerprint(c) == fp {
		t.Fatal("variable count should be part of the fingerprint")
	}
	// Tautologies are dropped: they are the conjunct "true", so a
	// formula with one added is semantically — and canonically — the
	// same formula.
	d1, _ := ParseDIMACSString("p cnf 3 3\n1 2 0\n-3 0\n1 -1 0\n")
	d2, _ := ParseDIMACSString("p cnf 3 3\n1 2 0\n-3 0\n2 -2 3 0\n")
	if FormulaFingerprint(d1) != fp || FormulaFingerprint(d2) != fp {
		t.Fatal("a tautological conjunct must not change the fingerprint")
	}
	// A genuine empty clause ("false") must NOT collide with a
	// tautology ("true"): one formula is UNSAT, the other SAT.
	empty, _ := ParseDIMACSString("p cnf 1 1\n0\n")
	taut, _ := ParseDIMACSString("p cnf 1 1\n1 -1 0\n")
	if FormulaFingerprint(empty) == FormulaFingerprint(taut) {
		t.Fatal("empty clause and tautology must fingerprint differently")
	}
}

func TestFingerprintStringHex(t *testing.T) {
	f := New(2)
	f.AddDIMACS(1, 2)
	s := FormulaFingerprint(f).String()
	if len(s) != 64 {
		t.Fatalf("hex fingerprint length %d, want 64", len(s))
	}
}

func TestFingerprintTextRoundTrip(t *testing.T) {
	f, err := ParseDIMACSString("p cnf 4 3\n1 -2 3 0\n-1 4 0\n2 0\n")
	if err != nil {
		t.Fatal(err)
	}
	fp := FormulaFingerprint(f)

	text, err := fp.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	if string(text) != fp.String() {
		t.Fatalf("MarshalText %q != String %q", text, fp)
	}
	back, err := ParseFingerprint(string(text))
	if err != nil {
		t.Fatal(err)
	}
	if back != fp {
		t.Fatalf("ParseFingerprint round trip: %s != %s", back, fp)
	}
	var um Fingerprint
	if err := um.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if um != fp {
		t.Fatalf("UnmarshalText round trip: %s != %s", um, fp)
	}

	for _, bad := range []string{"", "abc", fp.String() + "00", "zz" + fp.String()[2:]} {
		if _, err := ParseFingerprint(bad); err == nil {
			t.Errorf("ParseFingerprint(%q) accepted malformed input", bad)
		}
	}
}
