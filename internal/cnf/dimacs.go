package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MaxDIMACSVar bounds the variable index ParseDIMACS accepts. Lit packs
// var<<1|sign into an int32, so a larger variable would overflow into a
// wrong (possibly negative) literal silently; the parser rejects such
// input as malformed instead. (Found by FuzzDIMACS.)
const MaxDIMACSVar = 1<<29 - 1

// ParseDIMACS reads a formula in DIMACS CNF format. It tolerates missing
// or inconsistent "p cnf" headers (the variable count is grown to the
// maximum variable seen) but rejects malformed tokens, unterminated
// clauses at EOF, and literals beyond MaxDIMACSVar; literals exceeding
// the declared variable count are accepted with the count adjusted
// upward.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	f := New(0)
	var cur Clause
	sawHeader := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch text[0] {
		case 'c', '%':
			continue
		case 'p':
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, litErr("line %d: malformed problem line %q", line, text)
			}
			nv, err1 := strconv.Atoi(fields[2])
			_, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nv < 0 || nv > MaxDIMACSVar {
				return nil, litErr("line %d: malformed problem line %q", line, text)
			}
			f.EnsureVars(nv)
			sawHeader = true
			continue
		case '0':
			// A line can legitimately start with a 0 terminating a clause
			// built across lines; fall through to token parsing.
		}
		for _, tok := range strings.Fields(text) {
			n, err := strconv.Atoi(tok)
			if err != nil || n > MaxDIMACSVar || n < -MaxDIMACSVar {
				return nil, litErr("line %d: bad literal %q", line, tok)
			}
			if n == 0 {
				f.AddClause(cur)
				cur = nil
				continue
			}
			cur = append(cur, FromDIMACS(n))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) != 0 {
		return nil, litErr("unterminated clause at end of input")
	}
	_ = sawHeader
	return f, nil
}

// ParseDIMACSString parses a DIMACS CNF from a string.
func ParseDIMACSString(s string) (*Formula, error) {
	return ParseDIMACS(strings.NewReader(s))
}

// WriteDIMACS writes the formula in DIMACS CNF format.
func WriteDIMACS(w io.Writer, f *Formula) error {
	bw := bufio.NewWriter(w)
	for _, c := range f.Comments {
		if _, err := fmt.Fprintf(bw, "c %s\n", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars(), f.NumClauses()); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if _, err := fmt.Fprintf(bw, "%d ", l.DIMACS()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DIMACSString renders the formula in DIMACS CNF format as a string.
func DIMACSString(f *Formula) string {
	var b strings.Builder
	_ = WriteDIMACS(&b, f)
	return b.String()
}
