package cnf

import (
	"fmt"
	"strings"
)

// Formula is a CNF formula: a conjunction of clauses over variables
// 1..NumVars. The zero value is an empty formula with no variables.
type Formula struct {
	numVars int
	Clauses []Clause
	// Comments carries optional annotations (e.g. variable names from a
	// circuit encoding) that serializers may emit as DIMACS comments.
	Comments []string
}

// New returns an empty formula with n variables.
func New(n int) *Formula {
	if n < 0 {
		n = 0
	}
	return &Formula{numVars: n}
}

// NumVars returns the number of variables in the formula.
func (f *Formula) NumVars() int { return f.numVars }

// NumClauses returns the number of clauses in the formula.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// NewVar allocates a fresh variable and returns it.
func (f *Formula) NewVar() Var {
	f.numVars++
	return Var(f.numVars)
}

// NewVars allocates n fresh variables and returns them in order.
func (f *Formula) NewVars(n int) []Var {
	vs := make([]Var, n)
	for i := range vs {
		vs[i] = f.NewVar()
	}
	return vs
}

// EnsureVars grows the variable count so that it is at least n.
func (f *Formula) EnsureVars(n int) {
	if n > f.numVars {
		f.numVars = n
	}
}

// Add appends a clause built from literals, growing the variable count as
// needed. The clause is stored as given (no normalization).
func (f *Formula) Add(lits ...Lit) {
	c := make(Clause, len(lits))
	copy(c, lits)
	f.AddClause(c)
}

// AddClause appends the clause, growing the variable count as needed.
// The formula takes ownership of c.
func (f *Formula) AddClause(c Clause) {
	if mv := int(c.MaxVar()); mv > f.numVars {
		f.numVars = mv
	}
	f.Clauses = append(f.Clauses, c)
}

// AddDIMACS appends a clause given as DIMACS-style signed integers.
func (f *Formula) AddDIMACS(dimacs ...int) {
	f.AddClause(NewClause(dimacs...))
}

// AddUnit appends a unit clause asserting l.
func (f *Formula) AddUnit(l Lit) { f.Add(l) }

// Clone returns a deep copy of the formula.
func (f *Formula) Clone() *Formula {
	g := &Formula{numVars: f.numVars, Clauses: make([]Clause, len(f.Clauses))}
	for i, c := range f.Clauses {
		g.Clauses[i] = c.Clone()
	}
	g.Comments = append(g.Comments, f.Comments...)
	return g
}

// String renders the formula as a conjunction of clause strings; intended
// for debugging and small examples, not large instances.
func (f *Formula) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cnf[%d vars]", f.numVars)
	for _, c := range f.Clauses {
		b.WriteByte(' ')
		b.WriteString(c.String())
	}
	return b.String()
}

// MaxVar returns the largest variable mentioned in any clause (which may
// be smaller than NumVars if trailing variables are unused).
func (f *Formula) MaxVar() Var {
	var m Var
	for _, c := range f.Clauses {
		if v := c.MaxVar(); v > m {
			m = v
		}
	}
	return m
}

// NumLiterals returns the total literal count across all clauses.
func (f *Formula) NumLiterals() int {
	n := 0
	for _, c := range f.Clauses {
		n += len(c)
	}
	return n
}
