package cnf

// BruteForce decides satisfiability by exhaustive enumeration. It is the
// reference oracle used by the test suite to validate the real solvers
// and is practical only for small formulas (it panics above 25 variables
// to catch accidental misuse).
func BruteForce(f *Formula) (bool, Assignment) {
	n := f.NumVars()
	if n > 25 {
		panic("cnf: BruteForce limited to 25 variables")
	}
	a := NewAssignment(n)
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			a[v] = FromBool(mask&(1<<uint(v-1)) != 0)
		}
		if a.Satisfies(f) {
			return true, a.Clone()
		}
	}
	return false, nil
}

// CountModels counts satisfying assignments by exhaustive enumeration
// (over the formula's NumVars variables). Same size limits as BruteForce.
func CountModels(f *Formula) int {
	n := f.NumVars()
	if n > 25 {
		panic("cnf: CountModels limited to 25 variables")
	}
	a := NewAssignment(n)
	count := 0
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			a[v] = FromBool(mask&(1<<uint(v-1)) != 0)
		}
		if a.Satisfies(f) {
			count++
		}
	}
	return count
}
