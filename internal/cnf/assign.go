package cnf

// LBool is a three-valued Boolean: true, false or undefined.
type LBool int8

// The three LBool values.
const (
	Undef LBool = iota // unassigned
	True               // assigned 1
	False              // assigned 0
)

// FromBool lifts a Go bool to an LBool.
func FromBool(b bool) LBool {
	if b {
		return True
	}
	return False
}

// Not returns the complement (Undef maps to Undef).
func (b LBool) Not() LBool {
	switch b {
	case True:
		return False
	case False:
		return True
	}
	return Undef
}

// String renders the LBool as "1", "0" or "X".
func (b LBool) String() string {
	switch b {
	case True:
		return "1"
	case False:
		return "0"
	}
	return "X"
}

// Assignment maps variables to LBool values. Index 0 is unused.
type Assignment []LBool

// NewAssignment returns an all-undefined assignment for n variables.
func NewAssignment(n int) Assignment { return make(Assignment, n+1) }

// Value returns the value assigned to v (Undef if v is out of range).
func (a Assignment) Value(v Var) LBool {
	if int(v) >= len(a) || v <= 0 {
		return Undef
	}
	return a[v]
}

// LitValue returns the value of the literal under the assignment.
func (a Assignment) LitValue(l Lit) LBool {
	v := a.Value(l.Var())
	if l.IsNeg() {
		return v.Not()
	}
	return v
}

// Assign sets the literal l to true (its variable to the corresponding
// polarity), growing the assignment if needed is not supported: v must be
// within range.
func (a Assignment) Assign(l Lit) {
	a[l.Var()] = FromBool(!l.IsNeg())
}

// Unassign clears the variable underlying l.
func (a Assignment) Unassign(l Lit) { a[l.Var()] = Undef }

// NumAssigned counts the variables with a defined value.
func (a Assignment) NumAssigned() int {
	n := 0
	for _, v := range a[1:] {
		if v != Undef {
			n++
		}
	}
	return n
}

// EvalClause returns the clause's value under the assignment:
// True if some literal is true, False if all literals are false,
// Undef otherwise.
func (a Assignment) EvalClause(c Clause) LBool {
	allFalse := true
	for _, l := range c {
		switch a.LitValue(l) {
		case True:
			return True
		case Undef:
			allFalse = false
		}
	}
	if allFalse {
		return False
	}
	return Undef
}

// Eval returns the formula's value under the assignment: False if any
// clause is falsified, True if every clause is satisfied, Undef otherwise.
func (a Assignment) Eval(f *Formula) LBool {
	allTrue := true
	for _, c := range f.Clauses {
		switch a.EvalClause(c) {
		case False:
			return False
		case Undef:
			allTrue = false
		}
	}
	if allTrue {
		return True
	}
	return Undef
}

// Satisfies reports whether the (possibly partial) assignment satisfies
// every clause of f.
func (a Assignment) Satisfies(f *Formula) bool { return a.Eval(f) == True }

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	copy(out, a)
	return out
}
