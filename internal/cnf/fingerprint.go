package cnf

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"slices"
	"sort"
)

// Fingerprint is a 256-bit canonical hash of a formula, suitable as a
// cache key: two formulas that differ only in clause order, literal
// order within clauses, duplicate literals inside a clause, duplicate
// clauses or comments hash identically. Formulas with different
// variable counts hash differently even when their clause sets agree
// (the variable count determines the shape of a reported model).
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex.
func (fp Fingerprint) String() string { return hex.EncodeToString(fp[:]) }

// MarshalText implements encoding.TextMarshaler (lowercase hex), so a
// fingerprint can ride in JSON payloads, HTTP headers and durable
// store records without a custom codec at each site.
func (fp Fingerprint) MarshalText() ([]byte, error) {
	return []byte(fp.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler: the inverse of
// MarshalText, accepting upper- or lowercase hex.
func (fp *Fingerprint) UnmarshalText(text []byte) error {
	parsed, err := ParseFingerprint(string(text))
	if err != nil {
		return err
	}
	*fp = parsed
	return nil
}

// ParseFingerprint decodes the hex rendering produced by
// Fingerprint.String / MarshalText.
func ParseFingerprint(s string) (Fingerprint, error) {
	var fp Fingerprint
	if hex.DecodedLen(len(s)) != len(fp) {
		return fp, fmt.Errorf("cnf: fingerprint must be %d hex chars, got %d", hex.EncodedLen(len(fp)), len(s))
	}
	if _, err := hex.Decode(fp[:], []byte(s)); err != nil {
		return fp, fmt.Errorf("cnf: bad fingerprint: %w", err)
	}
	return fp, nil
}

// FormulaFingerprint computes the canonical Fingerprint of f.
//
// Canonicalization: every clause is normalized (literals sorted,
// duplicates removed), tautological clauses are dropped entirely (a
// tautology is the conjunct "true" — no constraint — and must NOT be
// encoded as anything that could collide with a genuine clause, in
// particular the empty clause, which means "false"), the normalized
// clauses are sorted lexicographically and deduplicated, and the
// result — preceded by the variable count — is hashed with SHA-256.
// The formula itself is never mutated; the function allocates scratch
// proportional to the formula size.
func FormulaFingerprint(f *Formula) Fingerprint {
	norm := make([]Clause, 0, len(f.Clauses))
	for _, c := range f.Clauses {
		nc, taut := c.Normalize()
		if taut {
			continue // "true" conjunct: contributes nothing
		}
		norm = append(norm, nc)
	}
	sort.Slice(norm, func(i, j int) bool { return slices.Compare(norm[i], norm[j]) < 0 })

	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(f.NumVars()))
	h.Write(buf[:])
	var prev Clause
	first := true
	for _, c := range norm {
		if !first && slices.Equal(prev, c) {
			continue // duplicate clause
		}
		first = false
		prev = c
		binary.LittleEndian.PutUint64(buf[:], uint64(len(c)))
		h.Write(buf[:])
		for _, l := range c {
			binary.LittleEndian.PutUint32(buf[:4], uint32(l))
			h.Write(buf[:4])
		}
	}
	var fp Fingerprint
	h.Sum(fp[:0])
	return fp
}
