package cnf

import (
	"bytes"
	"testing"
)

// FuzzDIMACS feeds arbitrary bytes to the DIMACS parser. The properties
// pinned down:
//
//  1. ParseDIMACS never panics — malformed input is rejected with an
//     error, nothing else.
//  2. Anything the parser accepts round-trips: serializing the parsed
//     formula with WriteDIMACS and reparsing yields the identical
//     formula (clauses are stored as given, no normalization).
//
// The seed corpus under testdata/fuzz/FuzzDIMACS covers headers,
// comments, clauses split across lines, empty clauses and the
// MaxDIMACSVar overflow guard.
func FuzzDIMACS(f *testing.F) {
	for _, s := range []string{
		"p cnf 3 2\n1 -2 0\n2 3 0\n",
		"c comment line\np cnf 2 1\n1 2 0\n",
		"1 -1 0\n",                         // no header: vars grown from literals
		"p cnf 0 0\n",                      // empty formula
		"p cnf 4 2\n1 2\n3 0 4 -1 0\n",     // clause split across lines, two clauses on one
		"% terminator style\n0\n",          // empty clause
		"p cnf 536870911 1\n536870911 0\n", // exactly MaxDIMACSVar
		"p cnf 2 1\n536870912 0\n",         // one past the bound: must be rejected
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		f1, err := ParseDIMACS(bytes.NewReader(data))
		if err != nil {
			return // rejecting malformed input is the correct outcome
		}
		for _, c := range f1.Clauses {
			for _, l := range c {
				if l.IsUndef() || l.Var() <= 0 || int(l.Var()) > f1.NumVars() {
					t.Fatalf("parser accepted out-of-range literal %v (numVars %d)", l, f1.NumVars())
				}
			}
		}
		out := DIMACSString(f1)
		f2, err := ParseDIMACSString(out)
		if err != nil {
			t.Fatalf("round-trip reparse failed: %v\nserialized:\n%s", err, out)
		}
		if f2.NumVars() != f1.NumVars() {
			t.Fatalf("round-trip changed NumVars: %d -> %d", f1.NumVars(), f2.NumVars())
		}
		if f2.NumClauses() != f1.NumClauses() {
			t.Fatalf("round-trip changed NumClauses: %d -> %d", f1.NumClauses(), f2.NumClauses())
		}
		for i := range f1.Clauses {
			a, b := f1.Clauses[i], f2.Clauses[i]
			if len(a) != len(b) {
				t.Fatalf("round-trip changed clause %d length: %v -> %v", i, a, b)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("round-trip changed clause %d: %v -> %v", i, a, b)
				}
			}
		}
	})
}
