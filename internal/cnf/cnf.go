// Package cnf provides the core propositional-logic data types used by the
// rest of the toolkit: variables, literals, clauses and CNF formulas, plus
// DIMACS serialization and evaluation helpers.
//
// A CNF formula on n binary variables x1..xn is the conjunction of m
// clauses, each of which is the disjunction of one or more literals, where
// a literal is the occurrence of a variable x or its complement ¬x
// (paper §2). Variables are 1-based, matching the DIMACS convention.
package cnf

import (
	"fmt"
	"strconv"
)

// Var identifies a propositional variable. Valid variables are >= 1;
// 0 is reserved as "undefined".
type Var int32

// Lit is a literal: a variable or its complement. Internally a literal is
// encoded as Var<<1 | sign, so literals of variable v are 2v (positive)
// and 2v+1 (negative). The zero value is LitUndef.
type Lit int32

// LitUndef is the undefined literal (zero value of Lit).
const LitUndef Lit = 0

// VarUndef is the undefined variable (zero value of Var).
const VarUndef Var = 0

// NewLit returns the literal of v, negated if neg is true.
func NewLit(v Var, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v) << 1 }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v)<<1 | 1 }

// Var returns the variable underlying the literal.
func (l Lit) Var() Var { return Var(l >> 1) }

// IsNeg reports whether the literal is a complemented variable.
func (l Lit) IsNeg() bool { return l&1 == 1 }

// Not returns the complement of the literal.
func (l Lit) Not() Lit { return l ^ 1 }

// IsUndef reports whether the literal is undefined.
func (l Lit) IsUndef() bool { return l == LitUndef }

// Index returns a dense non-negative index for the literal, suitable for
// indexing slices of length 2*(maxVar+1).
func (l Lit) Index() int { return int(l) }

// FromDIMACS converts a DIMACS-style signed integer (…,-2,-1,1,2,…) into
// a Lit. FromDIMACS(0) returns LitUndef.
func FromDIMACS(i int) Lit {
	if i == 0 {
		return LitUndef
	}
	if i < 0 {
		return NegLit(Var(-i))
	}
	return PosLit(Var(i))
}

// DIMACS returns the literal in DIMACS signed-integer form.
func (l Lit) DIMACS() int {
	v := int(l.Var())
	if l.IsNeg() {
		return -v
	}
	return v
}

// String renders the literal in DIMACS form ("3", "-7", "?").
func (l Lit) String() string {
	if l.IsUndef() {
		return "?"
	}
	return strconv.Itoa(l.DIMACS())
}

// Clause is a disjunction of literals. Clauses are value types; most
// operations treat them as read-only.
type Clause []Lit

// NewClause builds a clause from DIMACS-style signed integers.
func NewClause(dimacs ...int) Clause {
	c := make(Clause, len(dimacs))
	for i, d := range dimacs {
		if d == 0 {
			panic("cnf: literal 0 in clause")
		}
		c[i] = FromDIMACS(d)
	}
	return c
}

// Clone returns a copy of the clause.
func (c Clause) Clone() Clause {
	out := make(Clause, len(c))
	copy(out, c)
	return out
}

// Has reports whether the clause contains the literal l.
func (c Clause) Has(l Lit) bool {
	for _, x := range c {
		if x == l {
			return true
		}
	}
	return false
}

// IsTautology reports whether the clause contains a variable in both
// polarities, making it trivially true.
func (c Clause) IsTautology() bool {
	for i, l := range c {
		for _, m := range c[i+1:] {
			if l == m.Not() {
				return true
			}
		}
	}
	return false
}

// Normalize sorts literals, removes duplicates, and reports whether the
// clause is a tautology. The returned clause may alias c's backing array.
func (c Clause) Normalize() (Clause, bool) {
	if len(c) <= 1 {
		return c, false
	}
	out := c.Clone()
	// Insertion sort: clauses are short, and we avoid a sort dependency on
	// the hot path.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] == out[w-1] {
			continue
		}
		if out[i] == out[w-1].Not() {
			return out, true
		}
		out[w] = out[i]
		w++
	}
	return out[:w], false
}

// MaxVar returns the largest variable mentioned in the clause.
func (c Clause) MaxVar() Var {
	var m Var
	for _, l := range c {
		if v := l.Var(); v > m {
			m = v
		}
	}
	return m
}

// String renders the clause as "(1 -2 3)".
func (c Clause) String() string {
	s := "("
	for i, l := range c {
		if i > 0 {
			s += " "
		}
		s += l.String()
	}
	return s + ")"
}

// Subsumes reports whether c subsumes d, i.e. every literal of c occurs
// in d. A subsumed clause is redundant. Both clauses are treated as sets.
func (c Clause) Subsumes(d Clause) bool {
	if len(c) > len(d) {
		return false
	}
	for _, l := range c {
		if !d.Has(l) {
			return false
		}
	}
	return true
}

// Signature returns a 64-bit set signature of the clause's variables,
// used to make subsumption checks cheap: if sig(c) &^ sig(d) != 0,
// c cannot subsume d.
func (c Clause) Signature() uint64 {
	var sig uint64
	for _, l := range c {
		sig |= 1 << (uint(l.Var()) % 64)
	}
	return sig
}

func litErr(format string, args ...any) error { return fmt.Errorf("cnf: "+format, args...) }
