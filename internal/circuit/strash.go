package circuit

import (
	"fmt"
	"sort"
	"strings"
)

// Strash structurally hashes the circuit: gates with the same type and
// the same (order-normalized) fanins are merged, constants are folded
// into gate keys, and buffers collapse. The returned circuit computes
// the same outputs with at most as many gates. Structural hashing is
// the classic front-end of equivalence checkers: structurally identical
// regions of two designs merge before SAT sees them.
func Strash(c *Circuit) *Circuit {
	out := New()
	newID := make([]NodeID, len(c.Nodes))
	byKey := make(map[string]NodeID)

	gateNode := func(t GateType, fanin []NodeID, name string) NodeID {
		// Commutative gates: normalize fanin order for hashing.
		key := fmt.Sprintf("%d", t)
		sorted := append([]NodeID(nil), fanin...)
		switch t {
		case And, Nand, Or, Nor, Xor, Xnor:
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		}
		parts := make([]string, len(sorted))
		for i, f := range sorted {
			parts[i] = fmt.Sprintf("%d", f)
		}
		key += ":" + strings.Join(parts, ",")
		if id, ok := byKey[key]; ok {
			return id
		}
		id := out.AddGate(t, uniqueName(out, name), sorted...)
		byKey[key] = id
		return id
	}

	var c0, c1 NodeID = NoNode, NoNode
	constNode := func(v bool) NodeID {
		if v {
			if c1 == NoNode {
				c1 = out.AddConst(true, uniqueName(out, "one"))
			}
			return c1
		}
		if c0 == NoNode {
			c0 = out.AddConst(false, uniqueName(out, "zero"))
		}
		return c0
	}

	for i := range c.Nodes {
		n := &c.Nodes[i]
		switch n.Type {
		case Input:
			newID[i] = out.AddInput(n.Name)
		case Const0:
			newID[i] = constNode(false)
		case Const1:
			newID[i] = constNode(true)
		case Buf:
			newID[i] = newID[n.Fanin[0]] // collapse buffers
		default:
			fanin := make([]NodeID, len(n.Fanin))
			for j, f := range n.Fanin {
				fanin[j] = newID[f]
			}
			newID[i] = gateNode(n.Type, fanin, n.Name)
		}
	}
	for _, o := range c.Outputs {
		out.MarkOutput(newID[o])
	}
	return out
}

func uniqueName(c *Circuit, base string) string {
	if base != "" && c.NodeByName(base) == NoNode {
		return base
	}
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s_s%d", base, i)
		if c.NodeByName(name) == NoNode {
			return name
		}
	}
}
