package circuit

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cnf"
)

func TestValidateErrorPaths(t *testing.T) {
	// Hand-corrupt structures to hit every Validate branch.
	mk := func() *Circuit {
		c := New()
		a := c.AddInput("a")
		b := c.AddInput("b")
		g := c.AddGate(And, "g", a, b)
		c.MarkOutput(g)
		return c
	}
	cases := []func(*Circuit){
		func(c *Circuit) { c.Nodes[2].Fanin[0] = 99 },                                       // out of range
		func(c *Circuit) { c.Nodes[2].Fanin[0] = 2 },                                        // self/forward ref
		func(c *Circuit) { c.Nodes[0].Fanin = []NodeID{1} },                                 // input with fanin
		func(c *Circuit) { c.Nodes[2].Type = Not },                                          // NOT arity 2
		func(c *Circuit) { c.Nodes[2].Type = Xor; c.Nodes[2].Fanin = c.Nodes[2].Fanin[:1] }, // XOR arity 1
		func(c *Circuit) { c.Nodes[2].Fanin = nil },                                         // AND arity 0
		func(c *Circuit) { c.Nodes[2].Type = GateType(99) },                                 // unknown type
		func(c *Circuit) { c.Outputs[0] = 99 },                                              // bad output
	}
	for i, corrupt := range cases {
		c := mk()
		corrupt(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: corruption not detected", i)
		}
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("clean circuit rejected: %v", err)
	}
}

func TestGateTypeString(t *testing.T) {
	if And.String() != "AND" || Xnor.String() != "XNOR" || Input.String() != "INPUT" {
		t.Fatal("GateType.String broken")
	}
	if GateType(99).String() == "" {
		t.Fatal("unknown type should render something")
	}
}

func TestOutputsOfAndEncodingVar(t *testing.T) {
	c := RippleCarryAdder(2)
	in := make([]uint64, len(c.Inputs))
	in[0] = ^uint64(0) // a0 = 1
	vals := c.Simulate(in)
	outs := c.OutputsOf(vals)
	if len(outs) != len(c.Outputs) {
		t.Fatal("OutputsOf length wrong")
	}
	if outs[0] != vals[c.Outputs[0]] {
		t.Fatal("OutputsOf order wrong")
	}
	enc := Encode(c)
	if enc.Var(c.Inputs[0]) != enc.VarOf[c.Inputs[0]] {
		t.Fatal("Encoding.Var accessor wrong")
	}
}

func TestSimulateInjectInPackage(t *testing.T) {
	// Output stem injection and pin injection agree with manual logic.
	c := New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(And, "g", a, b)
	o := c.AddGate(Or, "o", g, a)
	c.MarkOutput(o)
	in := []uint64{0b1100, 0b1010}
	// Force g output to all-ones: o = 1 everywhere.
	vals := c.SimulateInject(in, []Injection{{Node: g, Pin: -1, Value: ^uint64(0)}})
	if vals[o] != ^uint64(0) {
		t.Fatal("stem injection failed")
	}
	// Force pin 1 of g (input b) to 0: g = 0, o = a.
	vals = c.SimulateInject(in, []Injection{{Node: g, Pin: 1, Value: 0}})
	if vals[o] != in[0] {
		t.Fatalf("pin injection failed: %b vs %b", vals[o], in[0])
	}
	// No injections = plain simulate.
	vals = c.SimulateInject(in, nil)
	plain := c.Simulate(in)
	for i := range vals {
		if vals[i] != plain[i] {
			t.Fatal("empty injection changed simulation")
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	c := Figure3()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// x1=1, w=1 forces y1=y2=1 and y3=1.
	vals := c.SimulateBool([]bool{true, true})
	if !vals[c.NodeByName("y3")] {
		t.Fatal("Figure 3 semantics wrong")
	}
	vals = c.SimulateBool([]bool{false, true})
	if vals[c.NodeByName("y3")] {
		t.Fatal("y3 must be 0 when x1=0")
	}
}

func TestNANDAdderMatchesPlainAdder(t *testing.T) {
	n := 5
	a := RippleCarryAdder(n)
	b := RippleCarryAdderNAND(n)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 100; trial++ {
		in := make([]uint64, len(a.Inputs))
		for i := range in {
			in[i] = rng.Uint64()
		}
		av := a.Simulate(in)
		bv := b.Simulate(in)
		for i := range a.Outputs {
			if av[a.Outputs[i]] != bv[b.Outputs[i]] {
				t.Fatal("NAND adder differs from plain adder")
			}
		}
	}
}

func TestEncodePropertyLitHelper(t *testing.T) {
	c := Figure1()
	_, enc := EncodeProperty(c, c.Outputs[0], true)
	l := enc.Lit(c.Outputs[0], true)
	if l.IsNeg() {
		t.Fatal("Lit(id, true) must be positive")
	}
	if enc.Lit(c.Outputs[0], false) != l.Not() {
		t.Fatal("Lit polarity inversion wrong")
	}
	_ = cnf.LitUndef
}

func TestStrashNamePreservation(t *testing.T) {
	c := New()
	a := c.AddInput("a")
	g := c.AddGate(Not, "g", a)
	c.MarkOutput(g)
	s := Strash(c)
	if s.NodeByName("a") == NoNode {
		t.Fatal("input name lost in strash")
	}
}

// Bench parser robustness: byte soup must error, never panic.
func TestParseBenchFuzzish(t *testing.T) {
	inputs := []string{
		"", "\x00\x01", "INPUT(", "INPUT()", "OUTPUT()", "x =", "= AND(a)",
		"INPUT(a)\nx = AND(a\nOUTPUT(x)", "INPUT(a)\nx = (a)\nOUTPUT(x)",
		"INPUT(a)\nINPUT(a)\nx = BUF(a)\nOUTPUT(x)",
		"x = DFF()\nOUTPUT(x)", "x = DFF(a, b)\nINPUT(a)\nINPUT(b)\nOUTPUT(x)",
		"INPUT(a)\na = AND(a, a)\nOUTPUT(a)",
		strings.Repeat("INPUT(x)\n", 2),
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", in, r)
				}
			}()
			c, _, err := ParseBenchString(in)
			if err == nil && c != nil {
				if verr := c.Validate(); verr != nil {
					t.Errorf("accepted invalid circuit from %q: %v", in, verr)
				}
			}
		}()
	}
}
