package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Latch is a D flip-flop parsed from a .bench file. Its Output node is
// represented as a pseudo primary input of the combinational core; Input
// is the node driving D. Sequential analysis (the bmc package) consumes
// these pairs; purely combinational flows reject files with latches.
type Latch struct {
	Output NodeID // the latch's Q, a pseudo-input node
	Input  NodeID // the node feeding D
}

// ParseBench reads an ISCAS-style .bench netlist: INPUT(x), OUTPUT(y),
// and gate lines "z = NAND(a, b)". DFF lines produce Latch records.
// Definitions may appear in any order; combinational cycles are errors.
func ParseBench(r io.Reader) (*Circuit, []Latch, error) {
	type def struct {
		typ    GateType
		isDFF  bool
		fanin  []string
		lineNo int
	}
	defs := make(map[string]*def)
	var inputOrder, outputOrder, defOrder []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "INPUT("):
			name, err := parseParen(line)
			if err != nil {
				return nil, nil, fmt.Errorf("bench line %d: %v", lineNo, err)
			}
			inputOrder = append(inputOrder, name)
		case strings.HasPrefix(upper, "OUTPUT("):
			name, err := parseParen(line)
			if err != nil {
				return nil, nil, fmt.Errorf("bench line %d: %v", lineNo, err)
			}
			outputOrder = append(outputOrder, name)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, nil, fmt.Errorf("bench line %d: malformed line %q", lineNo, line)
			}
			name := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			close := strings.LastIndex(rhs, ")")
			if open < 0 || close < open {
				return nil, nil, fmt.Errorf("bench line %d: malformed gate %q", lineNo, rhs)
			}
			gateName := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			var args []string
			for _, a := range strings.Split(rhs[open+1:close], ",") {
				a = strings.TrimSpace(a)
				if a != "" {
					args = append(args, a)
				}
			}
			d := &def{fanin: args, lineNo: lineNo}
			switch gateName {
			case "AND":
				d.typ = And
			case "NAND":
				d.typ = Nand
			case "OR":
				d.typ = Or
			case "NOR":
				d.typ = Nor
			case "XOR":
				d.typ = Xor
			case "XNOR":
				d.typ = Xnor
			case "NOT", "INV":
				d.typ = Not
			case "BUF", "BUFF", "BUFFER":
				d.typ = Buf
			case "DFF":
				d.isDFF = true
			default:
				return nil, nil, fmt.Errorf("bench line %d: unknown gate %q", lineNo, gateName)
			}
			if _, dup := defs[name]; dup {
				return nil, nil, fmt.Errorf("bench line %d: duplicate definition of %q", lineNo, name)
			}
			defs[name] = d
			defOrder = append(defOrder, name)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}

	c := New()
	// Inputs and latch outputs become nodes first (latch Q is a
	// pseudo-input of the combinational core).
	seenInput := make(map[string]bool, len(inputOrder))
	for _, name := range inputOrder {
		if _, isGate := defs[name]; isGate {
			return nil, nil, fmt.Errorf("bench: %q declared INPUT but also defined", name)
		}
		if seenInput[name] {
			return nil, nil, fmt.Errorf("bench: duplicate INPUT(%s)", name)
		}
		seenInput[name] = true
		c.AddInput(name)
	}
	var dffNames []string
	for _, name := range defOrder {
		if defs[name].isDFF {
			dffNames = append(dffNames, name)
			c.AddInput(name)
		}
	}

	// Topologically order the combinational gate definitions.
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var order []string
	var visit func(name string) error
	visit = func(name string) error {
		if c.NodeByName(name) != NoNode && state[name] == 0 {
			if d, isGate := defs[name]; !isGate || d.isDFF {
				return nil // input or latch output: already a node
			}
		}
		switch state[name] {
		case 1:
			return fmt.Errorf("bench: combinational cycle through %q", name)
		case 2:
			return nil
		}
		d, ok := defs[name]
		if !ok {
			return fmt.Errorf("bench: undefined signal %q", name)
		}
		if d.isDFF {
			return nil // latch outputs break cycles
		}
		state[name] = 1
		for _, f := range d.fanin {
			if err := visit(f); err != nil {
				return err
			}
		}
		state[name] = 2
		order = append(order, name)
		return nil
	}
	for _, name := range defOrder {
		if !defs[name].isDFF {
			if err := visit(name); err != nil {
				return nil, nil, err
			}
		}
	}
	for _, name := range order {
		d := defs[name]
		fanin := make([]NodeID, len(d.fanin))
		for i, f := range d.fanin {
			id := c.NodeByName(f)
			if id == NoNode {
				return nil, nil, fmt.Errorf("bench line %d: undefined fanin %q", d.lineNo, f)
			}
			fanin[i] = id
		}
		c.AddGate(d.typ, name, fanin...)
	}

	// Resolve latch D inputs (which may be any node, including inputs).
	var latches []Latch
	for _, name := range dffNames {
		d := defs[name]
		if len(d.fanin) != 1 {
			return nil, nil, fmt.Errorf("bench line %d: DFF takes one input", d.lineNo)
		}
		in := c.NodeByName(d.fanin[0])
		if in == NoNode {
			return nil, nil, fmt.Errorf("bench line %d: undefined DFF input %q", d.lineNo, d.fanin[0])
		}
		latches = append(latches, Latch{Output: c.NodeByName(name), Input: in})
	}

	for _, name := range outputOrder {
		id := c.NodeByName(name)
		if id == NoNode {
			return nil, nil, fmt.Errorf("bench: undefined output %q", name)
		}
		c.MarkOutput(id)
	}
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	return c, latches, nil
}

func parseParen(line string) (string, error) {
	open := strings.Index(line, "(")
	close := strings.LastIndex(line, ")")
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	name := strings.TrimSpace(line[open+1 : close])
	if name == "" {
		return "", fmt.Errorf("empty name in %q", line)
	}
	return name, nil
}

// ParseBenchString parses a .bench netlist from a string.
func ParseBenchString(s string) (*Circuit, []Latch, error) {
	return ParseBench(strings.NewReader(s))
}

// WriteBench writes the circuit (and optional latches) in .bench format.
func WriteBench(w io.Writer, c *Circuit, latches []Latch) error {
	bw := bufio.NewWriter(w)
	latchOut := make(map[NodeID]NodeID) // Q node -> D node
	for _, l := range latches {
		latchOut[l.Output] = l.Input
	}
	for _, in := range c.Inputs {
		if _, isLatch := latchOut[in]; isLatch {
			continue
		}
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Name(in))
	}
	for _, o := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Name(o))
	}
	// Emit latches in a stable order.
	var qs []NodeID
	for q := range latchOut {
		qs = append(qs, q)
	}
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	for _, q := range qs {
		fmt.Fprintf(bw, "%s = DFF(%s)\n", c.Name(q), c.Name(latchOut[q]))
	}
	for i := range c.Nodes {
		n := &c.Nodes[i]
		switch n.Type {
		case Input:
			continue
		case Const0, Const1:
			// .bench has no constant primitive; encode as a degenerate
			// AND/OR of an input would change semantics, so reject.
			return fmt.Errorf("bench: cannot serialize constant node %q", n.Name)
		}
		names := make([]string, len(n.Fanin))
		for j, f := range n.Fanin {
			names[j] = c.Name(f)
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", n.Name, n.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// BenchString renders the circuit in .bench format.
func BenchString(c *Circuit, latches []Latch) (string, error) {
	var b strings.Builder
	if err := WriteBench(&b, c, latches); err != nil {
		return "", err
	}
	return b.String(), nil
}
