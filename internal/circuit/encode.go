package circuit

import "repro/internal/cnf"

// Encoding maps a circuit to its CNF consistency formula: the
// conjunction of the CNF formulas for each gate output, where each
// gate's formula denotes the valid input-output assignments to the gate
// (paper §2, Table 1, Figure 1).
type Encoding struct {
	// F is the CNF formula. Variables 1..NumNodes correspond to nodes in
	// construction order; any additional variables are auxiliaries
	// introduced for wide XOR/XNOR gates.
	F *cnf.Formula
	// VarOf maps NodeID to its CNF variable.
	VarOf []cnf.Var
}

// Encode builds the CNF consistency formula for the whole circuit.
func Encode(c *Circuit) *Encoding {
	f := cnf.New(0)
	return EncodeInto(f, c)
}

// EncodeInto appends the circuit's consistency formula to f, allocating
// fresh variables. This allows composing several circuit copies into one
// formula (miters, time-frame expansion).
func EncodeInto(f *cnf.Formula, c *Circuit) *Encoding {
	e := &Encoding{F: f, VarOf: make([]cnf.Var, len(c.Nodes))}
	for i := range c.Nodes {
		e.VarOf[i] = f.NewVar()
	}
	for i := range c.Nodes {
		n := &c.Nodes[i]
		x := e.VarOf[i]
		ins := make([]cnf.Var, len(n.Fanin))
		for j, fn := range n.Fanin {
			ins[j] = e.VarOf[fn]
		}
		AppendGateCNF(f, n.Type, x, ins)
	}
	return e
}

// Lit returns the literal asserting node id has the given value.
func (e *Encoding) Lit(id NodeID, val bool) cnf.Lit {
	return cnf.NewLit(e.VarOf[id], !val)
}

// Var returns the CNF variable of node id.
func (e *Encoding) Var(id NodeID) cnf.Var { return e.VarOf[id] }

// AppendGateCNF appends the Table 1 clause set for a single gate with
// output variable x and input variables ins. Wide XOR/XNOR gates are
// decomposed via fresh auxiliary variables from f.
//
// Table 1 (for two inputs; the n-ary forms generalize literally):
//
//	x = AND(w1,w2):   (w1 + ¬x)(w2 + ¬x)(¬w1 + ¬w2 + x)
//	x = NAND(w1,w2):  (w1 + x)(w2 + x)(¬w1 + ¬w2 + ¬x)
//	x = OR(w1,w2):    (¬w1 + x)(¬w2 + x)(w1 + w2 + ¬x)
//	x = NOR(w1,w2):   (¬w1 + ¬x)(¬w2 + ¬x)(w1 + w2 + x)
//	x = NOT(w1):      (x + w1)(¬x + ¬w1)
//	x = BUFFER(w1):   (¬x + w1)(x + ¬w1)
func AppendGateCNF(f *cnf.Formula, t GateType, x cnf.Var, ins []cnf.Var) {
	pos := func(v cnf.Var) cnf.Lit { return cnf.PosLit(v) }
	neg := func(v cnf.Var) cnf.Lit { return cnf.NegLit(v) }
	switch t {
	case Input:
		// Free variable: no clauses.
	case Const0:
		f.Add(neg(x))
	case Const1:
		f.Add(pos(x))
	case Buf:
		f.Add(neg(x), pos(ins[0]))
		f.Add(pos(x), neg(ins[0]))
	case Not:
		f.Add(pos(x), pos(ins[0]))
		f.Add(neg(x), neg(ins[0]))
	case And:
		long := make(cnf.Clause, 0, len(ins)+1)
		for _, w := range ins {
			f.Add(pos(w), neg(x))
			long = append(long, neg(w))
		}
		long = append(long, pos(x))
		f.AddClause(long)
	case Nand:
		long := make(cnf.Clause, 0, len(ins)+1)
		for _, w := range ins {
			f.Add(pos(w), pos(x))
			long = append(long, neg(w))
		}
		long = append(long, neg(x))
		f.AddClause(long)
	case Or:
		long := make(cnf.Clause, 0, len(ins)+1)
		for _, w := range ins {
			f.Add(neg(w), pos(x))
			long = append(long, pos(w))
		}
		long = append(long, neg(x))
		f.AddClause(long)
	case Nor:
		long := make(cnf.Clause, 0, len(ins)+1)
		for _, w := range ins {
			f.Add(neg(w), neg(x))
			long = append(long, pos(w))
		}
		long = append(long, pos(x))
		f.AddClause(long)
	case Xor, Xnor:
		// Decompose n-ary parity into 2-input steps with fresh
		// auxiliaries: t1 = w1 ⊕ w2, t2 = t1 ⊕ w3, …
		cur := ins[0]
		for i := 1; i < len(ins); i++ {
			var out cnf.Var
			last := i == len(ins)-1
			if last {
				out = x
			} else {
				out = f.NewVar()
			}
			odd := true
			if last && t == Xnor {
				odd = false // final step realizes the complement
			}
			appendXor2(f, out, cur, ins[i], odd)
			cur = out
		}
	default:
		panic("circuit: AppendGateCNF on unsupported gate")
	}
}

// appendXor2 appends clauses for out = a ⊕ b (odd=true) or
// out = ¬(a ⊕ b) (odd=false).
func appendXor2(f *cnf.Formula, out, a, b cnf.Var, odd bool) {
	o := func(neg bool) cnf.Lit { return cnf.NewLit(out, neg != !odd) }
	// For XOR: out=1 iff a≠b. Clauses forbid the four inconsistent rows.
	f.Add(o(true), cnf.PosLit(a), cnf.PosLit(b))  // a=0,b=0 → out=0
	f.Add(o(true), cnf.NegLit(a), cnf.NegLit(b))  // a=1,b=1 → out=0
	f.Add(o(false), cnf.NegLit(a), cnf.PosLit(b)) // a=1,b=0 → out=1
	f.Add(o(false), cnf.PosLit(a), cnf.NegLit(b)) // a=0,b=1 → out=1
}

// EncodeProperty builds the CNF for proving property "output o has value
// v" on circuit c (paper Figure 1(b)): the consistency formula plus the
// unit objective clause. A SAT result yields an input assignment
// establishing the property value.
func EncodeProperty(c *Circuit, o NodeID, v bool) (*cnf.Formula, *Encoding) {
	e := Encode(c)
	e.F.Add(e.Lit(o, v))
	return e.F, e
}
