package circuit

import (
	"math/rand"
	"testing"
)

func TestStrashMergesDuplicates(t *testing.T) {
	c := New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(And, "g1", a, b)
	g2 := c.AddGate(And, "g2", b, a) // same gate, swapped fanins
	o := c.AddGate(Or, "o", g1, g2)  // collapses to OR(g, g)
	c.MarkOutput(o)
	s := Strash(c)
	if s.NumGates() >= c.NumGates() {
		t.Fatalf("strash did not merge: %d -> %d gates", c.NumGates(), s.NumGates())
	}
	// Function preserved.
	for pat := 0; pat < 4; pat++ {
		in := []bool{pat&1 != 0, pat&2 != 0}
		if c.SimulateBool(in)[o] != s.SimulateBool(in)[s.Outputs[0]] {
			t.Fatalf("strash changed function at %d", pat)
		}
	}
}

func TestStrashCollapsesBuffers(t *testing.T) {
	c := New()
	a := c.AddInput("a")
	b1 := c.AddGate(Buf, "b1", a)
	b2 := c.AddGate(Buf, "b2", b1)
	n := c.AddGate(Not, "n", b2)
	c.MarkOutput(n)
	s := Strash(c)
	if s.NumGates() != 1 {
		t.Fatalf("expected single NOT, got %d gates", s.NumGates())
	}
}

func TestStrashPreservesRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		c := RandomDAG(6, 30, 3, seed)
		s := Strash(c)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if s.NumGates() > c.NumGates() {
			t.Fatalf("seed %d: strash grew the circuit", seed)
		}
		rng := rand.New(rand.NewSource(seed + 50))
		for trial := 0; trial < 20; trial++ {
			in := make([]uint64, len(c.Inputs))
			for i := range in {
				in[i] = rng.Uint64()
			}
			cv := c.Simulate(in)
			sv := s.Simulate(in)
			for i := range c.Outputs {
				if cv[c.Outputs[i]] != sv[s.Outputs[i]] {
					t.Fatalf("seed %d: output %d differs", seed, i)
				}
			}
		}
	}
}

func TestStrashSharedSubcircuits(t *testing.T) {
	// Duplicate an adder twice and XOR outputs: strash should merge the
	// two copies entirely (the miter of a circuit with itself).
	a := RippleCarryAdder(4)
	m := New()
	newA := make([]NodeID, len(a.Nodes))
	newB := make([]NodeID, len(a.Nodes))
	for i := range a.Nodes {
		n := &a.Nodes[i]
		if n.Type == Input {
			id := m.AddInput(n.Name)
			newA[i] = id
			newB[i] = id
			continue
		}
		fa := make([]NodeID, len(n.Fanin))
		fb := make([]NodeID, len(n.Fanin))
		for j, f := range n.Fanin {
			fa[j] = newA[f]
			fb[j] = newB[f]
		}
		newA[i] = m.AddGate(n.Type, "A_"+n.Name, fa...)
		newB[i] = m.AddGate(n.Type, "B_"+n.Name, fb...)
	}
	var diffs []NodeID
	for i, o := range a.Outputs {
		diffs = append(diffs, m.AddGate(Xor, uniqueName(m, "d"+a.Name(a.Outputs[i])), newA[o], newB[o]))
	}
	top := m.AddGate(Or, "top", diffs...)
	m.MarkOutput(top)

	s := Strash(m)
	// After merging the copies, every XOR has identical fanins; it
	// remains but the duplicated adder halves; expect far fewer gates.
	if s.NumGates() > m.NumGates()/2+len(diffs)+2 {
		t.Fatalf("strash failed to merge copies: %d -> %d gates", m.NumGates(), s.NumGates())
	}
}
