package circuit

import "repro/internal/cnf"

// Simulate performs 64-way bit-parallel simulation: each input word
// carries 64 independent patterns. It returns one word per node.
// The inputs slice is indexed like c.Inputs.
func (c *Circuit) Simulate(inputs []uint64) []uint64 {
	if len(inputs) != len(c.Inputs) {
		panic("circuit: Simulate input count mismatch")
	}
	val := make([]uint64, len(c.Nodes))
	inIdx := 0
	for i := range c.Nodes {
		n := &c.Nodes[i]
		switch n.Type {
		case Input:
			val[i] = inputs[inIdx]
			inIdx++
		case Const0:
			val[i] = 0
		case Const1:
			val[i] = ^uint64(0)
		case Buf:
			val[i] = val[n.Fanin[0]]
		case Not:
			val[i] = ^val[n.Fanin[0]]
		case And, Nand:
			v := ^uint64(0)
			for _, f := range n.Fanin {
				v &= val[f]
			}
			if n.Type == Nand {
				v = ^v
			}
			val[i] = v
		case Or, Nor:
			v := uint64(0)
			for _, f := range n.Fanin {
				v |= val[f]
			}
			if n.Type == Nor {
				v = ^v
			}
			val[i] = v
		case Xor, Xnor:
			v := uint64(0)
			for _, f := range n.Fanin {
				v ^= val[f]
			}
			if n.Type == Xnor {
				v = ^v
			}
			val[i] = v
		}
	}
	return val
}

// SimulateBool simulates a single Boolean pattern.
func (c *Circuit) SimulateBool(inputs []bool) []bool {
	words := make([]uint64, len(inputs))
	for i, b := range inputs {
		if b {
			words[i] = 1
		}
	}
	vals := c.Simulate(words)
	out := make([]bool, len(vals))
	for i, w := range vals {
		out[i] = w&1 == 1
	}
	return out
}

// OutputsOf extracts the output values from a node-value slice.
func (c *Circuit) OutputsOf(vals []uint64) []uint64 {
	out := make([]uint64, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = vals[o]
	}
	return out
}

// SimulateLBool performs three-valued (0/1/X) simulation, used to verify
// that partially-specified test patterns (§5: non-overspecified input
// patterns) still establish the required values. Controlling values
// dominate X inputs as in standard ternary simulation.
func (c *Circuit) SimulateLBool(inputs []cnf.LBool) []cnf.LBool {
	if len(inputs) != len(c.Inputs) {
		panic("circuit: SimulateLBool input count mismatch")
	}
	val := make([]cnf.LBool, len(c.Nodes))
	inIdx := 0
	for i := range c.Nodes {
		n := &c.Nodes[i]
		switch n.Type {
		case Input:
			val[i] = inputs[inIdx]
			inIdx++
		case Const0:
			val[i] = cnf.False
		case Const1:
			val[i] = cnf.True
		case Buf:
			val[i] = val[n.Fanin[0]]
		case Not:
			val[i] = val[n.Fanin[0]].Not()
		case And, Nand:
			v := cnf.True
			for _, f := range n.Fanin {
				v = and3(v, val[f])
			}
			if n.Type == Nand {
				v = v.Not()
			}
			val[i] = v
		case Or, Nor:
			v := cnf.False
			for _, f := range n.Fanin {
				v = or3(v, val[f])
			}
			if n.Type == Nor {
				v = v.Not()
			}
			val[i] = v
		case Xor, Xnor:
			v := cnf.False
			for _, f := range n.Fanin {
				v = xor3(v, val[f])
			}
			if n.Type == Xnor {
				v = v.Not()
			}
			val[i] = v
		}
	}
	return val
}

func and3(a, b cnf.LBool) cnf.LBool {
	if a == cnf.False || b == cnf.False {
		return cnf.False
	}
	if a == cnf.True && b == cnf.True {
		return cnf.True
	}
	return cnf.Undef
}

func or3(a, b cnf.LBool) cnf.LBool {
	if a == cnf.True || b == cnf.True {
		return cnf.True
	}
	if a == cnf.False && b == cnf.False {
		return cnf.False
	}
	return cnf.Undef
}

func xor3(a, b cnf.LBool) cnf.LBool {
	if a == cnf.Undef || b == cnf.Undef {
		return cnf.Undef
	}
	if a == b {
		return cnf.False
	}
	return cnf.True
}

// evalWord computes a gate function over 64-way packed words.
func evalWord(t GateType, ins []uint64) uint64 {
	switch t {
	case Const0:
		return 0
	case Const1:
		return ^uint64(0)
	case Buf:
		return ins[0]
	case Not:
		return ^ins[0]
	case And, Nand:
		v := ^uint64(0)
		for _, x := range ins {
			v &= x
		}
		if t == Nand {
			return ^v
		}
		return v
	case Or, Nor:
		v := uint64(0)
		for _, x := range ins {
			v |= x
		}
		if t == Nor {
			return ^v
		}
		return v
	case Xor, Xnor:
		v := uint64(0)
		for _, x := range ins {
			v ^= x
		}
		if t == Xnor {
			return ^v
		}
		return v
	}
	panic("circuit: evalWord on INPUT")
}

// Injection describes a stuck value for fault simulation: Pin == -1
// forces the node's output; Pin >= 0 forces the value seen on that fanin
// position of the node (a branch fault on the connection).
type Injection struct {
	Node  NodeID
	Pin   int
	Value uint64
}

// SimulateInject is Simulate with stuck-at injections applied — the
// engine behind parallel-pattern fault simulation in the atpg package.
func (c *Circuit) SimulateInject(inputs []uint64, inj []Injection) []uint64 {
	if len(inputs) != len(c.Inputs) {
		panic("circuit: SimulateInject input count mismatch")
	}
	outForce := make(map[NodeID]uint64)
	pinForce := make(map[NodeID]map[int]uint64)
	for _, j := range inj {
		if j.Pin < 0 {
			outForce[j.Node] = j.Value
		} else {
			if pinForce[j.Node] == nil {
				pinForce[j.Node] = make(map[int]uint64)
			}
			pinForce[j.Node][j.Pin] = j.Value
		}
	}
	val := make([]uint64, len(c.Nodes))
	scratch := make([]uint64, 0, 8)
	inIdx := 0
	for i := range c.Nodes {
		n := &c.Nodes[i]
		id := NodeID(i)
		var v uint64
		if n.Type == Input {
			v = inputs[inIdx]
			inIdx++
		} else {
			scratch = scratch[:0]
			for pin, f := range n.Fanin {
				x := val[f]
				if pf, ok := pinForce[id]; ok {
					if fv, ok2 := pf[pin]; ok2 {
						x = fv
					}
				}
				scratch = append(scratch, x)
			}
			v = evalWord(n.Type, scratch)
		}
		if fv, ok := outForce[id]; ok {
			v = fv
		}
		val[i] = v
	}
	return val
}
