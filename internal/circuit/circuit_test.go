package circuit

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/cnf"
)

func TestAddAndValidate(t *testing.T) {
	c := New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(And, "g", a, b)
	c.MarkOutput(g)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 3 || c.NumGates() != 1 {
		t.Fatalf("counts wrong: %d nodes %d gates", c.NumNodes(), c.NumGates())
	}
	if c.NodeByName("g") != g || c.NodeByName("zzz") != NoNode {
		t.Fatal("NodeByName broken")
	}
	if c.Name(g) != "g" {
		t.Fatal("Name broken")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	c := New()
	c.AddInput("a")
	c.AddInput("a")
}

func TestArityPanics(t *testing.T) {
	c := New()
	a := c.AddInput("a")
	for _, fn := range []func(){
		func() { c.AddGate(Not, "n1", a, a) },
		func() { c.AddGate(Xor, "x1", a) },
		func() { c.AddGate(And, "a1") },
		func() { c.AddGate(Input, "i1") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected arity panic")
				}
			}()
			fn()
		}()
	}
}

func TestFanoutsAndLevels(t *testing.T) {
	c := New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(And, "g1", a, b)
	g2 := c.AddGate(Or, "g2", g1, a)
	fo := c.Fanouts()
	if len(fo[a]) != 2 || len(fo[g1]) != 1 || len(fo[g2]) != 0 {
		t.Fatalf("fanouts wrong: %v", fo)
	}
	lv := c.Levels()
	if lv[a] != 0 || lv[g1] != 1 || lv[g2] != 2 {
		t.Fatalf("levels wrong: %v", lv)
	}
	if c.Depth() != 2 {
		t.Fatalf("depth = %d", c.Depth())
	}
}

func TestTransitiveFanout(t *testing.T) {
	c := New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(And, "g1", a, b)
	g2 := c.AddGate(Not, "g2", g1)
	g3 := c.AddGate(Or, "g3", b, b)
	cone := c.TransitiveFanoutOf(g1)
	want := []NodeID{g1, g2}
	if len(cone) != len(want) || cone[0] != want[0] || cone[1] != want[1] {
		t.Fatalf("cone = %v, want %v", cone, want)
	}
	_ = g3
}

func TestEvalGateTruthTables(t *testing.T) {
	cases := []struct {
		t    GateType
		in   []bool
		want bool
	}{
		{And, []bool{true, true}, true},
		{And, []bool{true, false}, false},
		{Nand, []bool{true, true}, false},
		{Nand, []bool{false, true}, true},
		{Or, []bool{false, false}, false},
		{Or, []bool{false, true}, true},
		{Nor, []bool{false, false}, true},
		{Nor, []bool{true, false}, false},
		{Xor, []bool{true, false}, true},
		{Xor, []bool{true, true}, false},
		{Xor, []bool{true, true, true}, true},
		{Xnor, []bool{true, false}, false},
		{Xnor, []bool{true, true}, true},
		{Not, []bool{true}, false},
		{Buf, []bool{true}, true},
		{Const0, nil, false},
		{Const1, nil, true},
	}
	for _, tc := range cases {
		if got := EvalGate(tc.t, tc.in); got != tc.want {
			t.Errorf("EvalGate(%v, %v) = %v, want %v", tc.t, tc.in, got, tc.want)
		}
	}
}

// Simulation must agree with gate-by-gate evaluation on random circuits
// and random patterns.
func TestSimulateAgreesWithEvalGate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		c := RandomDAG(6, 30, 3, int64(trial))
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		inputs := make([]uint64, len(c.Inputs))
		for i := range inputs {
			inputs[i] = rng.Uint64()
		}
		vals := c.Simulate(inputs)
		for bit := 0; bit < 64; bit += 17 {
			ref := make([]bool, len(c.Nodes))
			inIdx := 0
			for i := range c.Nodes {
				n := &c.Nodes[i]
				if n.Type == Input {
					ref[i] = inputs[inIdx]&(1<<uint(bit)) != 0
					inIdx++
					continue
				}
				in := make([]bool, len(n.Fanin))
				for j, f := range n.Fanin {
					in[j] = ref[f]
				}
				ref[i] = EvalGate(n.Type, in)
			}
			for i := range c.Nodes {
				if got := vals[i]&(1<<uint(bit)) != 0; got != ref[i] {
					t.Fatalf("trial %d bit %d node %d: sim %v ref %v", trial, bit, i, got, ref[i])
				}
			}
		}
	}
}

func TestRippleCarryAdderFunction(t *testing.T) {
	n := 5
	c := RippleCarryAdder(n)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a := rng.Intn(1 << n)
		b := rng.Intn(1 << n)
		cin := rng.Intn(2)
		in := make([]bool, 2*n+1)
		for i := 0; i < n; i++ {
			in[i] = a&(1<<i) != 0
			in[n+i] = b&(1<<i) != 0
		}
		in[2*n] = cin == 1
		vals := c.SimulateBool(in)
		sum := 0
		for i, o := range c.Outputs {
			if vals[o] {
				sum |= 1 << i
			}
		}
		if want := a + b + cin; sum != want {
			t.Fatalf("%d+%d+%d = %d, adder says %d", a, b, cin, want, sum)
		}
	}
}

func TestCarrySkipAdderFunction(t *testing.T) {
	n := 6
	c := CarrySkipAdder(n, 3)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		a := rng.Intn(1 << n)
		b := rng.Intn(1 << n)
		cin := rng.Intn(2)
		in := make([]bool, 2*n+1)
		for i := 0; i < n; i++ {
			in[i] = a&(1<<i) != 0
			in[n+i] = b&(1<<i) != 0
		}
		in[2*n] = cin == 1
		vals := c.SimulateBool(in)
		sum := 0
		for i, o := range c.Outputs {
			if vals[o] {
				sum |= 1 << i
			}
		}
		if want := a + b + cin; sum != want {
			t.Fatalf("%d+%d+%d = %d, skip adder says %d", a, b, cin, want, sum)
		}
	}
}

func TestArrayMultiplierFunction(t *testing.T) {
	n := 4
	c := ArrayMultiplier(n)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 1<<n; a++ {
		for b := 0; b < 1<<n; b++ {
			in := make([]bool, 2*n)
			for i := 0; i < n; i++ {
				in[i] = a&(1<<i) != 0
				in[n+i] = b&(1<<i) != 0
			}
			vals := c.SimulateBool(in)
			p := 0
			for i, o := range c.Outputs {
				if vals[o] {
					p |= 1 << i
				}
			}
			if p != a*b {
				t.Fatalf("%d*%d = %d, multiplier says %d", a, b, a*b, p)
			}
		}
	}
}

func TestParityAndComparatorAndMux(t *testing.T) {
	p := ParityTree(7)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		in := make([]bool, 7)
		want := false
		for i := range in {
			in[i] = rng.Intn(2) == 0
			want = want != in[i]
		}
		if got := p.SimulateBool(in)[p.Outputs[0]]; got != want {
			t.Fatalf("parity wrong")
		}
	}
	eq := EqualityComparator(4)
	for trial := 0; trial < 100; trial++ {
		a := rng.Intn(16)
		b := rng.Intn(16)
		in := make([]bool, 8)
		for i := 0; i < 4; i++ {
			in[i] = a&(1<<i) != 0
			in[4+i] = b&(1<<i) != 0
		}
		if got := eq.SimulateBool(in)[eq.Outputs[0]]; got != (a == b) {
			t.Fatalf("comparator wrong for %d,%d", a, b)
		}
	}
	mux := MuxTree(3)
	for trial := 0; trial < 100; trial++ {
		data := rng.Intn(256)
		sel := rng.Intn(8)
		in := make([]bool, 8+3)
		for i := 0; i < 8; i++ {
			in[i] = data&(1<<i) != 0
		}
		for i := 0; i < 3; i++ {
			in[8+i] = sel&(1<<i) != 0
		}
		want := data&(1<<sel) != 0
		if got := mux.SimulateBool(in)[mux.Outputs[0]]; got != want {
			t.Fatalf("mux wrong for data=%08b sel=%d", data, sel)
		}
	}
}

func TestC17(t *testing.T) {
	c := C17()
	if len(c.Inputs) != 5 || len(c.Outputs) != 2 || c.NumGates() != 6 {
		t.Fatalf("c17 shape wrong: %d in %d out %d gates", len(c.Inputs), len(c.Outputs), c.NumGates())
	}
	// Known response: all-ones input gives 22=0? Compute via NAND logic:
	// 10=NAND(1,3)=0, 11=NAND(3,6)=0, 16=NAND(2,11)=1, 19=NAND(11,7)=1,
	// 22=NAND(10,16)=1, 23=NAND(16,19)=0.
	vals := c.SimulateBool([]bool{true, true, true, true, true})
	if got := vals[c.NodeByName("22")]; got != true {
		t.Fatal("c17 output 22 wrong")
	}
	if got := vals[c.NodeByName("23")]; got != false {
		t.Fatal("c17 output 23 wrong")
	}
}

func TestThreeValuedSim(t *testing.T) {
	// AND with one controlling 0 input is 0 even with X on the other.
	c := New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(And, "g", a, b)
	o := c.AddGate(Or, "o", g, b)
	c.MarkOutput(o)
	vals := c.SimulateLBool([]cnf.LBool{cnf.False, cnf.Undef})
	if vals[g] != cnf.False {
		t.Fatal("AND with 0 must be 0 under X")
	}
	if vals[o] != cnf.Undef {
		t.Fatal("OR of 0 and X must be X")
	}
	vals = c.SimulateLBool([]cnf.LBool{cnf.Undef, cnf.True})
	if vals[o] != cnf.True {
		t.Fatal("OR with 1 must be 1 under X")
	}
	// XOR propagates X.
	x := New()
	xa := x.AddInput("a")
	xb := x.AddInput("b")
	xg := x.AddGate(Xor, "g", xa, xb)
	x.MarkOutput(xg)
	if x.SimulateLBool([]cnf.LBool{cnf.True, cnf.Undef})[xg] != cnf.Undef {
		t.Fatal("XOR with X must be X")
	}
}

func TestClone(t *testing.T) {
	c := RippleCarryAdder(3)
	d := c.Clone()
	d.Nodes[len(d.Nodes)-1].Type = Nor
	if c.Nodes[len(c.Nodes)-1].Type == Nor {
		t.Fatal("Clone is shallow")
	}
	if d.NodeByName("cin") != c.NodeByName("cin") {
		t.Fatal("Clone lost name index")
	}
}

func TestGateCounts(t *testing.T) {
	c := C17()
	gc := c.GateCounts()
	if gc[Nand] != 6 || gc[Input] != 5 {
		t.Fatalf("GateCounts wrong: %v", gc)
	}
}

func TestBenchRoundTrip(t *testing.T) {
	c := RippleCarryAdder(3)
	s, err := BenchString(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, latches, err := ParseBenchString(s)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, s)
	}
	if len(latches) != 0 {
		t.Fatal("unexpected latches")
	}
	if len(d.Inputs) != len(c.Inputs) || len(d.Outputs) != len(c.Outputs) || d.NumGates() != c.NumGates() {
		t.Fatal("round trip changed shape")
	}
	// Same function on random vectors.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		in := make([]uint64, len(c.Inputs))
		for i := range in {
			in[i] = rng.Uint64()
		}
		// Input order may differ; map by name.
		din := make([]uint64, len(d.Inputs))
		for i, id := range c.Inputs {
			for j, jd := range d.Inputs {
				if d.Name(jd) == c.Name(id) {
					din[j] = in[i]
				}
			}
		}
		cv := c.Simulate(in)
		dv := d.Simulate(din)
		for i, o := range c.Outputs {
			if cv[o] != dv[d.Outputs[i]] {
				t.Fatal("round trip changed function")
			}
		}
	}
}

func TestBenchLatchParsing(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(q)
q = DFF(d)
d = AND(a, q)
`
	c, latches, err := ParseBenchString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(latches) != 1 {
		t.Fatalf("latches = %v", latches)
	}
	if c.Name(latches[0].Output) != "q" || c.Name(latches[0].Input) != "d" {
		t.Fatal("latch wiring wrong")
	}
	// Latch output acts as pseudo input.
	if len(c.Inputs) != 2 {
		t.Fatalf("inputs = %d, want 2 (a + pseudo q)", len(c.Inputs))
	}
}

func TestBenchErrors(t *testing.T) {
	cases := map[string]string{
		"cycle":          "INPUT(a)\nx = AND(a, y)\ny = AND(a, x)\nOUTPUT(x)\n",
		"undefined":      "INPUT(a)\nx = AND(a, nosuch)\nOUTPUT(x)\n",
		"unknown gate":   "INPUT(a)\nx = FROB(a)\nOUTPUT(x)\n",
		"dup definition": "INPUT(a)\nx = AND(a, a)\nx = OR(a, a)\nOUTPUT(x)\n",
		"bad output":     "INPUT(a)\nOUTPUT(nosuch)\nx = AND(a, a)\n",
		"malformed":      "INPUT(a)\nx AND(a)\n",
	}
	for name, src := range cases {
		if _, _, err := ParseBenchString(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestBenchOutOfOrderDefinitions(t *testing.T) {
	src := `
OUTPUT(z)
z = AND(x, y)
y = NOT(a)
x = OR(a, b)
INPUT(a)
INPUT(b)
`
	c, _, err := ParseBenchString(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 3 {
		t.Fatalf("gates = %d", c.NumGates())
	}
}

func clauseSet(f *cnf.Formula) []string {
	var out []string
	for _, c := range f.Clauses {
		n, _ := c.Normalize()
		out = append(out, n.String())
	}
	sort.Strings(out)
	return out
}

// TestTable1GateCNF checks the encoder emits exactly the paper's Table 1
// clause sets (experiment E1). Variables: output x=3, inputs w1=1, w2=2.
func TestTable1GateCNF(t *testing.T) {
	cases := []struct {
		gate GateType
		want []string
	}{
		{And, []string{"(1 -3)", "(2 -3)", "(-1 -2 3)"}},
		{Nand, []string{"(1 3)", "(2 3)", "(-1 -2 -3)"}},
		{Or, []string{"(-1 3)", "(-2 3)", "(1 2 -3)"}},
		{Nor, []string{"(-1 -3)", "(-2 -3)", "(1 2 3)"}},
	}
	for _, tc := range cases {
		f := cnf.New(3)
		AppendGateCNF(f, tc.gate, 3, []cnf.Var{1, 2})
		got := clauseSet(f)
		want := append([]string(nil), tc.want...)
		for i, w := range want {
			n, _ := cnf.NewClause(parseInts(w)...).Normalize()
			want[i] = n.String()
		}
		sort.Strings(want)
		if strings.Join(got, " ") != strings.Join(want, " ") {
			t.Errorf("%v: got %v, want %v", tc.gate, got, want)
		}
	}
	// Single-input gates: x=2, w1=1.
	f := cnf.New(2)
	AppendGateCNF(f, Not, 2, []cnf.Var{1})
	if s := strings.Join(clauseSet(f), " "); s != "(-1 -2) (1 2)" {
		t.Errorf("NOT: %s", s)
	}
	f = cnf.New(2)
	AppendGateCNF(f, Buf, 2, []cnf.Var{1})
	if s := strings.Join(clauseSet(f), " "); s != "(-1 2) (1 -2)" {
		t.Errorf("BUFFER: %s", s)
	}
}

func parseInts(s string) []int {
	s = strings.Trim(s, "()")
	var out []int
	for _, tok := range strings.Fields(s) {
		n := 0
		negf := false
		for _, ch := range tok {
			if ch == '-' {
				negf = true
			} else {
				n = n*10 + int(ch-'0')
			}
		}
		if negf {
			n = -n
		}
		out = append(out, n)
	}
	return out
}

// The consistency formula must hold exactly for assignments matching the
// circuit simulation (Table 1 semantics on every gate type).
func TestEncodingMatchesSimulation(t *testing.T) {
	for trial := int64(0); trial < 8; trial++ {
		c := RandomDAG(5, 20, 3, trial)
		e := Encode(c)
		rng := rand.New(rand.NewSource(trial + 100))
		for v := 0; v < 30; v++ {
			in := make([]bool, len(c.Inputs))
			for i := range in {
				in[i] = rng.Intn(2) == 0
			}
			vals := c.SimulateBool(in)
			a := cnf.NewAssignment(e.F.NumVars())
			for i := range c.Nodes {
				a[e.VarOf[i]] = cnf.FromBool(vals[i])
			}
			// Auxiliary XOR-decomposition variables: set them to the
			// value forced by the formula via unit propagation is
			// overkill here; instead check only when no aux vars exist.
			if e.F.NumVars() == len(c.Nodes) {
				if !a.Satisfies(e.F) {
					t.Fatalf("trial %d: simulation assignment violates encoding", trial)
				}
			} else {
				if a.Eval(e.F) == cnf.False {
					t.Fatalf("trial %d: simulation assignment falsifies encoding", trial)
				}
			}
		}
	}
}

// Wide XOR decomposition: the encoding of an n-ary XOR must have exactly
// the models of the parity function.
func TestWideXorEncoding(t *testing.T) {
	for _, typ := range []GateType{Xor, Xnor} {
		f := cnf.New(5) // inputs 1..4, output 5
		AppendGateCNF(f, typ, 5, []cnf.Var{1, 2, 3, 4})
		count := cnf.CountModels(f)
		// Inputs free (16 combinations), output and auxiliaries forced.
		if count != 16 {
			t.Fatalf("%v: %d models, want 16", typ, count)
		}
		// Check output polarity on one vector: 1,0,0,0 → parity 1.
		g := f.Clone()
		g.AddDIMACS(1)
		g.AddDIMACS(-2)
		g.AddDIMACS(-3)
		g.AddDIMACS(-4)
		if typ == Xor {
			g.AddDIMACS(-5)
		} else {
			g.AddDIMACS(5)
		}
		if sat, _ := cnf.BruteForce(g); sat {
			t.Fatalf("%v: wrong output polarity", typ)
		}
	}
}

func TestEncodeProperty(t *testing.T) {
	// Figure 1 workflow: circuit plus objective.
	c := Figure1()
	f, e := EncodeProperty(c, c.Outputs[0], false)
	sat, m := cnf.BruteForce(f)
	// z = OR(NOT(AND(a,b)), b) = 0 requires b=0 and AND(a,b)=1, which
	// needs b=1: contradiction, so z=0 must be UNSAT. Cross-check the
	// encoding against exhaustive simulation rather than hardcoding:
	found := false
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			vals := c.SimulateBool([]bool{a == 1, b == 1})
			if !vals[c.Outputs[0]] {
				found = true
			}
		}
	}
	if sat != found {
		t.Fatalf("encoding says %v, exhaustive simulation says %v (model %v)", sat, found, m)
	}
	_ = e
}

func TestConstEncoding(t *testing.T) {
	c := New()
	k1 := c.AddConst(true, "one")
	k0 := c.AddConst(false, "zero")
	g := c.AddGate(And, "g", k1, k0)
	c.MarkOutput(g)
	e := Encode(c)
	sat, m := cnf.BruteForce(e.F)
	if !sat {
		t.Fatal("constant circuit must have the single consistent assignment")
	}
	if m.Value(e.VarOf[g]) != cnf.False {
		t.Fatal("AND(1,0) must be 0")
	}
}

func TestALUFunction(t *testing.T) {
	n := 5
	c := ALU(n)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		a := rng.Intn(1 << n)
		b := rng.Intn(1 << n)
		op := rng.Intn(4)
		in := make([]bool, 2*n+2)
		for i := 0; i < n; i++ {
			in[i] = a&(1<<i) != 0
			in[n+i] = b&(1<<i) != 0
		}
		in[2*n] = op&1 != 0   // op0
		in[2*n+1] = op&2 != 0 // op1
		vals := c.SimulateBool(in)
		r := 0
		for i, o := range c.Outputs {
			if vals[o] {
				r |= 1 << i
			}
		}
		var want int
		switch op {
		case 0:
			want = (a + b) & (1<<n - 1)
		case 1:
			want = a & b
		case 2:
			want = a | b
		case 3:
			want = a ^ b
		}
		if r != want {
			t.Fatalf("op=%d a=%d b=%d: got %d want %d", op, a, b, r, want)
		}
	}
}
