package circuit

import (
	"fmt"
	"math/rand"
)

// This file provides circuit-family generators. Industrial ISCAS/ITC
// suites are not redistributable, so the workloads are synthetic
// structural families of comparable shape (see DESIGN.md substitutions),
// plus the tiny public c17 benchmark.

// RippleCarryAdder builds an n-bit ripple-carry adder with inputs
// a0..a(n-1), b0..b(n-1), cin; outputs s0..s(n-1), cout.
func RippleCarryAdder(n int) *Circuit {
	c := New()
	as := make([]NodeID, n)
	bs := make([]NodeID, n)
	for i := 0; i < n; i++ {
		as[i] = c.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = c.AddInput(fmt.Sprintf("b%d", i))
	}
	carry := c.AddInput("cin")
	for i := 0; i < n; i++ {
		sum, cout := fullAdder(c, as[i], bs[i], carry, fmt.Sprintf("fa%d", i))
		c.MarkOutput(sum)
		carry = cout
	}
	c.MarkOutput(carry)
	return c
}

func fullAdder(c *Circuit, a, b, cin NodeID, prefix string) (sum, cout NodeID) {
	axb := c.AddGate(Xor, prefix+"_axb", a, b)
	sum = c.AddGate(Xor, prefix+"_s", axb, cin)
	t1 := c.AddGate(And, prefix+"_t1", a, b)
	t2 := c.AddGate(And, prefix+"_t2", axb, cin)
	cout = c.AddGate(Or, prefix+"_c", t1, t2)
	return sum, cout
}

// CarrySkipAdder builds an n-bit carry-skip (carry-bypass) adder with
// the given block size. Its bypass muxes create false paths, making it
// the standard workload for sensitizable-delay analysis (experiment E18).
func CarrySkipAdder(n, block int) *Circuit {
	if block < 1 {
		block = 4
	}
	c := New()
	as := make([]NodeID, n)
	bs := make([]NodeID, n)
	for i := 0; i < n; i++ {
		as[i] = c.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = c.AddInput(fmt.Sprintf("b%d", i))
	}
	carry := c.AddInput("cin")
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		blockIn := carry
		// Ripple within the block; collect propagate signals.
		props := make([]NodeID, 0, hi-lo)
		for i := lo; i < hi; i++ {
			p := c.AddGate(Xor, fmt.Sprintf("p%d", i), as[i], bs[i])
			props = append(props, p)
			s := c.AddGate(Xor, fmt.Sprintf("s%d", i), p, carry)
			c.MarkOutput(s)
			g := c.AddGate(And, fmt.Sprintf("g%d", i), as[i], bs[i])
			pc := c.AddGate(And, fmt.Sprintf("pc%d", i), p, carry)
			carry = c.AddGate(Or, fmt.Sprintf("c%d", i+1), g, pc)
		}
		// Bypass: if every bit in the block propagates, the block's
		// carry-out equals its carry-in (mux realized with AND/OR).
		allP := props[0]
		if len(props) > 1 {
			allP = c.AddGate(And, fmt.Sprintf("allp%d", lo), props...)
		}
		skip := c.AddGate(And, fmt.Sprintf("skip%d", lo), allP, blockIn)
		notAllP := c.AddGate(Not, fmt.Sprintf("nallp%d", lo), allP)
		keep := c.AddGate(And, fmt.Sprintf("keep%d", lo), notAllP, carry)
		carry = c.AddGate(Or, fmt.Sprintf("bc%d", lo), skip, keep)
	}
	c.MarkOutput(carry)
	return c
}

// ArrayMultiplier builds an n×n array multiplier with inputs a0.., b0..
// and outputs p0..p(2n-1).
func ArrayMultiplier(n int) *Circuit {
	c := New()
	as := make([]NodeID, n)
	bs := make([]NodeID, n)
	for i := 0; i < n; i++ {
		as[i] = c.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = c.AddInput(fmt.Sprintf("b%d", i))
	}
	// Partial products pp[i][j] = a_j & b_i contributes to bit i+j.
	cols := make([][]NodeID, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pp := c.AddGate(And, fmt.Sprintf("pp_%d_%d", i, j), as[j], bs[i])
			cols[i+j] = append(cols[i+j], pp)
		}
	}
	// Column compression with full/half adders (carry-save).
	for col := 0; col < 2*n; col++ {
		k := 0
		for len(cols[col]) > 1 {
			if len(cols[col]) >= 3 {
				a, b, ci := cols[col][0], cols[col][1], cols[col][2]
				cols[col] = cols[col][3:]
				s, co := fullAdder(c, a, b, ci, fmt.Sprintf("m%d_%d", col, k))
				cols[col] = append(cols[col], s)
				cols[col+1] = append(cols[col+1], co)
			} else {
				a, b := cols[col][0], cols[col][1]
				cols[col] = cols[col][2:]
				s := c.AddGate(Xor, fmt.Sprintf("hs%d_%d", col, k), a, b)
				co := c.AddGate(And, fmt.Sprintf("hc%d_%d", col, k), a, b)
				cols[col] = append(cols[col], s)
				cols[col+1] = append(cols[col+1], co)
			}
			k++
		}
	}
	for col := 0; col < 2*n; col++ {
		var bit NodeID
		if len(cols[col]) == 1 {
			bit = cols[col][0]
		} else {
			bit = c.AddConst(false, fmt.Sprintf("z%d", col))
		}
		p := c.AddGate(Buf, fmt.Sprintf("p%d", col), bit)
		c.MarkOutput(p)
	}
	return c
}

// EqualityComparator builds an n-bit a == b comparator with a single
// output "eq".
func EqualityComparator(n int) *Circuit {
	c := New()
	as := make([]NodeID, n)
	bs := make([]NodeID, n)
	for i := 0; i < n; i++ {
		as[i] = c.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = c.AddInput(fmt.Sprintf("b%d", i))
	}
	bits := make([]NodeID, n)
	for i := 0; i < n; i++ {
		bits[i] = c.AddGate(Xnor, fmt.Sprintf("e%d", i), as[i], bs[i])
	}
	var eq NodeID
	if n == 1 {
		eq = c.AddGate(Buf, "eq", bits[0])
	} else {
		eq = c.AddGate(And, "eq", bits...)
	}
	c.MarkOutput(eq)
	return c
}

// ParityTree builds a balanced XOR tree over n inputs with output "par".
func ParityTree(n int) *Circuit {
	c := New()
	layer := make([]NodeID, n)
	for i := 0; i < n; i++ {
		layer[i] = c.AddInput(fmt.Sprintf("x%d", i))
	}
	k := 0
	for len(layer) > 1 {
		var next []NodeID
		for i := 0; i+1 < len(layer); i += 2 {
			next = append(next, c.AddGate(Xor, fmt.Sprintf("t%d", k), layer[i], layer[i+1]))
			k++
		}
		if len(layer)%2 == 1 {
			next = append(next, layer[len(layer)-1])
		}
		layer = next
	}
	out := c.AddGate(Buf, "par", layer[0])
	c.MarkOutput(out)
	return c
}

// MuxTree builds a 2^k-to-1 multiplexer with k select inputs.
func MuxTree(k int) *Circuit {
	c := New()
	n := 1 << k
	data := make([]NodeID, n)
	for i := 0; i < n; i++ {
		data[i] = c.AddInput(fmt.Sprintf("d%d", i))
	}
	sels := make([]NodeID, k)
	selN := make([]NodeID, k)
	for i := 0; i < k; i++ {
		sels[i] = c.AddInput(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < k; i++ {
		selN[i] = c.AddGate(Not, fmt.Sprintf("sn%d", i), sels[i])
	}
	layer := data
	for lvl := 0; lvl < k; lvl++ {
		var next []NodeID
		for i := 0; i+1 < len(layer); i += 2 {
			a := c.AddGate(And, fmt.Sprintf("m%d_%d_a", lvl, i), layer[i], selN[lvl])
			b := c.AddGate(And, fmt.Sprintf("m%d_%d_b", lvl, i), layer[i+1], sels[lvl])
			next = append(next, c.AddGate(Or, fmt.Sprintf("m%d_%d", lvl, i), a, b))
		}
		layer = next
	}
	out := c.AddGate(Buf, "y", layer[0])
	c.MarkOutput(out)
	return c
}

// RandomDAG builds a random combinational circuit with nIn inputs and
// nGates gates of fanin up to maxFanin; nodes with no fanout become
// primary outputs.
func RandomDAG(nIn, nGates, maxFanin int, seed int64) *Circuit {
	if maxFanin < 2 {
		maxFanin = 2
	}
	rng := rand.New(rand.NewSource(seed))
	c := New()
	for i := 0; i < nIn; i++ {
		c.AddInput(fmt.Sprintf("x%d", i))
	}
	types := []GateType{And, Nand, Or, Nor, Xor, Xnor, Not}
	for g := 0; g < nGates; g++ {
		t := types[rng.Intn(len(types))]
		var arity int
		switch t {
		case Not:
			arity = 1
		case Xor, Xnor:
			arity = 2
		default:
			arity = 2 + rng.Intn(maxFanin-1)
		}
		avail := c.NumNodes()
		fanin := make([]NodeID, 0, arity)
		seen := map[NodeID]bool{}
		for len(fanin) < arity {
			// Bias towards recent nodes for depth.
			var f NodeID
			if rng.Intn(2) == 0 && avail > nIn {
				f = NodeID(nIn + rng.Intn(avail-nIn))
			} else {
				f = NodeID(rng.Intn(avail))
			}
			if seen[f] {
				if len(seen) >= avail {
					break
				}
				continue
			}
			seen[f] = true
			fanin = append(fanin, f)
		}
		if len(fanin) == 0 {
			continue
		}
		if (t == Xor || t == Xnor) && len(fanin) < 2 {
			t = Not
			fanin = fanin[:1]
		}
		if t == Not {
			fanin = fanin[:1]
		}
		c.AddGate(t, fmt.Sprintf("g%d", g), fanin...)
	}
	fo := c.Fanouts()
	for i := range c.Nodes {
		if len(fo[i]) == 0 && c.Nodes[i].Type != Input {
			c.MarkOutput(NodeID(i))
		}
	}
	if len(c.Outputs) == 0 && c.NumNodes() > nIn {
		c.MarkOutput(NodeID(c.NumNodes() - 1))
	}
	return c
}

// C17 returns the ISCAS-85 c17 benchmark (six NAND gates), the only
// industrial circuit small enough to embed verbatim.
func C17() *Circuit {
	src := `# c17 iscas example
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`
	c, _, err := ParseBenchString(src)
	if err != nil {
		panic("circuit: embedded c17 failed to parse: " + err.Error())
	}
	return c
}

// Figure1 returns the example circuit of the paper's Figure 1:
// x = NOT(w1) with w1 = AND(a, b), z = NOR(x, y) style miniature used in
// tests and the quickstart example. The exact figure is partially
// obscured in the scan; this reconstruction follows the formula shown:
// a small two-gate circuit with an objective on output z.
func Figure1() *Circuit {
	c := New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	w1 := c.AddGate(And, "w1", a, b)
	x := c.AddGate(Not, "x", w1)
	z := c.AddGate(Or, "z", x, b)
	c.MarkOutput(z)
	return c
}

// Figure3 returns the example circuit of the paper's Figure 3, used in
// §4.1's conflict-analysis walkthrough: with w = 1 and y3 = 0, assigning
// x1 = 1 forces y1 = 0 and y2 = 0, which is inconsistent with
// y3 = OR(y1, y2) = 0 only if y3's justification needs one of them —
// the reconstruction keeps the essential conflict: x1=1 ∧ w=1 ⇒ y3=1,
// so (x1=1, w=1, y3=0) is conflicting and analysis learns
// (¬x1 ∨ ¬w ∨ y3).
func Figure3() *Circuit {
	c := New()
	x1 := c.AddInput("x1")
	w := c.AddInput("w")
	y1 := c.AddGate(And, "y1", x1, w)
	y2 := c.AddGate(And, "y2", x1, w)
	y3 := c.AddGate(Or, "y3", y1, y2)
	c.MarkOutput(y3)
	return c
}

// RippleCarryAdderNAND builds a ripple-carry adder whose carry logic is
// realized in NAND-NAND form: functionally identical to
// RippleCarryAdder (same input/output names and order) but structurally
// different, the canonical CEC workload pair.
func RippleCarryAdderNAND(n int) *Circuit {
	c := New()
	as := make([]NodeID, n)
	bs := make([]NodeID, n)
	for i := 0; i < n; i++ {
		as[i] = c.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = c.AddInput(fmt.Sprintf("b%d", i))
	}
	carry := c.AddInput("cin")
	for i := 0; i < n; i++ {
		axb := c.AddGate(Xor, fmt.Sprintf("nx%d", i), as[i], bs[i])
		s := c.AddGate(Xor, fmt.Sprintf("ns%d", i), axb, carry)
		c.MarkOutput(s)
		n1 := c.AddGate(Nand, fmt.Sprintf("nn1_%d", i), as[i], bs[i])
		n2 := c.AddGate(Nand, fmt.Sprintf("nn2_%d", i), axb, carry)
		carry = c.AddGate(Nand, fmt.Sprintf("nc%d", i), n1, n2)
	}
	c.MarkOutput(carry)
	return c
}

// ALU builds an n-bit arithmetic-logic unit with two data words, two
// operation-select bits and outputs r0..r(n-1):
//
//	op = 00: a + b (no carry out)
//	op = 01: a AND b
//	op = 10: a OR b
//	op = 11: a XOR b
//
// It is the realistic datapath workload used by the application benches
// (deep carry chain + wide mux structure in one circuit).
func ALU(n int) *Circuit {
	c := New()
	as := make([]NodeID, n)
	bs := make([]NodeID, n)
	for i := 0; i < n; i++ {
		as[i] = c.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = c.AddInput(fmt.Sprintf("b%d", i))
	}
	s0 := c.AddInput("op0")
	s1 := c.AddInput("op1")
	ns0 := c.AddGate(Not, "nop0", s0)
	ns1 := c.AddGate(Not, "nop1", s1)
	selAdd := c.AddGate(And, "sel_add", ns1, ns0)
	selAnd := c.AddGate(And, "sel_and", ns1, s0)
	selOr := c.AddGate(And, "sel_or", s1, ns0)
	selXor := c.AddGate(And, "sel_xor", s1, s0)

	carry := c.AddConst(false, "c0")
	for i := 0; i < n; i++ {
		sum, cout := fullAdder(c, as[i], bs[i], carry, fmt.Sprintf("alu_fa%d", i))
		carry = cout
		andB := c.AddGate(And, fmt.Sprintf("andb%d", i), as[i], bs[i])
		orB := c.AddGate(Or, fmt.Sprintf("orb%d", i), as[i], bs[i])
		xorB := c.AddGate(Xor, fmt.Sprintf("xorb%d", i), as[i], bs[i])
		m0 := c.AddGate(And, fmt.Sprintf("m0_%d", i), sum, selAdd)
		m1 := c.AddGate(And, fmt.Sprintf("m1_%d", i), andB, selAnd)
		m2 := c.AddGate(And, fmt.Sprintf("m2_%d", i), orB, selOr)
		m3 := c.AddGate(And, fmt.Sprintf("m3_%d", i), xorB, selXor)
		r := c.AddGate(Or, fmt.Sprintf("r%d", i), m0, m1, m2, m3)
		c.MarkOutput(r)
	}
	return c
}
