// Package circuit provides gate-level combinational netlists: the circuit
// representation of paper §2 (Figure 1). It includes construction and
// validation, ISCAS-style ".bench" parsing and writing, 64-way parallel
// and three-valued simulation, CNF encoding exactly per the paper's
// Table 1, and generators for standard circuit families used as
// workloads (adders, multipliers, parity trees, comparators, random
// DAGs, and the public c17 benchmark).
package circuit

import (
	"fmt"
	"sort"
)

// GateType enumerates the supported gate functions (paper Table 1 plus
// inputs and constants).
type GateType int8

// Gate types.
const (
	Input GateType = iota
	Const0
	Const1
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
)

var gateNames = [...]string{"INPUT", "CONST0", "CONST1", "BUFF", "NOT", "AND", "NAND", "OR", "NOR", "XOR", "XNOR"}

// String renders the gate type in .bench spelling.
func (g GateType) String() string {
	if int(g) < len(gateNames) {
		return gateNames[g]
	}
	return fmt.Sprintf("GATE(%d)", int8(g))
}

// NodeID identifies a node within a circuit. The zero value is a valid
// node id; use NoNode for "none".
type NodeID int32

// NoNode is the invalid node id.
const NoNode NodeID = -1

// Node is a gate instance (or primary input / constant).
type Node struct {
	Type  GateType
	Fanin []NodeID
	Name  string
}

// Circuit is a combinational netlist. Nodes must form a DAG; fanins
// always refer to lower construction indices when built via the Add*
// methods, so the node slice is a topological order.
type Circuit struct {
	Nodes   []Node
	Inputs  []NodeID
	Outputs []NodeID
	byName  map[string]NodeID
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{byName: make(map[string]NodeID)}
}

// NumNodes returns the node count.
func (c *Circuit) NumNodes() int { return len(c.Nodes) }

// NumGates returns the count of logic gates (excluding inputs/constants).
func (c *Circuit) NumGates() int {
	n := 0
	for i := range c.Nodes {
		switch c.Nodes[i].Type {
		case Input, Const0, Const1:
		default:
			n++
		}
	}
	return n
}

// AddInput appends a primary input.
func (c *Circuit) AddInput(name string) NodeID {
	id := c.addNode(Node{Type: Input, Name: name})
	c.Inputs = append(c.Inputs, id)
	return id
}

// AddConst appends a constant node.
func (c *Circuit) AddConst(one bool, name string) NodeID {
	t := Const0
	if one {
		t = Const1
	}
	return c.addNode(Node{Type: t, Name: name})
}

// AddGate appends a gate. Fanin counts are validated: Buf/Not take one,
// Xor/Xnor take two or more, And/Nand/Or/Nor take one or more.
func (c *Circuit) AddGate(t GateType, name string, fanin ...NodeID) NodeID {
	switch t {
	case Input, Const0, Const1:
		panic("circuit: AddGate with non-gate type; use AddInput/AddConst")
	case Buf, Not:
		if len(fanin) != 1 {
			panic(fmt.Sprintf("circuit: %v requires exactly 1 fanin, got %d", t, len(fanin)))
		}
	case Xor, Xnor:
		if len(fanin) < 2 {
			panic(fmt.Sprintf("circuit: %v requires >= 2 fanins, got %d", t, len(fanin)))
		}
	default:
		if len(fanin) < 1 {
			panic(fmt.Sprintf("circuit: %v requires >= 1 fanin", t))
		}
	}
	for _, f := range fanin {
		if f < 0 || int(f) >= len(c.Nodes) {
			panic(fmt.Sprintf("circuit: fanin %d out of range", f))
		}
	}
	return c.addNode(Node{Type: t, Fanin: append([]NodeID(nil), fanin...), Name: name})
}

func (c *Circuit) addNode(n Node) NodeID {
	id := NodeID(len(c.Nodes))
	if n.Name == "" {
		n.Name = fmt.Sprintf("n%d", id)
	}
	if _, dup := c.byName[n.Name]; dup {
		panic(fmt.Sprintf("circuit: duplicate node name %q", n.Name))
	}
	c.byName[n.Name] = id
	c.Nodes = append(c.Nodes, n)
	return id
}

// MarkOutput declares id a primary output.
func (c *Circuit) MarkOutput(id NodeID) {
	c.Outputs = append(c.Outputs, id)
}

// NodeByName returns the node id with the given name, or NoNode.
func (c *Circuit) NodeByName(name string) NodeID {
	if id, ok := c.byName[name]; ok {
		return id
	}
	return NoNode
}

// Name returns the name of node id.
func (c *Circuit) Name(id NodeID) string { return c.Nodes[id].Name }

// Fanouts computes the fanout lists FO(x) for every node (§5).
func (c *Circuit) Fanouts() [][]NodeID {
	out := make([][]NodeID, len(c.Nodes))
	for i := range c.Nodes {
		for _, f := range c.Nodes[i].Fanin {
			out[f] = append(out[f], NodeID(i))
		}
	}
	return out
}

// Levels returns the topological level of every node (inputs at 0).
func (c *Circuit) Levels() []int {
	lv := make([]int, len(c.Nodes))
	for i := range c.Nodes {
		max := -1
		for _, f := range c.Nodes[i].Fanin {
			if lv[f] > max {
				max = lv[f]
			}
		}
		lv[i] = max + 1
	}
	return lv
}

// Depth returns the maximum level over all nodes.
func (c *Circuit) Depth() int {
	d := 0
	for _, l := range c.Levels() {
		if l > d {
			d = l
		}
	}
	return d
}

// Validate checks structural sanity: fanins precede their gates (DAG by
// construction), every output exists, and gate arities are legal.
func (c *Circuit) Validate() error {
	for i := range c.Nodes {
		n := &c.Nodes[i]
		for _, f := range n.Fanin {
			if f < 0 || int(f) >= len(c.Nodes) {
				return fmt.Errorf("circuit: node %d (%s): fanin %d out of range", i, n.Name, f)
			}
			if int(f) >= i {
				return fmt.Errorf("circuit: node %d (%s): fanin %d not topologically earlier", i, n.Name, f)
			}
		}
		switch n.Type {
		case Input, Const0, Const1:
			if len(n.Fanin) != 0 {
				return fmt.Errorf("circuit: node %d (%s): %v cannot have fanin", i, n.Name, n.Type)
			}
		case Buf, Not:
			if len(n.Fanin) != 1 {
				return fmt.Errorf("circuit: node %d (%s): %v arity %d", i, n.Name, n.Type, len(n.Fanin))
			}
		case Xor, Xnor:
			if len(n.Fanin) < 2 {
				return fmt.Errorf("circuit: node %d (%s): %v arity %d", i, n.Name, n.Type, len(n.Fanin))
			}
		case And, Nand, Or, Nor:
			if len(n.Fanin) < 1 {
				return fmt.Errorf("circuit: node %d (%s): %v arity %d", i, n.Name, n.Type, len(n.Fanin))
			}
		default:
			return fmt.Errorf("circuit: node %d (%s): unknown type %d", i, n.Name, n.Type)
		}
	}
	for _, o := range c.Outputs {
		if o < 0 || int(o) >= len(c.Nodes) {
			return fmt.Errorf("circuit: output %d out of range", o)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{
		Nodes:   make([]Node, len(c.Nodes)),
		Inputs:  append([]NodeID(nil), c.Inputs...),
		Outputs: append([]NodeID(nil), c.Outputs...),
		byName:  make(map[string]NodeID, len(c.byName)),
	}
	for i, n := range c.Nodes {
		out.Nodes[i] = Node{Type: n.Type, Fanin: append([]NodeID(nil), n.Fanin...), Name: n.Name}
		out.byName[n.Name] = NodeID(i)
	}
	return out
}

// TransitiveFanoutOf returns the set of nodes reachable from start
// (inclusive), sorted by id — the fault cone used by ATPG.
func (c *Circuit) TransitiveFanoutOf(start NodeID) []NodeID {
	fo := c.Fanouts()
	seen := make(map[NodeID]bool)
	stack := []NodeID{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, fo[n]...)
	}
	out := make([]NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GateCounts returns a histogram of gate types.
func (c *Circuit) GateCounts() map[GateType]int {
	m := make(map[GateType]int)
	for i := range c.Nodes {
		m[c.Nodes[i].Type]++
	}
	return m
}

// EvalGate computes a gate's Boolean function over its input values.
// It is the single source of truth for gate semantics, shared by the
// simulators and tests.
func EvalGate(t GateType, in []bool) bool {
	switch t {
	case Const0:
		return false
	case Const1:
		return true
	case Buf:
		return in[0]
	case Not:
		return !in[0]
	case And, Nand:
		v := true
		for _, x := range in {
			v = v && x
		}
		if t == Nand {
			return !v
		}
		return v
	case Or, Nor:
		v := false
		for _, x := range in {
			v = v || x
		}
		if t == Nor {
			return !v
		}
		return v
	case Xor, Xnor:
		v := false
		for _, x := range in {
			v = v != x
		}
		if t == Xnor {
			return !v
		}
		return v
	}
	panic("circuit: EvalGate on INPUT")
}
