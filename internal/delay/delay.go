// Package delay implements SAT-based circuit delay computation and path
// delay fault test generation (paper §3; [McGeer et al.], [Silva et al.,
// "Satisfiability Models and Algorithms for Circuit Delay Computation"],
// [Chen & Gupta]).
//
// Under the unit-delay model, the topological delay (longest structural
// path) is only an upper bound on the true circuit delay: the longest
// paths may be false — not sensitizable by any input vector. The
// sensitizable delay is computed by enumerating structural paths in
// decreasing length order (best-first search) and asking SAT whether
// each is statically sensitizable: every side input of every gate along
// the path must take its non-controlling value. Carry-skip adders are
// the classic workload: their ripple paths are false because full
// propagation forces the bypass.
package delay

import (
	"container/heap"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/solver"
)

// Path is a structural path: a sequence of nodes from a primary input to
// a primary output, each consecutive pair connected by a fanin edge.
type Path []circuit.NodeID

// Length returns the path delay in gate stages (edges).
func (p Path) Length() int { return len(p) - 1 }

// TopologicalDelay returns the longest structural path length (unit
// delay per gate stage).
func TopologicalDelay(c *circuit.Circuit) int {
	max := 0
	levels := c.Levels()
	for _, o := range c.Outputs {
		if levels[o] > max {
			max = levels[o]
		}
	}
	return max
}

// Options configures delay computation.
type Options struct {
	// MaxPaths caps the number of paths tested for sensitizability
	// (0 = 10000). When exceeded, the result is a lower bound.
	MaxPaths int
	// MaxConflicts bounds each sensitization SAT query (0 = unlimited).
	MaxConflicts int64
	// Solver carries base solver options.
	Solver solver.Options
}

// Result reports a delay computation.
type Result struct {
	// Topological is the structural longest-path delay.
	Topological int
	// Sensitizable is the longest statically-sensitizable path delay.
	Sensitizable int
	// Critical is a sensitizable path achieving it (nil if none found).
	Critical Path
	// Vector sensitizes the critical path.
	Vector []bool
	// FalsePaths counts the longer paths proven unsensitizable.
	FalsePaths int
	// PathsTested counts SAT queries.
	PathsTested int
	// Exact is false if the path cap was hit before finding a
	// sensitizable path (Sensitizable is then a lower bound of 0 or the
	// last proven value).
	Exact bool
}

// ComputeDelay computes the sensitizable delay of c.
func ComputeDelay(c *circuit.Circuit, opts Options) *Result {
	if opts.MaxPaths == 0 {
		opts.MaxPaths = 10000
	}
	res := &Result{Topological: TopologicalDelay(c)}
	e := newEnumerator(c)
	for res.PathsTested < opts.MaxPaths {
		p := e.next()
		if p == nil {
			res.Exact = true // all paths enumerated
			return res
		}
		res.PathsTested++
		ok, vec := StaticallySensitizable(c, p, opts)
		if ok {
			res.Sensitizable = p.Length()
			res.Critical = p
			res.Vector = vec
			res.Exact = true
			return res
		}
		res.FalsePaths++
	}
	return res
}

// StaticallySensitizable asks SAT whether some input vector sets every
// side input along the path to its non-controlling value. It returns the
// sensitizing vector on success.
func StaticallySensitizable(c *circuit.Circuit, p Path, opts Options) (bool, []bool) {
	enc := circuit.Encode(c)
	f := enc.F
	ok := addSideConstraints(f, enc, c, p, false, nil)
	if !ok {
		return false, nil
	}
	sopts := opts.Solver
	sopts.MaxConflicts = opts.MaxConflicts
	s := solver.FromFormula(f, sopts)
	if s.Solve() != solver.Sat {
		return false, nil
	}
	m := s.Model()
	vec := make([]bool, len(c.Inputs))
	for i, id := range c.Inputs {
		vec[i] = m.Value(enc.VarOf[id]) == cnf.True
	}
	return true, vec
}

// nonControlling returns the non-controlling input value of a gate type
// and whether the gate has one (XOR/XNOR/NOT/BUF do not need side
// constraints — NOT/BUF have no side inputs, XOR side inputs never block
// propagation).
func nonControlling(t circuit.GateType) (bool, bool) {
	switch t {
	case circuit.And, circuit.Nand:
		return true, true
	case circuit.Or, circuit.Nor:
		return false, true
	}
	return false, false
}

// addSideConstraints adds the sensitization conditions for the path to
// f. When twoFrame is non-nil it holds the second frame's encoding and
// the constraints are the non-robust (frame-2 only) conditions; the
// robust flag additionally requires side inputs stable across frames.
func addSideConstraints(f *cnf.Formula, enc *circuit.Encoding, c *circuit.Circuit, p Path, robust bool, frame2 *circuit.Encoding) bool {
	for i := 1; i < len(p); i++ {
		g := p[i]
		n := &c.Nodes[g]
		onPath := p[i-1]
		found := false
		for _, fn := range n.Fanin {
			if fn == onPath {
				found = true
				break
			}
		}
		if !found {
			return false // not a structural path
		}
		nc, has := nonControlling(n.Type)
		for _, w := range n.Fanin {
			if w == onPath {
				continue
			}
			if frame2 == nil {
				// Single-frame static sensitization.
				if has {
					f.Add(enc.Lit(w, nc))
				}
				continue
			}
			// Two-frame (path delay test): non-controlling at v2.
			if has {
				f.Add(frame2.Lit(w, nc))
				if robust {
					f.Add(enc.Lit(w, nc)) // stable non-controlling
				}
			} else if robust && (n.Type == circuit.Xor || n.Type == circuit.Xnor) {
				// XOR side inputs must be stable for a robust test.
				a, b := enc.Lit(w, true), frame2.Lit(w, true)
				f.Add(a.Not(), b)
				f.Add(a, b.Not())
			}
		}
	}
	return true
}

// enumerator yields structural PI→PO paths in decreasing length order
// via best-first search on (prefix length + longest remaining).
type enumerator struct {
	c    *circuit.Circuit
	fo   [][]circuit.NodeID
	down []int // longest remaining edges to a PO
	isPO []bool
	h    pathHeap
}

type prefix struct {
	potential int
	nodes     []circuit.NodeID
	complete  bool
}

type pathHeap []*prefix

func (h pathHeap) Len() int            { return len(h) }
func (h pathHeap) Less(i, j int) bool  { return h[i].potential > h[j].potential }
func (h pathHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x interface{}) { *h = append(*h, x.(*prefix)) }
func (h *pathHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func newEnumerator(c *circuit.Circuit) *enumerator {
	e := &enumerator{c: c, fo: c.Fanouts(), down: make([]int, len(c.Nodes)), isPO: make([]bool, len(c.Nodes))}
	for _, o := range c.Outputs {
		e.isPO[o] = true
	}
	// down in reverse topological order.
	for i := len(c.Nodes) - 1; i >= 0; i-- {
		d := -1 << 30
		if e.isPO[i] {
			d = 0
		}
		for _, g := range e.fo[i] {
			if 1+e.down[g] > d {
				d = 1 + e.down[g]
			}
		}
		e.down[i] = d
	}
	for _, in := range c.Inputs {
		if e.down[in] >= 0 {
			heap.Push(&e.h, &prefix{potential: e.down[in], nodes: []circuit.NodeID{in}})
		}
	}
	return e
}

// next returns the next-longest complete path, or nil when exhausted.
func (e *enumerator) next() Path {
	for e.h.Len() > 0 {
		p := heap.Pop(&e.h).(*prefix)
		last := p.nodes[len(p.nodes)-1]
		if p.complete {
			return Path(p.nodes)
		}
		if e.isPO[last] {
			heap.Push(&e.h, &prefix{potential: len(p.nodes) - 1, nodes: p.nodes, complete: true})
		}
		for _, g := range e.fo[last] {
			if e.down[g] < 0 {
				continue // no PO reachable
			}
			nodes := make([]circuit.NodeID, len(p.nodes)+1)
			copy(nodes, p.nodes)
			nodes[len(p.nodes)] = g
			heap.Push(&e.h, &prefix{potential: len(p.nodes) + e.down[g], nodes: nodes})
		}
	}
	return nil
}

// PathReport pairs a sensitizable path with its sensitizing vector.
type PathReport struct {
	Path   Path
	Vector []bool
}

// KLongestSensitizable enumerates structural paths in decreasing length
// order and returns the first k that are statically sensitizable — the
// candidate set for path delay fault test generation (test the K
// longest true paths). The second result reports whether enumeration
// was exhaustive within the options' path cap.
func KLongestSensitizable(c *circuit.Circuit, k int, opts Options) ([]PathReport, bool) {
	if opts.MaxPaths == 0 {
		opts.MaxPaths = 10000
	}
	e := newEnumerator(c)
	var out []PathReport
	tested := 0
	for len(out) < k && tested < opts.MaxPaths {
		p := e.next()
		if p == nil {
			return out, true
		}
		tested++
		if ok, vec := StaticallySensitizable(c, p, opts); ok {
			out = append(out, PathReport{Path: p, Vector: vec})
		}
	}
	return out, tested < opts.MaxPaths
}
