package delay

import (
	"testing"

	"repro/internal/circuit"
)

func TestTopologicalDelay(t *testing.T) {
	c := circuit.New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.Or, "g2", g1, a)
	c.MarkOutput(g2)
	if d := TopologicalDelay(c); d != 2 {
		t.Fatalf("delay = %d, want 2", d)
	}
}

func TestEnumeratorOrdersPathsByLength(t *testing.T) {
	c := circuit.RippleCarryAdder(3)
	e := newEnumerator(c)
	prev := 1 << 30
	count := 0
	for {
		p := e.next()
		if p == nil {
			break
		}
		if p.Length() > prev {
			t.Fatalf("paths out of order: %d after %d", p.Length(), prev)
		}
		prev = p.Length()
		count++
		// Structural validity: consecutive fanin edges.
		for i := 1; i < len(p); i++ {
			ok := false
			for _, f := range c.Nodes[p[i]].Fanin {
				if f == p[i-1] {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("non-structural path %v", p)
			}
		}
		if c.Nodes[p[0]].Type != circuit.Input {
			t.Fatalf("path does not start at PI: %v", p)
		}
		if count > 100000 {
			t.Fatal("runaway enumeration")
		}
	}
	if count == 0 {
		t.Fatal("no paths enumerated")
	}
	if prev != TopologicalDelay(c) && count > 0 {
		// The first path must equal the topological delay; re-check via
		// a fresh enumerator.
		e2 := newEnumerator(c)
		if p := e2.next(); p.Length() != TopologicalDelay(c) {
			t.Fatalf("first path %d != topological %d", p.Length(), TopologicalDelay(c))
		}
	}
}

func TestSensitizableVectorIsValid(t *testing.T) {
	c := circuit.RippleCarryAdder(4)
	res := ComputeDelay(c, Options{})
	if !res.Exact {
		t.Fatal("adder delay should be computed exactly")
	}
	if res.Critical == nil {
		t.Fatal("no sensitizable path found on an adder")
	}
	// The carry chain of a ripple adder IS sensitizable: delay equals
	// topological delay.
	if res.Sensitizable != res.Topological {
		t.Fatalf("ripple adder: sensitizable %d != topological %d", res.Sensitizable, res.Topological)
	}
	// Verify the vector sensitizes: all side inputs non-controlling.
	vals := c.SimulateBool(res.Vector)
	for i := 1; i < len(res.Critical); i++ {
		g := res.Critical[i]
		n := &c.Nodes[g]
		nc, has := nonControlling(n.Type)
		if !has {
			continue
		}
		for _, w := range n.Fanin {
			if w == res.Critical[i-1] {
				continue
			}
			if vals[w] != nc {
				t.Fatalf("side input %d of gate %d controlling under vector", w, g)
			}
		}
	}
}

func TestCarrySkipFalsePaths(t *testing.T) {
	// The headline claim (experiment E18): carry-skip adders have false
	// paths, so the sensitizable delay is strictly below topological.
	c := circuit.CarrySkipAdder(8, 4)
	res := ComputeDelay(c, Options{MaxPaths: 5000})
	if !res.Exact {
		t.Fatalf("path budget exceeded (%d paths tested)", res.PathsTested)
	}
	if res.FalsePaths == 0 {
		t.Fatal("carry-skip adder should have false paths")
	}
	if res.Sensitizable >= res.Topological {
		t.Fatalf("expected sensitizable < topological, got %d >= %d",
			res.Sensitizable, res.Topological)
	}
}

func TestStaticSensitizableRejectsNonPath(t *testing.T) {
	c := circuit.RippleCarryAdder(2)
	// Two unconnected nodes are not a structural path.
	bogus := Path{c.Inputs[0], c.Outputs[0]}
	ok, _ := StaticallySensitizable(c, bogus, Options{})
	if ok {
		t.Fatal("bogus path must be rejected")
	}
}

func TestPathDelayTestGeneration(t *testing.T) {
	c := circuit.RippleCarryAdder(3)
	e := newEnumerator(c)
	p := e.next() // longest path: the carry chain
	for _, robust := range []bool{false, true} {
		tp, st := GeneratePathTest(c, p, robust, Options{})
		if st != PathTestFound {
			t.Fatalf("robust=%v: expected a test for the adder carry chain, got %v", robust, st)
		}
		if !VerifyPathTest(c, p, tp) {
			t.Fatalf("robust=%v: generated pair fails verification", robust)
		}
	}
}

func TestRobustImpliesNonRobust(t *testing.T) {
	// Every path with a robust test must also have a non-robust test.
	c := circuit.CarrySkipAdder(6, 3)
	e := newEnumerator(c)
	checked := 0
	for checked < 15 {
		p := e.next()
		if p == nil {
			break
		}
		checked++
		_, rs := GeneratePathTest(c, p, true, Options{})
		_, ns := GeneratePathTest(c, p, false, Options{})
		if rs == PathTestFound && ns != PathTestFound {
			t.Fatalf("path %v: robust test exists but non-robust does not", p)
		}
	}
	if checked == 0 {
		t.Fatal("no paths checked")
	}
}

func TestUntestablePathDelayFault(t *testing.T) {
	// In the carry-skip adder the full ripple path is false, so its path
	// delay fault has no (non-robust) test.
	c := circuit.CarrySkipAdder(8, 4)
	e := newEnumerator(c)
	p := e.next()
	ok, _ := StaticallySensitizable(c, p, Options{})
	if ok {
		t.Skip("longest path unexpectedly sensitizable in this construction")
	}
	_, st := GeneratePathTest(c, p, false, Options{})
	if st != PathUntestable {
		t.Fatalf("false path should be untestable, got %v", st)
	}
}

func TestKLongestSensitizable(t *testing.T) {
	c := circuit.CarrySkipAdder(8, 4)
	reports, complete := KLongestSensitizable(c, 5, Options{MaxPaths: 5000})
	if !complete && len(reports) < 5 {
		t.Fatal("path cap hit before finding 5 sensitizable paths")
	}
	if len(reports) == 0 {
		t.Fatal("no sensitizable paths")
	}
	prev := 1 << 30
	for _, r := range reports {
		if r.Path.Length() > prev {
			t.Fatal("paths out of order")
		}
		prev = r.Path.Length()
		// Vector must sensitize: all side inputs non-controlling.
		vals := c.SimulateBool(r.Vector)
		for i := 1; i < len(r.Path); i++ {
			n := &c.Nodes[r.Path[i]]
			nc, has := nonControlling(n.Type)
			if !has {
				continue
			}
			for _, w := range n.Fanin {
				if w == r.Path[i-1] {
					continue
				}
				if vals[w] != nc {
					t.Fatalf("side input controlling on reported path")
				}
			}
		}
	}
	// The first report's length is the sensitizable delay.
	res := ComputeDelay(c, Options{MaxPaths: 5000})
	if reports[0].Path.Length() != res.Sensitizable {
		t.Fatalf("K-longest head %d != sensitizable delay %d",
			reports[0].Path.Length(), res.Sensitizable)
	}
}
