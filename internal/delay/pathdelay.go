package delay

import (
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/solver"
)

// TestPair is a two-vector path delay fault test: V1 initializes the
// circuit, V2 launches a transition down the path.
type TestPair struct {
	V1, V2 []bool
}

// PathTestStatus classifies a path delay test generation outcome.
type PathTestStatus int

// Path delay test outcomes.
const (
	// PathTestFound means a test pair was generated.
	PathTestFound PathTestStatus = iota
	// PathUntestable means no test pair exists under the chosen
	// conditions (the path delay fault is untestable / the path false).
	PathUntestable
	// PathTestAborted means the budget was exhausted.
	PathTestAborted
)

// GeneratePathTest builds a two-vector test for the path delay fault on
// p ([Chen & Gupta], paper §3 "delay fault testing"). The SAT encoding
// uses two circuit copies (time frames):
//
//   - launch: every node on the path changes value between frames (a
//     transition propagates along the entire path),
//   - non-robust conditions: side inputs at non-controlling values in
//     the second frame,
//   - robust conditions (conservative): side inputs additionally stable
//     at non-controlling values across both frames (XOR side inputs
//     stable at either value).
func GeneratePathTest(c *circuit.Circuit, p Path, robust bool, opts Options) (TestPair, PathTestStatus) {
	f := cnf.New(0)
	enc1 := circuit.EncodeInto(f, c) // frame 1 (V1)
	enc2 := circuit.EncodeInto(f, c) // frame 2 (V2)

	// Transition along the whole path: node values differ across frames.
	for _, n := range p {
		a, b := cnf.PosLit(enc1.VarOf[n]), cnf.PosLit(enc2.VarOf[n])
		f.Add(a, b)
		f.Add(a.Not(), b.Not())
	}
	if !addSideConstraints(f, enc1, c, p, robust, enc2) {
		return TestPair{}, PathUntestable
	}

	sopts := opts.Solver
	sopts.MaxConflicts = opts.MaxConflicts
	s := solver.FromFormula(f, sopts)
	switch s.Solve() {
	case solver.Sat:
		m := s.Model()
		tp := TestPair{V1: make([]bool, len(c.Inputs)), V2: make([]bool, len(c.Inputs))}
		for i, id := range c.Inputs {
			tp.V1[i] = m.Value(enc1.VarOf[id]) == cnf.True
			tp.V2[i] = m.Value(enc2.VarOf[id]) == cnf.True
		}
		return tp, PathTestFound
	case solver.Unsat:
		return TestPair{}, PathUntestable
	}
	return TestPair{}, PathTestAborted
}

// VerifyPathTest checks (by simulation) that the test pair launches a
// transition at the path input that propagates to the path output:
// every on-path node changes value between V1 and V2, and under V2 all
// side inputs are non-controlling.
func VerifyPathTest(c *circuit.Circuit, p Path, tp TestPair) bool {
	v1 := c.SimulateBool(tp.V1)
	v2 := c.SimulateBool(tp.V2)
	for _, n := range p {
		if v1[n] == v2[n] {
			return false
		}
	}
	for i := 1; i < len(p); i++ {
		n := &c.Nodes[p[i]]
		nc, has := nonControlling(n.Type)
		if !has {
			continue
		}
		for _, w := range n.Fanin {
			if w == p[i-1] {
				continue
			}
			if v2[w] != nc {
				return false
			}
		}
	}
	return true
}
