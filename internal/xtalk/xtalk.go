// Package xtalk implements SAT-based crosstalk noise analysis (paper §3;
// [Chen & Keutzer, "Towards True Crosstalk Noise Analysis"]). A victim
// net suffers worst-case coupling noise when its capacitively-coupled
// aggressor nets switch simultaneously in the same direction while the
// victim itself is quiet. Electrical estimators that assume all
// aggressors can align are pessimistic: logic constraints may make the
// alignment impossible. The "true" analysis asks SAT, over a two-vector
// (two time frame) circuit model, for the maximum total coupling weight
// of aggressors that can really switch together under some input pair —
// exactly the kind of validity question the paper's §3 lists.
package xtalk

import (
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/cover"
	"repro/internal/solver"
)

// Coupling describes the parasitic neighbourhood of one victim net.
type Coupling struct {
	// Victim is the quiet net.
	Victim circuit.NodeID
	// Aggressors are the coupled nets.
	Aggressors []circuit.NodeID
	// Weights holds per-aggressor coupling weights (nil = unit). The
	// noise metric is the sum of weights of aligned switching
	// aggressors.
	Weights []int
}

// Options configures the analysis.
type Options struct {
	MaxConflicts int64
	Solver       solver.Options
}

// Result reports the worst feasible aligned noise.
type Result struct {
	// MaxNoise is the maximum achievable total weight of aggressors
	// switching in one direction while the victim is stable.
	MaxNoise int
	// Pessimistic is the structural upper bound (sum of all weights) an
	// electrical tool would assume without logic information.
	Pessimistic int
	// Feasible is false when even a single aggressor cannot switch with
	// the victim quiet.
	Feasible bool
	// Optimal is true when MaxNoise was proven maximal.
	Optimal bool
	// V1, V2 is a witness input pair achieving MaxNoise.
	V1, V2 []bool
	// Rising is true if the witness aligns rising transitions.
	Rising   bool
	SATCalls int
}

// MaxAlignedNoise computes the worst-case feasible aligned aggressor
// noise for the coupling using a two-frame SAT model and an
// incrementally tightened cardinality bound.
func MaxAlignedNoise(c *circuit.Circuit, cp Coupling, opts Options) *Result {
	res := &Result{}
	for i := range cp.Aggressors {
		w := 1
		if cp.Weights != nil {
			w = cp.Weights[i]
		}
		res.Pessimistic += w
	}

	f := cnf.New(0)
	enc1 := circuit.EncodeInto(f, c) // frame 1 (V1)
	enc2 := circuit.EncodeInto(f, c) // frame 2 (V2)

	// Victim quiet: same value in both frames.
	v1, v2 := enc1.VarOf[cp.Victim], enc2.VarOf[cp.Victim]
	f.Add(cnf.NegLit(v1), cnf.PosLit(v2))
	f.Add(cnf.PosLit(v1), cnf.NegLit(v2))

	// Global direction selector d: true = rising alignment.
	d := f.NewVar()

	// switch_i = (d ∧ rise_i) ∨ (¬d ∧ fall_i) where rise = ¬a1 ∧ a2.
	switchLits := make([]cnf.Lit, len(cp.Aggressors))
	for i, ag := range cp.Aggressors {
		a1, a2 := enc1.VarOf[ag], enc2.VarOf[ag]
		rise := f.NewVar() // rise ≡ ¬a1 ∧ a2
		circuit.AppendGateCNF(f, circuit.Nor, rise, []cnf.Var{a1, negVar(f, a2)})
		fall := f.NewVar() // fall ≡ a1 ∧ ¬a2
		circuit.AppendGateCNF(f, circuit.Nor, fall, []cnf.Var{negVar(f, a1), a2})
		selRise := f.NewVar()
		circuit.AppendGateCNF(f, circuit.And, selRise, []cnf.Var{d, rise})
		selFall := f.NewVar()
		circuit.AppendGateCNF(f, circuit.And, selFall, []cnf.Var{negVar(f, d), fall})
		sw := f.NewVar()
		circuit.AppendGateCNF(f, circuit.Or, sw, []cnf.Var{selRise, selFall})
		switchLits[i] = cnf.PosLit(sw)
	}

	tot := cover.BuildTotalizer(f, cover.WeightedLits(switchLits, cp.Weights))

	sopts := opts.Solver
	sopts.MaxConflicts = opts.MaxConflicts
	s := solver.FromFormula(f, sopts)

	// SAT-improve loop: require strictly more aligned weight each round.
	for {
		res.SATCalls++
		switch s.Solve() {
		case solver.Sat:
			m := s.Model()
			k := 0
			for i, sl := range switchLits {
				if m.LitValue(sl) == cnf.True {
					w := 1
					if cp.Weights != nil {
						w = cp.Weights[i]
					}
					k += w
				}
			}
			if k > res.MaxNoise || !res.Feasible {
				res.MaxNoise = k
				res.Feasible = k > 0
				res.Rising = m.Value(d) == cnf.True
				res.V1 = extract(c, enc1, m)
				res.V2 = extract(c, enc2, m)
			}
			if k >= len(tot.Outputs) {
				res.Optimal = true
				return res // every unit of weight aligned
			}
			// Demand at least k+1 next round.
			if !s.AddClause(cnf.Clause{cnf.PosLit(tot.Outputs[k])}) {
				res.Optimal = true
				return res
			}
		case solver.Unsat:
			res.Optimal = true
			return res
		default:
			return res // budget exhausted: best-so-far, not optimal
		}
	}
}

// negVar introduces (and caches nothing — callers are small) a variable
// equal to the complement of v.
func negVar(f *cnf.Formula, v cnf.Var) cnf.Var {
	n := f.NewVar()
	circuit.AppendGateCNF(f, circuit.Not, n, []cnf.Var{v})
	return n
}

func extract(c *circuit.Circuit, enc *circuit.Encoding, m cnf.Assignment) []bool {
	out := make([]bool, len(c.Inputs))
	for i, id := range c.Inputs {
		out[i] = m.Value(enc.VarOf[id]) == cnf.True
	}
	return out
}

// VerifyWitness checks by simulation that the witness pair keeps the
// victim stable and aligns at least `claimed` aggressor weight in one
// direction.
func VerifyWitness(c *circuit.Circuit, cp Coupling, res *Result) bool {
	if !res.Feasible {
		return true
	}
	s1 := c.SimulateBool(res.V1)
	s2 := c.SimulateBool(res.V2)
	if s1[cp.Victim] != s2[cp.Victim] {
		return false
	}
	aligned := 0
	for i, ag := range cp.Aggressors {
		rise := !s1[ag] && s2[ag]
		fall := s1[ag] && !s2[ag]
		hit := (res.Rising && rise) || (!res.Rising && fall)
		if hit {
			w := 1
			if cp.Weights != nil {
				w = cp.Weights[i]
			}
			aligned += w
		}
	}
	return aligned >= res.MaxNoise
}
