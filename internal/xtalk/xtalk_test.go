package xtalk

import (
	"testing"

	"repro/internal/circuit"
)

func TestIndependentAggressorsAllAlign(t *testing.T) {
	// Independent nets: every aggressor can switch while the victim
	// (a separate input) stays quiet — feasible noise = pessimistic.
	c := circuit.New()
	v := c.AddInput("victim")
	a1 := c.AddInput("a1")
	a2 := c.AddInput("a2")
	a3 := c.AddInput("a3")
	o := c.AddGate(circuit.And, "o", v, a1, a2, a3)
	c.MarkOutput(o)
	cp := Coupling{Victim: v, Aggressors: []circuit.NodeID{a1, a2, a3}}
	res := MaxAlignedNoise(c, cp, Options{})
	if !res.Optimal || res.MaxNoise != 3 {
		t.Fatalf("independent aggressors: max=%d optimal=%v, want 3", res.MaxNoise, res.Optimal)
	}
	if res.Pessimistic != 3 {
		t.Fatalf("pessimistic = %d", res.Pessimistic)
	}
	if !VerifyWitness(c, cp, res) {
		t.Fatal("witness fails simulation")
	}
}

func TestLogicallyConstrainedAlignment(t *testing.T) {
	// Aggressors are x and NOT x: they can never switch in the SAME
	// direction, so true max aligned noise is 1, though the pessimistic
	// bound is 2 — the headline claim of "true" crosstalk analysis.
	c := circuit.New()
	v := c.AddInput("victim")
	x := c.AddInput("x")
	nx := c.AddGate(circuit.Not, "nx", x)
	o := c.AddGate(circuit.And, "o", v, nx)
	c.MarkOutput(o)
	cp := Coupling{Victim: v, Aggressors: []circuit.NodeID{x, nx}}
	res := MaxAlignedNoise(c, cp, Options{})
	if !res.Optimal {
		t.Fatal("must prove optimality")
	}
	if res.MaxNoise != 1 {
		t.Fatalf("complementary aggressors: max=%d, want 1", res.MaxNoise)
	}
	if res.Pessimistic != 2 {
		t.Fatalf("pessimistic = %d, want 2", res.Pessimistic)
	}
	if !VerifyWitness(c, cp, res) {
		t.Fatal("witness fails simulation")
	}
}

func TestVictimStabilityConstrains(t *testing.T) {
	// Aggressor IS the victim's only input (buffer): it can never
	// switch while the victim is quiet → max noise 0.
	c := circuit.New()
	x := c.AddInput("x")
	vict := c.AddGate(circuit.Buf, "v", x)
	c.MarkOutput(vict)
	cp := Coupling{Victim: vict, Aggressors: []circuit.NodeID{x}}
	res := MaxAlignedNoise(c, cp, Options{})
	if res.MaxNoise != 0 || res.Feasible {
		t.Fatalf("aggressor driving the victim cannot align: %+v", res)
	}
}

func TestWeightedAggressors(t *testing.T) {
	// Weighted case: x (weight 5) and NOT x (weight 1): best single
	// direction picks the heavy aggressor → 5.
	c := circuit.New()
	v := c.AddInput("victim")
	x := c.AddInput("x")
	nx := c.AddGate(circuit.Not, "nx", x)
	o := c.AddGate(circuit.Or, "o", v, nx)
	c.MarkOutput(o)
	cp := Coupling{
		Victim:     v,
		Aggressors: []circuit.NodeID{x, nx},
		Weights:    []int{5, 1},
	}
	res := MaxAlignedNoise(c, cp, Options{})
	if !res.Optimal || res.MaxNoise != 5 {
		t.Fatalf("weighted max=%d, want 5", res.MaxNoise)
	}
	if !VerifyWitness(c, cp, res) {
		t.Fatal("witness fails simulation")
	}
}

func TestInternalNetsAsAggressors(t *testing.T) {
	// Aggressors deep in the logic: y1 = AND(a,b), y2 = OR(a,b). Both
	// can rise together (a: 0→1 with b=0→1). Victim c is independent.
	c := circuit.New()
	vin := c.AddInput("vin")
	a := c.AddInput("a")
	b := c.AddInput("b")
	y1 := c.AddGate(circuit.And, "y1", a, b)
	y2 := c.AddGate(circuit.Or, "y2", a, b)
	vict := c.AddGate(circuit.Buf, "vict", vin)
	c.MarkOutput(y1)
	c.MarkOutput(y2)
	c.MarkOutput(vict)
	cp := Coupling{Victim: vict, Aggressors: []circuit.NodeID{y1, y2}}
	res := MaxAlignedNoise(c, cp, Options{})
	if !res.Optimal || res.MaxNoise != 2 {
		t.Fatalf("internal aggressors: max=%d, want 2", res.MaxNoise)
	}
	if !VerifyWitness(c, cp, res) {
		t.Fatal("witness fails simulation")
	}
}

func TestExclusiveInternalAggressors(t *testing.T) {
	// Mux outputs with one select: d0∧¬s and d1∧s cannot both be 1, and
	// cannot both RISE simultaneously (one requires s to fall, the
	// other to rise... with shared data they are exclusive). Aggressors
	// y1 = AND(d, NOT s), y2 = AND(d, s): with d constant 1, y1 = ¬s,
	// y2 = s: complementary → max aligned 1 of 2.
	c := circuit.New()
	vin := c.AddInput("vin")
	d := c.AddConst(true, "d1c")
	s := c.AddInput("s")
	ns := c.AddGate(circuit.Not, "ns", s)
	y1 := c.AddGate(circuit.And, "y1", d, ns)
	y2 := c.AddGate(circuit.And, "y2", d, s)
	vict := c.AddGate(circuit.Buf, "vict", vin)
	c.MarkOutput(y1)
	c.MarkOutput(y2)
	c.MarkOutput(vict)
	cp := Coupling{Victim: vict, Aggressors: []circuit.NodeID{y1, y2}}
	res := MaxAlignedNoise(c, cp, Options{})
	if !res.Optimal || res.MaxNoise != 1 {
		t.Fatalf("exclusive aggressors: max=%d, want 1 (pessimistic %d)",
			res.MaxNoise, res.Pessimistic)
	}
}
