// Package csat implements the structural layer for solving SAT on
// combinational circuits described in paper §5 (after [Silva, Silveira &
// Marques-Silva]). A generic SAT solver is augmented — not modified —
// with a layer that maintains circuit information:
//
//   - FI(x)/FO(x): fanin and fanout relations,
//   - u_v(x): the threshold number of suitably-assigned inputs needed to
//     justify value v on node x (Table 2),
//   - t_v(x): the running counter of assigned inputs involved in
//     justifying value v on x (Table 3),
//   - the justification frontier: the set of assigned, unjustified nodes.
//
// Value consistency is handled entirely by the SAT engine over the CNF
// encoding; justification is handled by this layer. The Decide() test for
// satisfiability becomes "is the justification frontier empty" instead of
// "are all clauses satisfied", which terminates the search early and
// yields partially-specified input patterns — eliminating the
// overspecification drawback of plain CNF SAT (§5). Decisions may also be
// steered by simple backtracing from frontier nodes to primary inputs.
package csat

import (
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/solver"
)

// Options configures the layer.
type Options struct {
	// Backtrace enables decision steering: Suggest() backtraces from an
	// unjustified node to an unassigned primary input.
	Backtrace bool
	// Multiple enables multiple backtracing [Abramovici et al.]: instead
	// of following a single frontier node, every frontier node
	// backtraces and the primary input requested most often (with its
	// majority polarity) is decided. Implies Backtrace.
	Multiple bool
}

// Layer is the circuit-structure theory attached to a solver. Create it
// with Attach; it then observes assignments through the solver's Theory
// hook.
type Layer struct {
	c    *circuit.Circuit
	enc  *circuit.Encoding
	s    *solver.Solver
	opts Options

	nodeOf  []circuit.NodeID   // CNF var -> node (NoNode for auxiliaries)
	value   []cnf.LBool        // current value per node
	u       [2][]int32         // Table 2 thresholds, indexed [v][node]
	t       [2][]int32         // Table 3 counters,  indexed [v][node]
	fanouts [][]circuit.NodeID // FO(x), built lazily

	inFrontier []bool
	nFrontier  int

	side []cnf.Clause // extra non-circuit clauses Done() must respect

	// Stats
	EarlyStops int
}

// Attach builds the layer for circuit c encoded as enc and installs it on
// the solver. Any assignments already on the solver's trail (top-level
// units) are replayed into the counters.
func Attach(c *circuit.Circuit, enc *circuit.Encoding, s *solver.Solver, opts Options) *Layer {
	l := &Layer{
		c:      c,
		enc:    enc,
		s:      s,
		opts:   opts,
		nodeOf: make([]circuit.NodeID, enc.F.NumVars()+1),
		value:  make([]cnf.LBool, len(c.Nodes)),
	}
	for i := range l.nodeOf {
		l.nodeOf[i] = circuit.NoNode
	}
	for id, v := range enc.VarOf {
		l.nodeOf[v] = circuit.NodeID(id)
	}
	for v := 0; v < 2; v++ {
		l.u[v] = make([]int32, len(c.Nodes))
		l.t[v] = make([]int32, len(c.Nodes))
	}
	l.inFrontier = make([]bool, len(c.Nodes))
	for i := range c.Nodes {
		u0, u1 := Thresholds(c.Nodes[i].Type, len(c.Nodes[i].Fanin))
		l.u[0][i] = int32(u0)
		l.u[1][i] = int32(u1)
	}
	s.SetTheory(l)
	// Replay assignments made before attachment (level-0 facts).
	for v := cnf.Var(1); int(v) <= s.NumVars() && int(v) < len(l.nodeOf); v++ {
		switch s.Value(v) {
		case cnf.True:
			l.OnAssign(cnf.PosLit(v))
		case cnf.False:
			l.OnAssign(cnf.NegLit(v))
		}
	}
	return l
}

// Thresholds returns (u0, u1) for a gate of the given type and fanin
// count, per the paper's Table 2: for an AND gate one input assigned 0
// justifies x=0 while all inputs must be 1 to justify x=1, and dually for
// the other simple gates; XOR/XNOR require all inputs assigned for either
// value. Inputs and constants need no justification (threshold 0).
func Thresholds(t circuit.GateType, fanin int) (u0, u1 int) {
	n := fanin
	switch t {
	case circuit.Input, circuit.Const0, circuit.Const1:
		return 0, 0
	case circuit.Buf, circuit.Not:
		return 1, 1
	case circuit.And:
		return 1, n
	case circuit.Nand:
		return n, 1
	case circuit.Or:
		return n, 1
	case circuit.Nor:
		return 1, n
	case circuit.Xor, circuit.Xnor:
		return n, n
	}
	panic("csat: unknown gate type")
}

// CounterDeltas returns the (Δt0, Δt1) applied to gate x's counters when
// one of its inputs is assigned value w, per the paper's Table 3. For an
// AND gate an input assigned 0 increments t0 and an input assigned 1
// increments t1; NAND/NOR invert the roles; XOR/XNOR increment both
// counters on any input assignment.
func CounterDeltas(t circuit.GateType, w bool) (d0, d1 int) {
	switch t {
	case circuit.And:
		if w {
			return 0, 1
		}
		return 1, 0
	case circuit.Nand:
		if w {
			return 1, 0
		}
		return 0, 1
	case circuit.Or:
		if w {
			return 0, 1
		}
		return 1, 0
	case circuit.Nor:
		if w {
			return 1, 0
		}
		return 0, 1
	case circuit.Buf:
		if w {
			return 0, 1
		}
		return 1, 0
	case circuit.Not:
		if w {
			return 1, 0
		}
		return 0, 1
	case circuit.Xor, circuit.Xnor:
		return 1, 1
	}
	return 0, 0
}

// AddSideClause registers a non-circuit clause (e.g. an ATPG blocking
// clause) that the early-termination test must also check, keeping the
// empty-frontier stop sound in the presence of extra constraints.
func (l *Layer) AddSideClause(c cnf.Clause) {
	l.side = append(l.side, c.Clone())
}

// needsJustification reports the frontier condition of §5:
// (v(x) = v) ∧ (t_v(x) < u_v(x)).
func (l *Layer) needsJustification(id circuit.NodeID) bool {
	v := l.value[id]
	if v == cnf.Undef {
		return false
	}
	vi := 0
	if v == cnf.True {
		vi = 1
	}
	return l.t[vi][id] < l.u[vi][id]
}

func (l *Layer) refreshFrontier(id circuit.NodeID) {
	now := l.needsJustification(id)
	if now == l.inFrontier[id] {
		return
	}
	l.inFrontier[id] = now
	if now {
		l.nFrontier++
	} else {
		l.nFrontier--
	}
}

// OnAssign implements solver.Theory.
func (l *Layer) OnAssign(lit cnf.Lit) {
	v := lit.Var()
	if int(v) >= len(l.nodeOf) {
		return
	}
	id := l.nodeOf[v]
	if id == circuit.NoNode {
		return
	}
	val := !lit.IsNeg()
	l.value[id] = cnf.FromBool(val)
	l.refreshFrontier(id)
	// Update the justification counters of every fanout gate (Table 3).
	for _, g := range l.fanoutsOf(id) {
		d0, d1 := CounterDeltas(l.c.Nodes[g].Type, val)
		l.t[0][g] += int32(d0)
		l.t[1][g] += int32(d1)
		l.refreshFrontier(g)
	}
}

// OnUnassign implements solver.Theory.
func (l *Layer) OnUnassign(lit cnf.Lit) {
	v := lit.Var()
	if int(v) >= len(l.nodeOf) {
		return
	}
	id := l.nodeOf[v]
	if id == circuit.NoNode {
		return
	}
	val := !lit.IsNeg()
	l.value[id] = cnf.Undef
	l.refreshFrontier(id)
	for _, g := range l.fanoutsOf(id) {
		d0, d1 := CounterDeltas(l.c.Nodes[g].Type, val)
		l.t[0][g] -= int32(d0)
		l.t[1][g] -= int32(d1)
		l.refreshFrontier(g)
	}
}

// fanoutsOf returns FO(id), computing the fanout lists on first use (the
// circuit is immutable once attached).
func (l *Layer) fanoutsOf(id circuit.NodeID) []circuit.NodeID {
	if l.fanouts == nil {
		l.fanouts = l.c.Fanouts()
	}
	return l.fanouts[id]
}

// Done implements solver.Theory: the search can stop as soon as the
// justification frontier is empty (and any registered side clauses are
// satisfied), replacing the "all clauses satisfied" test.
func (l *Layer) Done() bool {
	if l.nFrontier != 0 {
		return false
	}
	for _, c := range l.side {
		sat := false
		for _, lit := range c {
			if l.s.LitValue(lit) == cnf.True {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	l.EarlyStops++
	return true
}

// Suggest implements solver.Theory: backtracing [Abramovici et al.]
// from unjustified nodes to unassigned primary inputs, choosing
// controlling values along the way. Simple mode follows one frontier
// node; multiple mode lets every frontier node vote on a PI.
func (l *Layer) Suggest() cnf.Lit {
	if (!l.opts.Backtrace && !l.opts.Multiple) || l.nFrontier == 0 {
		return cnf.LitUndef
	}
	if l.opts.Multiple {
		return l.suggestMultiple()
	}
	// Simple backtracing from the lowest-id frontier node.
	for id := range l.c.Nodes {
		if l.inFrontier[id] {
			if lit := l.backtraceFrom(circuit.NodeID(id)); lit != cnf.LitUndef {
				return lit
			}
			return cnf.LitUndef
		}
	}
	return cnf.LitUndef
}

// backtraceFrom walks from one unjustified node down to a primary input.
func (l *Layer) backtraceFrom(target circuit.NodeID) cnf.Lit {
	want := l.value[target] == cnf.True
	for steps := 0; steps <= len(l.c.Nodes); steps++ {
		n := &l.c.Nodes[target]
		next, nextVal, ok := l.backtraceStep(target, n, want)
		if !ok {
			return cnf.LitUndef
		}
		if l.c.Nodes[next].Type == circuit.Input {
			return cnf.NewLit(l.enc.VarOf[next], !nextVal)
		}
		target, want = next, nextVal
	}
	return cnf.LitUndef
}

// suggestMultiple performs multiple backtracing: every frontier node
// traces to a PI request; the input with the most requests wins, with
// the polarity of the majority of its requests.
func (l *Layer) suggestMultiple() cnf.Lit {
	votes := make(map[circuit.NodeID][2]int) // PI -> {false votes, true votes}
	for id := range l.c.Nodes {
		if !l.inFrontier[id] {
			continue
		}
		lit := l.backtraceFrom(circuit.NodeID(id))
		if lit == cnf.LitUndef {
			continue
		}
		pi := l.nodeOf[lit.Var()]
		v := votes[pi]
		if lit.IsNeg() {
			v[0]++
		} else {
			v[1]++
		}
		votes[pi] = v
	}
	best := circuit.NoNode
	bestCount := -1
	bestVal := false
	// Deterministic iteration: scan nodes in id order.
	for id := range l.c.Nodes {
		v, ok := votes[circuit.NodeID(id)]
		if !ok {
			continue
		}
		total := v[0] + v[1]
		if total > bestCount {
			bestCount = total
			best = circuit.NodeID(id)
			bestVal = v[1] >= v[0]
		}
	}
	if best == circuit.NoNode {
		return cnf.LitUndef
	}
	return cnf.NewLit(l.enc.VarOf[best], !bestVal)
}

// backtraceStep picks an unassigned fanin of x and the value it should
// take to help justify value want on x.
func (l *Layer) backtraceStep(x circuit.NodeID, n *circuit.Node, want bool) (circuit.NodeID, bool, bool) {
	pick := circuit.NoNode
	for _, f := range n.Fanin {
		if l.value[f] == cnf.Undef {
			pick = f
			break
		}
	}
	if pick == circuit.NoNode {
		return circuit.NoNode, false, false
	}
	switch n.Type {
	case circuit.And:
		return pick, want, true
	case circuit.Or:
		return pick, want, true
	case circuit.Nand:
		return pick, !want, true
	case circuit.Nor:
		return pick, !want, true
	case circuit.Buf:
		return pick, want, true
	case circuit.Not:
		return pick, !want, true
	case circuit.Xor, circuit.Xnor:
		// If pick is the last unassigned input, choose the value that
		// makes the parity consistent; otherwise any value works.
		parity := false
		unassigned := 0
		for _, f := range n.Fanin {
			switch l.value[f] {
			case cnf.True:
				parity = !parity
			case cnf.Undef:
				unassigned++
			}
		}
		target := want
		if n.Type == circuit.Xnor {
			target = !target
		}
		if unassigned == 1 {
			return pick, parity != target, true
		}
		return pick, false, true
	}
	return circuit.NoNode, false, false
}

// Frontier returns the current unjustified nodes (for tests/inspection).
func (l *Layer) Frontier() []circuit.NodeID {
	var out []circuit.NodeID
	for id := range l.c.Nodes {
		if l.inFrontier[id] {
			out = append(out, circuit.NodeID(id))
		}
	}
	return out
}

// Value returns the layer's view of a node's current value.
func (l *Layer) Value(id circuit.NodeID) cnf.LBool { return l.value[id] }

// InputPattern extracts the (possibly partial) primary-input pattern from
// a solver model, ordered like c.Inputs.
func (l *Layer) InputPattern(m cnf.Assignment) []cnf.LBool {
	out := make([]cnf.LBool, len(l.c.Inputs))
	for i, id := range l.c.Inputs {
		out[i] = m.Value(l.enc.VarOf[id])
	}
	return out
}

// CountSpecified returns the number of non-X entries in a pattern.
func CountSpecified(p []cnf.LBool) int {
	n := 0
	for _, v := range p {
		if v != cnf.Undef {
			n++
		}
	}
	return n
}
