package csat

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/solver"
)

// TestTable2Thresholds reproduces the paper's Table 2 exactly.
func TestTable2Thresholds(t *testing.T) {
	cases := []struct {
		typ    circuit.GateType
		fanin  int
		u0, u1 int
	}{
		{circuit.And, 3, 1, 3},
		{circuit.Nand, 3, 3, 1},
		{circuit.Or, 3, 3, 1},
		{circuit.Nor, 3, 1, 3},
		{circuit.Xor, 2, 2, 2},
		{circuit.Xnor, 2, 2, 2},
		{circuit.Not, 1, 1, 1},
		{circuit.Buf, 1, 1, 1},
		{circuit.Input, 0, 0, 0},
	}
	for _, tc := range cases {
		u0, u1 := Thresholds(tc.typ, tc.fanin)
		if u0 != tc.u0 || u1 != tc.u1 {
			t.Errorf("%v/%d: u0=%d u1=%d, want %d %d", tc.typ, tc.fanin, u0, u1, tc.u0, tc.u1)
		}
		// The paper notes u0,u1 ∈ {1, |FI|} for simple gates.
		if tc.typ != circuit.Input && tc.fanin > 0 {
			if !(u0 == 1 || u0 == tc.fanin) || !(u1 == 1 || u1 == tc.fanin) {
				t.Errorf("%v: thresholds outside {1,|FI|}", tc.typ)
			}
		}
	}
}

// TestTable3Counters reproduces the paper's Table 3 exactly.
func TestTable3Counters(t *testing.T) {
	cases := []struct {
		typ    circuit.GateType
		w      bool
		d0, d1 int
	}{
		{circuit.And, false, 1, 0},
		{circuit.And, true, 0, 1},
		{circuit.Nand, false, 0, 1},
		{circuit.Nand, true, 1, 0},
		{circuit.Or, false, 1, 0},
		{circuit.Or, true, 0, 1},
		{circuit.Nor, false, 0, 1},
		{circuit.Nor, true, 1, 0},
		{circuit.Xor, false, 1, 1},
		{circuit.Xor, true, 1, 1},
		{circuit.Xnor, false, 1, 1},
		{circuit.Xnor, true, 1, 1},
		{circuit.Not, false, 0, 1},
		{circuit.Not, true, 1, 0},
		{circuit.Buf, false, 1, 0},
		{circuit.Buf, true, 0, 1},
	}
	for _, tc := range cases {
		d0, d1 := CounterDeltas(tc.typ, tc.w)
		if d0 != tc.d0 || d1 != tc.d1 {
			t.Errorf("%v w=%v: got (%d,%d), want (%d,%d)", tc.typ, tc.w, d0, d1, tc.d0, tc.d1)
		}
	}
}

func solveWithLayer(t *testing.T, c *circuit.Circuit, objective circuit.NodeID, value bool, opts Options) (*solver.Solver, *Layer, solver.Status) {
	t.Helper()
	f, enc := circuit.EncodeProperty(c, objective, value)
	s := solver.FromFormula(f, solver.Options{})
	l := Attach(c, enc, s, opts)
	return s, l, s.Solve()
}

func TestEarlyStopGivesPartialPattern(t *testing.T) {
	// A wide OR: justifying output=1 needs only one input; the classic
	// overspecification case for plain CNF SAT.
	c := circuit.New()
	ins := make([]circuit.NodeID, 8)
	for i := range ins {
		ins[i] = c.AddInput("")
	}
	g := c.AddGate(circuit.Or, "g", ins...)
	c.MarkOutput(g)

	s, l, st := solveWithLayer(t, c, g, true, Options{Backtrace: true})
	if st != solver.Sat {
		t.Fatalf("expected SAT, got %v", st)
	}
	if !s.PartialModel() {
		t.Fatal("expected a partial model via empty-frontier stop")
	}
	pat := l.InputPattern(s.Model())
	spec := CountSpecified(pat)
	if spec >= 8 {
		t.Fatalf("pattern fully specified (%d/8): overspecification not removed", spec)
	}
	// The partial pattern must still establish the objective under
	// three-valued simulation.
	vals := c.SimulateLBool(pat)
	if vals[g] != cnf.True {
		t.Fatalf("partial pattern does not establish objective: %v", pat)
	}
}

func TestLayerOnObjectiveZero(t *testing.T) {
	// AND of 6: output 0 justified by a single 0 input.
	c := circuit.New()
	ins := make([]circuit.NodeID, 6)
	for i := range ins {
		ins[i] = c.AddInput("")
	}
	g := c.AddGate(circuit.And, "g", ins...)
	c.MarkOutput(g)
	s, l, st := solveWithLayer(t, c, g, false, Options{Backtrace: true})
	if st != solver.Sat {
		t.Fatal("expected SAT")
	}
	pat := l.InputPattern(s.Model())
	if CountSpecified(pat) > 2 {
		t.Fatalf("AND=0 should need ~1 specified input, got %d: %v", CountSpecified(pat), pat)
	}
	if c.SimulateLBool(pat)[g] != cnf.False {
		t.Fatal("pattern does not establish objective")
	}
}

func TestUnsatObjectiveStillUnsat(t *testing.T) {
	// x AND NOT(x) = 1 is unsatisfiable; the layer must not break
	// completeness.
	c := circuit.New()
	a := c.AddInput("a")
	n := c.AddGate(circuit.Not, "n", a)
	g := c.AddGate(circuit.And, "g", a, n)
	c.MarkOutput(g)
	_, _, st := solveWithLayer(t, c, g, true, Options{Backtrace: true})
	if st != solver.Unsat {
		t.Fatalf("expected UNSAT, got %v", st)
	}
}

func TestXorRequiresAllInputs(t *testing.T) {
	c := circuit.New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(circuit.Xor, "g", a, b)
	c.MarkOutput(g)
	s, l, st := solveWithLayer(t, c, g, true, Options{Backtrace: true})
	if st != solver.Sat {
		t.Fatal("expected SAT")
	}
	pat := l.InputPattern(s.Model())
	if CountSpecified(pat) != 2 {
		t.Fatalf("XOR objective requires both inputs specified, got %v", pat)
	}
	if c.SimulateLBool(pat)[g] != cnf.True {
		t.Fatal("XOR pattern wrong")
	}
}

func TestFrontierLifecycle(t *testing.T) {
	c := circuit.New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(circuit.And, "g", a, b)
	c.MarkOutput(g)
	enc := circuit.Encode(c)
	s := solver.FromFormula(enc.F, solver.Options{})
	l := Attach(c, enc, s, Options{})
	// Nothing assigned: frontier empty.
	if len(l.Frontier()) != 0 {
		t.Fatalf("frontier should start empty: %v", l.Frontier())
	}
	// Simulate assignment of g=0 via OnAssign.
	l.OnAssign(cnf.NegLit(enc.VarOf[g]))
	if len(l.Frontier()) != 1 || l.Frontier()[0] != g {
		t.Fatalf("g should be unjustified: %v", l.Frontier())
	}
	// Assign a=0: justifies g=0.
	l.OnAssign(cnf.NegLit(enc.VarOf[a]))
	if len(l.Frontier()) != 0 {
		t.Fatalf("g should be justified: %v", l.Frontier())
	}
	// Retract a: unjustified again.
	l.OnUnassign(cnf.NegLit(enc.VarOf[a]))
	if len(l.Frontier()) != 1 {
		t.Fatal("retraction should re-open the frontier")
	}
	// Retract g.
	l.OnUnassign(cnf.NegLit(enc.VarOf[g]))
	if len(l.Frontier()) != 0 {
		t.Fatal("frontier should be empty after retracting g")
	}
}

func TestSideClausesBlockEarlyStop(t *testing.T) {
	// OR of 4 with objective 1; a side clause forces input 3 to be true.
	// Without side-clause awareness the layer could stop before
	// satisfying it.
	c := circuit.New()
	ins := make([]circuit.NodeID, 4)
	for i := range ins {
		ins[i] = c.AddInput("")
	}
	g := c.AddGate(circuit.Or, "g", ins...)
	c.MarkOutput(g)
	f, enc := circuit.EncodeProperty(c, g, true)
	side := cnf.Clause{cnf.PosLit(enc.VarOf[ins[3]])}
	f.AddClause(side.Clone())
	s := solver.FromFormula(f, solver.Options{})
	l := Attach(c, enc, s, Options{Backtrace: true})
	l.AddSideClause(side)
	if s.Solve() != solver.Sat {
		t.Fatal("expected SAT")
	}
	m := s.Model()
	if m.LitValue(side[0]) != cnf.True {
		t.Fatal("side clause violated by early stop")
	}
}

func TestPartialPatternsOnGeneratedCircuits(t *testing.T) {
	// Across circuit families: every SAT answer's partial pattern must
	// establish the objective under three-valued simulation (soundness
	// of the empty-frontier termination).
	families := map[string]*circuit.Circuit{
		"c17":   circuit.C17(),
		"adder": circuit.RippleCarryAdder(4),
		"mux":   circuit.MuxTree(3),
		"rand1": circuit.RandomDAG(6, 25, 3, 1),
		"rand2": circuit.RandomDAG(8, 40, 3, 2),
	}
	for name, c := range families {
		for _, out := range c.Outputs {
			for _, objective := range []bool{false, true} {
				f, enc := circuit.EncodeProperty(c, out, objective)
				s := solver.FromFormula(f, solver.Options{})
				l := Attach(c, enc, s, Options{Backtrace: true})
				st := s.Solve()
				// Cross-check with a plain solver.
				plain := solver.FromFormula(f, solver.Options{})
				if pst := plain.Solve(); pst != st {
					t.Fatalf("%s out=%v obj=%v: layer %v plain %v", name, out, objective, st, pst)
				}
				if st != solver.Sat {
					continue
				}
				pat := l.InputPattern(s.Model())
				vals := c.SimulateLBool(pat)
				want := cnf.FromBool(objective)
				if vals[out] != want {
					t.Fatalf("%s out=%v obj=%v: partial pattern fails (got %v)", name, out, objective, vals[out])
				}
			}
		}
	}
}

func TestBacktraceSuggestsInputs(t *testing.T) {
	c := circuit.New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.Or, "g2", g1, d)
	c.MarkOutput(g2)
	enc := circuit.Encode(c)
	s := solver.FromFormula(enc.F, solver.Options{})
	l := Attach(c, enc, s, Options{Backtrace: true})
	// Assign g2=1 manually: frontier = {g2}; backtrace should suggest
	// the first unassigned fanin path: g1 → a with value true.
	l.OnAssign(cnf.PosLit(enc.VarOf[g2]))
	sug := l.Suggest()
	if sug == cnf.LitUndef {
		t.Fatal("expected a suggestion")
	}
	if sug.Var() != enc.VarOf[a] || sug.IsNeg() {
		t.Fatalf("expected suggestion a=1, got %v", sug)
	}
}

func TestSuggestDisabledWithoutOption(t *testing.T) {
	c := circuit.C17()
	enc := circuit.Encode(c)
	s := solver.FromFormula(enc.F, solver.Options{})
	l := Attach(c, enc, s, Options{})
	l.OnAssign(cnf.PosLit(enc.VarOf[c.Outputs[0]]))
	if l.Suggest() != cnf.LitUndef {
		t.Fatal("Suggest should be silent without Backtrace option")
	}
}

func TestMultipleBacktracing(t *testing.T) {
	// Two frontier nodes both needing input "a": multiple backtracing
	// should aggregate the votes and still yield sound results.
	c := circuit.New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.And, "g2", a, d)
	top := c.AddGate(circuit.And, "top", g1, g2)
	c.MarkOutput(top)
	s, l, st := solveWithLayer(t, c, top, true, Options{Multiple: true})
	if st != solver.Sat {
		t.Fatal("expected SAT")
	}
	pat := l.InputPattern(s.Model())
	if c.SimulateLBool(pat)[top] != cnf.True {
		t.Fatal("pattern fails objective")
	}
}

func TestMultipleBacktracingAgreesWithSimple(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := circuit.RandomDAG(6, 25, 3, seed)
		for _, out := range c.Outputs {
			for _, objective := range []bool{false, true} {
				f1, e1 := circuit.EncodeProperty(c, out, objective)
				s1 := solver.FromFormula(f1, solver.Options{})
				Attach(c, e1, s1, Options{Backtrace: true})
				f2, e2 := circuit.EncodeProperty(c, out, objective)
				s2 := solver.FromFormula(f2, solver.Options{})
				l2 := Attach(c, e2, s2, Options{Multiple: true})
				st1, st2 := s1.Solve(), s2.Solve()
				if st1 != st2 {
					t.Fatalf("seed %d: simple %v vs multiple %v", seed, st1, st2)
				}
				if st2 == solver.Sat {
					pat := l2.InputPattern(s2.Model())
					want := cnf.FromBool(objective)
					if c.SimulateLBool(pat)[out] != want {
						t.Fatalf("seed %d: multiple-backtrace pattern fails", seed)
					}
				}
			}
		}
	}
}
