package localsearch

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
)

func TestFindsModelsOnEasyInstances(t *testing.T) {
	for _, alg := range []Algorithm{GSAT, WalkSAT} {
		found := 0
		for seed := int64(0); seed < 20; seed++ {
			f := gen.RandomKSAT(12, 30, 3, seed) // low ratio: almost surely SAT
			want, _ := cnf.BruteForce(f)
			if !want {
				continue
			}
			res := Solve(f, Options{Algorithm: alg, Seed: seed, MaxFlips: 2000, MaxTries: 5})
			if res.Sat {
				if !res.Model.Satisfies(f) {
					t.Fatalf("alg %v seed %d: reported model does not satisfy", alg, seed)
				}
				found++
			}
		}
		if found < 15 {
			t.Fatalf("alg %v found only %d/≈20 easy models", alg, found)
		}
	}
}

func TestNeverClaimsSatOnUnsat(t *testing.T) {
	f := gen.Pigeonhole(3)
	for _, alg := range []Algorithm{GSAT, WalkSAT} {
		res := Solve(f, Options{Algorithm: alg, Seed: 1, MaxFlips: 500, MaxTries: 3})
		if res.Sat {
			t.Fatalf("alg %v claimed SAT on PHP(3)", alg)
		}
		if res.Flips == 0 {
			t.Fatalf("alg %v did no work", alg)
		}
	}
}

func TestEmptyClauseHandled(t *testing.T) {
	f := cnf.New(1)
	f.AddClause(cnf.Clause{})
	if Solve(f, Options{}).Sat {
		t.Fatal("empty clause must never be satisfied")
	}
}

func TestIncrementalCountsConsistent(t *testing.T) {
	// White-box: after many flips the numTrue counters must match a
	// recount from scratch.
	f := gen.RandomKSAT(10, 42, 3, 9)
	st := &state{
		f:        f,
		assign:   make([]bool, f.NumVars()+1),
		occ:      make([][]int, 2*(f.NumVars()+1)),
		numTrue:  make([]int, f.NumClauses()),
		unsatPos: make([]int, f.NumClauses()),
	}
	for i, c := range f.Clauses {
		for _, l := range c {
			st.occ[l.Index()] = append(st.occ[l.Index()], i)
		}
	}
	st.rng = rand.New(rand.NewSource(123))
	st.randomInit()
	for i := 0; i < 200; i++ {
		v := cnf.Var(i%f.NumVars() + 1)
		st.flip(v)
	}
	for i, c := range f.Clauses {
		n := 0
		for _, l := range c {
			if st.litTrue(l) {
				n++
			}
		}
		if n != st.numTrue[i] {
			t.Fatalf("clause %d: counter %d, recount %d", i, st.numTrue[i], n)
		}
		inUnsat := st.unsatPos[i] >= 0
		if (n == 0) != inUnsat {
			t.Fatalf("clause %d: unsat-list membership wrong", i)
		}
	}
}

// TestStopHook: a Stop callback returning true abandons the search at
// the next poll instead of running the full flip budget.
func TestStopHook(t *testing.T) {
	f := gen.Pigeonhole(7) // UNSAT: local search would burn the whole budget
	polls := 0
	res := Solve(f, Options{
		Algorithm: WalkSAT,
		MaxFlips:  1 << 20,
		MaxTries:  100,
		Stop:      func() bool { polls++; return polls > 2 },
	})
	if res.Sat {
		t.Fatal("impossible: PHP(7) is UNSAT")
	}
	if res.Flips >= 1<<20 {
		t.Fatalf("search ran %d flips past the stop request", res.Flips)
	}
	if polls < 3 {
		t.Fatalf("stop hook polled only %d times", polls)
	}
}
