// Package localsearch implements the GSAT and WalkSAT local search
// procedures [paper ref 32]. As the paper notes (§4), local search cannot
// prove unsatisfiability and "only backtrack search has proven useful for
// solving instances of SAT from EDA applications, in particular for
// applications where the objective is to prove unsatisfiability"; these
// solvers exist as the comparison baseline for that claim (experiment E14).
package localsearch

import (
	"math/rand"

	"repro/internal/cnf"
)

// Algorithm selects the local-search variant.
type Algorithm int

// Supported algorithms.
const (
	// GSAT flips the variable giving the best decrease in unsatisfied
	// clauses, ties broken at random.
	GSAT Algorithm = iota
	// WalkSAT picks a random unsatisfied clause, then flips either a
	// zero-break variable or (with probability Noise) a random variable
	// of the clause, else the minimum-break variable.
	WalkSAT
)

// Options configures a local search run.
type Options struct {
	Algorithm Algorithm
	MaxFlips  int     // flips per try (0 = 10000)
	MaxTries  int     // restarts (0 = 10)
	Noise     float64 // WalkSAT noise probability (0 = 0.5)
	Seed      int64
	// Stop, when non-nil, is polled periodically (every 1024 flips);
	// returning true abandons the search immediately with Sat=false.
	// This is how a wall-clock deadline reaches the incomplete engine.
	Stop func() bool
}

// Result reports a local search outcome. Local search is incomplete:
// Sat=false only means no model was found within the budget.
type Result struct {
	Sat   bool
	Model cnf.Assignment
	Flips int64
	Tries int
}

type state struct {
	f        *cnf.Formula
	assign   []bool
	occ      [][]int // clause indices per literal index
	numTrue  []int   // per clause: count of true literals
	unsat    []int   // indices of unsatisfied clauses
	unsatPos []int   // position of clause in unsat (-1 if satisfied)
	rng      *rand.Rand
}

// Solve runs local search on f.
func Solve(f *cnf.Formula, opts Options) Result {
	if opts.MaxFlips == 0 {
		opts.MaxFlips = 10000
	}
	if opts.MaxTries == 0 {
		opts.MaxTries = 10
	}
	if opts.Noise == 0 {
		opts.Noise = 0.5
	}
	for _, c := range f.Clauses {
		if len(c) == 0 {
			return Result{}
		}
	}
	st := &state{
		f:        f,
		assign:   make([]bool, f.NumVars()+1),
		occ:      make([][]int, 2*(f.NumVars()+1)),
		numTrue:  make([]int, f.NumClauses()),
		unsatPos: make([]int, f.NumClauses()),
		rng:      rand.New(rand.NewSource(opts.Seed)),
	}
	for i, c := range f.Clauses {
		for _, l := range c {
			st.occ[l.Index()] = append(st.occ[l.Index()], i)
		}
	}
	var res Result
	for try := 0; try < opts.MaxTries; try++ {
		res.Tries = try + 1
		st.randomInit()
		for flip := 0; flip < opts.MaxFlips; flip++ {
			if flip&1023 == 0 && opts.Stop != nil && opts.Stop() {
				return res
			}
			if len(st.unsat) == 0 {
				res.Sat = true
				res.Model = st.model()
				return res
			}
			var v cnf.Var
			if opts.Algorithm == GSAT {
				v = st.gsatPick()
			} else {
				v = st.walksatPick(opts.Noise)
			}
			st.flip(v)
			res.Flips++
		}
	}
	if len(st.unsat) == 0 {
		res.Sat = true
		res.Model = st.model()
	}
	return res
}

func (s *state) model() cnf.Assignment {
	m := cnf.NewAssignment(s.f.NumVars())
	for v := 1; v <= s.f.NumVars(); v++ {
		m[v] = cnf.FromBool(s.assign[v])
	}
	return m
}

func (s *state) litTrue(l cnf.Lit) bool {
	return s.assign[l.Var()] != l.IsNeg()
}

func (s *state) randomInit() {
	for v := 1; v <= s.f.NumVars(); v++ {
		s.assign[v] = s.rng.Intn(2) == 0
	}
	s.unsat = s.unsat[:0]
	for i, c := range s.f.Clauses {
		n := 0
		for _, l := range c {
			if s.litTrue(l) {
				n++
			}
		}
		s.numTrue[i] = n
		if n == 0 {
			s.unsatPos[i] = len(s.unsat)
			s.unsat = append(s.unsat, i)
		} else {
			s.unsatPos[i] = -1
		}
	}
}

func (s *state) markUnsat(ci int) {
	if s.unsatPos[ci] >= 0 {
		return
	}
	s.unsatPos[ci] = len(s.unsat)
	s.unsat = append(s.unsat, ci)
}

func (s *state) markSat(ci int) {
	pos := s.unsatPos[ci]
	if pos < 0 {
		return
	}
	last := s.unsat[len(s.unsat)-1]
	s.unsat[pos] = last
	s.unsatPos[last] = pos
	s.unsat = s.unsat[:len(s.unsat)-1]
	s.unsatPos[ci] = -1
}

// flip toggles v and incrementally updates clause truth counts.
func (s *state) flip(v cnf.Var) {
	becameTrue := cnf.PosLit(v)
	becameFalse := cnf.NegLit(v)
	if s.assign[v] {
		becameTrue, becameFalse = becameFalse, becameTrue
	}
	s.assign[v] = !s.assign[v]
	for _, ci := range s.occ[becameTrue.Index()] {
		s.numTrue[ci]++
		if s.numTrue[ci] == 1 {
			s.markSat(ci)
		}
	}
	for _, ci := range s.occ[becameFalse.Index()] {
		s.numTrue[ci]--
		if s.numTrue[ci] == 0 {
			s.markUnsat(ci)
		}
	}
}

// breakCount returns how many currently satisfied clauses would become
// unsatisfied by flipping v.
func (s *state) breakCount(v cnf.Var) int {
	lit := cnf.PosLit(v)
	if !s.assign[v] {
		lit = cnf.NegLit(v)
	}
	// lit is currently true; flipping falsifies clauses where it is the
	// only true literal.
	n := 0
	for _, ci := range s.occ[lit.Index()] {
		if s.numTrue[ci] == 1 {
			n++
		}
	}
	return n
}

// makeCount returns how many currently unsatisfied clauses would become
// satisfied by flipping v.
func (s *state) makeCount(v cnf.Var) int {
	lit := cnf.NegLit(v)
	if !s.assign[v] {
		lit = cnf.PosLit(v)
	}
	// lit is currently false and would become true.
	n := 0
	for _, ci := range s.occ[lit.Index()] {
		if s.numTrue[ci] == 0 {
			n++
		}
	}
	return n
}

func (s *state) gsatPick() cnf.Var {
	bestScore := -1 << 30
	var best []cnf.Var
	for v := cnf.Var(1); int(v) <= s.f.NumVars(); v++ {
		score := s.makeCount(v) - s.breakCount(v)
		if score > bestScore {
			bestScore = score
			best = best[:0]
		}
		if score == bestScore {
			best = append(best, v)
		}
	}
	return best[s.rng.Intn(len(best))]
}

func (s *state) walksatPick(noise float64) cnf.Var {
	c := s.f.Clauses[s.unsat[s.rng.Intn(len(s.unsat))]]
	// Zero-break variable if one exists.
	bestBreak := 1 << 30
	var best []cnf.Var
	for _, l := range c {
		b := s.breakCount(l.Var())
		if b < bestBreak {
			bestBreak = b
			best = best[:0]
		}
		if b == bestBreak {
			best = append(best, l.Var())
		}
	}
	if bestBreak == 0 {
		return best[s.rng.Intn(len(best))]
	}
	if s.rng.Float64() < noise {
		return c[s.rng.Intn(len(c))].Var()
	}
	return best[s.rng.Intn(len(best))]
}
