// Package reclearn implements recursive learning on CNF formulas
// (paper §4.2, Figure 4; [Marques-Silva & Glass]).
//
// For any clause ω in a CNF formula φ to be satisfied, at least one of
// its yet-unassigned literals must be assigned value 1. Recursive
// learning studies the different ways of satisfying a selected clause and
// identifies common implied assignments, which are then deemed necessary
// for the clause — and hence the formula — to be satisfiable. Each
// identified assignment is recorded together with a clause that explains
// why it is necessary: a new implicate of the Boolean function associated
// with the CNF formula. Recording implicates (rather than bare necessary
// assignments, as circuit-based recursive learning does) prevents the
// repeated derivation of the same assignments during subsequent search.
package reclearn

import (
	"repro/internal/cnf"
	"repro/internal/preprocess"
)

// Options configures recursive learning.
type Options struct {
	// MaxDepth is the recursion depth (0 = 1). Depth 1 examines single
	// case splits; higher depths nest splits inside each case.
	MaxDepth int
	// MaxWidth restricts case splitting to clauses with at most this
	// many unassigned literals (0 = 3, the practical default; large
	// widths multiply the number of cases).
	MaxWidth int
	// MaxRounds bounds the outer fixpoint loop (0 = 10).
	MaxRounds int
}

// Stats counts learning effort.
type Stats struct {
	Splits     int // case splits performed
	Cases      int // individual cases propagated
	Rounds     int
	Implicates int // clauses recorded
	Necessary  int // necessary assignments identified
}

// Result is the outcome of recursive learning.
type Result struct {
	// Unsat is true if learning proved the formula (with assumptions)
	// unsatisfiable: some clause cannot be satisfied in any way.
	Unsat bool
	// Necessary holds the assignments derived at the outermost level, in
	// derivation order.
	Necessary []cnf.Lit
	// Implicates holds the recorded explanation clauses. Each clause has
	// the form (x ∨ ¬c1 ∨ … ∨ ¬ck) where x is the necessary assignment
	// and c1..ck the context assignments it depends on (Figure 4:
	// (z=1) ∧ (u=0) ⇒ (x=1) recorded as (¬z + u + x)).
	Implicates []cnf.Clause
	Stats      Stats
}

type engine struct {
	f       *cnf.Formula
	p       *preprocess.Propagator
	opts    Options
	context []cnf.Lit // assumption stack (outer-to-inner)
	res     *Result
}

// Learn runs recursive learning on f under the given context assumptions.
// The assumptions become the antecedent of every recorded implicate (pass
// none to derive unit implicates usable as a preprocessing step).
func Learn(f *cnf.Formula, assumptions []cnf.Lit, opts Options) *Result {
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 1
	}
	if opts.MaxWidth == 0 {
		opts.MaxWidth = 3
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 10
	}
	e := &engine{f: f, p: preprocess.NewPropagator(f), opts: opts, res: &Result{}}

	// Establish the initial context: formula units plus assumptions.
	for _, c := range f.Clauses {
		if len(c) == 0 {
			e.res.Unsat = true
			return e.res
		}
		if len(c) == 1 {
			if !e.p.Assume(c[0]) {
				e.res.Unsat = true
				return e.res
			}
		}
	}
	for _, a := range assumptions {
		if !e.p.Assume(a) {
			e.res.Unsat = true
			return e.res
		}
		e.context = append(e.context, a)
	}

	for round := 0; round < opts.MaxRounds; round++ {
		e.res.Stats.Rounds = round + 1
		changed, conflict := e.pass(opts.MaxDepth, true)
		if conflict {
			e.res.Unsat = true
			return e.res
		}
		if !changed {
			break
		}
	}
	return e.res
}

// pass performs one sweep over all clauses at the current propagator
// state. record controls whether implicates/necessary assignments are
// published into the result (true only at the outermost context).
// It reports whether new assignments were derived and whether the
// formula is contradictory under the current context.
func (e *engine) pass(depth int, record bool) (changed, conflict bool) {
	for _, w := range e.f.Clauses {
		sat, unassigned := e.clauseState(w)
		if sat || len(unassigned) <= 1 || len(unassigned) > e.opts.MaxWidth {
			// BCP covers the ≤1 case; wide clauses are skipped for cost.
			continue
		}
		e.res.Stats.Splits++

		counts := make(map[cnf.Lit]int)
		cases := 0
		for _, l := range unassigned {
			if e.p.LitValue(l) != cnf.Undef {
				continue // an earlier case's learning may have assigned it
			}
			mark := e.p.Mark()
			ok := e.p.Assume(l)
			if ok && depth > 1 {
				// Recursive step: derive deeper implications within the
				// case before taking the intersection.
				e.context = append(e.context, l)
				for {
					ch, cf := e.pass(depth-1, false)
					if cf {
						ok = false
						break
					}
					if !ch {
						break
					}
				}
				e.context = e.context[:len(e.context)-1]
			}
			if ok {
				e.res.Stats.Cases++
				cases++
				for _, t := range e.p.Trail(mark) {
					counts[t]++
				}
			}
			e.p.Undo(mark)
		}
		if cases == 0 {
			// No way to satisfy w under the current context.
			return changed, true
		}
		// Assignments common to every consistent way of satisfying w are
		// necessary (§4.2).
		for l, n := range counts {
			if n != cases || e.p.LitValue(l) != cnf.Undef {
				continue
			}
			if record {
				e.recordImplicate(l)
			}
			if !e.p.Assume(l) {
				return changed, true
			}
			changed = true
		}
	}
	return changed, false
}

// recordImplicate publishes the necessary assignment l with its
// explanation clause (l ∨ ¬context…).
func (e *engine) recordImplicate(l cnf.Lit) {
	c := make(cnf.Clause, 0, len(e.context)+1)
	c = append(c, l)
	for _, a := range e.context {
		c = append(c, a.Not())
	}
	e.res.Implicates = append(e.res.Implicates, c)
	e.res.Necessary = append(e.res.Necessary, l)
	e.res.Stats.Implicates++
	e.res.Stats.Necessary++
}

// clauseState returns whether w is satisfied and its unassigned literals.
func (e *engine) clauseState(w cnf.Clause) (bool, []cnf.Lit) {
	var unassigned []cnf.Lit
	for _, l := range w {
		switch e.p.LitValue(l) {
		case cnf.True:
			return true, nil
		case cnf.Undef:
			unassigned = append(unassigned, l)
		}
	}
	return false, unassigned
}

// Strengthen appends the implicates learned from f (no assumptions) to a
// copy of f and returns it — the preprocessing use of recursive learning.
func Strengthen(f *cnf.Formula, opts Options) (*cnf.Formula, *Result) {
	res := Learn(f, nil, opts)
	out := f.Clone()
	if res.Unsat {
		out.AddClause(cnf.Clause{})
		return out, res
	}
	for _, c := range res.Implicates {
		out.AddClause(c.Clone())
	}
	return out, res
}
