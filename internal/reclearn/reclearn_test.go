package reclearn

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
)

// TestFigure4 reproduces the paper's Figure 4 exactly: with
// ω1 = (u + x + ¬w), ω2 = (x + ¬y), ω3 = (w + y + ¬z) and the
// assignments z=1, u=0, satisfying ω3 requires w=1 or y=1; both cases
// imply x=1, so x=1 is necessary and the recorded explanation is the
// clause (¬z + u + x).
func TestFigure4(t *testing.T) {
	// Variables: u=1, w=2, x=3, y=4, z=5.
	u, w, x, y, z := cnf.Var(1), cnf.Var(2), cnf.Var(3), cnf.Var(4), cnf.Var(5)
	f := cnf.New(5)
	f.Add(cnf.PosLit(u), cnf.PosLit(x), cnf.NegLit(w)) // ω1
	f.Add(cnf.PosLit(x), cnf.NegLit(y))                // ω2
	f.Add(cnf.PosLit(w), cnf.PosLit(y), cnf.NegLit(z)) // ω3

	res := Learn(f, []cnf.Lit{cnf.PosLit(z), cnf.NegLit(u)}, Options{MaxDepth: 1})
	if res.Unsat {
		t.Fatal("formula is satisfiable under the context")
	}
	foundX := false
	for _, l := range res.Necessary {
		if l == cnf.PosLit(x) {
			foundX = true
		}
	}
	if !foundX {
		t.Fatalf("x=1 not identified as necessary; got %v", res.Necessary)
	}
	// The explanation clause must be exactly {x, ¬z, u} as a set.
	found := false
	for _, c := range res.Implicates {
		if len(c) == 3 && c.Has(cnf.PosLit(x)) && c.Has(cnf.NegLit(z)) && c.Has(cnf.PosLit(u)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("explanation (¬z + u + x) not recorded; got %v", res.Implicates)
	}
}

// Implicates must be logical consequences of the original formula.
func TestImplicatesAreImplicates(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		f := gen.RandomKSAT(8, 25, 3, seed)
		res := Learn(f, nil, Options{MaxDepth: 2})
		if res.Unsat {
			if sat, _ := cnf.BruteForce(f); sat {
				t.Fatalf("seed %d: learning claimed UNSAT on satisfiable formula", seed)
			}
			continue
		}
		for _, c := range res.Implicates {
			g := f.Clone()
			for _, l := range c {
				g.AddUnit(l.Not())
			}
			if sat, _ := cnf.BruteForce(g); sat {
				t.Fatalf("seed %d: %v is not an implicate", seed, c)
			}
		}
	}
}

// Strengthening preserves satisfiability (equivalence, in fact).
func TestStrengthenEquisatisfiable(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		f := gen.RandomKSAT(7, 26, 3, seed)
		want, _ := cnf.BruteForce(f)
		g, res := Strengthen(f, Options{MaxDepth: 2})
		got, _ := cnf.BruteForce(g)
		if res.Unsat && want {
			t.Fatalf("seed %d: false UNSAT", seed)
		}
		if !res.Unsat && got != want {
			t.Fatalf("seed %d: strengthened formula changed satisfiability", seed)
		}
	}
}

func TestDepth2FindsMore(t *testing.T) {
	// A formula where depth-1 learning on any single clause finds
	// nothing, but depth-2 (nested case analysis) derives a necessary
	// assignment. Construct: satisfying (a ∨ b) in both cases implies g
	// only after a second-level split.
	//   (a ∨ b ∨ b2); a → (c ∨ d); c → g; d → g; b → g; b2 → g.
	// Depth 1 on (a∨b∨b2): case a implies nothing by BCP alone, so the
	// intersection is empty. Depth 2 splits (¬a∨c∨d) inside case a,
	// finds g in both sub-cases, and hence derives g overall.
	a, b, c, d, g, b2 := 1, 2, 3, 4, 5, 6
	f := cnf.New(6)
	f.AddDIMACS(a, b, b2) // target clause
	f.AddDIMACS(-a, c, d) // a → c ∨ d
	f.AddDIMACS(-c, g)    // c → g
	f.AddDIMACS(-d, g)    // d → g
	f.AddDIMACS(-b, g)    // b → g
	f.AddDIMACS(-b2, g)   // b2 → g
	res1 := Learn(f, nil, Options{MaxDepth: 1})
	res2 := Learn(f, nil, Options{MaxDepth: 2})
	has := func(res *Result, l cnf.Lit) bool {
		for _, x := range res.Necessary {
			if x == l {
				return true
			}
		}
		return false
	}
	if has(res1, cnf.PosLit(cnf.Var(g))) {
		t.Fatal("depth 1 unexpectedly derived g")
	}
	if !has(res2, cnf.PosLit(cnf.Var(g))) {
		t.Fatalf("depth 2 failed to derive g; necessary=%v", res2.Necessary)
	}
}

func TestUnsatDetection(t *testing.T) {
	// Clause (a ∨ b) where both a and b immediately conflict.
	f := cnf.New(3)
	f.AddDIMACS(1, 2)
	f.AddDIMACS(-1, 3)
	f.AddDIMACS(-1, -3)
	f.AddDIMACS(-2, 3)
	f.AddDIMACS(-2, -3)
	res := Learn(f, nil, Options{MaxDepth: 1})
	if !res.Unsat {
		t.Fatal("recursive learning should prove UNSAT")
	}
	if sat, _ := cnf.BruteForce(f); sat {
		t.Fatal("test formula is actually satisfiable")
	}
}

func TestUnsatWithContext(t *testing.T) {
	f := cnf.New(2)
	f.AddDIMACS(-1, 2)
	f.AddDIMACS(-1, -2)
	res := Learn(f, []cnf.Lit{cnf.PosLit(1)}, Options{})
	if !res.Unsat {
		t.Fatal("context x1=1 is contradictory")
	}
}

func TestEmptyClause(t *testing.T) {
	f := cnf.New(1)
	f.AddClause(cnf.Clause{})
	if !Learn(f, nil, Options{}).Unsat {
		t.Fatal("empty clause must be UNSAT")
	}
}

func TestNoFalseNecessaries(t *testing.T) {
	// Every necessary assignment must hold in every model of the formula.
	for seed := int64(100); seed < 120; seed++ {
		f := gen.RandomKSAT(6, 18, 3, seed)
		res := Learn(f, nil, Options{MaxDepth: 2, MaxWidth: 3})
		if res.Unsat {
			continue
		}
		for _, l := range res.Necessary {
			g := f.Clone()
			g.AddUnit(l.Not())
			if sat, _ := cnf.BruteForce(g); sat {
				t.Fatalf("seed %d: %v claimed necessary but formula has a model violating it", seed, l)
			}
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	f := gen.RandomKSAT(8, 30, 3, 5)
	res := Learn(f, nil, Options{MaxDepth: 2})
	if res.Stats.Splits == 0 || res.Stats.Cases == 0 {
		t.Fatalf("no work recorded: %+v", res.Stats)
	}
}
