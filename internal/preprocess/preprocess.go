// Package preprocess implements the Preprocess() stage of the paper's
// generic SAT algorithm (§4.1, Figure 2): satisfiability-preserving
// simplifications applied before search. It provides unit propagation,
// pure-literal elimination, clause subsumption, self-subsuming
// resolution, failed-literal probing, and the equivalency reasoning of
// §6 (detecting (x + ¬y)(¬x + y) pairs and eliminating variables by
// substitution). Every transform is model-reconstructible via
// ExtendModel.
package preprocess

import "repro/internal/cnf"

// Options selects which simplifications run. The zero value runs only
// unit propagation.
type Options struct {
	PureLiterals    bool
	Subsumption     bool
	SelfSubsumption bool
	FailedLiterals  bool
	Equivalences    bool
	// VarElim enables bounded variable elimination (NiVER-style):
	// clauses of an eliminated variable are replaced by their
	// resolvents when that does not grow the formula.
	VarElim bool
	// MaxRounds bounds the simplification fixpoint loop: each round
	// runs every enabled transform once, and the loop stops early the
	// first round nothing changes. 0 selects DefaultMaxRounds. Negative
	// values are not special-cased: the loop then runs zero rounds and
	// Simplify returns the normalized input untouched.
	MaxRounds int
}

// DefaultMaxRounds is the fixpoint-loop bound Simplify applies when
// Options.MaxRounds is 0. Ten rounds is far past where real instances
// stop changing (most converge in 2–4); the bound exists so a
// pathological subsume/strengthen/eliminate interplay cannot loop the
// preprocessor instead of the solver.
const DefaultMaxRounds = 10

// All returns options with every simplification enabled.
func All() Options {
	return Options{
		PureLiterals:    true,
		Subsumption:     true,
		SelfSubsumption: true,
		FailedLiterals:  true,
		Equivalences:    true,
		VarElim:         true,
	}
}

// Stats counts the work done by each simplification.
type Stats struct {
	Rounds          int
	UnitsFixed      int
	PureFixed       int
	ClausesSubsumed int
	LitsStrength    int // literals removed by self-subsumption
	FailedLiterals  int
	VarsSubstituted int // variables eliminated by equivalency reasoning
	VarsEliminated  int // variables removed by bounded elimination
}

// Result is the outcome of preprocessing.
type Result struct {
	// Formula is the simplified formula (same variable space as input;
	// eliminated variables simply no longer occur).
	Formula *cnf.Formula
	// Status is Sat/Unsat if preprocessing fully decided the instance,
	// else Unknown (0).
	Decided cnf.LBool
	// Units holds the literals fixed at top level.
	Units []cnf.Lit
	// Subst maps a substituted variable to the literal it equals.
	Subst map[cnf.Var]cnf.Lit
	// Pure holds pure-literal assignments (safe to assert, not implied).
	Pure []cnf.Lit
	// eliminated records bounded-variable-elimination steps for model
	// reconstruction.
	eliminated []elimRecord
	// undoLog records every model-affecting transform in application
	// order; ExtendModel replays it backwards so reconstructions see
	// exactly the variable values they depended on.
	undoLog []undoStep
	Stats   Stats
}

type undoKind int8

const (
	undoUnit undoKind = iota
	undoPure
	undoSubst
	undoElim
)

type undoStep struct {
	kind    undoKind
	lit     cnf.Lit      // undoUnit / undoPure
	v       cnf.Var      // undoSubst / undoElim
	rep     cnf.Lit      // undoSubst
	clauses []cnf.Clause // undoElim
}

// Simplify applies the selected transforms to fixpoint and returns the
// result. The input formula is not modified.
func Simplify(f *cnf.Formula, opts Options) *Result {
	if opts.MaxRounds == 0 {
		opts.MaxRounds = DefaultMaxRounds
	}
	res := &Result{Subst: make(map[cnf.Var]cnf.Lit)}
	work := normalizeClauses(f)
	st := &res.Stats

	for round := 0; round < opts.MaxRounds; round++ {
		st.Rounds = round + 1
		changed := false

		w, ok, units := propagateUnits(work, st)
		if !ok {
			res.Formula = cnf.New(f.NumVars())
			res.Formula.AddClause(cnf.Clause{})
			res.Decided = cnf.False
			return res
		}
		if len(units) > 0 {
			changed = true
			res.Units = append(res.Units, units...)
			for _, l := range units {
				res.undoLog = append(res.undoLog, undoStep{kind: undoUnit, lit: l})
			}
		}
		work = w

		if opts.PureLiterals {
			w, pure := pureLiterals(work, f.NumVars(), res, st)
			if len(pure) > 0 {
				changed = true
				res.Pure = append(res.Pure, pure...)
				for _, l := range pure {
					res.undoLog = append(res.undoLog, undoStep{kind: undoPure, lit: l})
				}
			}
			work = w
		}

		if opts.FailedLiterals {
			failed, conflict := failedLiterals(work, f.NumVars())
			if conflict {
				res.Formula = cnf.New(f.NumVars())
				res.Formula.AddClause(cnf.Clause{})
				res.Decided = cnf.False
				return res
			}
			if len(failed) > 0 {
				changed = true
				st.FailedLiterals += len(failed)
				for _, l := range failed {
					work = append(work, cnf.Clause{l})
				}
				continue // re-run unit propagation first
			}
		}

		if opts.Equivalences {
			var unsat bool
			var n int
			before := make(map[cnf.Var]bool, len(res.Subst))
			for v := range res.Subst {
				before[v] = true
			}
			work, n, unsat = substituteEquivalences(work, f.NumVars(), res.Subst)
			for v, rep := range res.Subst {
				if !before[v] {
					res.undoLog = append(res.undoLog, undoStep{kind: undoSubst, v: v, rep: rep})
				}
			}
			if unsat {
				res.Formula = cnf.New(f.NumVars())
				res.Formula.AddClause(cnf.Clause{})
				res.Decided = cnf.False
				return res
			}
			if n > 0 {
				changed = true
				st.VarsSubstituted += n
			}
		}

		if opts.Subsumption || opts.SelfSubsumption {
			var nSub, nStr int
			work, nSub, nStr = subsumptionPass(work, f.NumVars(), opts.SelfSubsumption)
			st.ClausesSubsumed += nSub
			st.LitsStrength += nStr
			if nSub > 0 || nStr > 0 {
				changed = true
			}
		}

		if opts.VarElim {
			var n int
			prev := len(res.eliminated)
			work, n = eliminateVariables(work, f.NumVars(), &res.eliminated, 100, 0)
			for _, rec := range res.eliminated[prev:] {
				res.undoLog = append(res.undoLog, undoStep{kind: undoElim, v: rec.v, clauses: rec.clauses})
			}
			if n > 0 {
				st.VarsEliminated += n
				changed = true
			}
		}

		if !changed {
			break
		}
	}

	out := cnf.New(f.NumVars())
	for _, c := range work {
		out.AddClause(c)
	}
	for _, l := range res.Units {
		out.AddClause(cnf.Clause{l})
	}
	res.Formula = out
	if len(work) == 0 {
		res.Decided = cnf.True
	}
	return res
}

// ExtendModel lifts a model of the simplified formula to a full model of
// the original formula by replaying the transform log backwards: each
// unit/pure assertion, equivalence substitution and variable elimination
// is undone in reverse application order, so every reconstruction sees
// exactly the variable values it depended on when it was applied.
// Unconstrained variables default to false.
func (r *Result) ExtendModel(m cnf.Assignment) cnf.Assignment {
	out := m.Clone()
	// Variables produced by some undo step must stay open until their
	// step runs; every other undefined variable is a free survivor.
	produced := make(map[cnf.Var]bool, len(r.undoLog))
	for _, st := range r.undoLog {
		switch st.kind {
		case undoUnit, undoPure:
			produced[st.lit.Var()] = true
		default:
			produced[st.v] = true
		}
	}
	for v := 1; v < len(out); v++ {
		if out[v] == cnf.Undef && !produced[cnf.Var(v)] {
			out[v] = cnf.False
		}
	}
	for i := len(r.undoLog) - 1; i >= 0; i-- {
		st := r.undoLog[i]
		switch st.kind {
		case undoUnit, undoPure:
			out.Assign(st.lit)
		case undoSubst:
			val := out.LitValue(st.rep)
			if val == cnf.Undef {
				val = cnf.False
			}
			out[st.v] = val
		case undoElim:
			reconstructEliminated(out, []elimRecord{{v: st.v, clauses: st.clauses}})
		}
	}
	for v := 1; v < len(out); v++ {
		if out[v] == cnf.Undef {
			out[v] = cnf.False
		}
	}
	return out
}

// normalizeClauses copies f's clauses, dropping tautologies and
// normalizing duplicates.
func normalizeClauses(f *cnf.Formula) []cnf.Clause {
	var out []cnf.Clause
	seen := make(map[string]bool)
	for _, c := range f.Clauses {
		n, taut := c.Normalize()
		if taut {
			continue
		}
		key := n.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, n)
	}
	return out
}

// propagateUnits applies the unit-clause rule to fixpoint on the clause
// list. It returns the reduced list, false on conflict, and the units.
func propagateUnits(clauses []cnf.Clause, st *Stats) ([]cnf.Clause, bool, []cnf.Lit) {
	assign := map[cnf.Lit]bool{}
	var units []cnf.Lit
	for {
		found := cnf.LitUndef
		for _, c := range clauses {
			if len(c) == 1 {
				found = c[0]
				break
			}
		}
		if found == cnf.LitUndef {
			return clauses, true, units
		}
		if assign[found.Not()] {
			return nil, false, nil
		}
		if !assign[found] {
			assign[found] = true
			units = append(units, found)
			st.UnitsFixed++
		}
		var next []cnf.Clause
		for _, c := range clauses {
			if c.Has(found) {
				continue // satisfied
			}
			if c.Has(found.Not()) {
				d := make(cnf.Clause, 0, len(c)-1)
				for _, l := range c {
					if l != found.Not() {
						d = append(d, l)
					}
				}
				if len(d) == 0 {
					return nil, false, nil
				}
				next = append(next, d)
			} else {
				next = append(next, c)
			}
		}
		clauses = next
	}
}

// pureLiterals removes clauses containing literals whose complement never
// occurs.
func pureLiterals(clauses []cnf.Clause, numVars int, res *Result, st *Stats) ([]cnf.Clause, []cnf.Lit) {
	occ := make([]int, 2*(numVars+1))
	for _, c := range clauses {
		for _, l := range c {
			occ[l.Index()]++
		}
	}
	var pure []cnf.Lit
	for v := cnf.Var(1); int(v) <= numVars; v++ {
		if _, substituted := res.Subst[v]; substituted {
			continue
		}
		p, n := occ[cnf.PosLit(v).Index()], occ[cnf.NegLit(v).Index()]
		if p > 0 && n == 0 {
			pure = append(pure, cnf.PosLit(v))
			st.PureFixed++
		} else if n > 0 && p == 0 {
			pure = append(pure, cnf.NegLit(v))
			st.PureFixed++
		}
	}
	if len(pure) == 0 {
		return clauses, nil
	}
	isPure := make(map[cnf.Lit]bool, len(pure))
	for _, l := range pure {
		isPure[l] = true
	}
	var out []cnf.Clause
	for _, c := range clauses {
		satisfied := false
		for _, l := range c {
			if isPure[l] {
				satisfied = true
				break
			}
		}
		if !satisfied {
			out = append(out, c)
		}
	}
	return out, pure
}

// failedLiterals probes each literal: if assuming l yields a conflict
// under BCP, then ¬l is a necessary assignment. If both l and ¬l fail,
// the formula is unsatisfiable.
func failedLiterals(clauses []cnf.Clause, numVars int) ([]cnf.Lit, bool) {
	f := cnf.New(numVars)
	for _, c := range clauses {
		f.AddClause(c)
	}
	p := NewPropagator(f)
	base := p.Mark()
	if !p.propagate(0) {
		return nil, true
	}
	var failed []cnf.Lit
	for v := cnf.Var(1); int(v) <= numVars; v++ {
		if p.Value(v) != cnf.Undef {
			continue
		}
		posOK := probe(p, cnf.PosLit(v), base)
		negOK := probe(p, cnf.NegLit(v), base)
		switch {
		case !posOK && !negOK:
			return nil, true
		case !posOK:
			failed = append(failed, cnf.NegLit(v))
		case !negOK:
			failed = append(failed, cnf.PosLit(v))
		}
	}
	return failed, false
}

func probe(p *Propagator, l cnf.Lit, base int) bool {
	mark := p.Mark()
	ok := p.Assume(l)
	p.Undo(mark)
	_ = base
	return ok
}
