package preprocess

import "repro/internal/cnf"

// subsumptionPass removes subsumed clauses and (optionally) strengthens
// clauses by self-subsuming resolution: given (A ∨ l) and a clause D ⊇
// (A ∨ ¬l), literal ¬l can be removed from D. It returns the reduced
// clause list and the counts of removed clauses / strengthened literals.
func subsumptionPass(clauses []cnf.Clause, numVars int, selfSub bool) ([]cnf.Clause, int, int) {
	type entry struct {
		c   cnf.Clause
		sig uint64
		del bool
	}
	entries := make([]entry, len(clauses))
	occ := make([][]int, 2*(numVars+1))
	for i, c := range clauses {
		entries[i] = entry{c: c, sig: c.Signature()}
		for _, l := range c {
			occ[l.Index()] = append(occ[l.Index()], i)
		}
	}

	// leastOccLit picks the literal of c with the shortest occurrence
	// list: any clause containing all of c contains that literal.
	leastOccLit := func(c cnf.Clause) cnf.Lit {
		best := c[0]
		for _, l := range c[1:] {
			if len(occ[l.Index()]) < len(occ[best.Index()]) {
				best = l
			}
		}
		return best
	}

	nSub, nStr := 0, 0
	for i := range entries {
		e := &entries[i]
		if e.del || len(e.c) == 0 {
			continue
		}
		// Forward subsumption: does e.c subsume other clauses?
		pivot := leastOccLit(e.c)
		for _, j := range occ[pivot.Index()] {
			if j == i || entries[j].del {
				continue
			}
			d := &entries[j]
			if e.sig&^d.sig != 0 || len(e.c) > len(d.c) {
				continue
			}
			if e.c.Subsumes(d.c) {
				d.del = true
				nSub++
			}
		}
		if !selfSub {
			continue
		}
		// Self-subsuming resolution: flip one literal of e.c and look
		// for clauses containing the flipped clause.
		for li, l := range e.c {
			flipped := l.Not()
			for _, j := range occ[flipped.Index()] {
				if j == i || entries[j].del {
					continue
				}
				d := &entries[j]
				if len(e.c) > len(d.c) {
					continue
				}
				if subsumesWithFlip(e.c, li, d.c) {
					// Remove ¬l from d.
					nd := make(cnf.Clause, 0, len(d.c)-1)
					for _, m := range d.c {
						if m != flipped {
							nd = append(nd, m)
						}
					}
					d.c = nd
					d.sig = nd.Signature()
					nStr++
				}
			}
		}
	}

	var out []cnf.Clause
	for i := range entries {
		if !entries[i].del {
			out = append(out, entries[i].c)
		}
	}
	return out, nSub, nStr
}

// subsumesWithFlip reports whether c, with the literal at index flipIdx
// complemented, subsumes d.
func subsumesWithFlip(c cnf.Clause, flipIdx int, d cnf.Clause) bool {
	for i, l := range c {
		want := l
		if i == flipIdx {
			want = l.Not()
		}
		if !d.Has(want) {
			return false
		}
	}
	return true
}
