package preprocess

import "repro/internal/cnf"

// Equivalency reasoning (§6, [Li]): binary clauses (x + ¬y)·(¬x + y)
// indicate that x and y must always take the same value, so y can be
// replaced by x. We generalize via the binary implication graph: every
// binary clause (a ∨ b) contributes edges ¬a→b and ¬b→a; literals in the
// same strongly connected component are pairwise equivalent. If a
// variable's two literals share a component the formula is unsatisfiable.

// substituteEquivalences finds equivalence classes among literals and
// rewrites the clause list, recording substitutions in subst. It returns
// the rewritten clauses, the number of variables eliminated, and whether
// a contradiction (x ≡ ¬x) was found.
func substituteEquivalences(clauses []cnf.Clause, numVars int, subst map[cnf.Var]cnf.Lit) ([]cnf.Clause, int, bool) {
	nLits := 2 * (numVars + 1)
	adj := make([][]int32, nLits)
	for _, c := range clauses {
		if len(c) != 2 {
			continue
		}
		a, b := c[0], c[1]
		adj[a.Not().Index()] = append(adj[a.Not().Index()], int32(b.Index()))
		adj[b.Not().Index()] = append(adj[b.Not().Index()], int32(a.Index()))
	}

	comp := sccLiterals(adj, numVars)

	// For each component pick a representative literal: the occurrence
	// with the smallest variable, positive polarity preferred. A
	// variable whose two literals are in one component is contradictory.
	repOf := make(map[int32]cnf.Lit)
	for v := cnf.Var(1); int(v) <= numVars; v++ {
		p, n := cnf.PosLit(v), cnf.NegLit(v)
		if comp[p.Index()] == comp[n.Index()] && comp[p.Index()] != -1 {
			return nil, 0, true
		}
	}
	for v := cnf.Var(1); int(v) <= numVars; v++ {
		for _, l := range []cnf.Lit{cnf.PosLit(v), cnf.NegLit(v)} {
			c := comp[l.Index()]
			if c < 0 {
				continue
			}
			if _, ok := repOf[c]; !ok {
				repOf[c] = l
				// Keep representative choice consistent between the two
				// complementary components: rep(comp(¬l)) = ¬rep(comp(l)).
				repOf[comp[l.Not().Index()]] = l.Not()
			}
		}
	}

	mapLit := func(l cnf.Lit) cnf.Lit {
		c := comp[l.Index()]
		if c < 0 {
			return l
		}
		return repOf[c]
	}

	eliminated := 0
	for v := cnf.Var(1); int(v) <= numVars; v++ {
		if _, done := subst[v]; done {
			continue
		}
		rep := mapLit(cnf.PosLit(v))
		if rep != cnf.PosLit(v) {
			subst[v] = rep
			eliminated++
		}
	}
	if eliminated == 0 {
		return clauses, 0, false
	}

	var out []cnf.Clause
	seen := make(map[string]bool)
	for _, c := range clauses {
		d := make(cnf.Clause, len(c))
		for i, l := range c {
			d[i] = mapLit(l)
		}
		n, taut := d.Normalize()
		if taut {
			continue
		}
		if len(n) == 0 {
			return nil, eliminated, true
		}
		key := n.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, n)
	}
	return out, eliminated, false
}

// sccLiterals runs an iterative Tarjan SCC over the literal graph and
// returns the component id per literal index, with -1 for literals that
// form singleton components with no structure (still assigned an id, the
// -1 marker is only for out-of-range/unused slots).
func sccLiterals(adj [][]int32, numVars int) []int32 {
	n := len(adj)
	comp := make([]int32, n)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range comp {
		comp[i] = -1
		index[i] = -1
	}
	var stack []int32
	var counter, nComp int32

	type frame struct {
		node int32
		edge int
	}
	var callStack []frame

	strongconnect := func(root int32) {
		callStack = callStack[:0]
		callStack = append(callStack, frame{root, 0})
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			v := fr.node
			if fr.edge < len(adj[v]) {
				w := adj[v][fr.edge]
				fr.edge++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{w, 0})
				} else if onStack[w] && low[v] > index[w] {
					low[v] = index[w]
				}
				continue
			}
			// Finished v.
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].node
				if low[parent] > low[v] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}

	for v := cnf.Var(1); int(v) <= numVars; v++ {
		for _, l := range []cnf.Lit{cnf.PosLit(v), cnf.NegLit(v)} {
			if index[l.Index()] == -1 {
				strongconnect(int32(l.Index()))
			}
		}
	}
	return comp
}
