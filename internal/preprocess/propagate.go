package preprocess

import "repro/internal/cnf"

// Propagator is a simple occurrence-list Boolean constraint propagator
// over a fixed formula. Unlike the search solver it supports nested
// assumption contexts via Mark/Undo, which is what failed-literal probing
// and recursive learning (§4.2) need.
type Propagator struct {
	f      *cnf.Formula
	assign cnf.Assignment
	occ    [][]int
	trail  []cnf.Lit
}

// NewPropagator builds a propagator for f.
func NewPropagator(f *cnf.Formula) *Propagator {
	p := &Propagator{
		f:      f,
		assign: cnf.NewAssignment(f.NumVars()),
		occ:    make([][]int, 2*(f.NumVars()+1)),
	}
	for i, c := range f.Clauses {
		for _, l := range c {
			// Watch complements: assigning ¬l may make clause i unit.
			p.occ[l.Not().Index()] = append(p.occ[l.Not().Index()], i)
		}
	}
	return p
}

// Value returns the current value of v.
func (p *Propagator) Value(v cnf.Var) cnf.LBool { return p.assign.Value(v) }

// LitValue returns the current value of l.
func (p *Propagator) LitValue(l cnf.Lit) cnf.LBool { return p.assign.LitValue(l) }

// Mark returns a trail position for a later Undo.
func (p *Propagator) Mark() int { return len(p.trail) }

// Undo retracts every assignment made after the given mark.
func (p *Propagator) Undo(mark int) {
	for i := len(p.trail) - 1; i >= mark; i-- {
		p.assign.Unassign(p.trail[i])
	}
	p.trail = p.trail[:mark]
}

// Trail returns the literals assigned since the given mark, in order.
func (p *Propagator) Trail(mark int) []cnf.Lit { return p.trail[mark:] }

// Assume asserts l and propagates to fixpoint. It reports false on
// conflict (some clause falsified). The caller is responsible for Undo.
func (p *Propagator) Assume(l cnf.Lit) bool {
	if !p.enqueue(l) {
		return false
	}
	return p.propagate(len(p.trail) - 1)
}

// enqueue asserts l without propagating; false if l is already false.
func (p *Propagator) enqueue(l cnf.Lit) bool {
	switch p.assign.LitValue(l) {
	case cnf.True:
		return true
	case cnf.False:
		return false
	}
	p.assign.Assign(l)
	p.trail = append(p.trail, l)
	return true
}

// propagate processes the trail from position qhead to fixpoint.
func (p *Propagator) propagate(qhead int) bool {
	for qhead < len(p.trail) {
		l := p.trail[qhead]
		qhead++
		for _, ci := range p.occ[l.Index()] {
			c := p.f.Clauses[ci]
			unit := cnf.LitUndef
			sat := false
			unassigned := 0
			for _, m := range c {
				switch p.assign.LitValue(m) {
				case cnf.True:
					sat = true
				case cnf.Undef:
					unassigned++
					unit = m
				}
				if sat || unassigned > 1 {
					break
				}
			}
			if sat || unassigned > 1 {
				continue
			}
			if unassigned == 0 {
				return false // conflict
			}
			p.assign.Assign(unit)
			p.trail = append(p.trail, unit)
		}
	}
	return true
}
