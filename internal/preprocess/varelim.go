package preprocess

import "repro/internal/cnf"

// Bounded variable elimination (NiVER-style): a variable v can be
// eliminated by replacing the clauses containing v and ¬v with all their
// non-tautological resolvents on v, accepted only when this does not
// grow the formula. Elimination is satisfiability-preserving but not
// model-preserving, so each elimination records the removed clauses and
// ExtendModel reconstructs v's value in reverse elimination order.

// elimRecord remembers one eliminated variable and its original clauses.
type elimRecord struct {
	v       cnf.Var
	clauses []cnf.Clause // all clauses that mentioned v (both polarities)
}

// eliminateVariables performs one bounded-elimination sweep. maxPairs
// caps |P|×|N| to bound resolvent computation; growth is the allowed
// clause-count increase per elimination (0 = NiVER's "never grow").
func eliminateVariables(clauses []cnf.Clause, numVars int, records *[]elimRecord, maxPairs, growth int) ([]cnf.Clause, int) {
	eliminated := 0
	for v := cnf.Var(1); int(v) <= numVars; v++ {
		var pos, neg, rest []cnf.Clause
		for _, c := range clauses {
			switch {
			case c.Has(cnf.PosLit(v)):
				pos = append(pos, c)
			case c.Has(cnf.NegLit(v)):
				neg = append(neg, c)
			default:
				rest = append(rest, c)
			}
		}
		if len(pos) == 0 && len(neg) == 0 {
			continue
		}
		if len(pos)*len(neg) > maxPairs {
			continue
		}
		var resolvents []cnf.Clause
		tooBig := false
		for _, p := range pos {
			for _, n := range neg {
				r, taut := resolve(p, n, v)
				if taut {
					continue
				}
				resolvents = append(resolvents, r)
				if len(resolvents) > len(pos)+len(neg)+growth {
					tooBig = true
					break
				}
			}
			if tooBig {
				break
			}
		}
		if tooBig {
			continue
		}
		// Accept the elimination.
		rec := elimRecord{v: v}
		rec.clauses = append(rec.clauses, pos...)
		rec.clauses = append(rec.clauses, neg...)
		*records = append(*records, rec)
		clauses = append(rest, resolvents...)
		eliminated++
	}
	return clauses, eliminated
}

// resolve computes the resolvent of p (containing v) and n (containing
// ¬v), reporting tautologies.
func resolve(p, n cnf.Clause, v cnf.Var) (cnf.Clause, bool) {
	out := make(cnf.Clause, 0, len(p)+len(n)-2)
	for _, l := range p {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	for _, l := range n {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	return out.Normalize()
}

// reconstructEliminated assigns values to eliminated variables, newest
// elimination first, such that every removed clause is satisfied. The
// rest of the assignment must already be total over surviving variables.
func reconstructEliminated(m cnf.Assignment, records []elimRecord) {
	for i := len(records) - 1; i >= 0; i-- {
		rec := records[i]
		// Try v = false; if some removed clause then evaluates false,
		// v = true must work (the resolvents guarantee one side is
		// satisfiable).
		m[rec.v] = cnf.False
		ok := true
		for _, c := range rec.clauses {
			if m.EvalClause(c) != cnf.True {
				ok = false
				break
			}
		}
		if !ok {
			m[rec.v] = cnf.True
		}
	}
}
