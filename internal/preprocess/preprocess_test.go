package preprocess

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
)

func TestUnitPropagation(t *testing.T) {
	f := cnf.New(3)
	f.AddDIMACS(1)
	f.AddDIMACS(-1, 2)
	f.AddDIMACS(-2, 3)
	res := Simplify(f, Options{})
	if res.Decided != cnf.True {
		t.Fatalf("chain of units should decide SAT, got %v", res.Decided)
	}
	if res.Stats.UnitsFixed != 3 {
		t.Fatalf("UnitsFixed = %d, want 3", res.Stats.UnitsFixed)
	}
	m := res.ExtendModel(cnf.NewAssignment(3))
	if !m.Satisfies(f) {
		t.Fatal("extended model does not satisfy original")
	}
}

func TestUnitConflict(t *testing.T) {
	f := cnf.New(1)
	f.AddDIMACS(1)
	f.AddDIMACS(-1)
	res := Simplify(f, Options{})
	if res.Decided != cnf.False {
		t.Fatal("contradictory units must decide UNSAT")
	}
}

func TestPureLiteral(t *testing.T) {
	f := cnf.New(3)
	f.AddDIMACS(1, 2)
	f.AddDIMACS(1, -2)
	// x1 occurs only positively → pure; both clauses drop.
	res := Simplify(f, Options{PureLiterals: true})
	if res.Stats.PureFixed == 0 {
		t.Fatal("pure literal not detected")
	}
	if res.Decided != cnf.True {
		t.Fatal("pure elimination should decide SAT here")
	}
	m := res.ExtendModel(cnf.NewAssignment(3))
	if !m.Satisfies(f) {
		t.Fatal("extended model wrong")
	}
}

func TestSubsumption(t *testing.T) {
	f := cnf.New(3)
	f.AddDIMACS(1, 2)
	f.AddDIMACS(1, 2, 3)
	f.AddDIMACS(-3, 2, 1)
	res := Simplify(f, Options{Subsumption: true})
	if res.Stats.ClausesSubsumed != 2 {
		t.Fatalf("ClausesSubsumed = %d, want 2", res.Stats.ClausesSubsumed)
	}
}

func TestSelfSubsumption(t *testing.T) {
	// (1 2) and (1 -2 3): resolving on 2 gives (1 3) ⊂ (1 -2 3),
	// so the second clause strengthens to (1 3).
	f := cnf.New(3)
	f.AddDIMACS(1, 2)
	f.AddDIMACS(1, -2, 3)
	res := Simplify(f, Options{SelfSubsumption: true})
	if res.Stats.LitsStrength == 0 {
		t.Fatal("self-subsumption found nothing")
	}
	for _, c := range res.Formula.Clauses {
		if len(c) == 3 {
			t.Fatalf("clause not strengthened: %v", c)
		}
	}
}

func TestFailedLiterals(t *testing.T) {
	// Assuming ¬x1 forces a conflict: (x1∨x2)(x1∨¬x2) ⇒ x1.
	f := cnf.New(3)
	f.AddDIMACS(1, 2)
	f.AddDIMACS(1, -2)
	f.AddDIMACS(-1, 3)
	res := Simplify(f, Options{FailedLiterals: true})
	if res.Stats.FailedLiterals == 0 {
		t.Fatal("failed literal not detected")
	}
	if res.Decided != cnf.True {
		t.Fatal("probing + units should decide this formula")
	}
	m := res.ExtendModel(cnf.NewAssignment(3))
	if m.Value(1) != cnf.True || m.Value(3) != cnf.True {
		t.Fatalf("wrong extension: x1=%v x3=%v", m.Value(1), m.Value(3))
	}
}

func TestFailedLiteralsUnsat(t *testing.T) {
	// Both polarities of x1 fail.
	f := cnf.New(2)
	f.AddDIMACS(1, 2)
	f.AddDIMACS(1, -2)
	f.AddDIMACS(-1, 2)
	f.AddDIMACS(-1, -2)
	res := Simplify(f, Options{FailedLiterals: true})
	if res.Decided != cnf.False {
		t.Fatal("must decide UNSAT via probing")
	}
}

func TestEquivalencySubstitution(t *testing.T) {
	// x1 ≡ x2 ≡ x3 chain plus a clause using x3: substitution should
	// eliminate two variables (§6 claim).
	f := gen.EquivalenceLadder(5, 0, 1)
	f.AddDIMACS(5, 4)
	res := Simplify(f, Options{Equivalences: true})
	if res.Stats.VarsSubstituted < 4 {
		t.Fatalf("VarsSubstituted = %d, want >= 4", res.Stats.VarsSubstituted)
	}
	m := res.ExtendModel(cnf.NewAssignment(5))
	if !m.Satisfies(f) {
		t.Fatalf("extended model does not satisfy: %v", m)
	}
}

func TestEquivalenceContradiction(t *testing.T) {
	// x1 ≡ x2 and x1 ≡ ¬x2 → UNSAT.
	f := cnf.New(2)
	f.AddDIMACS(1, -2)
	f.AddDIMACS(-1, 2)
	f.AddDIMACS(1, 2)
	f.AddDIMACS(-1, -2)
	res := Simplify(f, Options{Equivalences: true})
	if res.Decided != cnf.False {
		t.Fatal("contradictory equivalence must be UNSAT")
	}
}

func TestEquisatisfiabilityProperty(t *testing.T) {
	// Simplification must preserve satisfiability, and extended models of
	// SAT results must satisfy the original formula.
	for seed := int64(0); seed < 80; seed++ {
		nv := 5 + int(seed%5)
		f := gen.RandomKSAT(nv, int(float64(nv)*4.2), 3, seed)
		want, _ := cnf.BruteForce(f)
		res := Simplify(f, All())
		switch res.Decided {
		case cnf.True:
			if !want {
				t.Fatalf("seed %d: preprocess says SAT, brute says UNSAT", seed)
			}
			m := res.ExtendModel(cnf.NewAssignment(nv))
			if !m.Satisfies(f) {
				t.Fatalf("seed %d: extended model fails", seed)
			}
		case cnf.False:
			if want {
				t.Fatalf("seed %d: preprocess says UNSAT, brute says SAT", seed)
			}
		default:
			got, model := cnf.BruteForce(res.Formula)
			if got != want {
				t.Fatalf("seed %d: equisatisfiability broken (got %v want %v)", seed, got, want)
			}
			if got {
				m := res.ExtendModel(model)
				if !m.Satisfies(f) {
					t.Fatalf("seed %d: extended model of simplified formula fails original", seed)
				}
			}
		}
	}
}

func TestPropagatorMarkUndo(t *testing.T) {
	f := cnf.New(4)
	f.AddDIMACS(-1, 2)
	f.AddDIMACS(-2, 3)
	p := NewPropagator(f)
	mark := p.Mark()
	if !p.Assume(cnf.PosLit(1)) {
		t.Fatal("assume should succeed")
	}
	if p.Value(3) != cnf.True {
		t.Fatal("chain not propagated")
	}
	if len(p.Trail(mark)) != 3 {
		t.Fatalf("trail = %v", p.Trail(mark))
	}
	p.Undo(mark)
	if p.Value(1) != cnf.Undef || p.Value(3) != cnf.Undef {
		t.Fatal("undo failed")
	}
	// Nested marks.
	m1 := p.Mark()
	p.Assume(cnf.PosLit(2))
	m2 := p.Mark()
	p.Assume(cnf.PosLit(4))
	p.Undo(m2)
	if p.Value(4) != cnf.Undef || p.Value(3) != cnf.True {
		t.Fatal("nested undo wrong")
	}
	p.Undo(m1)
	if p.Value(2) != cnf.Undef {
		t.Fatal("outer undo wrong")
	}
}

func TestPropagatorConflict(t *testing.T) {
	f := cnf.New(2)
	f.AddDIMACS(-1, 2)
	f.AddDIMACS(-1, -2)
	p := NewPropagator(f)
	mark := p.Mark()
	if p.Assume(cnf.PosLit(1)) {
		t.Fatal("assume x1 must conflict")
	}
	p.Undo(mark)
	if p.Value(1) != cnf.Undef {
		t.Fatal("undo after conflict failed")
	}
}

func TestXorChainEquivalences(t *testing.T) {
	// Even xor cycles are chains of equivalences/antivalences: the SCC
	// pass should collapse them substantially.
	f := gen.XorChain(12, false, 3)
	res := Simplify(f, Options{Equivalences: true})
	if res.Stats.VarsSubstituted < 11 {
		t.Fatalf("xor chain: substituted %d, want >= 11", res.Stats.VarsSubstituted)
	}
	if res.Decided == cnf.False {
		t.Fatal("even cycle is SAT")
	}
}

func TestVarElimBasic(t *testing.T) {
	// v=2 appears in (1 2) and (-2 3): resolvent (1 3), 2 clauses → 1.
	f := cnf.New(3)
	f.AddDIMACS(1, 2)
	f.AddDIMACS(-2, 3)
	res := Simplify(f, Options{VarElim: true})
	if res.Stats.VarsEliminated == 0 {
		t.Fatal("no variables eliminated")
	}
	// The whole chain collapses (every variable is eliminable here);
	// whatever remains must be equisatisfiable and reconstructible.
	var m cnf.Assignment
	if res.Decided == cnf.True {
		m = res.ExtendModel(cnf.NewAssignment(3))
	} else {
		_, model := cnf.BruteForce(res.Formula)
		m = res.ExtendModel(model)
	}
	if !m.Satisfies(f) {
		t.Fatalf("reconstructed model fails: %v", m)
	}
}

func TestVarElimEquisatisfiable(t *testing.T) {
	for seed := int64(200); seed < 280; seed++ {
		nv := 5 + int(seed%5)
		f := gen.RandomKSAT(nv, int(float64(nv)*4.2), 3, seed)
		want, _ := cnf.BruteForce(f)
		res := Simplify(f, Options{VarElim: true})
		switch res.Decided {
		case cnf.True:
			if !want {
				t.Fatalf("seed %d: false SAT", seed)
			}
			m := res.ExtendModel(cnf.NewAssignment(nv))
			if !m.Satisfies(f) {
				t.Fatalf("seed %d: reconstruction fails", seed)
			}
		case cnf.False:
			if want {
				t.Fatalf("seed %d: false UNSAT", seed)
			}
		default:
			got, model := cnf.BruteForce(res.Formula)
			if got != want {
				t.Fatalf("seed %d: equisatisfiability broken", seed)
			}
			if got {
				m := res.ExtendModel(model)
				if !m.Satisfies(f) {
					t.Fatalf("seed %d: reconstruction fails", seed)
				}
			}
		}
	}
}

func TestVarElimWithFullPipeline(t *testing.T) {
	// All transforms together (the All() configuration) must stay sound
	// with elimination interleaved with substitution and probing.
	for seed := int64(300); seed < 360; seed++ {
		nv := 6 + int(seed%4)
		f := gen.RandomKSAT(nv, int(float64(nv)*4.0), 3, seed)
		want, _ := cnf.BruteForce(f)
		res := Simplify(f, All())
		switch res.Decided {
		case cnf.True:
			if !want {
				t.Fatalf("seed %d: false SAT", seed)
			}
			if !res.ExtendModel(cnf.NewAssignment(nv)).Satisfies(f) {
				t.Fatalf("seed %d: model fails", seed)
			}
		case cnf.False:
			if want {
				t.Fatalf("seed %d: false UNSAT", seed)
			}
		default:
			got, model := cnf.BruteForce(res.Formula)
			if got != want {
				t.Fatalf("seed %d: equisat broken", seed)
			}
			if got && !res.ExtendModel(model).Satisfies(f) {
				t.Fatalf("seed %d: model fails", seed)
			}
		}
	}
}

func TestVarElimDoesNotGrow(t *testing.T) {
	f := gen.Random3SATHard(40, 7)
	before := len(normalizeClauses(f))
	res := Simplify(f, Options{VarElim: true})
	if res.Formula.NumClauses() > before {
		t.Fatalf("NiVER must never grow the formula: %d -> %d",
			before, res.Formula.NumClauses())
	}
}

// TestMaxRoundsBound pins the Options.MaxRounds contract: 0 selects
// DefaultMaxRounds (bit-identical outcome to passing the constant
// explicitly), an explicit bound of 1 stops the fixpoint loop after one
// round even when further rounds would simplify more, and the truncated
// result is still equisatisfiable with the input.
func TestMaxRoundsBound(t *testing.T) {
	// A formula where one round is not a fixpoint: the failed-literal
	// probe and subsumption feed each other across rounds on hard random
	// instances, so at least one seed must run 2+ rounds by default.
	multiRound := -1
	for seed := int64(0); seed < 10; seed++ {
		f := gen.Random3SATHard(22, seed)
		if Simplify(f, All()).Stats.Rounds > 1 {
			multiRound = int(seed)
			break
		}
	}
	if multiRound < 0 {
		t.Skip("no seed needed more than one round; bound untestable here")
	}
	f := gen.Random3SATHard(22, int64(multiRound))

	def := Simplify(f, All())
	explicit := All()
	explicit.MaxRounds = DefaultMaxRounds
	if got := Simplify(f, explicit); got.Stats != def.Stats {
		t.Fatalf("MaxRounds 0 and DefaultMaxRounds diverge:\n %+v\n %+v", def.Stats, got.Stats)
	}

	one := All()
	one.MaxRounds = 1
	capped := Simplify(f, one)
	if capped.Stats.Rounds != 1 {
		t.Fatalf("MaxRounds 1 ran %d rounds", capped.Stats.Rounds)
	}
	if def.Stats.Rounds <= 1 {
		t.Fatalf("default run took %d rounds; selection above guaranteed > 1", def.Stats.Rounds)
	}

	// The capped result must still be equisatisfiable: brute-force both.
	wantSat, _ := cnf.BruteForce(f)
	if capped.Decided == cnf.Undef {
		gotSat, m := cnf.BruteForce(capped.Formula)
		if gotSat != wantSat {
			t.Fatalf("capped preprocess changed satisfiability: %v vs %v", gotSat, wantSat)
		}
		if gotSat {
			full := capped.ExtendModel(m)
			if !full.Satisfies(f) {
				t.Fatal("extended model of capped result does not satisfy original")
			}
		}
	} else if (capped.Decided == cnf.True) != wantSat {
		t.Fatalf("capped preprocess decided %v, brute force says sat=%v", capped.Decided, wantSat)
	}
}
