package solver

import (
	"time"

	"repro/internal/cnf"
)

// Glue tier bounds for the LBD-tiered reduction (reduceDB). Clauses with
// LBD ≤ coreLBDMax are "core" and live forever; LBD ≤ midLBDMax is the
// "mid" tier, kept unless nearly inactive; everything above is "local"
// and competes on activity every reduction.
const (
	coreLBDMax = 2
	midLBDMax  = 6
)

// Solve decides satisfiability of the loaded clauses under the given
// assumption literals. It may be called repeatedly; clauses and variables
// can be added between calls (incremental SAT, §6). On Unsat under
// assumptions, Core() returns an inconsistent subset of the assumptions.
func (s *Solver) Solve(assumptions ...cnf.Lit) Status {
	s.conflictSet = nil
	s.partial = false
	s.model = nil
	if !s.ok {
		return Unsat
	}
	s.cancelUntil(0)
	s.applyWarmStart()
	s.startConflicts = s.Stats.Conflicts
	s.startDecisions = s.Stats.Decisions
	for _, a := range assumptions {
		if int(a.Var()) > s.NumVars() {
			s.growTo(int(a.Var()))
		}
	}
	// An assumption over an in-search-eliminated variable re-constrains
	// it; undo the eliminations (they are no longer model-preserving
	// under this query) before searching.
	for _, a := range assumptions {
		if s.isEliminated(a.Var()) {
			if !s.restoreEliminated() {
				return Unsat
			}
			break
		}
	}
	s.assumptions = assumptions
	if s.opts.Decide == DecideDLIS && !s.dlisOcc {
		s.buildOccLists()
	}
	// Top-level deduction before the search proper.
	if s.propagate() != CRefUndef {
		s.ok = false
		return Unsat
	}
	// Pick up clauses shared by sibling workers before searching.
	if !s.importShared() {
		return Unsat
	}
	s.maxLearn = float64(s.opts.MaxLearnts)
	if s.maxLearn == 0 {
		s.maxLearn = float64(len(s.clauses)) / 3
		if s.maxLearn < 100 {
			s.maxLearn = 100
		}
	}

	restart := 0
	for {
		limit := s.restartLimit(restart)
		st := s.search(limit)
		if st == Sat {
			s.model = make(cnf.Assignment, len(s.assigns))
			copy(s.model, s.assigns)
			// Variables eliminated in-search are unassigned in the
			// search's model; reconstruct their values from the removed
			// clauses (newest elimination first).
			s.reconstructModel()
			return st
		}
		if st != Unknown {
			return st
		}
		if s.stop.Load() || s.budgetExhausted() {
			return Unknown
		}
		restart++
		s.Stats.Restarts++
		s.prog.restarts.Add(1)
		s.cancelUntil(0)
		// Restart boundary: the natural moment to adopt foreign clauses
		// (the trail is empty, so level-0 injection is trivially safe)
		// and to run an inprocessing round over the clause DB.
		if !s.importShared() {
			return Unsat
		}
		inprocStart := time.Now()
		inprocOK := s.inprocess(restart)
		s.prog.phaseNS[PhaseInprocess].Add(int64(time.Since(inprocStart)))
		if !inprocOK {
			return Unsat
		}
	}
}

// SolveFormulaOnce is a convenience for one-shot solving of f.
func SolveFormulaOnce(f *cnf.Formula, opts Options) (Status, cnf.Assignment) {
	s := FromFormula(f, opts)
	st := s.Solve()
	if st == Sat {
		return st, s.Model()
	}
	return st, nil
}

func (s *Solver) restartLimit(i int) int64 {
	base := int64(s.opts.RestartBase)
	switch s.opts.Restart {
	case RestartNone:
		return -1
	case RestartLuby:
		return base * luby(i)
	case RestartGeometric:
		lim := float64(base)
		for k := 0; k < i; k++ {
			lim *= 1.5
		}
		return int64(lim)
	case RestartFixed:
		return base
	}
	return -1
}

// luby returns the i-th element (0-based) of the Luby sequence
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
func luby(i int) int64 {
	i++
	for k := uint(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)))
		}
	}
}

func (s *Solver) budgetExhausted() bool {
	if s.opts.MaxConflicts > 0 && s.Stats.Conflicts-s.startConflicts >= s.opts.MaxConflicts {
		return true
	}
	if s.opts.MaxDecisions > 0 && s.Stats.Decisions-s.startDecisions >= s.opts.MaxDecisions {
		return true
	}
	return false
}

// search runs the SAT(d, beta) loop of Figure 2 until a verdict, a
// restart limit (maxConfl conflicts, -1 = unlimited), or a budget bound.
func (s *Solver) search(maxConfl int64) Status {
	var conflictsHere int64
	for {
		if s.stop.Load() {
			return Unknown // asynchronous Interrupt
		}
		// Propagation time is sampled: one call in propagateSamplePeriod
		// pays two clock reads and its duration is scaled by the period,
		// so the attribution converges without taxing the hot path.
		var confl CRef
		if s.prog.propTick++; s.prog.propTick%propagateSamplePeriod == 0 {
			propStart := time.Now()
			confl = s.propagate()
			s.prog.phaseNS[PhasePropagate].Add(propagateSamplePeriod * int64(time.Since(propStart)))
		} else {
			confl = s.propagate()
		}
		if confl != CRefUndef {
			// Deduce() returned CONFLICT: run Diagnose(). The whole
			// diagnosis — analyze, backtrack, record, decay — is one
			// attribution phase, timed per conflict (clock cost is two
			// reads per conflict, orders of magnitude under the work).
			analyzeStart := time.Now()
			s.Stats.Conflicts++
			s.prog.conflicts.Add(1)
			conflictsHere++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel, lbd := s.analyze(confl)
			s.noteConflict(lbd)
			s.exportLearnt(learnt, lbd) // before backtracking: levels are live
			if s.opts.Chronological {
				// Chronological search strategies backtrack to the
				// immediately preceding level regardless of diagnosis
				// (unit implicates still go to the top level in record;
				// that forced reset is not a diagnosed backjump).
				if len(learnt) > 1 {
					btLevel = s.decisionLevel() - 1
				}
			} else if jump := s.decisionLevel() - 1 - btLevel; jump > s.Stats.MaxJump {
				s.Stats.MaxJump = jump
			}
			s.cancelUntil(btLevel)
			s.record(learnt, lbd)
			s.decayVar()
			s.decayClause()
			s.prog.phaseNS[PhaseAnalyze].Add(int64(time.Since(analyzeStart)))
			continue
		}

		// No conflict. A structural theory may declare success with a
		// partial assignment (§5: empty justification frontier replaces
		// "all clauses satisfied" as the satisfiability test).
		if s.theory != nil && s.decisionLevel() >= len(s.assumptions) && s.theory.Done() {
			s.partial = true
			return Sat
		}
		if s.budgetExhausted() {
			return Unknown
		}
		if maxConfl >= 0 && conflictsHere >= maxConfl {
			return Unknown // restart
		}
		if !s.opts.NoLearning && float64(s.db.learntCount()) >= s.maxLearn+float64(len(s.trail)) {
			reduceStart := time.Now()
			s.reduceDB()
			s.prog.phaseNS[PhaseReduce].Add(int64(time.Since(reduceStart)))
			s.maxLearn *= 1.1
		}
		// Compact the arena once deletions (reduceDB tombstones, dead
		// NoLearning temp clauses) waste enough of it.
		s.maybeGC()

		// Decide(): assumptions first, then theory suggestion, then the
		// configured heuristic.
		next := cnf.LitUndef
		for next == cnf.LitUndef && s.decisionLevel() < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.LitValue(p) {
			case cnf.True:
				s.trailLim = append(s.trailLim, len(s.trail)) // dummy level
			case cnf.False:
				s.analyzeFinal(p)
				return Unsat
			default:
				next = p
			}
		}
		if next == cnf.LitUndef && s.theory != nil {
			if sug := s.theory.Suggest(); sug != cnf.LitUndef && s.LitValue(sug) == cnf.Undef {
				next = sug
				s.Stats.Decisions++
			}
		}
		if next == cnf.LitUndef {
			next = s.pickBranchLit()
			if next == cnf.LitUndef {
				return Sat // every variable assigned, no clause falsified
			}
			s.Stats.Decisions++
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, CRefUndef)
	}
}

// record installs a conflict-induced clause and asserts its first literal
// (the conflict-induced necessary assignment). lbd is the clause's
// literal-block distance computed at learn time by analyze.
func (s *Solver) record(learnt []cnf.Lit, lbd int) {
	if s.proof != nil {
		s.proof.Learn(learnt)
	}
	if len(learnt) == 1 {
		// Unit implicates always go to the top level.
		s.cancelUntil(0)
		if s.LitValue(learnt[0]) == cnf.False {
			s.ok = false
			return
		}
		if s.LitValue(learnt[0]) == cnf.Undef {
			s.uncheckedEnqueue(learnt[0], CRefUndef)
		}
		return
	}
	c := s.db.alloc(learnt, true, s.opts.NoLearning, lbd)
	if !s.opts.NoLearning {
		s.db.addLearnt(c)
		s.Stats.Learned++
		s.prog.learned.Add(1)
		if n := int64(s.db.learntCount()); n > s.Stats.MaxLearnts {
			s.Stats.MaxLearnts = n
		}
		s.attach(c)
		s.bumpClause(c)
	}
	// Under NoLearning the clause exists only as the antecedent of its
	// assertion; it is never attached, so it cannot prune future search.
	s.uncheckedEnqueue(learnt[0], c)
}

// reduceDB deletes recorded clauses according to the configured policy
// (§4.1: "in most cases large recorded clauses are eventually deleted").
// It iterates the clause DB's per-tier roster segments; tombstoned
// clauses are removed from their segment here and reclaimed by the
// arena GC (stale watchers are dropped lazily by propagate).
func (s *Solver) reduceDB() {
	locked := func(c CRef) bool {
		first := s.db.lits(c)[0]
		return s.reason[first.Var()] == c && s.LitValue(first) == cnf.True
	}
	switch s.opts.Deletion {
	case DeleteNever:
		return
	case DeleteByRelevance:
		// Relevance-based learning: a clause stays while at most
		// RelevanceBound of its literals are unassigned. Tiers do not
		// matter to this policy; every segment is filtered.
		for t := range s.db.roster {
			rs := s.db.roster[t]
			w := 0
			for _, c := range rs {
				if locked(c) || s.db.size(c) <= 2 || s.unassignedCount(c) <= s.opts.RelevanceBound {
					rs[w] = c
					w++
					continue
				}
				s.proofDelete(c)
				s.db.markDeleted(c)
				s.Stats.Deleted++
			}
			s.db.roster[t] = rs[:w]
		}
	case DeleteByActivity:
		// Glue-tiered reduction over the roster segments. The core
		// segment (learn-time LBD ≤ 2) is never even scanned — those
		// clauses live forever. Mid-tier clauses survive while their
		// touched header bit shows they were used in conflict analysis
		// since the last reduction; idle ones are demoted to the local
		// tier. Local-tier clauses (including fresh demotees) compete
		// on activity against the local mean, capped at half the
		// segment per round (the classic Minisat halving). Touched
		// bits of surviving mid/local clauses are cleared so the next
		// round measures a fresh interval.
		mid := s.db.roster[tierMid]
		w := 0
		for _, c := range mid {
			if s.db.touched(c) || locked(c) || s.db.size(c) <= 2 {
				s.db.clearTouched(c)
				mid[w] = c
				w++
				continue
			}
			s.db.setTier(c, tierLocal)
			s.db.roster[tierLocal] = append(s.db.roster[tierLocal], c)
			s.Stats.Demoted++
		}
		s.db.roster[tierMid] = mid[:w]

		local := s.db.roster[tierLocal]
		if len(local) == 0 {
			return
		}
		mean := s.meanActivity(local)
		w = 0
		removed := 0
		target := len(local) / 2
		for _, c := range local {
			if removed < target && !locked(c) && s.db.size(c) > 2 && s.db.act(c) < mean {
				s.proofDelete(c)
				s.db.markDeleted(c)
				s.Stats.Deleted++
				removed++
				continue
			}
			s.db.clearTouched(c)
			local[w] = c
			w++
		}
		s.db.roster[tierLocal] = local[:w]
	}
}

func (s *Solver) unassignedCount(c CRef) int {
	n := 0
	for _, l := range s.db.lits(c) {
		if s.LitValue(l) == cnf.Undef {
			n++
		}
	}
	return n
}

// meanActivity returns the average activity over one roster segment,
// used as the local tier's deletion threshold. (Minisat sorts and takes
// the median; the mean is an adequate threshold and avoids the sort
// cost.) refs must be non-empty.
func (s *Solver) meanActivity(refs []CRef) float64 {
	sum := 0.0
	for _, c := range refs {
		sum += s.db.act(c)
	}
	return sum / float64(len(refs))
}

// pickBranchLit implements the configured Decide() heuristic.
func (s *Solver) pickBranchLit() cnf.Lit {
	if s.opts.RandomFreq > 0 && s.rng.Float64() < s.opts.RandomFreq {
		if l := s.randomLit(); l != cnf.LitUndef {
			return l
		}
	}
	switch s.opts.Decide {
	case DecideDLIS:
		if l := s.dlisLit(); l != cnf.LitUndef {
			return l
		}
	case DecideOrdered:
		for v := cnf.Var(1); int(v) <= s.NumVars(); v++ {
			if s.assigns[v] == cnf.Undef && !s.isEliminated(v) {
				return cnf.NegLit(v)
			}
		}
		return cnf.LitUndef
	case DecideRandom:
		return s.randomLit()
	}
	// VSIDS (default): most active unassigned variable, saved polarity.
	// Variables eliminated in-search stay unassigned; the model
	// reconstruction at Sat time supplies their values.
	for !s.order.empty() {
		v := s.order.pop()
		if s.assigns[v] == cnf.Undef && !s.isEliminated(v) {
			return cnf.NewLit(v, !s.phase[v])
		}
	}
	return cnf.LitUndef
}

func (s *Solver) randomLit() cnf.Lit {
	n := s.NumVars()
	if n == 0 {
		return cnf.LitUndef
	}
	// Try random probes, then fall back to a scan.
	for try := 0; try < 10; try++ {
		v := cnf.Var(s.rng.Intn(n) + 1)
		if s.assigns[v] == cnf.Undef && !s.isEliminated(v) {
			return cnf.NewLit(v, s.rng.Intn(2) == 0)
		}
	}
	for v := cnf.Var(1); int(v) <= n; v++ {
		if s.assigns[v] == cnf.Undef && !s.isEliminated(v) {
			return cnf.NewLit(v, s.rng.Intn(2) == 0)
		}
	}
	return cnf.LitUndef
}

func (s *Solver) buildOccLists() {
	s.occList = make([][]CRef, 2*(s.NumVars()+1))
	for _, c := range s.clauses {
		for _, l := range s.db.lits(c) {
			s.occList[l.Index()] = append(s.occList[l.Index()], c)
		}
	}
	s.dlisOcc = true
}

// dlisLit implements Dynamic Largest Individual Sum: the unassigned
// literal occurring in the largest number of unresolved clauses.
func (s *Solver) dlisLit() cnf.Lit {
	best := cnf.LitUndef
	bestCount := -1
	for v := cnf.Var(1); int(v) <= s.NumVars(); v++ {
		if s.assigns[v] != cnf.Undef || s.isEliminated(v) {
			continue
		}
		for _, l := range []cnf.Lit{cnf.PosLit(v), cnf.NegLit(v)} {
			count := 0
			for _, c := range s.occList[l.Index()] {
				if s.db.deleted(c) {
					continue
				}
				resolved := false
				for _, m := range s.db.lits(c) {
					if s.LitValue(m) == cnf.True {
						resolved = true
						break
					}
				}
				if !resolved {
					count++
				}
			}
			if count > bestCount {
				bestCount = count
				best = l
			}
		}
	}
	return best
}
