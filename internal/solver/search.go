package solver

import "repro/internal/cnf"

// Solve decides satisfiability of the loaded clauses under the given
// assumption literals. It may be called repeatedly; clauses and variables
// can be added between calls (incremental SAT, §6). On Unsat under
// assumptions, Core() returns an inconsistent subset of the assumptions.
func (s *Solver) Solve(assumptions ...cnf.Lit) Status {
	s.conflictSet = nil
	s.partial = false
	s.model = nil
	if !s.ok {
		return Unsat
	}
	s.cancelUntil(0)
	s.startConflicts = s.Stats.Conflicts
	s.startDecisions = s.Stats.Decisions
	for _, a := range assumptions {
		if int(a.Var()) > s.NumVars() {
			s.growTo(int(a.Var()))
		}
	}
	s.assumptions = assumptions
	if s.opts.Decide == DecideDLIS && !s.dlisOcc {
		s.buildOccLists()
	}
	// Top-level deduction before the search proper.
	if s.propagate() != nil {
		s.ok = false
		return Unsat
	}
	// Pick up clauses shared by sibling workers before searching.
	if !s.importShared() {
		return Unsat
	}
	s.maxLearn = float64(s.opts.MaxLearnts)
	if s.maxLearn == 0 {
		s.maxLearn = float64(len(s.clauses)) / 3
		if s.maxLearn < 100 {
			s.maxLearn = 100
		}
	}

	restart := 0
	for {
		limit := s.restartLimit(restart)
		st := s.search(limit)
		if st == Sat {
			s.model = make(cnf.Assignment, len(s.assigns))
			copy(s.model, s.assigns)
			return st
		}
		if st != Unknown {
			return st
		}
		if s.stop.Load() || s.budgetExhausted() {
			return Unknown
		}
		restart++
		s.Stats.Restarts++
		s.cancelUntil(0)
		// Restart boundary: the natural moment to adopt foreign clauses
		// (the trail is empty, so level-0 injection is trivially safe).
		if !s.importShared() {
			return Unsat
		}
	}
}

// SolveFormulaOnce is a convenience for one-shot solving of f.
func SolveFormulaOnce(f *cnf.Formula, opts Options) (Status, cnf.Assignment) {
	s := FromFormula(f, opts)
	st := s.Solve()
	if st == Sat {
		return st, s.Model()
	}
	return st, nil
}

func (s *Solver) restartLimit(i int) int64 {
	base := int64(s.opts.RestartBase)
	switch s.opts.Restart {
	case RestartNone:
		return -1
	case RestartLuby:
		return base * luby(i)
	case RestartGeometric:
		lim := float64(base)
		for k := 0; k < i; k++ {
			lim *= 1.5
		}
		return int64(lim)
	case RestartFixed:
		return base
	}
	return -1
}

// luby returns the i-th element (0-based) of the Luby sequence
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
func luby(i int) int64 {
	i++
	for k := uint(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)))
		}
	}
}

func (s *Solver) budgetExhausted() bool {
	if s.opts.MaxConflicts > 0 && s.Stats.Conflicts-s.startConflicts >= s.opts.MaxConflicts {
		return true
	}
	if s.opts.MaxDecisions > 0 && s.Stats.Decisions-s.startDecisions >= s.opts.MaxDecisions {
		return true
	}
	return false
}

// search runs the SAT(d, beta) loop of Figure 2 until a verdict, a
// restart limit (maxConfl conflicts, -1 = unlimited), or a budget bound.
func (s *Solver) search(maxConfl int64) Status {
	var conflictsHere int64
	for {
		if s.stop.Load() {
			return Unknown // asynchronous Interrupt
		}
		confl := s.propagate()
		if confl != nil {
			// Deduce() returned CONFLICT: run Diagnose().
			s.Stats.Conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.exportLearnt(learnt) // before backtracking: levels are live
			if s.opts.Chronological && len(learnt) > 1 {
				// Chronological search strategies backtrack to the
				// immediately preceding level regardless of diagnosis.
				btLevel = s.decisionLevel() - 1
			} else if jump := s.decisionLevel() - 1 - btLevel; jump > s.Stats.MaxJump {
				s.Stats.MaxJump = jump
			}
			s.cancelUntil(btLevel)
			s.record(learnt)
			s.decayVar()
			s.decayClause()
			continue
		}

		// No conflict. A structural theory may declare success with a
		// partial assignment (§5: empty justification frontier replaces
		// "all clauses satisfied" as the satisfiability test).
		if s.theory != nil && s.decisionLevel() >= len(s.assumptions) && s.theory.Done() {
			s.partial = true
			return Sat
		}
		if s.budgetExhausted() {
			return Unknown
		}
		if maxConfl >= 0 && conflictsHere >= maxConfl {
			return Unknown // restart
		}
		if !s.opts.NoLearning && float64(len(s.learnts)) >= s.maxLearn+float64(len(s.trail)) {
			s.reduceDB()
			s.maxLearn *= 1.1
		}

		// Decide(): assumptions first, then theory suggestion, then the
		// configured heuristic.
		next := cnf.LitUndef
		for next == cnf.LitUndef && s.decisionLevel() < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.LitValue(p) {
			case cnf.True:
				s.trailLim = append(s.trailLim, len(s.trail)) // dummy level
			case cnf.False:
				s.analyzeFinal(p)
				return Unsat
			default:
				next = p
			}
		}
		if next == cnf.LitUndef && s.theory != nil {
			if sug := s.theory.Suggest(); sug != cnf.LitUndef && s.LitValue(sug) == cnf.Undef {
				next = sug
				s.Stats.Decisions++
			}
		}
		if next == cnf.LitUndef {
			next = s.pickBranchLit()
			if next == cnf.LitUndef {
				return Sat // every variable assigned, no clause falsified
			}
			s.Stats.Decisions++
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, nil)
	}
}

// record installs a conflict-induced clause and asserts its first literal
// (the conflict-induced necessary assignment).
func (s *Solver) record(learnt []cnf.Lit) {
	if s.proofLog != nil {
		s.proofLog.Lemmas = append(s.proofLog.Lemmas, append(cnf.Clause(nil), learnt...))
	}
	if len(learnt) == 1 {
		// Unit implicates always go to the top level.
		s.cancelUntil(0)
		if s.LitValue(learnt[0]) == cnf.False {
			s.ok = false
			return
		}
		if s.LitValue(learnt[0]) == cnf.Undef {
			s.uncheckedEnqueue(learnt[0], nil)
		}
		return
	}
	c := &clause{lits: append([]cnf.Lit(nil), learnt...), learnt: true}
	if s.opts.NoLearning {
		// The clause exists only as the antecedent of its assertion; it
		// is never attached, so it cannot prune future search.
		c.temp = true
	} else {
		s.learnts = append(s.learnts, c)
		s.Stats.Learned++
		if int64(len(s.learnts)) > s.Stats.MaxLearnts {
			s.Stats.MaxLearnts = int64(len(s.learnts))
		}
		s.attach(c)
		s.bumpClause(c)
	}
	s.uncheckedEnqueue(learnt[0], c)
}

// reduceDB deletes recorded clauses according to the configured policy
// (§4.1: "in most cases large recorded clauses are eventually deleted").
func (s *Solver) reduceDB() {
	locked := func(c *clause) bool {
		return s.reason[c.lits[0].Var()] == c && s.LitValue(c.lits[0]) == cnf.True
	}
	switch s.opts.Deletion {
	case DeleteNever:
		return
	case DeleteByRelevance:
		// Relevance-based learning: a clause stays while at most
		// RelevanceBound of its literals are unassigned.
		w := 0
		for _, c := range s.learnts {
			if locked(c) || len(c.lits) <= 2 || s.unassignedCount(c) <= s.opts.RelevanceBound {
				s.learnts[w] = c
				w++
				continue
			}
			c.deleted = true
			s.detach(c)
			s.Stats.Deleted++
		}
		s.learnts = s.learnts[:w]
	case DeleteByActivity:
		// Remove the less-active half, keeping binary and locked clauses.
		if len(s.learnts) == 0 {
			return
		}
		med := s.medianActivity()
		w := 0
		removed := 0
		target := len(s.learnts) / 2
		for _, c := range s.learnts {
			if removed < target && !locked(c) && len(c.lits) > 2 && c.act < med {
				c.deleted = true
				s.detach(c)
				s.Stats.Deleted++
				removed++
				continue
			}
			s.learnts[w] = c
			w++
		}
		s.learnts = s.learnts[:w]
	}
}

func (s *Solver) unassignedCount(c *clause) int {
	n := 0
	for _, l := range c.lits {
		if s.LitValue(l) == cnf.Undef {
			n++
		}
	}
	return n
}

// medianActivity approximates the median learned-clause activity by
// averaging; Minisat uses a sort, but the average is adequate as a
// threshold and avoids the sort cost.
func (s *Solver) medianActivity() float64 {
	sum := 0.0
	for _, c := range s.learnts {
		sum += c.act
	}
	return sum / float64(len(s.learnts))
}

// pickBranchLit implements the configured Decide() heuristic.
func (s *Solver) pickBranchLit() cnf.Lit {
	if s.opts.RandomFreq > 0 && s.rng.Float64() < s.opts.RandomFreq {
		if l := s.randomLit(); l != cnf.LitUndef {
			return l
		}
	}
	switch s.opts.Decide {
	case DecideDLIS:
		if l := s.dlisLit(); l != cnf.LitUndef {
			return l
		}
	case DecideOrdered:
		for v := cnf.Var(1); int(v) <= s.NumVars(); v++ {
			if s.assigns[v] == cnf.Undef {
				return cnf.NegLit(v)
			}
		}
		return cnf.LitUndef
	case DecideRandom:
		return s.randomLit()
	}
	// VSIDS (default): most active unassigned variable, saved polarity.
	for !s.order.empty() {
		v := s.order.pop()
		if s.assigns[v] == cnf.Undef {
			return cnf.NewLit(v, !s.phase[v])
		}
	}
	return cnf.LitUndef
}

func (s *Solver) randomLit() cnf.Lit {
	n := s.NumVars()
	if n == 0 {
		return cnf.LitUndef
	}
	// Try random probes, then fall back to a scan.
	for try := 0; try < 10; try++ {
		v := cnf.Var(s.rng.Intn(n) + 1)
		if s.assigns[v] == cnf.Undef {
			return cnf.NewLit(v, s.rng.Intn(2) == 0)
		}
	}
	for v := cnf.Var(1); int(v) <= n; v++ {
		if s.assigns[v] == cnf.Undef {
			return cnf.NewLit(v, s.rng.Intn(2) == 0)
		}
	}
	return cnf.LitUndef
}

func (s *Solver) buildOccLists() {
	s.occList = make([][]*clause, 2*(s.NumVars()+1))
	for _, c := range s.clauses {
		for _, l := range c.lits {
			s.occList[l.Index()] = append(s.occList[l.Index()], c)
		}
	}
	s.dlisOcc = true
}

// dlisLit implements Dynamic Largest Individual Sum: the unassigned
// literal occurring in the largest number of unresolved clauses.
func (s *Solver) dlisLit() cnf.Lit {
	best := cnf.LitUndef
	bestCount := -1
	for v := cnf.Var(1); int(v) <= s.NumVars(); v++ {
		if s.assigns[v] != cnf.Undef {
			continue
		}
		for _, l := range []cnf.Lit{cnf.PosLit(v), cnf.NegLit(v)} {
			count := 0
			for _, c := range s.occList[l.Index()] {
				if c.deleted {
					continue
				}
				resolved := false
				for _, m := range c.lits {
					if s.LitValue(m) == cnf.True {
						resolved = true
						break
					}
				}
				if !resolved {
					count++
				}
			}
			if count > bestCount {
				bestCount = count
				best = l
			}
		}
	}
	return best
}
