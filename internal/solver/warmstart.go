package solver

import (
	"sort"

	"repro/internal/cnf"
)

// This file implements the branching warm-start path: a solver can
// export its most active variables with their saved phases (WarmProfile)
// and a fresh solver can seed its VSIDS heap and phase array from such a
// profile before the first search (Options.WarmStart). A portfolio
// records the winning worker's profile per instance class and feeds it
// to the next same-class solve — initial branching quality learned
// across runs instead of rediscovered from zero.

// WarmVar is one entry of a branching warm-start profile: a variable
// worth branching on early, with the polarity that served the recording
// solver last.
type WarmVar struct {
	Var   cnf.Var `json:"v"`
	Phase bool    `json:"phase"`
}

// WarmProfile returns the solver's top-k variables by VSIDS activity
// (most active first, ties broken by variable index) with their saved
// phases. Variables that never accumulated activity are omitted. It must
// not be called while Solve runs.
func (s *Solver) WarmProfile(k int) []WarmVar {
	type ranked struct {
		v   cnf.Var
		act float64
	}
	all := make([]ranked, 0, s.NumVars())
	for v := cnf.Var(1); int(v) <= s.NumVars(); v++ {
		if s.activity[v] > 0 {
			all = append(all, ranked{v, s.activity[v]})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].act != all[j].act {
			return all[i].act > all[j].act
		}
		return all[i].v < all[j].v
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]WarmVar, 0, k)
	for _, r := range all[:k] {
		out = append(out, WarmVar{Var: r.v, Phase: s.phase[r.v]})
	}
	return out
}

// applyWarmStart seeds the heuristic state from Options.WarmStart once,
// at the start of the first Solve call (variables and clauses may still
// be added between construction and solving). Each profile entry sets
// the variable's saved phase and an activity seed descending with rank,
// so the VSIDS heap initially pops the profile in order while conflict
// bumps retain full authority to overrule it. Entries naming unknown
// variables are ignored.
func (s *Solver) applyWarmStart() {
	if s.warmDone || len(s.opts.WarmStart) == 0 {
		return
	}
	s.warmDone = true
	n := len(s.opts.WarmStart)
	for i, wv := range s.opts.WarmStart {
		v := wv.Var
		if int(v) < 1 || int(v) > s.NumVars() {
			continue
		}
		s.phase[v] = wv.Phase
		s.activity[v] += s.varInc * float64(n-i)
		s.order.update(v)
	}
}
