package solver

import (
	"math/rand"
	"sync/atomic"

	"repro/internal/cnf"
)

// clause is the internal representation of an (original or recorded)
// clause. The literal at index 0 is the one the clause asserted when it
// acted as an antecedent; watched literals are always at indices 0 and 1.
type clause struct {
	lits    []cnf.Lit
	act     float64
	learnt  bool
	temp    bool // discard when its asserted literal is erased (NoLearning)
	deleted bool
}

type watcher struct {
	c       *clause
	blocker cnf.Lit
}

// Theory is the hook through which a structural layer (the circuit-SAT
// layer of paper §5) observes the search. Value consistency remains the
// SAT engine's job; the theory maintains justification state and may
// terminate the search early or suggest decisions (backtracing).
type Theory interface {
	// OnAssign is invoked after the literal l becomes true on the trail.
	OnAssign(l cnf.Lit)
	// OnUnassign is invoked when the assignment to l is erased.
	OnUnassign(l cnf.Lit)
	// Done reports whether the current (possibly partial) assignment
	// already establishes satisfiability for the theory's purposes
	// (e.g. an empty justification frontier).
	Done() bool
	// Suggest returns the next decision literal, or LitUndef to defer to
	// the solver's heuristic.
	Suggest() cnf.Lit
}

// Solver is an incremental CDCL SAT solver. Create one with New, add
// clauses with AddClause, then call Solve (optionally with assumption
// literals). The solver may be reused across Solve calls, with more
// variables and clauses added in between (§6: iterative/incremental use).
type Solver struct {
	opts Options
	rng  *rand.Rand

	// Problem state.
	clauses []*clause // original problem clauses
	learnts []*clause // recorded (conflict) clauses
	watches [][]watcher
	occList [][]*clause // static occurrence lists (DLIS only), by lit index

	// Assignment state, indexed by variable.
	assigns  []cnf.LBool
	level    []int32
	reason   []*clause
	phase    []bool // saved polarity
	activity []float64
	seen     []byte

	trail    []cnf.Lit
	trailLim []int
	qhead    int

	// Heuristic state.
	order    *varHeap
	varInc   float64
	claInc   float64
	dlisOcc  bool
	maxLearn float64

	// Assumption handling.
	assumptions []cnf.Lit
	conflictSet []cnf.Lit // final conflict core over assumptions

	stop atomic.Bool // asynchronous interrupt request (Interrupt)

	ok      bool // false once the clause set is trivially unsat
	theory  Theory
	partial bool           // last model is partial (theory early stop)
	model   cnf.Assignment // satisfying assignment copied at Sat time

	startConflicts int64 // per-Solve budget baselines
	startDecisions int64

	proofLog *Proof // recorded conflict clauses (Options.LogProof)

	// Scratch buffers for analyze.
	analyzeStack []cnf.Lit
	analyzeToClr []cnf.Lit

	Stats Stats
}

// New creates a solver over n variables with the given options.
func New(n int, opts Options) *Solver {
	s := &Solver{
		opts:   opts.withDefaults(),
		varInc: 1.0,
		claInc: 1.0,
		ok:     true,
	}
	s.rng = rand.New(rand.NewSource(s.opts.Seed))
	s.order = newVarHeap(&s.activity)
	if s.opts.LogProof {
		s.proofLog = &Proof{}
	}
	s.growTo(n)
	return s
}

// FromFormula creates a solver loaded with all clauses of f.
func FromFormula(f *cnf.Formula, opts Options) *Solver {
	s := New(f.NumVars(), opts)
	for _, c := range f.Clauses {
		s.AddClause(c)
	}
	return s
}

// NumVars returns the number of variables known to the solver.
func (s *Solver) NumVars() int { return len(s.assigns) - 1 }

// NewVar adds a fresh variable and returns it.
func (s *Solver) NewVar() cnf.Var {
	s.growTo(s.NumVars() + 1)
	return cnf.Var(s.NumVars())
}

func (s *Solver) growTo(n int) {
	for len(s.assigns) < n+1 {
		s.assigns = append(s.assigns, cnf.Undef)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, nil)
		s.phase = append(s.phase, false)
		s.activity = append(s.activity, 0)
		s.seen = append(s.seen, 0)
		s.watches = append(s.watches, nil, nil)
		v := cnf.Var(len(s.assigns) - 1)
		if v >= 1 {
			s.order.push(v)
		}
	}
	for len(s.watches) < 2*(n+1) {
		s.watches = append(s.watches, nil)
	}
}

// SetTheory installs a structural theory layer. It must be installed
// before the first Solve call and before any assignments exist.
func (s *Solver) SetTheory(t Theory) { s.theory = t }

// Okay reports whether the clause database is still possibly satisfiable
// (false after a top-level contradiction was added).
func (s *Solver) Okay() bool { return s.ok }

// Value returns the current/model value of variable v.
func (s *Solver) Value(v cnf.Var) cnf.LBool { return s.assigns[v] }

// LitValue returns the current/model value of literal l.
func (s *Solver) LitValue(l cnf.Lit) cnf.LBool {
	v := s.assigns[l.Var()]
	if l.IsNeg() {
		return v.Not()
	}
	return v
}

// Model returns a copy of the satisfying assignment captured by the last
// Sat result (nil if the last Solve was not Sat). When a theory stopped
// the search early the model may be partial (contain Undef entries):
// exactly the non-overspecified patterns of §5.
func (s *Solver) Model() cnf.Assignment {
	if s.model == nil {
		return nil
	}
	return s.model.Clone()
}

// PartialModel reports whether the last Sat model was partial.
func (s *Solver) PartialModel() bool { return s.partial }

// Core returns the subset of the assumption literals proven jointly
// inconsistent by the last Unsat answer (the "conflict core").
func (s *Solver) Core() []cnf.Lit {
	out := make([]cnf.Lit, len(s.conflictSet))
	copy(out, s.conflictSet)
	return out
}

// decisionLevel returns the current decision level d of Figure 2.
func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause at decision level 0. It returns false if the
// clause makes the database trivially unsatisfiable. Any in-progress
// assignment above level 0 (left over from the previous Solve) is erased.
func (s *Solver) AddClause(lits cnf.Clause) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	if mv := int(lits.MaxVar()); mv > s.NumVars() {
		s.growTo(mv)
	}
	norm, taut := lits.Normalize()
	if taut {
		return true
	}
	// Simplify against top-level assignments.
	out := norm[:0]
	for _, l := range norm {
		switch s.LitValue(l) {
		case cnf.True:
			if s.level[l.Var()] == 0 {
				return true // already satisfied forever
			}
			out = append(out, l)
		case cnf.False:
			if s.level[l.Var()] == 0 {
				continue // permanently false literal
			}
			out = append(out, l)
		default:
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if s.LitValue(out[0]) == cnf.False {
			s.ok = false
			return false
		}
		if s.LitValue(out[0]) == cnf.Undef {
			s.uncheckedEnqueue(out[0], nil)
			if s.propagate() != nil {
				s.ok = false
				return false
			}
		}
		return true
	}
	c := &clause{lits: append([]cnf.Lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	if s.dlisOcc {
		for _, l := range c.lits {
			s.occList[l.Index()] = append(s.occList[l.Index()], c)
		}
	}
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Not().Index()] = append(s.watches[c.lits[0].Not().Index()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Not().Index()] = append(s.watches[c.lits[1].Not().Index()], watcher{c, c.lits[0]})
}

func (s *Solver) detach(c *clause) {
	s.removeWatch(c.lits[0].Not(), c)
	s.removeWatch(c.lits[1].Not(), c)
}

func (s *Solver) removeWatch(l cnf.Lit, c *clause) {
	ws := s.watches[l.Index()]
	for i := range ws {
		if ws[i].c == c {
			ws[i] = ws[len(ws)-1]
			s.watches[l.Index()] = ws[:len(ws)-1]
			return
		}
	}
}

// uncheckedEnqueue places l on the trail as true with the given
// antecedent (nil for decisions and top-level facts).
func (s *Solver) uncheckedEnqueue(l cnf.Lit, from *clause) {
	v := l.Var()
	s.assigns[v] = cnf.FromBool(!l.IsNeg())
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
	if s.theory != nil {
		s.theory.OnAssign(l)
	}
}

// propagate is the Deduce() function of Figure 2: it performs Boolean
// constraint propagation from the current queue head and returns the
// conflicting clause, or nil if no clause became unsatisfied.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		ws := s.watches[p.Index()]
		s.Stats.Propagations++
		i, j := 0, 0
		var confl *clause
	watchLoop:
		for i < len(ws) {
			w := ws[i]
			if w.c.deleted {
				i++
				continue // drop lazily
			}
			if s.LitValue(w.blocker) == cnf.True {
				ws[j] = w
				i++
				j++
				continue
			}
			c := w.c
			// Ensure the false literal (¬p) is at index 1.
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.LitValue(first) == cnf.True {
				ws[j] = watcher{c, first}
				i++
				j++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.LitValue(c.lits[k]) != cnf.False {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not().Index()] = append(s.watches[c.lits[1].Not().Index()], watcher{c, first})
					i++
					continue watchLoop
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{c, first}
			i++
			j++
			if s.LitValue(first) == cnf.False {
				confl = c
				s.qhead = len(s.trail)
				break
			}
			s.uncheckedEnqueue(first, c)
		}
		for ; i < len(ws); i++ {
			ws[j] = ws[i]
			j++
		}
		s.watches[p.Index()] = ws[:j]
		if confl != nil {
			return confl
		}
	}
	return nil
}

// cancelUntil is the Erase() function of Figure 2: it undoes all
// assignments above the given decision level.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.Var()
		if !s.opts.NoPhaseSaving {
			s.phase[v] = !l.IsNeg()
		}
		if r := s.reason[v]; r != nil && r.temp && !r.deleted {
			// NoLearning: the recorded clause dies with its assignment.
			// Temp clauses are never attached to watch lists, so marking
			// suffices; the GC reclaims them once the reason is cleared.
			r.deleted = true
		}
		s.assigns[v] = cnf.Undef
		s.reason[v] = nil
		s.order.pushIfAbsent(v)
		if s.theory != nil {
			s.theory.OnUnassign(l)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v cnf.Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) decayVar() { s.varInc /= s.opts.VarDecay }

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayClause() { s.claInc /= s.opts.ClauseDecay }
