package solver

import (
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/cnf"
)

// watcher guards one clause for a watched literal. In the long-clause
// store (size ≥ 3) blocker is some other literal of the clause: if it is
// already true the clause is satisfied and the arena is never touched.
// In the binary store the same struct specializes two-literal clauses:
// blocker IS the clause's other (implied) literal and cref the reason
// reference, so binary propagation performs zero arena reads. Binary
// clauses are never deleted by any reduction policy, so binary lists
// need no lazy-deletion filtering (only GC relocation patching).
type watcher struct {
	cref    CRef
	blocker cnf.Lit
}

// Theory is the hook through which a structural layer (the circuit-SAT
// layer of paper §5) observes the search. Value consistency remains the
// SAT engine's job; the theory maintains justification state and may
// terminate the search early or suggest decisions (backtracing).
type Theory interface {
	// OnAssign is invoked after the literal l becomes true on the trail.
	OnAssign(l cnf.Lit)
	// OnUnassign is invoked when the assignment to l is erased.
	OnUnassign(l cnf.Lit)
	// Done reports whether the current (possibly partial) assignment
	// already establishes satisfiability for the theory's purposes
	// (e.g. an empty justification frontier).
	Done() bool
	// Suggest returns the next decision literal, or LitUndef to defer to
	// the solver's heuristic.
	Suggest() cnf.Lit
}

// Solver is an incremental CDCL SAT solver. Create one with New, add
// clauses with AddClause, then call Solve (optionally with assumption
// literals). The solver may be reused across Solve calls, with more
// variables and clauses added in between (§6: iterative/incremental use).
type Solver struct {
	opts Options
	rng  *rand.Rand

	// Problem state. All clauses live in the flat arena db (which also
	// owns the per-tier learnt rosters); the watcher stores and the
	// clause roster hold CRef offsets into it.
	db         clauseDB
	clauses    []CRef     // original problem clauses
	watches    watchStore // long-clause watcher pages, by literal index
	binWatches watchStore // binary watcher pages (blocker = the implied literal)
	occList    [][]CRef   // static occurrence lists (DLIS only), by lit index

	// Slice-of-slices watcher lists, used only under
	// Options.LegacyWatcherStore (the BenchmarkE32 baseline).
	legacyWatches [][]watcher
	legacyBin     [][]watcher

	// Assignment state, indexed by variable.
	assigns  []cnf.LBool
	level    []int32
	reason   []CRef
	phase    []bool // saved polarity
	activity []float64
	seen     []byte

	trail    []cnf.Lit
	trailLim []int
	qhead    int

	// Heuristic state.
	order    *varHeap
	varInc   float64
	claInc   float64
	dlisOcc  bool
	maxLearn float64

	// Assumption handling.
	assumptions []cnf.Lit
	conflictSet []cnf.Lit // final conflict core over assumptions

	stop atomic.Bool // asynchronous interrupt request (Interrupt)

	ok      bool // false once the clause set is trivially unsat
	theory  Theory
	partial bool           // last model is partial (theory early stop)
	model   cnf.Assignment // satisfying assignment copied at Sat time

	startConflicts int64 // per-Solve budget baselines
	startDecisions int64

	// Inprocessing state (inprocess.go). The occurrence index and the
	// vivification cursor are transient — dropped by the arena GC and
	// never checkpointed; the variable-elimination records are logical
	// solver state and survive checkpoints.
	inproc inprocState

	warmDone bool // Options.WarmStart has been applied (first Solve)

	proof    ProofWriter // streaming DRAT sink (Options.Proof / LogProof)
	proofLog *Proof      // in-memory log behind s.Proof() (Options.LogProof)

	// prog mirrors the scheduling-relevant subset of Stats in atomics so
	// Snapshot can sample a RUNNING search from another goroutine (the
	// adaptive portfolio supervisor). Updated at conflict granularity —
	// a few atomic adds per conflict, noise next to conflict analysis.
	prog progressCounters

	// Scratch buffers for analyze. learntBuf backs the learnt clause
	// itself: record copies it into the arena and exportLearnt only
	// lends it out, so one buffer serves every conflict.
	analyzeStack []cnf.Lit
	analyzeToClr []cnf.Lit
	learntBuf    []cnf.Lit

	Stats Stats
}

// New creates a solver over n variables with the given options.
func New(n int, opts Options) *Solver {
	s := &Solver{
		opts:   opts.withDefaults(),
		varInc: 1.0,
		claInc: 1.0,
		ok:     true,
	}
	s.rng = rand.New(rand.NewSource(s.opts.Seed))
	s.order = newVarHeap(&s.activity)
	if s.opts.Proof != nil {
		s.proof = s.opts.Proof
	} else if s.opts.LogProof {
		s.proofLog = &Proof{}
		s.proof = s.proofLog
	}
	s.watches.init(s.opts.WatchPageSize)
	s.binWatches.init(s.opts.WatchPageSize)
	s.growTo(n)
	return s
}

// FromFormula creates a solver loaded with all clauses of f.
func FromFormula(f *cnf.Formula, opts Options) *Solver {
	s := New(f.NumVars(), opts)
	for _, c := range f.Clauses {
		s.AddClause(c)
	}
	return s
}

// NumVars returns the number of variables known to the solver.
func (s *Solver) NumVars() int { return len(s.assigns) - 1 }

// NewVar adds a fresh variable and returns it.
func (s *Solver) NewVar() cnf.Var {
	s.growTo(s.NumVars() + 1)
	return cnf.Var(s.NumVars())
}

func (s *Solver) growTo(n int) {
	for len(s.assigns) < n+1 {
		s.assigns = append(s.assigns, cnf.Undef)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, CRefUndef)
		s.phase = append(s.phase, false)
		s.activity = append(s.activity, 0)
		s.seen = append(s.seen, 0)
		if s.inproc.elimVars != nil {
			s.inproc.elimVars = append(s.inproc.elimVars, false)
		}
		v := cnf.Var(len(s.assigns) - 1)
		if v >= 1 {
			s.order.push(v)
		}
	}
	if s.opts.LegacyWatcherStore {
		for len(s.legacyWatches) < 2*(n+1) {
			s.legacyWatches = append(s.legacyWatches, nil)
			s.legacyBin = append(s.legacyBin, nil)
		}
		return
	}
	s.watches.growLits(2 * (n + 1))
	s.binWatches.growLits(2 * (n + 1))
}

// SetTheory installs a structural theory layer. It must be installed
// before the first Solve call and before any assignments exist.
func (s *Solver) SetTheory(t Theory) { s.theory = t }

// Okay reports whether the clause database is still possibly satisfiable
// (false after a top-level contradiction was added).
func (s *Solver) Okay() bool { return s.ok }

// Value returns the value of variable v: the live (possibly partial)
// assignment while Solve runs, the model after a Sat answer. For a
// value that outlives further Solve/AddClause calls use Model, which
// copies.
func (s *Solver) Value(v cnf.Var) cnf.LBool { return s.assigns[v] }

// LitValue returns the value of literal l under the same live-state
// rules as Value.
func (s *Solver) LitValue(l cnf.Lit) cnf.LBool {
	v := s.assigns[l.Var()]
	if l.IsNeg() {
		return v.Not()
	}
	return v
}

// Model returns a copy of the satisfying assignment captured by the last
// Sat result (nil if the last Solve was not Sat). When a theory stopped
// the search early the model may be partial (contain Undef entries):
// exactly the non-overspecified patterns of §5.
func (s *Solver) Model() cnf.Assignment {
	if s.model == nil {
		return nil
	}
	return s.model.Clone()
}

// PartialModel reports whether the last Sat model was partial.
func (s *Solver) PartialModel() bool { return s.partial }

// Core returns the subset of the assumption literals proven jointly
// inconsistent by the last Unsat answer (the "conflict core"). The
// returned slice is a fresh copy owned by the caller; it stays valid
// across further Solve calls.
func (s *Solver) Core() []cnf.Lit {
	out := make([]cnf.Lit, len(s.conflictSet))
	copy(out, s.conflictSet)
	return out
}

// decisionLevel returns the current decision level d of Figure 2.
func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause at decision level 0. It returns false if the
// clause makes the database trivially unsatisfiable. Any in-progress
// assignment above level 0 (left over from the previous Solve) is erased.
func (s *Solver) AddClause(lits cnf.Clause) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	if mv := int(lits.MaxVar()); mv > s.NumVars() {
		s.growTo(mv)
	}
	norm, taut := lits.Normalize()
	if taut {
		return true
	}
	// A new clause over an in-search-eliminated variable re-constrains
	// it: the elimination is no longer model-preserving, so undo it (all
	// of them — records may chain through each other) before adding.
	for _, l := range norm {
		if s.isEliminated(l.Var()) {
			if !s.restoreEliminated() {
				return false
			}
			break
		}
	}
	return s.addClauseCore(norm)
}

// addClauseCore installs an already-normalized clause at decision level
// 0: the tail of AddClause, shared with restoreEliminated (which re-adds
// recorded clauses whose variables are all known).
func (s *Solver) addClauseCore(norm cnf.Clause) bool {
	// Simplify against top-level assignments.
	out := norm[:0]
	for _, l := range norm {
		switch s.LitValue(l) {
		case cnf.True:
			if s.level[l.Var()] == 0 {
				return true // already satisfied forever
			}
			out = append(out, l)
		case cnf.False:
			if s.level[l.Var()] == 0 {
				continue // permanently false literal
			}
			out = append(out, l)
		default:
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if s.LitValue(out[0]) == cnf.False {
			s.ok = false
			return false
		}
		if s.LitValue(out[0]) == cnf.Undef {
			s.uncheckedEnqueue(out[0], CRefUndef)
			if s.propagate() != CRefUndef {
				s.ok = false
				return false
			}
		}
		return true
	}
	c := s.db.alloc(out, false, false, 0)
	s.clauses = append(s.clauses, c)
	s.attach(c)
	if s.dlisOcc {
		for _, l := range s.db.lits(c) {
			s.occList[l.Index()] = append(s.occList[l.Index()], c)
		}
	}
	return true
}

func (s *Solver) attach(c CRef) {
	if s.opts.LegacyWatcherStore {
		s.attachLegacy(c)
		return
	}
	lits := s.db.lits(c)
	if len(lits) == 2 {
		s.binWatches.push(lits[0].Not().Index(), watcher{c, lits[1]})
		s.binWatches.push(lits[1].Not().Index(), watcher{c, lits[0]})
		return
	}
	s.watches.push(lits[0].Not().Index(), watcher{c, lits[1]})
	s.watches.push(lits[1].Not().Index(), watcher{c, lits[0]})
}

// Clause deletion is fully lazy: reduceDB only tombstones headers
// (markDeleted); propagate drops a stale watcher when it meets one, and
// garbageCollect sweeps the rest. There is deliberately no eager detach
// — it would cost two linear watch-list scans per deleted clause.

// uncheckedEnqueue places l on the trail as true with the given
// antecedent (CRefUndef for decisions and top-level facts).
func (s *Solver) uncheckedEnqueue(l cnf.Lit, from CRef) {
	v := l.Var()
	s.assigns[v] = cnf.FromBool(!l.IsNeg())
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
	if s.theory != nil {
		s.theory.OnAssign(l)
	}
}

// propagate is the Deduce() function of Figure 2: it performs Boolean
// constraint propagation from the current queue head and returns the
// conflicting clause, or CRefUndef if no clause became unsatisfied.
//
// The long-clause loop walks the propagated literal's page in the
// paged watcher store by offset, compacting kept watchers in place. A
// replacement watch is pushed onto ANOTHER literal's page (never the one
// being walked — the new watch is a non-false literal, the walked one is
// false), which may reallocate the store's backing slice; the cached
// data slice is therefore reloaded after every push. Page offsets are
// stable across pushes, so the walk itself never restarts.
func (s *Solver) propagate() CRef {
	if s.opts.LegacyWatcherStore {
		return s.propagateLegacy()
	}
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		pi := p.Index()

		// Binary clauses first: the implied literal lives inside the
		// watcher, so this loop never dereferences the arena. No pushes
		// happen here, so holding the page slice is safe.
		for _, bw := range s.binWatches.list(pi) {
			switch s.LitValue(bw.blocker) {
			case cnf.True:
			case cnf.False:
				s.qhead = len(s.trail)
				return bw.cref
			default:
				s.uncheckedEnqueue(bw.blocker, bw.cref)
			}
		}

		r := s.watches.ref[pi] // header copy; only our truncate below mutates it
		ws := s.watches.data[r.off : r.off+r.n : r.off+r.n]
		i, j := 0, 0
		var confl CRef = CRefUndef
	watchLoop:
		for i < len(ws) {
			w := ws[i]
			if s.LitValue(w.blocker) == cnf.True {
				ws[j] = w
				i++
				j++
				continue
			}
			if s.db.deleted(w.cref) {
				i++
				continue // drop lazily
			}
			lits := s.db.lits(w.cref)
			// Ensure the false literal (¬p) is at index 1.
			if lits[0] == p.Not() {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.LitValue(first) == cnf.True {
				ws[j] = watcher{w.cref, first}
				i++
				j++
				continue
			}
			// Look for a new literal to watch. The push is hand-inlined
			// (watchStore.push is just over the compiler's inline
			// budget and this is the one hot call site).
			for k := 2; k < len(lits); k++ {
				if s.LitValue(lits[k]) != cnf.False {
					lits[1], lits[k] = lits[k], lits[1]
					nr := &s.watches.ref[lits[1].Not().Index()]
					if nr.n == nr.cap {
						s.watches.grow(nr)
					}
					s.watches.data[nr.off+nr.n] = watcher{w.cref, first}
					nr.n++
					// The push may have relocated the backing slice; our
					// page offset is stable, so re-derive the window.
					ws = s.watches.data[r.off : r.off+r.n : r.off+r.n]
					i++
					continue watchLoop
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{w.cref, first}
			i++
			j++
			if s.LitValue(first) == cnf.False {
				confl = w.cref
				s.qhead = len(s.trail)
				break
			}
			s.uncheckedEnqueue(first, w.cref)
		}
		for ; i < len(ws); i++ {
			ws[j] = ws[i]
			j++
		}
		s.watches.truncate(pi, uint32(j))
		if confl != CRefUndef {
			return confl
		}
	}
	return CRefUndef
}

// cancelUntil is the Erase() function of Figure 2: it undoes all
// assignments above the given decision level.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.Var()
		if !s.opts.NoPhaseSaving {
			s.phase[v] = !l.IsNeg()
		}
		if r := s.reason[v]; r != CRefUndef && s.db.temp(r) && !s.db.deleted(r) {
			// NoLearning: the recorded clause dies with its assignment.
			// Temp clauses are never attached to watch lists, so the
			// tombstone suffices; the arena GC reclaims the words.
			s.db.markDeleted(r)
		}
		s.assigns[v] = cnf.Undef
		s.reason[v] = CRefUndef
		s.order.pushIfAbsent(v)
		if s.theory != nil {
			s.theory.OnUnassign(l)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// maybeGC runs the relocating arena collector once tombstoned clauses
// waste a quarter of the arena (with a floor so tiny instances never
// bother). Callers must hold no CRef in a local across the call.
func (s *Solver) maybeGC() {
	if s.db.wasted > 1024 && s.db.wasted*4 >= len(s.db.arena) {
		s.garbageCollect()
	}
}

// garbageCollect compacts the clause arena, dropping tombstoned clauses,
// and patches every live reference: long and binary watcher pages,
// reason antecedents and the DLIS occurrence lists. The learnt rosters
// are rebuilt by compact itself (tier membership lives in the clause
// headers), so they need no patching here. Safe at any point where no
// caller holds an unpatched CRef.
func (s *Solver) garbageCollect() {
	gcStart := time.Now()
	defer func() { s.prog.phaseNS[PhaseGC].Add(int64(time.Since(gcStart))) }()
	newArena := s.db.compact()
	for i, c := range s.clauses {
		s.clauses[i] = s.db.forward(c)
	}
	if s.opts.LegacyWatcherStore {
		s.patchWatchesLegacy()
	} else {
		// Long watcher pages may still reference tombstoned clauses
		// (lazy deletion): those watchers die here, and mostly-empty
		// pages are exchanged for smaller ones (old page onto the free
		// chain) by shrink — the GC sweep is the one place pages give
		// memory back.
		for li := range s.watches.ref {
			r := s.watches.ref[li]
			data := s.watches.data
			w := uint32(0)
			for i := uint32(0); i < r.n; i++ {
				x := data[r.off+i]
				if s.db.deleted(x.cref) {
					continue
				}
				x.cref = s.db.forward(x.cref)
				data[r.off+w] = x
				w++
			}
			s.watches.shrink(li, w)
		}
		// Binary clauses are never deleted; patch pages in place.
		for li := range s.binWatches.ref {
			ws := s.binWatches.list(li)
			for i := range ws {
				ws[i].cref = s.db.forward(ws[i].cref)
			}
		}
	}
	// Locked antecedents survive by construction (reduceDB never deletes
	// them, and temp reasons are tombstoned only after being cleared).
	for v := range s.reason {
		if s.reason[v] != CRefUndef {
			s.reason[v] = s.db.forward(s.reason[v])
		}
	}
	if s.dlisOcc {
		// Occurrence lists hold problem clauses; in-search variable
		// elimination may have tombstoned some, so filter while patching.
		for li := range s.occList {
			oc := s.occList[li]
			w := 0
			for _, c := range oc {
				if s.db.deleted(c) {
					continue
				}
				oc[w] = s.db.forward(c)
				w++
			}
			s.occList[li] = oc[:w]
		}
	}
	// Relocation invalidates the inprocessing occurrence index (compact
	// cleared the membership flags); it is rebuilt lazily next round.
	s.inproc.dropOccIndex()
	s.db.arena = newArena
	s.db.wasted = 0
	s.Stats.ArenaGCs++
}

func (s *Solver) bumpVar(v cnf.Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) decayVar() { s.varInc /= s.opts.VarDecay }

// bumpClause raises a learnt clause's activity and marks it touched:
// reduceDB's mid-tier demotion keeps exactly the clauses that were
// bumped (used in conflict analysis) since the previous reduction.
func (s *Solver) bumpClause(c CRef) {
	a := s.db.act(c) + s.claInc
	s.db.setAct(c, a)
	s.db.setTouched(c)
	if a > 1e20 {
		for t := range s.db.roster {
			for _, lc := range s.db.roster[t] {
				s.db.setAct(lc, s.db.act(lc)*1e-20)
			}
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayClause() { s.claInc /= s.opts.ClauseDecay }
