package solver

import (
	"math"

	"repro/internal/cnf"
)

// This file implements the flat clause arena that backs the solver's
// clause database. Clauses are not individual heap objects: every clause
// lives inside one contiguous slice, addressed by a CRef word offset.
// The representation removes pointer chasing from the BCP hot loop and
// takes the entire clause database out of the Go garbage collector's
// scan set (the arena is a single pointer-free allocation).
//
// Arena layout of one clause starting at offset c:
//
//	word c+0: size<<8 | learnt<<0 | temp<<1 | deleted<<2 | touched<<3 | tier<<4 | occidx<<6 | pad<<7
//	word c+1: LBD (literal-block distance at learn time; 0 = problem clause)
//	word c+2: activity (compressed float, see actEncode)
//	word c+3 … c+3+size-1: the literals
//
// The arena is []cnf.Lit rather than []uint32 purely so that lits() can
// return a zero-copy typed sub-slice without unsafe; header words store
// uint32 bit patterns through lossless int32 casts.
//
// Besides the arena proper, the clauseDB owns the learnt-clause rosters:
// three flat CRef segments, one per glue tier (core/mid/local), which
// reduceDB iterates instead of one mixed roster. Roster membership is
// derivable from the packed headers (learnt && !temp, tier bits), so the
// relocating collector rebuilds all three segments in place during its
// single compaction sweep — rosters need no separate patching pass and
// can never drift out of sync with the arena.

// CRef addresses a clause as a word offset into the solver's clause
// arena. CRefUndef means "no clause" (a decision or a top-level fact).
// A CRef is only valid until the next arena compaction (garbageCollect);
// code that must hold a clause across a possible compaction holds it in
// a structure the collector patches (rosters, watcher pages, reason[]).
type CRef uint32

// CRefUndef is the null clause reference.
const CRefUndef CRef = ^CRef(0)

const (
	clsHdrWords = 3
	flagLearnt  = 1 << 0
	flagTemp    = 1 << 1
	flagDeleted = 1 << 2
	flagTouched = 1 << 3 // bumped since the last reduceDB round
	tierShift   = 4
	tierMask    = 3 << tierShift
	flagOccIdx  = 1 << 6 // entered into the inprocessing occurrence index
	flagPad     = 1 << 7 // not a clause: filler left by an in-place shrink
	flagBits    = 8
)

// Learnt-clause roster tiers. A clause's tier is assigned from its
// learn-time LBD (tierOfLBD) and only ever moves downward: reduceDB
// demotes a mid clause that was not touched since the last reduction to
// the local tier, where it competes on activity.
const (
	tierCore  = iota // LBD ≤ coreLBDMax: kept forever, never scanned by reduceDB
	tierMid          // LBD ≤ midLBDMax: kept while touched between reductions
	tierLocal        // the rest: compete on activity every reduction
	numTiers
)

// tierOfLBD maps a learn-time LBD to its roster tier.
func tierOfLBD(lbd int) int {
	switch {
	case lbd <= coreLBDMax:
		return tierCore
	case lbd <= midLBDMax:
		return tierMid
	default:
		return tierLocal
	}
}

// clauseDB is the arena plus the bookkeeping its relocating garbage
// collector needs. Deleted clauses stay in place (their headers keep the
// traversal intact) until compact() squeezes them out.
type clauseDB struct {
	arena  []cnf.Lit
	wasted int // words occupied by deleted clauses; the GC trigger

	// roster holds every live learnt (non-temp) clause, segmented by
	// glue tier. Compaction rebuilds the segments from clause headers;
	// reduceDB compacts them in place as it tombstones.
	roster [numTiers][]CRef
}

// alloc appends a clause to the arena and returns its reference. Learnt
// clauses start in the tier their learn-time LBD selects and with the
// touched bit set, so a clause recorded just before a reduction is not
// instantly demoted as "idle".
func (db *clauseDB) alloc(lits []cnf.Lit, learnt, temp bool, lbd int) CRef {
	c := CRef(len(db.arena))
	hdr := uint32(len(lits)) << flagBits
	if learnt {
		hdr |= flagLearnt | flagTouched | uint32(tierOfLBD(lbd))<<tierShift
	}
	if temp {
		hdr |= flagTemp
	}
	db.arena = append(db.arena, cnf.Lit(int32(hdr)), cnf.Lit(int32(uint32(lbd))), 0)
	db.arena = append(db.arena, lits...)
	return c
}

// addLearnt enters a freshly allocated learnt clause into the roster
// segment of its tier. The caller must not add temp clauses (NoLearning
// antecedents live outside the rosters and die with their assignment).
func (db *clauseDB) addLearnt(c CRef) {
	db.roster[db.tier(c)] = append(db.roster[db.tier(c)], c)
}

// learntCount returns the number of live learnt clauses across all
// roster tiers (the quantity MaxLearnts-style growth policies bound).
func (db *clauseDB) learntCount() int {
	return len(db.roster[tierCore]) + len(db.roster[tierMid]) + len(db.roster[tierLocal])
}

func (db *clauseDB) header(c CRef) uint32 { return uint32(db.arena[c]) }

// size returns the number of literals of clause c.
func (db *clauseDB) size(c CRef) int { return int(db.header(c) >> flagBits) }

// lits returns the clause's literal slice, aliasing the arena: writes
// through it (watched-literal swaps) update the clause in place. The
// slice is invalidated by the next alloc or garbageCollect.
func (db *clauseDB) lits(c CRef) []cnf.Lit {
	i := int(c) + clsHdrWords
	return db.arena[i : i+int(db.header(c)>>flagBits) : i+int(db.header(c)>>flagBits)]
}

func (db *clauseDB) learnt(c CRef) bool  { return db.header(c)&flagLearnt != 0 }
func (db *clauseDB) temp(c CRef) bool    { return db.header(c)&flagTemp != 0 }
func (db *clauseDB) deleted(c CRef) bool { return db.header(c)&flagDeleted != 0 }

// touched reports whether the clause was bumped (used as an antecedent
// in conflict analysis) since the last reduceDB round.
func (db *clauseDB) touched(c CRef) bool { return db.header(c)&flagTouched != 0 }

func (db *clauseDB) setTouched(c CRef) {
	db.arena[c] = cnf.Lit(int32(db.header(c) | flagTouched))
}

func (db *clauseDB) clearTouched(c CRef) {
	db.arena[c] = cnf.Lit(int32(db.header(c) &^ uint32(flagTouched)))
}

// occIndexed reports whether inprocessing entered the clause into its
// occurrence index (the flag prevents double insertion across rounds;
// compact clears it, because a relocation invalidates the whole index).
func (db *clauseDB) occIndexed(c CRef) bool { return db.header(c)&flagOccIdx != 0 }

func (db *clauseDB) setOccIndexed(c CRef) {
	db.arena[c] = cnf.Lit(int32(db.header(c) | flagOccIdx))
}

// shrinkTo rewrites clause c in place to the m-literal prefix currently
// stored at positions [0, m) (the caller has already compacted the kept
// literals there). The freed tail words become a pad pseudo-entry — a
// one-word header with flagPad whose size field counts the extra filler
// words — so the arena stays linearly traversable; compact() reclaims the
// pad like any tombstone. The recorded LBD is capped at the new size.
func (db *clauseDB) shrinkTo(c CRef, m int) {
	n := db.size(c)
	if m >= n {
		return
	}
	hdr := db.header(c)&((1<<flagBits)-1) | uint32(m)<<flagBits
	db.arena[c] = cnf.Lit(int32(hdr))
	if lbd := db.lbd(c); lbd > m && lbd != 0 {
		db.arena[c+1] = cnf.Lit(int32(uint32(m)))
	}
	pad := int(c) + clsHdrWords + m
	k := n - m
	db.arena[pad] = cnf.Lit(int32(uint32(flagPad|flagDeleted) | uint32(k-1)<<flagBits))
	db.wasted += k
}

// tier returns the clause's roster tier (meaningful for learnt clauses).
func (db *clauseDB) tier(c CRef) int { return int(db.header(c)&tierMask) >> tierShift }

// setTier rewrites the clause's tier bits (reduceDB demotion). The
// caller also moves the CRef between roster segments.
func (db *clauseDB) setTier(c CRef, t int) {
	db.arena[c] = cnf.Lit(int32(db.header(c)&^uint32(tierMask) | uint32(t)<<tierShift))
}

// markDeleted tombstones the clause; the words are reclaimed by the next
// compaction. Watchers referencing it are dropped lazily.
func (db *clauseDB) markDeleted(c CRef) {
	db.arena[c] = cnf.Lit(int32(db.header(c) | flagDeleted))
	db.wasted += clsHdrWords + db.size(c)
}

// lbd returns the literal-block distance recorded at learn time.
func (db *clauseDB) lbd(c CRef) int { return int(uint32(db.arena[c+1])) }

// Clause activities are stored as float32 bit patterns in one header
// word; float32 resolution is ample for a deletion-ordering heuristic.
func (db *clauseDB) act(c CRef) float64 {
	return float64(math.Float32frombits(uint32(db.arena[c+2])))
}

func (db *clauseDB) setAct(c CRef, a float64) {
	db.arena[c+2] = cnf.Lit(int32(math.Float32bits(float32(a))))
}

// compact copies every live clause into a fresh arena and leaves a
// forwarding address in the old clause's LBD slot (the copy is taken
// first, so the new clause keeps its real LBD). The caller patches all
// outstanding CRefs through forward() and then installs the new arena.
//
// The learnt rosters are rebuilt in place during the same sweep: every
// surviving learnt (non-temp) clause is re-entered into its tier segment
// at its post-compaction address, so the segments come out compacted,
// patched and ordered by arena position in one pass — the caller never
// patches rosters itself.
func (db *clauseDB) compact() []cnf.Lit {
	newArena := make([]cnf.Lit, 0, len(db.arena)-db.wasted)
	for t := range db.roster {
		db.roster[t] = db.roster[t][:0]
	}
	for c := 0; c < len(db.arena); {
		hdr := uint32(db.arena[c])
		if hdr&flagPad != 0 {
			// Filler left by an in-place shrink: one header word plus
			// size extra words, never live.
			c += 1 + int(hdr>>flagBits)
			continue
		}
		span := clsHdrWords + int(hdr>>flagBits)
		if hdr&flagDeleted == 0 {
			nc := len(newArena)
			newArena = append(newArena, db.arena[c:c+span]...)
			// Relocation invalidates the inprocessing occurrence index
			// (the caller drops it); clear the membership flag with it.
			newArena[nc] = cnf.Lit(int32(hdr &^ uint32(flagOccIdx)))
			db.arena[c+1] = cnf.Lit(int32(uint32(nc)))
			if hdr&flagLearnt != 0 && hdr&flagTemp == 0 {
				t := int(hdr&tierMask) >> tierShift
				db.roster[t] = append(db.roster[t], CRef(nc))
			}
		}
		c += span
	}
	return newArena
}

// forward returns the post-compaction address of a live clause. Valid
// only between compact() and the arena swap, and only for clauses that
// were not deleted.
func (db *clauseDB) forward(c CRef) CRef { return CRef(uint32(db.arena[c+1])) }
