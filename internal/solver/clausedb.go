package solver

import (
	"math"

	"repro/internal/cnf"
)

// This file implements the flat clause arena that backs the solver's
// clause database. Clauses are not individual heap objects: every clause
// lives inside one contiguous slice, addressed by a CRef word offset.
// The representation removes pointer chasing from the BCP hot loop and
// takes the entire clause database out of the Go garbage collector's
// scan set (the arena is a single pointer-free allocation).
//
// Arena layout of one clause starting at offset c:
//
//	word c+0: size<<3 | learnt<<0 | temp<<1 | deleted<<2
//	word c+1: LBD (literal-block distance at learn time; 0 = problem clause)
//	word c+2: activity (compressed float, see actEncode)
//	word c+3 … c+3+size-1: the literals
//
// The arena is []cnf.Lit rather than []uint32 purely so that lits() can
// return a zero-copy typed sub-slice without unsafe; header words store
// uint32 bit patterns through lossless int32 casts.

// CRef addresses a clause as a word offset into the solver's clause
// arena. CRefUndef means "no clause" (a decision or a top-level fact).
type CRef uint32

// CRefUndef is the null clause reference.
const CRefUndef CRef = ^CRef(0)

const (
	clsHdrWords = 3
	flagLearnt  = 1 << 0
	flagTemp    = 1 << 1
	flagDeleted = 1 << 2
	flagBits    = 3
)

// clauseDB is the arena plus the bookkeeping its relocating garbage
// collector needs. Deleted clauses stay in place (their headers keep the
// traversal intact) until compact() squeezes them out.
type clauseDB struct {
	arena  []cnf.Lit
	wasted int // words occupied by deleted clauses; the GC trigger
}

// alloc appends a clause to the arena and returns its reference.
func (db *clauseDB) alloc(lits []cnf.Lit, learnt, temp bool, lbd int) CRef {
	c := CRef(len(db.arena))
	hdr := uint32(len(lits)) << flagBits
	if learnt {
		hdr |= flagLearnt
	}
	if temp {
		hdr |= flagTemp
	}
	db.arena = append(db.arena, cnf.Lit(int32(hdr)), cnf.Lit(int32(uint32(lbd))), 0)
	db.arena = append(db.arena, lits...)
	return c
}

func (db *clauseDB) header(c CRef) uint32 { return uint32(db.arena[c]) }

// size returns the number of literals of clause c.
func (db *clauseDB) size(c CRef) int { return int(db.header(c) >> flagBits) }

// lits returns the clause's literal slice, aliasing the arena: writes
// through it (watched-literal swaps) update the clause in place. The
// slice is invalidated by the next alloc or garbageCollect.
func (db *clauseDB) lits(c CRef) []cnf.Lit {
	i := int(c) + clsHdrWords
	return db.arena[i : i+int(db.header(c)>>flagBits) : i+int(db.header(c)>>flagBits)]
}

func (db *clauseDB) learnt(c CRef) bool  { return db.header(c)&flagLearnt != 0 }
func (db *clauseDB) temp(c CRef) bool    { return db.header(c)&flagTemp != 0 }
func (db *clauseDB) deleted(c CRef) bool { return db.header(c)&flagDeleted != 0 }

// markDeleted tombstones the clause; the words are reclaimed by the next
// compaction. Watchers referencing it are dropped lazily.
func (db *clauseDB) markDeleted(c CRef) {
	db.arena[c] = cnf.Lit(int32(db.header(c) | flagDeleted))
	db.wasted += clsHdrWords + db.size(c)
}

// lbd returns the literal-block distance recorded at learn time.
func (db *clauseDB) lbd(c CRef) int { return int(uint32(db.arena[c+1])) }

// Clause activities are stored as float32 bit patterns in one header
// word; float32 resolution is ample for a deletion-ordering heuristic.
func (db *clauseDB) act(c CRef) float64 {
	return float64(math.Float32frombits(uint32(db.arena[c+2])))
}

func (db *clauseDB) setAct(c CRef, a float64) {
	db.arena[c+2] = cnf.Lit(int32(math.Float32bits(float32(a))))
}

// compact copies every live clause into a fresh arena and leaves a
// forwarding address in the old clause's LBD slot (the copy is taken
// first, so the new clause keeps its real LBD). The caller patches all
// outstanding CRefs through forward() and then installs the new arena.
func (db *clauseDB) compact() []cnf.Lit {
	newArena := make([]cnf.Lit, 0, len(db.arena)-db.wasted)
	for c := 0; c < len(db.arena); {
		span := clsHdrWords + int(uint32(db.arena[c])>>flagBits)
		if uint32(db.arena[c])&flagDeleted == 0 {
			nc := len(newArena)
			newArena = append(newArena, db.arena[c:c+span]...)
			db.arena[c+1] = cnf.Lit(int32(uint32(nc)))
		}
		c += span
	}
	return newArena
}

// forward returns the post-compaction address of a live clause. Valid
// only between compact() and the arena swap, and only for clauses that
// were not deleted.
func (db *clauseDB) forward(c CRef) CRef { return CRef(uint32(db.arena[c+1])) }
