package solver

import (
	"fmt"

	"repro/internal/cnf"
)

// Proof is a clausal (DRUP-style) proof log: every recorded conflict
// clause in derivation order. Each lemma is derivable from the original
// formula plus the preceding lemmas by reverse unit propagation (RUP),
// and for an UNSAT verdict unit propagation over formula+lemmas yields a
// conflict outright. Proof logging independently validates the solver's
// UNSAT answers — the "extensively validated SAT algorithms" the paper
// §5 cites as the main advantage of CNF-based flows.
type Proof struct {
	Lemmas []cnf.Clause
}

// Proof returns the proof logged during solving (nil unless
// Options.LogProof was set). The log is a refutation witness only for an
// assumption-free Unsat answer.
func (s *Solver) Proof() *Proof { return s.proofLog }

// rupChecker verifies RUP steps over a growing clause database using
// simple counter-based unit propagation (independent of the solver's
// watched-literal engine, so bugs cannot self-validate).
type rupChecker struct {
	clauses []cnf.Clause
	occ     [][]int // clause indices per literal-complement index
	numVars int
}

func newRUPChecker(f *cnf.Formula) *rupChecker {
	c := &rupChecker{numVars: f.NumVars()}
	for _, cl := range f.Clauses {
		c.add(cl)
	}
	return c
}

func (c *rupChecker) growTo(v int) {
	for c.numVars < v {
		c.numVars++
	}
	for len(c.occ) < 2*(c.numVars+1) {
		c.occ = append(c.occ, nil)
	}
}

// add registers a clause, normalized first: duplicate literals would
// inflate the checker's unassigned count — (x x x) is semantically unit
// but would never seed propagation — and tautologies can never
// propagate anything, so they are dropped outright. (The duplicate
// case was found by FuzzSolverVsBrute: a proof-logging solve of a
// formula containing (1 1 1)(-1 -1) is correctly Unsat, but the
// unnormalized checker failed to re-derive the conflict.)
func (c *rupChecker) add(cl cnf.Clause) {
	norm, taut := cl.Normalize()
	if taut {
		return
	}
	c.growTo(int(norm.MaxVar()))
	idx := len(c.clauses)
	c.clauses = append(c.clauses, norm)
	for _, l := range norm {
		c.occ[l.Not().Index()] = append(c.occ[l.Not().Index()], idx)
	}
}

// propagate runs unit propagation from the given initial assignments and
// reports whether a conflict arises.
func (c *rupChecker) propagate(initial []cnf.Lit) bool {
	c.growTo(c.numVars)
	assign := cnf.NewAssignment(c.numVars)
	var queue []cnf.Lit
	enqueue := func(l cnf.Lit) bool {
		switch assign.LitValue(l) {
		case cnf.True:
			return true
		case cnf.False:
			return false
		}
		assign.Assign(l)
		queue = append(queue, l)
		return true
	}
	for _, l := range initial {
		if !enqueue(l) {
			return true
		}
	}
	// Seed with unit clauses.
	for _, cl := range c.clauses {
		if len(cl) == 1 {
			if !enqueue(cl[0]) {
				return true
			}
		}
		if len(cl) == 0 {
			return true
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		l := queue[qi]
		for _, ci := range c.occ[l.Index()] {
			cl := c.clauses[ci]
			unit := cnf.LitUndef
			unassigned := 0
			sat := false
			for _, m := range cl {
				switch assign.LitValue(m) {
				case cnf.True:
					sat = true
				case cnf.Undef:
					unassigned++
					unit = m
				}
				if sat || unassigned > 1 {
					break
				}
			}
			if sat || unassigned > 1 {
				continue
			}
			if unassigned == 0 {
				return true
			}
			if !enqueue(unit) {
				return true
			}
		}
	}
	return false
}

// VerifyUnsat checks that the proof refutes f: every lemma is RUP with
// respect to f plus the preceding lemmas, and unit propagation over the
// final database derives a conflict. It returns nil on success.
func VerifyUnsat(f *cnf.Formula, p *Proof) error {
	if p == nil {
		return fmt.Errorf("solver: no proof logged")
	}
	chk := newRUPChecker(f)
	for i, lemma := range p.Lemmas {
		neg := make([]cnf.Lit, len(lemma))
		for j, l := range lemma {
			neg[j] = l.Not()
		}
		chk.growTo(int(lemma.MaxVar()))
		if !chk.propagate(neg) {
			return fmt.Errorf("solver: lemma %d %v is not RUP", i, lemma)
		}
		chk.add(lemma)
	}
	if !chk.propagate(nil) {
		return fmt.Errorf("solver: final database does not propagate to conflict")
	}
	return nil
}

// VerifyModel checks a Sat answer: the model must satisfy every clause.
func VerifyModel(f *cnf.Formula, m cnf.Assignment) error {
	for i, cl := range f.Clauses {
		if m.EvalClause(cl) != cnf.True {
			return fmt.Errorf("solver: clause %d %v not satisfied by model", i, cl)
		}
	}
	return nil
}
