package solver

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/cnf"
)

// ProofWriter receives the solver's clausal proof stream as the search
// runs: Learn for every conflict clause recorded by analyze (each is
// derivable from the formula plus the preceding live lemmas by reverse
// unit propagation), Delete for every learnt clause dropped by the
// deletion policy. Together the two form a DRAT/DRUP proof — deletion
// lines keep an independent checker's database in lockstep with the
// solver's, so verification stays near-linear instead of degrading as
// dead lemmas pile up. The literal slices are borrowed from solver
// internals and are valid only for the duration of the call: a sink
// that retains a clause must copy it. Calls arrive from the solving
// goroutine only.
type ProofWriter interface {
	Learn(lits []cnf.Lit)
	Delete(lits []cnf.Lit)
}

// ProofStep is one step of an in-memory proof log: a lemma addition or
// (Del) a clause deletion.
type ProofStep struct {
	Del    bool
	Clause cnf.Clause
}

// Proof is the in-memory ProofWriter: the full DRUP/DRAT step sequence
// in derivation order. It is what Options.LogProof installs and
// Solver.Proof returns; tests and the service layer can also pass a
// *Proof explicitly as Options.Proof. For an UNSAT verdict the step
// sequence is a refutation witness checkable by VerifyUnsat — the
// independently "extensively validated SAT algorithms" story the paper
// §5 cites as the main advantage of CNF-based flows.
type Proof struct {
	Steps []ProofStep
}

// Learn appends a lemma-addition step (copies lits).
func (p *Proof) Learn(lits []cnf.Lit) {
	p.Steps = append(p.Steps, ProofStep{Clause: append(cnf.Clause(nil), lits...)})
}

// Delete appends a deletion step (copies lits).
func (p *Proof) Delete(lits []cnf.Lit) {
	p.Steps = append(p.Steps, ProofStep{Del: true, Clause: append(cnf.Clause(nil), lits...)})
}

// NumLemmas counts the addition steps.
func (p *Proof) NumLemmas() int {
	n := 0
	for _, st := range p.Steps {
		if !st.Del {
			n++
		}
	}
	return n
}

// NumDeletions counts the deletion steps.
func (p *Proof) NumDeletions() int { return len(p.Steps) - p.NumLemmas() }

// Proof returns the in-memory proof logged during solving (nil unless
// Options.LogProof was set without an external Options.Proof sink). The
// log is a refutation witness only for an assumption-free Unsat answer.
func (s *Solver) Proof() *Proof { return s.proofLog }

// proofDelete streams a deletion line for a clause leaving the learnt
// database. Must run while the arena words are still readable —
// markDeleted only sets a header flag, so calling it just before or
// after the tombstone is fine, but not after an arena GC.
func (s *Solver) proofDelete(c CRef) {
	if s.proof != nil {
		s.proof.Delete(s.db.lits(c))
	}
}

// Checker verifies a DRUP/DRAT stream incrementally against a formula
// using counter-based unit propagation, deliberately independent of the
// solver's watched-literal engine so bugs cannot self-validate. Unlike
// the one-shot re-propagation it replaces, the checker keeps persistent
// state across steps: the root-level assignment and per-clause
// non-false/satisfied counters survive from lemma to lemma, each RUP
// check only pushes the negated lemma onto a trail and undoes exactly
// the counter updates it made, and deletion steps detach clauses so the
// database tracks the solver's. Total work is near-linear in proof size
// (each step touches only the occurrence lists of the literals it
// assigns) where the old checker re-scanned every clause per lemma.
type Checker struct {
	numVars int
	assign  cnf.Assignment
	trail   []cnf.Lit
	qhead   int // trail prefix whose counter updates have been applied
	clauses []chkClause
	occ     [][]int32          // occ[l.Index()]: ids of clauses containing l
	byKey   map[string][]int32 // sorted-normalized clause → live ids (deletion lookup)
	confl   bool               // root-level conflict derived; proof is complete
	steps   int                // addition steps consumed (error reporting)
}

// chkClause pairs a clause with counters maintained against the
// processed trail prefix: free counts literals not assigned false, sat
// counts literals assigned true. lits is nil once the clause is deleted
// (occurrence and key entries are skipped lazily).
type chkClause struct {
	lits cnf.Clause
	free int32
	sat  int32
}

// NewChecker builds a checker over the formula's clauses with root unit
// propagation already at fixpoint.
func NewChecker(f *cnf.Formula) *Checker {
	c := &Checker{byKey: make(map[string][]int32)}
	c.growTo(f.NumVars())
	for _, cl := range f.Clauses {
		if c.confl {
			break
		}
		norm, taut := cl.Normalize()
		if taut {
			continue
		}
		c.install(norm)
	}
	return c
}

// growTo widens the checker to v variables.
func (c *Checker) growTo(v int) {
	if v > c.numVars {
		c.numVars = v
	}
	if need := c.numVars + 1; len(c.assign) < need {
		c.assign = append(c.assign, make(cnf.Assignment, need-len(c.assign))...)
	}
	if need := 2 * (c.numVars + 1); len(c.occ) < need {
		c.occ = append(c.occ, make([][]int32, need-len(c.occ))...)
	}
}

// clauseKey is the deletion-lookup key: the normalized clause in sorted
// literal order, varint-packed.
func clauseKey(norm cnf.Clause) string {
	s := append(cnf.Clause(nil), norm...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	buf := make([]byte, 0, 4*len(s))
	for _, l := range s {
		buf = binary.AppendVarint(buf, int64(l))
	}
	return string(buf)
}

// enqueue assigns l and pushes it on the trail; it reports false when l
// is already false (a conflict at the caller's level).
func (c *Checker) enqueue(l cnf.Lit) bool {
	switch c.assign.LitValue(l) {
	case cnf.True:
		return true
	case cnf.False:
		return false
	}
	c.assign.Assign(l)
	c.trail = append(c.trail, l)
	return true
}

// propagate applies counter updates for every trail literal from qhead
// on, enqueuing implied units, and reports whether a conflict arises.
// A conflicting literal's occurrence lists are always walked to the
// end: undoTo reverses the updates of every literal below qhead
// wholesale, so partial application would corrupt the counters. On
// conflict qhead may still lag the trail (queued literals never
// processed); undoTo skips those.
func (c *Checker) propagate() bool {
	for c.qhead < len(c.trail) {
		l := c.trail[c.qhead]
		c.qhead++
		for _, ci := range c.occ[l.Index()] {
			if cl := &c.clauses[ci]; cl.lits != nil {
				cl.sat++
			}
		}
		conflict := false
		for _, ci := range c.occ[l.Not().Index()] {
			cl := &c.clauses[ci]
			if cl.lits == nil {
				continue
			}
			cl.free--
			if conflict || cl.sat > 0 {
				continue
			}
			if cl.free == 0 {
				conflict = true
				continue
			}
			if cl.free == 1 {
				// The single non-false literal is unassigned (a true one
				// would show in sat) — unless a queued-but-unprocessed
				// assignment already falsified it, which is a conflict
				// the queue would rediscover anyway.
				unit := cnf.LitUndef
				for _, m := range cl.lits {
					if c.assign.LitValue(m) != cnf.False {
						unit = m
						break
					}
				}
				if unit == cnf.LitUndef {
					conflict = true
					continue
				}
				c.enqueue(unit)
			}
		}
		if conflict {
			return true
		}
	}
	return false
}

// undoTo unwinds the trail to mark, reversing the counter updates of
// the processed prefix. Callers only pass marks taken at the root
// fixpoint, where qhead == len(trail) == mark.
func (c *Checker) undoTo(mark int) {
	for i := len(c.trail) - 1; i >= mark; i-- {
		l := c.trail[i]
		if i < c.qhead {
			for _, ci := range c.occ[l.Index()] {
				if cl := &c.clauses[ci]; cl.lits != nil {
					cl.sat--
				}
			}
			for _, ci := range c.occ[l.Not().Index()] {
				if cl := &c.clauses[ci]; cl.lits != nil {
					cl.free++
				}
			}
		}
		c.assign.Unassign(l)
	}
	c.trail = c.trail[:mark]
	c.qhead = mark
}

// install registers a normalized clause at the root, seeding its
// counters from the current root assignment and propagating
// persistently if it is unit or falsified. Not called once confl holds.
func (c *Checker) install(norm cnf.Clause) {
	c.growTo(int(norm.MaxVar()))
	var free, sat int32
	for _, l := range norm {
		switch c.assign.LitValue(l) {
		case cnf.True:
			sat++
			free++
		case cnf.Undef:
			free++
		}
	}
	id := int32(len(c.clauses))
	c.clauses = append(c.clauses, chkClause{lits: norm, free: free, sat: sat})
	for _, l := range norm {
		c.occ[l.Index()] = append(c.occ[l.Index()], id)
	}
	k := clauseKey(norm)
	c.byKey[k] = append(c.byKey[k], id)
	if sat > 0 {
		return
	}
	if free == 0 {
		c.confl = true
		return
	}
	if free == 1 {
		for _, l := range norm {
			if c.assign.LitValue(l) == cnf.Undef {
				c.enqueue(l)
				break
			}
		}
		if c.propagate() {
			c.confl = true
		}
	}
}

// Learn checks that the lemma is RUP with respect to the current
// database and installs it. It returns a non-nil error when the RUP
// check fails; once the database conflicts at the root the proof is
// complete and every further step is trivially redundant.
func (c *Checker) Learn(cl cnf.Clause) error {
	c.steps++
	if c.confl {
		return nil
	}
	norm, taut := cl.Normalize()
	if taut {
		return nil // a tautology is vacuously RUP and can never propagate
	}
	c.growTo(int(norm.MaxVar()))
	mark := len(c.trail)
	refuted := false
	for _, l := range norm {
		if !c.enqueue(l.Not()) {
			refuted = true // some lemma literal is true at root
			break
		}
	}
	if !refuted {
		refuted = c.propagate()
	}
	c.undoTo(mark)
	if !refuted {
		return fmt.Errorf("solver: lemma %d %v is not RUP", c.steps, cl)
	}
	c.install(norm)
	return nil
}

// Delete detaches one instance of the clause from the database.
// Deleting a clause the database does not hold is a no-op (standard
// DRAT checker behavior — solvers may delete clauses the checker
// already dropped as tautologies). Root-level units implied by the
// clause remain assigned, mirroring the solver, whose level-0
// assignments likewise survive the deletion of their antecedents.
func (c *Checker) Delete(cl cnf.Clause) {
	if c.confl {
		return
	}
	norm, taut := cl.Normalize()
	if taut || int(norm.MaxVar()) > c.numVars {
		return
	}
	k := clauseKey(norm)
	ids := c.byKey[k]
	for i, id := range ids {
		if c.clauses[id].lits == nil {
			continue
		}
		c.clauses[id].lits = nil
		ids[i] = ids[len(ids)-1]
		if rest := ids[:len(ids)-1]; len(rest) > 0 {
			c.byKey[k] = rest
		} else {
			delete(c.byKey, k)
		}
		return
	}
}

// Conflict reports whether the database has propagated to a root-level
// conflict — the condition that completes an UNSAT proof.
func (c *Checker) Conflict() bool { return c.confl }

// Done declares the stream finished: a complete refutation must have
// derived a root conflict by now.
func (c *Checker) Done() error {
	if !c.confl {
		return fmt.Errorf("solver: final database does not propagate to conflict")
	}
	return nil
}

// VerifyUnsat checks that the proof refutes f: every lemma is RUP with
// respect to f plus the preceding live lemmas (deletion steps detach
// clauses first), and the final database propagates to a conflict. It
// returns nil on success.
func VerifyUnsat(f *cnf.Formula, p *Proof) error {
	if p == nil {
		return fmt.Errorf("solver: no proof logged")
	}
	chk := NewChecker(f)
	for _, st := range p.Steps {
		if st.Del {
			chk.Delete(st.Clause)
			continue
		}
		if err := chk.Learn(st.Clause); err != nil {
			return err
		}
	}
	return chk.Done()
}

// VerifyModel checks a Sat answer: the model must satisfy every clause.
func VerifyModel(f *cnf.Formula, m cnf.Assignment) error {
	for i, cl := range f.Clauses {
		if m.EvalClause(cl) != cnf.True {
			return fmt.Errorf("solver: clause %d %v not satisfied by model", i, cl)
		}
	}
	return nil
}
