package solver

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
)

// checkWatchConsistency verifies the watched-literal invariants against
// the arena: every long watcher references a live clause that really
// watches the complement literal, and every binary watcher carries
// exactly the other literal of a live two-literal clause. Valid whenever
// propagate is not mid-flight (i.e. between Solve/propagate calls).
func checkWatchConsistency(t *testing.T, s *Solver) {
	t.Helper()
	for li := range s.watches.ref {
		l := cnf.Lit(li)
		for _, w := range s.watches.list(li) {
			if s.db.deleted(w.cref) {
				continue // lazily dropped; must still be addressable
			}
			lits := s.db.lits(w.cref)
			if len(lits) < 3 {
				t.Fatalf("binary clause %v in long watch list of %v", lits, l)
			}
			if lits[0] != l.Not() && lits[1] != l.Not() {
				t.Fatalf("watcher of %v references clause %v that does not watch it", l, lits)
			}
		}
		for _, bw := range s.binWatches.list(li) {
			if s.db.deleted(bw.cref) {
				t.Fatalf("deleted clause in binary watch list of %v", l)
			}
			lits := s.db.lits(bw.cref)
			if len(lits) != 2 {
				t.Fatalf("non-binary clause %v in binary watch list of %v", lits, l)
			}
			switch {
			case lits[0] == l.Not() && lits[1] == bw.blocker:
			case lits[1] == l.Not() && lits[0] == bw.blocker:
			default:
				t.Fatalf("binary watcher (%v → %v) does not match clause %v", l, bw.blocker, lits)
			}
		}
	}
}

// checkReasonConsistency verifies that every assigned variable with a
// clause antecedent points at a live clause that contains the variable's
// true literal (the assignment it implied).
func checkReasonConsistency(t *testing.T, s *Solver) {
	t.Helper()
	for v := 1; v <= s.NumVars(); v++ {
		r := s.reason[v]
		if r == CRefUndef {
			continue
		}
		if s.assigns[v] == cnf.Undef {
			t.Fatalf("unassigned var %d has a reason", v)
		}
		if s.db.deleted(r) {
			t.Fatalf("reason of var %d is a deleted clause", v)
		}
		found := false
		for _, l := range s.db.lits(r) {
			if l.Var() == cnf.Var(v) && s.LitValue(l) == cnf.True {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("reason clause %v of var %d lacks its implied literal", s.db.lits(r), v)
		}
	}
}

// TestArenaGCLockedReasonsSurvive stops a search mid-proof (so the trail
// carries decision levels and locked antecedents), forces a compaction,
// and checks that every reason CRef was patched to a live clause that
// still justifies its assignment — then finishes the proof.
func TestArenaGCLockedReasonsSurvive(t *testing.T) {
	f := gen.Pigeonhole(7)
	s := FromFormula(f, Options{MaxConflicts: 60, MaxLearnts: 10})
	if st := s.Solve(); st != Unknown {
		t.Fatalf("expected Unknown under the tiny budget, got %v", st)
	}
	if s.decisionLevel() == 0 || len(s.trail) == 0 {
		t.Fatal("test needs a live mid-search trail to be meaningful")
	}
	locked := 0
	for v := 1; v <= s.NumVars(); v++ {
		if s.reason[v] != CRefUndef {
			locked++
		}
	}
	if locked == 0 {
		t.Fatal("test needs locked antecedents to be meaningful")
	}
	before := s.Stats.ArenaGCs
	s.garbageCollect()
	if s.Stats.ArenaGCs != before+1 {
		t.Fatal("garbageCollect did not run")
	}
	if s.db.wasted != 0 {
		t.Fatalf("wasted = %d after compaction", s.db.wasted)
	}
	checkReasonConsistency(t, s)
	checkWatchConsistency(t, s)
	// The solver must finish the proof correctly on the compacted arena.
	s.opts.MaxConflicts = 0
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(7) must be UNSAT after GC, got %v", st)
	}
}

// TestArenaGCWatchersConsistentAfterRelocation deletes heavily (tiny
// learnt cap), compacts, and checks the rebuilt watch lists: relocated
// CRefs, lazily-dropped tombstones gone, binary watchers intact.
func TestArenaGCWatchersConsistentAfterRelocation(t *testing.T) {
	f := gen.Random3SATHard(150, 9)
	s := FromFormula(f, Options{MaxLearnts: 50})
	s.Solve()
	if s.Stats.Deleted == 0 {
		t.Fatal("test needs clause deletions to be meaningful")
	}
	s.garbageCollect()
	checkWatchConsistency(t, s)
	checkReasonConsistency(t, s)
	// No tombstone survives compaction.
	for c := 0; c < len(s.db.arena); c += clsHdrWords + s.db.size(CRef(c)) {
		if s.db.deleted(CRef(c)) {
			t.Fatalf("tombstoned clause at %d survived compaction", c)
		}
	}
}

// TestArenaGCSolveAgreesWithBruteForce interleaves budget-bounded solving
// with forced compactions on small random instances and checks the final
// verdict (and model) against exhaustive enumeration.
func TestArenaGCSolveAgreesWithBruteForce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		nv := 5 + int(seed%5)
		f := gen.RandomKSAT(nv, nv*4, 3, seed)
		want, _ := cnf.BruteForce(f)
		s := FromFormula(f, Options{MaxLearnts: 2, MaxConflicts: 5})
		var st Status
		for round := 0; ; round++ {
			st = s.Solve()
			if st != Unknown {
				break
			}
			s.garbageCollect() // compact between every budget slice
			checkWatchConsistency(t, s)
			if round > 10000 {
				t.Fatalf("seed %d: solver livelocked", seed)
			}
		}
		if (st == Sat) != want {
			t.Fatalf("seed %d: solver=%v brute=%v", seed, st, want)
		}
		if st == Sat && !s.Model().Satisfies(f) {
			t.Fatalf("seed %d: model does not satisfy formula", seed)
		}
	}
}

// TestArenaGCTriggersOrganically checks that maybeGC fires on its own on
// deletion-heavy and NoLearning (temp-clause churn) workloads, and that
// verdicts stay correct.
func TestArenaGCTriggersOrganically(t *testing.T) {
	s := FromFormula(gen.Random3SATHard(150, 9), Options{MaxLearnts: 50})
	if st := s.Solve(); st == Unknown {
		t.Fatal("instance must be decided")
	}
	if s.Stats.ArenaGCs == 0 {
		t.Fatal("deletion-heavy run never compacted the arena")
	}
	checkWatchConsistency(t, s)

	nl := FromFormula(gen.Pigeonhole(6), Options{NoLearning: true})
	if nl.Solve() != Unsat {
		t.Fatal("PHP(6) must be UNSAT")
	}
	if nl.Stats.ArenaGCs == 0 {
		t.Fatal("NoLearning temp-clause churn never compacted the arena")
	}
}

// TestArenaBinaryWatcherNoArenaReads is a structural guard for the
// binary fast path: a chain of implications through binary clauses must
// propagate fully, with reasons attached, without any long watchers.
func TestArenaBinaryWatcherChain(t *testing.T) {
	const n = 50
	f := cnf.New(n)
	f.AddDIMACS(1)
	for v := 1; v < n; v++ {
		f.AddDIMACS(-v, v+1) // v → v+1
	}
	s := FromFormula(f, Options{})
	if s.Solve() != Sat {
		t.Fatal("implication chain is SAT")
	}
	m := s.Model()
	for v := cnf.Var(1); v <= n; v++ {
		if m.Value(v) != cnf.True {
			t.Fatalf("var %d must be implied true", v)
		}
	}
	for li := range s.watches.ref {
		if len(s.watches.list(li)) != 0 {
			t.Fatalf("binary-only formula grew long watchers for lit %v", cnf.Lit(li))
		}
	}
}
