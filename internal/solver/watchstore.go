package solver

// This file implements the paged watcher store: the watched-literal
// index that finishes what the clause arena started. The per-literal
// watch lists are not individual Go slices (thousands of separate heap
// objects the garbage collector must track); every list lives inside one
// flat backing slice of watcher slots, addressed by a per-literal page
// header {off, n, cap}. A literal's watchers therefore stay contiguous —
// the BCP hot loop walks them exactly as it would a plain slice — while
// the whole index is two pointer-free allocations (slots + headers) no
// matter how many literals the instance has.
//
// Layout:
//
//	data:  [ page₀ | page₁ | page₂ | ... ]           one flat []watcher
//	ref:   per literal {off,n,cap} → its page        one flat []watchRef
//	free:  per size class k, head of a free-page chain
//
// Pages have power-of-two capacities pageSize<<k (pageSize is the
// Options.WatchPageSize knob). A list that outgrows its page moves to a
// page of the next class and the old page is pushed onto its class's
// free chain; a list that shrinks below a quarter of its capacity
// (propagate's truncate, GC sweeps) moves back down and likewise donates
// its page. Free chains are threaded through the dead pages themselves
// (the first slot's cref field holds the next free page's offset), so
// the free lists cost no extra memory.
//
// Invalidation rules — the two aliasing hazards of a relocating store:
//
//   - push may grow data (geometric reallocation) or relocate the pushed
//     literal's page. Any []watcher obtained from list(), and any cached
//     copy of the data slice, is invalidated by a push to ANY literal.
//     propagate therefore re-reads the data slice after each push; page
//     offsets (ref entries) of other literals are never moved by a push,
//     so held offsets stay valid.
//   - truncate may relocate the truncated literal's own page (shrink).
//     Callers must not hold that literal's list across the call.
//
// The store never moves a page behind an in-progress iteration: only
// push(li)/truncate(li) relocate li's page, and propagate only pushes to
// OTHER literals while it walks li (a clause's replacement watch is by
// construction a non-false literal, never the falsified one being
// scanned).

// noPage marks an empty free chain / end of chain.
const noPage = ^uint32(0)

// watchRef is one literal's page header: the watchers of the literal
// occupy data[off : off+n] inside a page of capacity cap slots.
// cap == 0 means the literal never had a watcher (no page assigned).
type watchRef struct {
	off uint32
	n   uint32
	cap uint32
}

// watchStore is a flat, paged store of per-literal watcher lists. The
// zero value must be initialized with init before use. It is owned by a
// single solver goroutine; none of its methods are safe for concurrent
// use.
type watchStore struct {
	pageSize uint32     // minimum page capacity in slots (power of two)
	data     []watcher  // every page, back to back
	ref      []watchRef // per-literal page headers, indexed by Lit.Index()
	free     []uint32   // per size class k (cap pageSize<<k): free-chain head
}

// init sets the minimum page capacity, rounding pageSize up to a power
// of two. Values < 2 select the default of 4; values beyond maxPageSize
// are clamped (also guarding the doubling loop against uint32 overflow
// on absurd inputs).
func (st *watchStore) init(pageSize int) {
	const maxPageSize = 1 << 20
	ps := uint32(4)
	if pageSize >= 2 {
		if pageSize > maxPageSize {
			pageSize = maxPageSize
		}
		ps = 2
		for int(ps) < pageSize {
			ps <<= 1
		}
	}
	st.pageSize = ps
}

// growLits ensures page headers exist for literal indices [0, n).
// Fresh literals start with no page (cap 0).
func (st *watchStore) growLits(n int) {
	for len(st.ref) < n {
		st.ref = append(st.ref, watchRef{})
	}
}

// class returns the size class k of a page capacity (cap = pageSize<<k).
func (st *watchStore) class(cap uint32) int {
	k := 0
	for c := st.pageSize; c < cap; c <<= 1 {
		k++
	}
	return k
}

// allocPage returns the offset of a free page of class k, reusing the
// class's free chain when possible and extending the backing slice
// (geometric growth, so allocations stay O(log) in total slots)
// otherwise. Slot contents of a reused page are stale; callers track
// liveness through watchRef.n.
func (st *watchStore) allocPage(k int) uint32 {
	for len(st.free) <= k {
		st.free = append(st.free, noPage)
	}
	if off := st.free[k]; off != noPage {
		st.free[k] = uint32(st.data[off].cref)
		return off
	}
	need := int(st.pageSize) << k
	if cap(st.data)-len(st.data) < need {
		grown := make([]watcher, len(st.data), 2*cap(st.data)+need)
		copy(grown, st.data)
		st.data = grown
	}
	off := uint32(len(st.data))
	st.data = st.data[:len(st.data)+need]
	return off
}

// freePage pushes the page at off onto class k's free chain. The chain
// link lives in the dead page's first slot.
func (st *watchStore) freePage(off uint32, k int) {
	st.data[off].cref = CRef(st.free[k])
	st.free[k] = off
}

// push appends w to literal li's list, growing the list's page to the
// next size class when full. Invalidates every outstanding list() slice
// and cached copy of data (the backing slice may reallocate). The fast
// path is branch-plus-store so the compiler inlines it into the BCP
// loop; the page relocation lives in grow.
func (st *watchStore) push(li int, w watcher) {
	r := &st.ref[li]
	if r.n == r.cap {
		st.grow(r)
	}
	st.data[r.off+r.n] = w
	r.n++
}

// grow moves r's list onto a page of the next size class (or assigns a
// first page), donating the outgrown page to its class's free chain.
func (st *watchStore) grow(r *watchRef) {
	if r.cap == 0 {
		r.off = st.allocPage(0)
		r.cap = st.pageSize
		return
	}
	k := st.class(r.cap)
	noff := st.allocPage(k + 1)
	copy(st.data[noff:noff+r.n], st.data[r.off:r.off+r.n])
	st.freePage(r.off, k)
	r.off = noff
	r.cap <<= 1
}

// truncate shrinks literal li's list to n live watchers (n must not
// exceed the current count; the caller has already compacted the kept
// watchers into data[off : off+n]). It never relocates the page — watch
// lists oscillate every few propagations, and trading pages on each dip
// would thrash the free chains — so slack capacity is reclaimed by
// shrink, which the arena GC invokes on its sweep.
func (st *watchStore) truncate(li int, n uint32) {
	st.ref[li].n = n
}

// shrink is truncate plus page downsizing: when the list occupies at
// most a quarter of its page, the page is exchanged for the smallest
// class that still leaves doubling room and the old one joins the free
// chain — this is how shrinking watch lists give memory back. Called on
// cold paths (the arena GC's patch sweep), never per-propagation. May
// relocate li's page: do not hold li's list across the call.
func (st *watchStore) shrink(li int, n uint32) {
	r := &st.ref[li]
	r.n = n
	if r.cap > st.pageSize && n*4 <= r.cap {
		target := st.pageSize
		for target < n*2 {
			target <<= 1
		}
		if target < r.cap {
			noff := st.allocPage(st.class(target))
			copy(st.data[noff:noff+n], st.data[r.off:r.off+n])
			st.freePage(r.off, st.class(r.cap))
			r.off = noff
			r.cap = target
		}
	}
}

// remove deletes the watcher guarding clause c from literal li's list,
// preserving the order of the remaining watchers. This is the
// inprocessing eager-detach path: a clause about to be probed or shrunk
// in place must leave the watch index entirely (lazy tombstone dropping
// would leave a re-attached clause with duplicate watchers). No-op when
// c is not on the list. Never relocates the page.
func (st *watchStore) remove(li int, c CRef) {
	r := &st.ref[li]
	ws := st.data[r.off : r.off+r.n]
	for i := range ws {
		if ws[i].cref == c {
			copy(ws[i:], ws[i+1:])
			r.n--
			return
		}
	}
}

// list returns literal li's watchers, aliasing the backing slice: writes
// through it update the store in place. The slice is invalidated by any
// push or truncate (of any literal) — it is for bounded read/patch
// loops such as GC patching and the consistency checks, not for holding.
func (st *watchStore) list(li int) []watcher {
	r := st.ref[li]
	return st.data[r.off : r.off+r.n : r.off+r.cap]
}

// freePages counts the pages currently parked on the free chains,
// per class (index k = capacity pageSize<<k). Test/diagnostic helper.
func (st *watchStore) freePages() []int {
	counts := make([]int, len(st.free))
	for k, off := range st.free {
		for off != noPage {
			counts[k]++
			off = uint32(st.data[off].cref)
		}
	}
	return counts
}
