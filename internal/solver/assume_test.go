package solver

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
)

// These tests pin the incremental reuse pattern resident solve sessions
// depend on: many back-to-back assumption solves against ONE solver
// instance, with Core(), the model, and the heuristic state (saved
// phases, VSIDS order) staying correct query after query.

// TestAssumptionReuseDifferential cross-checks a long run of assumption
// queries on one reused solver against a fresh solver per query.
// Verdicts must agree, Sat models must satisfy the formula and the
// assumptions, and Unsat cores must be a refuting subset of the
// assumptions.
func TestAssumptionReuseDifferential(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		f := gen.RandomKSAT(24, 90, 3, seed)
		reused := FromFormula(f, Options{Seed: seed})
		rng := rand.New(rand.NewSource(seed * 7))
		for q := 0; q < 12; q++ {
			var assume []cnf.Lit
			for k := 0; k < 1+rng.Intn(4); k++ {
				v := cnf.Var(rng.Intn(24) + 1)
				assume = append(assume, cnf.NewLit(v, rng.Intn(2) == 0))
			}
			if !reused.Okay() {
				break
			}
			st1 := reused.Solve(assume...)
			fresh := FromFormula(f, Options{Seed: seed})
			st2 := fresh.Solve(assume...)
			if st1 != st2 {
				t.Fatalf("seed %d query %d assume %v: reused %v fresh %v", seed, q, assume, st1, st2)
			}
			switch st1 {
			case Sat:
				m := reused.Model()
				if !m.Satisfies(f) {
					t.Fatalf("seed %d query %d: reused model does not satisfy", seed, q)
				}
				for _, a := range assume {
					if m.LitValue(a) != cnf.True {
						t.Fatalf("seed %d query %d: model violates assumption %v", seed, q, a)
					}
				}
				if len(reused.Core()) != 0 {
					t.Fatalf("seed %d query %d: non-empty core %v after Sat", seed, q, reused.Core())
				}
			case Unsat:
				if !reused.Okay() {
					break // genuinely unsat formula: empty core is correct
				}
				core := reused.Core()
				in := func(l cnf.Lit) bool {
					for _, a := range assume {
						if a == l {
							return true
						}
					}
					return false
				}
				for _, l := range core {
					if !in(l) {
						t.Fatalf("seed %d query %d: core literal %v not among assumptions %v (core %v)",
							seed, q, l, assume, core)
					}
				}
				chk := FromFormula(f, Options{Seed: seed})
				if st := chk.Solve(core...); st != Unsat {
					t.Fatalf("seed %d query %d: core %v does not refute (got %v)", seed, q, core, st)
				}
			}
		}
	}
}

// TestAssumptionReuseHeuristicState checks that phase saving and the
// VSIDS order survive assumption solves: after a Sat answer every
// variable must be back in the branching order for the next query (a
// popped-but-never-restored variable would silently vanish from the
// heuristic), and a plain solve after contradictory assumption queries
// must still answer Sat on a satisfiable formula.
func TestAssumptionReuseHeuristicState(t *testing.T) {
	f := gen.XorChain(12, false, 3)
	s := FromFormula(f, Options{})
	if st := s.Solve(cnf.PosLit(1)); st != Sat {
		t.Fatalf("assume +1: %v", st)
	}
	if st := s.Solve(cnf.NegLit(1)); st != Sat {
		t.Fatalf("assume -1: %v", st)
	}
	if st := s.Solve(cnf.PosLit(1), cnf.NegLit(1)); st != Unsat {
		t.Fatalf("assume +1 -1: %v", st)
	}
	if core := s.Core(); len(core) != 2 {
		t.Fatalf("contradictory assumptions: core %v", core)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("plain solve after assumption solves: %v", st)
	}
	// Every variable is either assigned on the live trail or available
	// to the branching order; none may have leaked out of both.
	s.cancelUntil(0)
	for v := cnf.Var(1); int(v) <= s.NumVars(); v++ {
		if s.assigns[v] == cnf.Undef && !s.order.contains(v) {
			t.Fatalf("variable %d leaked out of the branching order", v)
		}
	}
}

// TestAssumptionReuseConcurrentSnapshot runs the session reuse pattern
// while another goroutine samples Snapshot, as the serving layer's
// progress probe does — the combination the session runner exercises on
// every query. Run under -race this pins the absence of data races
// between the solving goroutine and the sampler.
func TestAssumptionReuseConcurrentSnapshot(t *testing.T) {
	f := gen.RandomKSAT(30, 120, 3, 11)
	s := FromFormula(f, Options{Seed: 11})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Snapshot()
			}
		}
	}()
	rng := rand.New(rand.NewSource(99))
	for q := 0; q < 40 && s.Okay(); q++ {
		v := cnf.Var(rng.Intn(30) + 1)
		st := s.Solve(cnf.NewLit(v, rng.Intn(2) == 0))
		if st == Sat && !s.Model().Satisfies(f) {
			t.Fatalf("query %d: model does not satisfy", q)
		}
	}
	close(stop)
	wg.Wait()
}
