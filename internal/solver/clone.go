package solver

import (
	"errors"
	"math/rand"

	"repro/internal/cnf"
)

// This file implements the solver checkpoint/clone primitive the session
// layer is built on: a Checkpoint freezes a solver's level-0 image (the
// clause arena with its learnt tiers, the top-level trail, saved phases
// and VSIDS activities), and Restore rebuilds a live solver from that
// image without re-propagating from zero. Clone is checkpoint-plus-
// restore in one step: a fork of a resident solver that shares no mutable
// state with the original, so concurrent queries and speculative branches
// do not serialize on one solver.
//
// Why a rebuild is sound (the aliasing invariants the arena demands):
//
//   - Watch sets are reconstructible from the arena alone. propagate's
//     watched-literal swaps keep every clause's two watched literals at
//     positions 0 and 1, so re-attaching each live clause reproduces
//     exactly the watcher pages the original solver had — minus watchers
//     for tombstoned clauses, which lazy deletion would have dropped
//     anyway.
//   - Level-0 antecedents need not survive. Restore leaves reason =
//     CRefUndef for every trail fact: analyze, litRedundant, and
//     analyzeFinal all skip level-0 variables before touching reasons,
//     reduceDB's locked() merely reports such a clause unlocked, and the
//     arena GC's reason patch skips CRefUndef.
//   - No re-propagation is needed. A checkpoint is taken at decision
//     level 0 with the propagation queue drained, so the copied trail is
//     the complete level-0 closure; Restore sets qhead to the trail's
//     end.
//
// The image is taken after an arena compaction, so a checkpoint holds no
// tombstones and its Bytes() reflect live state only.

// errors returned by Checkpoint.
var (
	// ErrCheckpointTheory: a structural theory holds justification state
	// outside the solver; its image cannot be captured here.
	ErrCheckpointTheory = errors.New("solver: cannot checkpoint a solver with a theory attached")
	// ErrCheckpointProof: a proof log is a derivation history, not solver
	// state; a fork would hold lemmas it did not derive.
	ErrCheckpointProof = errors.New("solver: cannot checkpoint a solver with proof logging enabled")
)

// Checkpoint is a frozen level-0 image of a solver. It shares no mutable
// state with the solver it was taken from or with any solver restored
// from it; it is safe to hold across arbitrary further use of the
// original and to Restore from concurrently.
type Checkpoint struct {
	opts    Options // hooks stripped; defaults already applied
	numVars int

	arena   []cnf.Lit
	roster  [numTiers][]CRef
	clauses []CRef

	trail    []cnf.Lit // the level-0 closure at checkpoint time
	assigns  []cnf.LBool
	phase    []bool
	activity []float64
	varInc   float64
	claInc   float64

	// In-search variable-elimination state: logical solver state (the
	// restored fork must reconstruct models and honor restore-on-contact
	// exactly like the original). The transient inprocessing state (the
	// occurrence index, the vivification cursor) is deliberately NOT
	// part of the image — see Checkpoint.
	elimVars []bool
	elimRecs []elimRecord

	stats Stats
	ok    bool
	warm  bool // Options.WarmStart already applied (activities carry it)
}

// Checkpoint captures the solver's level-0 image. Any in-progress
// assignment above level 0 is erased (as AddClause would), the arena is
// compacted, and every slice is deep-copied. The cooperation hooks
// (ExportClause/ImportClauses) are stripped from the image: a restored
// fork must not feed a clause pool it was never registered with.
//
// Solvers with a theory attached or proof logging enabled cannot be
// checkpointed (see the error values).
func (s *Solver) Checkpoint() (*Checkpoint, error) {
	if s.theory != nil {
		return nil, ErrCheckpointTheory
	}
	if s.proof != nil {
		return nil, ErrCheckpointProof
	}
	s.cancelUntil(0)
	// Flush the transient inprocessing state before imaging: the
	// occurrence index aliases CRefs the compaction below is about to
	// move, and the vivification cursor is mid-round scheduling state a
	// fork must not inherit — a clone taken mid-inprocessing must search
	// bit-identically to one taken after the round's state was flushed.
	// (Both are rebuilt lazily: the index at the next subsumption round,
	// the cursor from zero.)
	s.inproc.dropOccIndex()
	s.inproc.vivCur = 0
	if s.db.wasted > 0 {
		s.garbageCollect()
	}
	ck := &Checkpoint{
		opts:    s.opts,
		numVars: s.NumVars(),
		arena:   append([]cnf.Lit(nil), s.db.arena...),
		clauses: append([]CRef(nil), s.clauses...),
		trail:   append([]cnf.Lit(nil), s.trail...),
		assigns: append([]cnf.LBool(nil), s.assigns...),
		phase:   append([]bool(nil), s.phase...),
		activity: append([]float64(nil),
			s.activity...),
		varInc: s.varInc,
		claInc: s.claInc,
		stats:  s.Stats,
		ok:     s.ok,
		warm:   s.warmDone,
	}
	ck.opts.ExportClause = nil
	ck.opts.ImportClauses = nil
	for t := range s.db.roster {
		ck.roster[t] = append([]CRef(nil), s.db.roster[t]...)
	}
	if len(s.inproc.elimRecs) > 0 {
		ck.elimVars = append([]bool(nil), s.inproc.elimVars...)
		ck.elimRecs = make([]elimRecord, len(s.inproc.elimRecs))
		for i, rec := range s.inproc.elimRecs {
			cp := elimRecord{v: rec.v, clauses: make([]cnf.Clause, len(rec.clauses))}
			for j, cl := range rec.clauses {
				cp.clauses[j] = append(cnf.Clause(nil), cl...)
			}
			ck.elimRecs[i] = cp
		}
	}
	return ck, nil
}

// Restore builds a live solver from the image. The checkpoint is not
// consumed: it may be restored from any number of times, concurrently.
// The restored solver starts with a fresh PRNG (reseeded from
// Options.Seed), the warm heuristic state (activities, saved phases,
// learnt tiers) of the image, and the level-0 trail already propagated.
func (ck *Checkpoint) Restore() *Solver {
	s := &Solver{
		opts:     ck.opts,
		varInc:   ck.varInc,
		claInc:   ck.claInc,
		ok:       ck.ok,
		warmDone: ck.warm,
	}
	s.rng = rand.New(rand.NewSource(s.opts.Seed))
	s.order = newVarHeap(&s.activity)
	s.watches.init(s.opts.WatchPageSize)
	s.binWatches.init(s.opts.WatchPageSize)
	s.growTo(ck.numVars)

	copy(s.assigns, ck.assigns)
	copy(s.phase, ck.phase)
	copy(s.activity, ck.activity)
	// growTo pushed every variable at activity 0; rebuild the heap so the
	// restored activities order it.
	s.order = newVarHeap(&s.activity)
	for v := cnf.Var(1); int(v) <= ck.numVars; v++ {
		s.order.push(v)
	}

	s.db.arena = append([]cnf.Lit(nil), ck.arena...)
	s.clauses = append([]CRef(nil), ck.clauses...)
	for t := range ck.roster {
		s.db.roster[t] = append([]CRef(nil), ck.roster[t]...)
	}

	// Level-0 facts: trail copied verbatim, levels already 0 and reasons
	// already CRefUndef from growTo. The closure is complete, so nothing
	// is re-propagated.
	s.trail = append([]cnf.Lit(nil), ck.trail...)
	s.qhead = len(s.trail)

	// In-search variable-elimination records (deep-copied: the restored
	// fork may restoreEliminated or reconstruct models independently).
	// The transient inprocessing state (occurrence index, vivification
	// cursor) starts empty and is rebuilt lazily.
	if len(ck.elimRecs) > 0 {
		s.inproc.elimVars = append([]bool(nil), ck.elimVars...)
		for len(s.inproc.elimVars) < len(s.assigns) {
			s.inproc.elimVars = append(s.inproc.elimVars, false)
		}
		s.inproc.elimRecs = make([]elimRecord, len(ck.elimRecs))
		for i, rec := range ck.elimRecs {
			cp := elimRecord{v: rec.v, clauses: make([]cnf.Clause, len(rec.clauses))}
			for j, cl := range rec.clauses {
				cp.clauses[j] = append(cnf.Clause(nil), cl...)
			}
			s.inproc.elimRecs[i] = cp
		}
	}

	// Rebuild the watcher pages from the arena: watched literals sit at
	// clause positions 0 and 1 by propagate's invariant.
	for _, c := range s.clauses {
		s.attach(c)
	}
	for t := range s.db.roster {
		for _, c := range s.db.roster[t] {
			s.attach(c)
		}
	}

	s.Stats = ck.stats
	s.prog.conflicts.Store(ck.stats.Conflicts)
	s.prog.restarts.Store(ck.stats.Restarts)
	s.prog.learned.Store(ck.stats.Learned)
	for i := range ck.stats.LBDHist {
		s.prog.lbdHist[i].Store(ck.stats.LBDHist[i])
	}
	return s
}

// Bytes returns the approximate resident size of the image in bytes —
// the quantity a session cache accounts for when it evicts a resident
// solver down to its checkpoint.
func (ck *Checkpoint) Bytes() int {
	b := len(ck.arena)*4 + len(ck.trail)*4 + len(ck.clauses)*4
	for t := range ck.roster {
		b += len(ck.roster[t]) * 4
	}
	b += len(ck.assigns) + len(ck.phase) + len(ck.activity)*8
	b += len(ck.elimVars)
	for _, rec := range ck.elimRecs {
		for _, cl := range rec.clauses {
			b += len(cl) * 4
		}
	}
	return b
}

// NumVars returns the variable count of the image.
func (ck *Checkpoint) NumVars() int { return ck.numVars }

// Clone forks the solver: checkpoint plus restore in one step. The clone
// shares no mutable state with the original — both may solve, grow, and
// be cloned again concurrently. The original's in-progress assignment
// above level 0 (if any) is erased, exactly as AddClause would.
func (s *Solver) Clone() (*Solver, error) {
	ck, err := s.Checkpoint()
	if err != nil {
		return nil, err
	}
	return ck.Restore(), nil
}

// SetBudget replaces the solver's per-Solve effort bounds (zero means
// unlimited). It allows a resident solver to run each incoming query
// under that query's own conflict/decision budget. It must not be called
// while Solve runs.
func (s *Solver) SetBudget(maxConflicts, maxDecisions int64) {
	s.opts.MaxConflicts = maxConflicts
	s.opts.MaxDecisions = maxDecisions
}
