package solver

import (
	"fmt"
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
)

func mustSat(t *testing.T, s *Solver, assumptions ...cnf.Lit) cnf.Assignment {
	t.Helper()
	if st := s.Solve(assumptions...); st != Sat {
		t.Fatalf("expected SAT, got %v", st)
	}
	return s.Model()
}

func TestTrivial(t *testing.T) {
	f := cnf.New(2)
	f.AddDIMACS(1, 2)
	f.AddDIMACS(-1)
	s := FromFormula(f, Options{})
	m := mustSat(t, s)
	if m.Value(1) != cnf.False || m.Value(2) != cnf.True {
		t.Fatalf("model wrong: %v %v", m.Value(1), m.Value(2))
	}
}

func TestEmptyFormula(t *testing.T) {
	s := New(0, Options{})
	if s.Solve() != Sat {
		t.Fatal("empty formula should be SAT")
	}
}

func TestImmediateConflict(t *testing.T) {
	f := cnf.New(1)
	f.AddDIMACS(1)
	f.AddDIMACS(-1)
	s := FromFormula(f, Options{})
	if s.Solve() != Unsat {
		t.Fatal("x ∧ ¬x should be UNSAT")
	}
	if s.Okay() {
		t.Fatal("Okay should be false after top-level conflict")
	}
	// Solving again must remain Unsat.
	if s.Solve() != Unsat {
		t.Fatal("re-solve after Unsat should stay Unsat")
	}
}

func TestEmptyClauseRejected(t *testing.T) {
	s := New(1, Options{})
	if s.AddClause(cnf.Clause{}) {
		t.Fatal("empty clause should return false")
	}
	if s.Solve() != Unsat {
		t.Fatal("solver with empty clause must be Unsat")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New(2, Options{})
	if !s.AddClause(cnf.NewClause(1, -1)) {
		t.Fatal("tautology should be accepted (and dropped)")
	}
	if len(s.clauses) != 0 {
		t.Fatal("tautology should not be stored")
	}
	if s.Solve() != Sat {
		t.Fatal("should be SAT")
	}
}

func TestUnsatPigeonhole(t *testing.T) {
	for n := 2; n <= 5; n++ {
		f := gen.Pigeonhole(n)
		s := FromFormula(f, Options{})
		if s.Solve() != Unsat {
			t.Fatalf("PHP(%d) must be UNSAT", n)
		}
	}
}

func TestSatQueens(t *testing.T) {
	f := gen.Queens(6)
	s := FromFormula(f, Options{})
	m := mustSat(t, s)
	if !m.Satisfies(f) {
		t.Fatal("model does not satisfy queens formula")
	}
}

// configs returns a representative set of solver configurations; every
// one must be sound and complete.
func configs() map[string]Options {
	return map[string]Options{
		"default":       {},
		"chronological": {Chronological: true},
		"nolearning":    {NoLearning: true},
		"nolearn-chron": {NoLearning: true, Chronological: true},
		"nominimize":    {NoMinimize: true},
		"relevance":     {Deletion: DeleteByRelevance, RelevanceBound: 3, MaxLearnts: 20},
		"keepall":       {Deletion: DeleteNever},
		"luby-random":   {Restart: RestartLuby, RestartBase: 8, RandomFreq: 0.1, Seed: 7},
		"geometric":     {Restart: RestartGeometric, RestartBase: 10},
		"fixed-restart": {Restart: RestartFixed, RestartBase: 5},
		"dlis":          {Decide: DecideDLIS},
		"ordered":       {Decide: DecideOrdered},
		"random":        {Decide: DecideRandom, Seed: 3},
		"nophase":       {NoPhaseSaving: true},
		"tinydb":        {MaxLearnts: 1},
	}
}

// TestConfigurationsAgreeWithBruteForce cross-checks every configuration
// against exhaustive enumeration on many small random formulas — the
// central soundness/completeness property test.
func TestConfigurationsAgreeWithBruteForce(t *testing.T) {
	for name, opt := range configs() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 60; seed++ {
				nv := 4 + int(seed%6)
				nc := int(float64(nv) * 4.0)
				f := gen.RandomKSAT(nv, nc, 3, seed)
				want, _ := cnf.BruteForce(f)
				s := FromFormula(f, opt)
				got := s.Solve()
				if (got == Sat) != want {
					t.Fatalf("seed %d: solver=%v brute=%v\n%s", seed, got, want, cnf.DIMACSString(f))
				}
				if got == Sat && !s.Model().Satisfies(f) {
					t.Fatalf("seed %d: model does not satisfy formula", seed)
				}
			}
		})
	}
}

func TestConfigurationsOnStructured(t *testing.T) {
	php := gen.Pigeonhole(3)
	chainU := gen.XorChain(8, true, 1)
	chainS := gen.XorChain(8, false, 1)
	for name, opt := range configs() {
		t.Run(name, func(t *testing.T) {
			if FromFormula(php, opt).Solve() != Unsat {
				t.Error("PHP(3) must be UNSAT")
			}
			if FromFormula(chainU, opt).Solve() != Unsat {
				t.Error("odd xor cycle must be UNSAT")
			}
			s := FromFormula(chainS, opt)
			if s.Solve() != Sat {
				t.Error("even xor cycle must be SAT")
			} else if !s.Model().Satisfies(chainS) {
				t.Error("model does not satisfy xor chain")
			}
		})
	}
}

func TestAssumptions(t *testing.T) {
	// (x1 ∨ x2) ∧ (¬x1 ∨ x3)
	f := cnf.New(3)
	f.AddDIMACS(1, 2)
	f.AddDIMACS(-1, 3)
	s := FromFormula(f, Options{})

	if s.Solve(cnf.PosLit(1), cnf.NegLit(3)) != Unsat {
		t.Fatal("x1 ∧ ¬x3 should contradict (¬x1 ∨ x3)")
	}
	core := s.Core()
	if len(core) == 0 || len(core) > 2 {
		t.Fatalf("core size %d, want 1..2: %v", len(core), core)
	}
	// Solver must be reusable after an assumption failure.
	m := mustSat(t, s, cnf.PosLit(1))
	if m.Value(3) != cnf.True {
		t.Fatal("x3 must be implied by x1")
	}
	// And with the opposite assumption.
	m = mustSat(t, s, cnf.NegLit(1))
	if m.Value(2) != cnf.True {
		t.Fatal("x2 must be implied by ¬x1")
	}
}

func TestAssumptionCoreMinimalish(t *testing.T) {
	// Chain: a → b → c; assuming a and ¬c is inconsistent, assuming z is
	// irrelevant and must not appear in the core.
	f := cnf.New(4)
	f.AddDIMACS(-1, 2) // a → b
	f.AddDIMACS(-2, 3) // b → c
	s := FromFormula(f, Options{})
	st := s.Solve(cnf.PosLit(4), cnf.PosLit(1), cnf.NegLit(3))
	if st != Unsat {
		t.Fatalf("expected Unsat, got %v", st)
	}
	for _, l := range s.Core() {
		if l.Var() == 4 {
			t.Fatalf("irrelevant assumption in core: %v", s.Core())
		}
	}
}

func TestIncrementalAddClause(t *testing.T) {
	s := New(3, Options{})
	s.AddClause(cnf.NewClause(1, 2))
	if s.Solve() != Sat {
		t.Fatal("SAT expected")
	}
	s.AddClause(cnf.NewClause(-1))
	s.AddClause(cnf.NewClause(-2, 3))
	m := mustSat(t, s)
	if m.Value(2) != cnf.True || m.Value(3) != cnf.True {
		t.Fatal("incremental implications wrong")
	}
	s.AddClause(cnf.NewClause(-3))
	if s.Solve() != Unsat {
		t.Fatal("now UNSAT expected")
	}
}

func TestIncrementalNewVar(t *testing.T) {
	s := New(1, Options{})
	s.AddClause(cnf.NewClause(1))
	if s.Solve() != Sat {
		t.Fatal("SAT expected")
	}
	v := s.NewVar()
	s.AddClause(cnf.Clause{cnf.NegLit(1), cnf.PosLit(v)})
	m := mustSat(t, s)
	if m.Value(v) != cnf.True {
		t.Fatal("new var should be implied true")
	}
}

func TestBudgets(t *testing.T) {
	f := gen.Pigeonhole(7) // hard enough to not finish in 10 conflicts
	s := FromFormula(f, Options{MaxConflicts: 10})
	if st := s.Solve(); st != Unknown {
		t.Fatalf("expected Unknown under tiny budget, got %v", st)
	}
	s2 := FromFormula(f, Options{MaxDecisions: 5})
	if st := s2.Solve(); st != Unknown {
		t.Fatalf("expected Unknown under decision budget, got %v", st)
	}
}

func TestStatsPopulated(t *testing.T) {
	f := gen.Pigeonhole(4)
	s := FromFormula(f, Options{})
	s.Solve()
	if s.Stats.Conflicts == 0 || s.Stats.Decisions == 0 || s.Stats.Propagations == 0 {
		t.Fatalf("stats not populated: %+v", s.Stats)
	}
	if s.Stats.Learned == 0 {
		t.Fatal("expected learned clauses on PHP(4)")
	}
}

func TestNoLearningRecordsNothing(t *testing.T) {
	f := gen.Pigeonhole(4)
	s := FromFormula(f, Options{NoLearning: true})
	s.Solve()
	if s.Stats.Learned != 0 {
		t.Fatalf("NoLearning recorded %d clauses", s.Stats.Learned)
	}
	if s.db.learntCount() != 0 {
		t.Fatal("learnt database should be empty")
	}
}

func TestNonChronologicalJumps(t *testing.T) {
	// On structured instances the default solver should perform at least
	// one multi-level backjump; the chronological solver never does.
	f := gen.Pigeonhole(5)
	s := FromFormula(f, Options{})
	s.Solve()
	chrono := FromFormula(f, Options{Chronological: true})
	chrono.Solve()
	if chrono.Stats.MaxJump != 0 {
		t.Fatalf("chronological solver jumped %d levels", chrono.Stats.MaxJump)
	}
	if s.Stats.MaxJump == 0 {
		t.Log("note: no backjump observed on PHP(5); unusual but not unsound")
	}
}

func TestLearnedClausesAreImplicates(t *testing.T) {
	// Every recorded clause must be an implicate of the original formula:
	// formula ∧ ¬clause must be UNSAT (checked by brute force).
	f := gen.RandomKSAT(8, 34, 3, 42)
	s := FromFormula(f, Options{Deletion: DeleteNever})
	s.Solve()
	checked := 0
	var learnts []CRef
	for t := range s.db.roster {
		learnts = append(learnts, s.db.roster[t]...)
	}
	for _, c := range learnts {
		g := f.Clone()
		for _, l := range s.db.lits(c) {
			g.AddUnit(l.Not())
		}
		if sat, _ := cnf.BruteForce(g); sat {
			t.Fatalf("learned clause %v is not an implicate", s.db.lits(c))
		}
		checked++
		if checked >= 25 {
			break
		}
	}
	if s.Stats.Conflicts > 0 && checked == 0 {
		t.Log("no learned clauses retained to check")
	}
}

func TestRestartStats(t *testing.T) {
	f := gen.Pigeonhole(6)
	s := FromFormula(f, Options{Restart: RestartFixed, RestartBase: 5, MaxConflicts: 200})
	s.Solve()
	if s.Stats.Restarts == 0 {
		t.Fatal("expected restarts with a 5-conflict fixed policy")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(i); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestSolveFormulaOnce(t *testing.T) {
	f := cnf.New(2)
	f.AddDIMACS(1)
	f.AddDIMACS(-1, 2)
	st, m := SolveFormulaOnce(f, Options{})
	if st != Sat || !m.Satisfies(f) {
		t.Fatal("SolveFormulaOnce broken")
	}
	g := cnf.New(1)
	g.AddDIMACS(1)
	g.AddDIMACS(-1)
	st, m = SolveFormulaOnce(g, Options{})
	if st != Unsat || m != nil {
		t.Fatal("SolveFormulaOnce on UNSAT broken")
	}
}

func TestModelCompleteWithoutTheory(t *testing.T) {
	f := gen.RandomKSAT(10, 20, 3, 5)
	s := FromFormula(f, Options{})
	if s.Solve() == Sat {
		m := s.Model()
		for v := cnf.Var(1); int(v) <= 10; v++ {
			if m.Value(v) == cnf.Undef {
				t.Fatalf("var %d unassigned in full model", v)
			}
		}
		if s.PartialModel() {
			t.Fatal("model should not be partial without a theory")
		}
	}
}

// stubTheory stops the search as soon as `stopAfter` variables are
// assigned, and suggests a fixed literal first.
type stubTheory struct {
	s         *Solver
	assigned  int
	stopAfter int
	suggest   cnf.Lit
	events    []string
}

func (st *stubTheory) OnAssign(l cnf.Lit) {
	st.assigned++
	st.events = append(st.events, "+"+l.String())
}
func (st *stubTheory) OnUnassign(l cnf.Lit) {
	st.assigned--
	st.events = append(st.events, "-"+l.String())
}
func (st *stubTheory) Done() bool { return st.assigned >= st.stopAfter }
func (st *stubTheory) Suggest() cnf.Lit {
	if st.s.LitValue(st.suggest) == cnf.Undef {
		return st.suggest
	}
	return cnf.LitUndef
}

func TestTheoryEarlyStopAndSuggest(t *testing.T) {
	// Large satisfiable formula where one assignment satisfies nothing by
	// itself; theory stops after 2 assignments -> partial model.
	f := cnf.New(6)
	f.AddDIMACS(1, 2)
	f.AddDIMACS(3, 4)
	f.AddDIMACS(5, 6)
	s := FromFormula(f, Options{})
	th := &stubTheory{s: s, stopAfter: 2, suggest: cnf.PosLit(5)}
	s.SetTheory(th)
	if s.Solve() != Sat {
		t.Fatal("expected SAT")
	}
	if !s.PartialModel() {
		t.Fatal("expected partial model")
	}
	m := s.Model()
	if m.NumAssigned() > 3 { // 2 + possible propagation slack
		t.Fatalf("too many assignments for early stop: %d", m.NumAssigned())
	}
	if m.Value(5) != cnf.True {
		t.Fatal("suggested literal should have been decided first")
	}
	if len(th.events) == 0 {
		t.Fatal("theory saw no events")
	}
}

func TestTheoryUnassignCallbacks(t *testing.T) {
	// Force conflicts so OnUnassign fires; the counter must return to the
	// trail size (callbacks balanced).
	f := gen.Pigeonhole(4)
	s := FromFormula(f, Options{})
	th := &stubTheory{s: s, stopAfter: 1 << 30}
	s.SetTheory(th)
	s.Solve()
	// Level-0 facts stay on the trail after Solve; everything else must
	// have produced a balancing OnUnassign.
	if th.assigned != len(s.trail) {
		t.Fatalf("unbalanced callbacks: theory sees %d, trail has %d", th.assigned, len(s.trail))
	}
}

func TestDLISOnIncremental(t *testing.T) {
	s := New(3, Options{Decide: DecideDLIS})
	s.AddClause(cnf.NewClause(1, 2))
	if s.Solve() != Sat {
		t.Fatal("SAT expected")
	}
	s.AddClause(cnf.NewClause(-1, 3))
	s.AddClause(cnf.NewClause(-2, 3))
	m := mustSat(t, s)
	if m.Value(3) == cnf.Undef {
		t.Fatal("expected full model")
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SATISFIABLE" || Unsat.String() != "UNSATISFIABLE" || Unknown.String() != "UNKNOWN" {
		t.Fatal("Status.String broken")
	}
}

func TestManyIncrementalRounds(t *testing.T) {
	// Incremental usage across many rounds with assumptions — the usage
	// pattern of iterative ATPG (§6 [25]).
	f := gen.RandomKSAT(20, 60, 3, 11)
	s := FromFormula(f, Options{})
	for round := 0; round < 20; round++ {
		sel := cnf.NewLit(cnf.Var(round%20+1), round%2 == 0)
		st := s.Solve(sel)
		switch st {
		case Sat:
			if s.LitValue(sel) != cnf.True {
				t.Fatalf("round %d: assumption not honoured", round)
			}
		case Unsat:
			core := s.Core()
			if len(core) != 1 || core[0] != sel {
				t.Fatalf("round %d: bad core %v", round, core)
			}
		default:
			t.Fatalf("round %d: unexpected status", round)
		}
	}
}

func ExampleSolver() {
	f := cnf.New(3)
	f.AddDIMACS(1, 2)  // x1 ∨ x2
	f.AddDIMACS(-1, 3) // ¬x1 ∨ x3
	f.AddDIMACS(-2)    // ¬x2
	s := FromFormula(f, Options{})
	fmt.Println(s.Solve())
	fmt.Println("x1 =", s.Value(1), "x3 =", s.Value(3))
	// Output:
	// SATISFIABLE
	// x1 = 1 x3 = 1
}
