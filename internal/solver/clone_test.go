package solver

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
)

// TestCloneAgreement forks a warmed-up solver and cross-checks clone vs
// original on a stream of assumption queries: verdicts must agree with a
// fresh solver on every query, for both.
func TestCloneAgreement(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		f := gen.RandomKSAT(26, 100, 3, seed)
		orig := FromFormula(f, Options{Seed: seed})
		orig.Solve() // warm up: learnt clauses, activities, phases
		cl, err := orig.Clone()
		if err != nil {
			t.Fatalf("seed %d: clone: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed))
		for q := 0; q < 8; q++ {
			var assume []cnf.Lit
			for k := 0; k < 1+rng.Intn(3); k++ {
				v := cnf.Var(rng.Intn(26) + 1)
				assume = append(assume, cnf.NewLit(v, rng.Intn(2) == 0))
			}
			want := FromFormula(f, Options{Seed: seed}).Solve(assume...)
			if got := cl.Solve(assume...); got != want {
				t.Fatalf("seed %d q %d: clone %v want %v", seed, q, got, want)
			}
			if got := orig.Solve(assume...); got != want {
				t.Fatalf("seed %d q %d: original %v want %v", seed, q, got, want)
			}
		}
	}
}

// TestCloneIndependence checks that a clone shares no mutable state with
// its original: clauses added to one must not constrain the other.
func TestCloneIndependence(t *testing.T) {
	f := gen.RandomKSAT(20, 60, 3, 7)
	orig := FromFormula(f, Options{Seed: 7})
	orig.Solve()
	cl, err := orig.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// Pin variable 1 true in the clone only.
	if !cl.AddClause(cnf.Clause{cnf.PosLit(1)}) {
		t.Skip("formula forces ¬1; pick of pin literal unlucky")
	}
	if st := cl.Solve(cnf.NegLit(1)); st != Unsat {
		t.Fatalf("clone with unit +1 under assumption -1: %v", st)
	}
	if st := orig.Solve(cnf.NegLit(1)); st != Sat {
		t.Fatalf("original must be unaffected by clone's clause: %v", st)
	}
	// And the other direction: grow the original, clone unaffected.
	v := orig.NewVar()
	orig.AddClause(cnf.Clause{cnf.PosLit(v)})
	if cl.NumVars() >= orig.NumVars() {
		t.Fatalf("clone grew with original: %d vs %d", cl.NumVars(), orig.NumVars())
	}
}

// TestCloneConcurrentForks restores many solvers from one checkpoint in
// parallel and solves in all of them at once — the speculative-branch
// pattern sessions use. Run under -race this pins that a Checkpoint is
// immutable and restored forks are disjoint.
func TestCloneConcurrentForks(t *testing.T) {
	f := gen.RandomKSAT(30, 120, 3, 3)
	s := FromFormula(f, Options{Seed: 3})
	s.Solve()
	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Bytes() <= 0 {
		t.Fatalf("checkpoint bytes: %d", ck.Bytes())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fork := ck.Restore()
			v := cnf.Var(i%30 + 1)
			st := fork.Solve(cnf.NewLit(v, i%2 == 0))
			if st == Sat && !fork.Model().Satisfies(f) {
				t.Errorf("fork %d: bad model", i)
			}
		}(i)
	}
	wg.Wait()
}

// TestCloneWarmStart checks the point of the primitive: a restored fork
// answers a repeat Unsat query in far fewer conflicts than a cold solver,
// because the learnt tiers and heuristic state came with the image.
func TestCloneWarmStart(t *testing.T) {
	f := gen.Pigeonhole(7)
	cold := FromFormula(f, Options{Seed: 1})
	if st := cold.Solve(); st != Unsat {
		t.Fatalf("php7: %v", st)
	}
	coldConflicts := cold.Stats.Conflicts
	ck, err := cold.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	warm := ck.Restore()
	base := warm.Stats.Conflicts
	if st := warm.Solve(); st != Unsat {
		t.Fatalf("php7 warm: %v", st)
	}
	warmConflicts := warm.Stats.Conflicts - base
	if warmConflicts*2 > coldConflicts {
		t.Fatalf("warm restart not cheaper: cold %d conflicts, warm %d", coldConflicts, warmConflicts)
	}
}

// TestCloneRejects pins the unsupported configurations.
func TestCloneRejects(t *testing.T) {
	s := FromFormula(gen.RandomKSAT(10, 30, 3, 1), Options{LogProof: true})
	if _, err := s.Checkpoint(); err != ErrCheckpointProof {
		t.Fatalf("LogProof checkpoint: %v", err)
	}
}

// TestCloneOfUnsat checks that a closed (ok=false) solver round-trips:
// the fork answers Unsat immediately.
func TestCloneOfUnsat(t *testing.T) {
	f := gen.Pigeonhole(4)
	s := FromFormula(f, Options{})
	if st := s.Solve(); st != Unsat {
		t.Fatalf("php4: %v", st)
	}
	cl, err := s.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if st := cl.Solve(); st != Unsat {
		t.Fatalf("clone of refuted php4: %v", st)
	}
}
