package solver

import "repro/internal/cnf"

// This file implements the in-search inprocessing engine: simplification
// of the arena-resident clause database at restart boundaries, while the
// learnt tiers and the level-0 trail are live. Three transforms run under
// one per-round budget, all natively on CRefs/packed headers:
//
//   - Vivification (distillation) of the mid/local learnt tiers: each
//     candidate clause is detached, its literals' negations re-propagated
//     one decision level at a time against the current database, and the
//     clause shrunk in place (clausedb.shrinkTo pads the freed words) or
//     dropped when the probe proves it satisfied at top level. A shrunk
//     clause whose capped LBD crosses a tier bound is promoted.
//
//   - On-the-fly subsumption and self-subsuming resolution of mid/local
//     learnt clauses against the core tier, driven by an occurrence
//     index built lazily from the arena headers. Indexed clauses carry
//     the flagOccIdx header bit so rounds index incrementally; the index
//     aliases CRefs, so any arena relocation drops it (garbageCollect
//     calls inprocState.dropOccIndex, compact clears the flag bits) and
//     the next round rebuilds it.
//
//   - Bounded variable elimination (NiVER-style, the arena-native port
//     of internal/preprocess/varelim.go) over the original clauses at
//     deep boundaries (every fourth round): a variable is eliminated
//     when its non-tautological resolvents do not outnumber the clauses
//     they replace. Elimination is satisfiability- but not
//     model-preserving, so the removed clauses are recorded off-arena
//     and Solve reconstructs the eliminated variables' values into the
//     model at Sat time (newest elimination first). A later assumption
//     or added clause over an eliminated variable re-constrains it and
//     undoes every elimination (restoreEliminated).
//
// Invariants the rest of the solver relies on:
//
//   - Rosters and s.clauses contain no tombstoned clauses once a round
//     returns (reduceDB and the GC patch loops assume this).
//   - Reason clauses are never modified or deleted: every transform
//     skips locked clauses (at level 0 a reason's first literal is true
//     at level 0, so such clauses are also level-0 satisfied).
//   - Binary clauses are never tombstoned without eager detach (the GC
//     patches binary watcher pages unconditionally), and never modified.
//   - No arena GC runs mid-round: CRef snapshots (candidate lists, the
//     occurrence index) stay valid; resolvent allocs only append.

// inprocState is the solver's inprocessing state. The occurrence index
// and the vivification cursor are transient (flushed by the arena GC and
// at checkpoint time); elimVars/elimRecs are logical solver state.
type inprocState struct {
	occ      [][]CRef // core-tier occurrence lists, by literal index
	occValid bool
	vivCur   int   // round-robin cursor over vivification candidates
	rounds   int64 // rounds run (deep-boundary cadence)

	elimVars []bool       // variable eliminated in-search?
	elimRecs []elimRecord // removed original clauses, in elimination order

	// Scratch buffers reused across rounds.
	cand []CRef
	keep []cnf.Lit
	lits []cnf.Lit
	mark []byte
}

// elimRecord remembers one in-search-eliminated variable and the original
// clauses removed with it (off-arena copies: the arena relocates).
type elimRecord struct {
	v       cnf.Var
	clauses []cnf.Clause
}

// dropOccIndex flushes the occurrence index. Called by garbageCollect
// (relocation invalidates every cached CRef; compact already cleared the
// flagOccIdx bits) and by Checkpoint.
func (ip *inprocState) dropOccIndex() {
	ip.occ = nil
	ip.occValid = false
}

// isEliminated reports whether v was eliminated in-search.
func (s *Solver) isEliminated(v cnf.Var) bool {
	return int(v) < len(s.inproc.elimVars) && s.inproc.elimVars[v]
}

// inprocess runs one inprocessing round if this restart is a boundary
// the cadence selects. It must be called at decision level 0 with the
// propagation queue drained. Returns false when the round proves the
// database unsatisfiable.
func (s *Solver) inprocess(restart int) bool {
	o := &s.opts
	if !o.Inprocess || o.NoLearning || o.LegacyWatcherStore ||
		s.theory != nil || s.proof != nil || !s.ok {
		return s.ok
	}
	if restart%o.InprocessEvery != 0 || s.stop.Load() {
		return true
	}
	s.Stats.InprocRounds++
	s.inproc.rounds++
	budget := o.InprocessBudget
	if !o.InprocessNoSubsume {
		if !s.subsumeRound(&budget) {
			return false
		}
	}
	if !o.InprocessNoVivify {
		if !s.vivifyRound(&budget) {
			return false
		}
	}
	// Deep boundary: bounded variable elimination over the original
	// clauses. Skipped while assumptions are active (an assumption
	// variable must stay branchable) — sessions with assumption-carrying
	// queries simply never reach it mid-query.
	if o.InprocessVarElim && s.inproc.rounds%4 == 0 && len(s.assumptions) == 0 {
		if !s.varElimRound(&budget) {
			return false
		}
	}
	s.rebuildRosters()
	return true
}

// rebuildRosters re-derives the three roster segments from the clause
// headers: tombstoned clauses leave, tier-promoted clauses move. Runs at
// the end of every round (reduceDB tolerates neither).
func (s *Solver) rebuildRosters() {
	all := s.inproc.cand[:0]
	for t := range s.db.roster {
		all = append(all, s.db.roster[t]...)
		s.db.roster[t] = s.db.roster[t][:0]
	}
	for _, c := range all {
		if s.db.deleted(c) {
			continue
		}
		t := s.db.tier(c)
		s.db.roster[t] = append(s.db.roster[t], c)
	}
	s.inproc.cand = all[:0]
}

// locked reports whether c is the antecedent of its first literal (the
// only way a clause can be referenced by reason[] — propagate keeps a
// propagated literal at position 0 for as long as it stays assigned).
func (s *Solver) lockedClause(c CRef) bool {
	first := s.db.lits(c)[0]
	return s.reason[first.Var()] == c && s.LitValue(first) == cnf.True
}

// detach eagerly removes clause c's two watchers (by current positions
// 0/1). Inprocessing needs the eager path — unlike reduceDB's lazy
// tombstoning — because a vivified clause is re-attached afterwards and
// must not end up with duplicate watchers.
func (s *Solver) detach(c CRef) {
	lits := s.db.lits(c)
	st := &s.watches
	if len(lits) == 2 {
		st = &s.binWatches
	}
	st.remove(lits[0].Not().Index(), c)
	st.remove(lits[1].Not().Index(), c)
}

// removeClause tombstones c, eagerly detaching binary clauses (the GC's
// binary patch pass assumes binary watchers never reference tombstones;
// long-clause watchers die lazily).
func (s *Solver) removeClause(c CRef) {
	if s.db.size(c) == 2 {
		s.detach(c)
	}
	s.db.markDeleted(c)
}

// replaceInPlace rewrites the detached clause c to the literal set keep.
// Empty → unsat; unit → asserted at level 0 and the clause tombstoned;
// otherwise the clause shrinks in place (freed words become arena pad)
// and is re-attached, promoted to a better tier when its capped LBD
// crosses a bound. Returns false on a top-level contradiction.
func (s *Solver) replaceInPlace(c CRef, keep []cnf.Lit) bool {
	switch len(keep) {
	case 0:
		s.db.markDeleted(c)
		s.ok = false
		return false
	case 1:
		s.db.markDeleted(c)
		switch s.LitValue(keep[0]) {
		case cnf.False:
			s.ok = false
			return false
		case cnf.Undef:
			s.uncheckedEnqueue(keep[0], CRefUndef)
			if s.propagate() != CRefUndef {
				s.ok = false
				return false
			}
		}
		return true
	}
	copy(s.db.lits(c), keep)
	s.db.shrinkTo(c, len(keep))
	if s.db.learnt(c) && !s.db.temp(c) {
		if t := tierOfLBD(s.db.lbd(c)); t < s.db.tier(c) {
			s.db.setTier(c, t) // segment move happens in rebuildRosters
		}
	}
	s.attach(c)
	return true
}

// vivifyRound vivifies mid/local learnt clauses round-robin (the cursor
// persists across rounds so successive rounds reach fresh clauses) until
// the propagation budget is spent.
func (s *Solver) vivifyRound(budget *int64) bool {
	cand := s.inproc.cand[:0]
	cand = append(cand, s.db.roster[tierMid]...)
	cand = append(cand, s.db.roster[tierLocal]...)
	s.inproc.cand = cand
	if len(cand) == 0 {
		return true
	}
	start := s.inproc.vivCur % len(cand)
	for i := 0; i < len(cand) && *budget > 0 && !s.stop.Load(); i++ {
		c := cand[(start+i)%len(cand)]
		s.inproc.vivCur++
		if s.db.deleted(c) || s.db.size(c) <= 2 || s.lockedClause(c) ||
			s.db.occIndexed(c) {
			continue
		}
		if !s.vivifyOne(c, budget) {
			return false
		}
	}
	return true
}

// vivifyOne probes one clause: assert the negation of each literal at a
// fresh decision level and propagate. A literal already false under the
// accumulated prefix is redundant (dropped); a literal propagated true,
// or a conflict, proves the prefix (plus that literal) implies the
// clause, truncating it there. The clause is detached for the whole
// probe — propagation must not use the clause to "prove" itself.
func (s *Solver) vivifyOne(c CRef, budget *int64) bool {
	lits := append(s.inproc.lits[:0], s.db.lits(c)...)
	s.inproc.lits = lits
	s.detach(c)
	keep := s.inproc.keep[:0]
	satisfied := false
	before := s.Stats.Propagations
probe:
	for _, l := range lits {
		switch s.LitValue(l) {
		case cnf.True:
			if s.level[l.Var()] == 0 {
				// Satisfied at top level forever: drop the clause.
				satisfied = true
			} else {
				// Prefix implies l: the clause truncates to prefix+l.
				keep = append(keep, l)
			}
			break probe
		case cnf.False:
			// False at level 0, or implied false by the prefix: drop l.
			continue
		default:
			s.trailLim = append(s.trailLim, len(s.trail))
			s.uncheckedEnqueue(l.Not(), CRefUndef)
			keep = append(keep, l)
			if s.propagate() != CRefUndef {
				// Prefix (including l) refuted: truncate here.
				break probe
			}
		}
	}
	*budget -= s.Stats.Propagations - before
	s.cancelUntil(0)
	s.inproc.keep = keep
	if satisfied {
		s.db.markDeleted(c) // already detached
		s.Stats.Vivified++
		return true
	}
	if len(keep) == len(lits) {
		s.attach(c) // nothing learned; restore as-is
		return true
	}
	s.Stats.Vivified++
	s.Stats.VivifiedLits += int64(len(lits) - len(keep))
	return s.replaceInPlace(c, keep)
}

// buildOccIndex (re)builds the core-tier occurrence index incrementally:
// only clauses without the flagOccIdx header bit are inserted, so a
// valid index extends in O(new core clauses).
func (s *Solver) buildOccIndex() {
	n := 2 * (s.NumVars() + 1)
	if !s.inproc.occValid || s.inproc.occ == nil {
		s.inproc.occ = make([][]CRef, n)
		s.inproc.occValid = true
	}
	for len(s.inproc.occ) < n {
		s.inproc.occ = append(s.inproc.occ, nil)
	}
	for _, c := range s.db.roster[tierCore] {
		if s.db.deleted(c) || s.db.occIndexed(c) {
			continue
		}
		for _, l := range s.db.lits(c) {
			s.inproc.occ[l.Index()] = append(s.inproc.occ[l.Index()], c)
		}
		s.db.setOccIndexed(c)
	}
}

// subsumeRound checks every mid/local learnt clause against the core
// tier through the occurrence index: a core clause whose literals all
// appear in the candidate subsumes it (candidate deleted); a core clause
// matching on all but one literal, whose negation the candidate holds,
// strengthens it (self-subsuming resolution removes that negation).
func (s *Solver) subsumeRound(budget *int64) bool {
	s.buildOccIndex()
	if len(s.db.roster[tierCore]) == 0 {
		return true
	}
	if len(s.inproc.mark) < 2*(s.NumVars()+1) {
		s.inproc.mark = make([]byte, 2*(s.NumVars()+1))
	}
	mark := s.inproc.mark
	cand := s.inproc.cand[:0]
	cand = append(cand, s.db.roster[tierMid]...)
	cand = append(cand, s.db.roster[tierLocal]...)
	s.inproc.cand = cand
	for _, c := range cand {
		if *budget <= 0 || s.stop.Load() {
			break
		}
		if s.db.deleted(c) || s.db.size(c) <= 2 || s.lockedClause(c) {
			continue
		}
		if !s.subsumeOne(c, mark, budget) {
			return false
		}
	}
	return true
}

// subsumeOne scans the occurrence lists of one candidate's literals.
// mark must be all-zero on entry and is restored on exit.
func (s *Solver) subsumeOne(c CRef, mark []byte, budget *int64) bool {
	lits := append(s.inproc.lits[:0], s.db.lits(c)...)
	s.inproc.lits = lits
	for _, l := range lits {
		mark[l.Index()] = 1
	}
	ok := true
scan:
	for _, l := range lits {
		if mark[l.Index()] == 0 {
			continue // removed by an earlier strengthening
		}
		for _, d := range s.inproc.occ[l.Index()] {
			*budget--
			if s.db.deleted(d) || d == c {
				continue
			}
			hits, neg := 0, cnf.LitUndef
			for _, m := range s.db.lits(d) {
				if mark[m.Index()] != 0 {
					hits++
				} else if mark[m.Not().Index()] != 0 {
					if neg != cnf.LitUndef {
						hits = -1 // two negated matches: useless
						break
					}
					neg = m.Not()
				} else {
					hits = -1
					break
				}
			}
			if hits == s.db.size(d) {
				// d subsumes c.
				s.removeClause(c)
				s.Stats.Subsumed++
				break scan
			}
			if neg != cnf.LitUndef && hits == s.db.size(d)-1 {
				// Self-subsuming resolution: drop neg from c.
				mark[neg.Index()] = 0
				s.Stats.StrengthenedLits++
				keep := s.inproc.keep[:0]
				for _, m := range s.db.lits(c) {
					if m != neg {
						keep = append(keep, m)
					}
				}
				s.inproc.keep = keep
				s.detach(c)
				if !s.replaceInPlace(c, keep) {
					ok = false
					break scan
				}
				if s.db.deleted(c) || s.db.size(c) <= 2 {
					break scan // asserted as unit, or now binary
				}
			}
			if *budget <= 0 {
				break scan
			}
		}
	}
	for _, l := range lits {
		mark[l.Index()] = 0
	}
	return ok
}

// varElimRound runs bounded variable elimination over the original
// clauses: per-variable occurrence lists are gathered in one sweep, each
// candidate variable's non-tautological resolvents are counted, and an
// elimination is accepted only when the resolvents do not outnumber the
// clauses they replace (NiVER's "never grow"). Accepted eliminations
// tombstone every clause constraining the variable (learnt clauses over
// eliminated variables are swept afterwards) and allocate the resolvents
// as fresh original clauses.
func (s *Solver) varElimRound(budget *int64) bool {
	const (
		maxOcc       = 10 // per-polarity occurrence cap on candidates
		maxElimRound = 64 // eliminations per round
	)
	nv := s.NumVars()
	if len(s.inproc.elimVars) < nv+1 {
		grown := make([]bool, nv+1)
		copy(grown, s.inproc.elimVars)
		s.inproc.elimVars = grown
	}
	// Per-variable occurrence lists over live, not-top-level-satisfied
	// original clauses (satisfied clauses constrain nothing and stay).
	occ := make([][]CRef, nv+1)
	for _, c := range s.clauses {
		if s.db.deleted(c) || s.levelZeroSatisfied(c) {
			continue
		}
		for _, l := range s.db.lits(c) {
			occ[l.Var()] = append(occ[l.Var()], c)
		}
	}
	elim := 0
	var round []cnf.Var // variables eliminated this round
	for v := cnf.Var(1); int(v) <= nv && elim < maxElimRound && *budget > 0 && !s.stop.Load(); v++ {
		if s.assigns[v] != cnf.Undef || s.isEliminated(v) || len(occ[v]) == 0 {
			continue
		}
		var pos, neg []CRef
		for _, c := range occ[v] {
			if s.db.deleted(c) || s.levelZeroSatisfied(c) {
				continue
			}
			for _, l := range s.db.lits(c) {
				if l.Var() == v {
					if l.IsNeg() {
						neg = append(neg, c)
					} else {
						pos = append(pos, c)
					}
					break
				}
			}
		}
		if len(pos) == 0 || len(neg) == 0 || len(pos) > maxOcc || len(neg) > maxOcc {
			continue
		}
		*budget -= int64(len(pos) * len(neg))
		resolvents, accept := s.gatherResolvents(v, pos, neg)
		if !accept {
			continue
		}
		// Accept: record off-arena copies, tombstone, add resolvents.
		rec := elimRecord{v: v}
		for _, c := range append(append([]CRef(nil), pos...), neg...) {
			cl := s.liveClauseCopy(c)
			rec.clauses = append(rec.clauses, cl)
			s.removeClause(c)
		}
		s.inproc.elimRecs = append(s.inproc.elimRecs, rec)
		s.inproc.elimVars[v] = true
		s.Stats.ElimVars++
		elim++
		round = append(round, v)
		for _, r := range resolvents {
			c, cont := s.addResolvent(r)
			if !cont {
				return false
			}
			if c != CRefUndef {
				// Extend the occurrence sweep so later candidates see
				// the resolvents (deleted entries are filtered above).
				for _, l := range s.db.lits(c) {
					occ[l.Var()] = append(occ[l.Var()], c)
				}
			}
		}
	}
	if elim == 0 {
		return true
	}
	// Sweep learnt clauses over eliminated variables: they constrain
	// variables the database no longer defines. (Locked clauses are
	// level-0 satisfied and constrain nothing; they stay.)
	for t := range s.db.roster {
		for _, c := range s.db.roster[t] {
			if s.db.deleted(c) || s.lockedClause(c) {
				continue
			}
			for _, l := range s.db.lits(c) {
				if s.inproc.elimVars[l.Var()] {
					s.removeClause(c)
					break
				}
			}
		}
	}
	// Drop tombstones from the original-clause list (the GC patch loop
	// forwards every entry and assumes none are deleted).
	w := 0
	for _, c := range s.clauses {
		if s.db.deleted(c) {
			continue
		}
		s.clauses[w] = c
		w++
	}
	s.clauses = s.clauses[:w]
	return true
}

// levelZeroSatisfied reports whether some literal of c is true at
// decision level 0 (the clause is satisfied forever).
func (s *Solver) levelZeroSatisfied(c CRef) bool {
	for _, l := range s.db.lits(c) {
		if s.LitValue(l) == cnf.True && s.level[l.Var()] == 0 {
			return true
		}
	}
	return false
}

// liveClauseCopy copies c's literals, dropping those false at level 0
// (permanently false literals would distort model reconstruction).
func (s *Solver) liveClauseCopy(c CRef) cnf.Clause {
	out := make(cnf.Clause, 0, s.db.size(c))
	for _, l := range s.db.lits(c) {
		if s.LitValue(l) == cnf.False && s.level[l.Var()] == 0 {
			continue
		}
		out = append(out, l)
	}
	return out
}

// gatherResolvents computes all non-tautological resolvents of pos×neg
// on v, accepting only if they number at most len(pos)+len(neg).
func (s *Solver) gatherResolvents(v cnf.Var, pos, neg []CRef) ([]cnf.Clause, bool) {
	limit := len(pos) + len(neg)
	var out []cnf.Clause
	for _, p := range pos {
		for _, n := range neg {
			r, taut := s.resolveRefs(p, n, v)
			if taut {
				continue
			}
			out = append(out, r)
			if len(out) > limit {
				return nil, false
			}
		}
	}
	return out, true
}

// resolveRefs resolves two arena clauses on v, simplifying against the
// level-0 assignment. Tautologies (including clauses with a level-0 true
// literal) report taut.
func (s *Solver) resolveRefs(p, n CRef, v cnf.Var) (cnf.Clause, bool) {
	out := make(cnf.Clause, 0, s.db.size(p)+s.db.size(n)-2)
	for _, c := range []CRef{p, n} {
		for _, l := range s.db.lits(c) {
			if l.Var() == v {
				continue
			}
			if s.LitValue(l) == cnf.True && s.level[l.Var()] == 0 {
				return nil, true // satisfied forever: no constraint
			}
			if s.LitValue(l) == cnf.False && s.level[l.Var()] == 0 {
				continue
			}
			out = append(out, l)
		}
	}
	return out.Normalize()
}

// addResolvent installs one resolvent as an original clause at level 0.
// It returns the allocated CRef (CRefUndef when the resolvent collapsed
// to a unit or was already satisfied) and false on a contradiction.
func (s *Solver) addResolvent(r cnf.Clause) (CRef, bool) {
	switch len(r) {
	case 0:
		s.ok = false
		return CRefUndef, false
	case 1:
		switch s.LitValue(r[0]) {
		case cnf.False:
			s.ok = false
			return CRefUndef, false
		case cnf.Undef:
			s.uncheckedEnqueue(r[0], CRefUndef)
			if s.propagate() != CRefUndef {
				s.ok = false
				return CRefUndef, false
			}
		}
		return CRefUndef, true
	}
	c := s.db.alloc(r, false, false, 0)
	s.clauses = append(s.clauses, c)
	s.attach(c)
	if s.dlisOcc {
		for _, l := range s.db.lits(c) {
			s.occList[l.Index()] = append(s.occList[l.Index()], c)
		}
	}
	return c, true
}

// restoreEliminated undoes every in-search variable elimination by
// re-adding the recorded original clauses (the resolvents stay — they
// are implied). Called when an assumption or a new clause touches an
// eliminated variable. Returns false on a top-level contradiction.
func (s *Solver) restoreEliminated() bool {
	if len(s.inproc.elimRecs) == 0 {
		return s.ok
	}
	s.cancelUntil(0)
	recs := s.inproc.elimRecs
	s.inproc.elimRecs = nil
	for i := range s.inproc.elimVars {
		s.inproc.elimVars[i] = false
	}
	for _, rec := range recs {
		for _, cl := range rec.clauses {
			if !s.addClauseCore(cl) {
				return false
			}
		}
	}
	return true
}

// reconstructModel assigns values to in-search-eliminated variables in
// the just-captured model, newest elimination first, such that every
// removed clause is satisfied (mirrors preprocess.reconstructEliminated).
func (s *Solver) reconstructModel() {
	recs := s.inproc.elimRecs
	for i := len(recs) - 1; i >= 0; i-- {
		rec := recs[i]
		s.model[rec.v] = cnf.False
		for _, cl := range rec.clauses {
			if s.model.EvalClause(cl) != cnf.True {
				s.model[rec.v] = cnf.True
				break
			}
		}
	}
}
