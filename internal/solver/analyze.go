package solver

import "repro/internal/cnf"

// analyze is the Diagnose() function of Figure 2. Starting from the
// conflicting clause it resolves backwards along antecedents until the
// first unique implication point (UIP) of the current decision level,
// producing a conflict-induced clause — a new implicate of the function
// associated with the CNF formula (§4.1). The clause's first literal is
// the asserting literal (the conflict-induced necessary assignment of
// GRASP); the returned level is the non-chronological backtrack level
// and lbd the clause's literal-block distance under the pre-backtrack
// assignment (computed here, at learn time, while levels are live).
//
// Reason clauses reached through an inline binary watcher keep their
// literals in storage order (binary propagation never touches the
// arena), so the implied literal is skipped by variable rather than by
// assuming it sits at index 0.
func (s *Solver) analyze(confl CRef) (learnt []cnf.Lit, btLevel, lbd int) {
	learnt = append(s.learntBuf[:0], cnf.LitUndef) // slot for the asserting literal
	pathC := 0
	p := cnf.LitUndef
	idx := len(s.trail) - 1

	for {
		if s.db.learnt(confl) {
			s.bumpClause(confl)
		}
		for _, q := range s.db.lits(confl) {
			v := q.Var()
			if p != cnf.LitUndef && v == p.Var() {
				continue // the literal this antecedent implied
			}
			if s.seen[v] != 0 || s.level[v] == 0 {
				continue
			}
			s.seen[v] = 1
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				pathC++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select the next seen literal on the trail.
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = 0
		pathC--
		if pathC <= 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	// Minimize the recorded clause (self-subsuming resolution over the
	// implication graph).
	s.analyzeToClr = append(s.analyzeToClr[:0], learnt...)
	if !s.opts.NoMinimize {
		var abstract uint32
		for _, l := range learnt[1:] {
			abstract |= 1 << (uint(s.level[l.Var()]) & 31)
		}
		w := 1
		for i := 1; i < len(learnt); i++ {
			if s.reason[learnt[i].Var()] == CRefUndef || !s.litRedundant(learnt[i], abstract) {
				learnt[w] = learnt[i]
				w++
			} else {
				s.Stats.MinimizedLit++
			}
		}
		learnt = learnt[:w]
	}

	// Backtrack level: highest level among the non-asserting literals.
	btLevel = 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}

	// Clear seen flags for every variable touched.
	for _, l := range s.analyzeToClr {
		s.seen[l.Var()] = 0
	}
	s.learntBuf = learnt // keep the (possibly grown) buffer for reuse
	return learnt, btLevel, s.lbd(learnt)
}

// litRedundant reports whether the literal l is implied by the remaining
// literals of the learned clause (so it can be removed). It performs a
// DFS over antecedents; abstract is a level-set filter that prunes
// branches leading outside the clause's levels.
func (s *Solver) litRedundant(l cnf.Lit, abstract uint32) bool {
	s.analyzeStack = s.analyzeStack[:0]
	s.analyzeStack = append(s.analyzeStack, l)
	top := len(s.analyzeToClr)
	for len(s.analyzeStack) > 0 {
		p := s.analyzeStack[len(s.analyzeStack)-1]
		s.analyzeStack = s.analyzeStack[:len(s.analyzeStack)-1]
		c := s.reason[p.Var()]
		for _, q := range s.db.lits(c) {
			v := q.Var()
			if v == p.Var() {
				continue // the literal this antecedent implied
			}
			if s.seen[v] != 0 || s.level[v] == 0 {
				continue
			}
			if s.reason[v] == CRefUndef || (1<<(uint(s.level[v])&31))&abstract == 0 {
				// Reached a decision or a level outside the clause:
				// l is not redundant. Undo marks made during this probe.
				for len(s.analyzeToClr) > top {
					s.seen[s.analyzeToClr[len(s.analyzeToClr)-1].Var()] = 0
					s.analyzeToClr = s.analyzeToClr[:len(s.analyzeToClr)-1]
				}
				return false
			}
			s.seen[v] = 1
			s.analyzeToClr = append(s.analyzeToClr, q)
			s.analyzeStack = append(s.analyzeStack, q)
		}
	}
	return true
}

// analyzeFinal computes the subset of the assumptions responsible for
// falsifying the assumption literal p, storing the inconsistent
// assumption set in s.conflictSet (the incremental-SAT conflict core).
func (s *Solver) analyzeFinal(p cnf.Lit) {
	s.conflictSet = s.conflictSet[:0]
	s.conflictSet = append(s.conflictSet, p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = 1
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if r := s.reason[v]; r == CRefUndef {
			// A decision below the assumption levels is an assumption.
			s.conflictSet = append(s.conflictSet, s.trail[i])
		} else {
			for _, l := range s.db.lits(r) {
				if l.Var() != v && s.level[l.Var()] > 0 {
					s.seen[l.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
}
