package solver

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cnf"
)

// dratFlushSize is the internal buffer high-water mark at which a
// DRATWriter pushes bytes to the underlying writer.
const dratFlushSize = 1 << 15

// DRATWriter is a ProofWriter that encodes the proof stream in the
// standard textual DRAT format: one clause per line in DIMACS literal
// notation terminated by 0, deletions prefixed with "d ". Writes are
// buffered; call Flush when the solve finishes and check Err — the
// Learn/Delete hot path swallows I/O errors (the solver must not fail
// mid-search over a sink hiccup) and latches the first one instead.
type DRATWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewDRATWriter returns a DRAT encoder over w.
func NewDRATWriter(w io.Writer) *DRATWriter {
	return &DRATWriter{w: w, buf: make([]byte, 0, dratFlushSize+256)}
}

// Learn encodes a lemma-addition line.
func (d *DRATWriter) Learn(lits []cnf.Lit) { d.line(false, lits) }

// Delete encodes a "d" deletion line.
func (d *DRATWriter) Delete(lits []cnf.Lit) { d.line(true, lits) }

func (d *DRATWriter) line(del bool, lits []cnf.Lit) {
	if d.err != nil {
		return
	}
	if del {
		d.buf = append(d.buf, 'd', ' ')
	}
	for _, l := range lits {
		d.buf = strconv.AppendInt(d.buf, int64(l.DIMACS()), 10)
		d.buf = append(d.buf, ' ')
	}
	d.buf = append(d.buf, '0', '\n')
	if len(d.buf) >= dratFlushSize {
		d.flush()
	}
}

func (d *DRATWriter) flush() {
	if d.err == nil && len(d.buf) > 0 {
		_, d.err = d.w.Write(d.buf)
	}
	d.buf = d.buf[:0]
}

// Flush pushes any buffered bytes and returns the latched error.
func (d *DRATWriter) Flush() error {
	d.flush()
	return d.err
}

// Err returns the first error the underlying writer reported.
func (d *DRATWriter) Err() error { return d.err }

// ParseDRAT reads a textual DRAT stream and invokes fn for each step in
// order (del marks "d" deletion lines). Comment lines starting with "c"
// and blank lines are skipped. The clause slice is freshly allocated
// per step and may be retained. Parsing stops at the first malformed
// line or the first non-nil error from fn.
func ParseDRAT(r io.Reader, fn func(del bool, cl cnf.Clause) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || fields[0] == "c" {
			continue
		}
		del := false
		if fields[0] == "d" {
			del = true
			fields = fields[1:]
		}
		var cl cnf.Clause
		closed := false
		for _, f := range fields {
			n, err := strconv.Atoi(f)
			if err != nil {
				return fmt.Errorf("solver: drat line %d: bad literal %q", lineNo, f)
			}
			if n == 0 {
				closed = true
				break
			}
			cl = append(cl, cnf.FromDIMACS(n))
		}
		if !closed {
			return fmt.Errorf("solver: drat line %d: missing terminating 0", lineNo)
		}
		if err := fn(del, cl); err != nil {
			return err
		}
	}
	return sc.Err()
}

// VerifyDRAT checks a textual DRAT stream as a refutation of f using
// the incremental Checker: every addition must be RUP against the live
// database, deletions detach clauses, and the final database must
// propagate to a conflict. This is the entry point for externally
// stored proofs (satsolve -drat-check, the serve layer's /proof
// verification); in-process verification can use VerifyUnsat on the
// in-memory log instead.
func VerifyDRAT(f *cnf.Formula, r io.Reader) error {
	chk := NewChecker(f)
	if err := ParseDRAT(r, func(del bool, cl cnf.Clause) error {
		if del {
			chk.Delete(cl)
			return nil
		}
		return chk.Learn(cl)
	}); err != nil {
		return err
	}
	return chk.Done()
}
