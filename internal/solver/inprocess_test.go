package solver

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
)

// inprocTestConfigs are the inprocessing configurations the differential
// tests sweep: every transform alone and all together, at a cadence
// aggressive enough to fire many rounds on small instances.
func inprocTestConfigs() map[string]Options {
	base := Options{Inprocess: true, InprocessEvery: 1, Restart: RestartFixed, RestartBase: 8}
	all := base
	all.InprocessVarElim = true
	vivOnly := base
	vivOnly.InprocessNoSubsume = true
	subOnly := base
	subOnly.InprocessNoVivify = true
	elimOnly := base
	elimOnly.InprocessVarElim = true
	elimOnly.InprocessNoVivify = true
	elimOnly.InprocessNoSubsume = true
	return map[string]Options{
		"all":        all,
		"viv+sub":    base,
		"vivify":     vivOnly,
		"subsume":    subOnly,
		"varelim":    elimOnly,
		"tiny-budget": {Inprocess: true, InprocessVarElim: true, InprocessEvery: 1,
			InprocessBudget: 50, Restart: RestartFixed, RestartBase: 4},
	}
}

// TestInprocessDifferential cross-checks every inprocessing
// configuration against the plain solver's verdict on random instances,
// verifying Sat models clause by clause (which exercises the varelim
// model reconstruction on every Sat answer).
func TestInprocessDifferential(t *testing.T) {
	for name, opts := range inprocTestConfigs() {
		for seed := int64(0); seed < 12; seed++ {
			f := gen.RandomKSAT(20, 82, 3, seed)
			want := FromFormula(f, Options{}).Solve()
			s := FromFormula(f, opts)
			got := s.Solve()
			if got != want {
				t.Fatalf("config %q seed %d: got %v want %v", name, seed, got, want)
			}
			if got == Sat {
				if err := VerifyModel(f, s.Model()); err != nil {
					t.Fatalf("config %q seed %d: model rejected: %v", name, seed, err)
				}
			}
		}
	}
}

// TestInprocessTransformsFire pins that the engine actually runs: on a
// learnt-heavy instance the round counter and at least one transform
// counter must move (a silently-gated engine would pass the differential
// tests while testing nothing).
func TestInprocessTransformsFire(t *testing.T) {
	opts := Options{Inprocess: true, InprocessVarElim: true, InprocessEvery: 1,
		Restart: RestartFixed, RestartBase: 8}
	var rounds, work int64
	for seed := int64(0); seed < 8; seed++ {
		s := FromFormula(gen.Random3SATHard(60, seed), opts)
		s.Solve()
		rounds += s.Stats.InprocRounds
		work += s.Stats.Vivified + s.Stats.VivifiedLits + s.Stats.Subsumed +
			s.Stats.StrengthenedLits + s.Stats.ElimVars
	}
	if rounds == 0 {
		t.Fatal("no inprocessing rounds ran")
	}
	if work == 0 {
		t.Fatal("inprocessing rounds ran but no transform ever fired")
	}
}

// elimInstance builds an instance where in-search variable elimination
// is guaranteed a target: a hard random core (drives the conflicts and
// restarts that open deep boundaries) plus an implication chain over
// fresh variables whose middle links occur exactly once per polarity —
// the textbook NiVER shape (1×1 resolvents never exceed the input
// clause count).
func elimInstance(seed int64) *cnf.Formula {
	f := gen.Random3SATHard(40, seed).Clone()
	y := f.NewVars(8)
	f.Add(cnf.PosLit(cnf.Var(1)), cnf.PosLit(y[0]))
	for i := 0; i+1 < len(y); i++ {
		f.Add(cnf.NegLit(y[i]), cnf.PosLit(y[i+1]))
	}
	f.Add(cnf.NegLit(y[len(y)-1]), cnf.PosLit(cnf.Var(2)))
	return f
}

// elimOpts fires a round at every restart (every 2 conflicts) so round 4
// — the deep boundary where variable elimination runs — arrives fast.
var elimOpts = Options{Inprocess: true, InprocessVarElim: true, InprocessEvery: 1,
	Restart: RestartFixed, RestartBase: 2}

// TestInprocessVarElimFires pins the deep-boundary path specifically:
// chains with many two-occurrence variables must see eliminations, and
// the reconstructed models must still verify.
func TestInprocessVarElimFires(t *testing.T) {
	var elim int64
	for seed := int64(0); seed < 10; seed++ {
		f := elimInstance(seed)
		s := FromFormula(f, elimOpts)
		st := s.Solve()
		elim += s.Stats.ElimVars
		if want := FromFormula(f, Options{}).Solve(); st != want {
			t.Fatalf("seed %d: got %v want %v", seed, st, want)
		}
		if st == Sat {
			if err := VerifyModel(f, s.Model()); err != nil {
				t.Fatalf("seed %d: reconstructed model rejected: %v", seed, err)
			}
		}
	}
	if elim == 0 {
		t.Fatal("no variable was ever eliminated in-search")
	}
}

// TestInprocessAssumptionRestore: an assumption over an in-search-
// eliminated variable must transparently restore the eliminations and
// answer exactly like a fresh solver.
func TestInprocessAssumptionRestore(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := elimInstance(seed)
		s := FromFormula(f, elimOpts)
		s.Solve()
		if len(s.inproc.elimRecs) == 0 {
			continue
		}
		v := s.inproc.elimRecs[0].v
		for _, a := range []cnf.Lit{cnf.PosLit(v), cnf.NegLit(v)} {
			got := s.Solve(a)
			want := FromFormula(f, Options{}).Solve(a)
			if got != want {
				t.Fatalf("seed %d assume %v: got %v want %v", seed, a, got, want)
			}
			if got == Sat {
				m := s.Model()
				if err := VerifyModel(f, m); err != nil {
					t.Fatalf("seed %d assume %v: model rejected: %v", seed, a, err)
				}
				if m.LitValue(a) != cnf.True {
					t.Fatalf("seed %d: model does not honor assumption %v", seed, a)
				}
			}
		}
		return // one instance with eliminations suffices
	}
	t.Fatal("no seed produced an elimination to test against")
}

// TestInprocessAddClauseRestore: adding a clause over an eliminated
// variable must restore it (the elimination stops being model-
// preserving) and subsequent solves must agree with a fresh solver.
func TestInprocessAddClauseRestore(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := elimInstance(seed)
		s := FromFormula(f, elimOpts)
		// An Unsat instance wedges the solver (ok=false); restore-on-contact
		// only has a contract on a live one.
		if s.Solve() != Sat || len(s.inproc.elimRecs) == 0 {
			continue
		}
		v := s.inproc.elimRecs[len(s.inproc.elimRecs)-1].v
		extra := cnf.Clause{cnf.PosLit(v)}
		s.AddClause(extra)
		if len(s.inproc.elimRecs) != 0 {
			t.Fatalf("seed %d: eliminations survived a clause over eliminated var %d", seed, v)
		}
		got := s.Solve()
		f2 := f.Clone()
		f2.AddClause(extra)
		want := FromFormula(f2, Options{}).Solve()
		if got != want {
			t.Fatalf("seed %d: got %v want %v after unit over eliminated var", seed, got, want)
		}
		if got == Sat {
			if err := VerifyModel(f2, s.Model()); err != nil {
				t.Fatalf("seed %d: model rejected: %v", seed, err)
			}
		}
		return
	}
	t.Fatal("no seed produced an elimination to test against")
}

// TestCloneMidInprocessing is the checkpoint-safety regression test: a
// clone taken while inprocessing state is resident (occurrence index
// built, vivification cursor mid-rotation, variables eliminated) must
// search bit-identically to a clone taken after that transient state was
// explicitly flushed. Checkpoint must flush — not capture — the index
// and cursor.
func TestCloneMidInprocessing(t *testing.T) {
	opts := Options{Inprocess: true, InprocessVarElim: true, InprocessEvery: 1,
		Restart: RestartFixed, RestartBase: 8, MaxConflicts: 800}
	f := gen.Random3SATHard(170, 3)

	mk := func() *Solver {
		s := FromFormula(f, opts)
		if st := s.Solve(); st != Unknown {
			t.Fatalf("budgeted probe decided (%v); raise the instance size", st)
		}
		return s
	}
	s1 := mk()
	if s1.Stats.InprocRounds == 0 {
		t.Fatal("probe ran no inprocessing rounds; nothing to regress against")
	}
	if !s1.inproc.occValid {
		t.Fatal("probe left no resident occurrence index; test is vacuous")
	}
	c1, err := s1.Clone() // mid-inprocessing clone
	if err != nil {
		t.Fatal(err)
	}

	s2 := mk()
	s2.inproc.dropOccIndex() // explicit flush before cloning
	s2.inproc.vivCur = 0
	c2, err := s2.Clone()
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range []*Solver{c1, c2} {
		c.SetBudget(4000, 0)
	}
	st1, st2 := c1.Solve(), c2.Solve()
	if st1 != st2 {
		t.Fatalf("clone verdicts diverge: %v vs %v", st1, st2)
	}
	if c1.Stats != c2.Stats {
		t.Fatalf("clone searches diverge:\n mid-inprocessing: %+v\n after flush:      %+v",
			c1.Stats, c2.Stats)
	}
	// The original must remain healthy after being checkpointed: a further
	// budgeted continuation must run (and verify if it decides Sat).
	s1.SetBudget(2000, 0)
	if st := s1.Solve(); st == Sat {
		if err := VerifyModel(f, s1.Model()); err != nil {
			t.Fatalf("original model rejected after checkpoint: %v", err)
		}
	}
}

// TestCloneCarriesEliminations: a clone of a solver with in-search
// eliminations must reconstruct models (and honor restore-on-contact)
// exactly like the original.
func TestCloneCarriesEliminations(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := elimInstance(seed)
		s := FromFormula(f, elimOpts)
		st := s.Solve()
		if len(s.inproc.elimRecs) == 0 {
			continue
		}
		c, err := s.Clone()
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Solve(); got != st {
			t.Fatalf("seed %d: clone verdict %v, original %v", seed, got, st)
		}
		if st == Sat {
			if err := VerifyModel(f, c.Model()); err != nil {
				t.Fatalf("seed %d: clone model rejected: %v", seed, err)
			}
		}
		// Restore-on-contact must work on the clone without touching the
		// original's records.
		v := c.inproc.elimRecs[0].v
		before := len(s.inproc.elimRecs)
		c.Solve(cnf.PosLit(v))
		if len(s.inproc.elimRecs) != before {
			t.Fatalf("seed %d: clone restore mutated the original's records", seed)
		}
		return
	}
	t.Fatal("no seed produced an elimination to test against")
}

// TestWarmStartProfile pins WarmProfile/Options.WarmStart: profile
// extraction is ranked and bounded, seeding is deterministic, applied
// exactly once, and a warm-started solver still answers correctly.
func TestWarmStartProfile(t *testing.T) {
	f := gen.Random3SATHard(120, 5)
	probe := FromFormula(f, Options{})
	want := probe.Solve()
	prof := probe.WarmProfile(16)
	if len(prof) == 0 || len(prof) > 16 {
		t.Fatalf("profile size %d out of range", len(prof))
	}
	seen := map[cnf.Var]bool{}
	for _, wv := range prof {
		if wv.Var < 1 || int(wv.Var) > f.NumVars() {
			t.Fatalf("profile names unknown variable %d", wv.Var)
		}
		if seen[wv.Var] {
			t.Fatalf("profile repeats variable %d", wv.Var)
		}
		seen[wv.Var] = true
	}

	warm := FromFormula(f, Options{WarmStart: prof})
	if got := warm.Solve(); got != want {
		t.Fatalf("warm-started verdict %v, want %v", got, want)
	}
	if want == Sat {
		if err := VerifyModel(f, warm.Model()); err != nil {
			t.Fatalf("warm model rejected: %v", err)
		}
	}
	if !warm.warmDone {
		t.Fatal("warm start was not applied")
	}

	// Determinism: an identical warm-started solver searches identically.
	again := FromFormula(f, Options{WarmStart: prof})
	again.Solve()
	if warm.Stats != again.Stats {
		t.Fatalf("warm-started searches diverge:\n %+v\n %+v", warm.Stats, again.Stats)
	}
}

// TestWarmStartSurvivesCheckpoint: a checkpoint taken after warm-start
// application must not re-apply the profile on the restored fork (the
// seeded activities are already in the image).
func TestWarmStartSurvivesCheckpoint(t *testing.T) {
	f := gen.RandomKSAT(20, 60, 3, 1)
	probe := FromFormula(f, Options{})
	probe.Solve()
	prof := probe.WarmProfile(8)
	if len(prof) == 0 {
		t.Skip("no activity accumulated; nothing to test")
	}
	s := FromFormula(f, Options{WarmStart: prof, MaxConflicts: 1})
	s.Solve()
	c, err := s.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if !c.warmDone {
		t.Fatal("restored fork would re-apply the warm-start profile")
	}
}
