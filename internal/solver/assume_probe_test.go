package solver

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
)

// Probe: interleave clause adds with assumption solves (the ATPG
// activation-literal pattern) and cross-check against a fresh solver
// built from the accumulated clause set.
func TestAssumptionReuseWithAdds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := gen.RandomKSAT(20, 70, 3, seed)
		reused := FromFormula(f, Options{Seed: seed})
		acc := f.Clone()
		rng := rand.New(rand.NewSource(seed*13 + 1))
		for q := 0; q < 10; q++ {
			if !reused.Okay() {
				break // accumulated formula became unsat at top level
			}
			// Add a guarded random clause: act is a fresh variable.
			act := acc.NewVar()
			for reused.NumVars() < acc.NumVars() {
				reused.NewVar()
			}
			var cl cnf.Clause
			for k := 0; k < 2+rng.Intn(3); k++ {
				v := cnf.Var(rng.Intn(20) + 1)
				cl = append(cl, cnf.NewLit(v, rng.Intn(2) == 0))
			}
			cl = append(cl, cnf.NegLit(act))
			acc.AddClause(cl)
			if !reused.AddClause(cl) {
				break // clause closed the formula at top level
			}
			var assume []cnf.Lit
			assume = append(assume, cnf.PosLit(act))
			for k := 0; k < rng.Intn(3); k++ {
				v := cnf.Var(rng.Intn(20) + 1)
				assume = append(assume, cnf.NewLit(v, rng.Intn(2) == 0))
			}
			if !reused.Okay() {
				break
			}
			st1 := reused.Solve(assume...)
			fresh := FromFormula(acc, Options{Seed: seed})
			st2 := fresh.Solve(assume...)
			if st1 != st2 {
				t.Fatalf("seed %d q %d assume %v: reused %v fresh %v", seed, q, assume, st1, st2)
			}
			if st1 == Sat {
				m := reused.Model()
				for _, a := range assume {
					if m.LitValue(a) != cnf.True {
						t.Fatalf("seed %d q %d: model violates assumption", seed, q)
					}
				}
				if !m.Satisfies(acc) {
					t.Fatalf("seed %d q %d: model fails accumulated formula", seed, q)
				}
			}
			// Retire the activation literal, as incremental ATPG does.
			reused.AddClause(cnf.Clause{cnf.NegLit(act)})
			acc.AddClause(cnf.Clause{cnf.NegLit(act)})
		}
	}
}

// Probe: budget-exhausted (Unknown) queries interleaved with decided
// ones must not corrupt later answers or cores.
func TestAssumptionReuseAfterUnknown(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		f := gen.Pigeonhole(6)
		reused := FromFormula(f, Options{Seed: seed})
		reused.SetBudget(5, 0) // tiny conflict budget → Unknown
		if st := reused.Solve(cnf.PosLit(1)); st != Unknown {
			t.Logf("seed %d: tiny budget still decided: %v", seed, st)
		}
		reused.SetBudget(0, 0)
		st := reused.Solve(cnf.PosLit(1))
		if st != Unsat {
			t.Fatalf("seed %d: php6 under assumption: %v", seed, st)
		}
	}
}
