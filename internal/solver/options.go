// Package solver implements a modern backtrack-search SAT solver in the
// GRASP family, organized exactly around the generic template of the
// paper's Figure 2: Decide() selects assignments, Deduce() derives implied
// assignments (Boolean constraint propagation with watched literals),
// Diagnose() analyzes conflicts to a first unique implication point, and
// Erase() undoes implied assignments on backtracking.
//
// All the techniques the paper highlights for modern solvers (§4.1, §6)
// are implemented and individually switchable so the historical algorithms
// can be recovered as configurations:
//
//   - non-chronological backtracking vs. chronological backtracking,
//   - clause recording (conflict-clause learning) with deletion,
//   - relevance-based learning (bounded-lifespan recorded clauses),
//   - conflict-induced necessary assignments (asserting clauses),
//   - randomization and restarts (Luby / geometric policies),
//   - VSIDS- and DLIS-style decision heuristics,
//   - incremental solving under assumptions with core extraction,
//   - a structural "theory" hook used by the circuit layer of §5.
package solver

import "repro/internal/cnf"

// DecisionHeuristic selects how Decide() picks the next branching variable.
type DecisionHeuristic int

// Supported decision heuristics.
const (
	// DecideVSIDS uses exponentially-decayed conflict-driven variable
	// activities (the modern default).
	DecideVSIDS DecisionHeuristic = iota
	// DecideDLIS picks the literal occurring in the most unresolved
	// clauses (Dynamic Largest Individual Sum), a classic GRASP-era
	// heuristic. It rescans occurrence lists at each decision and is
	// therefore slow on large instances; it exists as a baseline.
	DecideDLIS
	// DecideOrdered branches on the lowest-indexed unassigned variable,
	// value false first (the naive textbook order).
	DecideOrdered
	// DecideRandom branches uniformly at random.
	DecideRandom
)

// RestartPolicy selects the restart schedule (§6: "randomization allows
// repeatedly restarting the search each time a given limit number of
// decisions is reached").
type RestartPolicy int

// Supported restart policies. RestartLuby is the zero value so that the
// zero Options really is the documented modern default — it also keeps
// default-configured portfolio workers reaching the restart boundaries
// where shared clauses are imported.
const (
	// RestartLuby restarts after RestartBase * luby(i) conflicts (the
	// modern default).
	RestartLuby RestartPolicy = iota
	// RestartGeometric restarts after RestartBase * 1.5^i conflicts.
	RestartGeometric
	// RestartFixed restarts every RestartBase conflicts.
	RestartFixed
	// RestartNone never restarts.
	RestartNone
)

// DeletionPolicy selects how recorded clauses are eventually deleted
// (§4.1: "in most cases large recorded clauses are eventually deleted").
type DeletionPolicy int

// Supported learned-clause deletion policies.
const (
	// DeleteByActivity periodically reduces the learned-clause database
	// with a glue-tiered policy: clauses with learn-time LBD ≤ 2 (core)
	// are kept forever, LBD ≤ 6 (mid) survive while minimally active,
	// and the rest (local) compete on activity, at most half of the
	// database deleted per round (Minisat-style halving).
	DeleteByActivity DeletionPolicy = iota
	// DeleteByRelevance implements relevance-based learning [Bayardo &
	// Schrag]: a recorded clause is kept while at most RelevanceBound of
	// its literals are unassigned, extending the life-span of clauses
	// that remain relevant to the current search region.
	DeleteByRelevance
	// DeleteNever keeps every recorded clause.
	DeleteNever
)

// Options configures a Solver. The zero value is a usable modern default
// (non-chronological backtracking, learning, VSIDS, Luby restarts).
type Options struct {
	// Chronological forces backtracking to the immediately preceding
	// decision level rather than the level computed by conflict
	// diagnosis, disabling non-chronological backtracking (§4.1 item 1).
	Chronological bool

	// NoLearning disables clause recording (§4.1 item 2): conflict
	// clauses are still derived (they are needed as antecedents of
	// conflict-induced assignments) but are discarded as soon as the
	// assignment they assert is erased, so they never prune future
	// search regions.
	NoLearning bool

	// NoMinimize disables learned-clause minimization
	// (self-subsumption of the first-UIP clause).
	NoMinimize bool

	// Deletion selects the learned-clause deletion policy.
	Deletion DeletionPolicy

	// RelevanceBound is the unassigned-literal bound for
	// DeleteByRelevance. Zero means 4 (relsat's classic default region).
	RelevanceBound int

	// MaxLearnts caps the learned database before deletion triggers.
	// Zero selects an adaptive cap (one third of the problem clauses,
	// growing geometrically).
	MaxLearnts int

	// Restart selects the restart schedule; RestartBase is its unit in
	// conflicts (0 = 100).
	Restart     RestartPolicy
	RestartBase int

	// Decide selects the decision heuristic.
	Decide DecisionHeuristic

	// RandomFreq is the probability of replacing a heuristic decision
	// with a uniformly random unassigned variable (the "randomization"
	// of §6). Typical small values: 0.02.
	RandomFreq float64

	// Seed seeds the solver's deterministic PRNG.
	Seed int64

	// NoPhaseSaving disables progress saving of variable polarities.
	NoPhaseSaving bool

	// WatchPageSize is the minimum page capacity, in watchers, of the
	// paged watcher store: every per-literal watch list occupies one
	// page of capacity WatchPageSize<<k inside a single flat backing
	// slice, and freed pages are recycled through per-size-class free
	// chains. Values are rounded up to a power of two; values below 2
	// (including 0) select the default of 4, and absurdly large values
	// are clamped. Larger pages trade memory slack for fewer page
	// relocations on instances with long watch lists.
	WatchPageSize int

	// LegacyWatcherStore selects the pre-paging watcher representation
	// (one individually heap-allocated slice per literal). It exists
	// solely as the measured baseline for BenchmarkE32's watcher-store
	// variant and the differential tests that pin the paged store's
	// semantics; it is not a production configuration.
	LegacyWatcherStore bool

	// Inprocess enables the in-search inprocessing engine: at restart
	// boundaries the solver vivifies mid/local learnt clauses
	// (re-propagating each candidate's negated literals and shrinking or
	// promoting it in place) and subsumes/strengthens learnt clauses
	// against the core tier through an occurrence index rebuilt lazily
	// from the arena headers. Inprocessing is skipped under NoLearning,
	// proof streaming (LogProof/Proof: in-place strengthening rewrites
	// clauses instead of extending the lemma sequence),
	// LegacyWatcherStore (the baseline store has no eager detach path),
	// and while a structural theory is attached.
	Inprocess bool

	// InprocessNoVivify and InprocessNoSubsume veto the individual
	// transforms of an Inprocess-enabled solver (for differential
	// testing and benchmarking of each transform in isolation).
	InprocessNoVivify  bool
	InprocessNoSubsume bool

	// InprocessVarElim additionally runs bounded variable elimination
	// (NiVER-style, as in internal/preprocess but arena-native) over the
	// original clauses at deep restart boundaries — every fourth
	// inprocessing round. Eliminated variables are reconstructed into
	// the model at Sat time. Requires Inprocess; ignored otherwise.
	InprocessVarElim bool

	// InprocessEvery runs an inprocessing round every k-th restart
	// (0 = 4). InprocessBudget bounds the work of one round, measured in
	// propagations (vivification probes) plus occurrence-index steps
	// (0 = 20000).
	InprocessEvery  int
	InprocessBudget int64

	// WarmStart seeds the branching heuristic before the first search:
	// entries are ranked most-important-first, and each seeds the
	// variable's VSIDS activity (descending with rank) and saved phase.
	// A portfolio's recipe memory feeds the previous winning worker's
	// profile (WarmProfile) for the same instance class through this
	// knob. Entries naming variables the solver does not know are
	// ignored.
	WarmStart []WarmVar

	// VarDecay and ClauseDecay control activity decay (0 = defaults
	// 0.95 and 0.999).
	VarDecay, ClauseDecay float64

	// MaxConflicts and MaxDecisions bound the search effort; the solver
	// returns Unknown when a budget is exhausted. Zero means unlimited.
	MaxConflicts int64
	MaxDecisions int64

	// LogProof records the DRAT proof stream — every conflict clause
	// plus a deletion step for every learnt clause the deletion policy
	// drops — into an in-memory log retrievable via Proof(); VerifyUnsat
	// can then independently validate an (assumption-free) Unsat answer.
	// LogProof disables ImportClauses (see there): a verifiable proof
	// must be derived entirely by this solver. Ignored when Proof is
	// also set (the external sink wins and no in-memory log is kept).
	LogProof bool

	// Proof, when non-nil, streams the same DRAT step sequence to an
	// external sink as the search runs (e.g. a DRATWriter over a file),
	// so UNSAT proofs need not grow resident memory. The literal slices
	// passed to the sink are borrowed and valid only during the call.
	// Like LogProof it suppresses ImportClauses and inprocessing, and a
	// solver with a proof sink cannot be checkpointed.
	Proof ProofWriter

	// ExportClause, when non-nil, is invoked from the solving goroutine
	// for every recorded conflict clause of length at most ShareMaxLen
	// and literal-block distance (LBD: the number of distinct decision
	// levels among its literals) at most ShareMaxLBD. The literal slice
	// is valid only for the duration of the call and must not be
	// retained or mutated: a consumer that keeps the clause copies it on
	// acceptance. This is the cooperation hook a portfolio uses to
	// publish learned clauses to sibling workers. Returning false is a
	// terminal stop: it permanently disables further export for this
	// solver (the consumer is being torn down and will never accept
	// again), saving the per-conflict callback. A consumer that merely
	// rejects an offer (admission threshold, transient pressure) must
	// return true.
	ExportClause func(lits []cnf.Lit, lbd int) bool

	// ShareMaxLen and ShareMaxLBD bound which recorded clauses are
	// offered to ExportClause (0 = defaults 8 and 4). Unit clauses are
	// always exported: they are top-level facts.
	ShareMaxLen int
	ShareMaxLBD int

	// ImportClauses, when non-nil, is polled at restart boundaries (and
	// once at the start of each Solve call). Every returned clause must
	// be a logical consequence of the problem clauses — e.g. a clause
	// learned by a sibling portfolio worker over the same formula — and
	// is injected at decision level 0 as a learned clause. The solver
	// copies the literals, so returned slices may be shared across
	// workers. Ignored when LogProof is set: foreign clauses are not
	// RUP-derivable in this solver's own lemma sequence, so importing
	// them would make a correct Unsat answer fail VerifyUnsat.
	ImportClauses func() []cnf.Clause
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.RestartBase == 0 {
		out.RestartBase = 100
	}
	if out.VarDecay == 0 {
		out.VarDecay = 0.95
	}
	if out.ClauseDecay == 0 {
		out.ClauseDecay = 0.999
	}
	if out.RelevanceBound == 0 {
		out.RelevanceBound = 4
	}
	if out.ShareMaxLen == 0 {
		out.ShareMaxLen = 8
	}
	if out.ShareMaxLBD == 0 {
		out.ShareMaxLBD = 4
	}
	if out.WatchPageSize == 0 {
		out.WatchPageSize = 4
	}
	if out.InprocessEvery == 0 {
		out.InprocessEvery = 4
	}
	if out.InprocessBudget == 0 {
		out.InprocessBudget = 20000
	}
	return out
}

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	// Unknown means a resource budget was exhausted before an answer.
	Unknown Status = iota
	// Sat means a satisfying (possibly partial, when a structural theory
	// declared early success) assignment was found.
	Sat
	// Unsat means the formula (under the given assumptions) is
	// unsatisfiable.
	Unsat
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Sat:
		return "SATISFIABLE"
	case Unsat:
		return "UNSATISFIABLE"
	}
	return "UNKNOWN"
}

// LBDHistBuckets is the size of the learn-time LBD histogram kept in
// Stats and Progress: bucket i counts conflict clauses learnt with
// LBD i+1, and the last bucket collects everything at or above
// LBDHistBuckets.
const LBDHistBuckets = 8

// Stats collects search statistics, used by the benchmark harness to
// report the quantities the paper argues about (decisions, conflicts,
// recorded clauses, restarts…).
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learned      int64 // clauses recorded
	Deleted      int64 // learned clauses deleted
	Demoted      int64 // mid-tier clauses demoted to the local tier (untouched between reductions)
	Exported     int64 // clauses offered to the ExportClause hook
	Imported     int64 // foreign clauses injected via ImportClauses
	MaxLearnts   int64 // high-water mark of the learned database
	MinimizedLit int64 // literals removed by clause minimization
	ArenaGCs     int64 // relocating compactions of the clause arena
	MaxJump      int   // largest non-chronological backjump (levels skipped)

	// Inprocessing counters (Options.Inprocess).
	InprocRounds     int64 // inprocessing rounds run at restart boundaries
	Vivified         int64 // clauses shrunk or satisfied-and-dropped by vivification
	VivifiedLits     int64 // literals removed by vivification
	Subsumed         int64 // learnt clauses deleted as subsumed by a core clause
	StrengthenedLits int64 // literals removed by self-subsuming resolution
	ElimVars         int64 // variables eliminated in-search (InprocessVarElim)

	// LBDHist is the learn-time LBD histogram of every conflict clause
	// derived by analyze (including units and NoLearning temp clauses):
	// bucket i counts clauses with LBD i+1, the last bucket LBD ≥
	// LBDHistBuckets. It is the quality signal an adaptive scheduler
	// reads: a worker whose histogram mass sits in the low buckets is
	// producing glue, one whose mass sits high is thrashing.
	LBDHist [LBDHistBuckets]int64
}
