package solver

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
)

func TestProofVerifiesOnUnsatFamilies(t *testing.T) {
	workloads := map[string]*cnf.Formula{
		"php4":     gen.Pigeonhole(4),
		"php5":     gen.Pigeonhole(5),
		"xorcycle": gen.XorChain(10, true, 2),
	}
	for seed := int64(0); seed < 10; seed++ {
		f := gen.RandomKSAT(8, 45, 3, seed) // very overconstrained: likely UNSAT
		if sat, _ := cnf.BruteForce(f); !sat {
			workloads["rand"] = f
			break
		}
	}
	for name, f := range workloads {
		for cfg, opt := range map[string]Options{
			"default": {LogProof: true},
			"chrono":  {LogProof: true, Chronological: true},
			"restart": {LogProof: true, Restart: RestartFixed, RestartBase: 5},
			"reduce":  {LogProof: true, MaxLearnts: 5},
		} {
			s := FromFormula(f, opt)
			if s.Solve() != Unsat {
				t.Fatalf("%s/%s: expected UNSAT", name, cfg)
			}
			if err := VerifyUnsat(f, s.Proof()); err != nil {
				t.Fatalf("%s/%s: proof check failed: %v", name, cfg, err)
			}
		}
	}
}

func TestProofRejectsBogusLemma(t *testing.T) {
	f := gen.Pigeonhole(3)
	s := FromFormula(f, Options{LogProof: true})
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT")
	}
	p := s.Proof()
	if p.NumLemmas() == 0 {
		t.Fatal("no lemmas logged")
	}
	// Corrupt the proof: insert a non-implied clause up front — a unit
	// over a fresh variable, which cannot be RUP for PHP.
	bogus := &Proof{Steps: append(
		[]ProofStep{{Clause: cnf.NewClause(f.NumVars() + 1)}}, p.Steps...)}
	if err := VerifyUnsat(f, bogus); err == nil {
		t.Fatal("corrupted proof must be rejected")
	}
}

// TestProofRecordsDeletions pins the DRUP-gap fix: a config that forces
// reduceDB must emit deletion steps, and the proof must still verify
// with the checker honoring them (the deleted lemmas really leave the
// checker's database).
func TestProofRecordsDeletions(t *testing.T) {
	f := gen.Pigeonhole(5)
	s := FromFormula(f, Options{LogProof: true, MaxLearnts: 5})
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT")
	}
	p := s.Proof()
	if p.NumDeletions() == 0 {
		t.Fatalf("no deletion steps recorded (Stats.Deleted=%d)", s.Stats.Deleted)
	}
	if int64(p.NumDeletions()) != s.Stats.Deleted {
		t.Fatalf("deletion steps %d != Stats.Deleted %d", p.NumDeletions(), s.Stats.Deleted)
	}
	if err := VerifyUnsat(f, p); err != nil {
		t.Fatalf("proof with deletions failed to verify: %v", err)
	}
}

// TestDRATRoundTrip streams a solve through the textual DRAT encoder,
// re-parses it, and verifies it with the incremental checker — the
// exact path the serve layer and satsolve -drat use.
func TestDRATRoundTrip(t *testing.T) {
	f := gen.Pigeonhole(5)
	var buf bytes.Buffer
	w := NewDRATWriter(&buf)
	s := FromFormula(f, Options{Proof: w, MaxLearnts: 5})
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "d ") {
		t.Fatal("DRAT stream has no deletion lines")
	}
	if err := VerifyDRAT(f, strings.NewReader(text)); err != nil {
		t.Fatalf("DRAT stream failed verification: %v", err)
	}
	// The external sink must win over LogProof: no in-memory log.
	if s.Proof() != nil {
		t.Fatal("Proof() must be nil with an external sink")
	}
	// Truncation: dropping the tail must leave the database short of a
	// conflict (the final steps derive it).
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	half := strings.Join(lines[:len(lines)/2], "\n")
	if err := VerifyDRAT(f, strings.NewReader(half)); err == nil {
		t.Fatal("half a proof must not verify")
	}
}

// TestCheckerIncremental exercises the streaming Checker API directly:
// growTo widening via a wide lemma, unknown deletions as no-ops, and
// Conflict latching.
func TestCheckerIncremental(t *testing.T) {
	f, err := cnf.ParseDIMACSString("p cnf 2 2\n1 2 0\n-1 2 0\n")
	if err != nil {
		t.Fatal(err)
	}
	chk := NewChecker(f)
	if chk.Conflict() {
		t.Fatal("no conflict expected yet")
	}
	// (2) is RUP: assume -2, (1 2) propagates 1, (-1 2) conflicts.
	if err := chk.Learn(cnf.NewClause(2)); err != nil {
		t.Fatal(err)
	}
	// A unit over a fresh variable is not RUP; it must also widen the
	// checker rather than panic (the growTo audit).
	if err := chk.Learn(cnf.NewClause(7)); err == nil {
		t.Fatal("fresh-var unit must not be RUP")
	}
	// Deleting a clause the checker never saw is a no-op.
	chk.Delete(cnf.NewClause(5, 6))
	if err := chk.Done(); err == nil {
		t.Fatal("no refutation derived yet")
	}

	// A refutation completes when root propagation conflicts: here the
	// input units collide as soon as the chain is installed.
	f2, err := cnf.ParseDIMACSString("p cnf 2 3\n1 0\n-1 2 0\n-2 0\n")
	if err != nil {
		t.Fatal(err)
	}
	chk2 := NewChecker(f2)
	if !chk2.Conflict() {
		t.Fatal("root conflict expected at construction")
	}
	if err := chk2.Done(); err != nil {
		t.Fatal(err)
	}
	// Steps after the conflict are trivially accepted.
	if err := chk2.Learn(cnf.NewClause(2)); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkProofVerify pins the satellite fix for the quadratic
// checker: "rescan" is the algorithm the incremental Checker replaced —
// per lemma it rebuilt the assignment and re-scanned every clause in
// the database to seed unit propagation, so its cost per step grows
// with proof size. The incremental checker keeps persistent root
// assignment and counters and pays only for the propagation each step
// actually causes; the incremental/rescan gap must widen as proofs
// grow (the quadratic re-scan term is gone).
func BenchmarkProofVerify(b *testing.B) {
	for _, n := range []int{4, 5, 6} {
		f := gen.Pigeonhole(n)
		s := FromFormula(f, Options{LogProof: true})
		if s.Solve() != Unsat {
			b.Fatal("expected UNSAT")
		}
		p := s.Proof()
		b.Run(fmt.Sprintf("php%d_steps%d/incremental", n, len(p.Steps)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := VerifyUnsat(f, p); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(p.Steps)), "ns/step")
		})
		b.Run(fmt.Sprintf("php%d_steps%d/rescan", n, len(p.Steps)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := rescanVerifyUnsat(f, p); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(p.Steps)), "ns/step")
		})
	}
}

// rescanVerifyUnsat is the pre-incremental checker algorithm, kept only
// as the benchmark baseline: every lemma check allocates a fresh
// assignment and scans the whole clause database for unit seeds.
func rescanVerifyUnsat(f *cnf.Formula, p *Proof) error {
	var clauses []cnf.Clause
	occ := map[int][]int{}
	numVars := f.NumVars()
	add := func(cl cnf.Clause) {
		norm, taut := cl.Normalize()
		if taut {
			return
		}
		if v := int(norm.MaxVar()); v > numVars {
			numVars = v
		}
		idx := len(clauses)
		clauses = append(clauses, norm)
		for _, l := range norm {
			occ[l.Not().Index()] = append(occ[l.Not().Index()], idx)
		}
	}
	propagate := func(initial []cnf.Lit) bool {
		assign := cnf.NewAssignment(numVars)
		var queue []cnf.Lit
		enqueue := func(l cnf.Lit) bool {
			switch assign.LitValue(l) {
			case cnf.True:
				return true
			case cnf.False:
				return false
			}
			assign.Assign(l)
			queue = append(queue, l)
			return true
		}
		for _, l := range initial {
			if !enqueue(l) {
				return true
			}
		}
		for _, cl := range clauses {
			if len(cl) == 1 && !enqueue(cl[0]) {
				return true
			}
			if len(cl) == 0 {
				return true
			}
		}
		for qi := 0; qi < len(queue); qi++ {
			for _, ci := range occ[queue[qi].Index()] {
				cl := clauses[ci]
				unit := cnf.LitUndef
				unassigned := 0
				sat := false
				for _, m := range cl {
					switch assign.LitValue(m) {
					case cnf.True:
						sat = true
					case cnf.Undef:
						unassigned++
						unit = m
					}
					if sat || unassigned > 1 {
						break
					}
				}
				if sat || unassigned > 1 {
					continue
				}
				if unassigned == 0 {
					return true
				}
				if !enqueue(unit) {
					return true
				}
			}
		}
		return false
	}
	for _, cl := range f.Clauses {
		add(cl)
	}
	for i, st := range p.Steps {
		if st.Del {
			continue // the rescan checker never honored deletions
		}
		neg := make([]cnf.Lit, len(st.Clause))
		for j, l := range st.Clause {
			neg[j] = l.Not()
		}
		if v := int(st.Clause.MaxVar()); v > numVars {
			numVars = v
		}
		if !propagate(neg) {
			return fmt.Errorf("solver: lemma %d is not RUP", i)
		}
		add(st.Clause)
	}
	if !propagate(nil) {
		return fmt.Errorf("solver: final database does not propagate to conflict")
	}
	return nil
}

func TestProofNilWithoutLogging(t *testing.T) {
	f := gen.Pigeonhole(3)
	s := FromFormula(f, Options{})
	s.Solve()
	if s.Proof() != nil {
		t.Fatal("proof should be nil without LogProof")
	}
	if err := VerifyUnsat(f, nil); err == nil {
		t.Fatal("nil proof must not verify")
	}
}

func TestVerifyModelHelper(t *testing.T) {
	f := gen.RandomKSAT(10, 30, 3, 1)
	s := FromFormula(f, Options{})
	if s.Solve() == Sat {
		if err := VerifyModel(f, s.Model()); err != nil {
			t.Fatal(err)
		}
		bad := s.Model()
		// Flip everything; overwhelmingly likely to break a clause.
		for v := 1; v < len(bad); v++ {
			bad[v] = bad[v].Not()
		}
		if err := VerifyModel(f, bad); err == nil {
			t.Log("flipped model still satisfies (rare but possible)")
		}
	}
}
