package solver

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
)

func TestProofVerifiesOnUnsatFamilies(t *testing.T) {
	workloads := map[string]*cnf.Formula{
		"php4":     gen.Pigeonhole(4),
		"php5":     gen.Pigeonhole(5),
		"xorcycle": gen.XorChain(10, true, 2),
	}
	for seed := int64(0); seed < 10; seed++ {
		f := gen.RandomKSAT(8, 45, 3, seed) // very overconstrained: likely UNSAT
		if sat, _ := cnf.BruteForce(f); !sat {
			workloads["rand"] = f
			break
		}
	}
	for name, f := range workloads {
		for cfg, opt := range map[string]Options{
			"default": {LogProof: true},
			"chrono":  {LogProof: true, Chronological: true},
			"restart": {LogProof: true, Restart: RestartFixed, RestartBase: 5},
			"reduce":  {LogProof: true, MaxLearnts: 5},
		} {
			s := FromFormula(f, opt)
			if s.Solve() != Unsat {
				t.Fatalf("%s/%s: expected UNSAT", name, cfg)
			}
			if err := VerifyUnsat(f, s.Proof()); err != nil {
				t.Fatalf("%s/%s: proof check failed: %v", name, cfg, err)
			}
		}
	}
}

func TestProofRejectsBogusLemma(t *testing.T) {
	f := gen.Pigeonhole(3)
	s := FromFormula(f, Options{LogProof: true})
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT")
	}
	p := s.Proof()
	if len(p.Lemmas) == 0 {
		t.Fatal("no lemmas logged")
	}
	// Corrupt the proof: insert a non-implied clause up front.
	bogus := &Proof{Lemmas: append([]cnf.Clause{cnf.NewClause(1)}, p.Lemmas...)}
	// (1) may or may not be RUP; use a clearly bogus unit over a fresh
	// variable instead: it cannot be RUP for PHP.
	bogus.Lemmas[0] = cnf.NewClause(f.NumVars() + 1)
	if err := VerifyUnsat(f, bogus); err == nil {
		t.Fatal("corrupted proof must be rejected")
	}
}

func TestProofNilWithoutLogging(t *testing.T) {
	f := gen.Pigeonhole(3)
	s := FromFormula(f, Options{})
	s.Solve()
	if s.Proof() != nil {
		t.Fatal("proof should be nil without LogProof")
	}
	if err := VerifyUnsat(f, nil); err == nil {
		t.Fatal("nil proof must not verify")
	}
}

func TestVerifyModelHelper(t *testing.T) {
	f := gen.RandomKSAT(10, 30, 3, 1)
	s := FromFormula(f, Options{})
	if s.Solve() == Sat {
		if err := VerifyModel(f, s.Model()); err != nil {
			t.Fatal(err)
		}
		bad := s.Model()
		// Flip everything; overwhelmingly likely to break a clause.
		for v := 1; v < len(bad); v++ {
			bad[v] = bad[v].Not()
		}
		if err := VerifyModel(f, bad); err == nil {
			t.Log("flipped model still satisfies (rare but possible)")
		}
	}
}
