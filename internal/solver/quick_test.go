package solver

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cnf"
	"repro/internal/dpll"
	"repro/internal/gen"
)

// Property: on arbitrary small random formulas the CDCL solver and the
// independent DPLL implementation agree, and Sat models verify.
func TestQuickSolverMatchesDPLL(t *testing.T) {
	f := func(seed int64, nv8 uint8, ratio8 uint8) bool {
		nv := 3 + int(nv8%8)
		m := nv * (2 + int(ratio8%4))
		formula := gen.RandomKSAT(nv, m, 3, seed)
		s := FromFormula(formula, Options{Seed: seed})
		st := s.Solve()
		ref := dpll.Solve(formula, dpll.Options{})
		if (st == Sat) != ref.Sat {
			return false
		}
		if st == Sat {
			return VerifyModel(formula, s.Model()) == nil
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: an UNSAT answer with proof logging always carries a
// verifiable refutation.
func TestQuickProofsAlwaysVerify(t *testing.T) {
	f := func(seed int64) bool {
		nv := 5 + int(uint64(seed)%5)
		formula := gen.RandomKSAT(nv, nv*6, 3, seed) // overconstrained
		s := FromFormula(formula, Options{LogProof: true})
		if s.Solve() != Unsat {
			return true // satisfiable instances vacuously pass
		}
		return VerifyUnsat(formula, s.Proof()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the variable heap pops variables in non-increasing activity
// order when activities are fixed.
func TestQuickHeapOrder(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := 1 + int(n8%32)
		rng := rand.New(rand.NewSource(seed))
		act := make([]float64, n+1)
		h := newVarHeap(&act)
		for v := 1; v <= n; v++ {
			act[v] = rng.Float64()
			h.push(cnf.Var(v))
		}
		var popped []float64
		for !h.empty() {
			popped = append(popped, act[h.pop()])
		}
		if len(popped) != n {
			return false
		}
		return sort.SliceIsSorted(popped, func(i, j int) bool { return popped[i] > popped[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: heap update after an activity bump keeps pop order correct.
func TestQuickHeapUpdate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16
		act := make([]float64, n+1)
		h := newVarHeap(&act)
		for v := 1; v <= n; v++ {
			act[v] = rng.Float64()
			h.push(cnf.Var(v))
		}
		// Bump a few random variables.
		for k := 0; k < 5; k++ {
			v := cnf.Var(rng.Intn(n) + 1)
			act[v] += rng.Float64() * 2
			h.update(v)
		}
		prev := 1e18
		for !h.empty() {
			a := act[h.pop()]
			if a > prev {
				return false
			}
			prev = a
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: incremental solving is consistent — adding the negation of a
// Sat model as a blocking clause never yields the same model again, and
// enumeration terminates with Unsat.
func TestQuickModelEnumerationTerminates(t *testing.T) {
	f := func(seed int64) bool {
		formula := gen.RandomKSAT(6, 14, 3, seed)
		s := FromFormula(formula, Options{})
		seen := map[string]bool{}
		for round := 0; round < 80; round++ {
			st := s.Solve()
			if st == Unsat {
				return true
			}
			m := s.Model()
			key := ""
			block := make(cnf.Clause, 0, 6)
			for v := cnf.Var(1); v <= 6; v++ {
				key += m.Value(v).String()
				block = append(block, cnf.NewLit(v, m.Value(v) == cnf.True))
			}
			if seen[key] {
				return false // duplicate model: blocking failed
			}
			seen[key] = true
			if !s.AddClause(block) {
				return true
			}
		}
		return false // 2^6 = 64 < 80 rounds must have terminated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: solving is deterministic for a fixed seed.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		formula := gen.Random3SATHard(25, seed)
		s1 := FromFormula(formula, Options{Seed: 42, RandomFreq: 0.1, Restart: RestartLuby, RestartBase: 10})
		s2 := FromFormula(formula, Options{Seed: 42, RandomFreq: 0.1, Restart: RestartLuby, RestartBase: 10})
		st1, st2 := s1.Solve(), s2.Solve()
		return st1 == st2 && s1.Stats.Decisions == s2.Stats.Decisions &&
			s1.Stats.Conflicts == s2.Stats.Conflicts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
