package solver

import "repro/internal/cnf"

// This file keeps the pre-paging watcher representation — one
// individually heap-allocated Go slice per literal — alive behind
// Options.LegacyWatcherStore. It exists for two reasons only:
//
//   - BenchmarkE32_ClauseArena's watcher-store variant measures the
//     paged store against this slice-of-slices baseline on identical
//     workloads (allocs/op, props/s);
//   - the differential tests drive both representations with the same
//     seed and assert identical search statistics, which pins the paged
//     store's semantics to the well-understood baseline.
//
// It is not a production configuration and receives no optimization.

func (s *Solver) attachLegacy(c CRef) {
	lits := s.db.lits(c)
	if len(lits) == 2 {
		s.legacyBin[lits[0].Not().Index()] = append(s.legacyBin[lits[0].Not().Index()], watcher{c, lits[1]})
		s.legacyBin[lits[1].Not().Index()] = append(s.legacyBin[lits[1].Not().Index()], watcher{c, lits[0]})
		return
	}
	s.legacyWatches[lits[0].Not().Index()] = append(s.legacyWatches[lits[0].Not().Index()], watcher{c, lits[1]})
	s.legacyWatches[lits[1].Not().Index()] = append(s.legacyWatches[lits[1].Not().Index()], watcher{c, lits[0]})
}

// propagateLegacy is propagate over the slice-of-slices lists; the
// algorithm is identical (same visit order, same blocker handling), so
// the two representations produce bit-identical searches.
func (s *Solver) propagateLegacy() CRef {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++

		for _, bw := range s.legacyBin[p.Index()] {
			switch s.LitValue(bw.blocker) {
			case cnf.True:
			case cnf.False:
				s.qhead = len(s.trail)
				return bw.cref
			default:
				s.uncheckedEnqueue(bw.blocker, bw.cref)
			}
		}

		ws := s.legacyWatches[p.Index()]
		i, j := 0, 0
		var confl CRef = CRefUndef
	watchLoop:
		for i < len(ws) {
			w := ws[i]
			if s.LitValue(w.blocker) == cnf.True {
				ws[j] = w
				i++
				j++
				continue
			}
			if s.db.deleted(w.cref) {
				i++
				continue
			}
			lits := s.db.lits(w.cref)
			if lits[0] == p.Not() {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.LitValue(first) == cnf.True {
				ws[j] = watcher{w.cref, first}
				i++
				j++
				continue
			}
			for k := 2; k < len(lits); k++ {
				if s.LitValue(lits[k]) != cnf.False {
					lits[1], lits[k] = lits[k], lits[1]
					s.legacyWatches[lits[1].Not().Index()] = append(s.legacyWatches[lits[1].Not().Index()], watcher{w.cref, first})
					i++
					continue watchLoop
				}
			}
			ws[j] = watcher{w.cref, first}
			i++
			j++
			if s.LitValue(first) == cnf.False {
				confl = w.cref
				s.qhead = len(s.trail)
				break
			}
			s.uncheckedEnqueue(first, w.cref)
		}
		for ; i < len(ws); i++ {
			ws[j] = ws[i]
			j++
		}
		s.legacyWatches[p.Index()] = ws[:j]
		if confl != CRefUndef {
			return confl
		}
	}
	return CRefUndef
}

// patchWatchesLegacy is garbageCollect's relocation pass over the
// slice-of-slices lists.
func (s *Solver) patchWatchesLegacy() {
	for li := range s.legacyWatches {
		ws := s.legacyWatches[li]
		w := 0
		for _, x := range ws {
			if s.db.deleted(x.cref) {
				continue
			}
			x.cref = s.db.forward(x.cref)
			ws[w] = x
			w++
		}
		s.legacyWatches[li] = ws[:w]
	}
	for li := range s.legacyBin {
		ws := s.legacyBin[li]
		for i := range ws {
			ws[i].cref = s.db.forward(ws[i].cref)
		}
	}
}
