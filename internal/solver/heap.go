package solver

import "repro/internal/cnf"

// varHeap is an indexed max-heap of variables ordered by activity.
// It holds a pointer to the solver's activity slice so bumps reorder
// entries in place.
type varHeap struct {
	act     *[]float64
	heap    []cnf.Var
	indices []int // position of var in heap, -1 if absent
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

func (h *varHeap) less(a, b cnf.Var) bool { return (*h.act)[a] > (*h.act)[b] }

func (h *varHeap) grow(v cnf.Var) {
	for len(h.indices) <= int(v) {
		h.indices = append(h.indices, -1)
	}
}

func (h *varHeap) contains(v cnf.Var) bool {
	return int(v) < len(h.indices) && h.indices[v] >= 0
}

func (h *varHeap) push(v cnf.Var) {
	h.grow(v)
	if h.indices[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pushIfAbsent(v cnf.Var) { h.push(v) }

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) pop() cnf.Var {
	v := h.heap[0]
	h.swap(0, len(h.heap)-1)
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[v] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v
}

// update restores heap order after v's activity changed.
func (h *varHeap) update(v cnf.Var) {
	if !h.contains(v) {
		return
	}
	i := h.indices[v]
	h.up(i)
	h.down(h.indices[v])
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.indices[h.heap[i]] = i
	h.indices[h.heap[j]] = j
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(h.heap[l], h.heap[best]) {
			best = l
		}
		if r < n && h.less(h.heap[r], h.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}
