package solver

import (
	"sync/atomic"

	"repro/internal/cnf"
)

// This file holds the cooperation hooks a parallel portfolio needs from
// the sequential engine: an asynchronous interrupt, an export path for
// freshly recorded conflict clauses, an import path that injects
// clauses learned elsewhere at decision level 0, and the Snapshot
// progress probe an adaptive scheduler samples while Solve runs.

// Phase labels the coarse time-attribution buckets a running search
// accumulates nanoseconds into (Progress.PhaseNS). Propagation is
// sampled (one timed call in propagateSamplePeriod, scaled back up);
// the other phases are cheap enough to time exactly — they run per
// conflict or per maintenance event, never per propagation.
type Phase int

// Search phases, in PhaseNS order.
const (
	// PhasePropagate is Boolean constraint propagation (sampled).
	PhasePropagate Phase = iota
	// PhaseAnalyze covers conflict diagnosis: analyze, backtracking and
	// recording the learnt clause.
	PhaseAnalyze
	// PhaseReduce is learnt-database reduction (reduceDB).
	PhaseReduce
	// PhaseInprocess is the restart-boundary inprocessing round
	// (vivification, subsumption, variable elimination).
	PhaseInprocess
	// PhaseGC is the relocating arena compaction.
	PhaseGC
	// PhaseCount sizes PhaseNS arrays.
	PhaseCount
)

// PhaseNames are the stable exposition labels, indexed by Phase.
var PhaseNames = [PhaseCount]string{
	"propagate", "analyze", "reduce_db", "inprocess", "arena_gc",
}

// String returns the phase's exposition label.
func (p Phase) String() string {
	if p < 0 || p >= PhaseCount {
		return "unknown"
	}
	return PhaseNames[p]
}

// propagateSamplePeriod is the propagation-timing sample rate: one in
// this many propagate calls is timed and its duration scaled by the
// period. A power of two keeps the gate a mask; at any realistic
// propagation rate the clock cost disappears (< 1/64 of calls pay two
// time.Now reads) while the estimate converges within milliseconds.
const propagateSamplePeriod = 64

// progressCounters is the atomic mirror of the scheduling-relevant
// Stats, written by the solving goroutine and read by Snapshot.
type progressCounters struct {
	conflicts atomic.Int64
	restarts  atomic.Int64
	learned   atomic.Int64
	lbdHist   [LBDHistBuckets]atomic.Int64
	// phaseNS accumulates attributed search nanoseconds per Phase.
	// Written only by the solving goroutine (plain adds would race with
	// Snapshot readers, hence atomics); propagation entries are sampled
	// estimates, the rest exact.
	phaseNS [PhaseCount]atomic.Int64
	// propTick gates the propagation sampling; owned by the solving
	// goroutine, so it needs no atomicity.
	propTick uint32
}

// noteConflict buckets the learn-time LBD of a just-derived conflict
// clause into both the plain Stats histogram and the atomic progress
// mirror. (The conflict count itself is bumped at the conflict site,
// which also covers level-0 conflicts that never reach analyze.)
func (s *Solver) noteConflict(lbd int) {
	b := lbd - 1
	if b < 0 {
		b = 0
	}
	if b >= LBDHistBuckets {
		b = LBDHistBuckets - 1
	}
	s.Stats.LBDHist[b]++
	s.prog.lbdHist[b].Add(1)
}

// Progress is a point-in-time view of a running search. Unlike Stats —
// which may only be read after Solve returns — a Progress snapshot is
// race-free while Solve runs: Snapshot reads atomics the solving
// goroutine maintains alongside the plain counters. It carries exactly
// what an adaptive portfolio supervisor needs to rank workers:
// throughput (Conflicts, Restarts) and learnt-clause quality (the
// learn-time LBD histogram).
type Progress struct {
	// Conflicts and Restarts count since the solver was created (NOT
	// since the current Solve call): a scheduler rates a fresh worker
	// against its spawn time, so per-solver-lifetime totals are the
	// natural unit.
	Conflicts int64
	Restarts  int64
	// Learned counts recorded (non-unit, learning-enabled) clauses.
	Learned int64
	// LBDHist buckets every conflict clause by learn-time LBD: bucket i
	// holds LBD i+1, the last bucket LBD ≥ LBDHistBuckets.
	LBDHist [LBDHistBuckets]int64
	// PhaseNS attributes accumulated search time to coarse phases,
	// indexed by Phase (labels in PhaseNames): propagation (sampled
	// estimate), conflict analysis, reduceDB, inprocessing, arena GC.
	// The remainder against wall-clock is decision/bookkeeping time.
	PhaseNS [PhaseCount]int64
}

// GlueShare returns the fraction of conflict clauses with learn-time
// LBD ≤ 3 — the "glue" mass of the histogram, in [0, 1]. It reports 0
// when no conflicts have happened yet.
func (p *Progress) GlueShare() float64 {
	var total, glue int64
	for i, n := range p.LBDHist {
		total += n
		if i < 3 {
			glue += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(glue) / float64(total)
}

// Snapshot samples the running search. Like Interrupt it is safe to
// call from another goroutine at any time; the fields are individually
// atomic (the snapshot is not a single consistent cut, which a
// scheduler sampling rates does not need).
func (s *Solver) Snapshot() Progress {
	p := Progress{
		Conflicts: s.prog.conflicts.Load(),
		Restarts:  s.prog.restarts.Load(),
		Learned:   s.prog.learned.Load(),
	}
	for i := range p.LBDHist {
		p.LBDHist[i] = s.prog.lbdHist[i].Load()
	}
	for i := range p.PhaseNS {
		p.PhaseNS[i] = s.prog.phaseNS[i].Load()
	}
	return p
}

// Interrupt asynchronously requests that the current (or next) Solve
// call stop and return Unknown. It is the only Solver method that is
// safe to call from another goroutine while Solve runs. The request is
// sticky: it persists across Solve calls until ClearInterrupt.
func (s *Solver) Interrupt() { s.stop.Store(true) }

// Interrupted reports whether an interrupt has been requested and not
// yet cleared.
func (s *Solver) Interrupted() bool { return s.stop.Load() }

// ClearInterrupt rearms the solver after an Interrupt so it can be
// reused for further Solve calls.
func (s *Solver) ClearInterrupt() { s.stop.Store(false) }

// exportLearnt offers a just-recorded conflict clause to the ExportClause
// hook when it passes the length/LBD quality filter. Unit clauses are
// always exported (they are top-level facts every worker wants). The
// literal slice is lent to the hook for the duration of the call only —
// no copy is made here; a consumer that keeps the clause (e.g. a shared
// pool accepting it) copies on acceptance. lbd was computed at learn
// time by analyze, so no level scan happens on the export path either.
func (s *Solver) exportLearnt(learnt []cnf.Lit, lbd int) {
	if s.opts.ExportClause == nil {
		return
	}
	if len(learnt) > 1 && (len(learnt) > s.opts.ShareMaxLen || lbd > s.opts.ShareMaxLBD) {
		return
	}
	s.Stats.Exported++
	if !s.opts.ExportClause(learnt, lbd) {
		// Terminal stop from the consumer (it is being torn down and
		// will never accept again): stop paying the callback for the
		// rest of this solve.
		s.opts.ExportClause = nil
	}
}

// lbd computes the literal-block distance of a clause under the current
// assignment: the number of distinct decision levels among its literals.
// Lower is better; LBD 2 ("glue") clauses connect exactly two levels.
func (s *Solver) lbd(lits []cnf.Lit) int {
	n := 0
	var small uint64
	var levels []int32
	for _, l := range lits {
		lvl := s.level[l.Var()]
		if lvl < 64 {
			if small&(1<<uint(lvl)) != 0 {
				continue
			}
			small |= 1 << uint(lvl)
		} else {
			dup := false
			for _, x := range levels {
				if x == lvl {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			levels = append(levels, lvl)
		}
		n++
	}
	return n
}

// importShared drains the ImportClauses hook, injecting every foreign
// clause at decision level 0. It must be called with an empty trail
// queue at level 0. It returns false if an imported clause (all of which
// are consequences of the problem clauses) closes the formula — i.e. the
// database became unsatisfiable. Import is suppressed while a proof is
// being streamed (Options.Proof / LogProof): foreign clauses are not
// RUP steps of this solver's lemma sequence, so they would poison an
// otherwise verifiable refutation.
func (s *Solver) importShared() bool {
	if s.opts.ImportClauses == nil || s.proof != nil {
		return true
	}
	for _, c := range s.opts.ImportClauses() {
		if !s.injectLearnt(c) {
			return false
		}
	}
	return true
}

// injectLearnt installs one foreign clause at decision level 0. The
// clause must be implied by the problem clauses; lits is copied, never
// mutated (it may be shared with concurrent readers). Returns false on a
// top-level contradiction.
func (s *Solver) injectLearnt(lits cnf.Clause) bool {
	if s.decisionLevel() != 0 {
		s.cancelUntil(0)
	}
	out := make([]cnf.Lit, 0, len(lits))
	for _, l := range lits {
		if int(l.Var()) > s.NumVars() {
			// A worker with a private extension variable leaked a clause
			// mentioning it; growing is sound but such clauses should not
			// normally reach us. Accept and grow.
			s.growTo(int(l.Var()))
		}
		switch s.LitValue(l) {
		case cnf.True:
			return true // satisfied at level 0 forever
		case cnf.False:
			continue // permanently false literal
		default:
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], CRefUndef)
		if s.propagate() != CRefUndef {
			s.ok = false
			return false
		}
	default:
		if s.opts.NoLearning {
			// A no-learning configuration must not acquire pruning
			// clauses through the back door; only unit facts (which
			// even NoLearning asserts at top level) are adopted.
			return true
		}
		// Foreign clauses carry no learn-time LBD; rate them by their
		// level-0 length so tiered deletion treats short imports kindly.
		c := s.db.alloc(out, true, false, len(out))
		s.db.addLearnt(c)
		s.attach(c)
		s.bumpClause(c)
	}
	s.Stats.Imported++
	return true
}
