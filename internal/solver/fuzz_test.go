package solver

import (
	"testing"

	"repro/internal/cnf"
)

// fuzzConfigs is the configuration palette FuzzSolverVsBrute draws
// from: every individually-switchable technique, with no resource
// budgets (each configuration is a complete decision procedure, so
// Unknown is always a bug).
var fuzzConfigs = []Options{
	{},
	{Chronological: true},
	{NoLearning: true},
	{NoMinimize: true},
	{Deletion: DeleteByRelevance, RelevanceBound: 2, MaxLearnts: 10},
	{Deletion: DeleteNever},
	{Restart: RestartFixed, RestartBase: 4, RandomFreq: 0.3, Seed: 7},
	{Restart: RestartNone},
	{Decide: DecideDLIS},
	{Decide: DecideOrdered, Restart: RestartGeometric, RestartBase: 8},
	{Decide: DecideRandom, Seed: 3},
	{NoPhaseSaving: true, Restart: RestartLuby, RestartBase: 2},
	{LegacyWatcherStore: true},
	{LogProof: true},
	{MaxLearnts: 1},
	// Inprocessing configurations (aggressive cadence so restart
	// boundaries — and therefore rounds — happen even on tiny
	// instances): every transform combination the engine supports.
	{Inprocess: true, InprocessEvery: 1, Restart: RestartFixed, RestartBase: 2},
	{Inprocess: true, InprocessNoSubsume: true, InprocessEvery: 1, Restart: RestartFixed, RestartBase: 2},
	{Inprocess: true, InprocessNoVivify: true, InprocessEvery: 1, Restart: RestartFixed, RestartBase: 2},
	{Inprocess: true, InprocessVarElim: true, InprocessEvery: 1, Restart: RestartFixed, RestartBase: 2},
	{Inprocess: true, InprocessVarElim: true, InprocessNoVivify: true, InprocessNoSubsume: true, InprocessEvery: 1, Restart: RestartFixed, RestartBase: 2},
}

// decodeFuzzFormula interprets fuzz bytes as a bounded CNF instance
// plus a configuration pick:
//
//	data[0] → variable count in [1, 12]
//	data[1] → index into fuzzConfigs
//	rest    → one literal per byte: 0 terminates a clause, otherwise
//	          bit 7 is the polarity and the low bits pick the variable
//
// Bounds (≤ 12 vars, ≤ 64 clauses, ≤ 8 literals per clause) keep the
// brute-force oracle instant while still reaching empty clauses,
// duplicate literals, tautologies and both verdicts.
func decodeFuzzFormula(data []byte) (*cnf.Formula, Options) {
	if len(data) < 3 {
		return nil, Options{}
	}
	nVars := int(data[0])%12 + 1
	opts := fuzzConfigs[int(data[1])%len(fuzzConfigs)]
	f := cnf.New(nVars)
	var cur cnf.Clause
	for _, b := range data[2:] {
		if f.NumClauses() >= 64 {
			break
		}
		if b == 0 {
			f.AddClause(cur) // may be empty: trivially unsat, still legal
			cur = nil
			continue
		}
		if len(cur) >= 8 {
			continue
		}
		v := cnf.Var(int(b&0x7f)%nVars + 1)
		cur = append(cur, cnf.NewLit(v, b&0x80 != 0))
	}
	// An unterminated trailing clause is dropped, mirroring DIMACS
	// strictness.
	if f.NumClauses() == 0 {
		return nil, Options{}
	}
	return f, opts
}

// FuzzSolverVsBrute generates small CNF instances from fuzz bytes,
// solves them with a fuzz-chosen CDCL configuration and checks the
// verdict against exhaustive enumeration (cnf.BruteForce). Sat models
// are verified clause by clause; Unsat answers from the proof-logging
// configuration are verified against the recorded DRUP-style proof.
// This is the ground-truth harness every scheduling or heuristic change
// must keep green: heuristics may change how the search walks, never
// what it answers.
func FuzzSolverVsBrute(f *testing.F) {
	f.Add([]byte{3, 0, 1, 2, 0, 0x81, 3, 0, 0x82, 0x83, 0})
	f.Add([]byte{1, 1, 1, 0, 0x81, 0})          // x ∧ ¬x: unsat
	f.Add([]byte{7, 2, 1, 2, 3, 0, 4, 5, 0, 6}) // mixed, trailing garbage
	f.Add([]byte{11, 13, 1, 0, 2, 0, 3, 0, 0x81, 0x82, 0x83, 0})
	f.Add([]byte{5, 4, 0}) // a single empty clause
	// Inprocessing configurations over instances big enough to restart.
	f.Add([]byte{9, 15, 1, 2, 0, 0x81, 3, 0, 0x82, 4, 0, 0x83, 0x84, 0, 5, 6, 0, 0x85, 7, 0, 0x86, 0x87, 0, 8, 9, 0, 1, 0x89, 0})
	f.Add([]byte{10, 18, 1, 2, 3, 0, 0x81, 0x82, 0, 4, 5, 0, 0x84, 0x85, 0, 6, 7, 8, 0, 0x86, 0x88, 0, 9, 10, 0, 0x89, 0x8a, 0})
	f.Add([]byte{8, 19, 1, 2, 0, 0x81, 0x82, 0, 3, 4, 0, 0x83, 0x84, 0, 5, 6, 0, 0x85, 0x86, 0, 7, 8, 0, 0x87, 0x88, 0, 1, 3, 5, 7, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			t.Skip("oversized input")
		}
		formula, opts := decodeFuzzFormula(data)
		if formula == nil {
			t.Skip("undecodable")
		}
		want, _ := cnf.BruteForce(formula)
		s := FromFormula(formula, opts)
		st := s.Solve()
		if st == Unknown {
			t.Fatalf("complete configuration %+v returned Unknown on %v", opts, formula)
		}
		if got := st == Sat; got != want {
			t.Fatalf("solver=%v brute=%v on %v (opts %+v)", st, want, formula, opts)
		}
		if st == Sat {
			// Model verified clause by clause against the formula.
			if err := VerifyModel(formula, s.Model()); err != nil {
				t.Fatalf("model rejected: %v on %v (opts %+v)", err, formula, opts)
			}
		} else if opts.LogProof {
			if err := VerifyUnsat(formula, s.Proof()); err != nil {
				t.Fatalf("proof rejected: %v on %v", err, formula)
			}
		}
	})
}
