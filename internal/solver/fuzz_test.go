package solver

import (
	"bytes"
	"testing"

	"repro/internal/cnf"
)

// fuzzConfigs is the configuration palette FuzzSolverVsBrute draws
// from: every individually-switchable technique, with no resource
// budgets (each configuration is a complete decision procedure, so
// Unknown is always a bug).
var fuzzConfigs = []Options{
	{},
	{Chronological: true},
	{NoLearning: true},
	{NoMinimize: true},
	{Deletion: DeleteByRelevance, RelevanceBound: 2, MaxLearnts: 10},
	{Deletion: DeleteNever},
	{Restart: RestartFixed, RestartBase: 4, RandomFreq: 0.3, Seed: 7},
	{Restart: RestartNone},
	{Decide: DecideDLIS},
	{Decide: DecideOrdered, Restart: RestartGeometric, RestartBase: 8},
	{Decide: DecideRandom, Seed: 3},
	{NoPhaseSaving: true, Restart: RestartLuby, RestartBase: 2},
	{LegacyWatcherStore: true},
	{LogProof: true},
	{MaxLearnts: 1},
	// Inprocessing configurations (aggressive cadence so restart
	// boundaries — and therefore rounds — happen even on tiny
	// instances): every transform combination the engine supports.
	{Inprocess: true, InprocessEvery: 1, Restart: RestartFixed, RestartBase: 2},
	{Inprocess: true, InprocessNoSubsume: true, InprocessEvery: 1, Restart: RestartFixed, RestartBase: 2},
	{Inprocess: true, InprocessNoVivify: true, InprocessEvery: 1, Restart: RestartFixed, RestartBase: 2},
	{Inprocess: true, InprocessVarElim: true, InprocessEvery: 1, Restart: RestartFixed, RestartBase: 2},
	{Inprocess: true, InprocessVarElim: true, InprocessNoVivify: true, InprocessNoSubsume: true, InprocessEvery: 1, Restart: RestartFixed, RestartBase: 2},
	// Proof logging under deletion pressure: the tiny learnt cap plus a
	// fast restart cadence forces reduceDB, so the stream carries "d"
	// lines and the checker's deletion handling is exercised. Appended
	// after the older entries — seed corpus bytes index this slice.
	{LogProof: true, MaxLearnts: 1, Restart: RestartFixed, RestartBase: 2},
	{LogProof: true, NoLearning: true, Chronological: true},
}

// decodeFuzzFormula interprets fuzz bytes as a bounded CNF instance
// plus a configuration pick:
//
//	data[0] → variable count in [1, 12]
//	data[1] → index into fuzzConfigs
//	rest    → one literal per byte: 0 terminates a clause, otherwise
//	          bit 7 is the polarity and the low bits pick the variable
//
// Bounds (≤ 12 vars, ≤ 64 clauses, ≤ 8 literals per clause) keep the
// brute-force oracle instant while still reaching empty clauses,
// duplicate literals, tautologies and both verdicts.
func decodeFuzzFormula(data []byte) (*cnf.Formula, Options) {
	if len(data) < 3 {
		return nil, Options{}
	}
	nVars := int(data[0])%12 + 1
	opts := fuzzConfigs[int(data[1])%len(fuzzConfigs)]
	f := cnf.New(nVars)
	var cur cnf.Clause
	for _, b := range data[2:] {
		if f.NumClauses() >= 64 {
			break
		}
		if b == 0 {
			f.AddClause(cur) // may be empty: trivially unsat, still legal
			cur = nil
			continue
		}
		if len(cur) >= 8 {
			continue
		}
		v := cnf.Var(int(b&0x7f)%nVars + 1)
		cur = append(cur, cnf.NewLit(v, b&0x80 != 0))
	}
	// An unterminated trailing clause is dropped, mirroring DIMACS
	// strictness.
	if f.NumClauses() == 0 {
		return nil, Options{}
	}
	return f, opts
}

// FuzzSolverVsBrute generates small CNF instances from fuzz bytes,
// solves them with a fuzz-chosen CDCL configuration and checks the
// verdict against exhaustive enumeration (cnf.BruteForce). Sat models
// are verified clause by clause; Unsat answers from the proof-logging
// configuration are verified against the recorded DRUP-style proof.
// This is the ground-truth harness every scheduling or heuristic change
// must keep green: heuristics may change how the search walks, never
// what it answers.
// proofFuzzConfigs is the palette FuzzProofVerify draws from: all log
// proofs, spanning no deletions, heavy reduceDB deletion pressure, and
// NoLearning temp clauses.
var proofFuzzConfigs = []Options{
	{LogProof: true},
	{LogProof: true, MaxLearnts: 1, Restart: RestartFixed, RestartBase: 2},
	{LogProof: true, Deletion: DeleteByRelevance, RelevanceBound: 2, MaxLearnts: 4},
	{LogProof: true, NoLearning: true},
}

// FuzzProofVerify is the proof-pipeline fuzzer: on every generated
// UNSAT instance the emitted DRAT stream (including deletion lines)
// must pass the incremental checker both in memory and through the
// textual encode/parse round trip; a fresh-variable lemma spliced in at
// any position before the conflict must be rejected, as must truncating
// the stream before the conflict; and no stream may ever pass against a
// brute-force-satisfiable formula (checker soundness: an accepted
// refutation implies UNSAT).
func FuzzProofVerify(f *testing.F) {
	f.Add([]byte{1, 0, 1, 0, 0x81, 0})                   // x ∧ ¬x
	f.Add([]byte{3, 1, 1, 2, 0, 0x81, 3, 0, 0x82, 0x83, 0})
	f.Add([]byte{2, 1, 1, 2, 0, 0x81, 2, 0, 1, 0x82, 0, 0x81, 0x82, 0}) // unsat 2-var square
	f.Add([]byte{4, 2, 1, 2, 0, 0x81, 0x82, 0, 3, 4, 0, 0x83, 0x84, 0, 1, 3, 0, 0x81, 0x83, 0})
	f.Add([]byte{5, 3, 0}) // single empty clause
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			t.Skip("oversized input")
		}
		formula, _ := decodeFuzzFormula(data)
		if formula == nil {
			t.Skip("undecodable")
		}
		opts := proofFuzzConfigs[int(data[1])%len(proofFuzzConfigs)]
		s := FromFormula(formula, opts)
		st := s.Solve()
		p := s.Proof()
		if st == Sat {
			// Soundness: no step stream may refute a satisfiable formula.
			if err := VerifyUnsat(formula, p); err == nil {
				t.Fatalf("checker accepted a refutation of a satisfiable formula %v", formula)
			}
			return
		}
		if st != Unsat {
			t.Fatalf("complete configuration returned Unknown on %v", formula)
		}
		if err := VerifyUnsat(formula, p); err != nil {
			t.Fatalf("emitted proof rejected: %v on %v (opts %+v)", err, formula, opts)
		}
		// Textual round trip: encode the same steps as DRAT, re-parse,
		// re-verify.
		var buf bytes.Buffer
		w := NewDRATWriter(&buf)
		for _, step := range p.Steps {
			if step.Del {
				w.Delete(step.Clause)
			} else {
				w.Learn(step.Clause)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := VerifyDRAT(formula, bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("DRAT round trip rejected: %v on %v", err, formula)
		}
		// Mutation and truncation: replay the stream on one incremental
		// checker. Before the database first conflicts, a unit over a
		// fresh variable can never be RUP — splicing one in at any such
		// position must be rejected — and the prefix so far must not
		// verify as a complete proof.
		chk := NewChecker(formula)
		firstConflict := -1
		for i, step := range p.Steps {
			if chk.Conflict() {
				firstConflict = i
				break
			}
			fresh := cnf.NewClause(formula.NumVars() + 2 + i)
			if err := chk.Learn(fresh); err == nil {
				t.Fatalf("fresh-variable lemma accepted at step %d on %v", i, formula)
			}
			if step.Del {
				chk.Delete(step.Clause)
				continue
			}
			if err := chk.Learn(step.Clause); err != nil {
				t.Fatalf("replay diverged at step %d: %v", i, err)
			}
		}
		if firstConflict < 0 {
			// The conflict arrived only with the very last step.
			firstConflict = len(p.Steps)
		}
		if firstConflict > 0 {
			trunc := &Proof{Steps: p.Steps[:firstConflict-1]}
			if err := VerifyUnsat(formula, trunc); err == nil {
				t.Fatalf("truncated proof (%d of %d steps) accepted on %v",
					firstConflict-1, len(p.Steps), formula)
			}
		}
	})
}

func FuzzSolverVsBrute(f *testing.F) {
	f.Add([]byte{3, 0, 1, 2, 0, 0x81, 3, 0, 0x82, 0x83, 0})
	f.Add([]byte{1, 1, 1, 0, 0x81, 0})          // x ∧ ¬x: unsat
	f.Add([]byte{7, 2, 1, 2, 3, 0, 4, 5, 0, 6}) // mixed, trailing garbage
	f.Add([]byte{11, 13, 1, 0, 2, 0, 3, 0, 0x81, 0x82, 0x83, 0})
	f.Add([]byte{5, 4, 0}) // a single empty clause
	// Inprocessing configurations over instances big enough to restart.
	f.Add([]byte{9, 15, 1, 2, 0, 0x81, 3, 0, 0x82, 4, 0, 0x83, 0x84, 0, 5, 6, 0, 0x85, 7, 0, 0x86, 0x87, 0, 8, 9, 0, 1, 0x89, 0})
	f.Add([]byte{10, 18, 1, 2, 3, 0, 0x81, 0x82, 0, 4, 5, 0, 0x84, 0x85, 0, 6, 7, 8, 0, 0x86, 0x88, 0, 9, 10, 0, 0x89, 0x8a, 0})
	f.Add([]byte{8, 19, 1, 2, 0, 0x81, 0x82, 0, 3, 4, 0, 0x83, 0x84, 0, 5, 6, 0, 0x85, 0x86, 0, 7, 8, 0, 0x87, 0x88, 0, 1, 3, 5, 7, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			t.Skip("oversized input")
		}
		formula, opts := decodeFuzzFormula(data)
		if formula == nil {
			t.Skip("undecodable")
		}
		want, _ := cnf.BruteForce(formula)
		s := FromFormula(formula, opts)
		st := s.Solve()
		if st == Unknown {
			t.Fatalf("complete configuration %+v returned Unknown on %v", opts, formula)
		}
		if got := st == Sat; got != want {
			t.Fatalf("solver=%v brute=%v on %v (opts %+v)", st, want, formula, opts)
		}
		if st == Sat {
			// Model verified clause by clause against the formula.
			if err := VerifyModel(formula, s.Model()); err != nil {
				t.Fatalf("model rejected: %v on %v (opts %+v)", err, formula, opts)
			}
		} else if opts.LogProof {
			if err := VerifyUnsat(formula, s.Proof()); err != nil {
				t.Fatalf("proof rejected: %v on %v", err, formula)
			}
		}
	})
}
