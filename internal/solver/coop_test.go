package solver

import (
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/gen"
)

// TestInterrupt: an asynchronous Interrupt makes a long-running Solve
// return Unknown promptly instead of finishing the proof.
func TestInterrupt(t *testing.T) {
	f := gen.Pigeonhole(10) // far beyond what finishes in milliseconds
	s := FromFormula(f, Options{})
	done := make(chan Status, 1)
	go func() { done <- s.Solve() }()
	time.Sleep(10 * time.Millisecond)
	s.Interrupt()
	select {
	case st := <-done:
		if st != Unknown {
			t.Fatalf("interrupted solve returned %v, want Unknown", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("solver ignored the interrupt")
	}
	if !s.Interrupted() {
		t.Fatal("Interrupted() must report the pending request")
	}
	// After rearming, the solver is reusable and correct.
	s.ClearInterrupt()
	small := FromFormula(gen.Pigeonhole(4), Options{})
	if small.Solve() != Unsat {
		t.Fatal("PHP(4) must be UNSAT")
	}
}

// TestInterruptBeforeSolve: a sticky interrupt set before Solve yields
// Unknown immediately.
func TestInterruptBeforeSolve(t *testing.T) {
	s := FromFormula(gen.Pigeonhole(7), Options{})
	s.Interrupt()
	if st := s.Solve(); st != Unknown {
		t.Fatalf("got %v, want Unknown for pre-interrupted solve", st)
	}
}

// TestExportHook: solving a conflict-rich instance with an export hook
// yields recorded clauses implied by the formula. The hook copies what
// it keeps: the lent slice is valid only during the call.
func TestExportHook(t *testing.T) {
	f := gen.Pigeonhole(5)
	var got []cnf.Clause
	s := FromFormula(f, Options{
		ExportClause: func(lits []cnf.Lit, lbd int) bool {
			if len(lits) == 0 {
				t.Fatal("exported empty clause")
			}
			if lbd < 0 || lbd > len(lits) {
				t.Fatalf("implausible LBD %d for clause of length %d", lbd, len(lits))
			}
			got = append(got, append(cnf.Clause(nil), lits...))
			return true
		},
	})
	if s.Solve() != Unsat {
		t.Fatal("PHP(5) must be UNSAT")
	}
	if len(got) == 0 {
		t.Fatal("no clauses exported on a conflict-rich instance")
	}
	if s.Stats.Exported != int64(len(got)) {
		t.Fatalf("Stats.Exported = %d, callback saw %d", s.Stats.Exported, len(got))
	}
	// Length/LBD caps: nothing longer than the default cap may leak
	// (units are exempt but still within the cap trivially).
	for _, c := range got {
		if len(c) > 8 {
			t.Fatalf("clause of length %d escaped the ShareMaxLen cap", len(c))
		}
	}
}

// TestImportHook: clauses imported at restart boundaries participate in
// the proof, and importing a unit consequence prunes immediately.
func TestImportHook(t *testing.T) {
	// x1 AND (¬x1 ∨ x2): x2 is a consequence. Import ¬x2 from a
	// "sibling" that derived the formula unsat — the solver must answer
	// Unsat purely from the injected contradiction.
	f := cnf.New(2)
	f.AddDIMACS(1)
	f.AddDIMACS(-1, 2)
	fed := false
	s := FromFormula(f, Options{
		ImportClauses: func() []cnf.Clause {
			if fed {
				return nil
			}
			fed = true
			return []cnf.Clause{cnf.NewClause(-2)}
		},
	})
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want Unsat from imported unit", st)
	}
}

// TestImportConsequences: feeding genuine learned clauses from one
// solver into another preserves the verdict and records imports.
func TestImportConsequences(t *testing.T) {
	f := gen.Pigeonhole(6)
	var lemmas []cnf.Clause
	teacher := FromFormula(f, Options{
		ExportClause: func(lits []cnf.Lit, lbd int) bool {
			lemmas = append(lemmas, append(cnf.Clause(nil), lits...))
			return true
		},
	})
	if teacher.Solve() != Unsat {
		t.Fatal("PHP(6) must be UNSAT")
	}
	served := false
	student := FromFormula(f, Options{
		ImportClauses: func() []cnf.Clause {
			if served {
				return nil
			}
			served = true
			return lemmas
		},
	})
	if student.Solve() != Unsat {
		t.Fatal("student must still prove UNSAT")
	}
	if student.Stats.Imported == 0 {
		t.Fatal("student imported nothing despite a stocked pool")
	}
	// And on a satisfiable instance the imports must not break models.
	sat := gen.Queens(8)
	lemmas = nil
	teacher2 := FromFormula(sat, Options{
		ExportClause: func(lits []cnf.Lit, lbd int) bool {
			lemmas = append(lemmas, append(cnf.Clause(nil), lits...))
			return true
		},
		RandomFreq: 0.1, Seed: 7,
	})
	if teacher2.Solve() != Sat {
		t.Fatal("queens(8) is SAT")
	}
	served = false
	student2 := FromFormula(sat, Options{ImportClauses: func() []cnf.Clause {
		if served {
			return nil
		}
		served = true
		return lemmas
	}})
	if student2.Solve() != Sat {
		t.Fatal("student2 must find a model")
	}
	if !cnf.Assignment(student2.Model()).Satisfies(sat) {
		t.Fatal("model corrupted by imported clauses")
	}
}

// TestExportDisable: an ExportClause hook returning false permanently
// stops further export (the shared-pool-full fast path).
func TestExportDisable(t *testing.T) {
	f := gen.Pigeonhole(5)
	calls := 0
	s := FromFormula(f, Options{
		ExportClause: func(lits []cnf.Lit, lbd int) bool {
			calls++
			return calls < 3 // accept two, then refuse
		},
	})
	if s.Solve() != Unsat {
		t.Fatal("PHP(5) must be UNSAT")
	}
	if calls != 3 {
		t.Fatalf("hook called %d times, want exactly 3 (two accepts + the refusal)", calls)
	}
}

// TestLogProofSuppressesImport: with proof logging on, foreign clauses
// must NOT be imported — they are not RUP steps of this solver's lemma
// sequence and would make a correct refutation fail verification.
func TestLogProofSuppressesImport(t *testing.T) {
	f := gen.Pigeonhole(5)
	var lemmas []cnf.Clause
	teacher := FromFormula(f, Options{
		ExportClause: func(lits []cnf.Lit, lbd int) bool {
			lemmas = append(lemmas, append(cnf.Clause(nil), lits...))
			return true
		},
	})
	if teacher.Solve() != Unsat {
		t.Fatal("PHP(5) must be UNSAT")
	}
	s := FromFormula(f, Options{
		LogProof:      true,
		ImportClauses: func() []cnf.Clause { return lemmas },
	})
	if s.Solve() != Unsat {
		t.Fatal("PHP(5) must be UNSAT")
	}
	if s.Stats.Imported != 0 {
		t.Fatalf("imported %d clauses under LogProof; import must be suppressed", s.Stats.Imported)
	}
	if err := VerifyUnsat(f, s.Proof()); err != nil {
		t.Fatalf("proof must verify: %v", err)
	}
}

// TestNoLearningRejectsImport: a no-learning configuration must not
// acquire pruning clauses through the import path (units excepted —
// NoLearning asserts unit implicates at top level too).
func TestNoLearningRejectsImport(t *testing.T) {
	f := gen.Pigeonhole(5)
	var lemmas []cnf.Clause
	teacher := FromFormula(f, Options{
		ExportClause: func(lits []cnf.Lit, lbd int) bool {
			lemmas = append(lemmas, append(cnf.Clause(nil), lits...))
			return true
		},
	})
	if teacher.Solve() != Unsat {
		t.Fatal("PHP(5) must be UNSAT")
	}
	long := 0
	for _, c := range lemmas {
		if len(c) > 1 {
			long++
		}
	}
	if long == 0 {
		t.Fatal("test needs non-unit lemmas to be meaningful")
	}
	s := FromFormula(f, Options{
		NoLearning:    true,
		ImportClauses: func() []cnf.Clause { return lemmas },
	})
	if s.Solve() != Unsat {
		t.Fatal("PHP(5) must be UNSAT")
	}
	if s.Stats.Imported > int64(len(lemmas)-long) {
		t.Fatalf("NoLearning solver imported %d clauses (only %d units were eligible)",
			s.Stats.Imported, len(lemmas)-long)
	}
}
