package solver

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
)

// --- store-level unit tests -------------------------------------------------

// TestWatchStorePushAndList pushes distinguishable watchers across many
// literals and checks every list comes back complete, in order, and
// isolated from its neighbours.
func TestWatchStorePushAndList(t *testing.T) {
	var st watchStore
	st.init(4)
	const lits, per = 50, 23
	st.growLits(lits)
	for i := 0; i < per; i++ {
		for li := 0; li < lits; li++ {
			st.push(li, watcher{CRef(li*1000 + i), cnf.Lit(li)})
		}
	}
	for li := 0; li < lits; li++ {
		ws := st.list(li)
		if len(ws) != per {
			t.Fatalf("lit %d: got %d watchers, want %d", li, len(ws), per)
		}
		for i, w := range ws {
			if w.cref != CRef(li*1000+i) || w.blocker != cnf.Lit(li) {
				t.Fatalf("lit %d slot %d: got %+v", li, i, w)
			}
		}
	}
}

// TestWatchStorePageSizeRounding checks the init rounding rules: powers
// of two pass through, others round up, tiny/zero select the default.
func TestWatchStorePageSizeRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 4}, {1, 4}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16}, {64, 64},
		{3_000_000_000, 1 << 20}, // clamped, and must not hang the doubling loop
	} {
		var st watchStore
		st.init(tc.in)
		if int(st.pageSize) != tc.want {
			t.Fatalf("init(%d): pageSize %d, want %d", tc.in, st.pageSize, tc.want)
		}
	}
}

// TestWatchStoreGrowFreesOldPage verifies the grow path donates the
// outgrown page to its class's free chain and that a later allocation
// of that class reuses it instead of extending the backing slice.
func TestWatchStoreGrowFreesOldPage(t *testing.T) {
	var st watchStore
	st.init(4)
	st.growLits(4)
	for i := 0; i < 5; i++ { // fifth push grows lit 0 from cap 4 to cap 8
		st.push(0, watcher{CRef(i), 0})
	}
	if free := st.freePages(); free[0] != 1 {
		t.Fatalf("outgrown class-0 page not on the free chain: %v", free)
	}
	before := len(st.data)
	st.push(1, watcher{99, 0}) // needs a fresh class-0 page
	if len(st.data) != before {
		t.Fatalf("class-0 allocation extended the backing slice (%d → %d) despite a free page", before, len(st.data))
	}
	if free := st.freePages(); free[0] != 0 {
		t.Fatalf("free page not consumed: %v", free)
	}
	// Nothing was lost in the shuffle.
	if got := st.list(0); len(got) != 5 || got[4].cref != 4 {
		t.Fatalf("lit 0 list corrupted by grow: %+v", got)
	}
	if got := st.list(1); len(got) != 1 || got[0].cref != 99 {
		t.Fatalf("lit 1 list corrupted: %+v", got)
	}
}

// TestWatchStoreShrinkReleasesPage verifies the shrink path: a list
// dropping to a quarter of its page moves to a smaller page and the big
// one joins the free chain, ready for reuse.
func TestWatchStoreShrinkReleasesPage(t *testing.T) {
	var st watchStore
	st.init(4)
	st.growLits(2)
	for i := 0; i < 33; i++ { // cap grows 4→8→16→32→64
		st.push(0, watcher{CRef(i), 0})
	}
	if st.ref[0].cap != 64 {
		t.Fatalf("cap = %d, want 64", st.ref[0].cap)
	}
	st.shrink(0, 3) // 3*4 ≤ 64 → shrink
	if st.ref[0].cap >= 64 {
		t.Fatalf("shrink did not reduce the page (cap %d)", st.ref[0].cap)
	}
	if got := st.list(0); len(got) != 3 || got[0].cref != 0 || got[2].cref != 2 {
		t.Fatalf("kept watchers corrupted by shrink: %+v", got)
	}
	// The released class-4 (cap 64) page must be reusable. (The shrink
	// itself already recycled the cap-8 page lit 0 outgrew earlier.)
	k := st.class(64)
	if st.freePages()[k] != 1 {
		t.Fatalf("cap-64 page not on the free chain: %v", st.freePages())
	}
	// Growing lit 1 through cap 64 must reuse every freed page — the
	// chains hold caps 4, 16, 32 and 64, so only the cap-8 step may
	// extend the backing slice.
	before := len(st.data)
	for i := 0; i < 64; i++ {
		st.push(1, watcher{CRef(i), 0})
	}
	if len(st.data) != before+8 {
		t.Fatalf("backing slice grew by %d, want 8: freed pages were not reused", len(st.data)-before)
	}
	if st.freePages()[k] != 0 {
		t.Fatalf("cap-64 page still on the free chain after reuse: %v", st.freePages())
	}
}

// --- solver-level invariant tests -------------------------------------------

// watcherCensus counts, for every live clause in the arena, how many
// watcher entries reference it across all long and binary pages.
func watcherCensus(s *Solver) map[CRef]int {
	counts := make(map[CRef]int)
	for li := range s.watches.ref {
		for _, w := range s.watches.list(li) {
			if !s.db.deleted(w.cref) {
				counts[w.cref]++
			}
		}
		for _, bw := range s.binWatches.list(li) {
			counts[bw.cref]++
		}
	}
	return counts
}

// checkWatchCompleteness asserts the global two-watcher invariant: every
// live attached clause — problem or learnt — is referenced by exactly
// two watcher entries (no watcher lost, none duplicated). Valid between
// propagate calls.
func checkWatchCompleteness(t *testing.T, s *Solver) {
	t.Helper()
	counts := watcherCensus(s)
	live := 0
	for _, c := range s.clauses {
		if s.db.deleted(c) {
			continue
		}
		live++
		if counts[c] != 2 {
			t.Fatalf("problem clause %v has %d watchers, want 2", s.db.lits(c), counts[c])
		}
	}
	for tier := range s.db.roster {
		for _, c := range s.db.roster[tier] {
			if s.db.deleted(c) {
				t.Fatalf("deleted clause %v still on roster tier %d", s.db.lits(c), tier)
			}
			live++
			if counts[c] != 2 {
				t.Fatalf("learnt clause %v (tier %d) has %d watchers, want 2", s.db.lits(c), tier, counts[c])
			}
		}
	}
	// And nothing watches a clause outside the rosters/problem set
	// (dead watchers must reference only tombstoned clauses, which the
	// census already excluded).
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 2*live {
		t.Fatalf("%d watcher entries for %d live clauses (want %d): stray watchers on dead or foreign clauses", total, live, 2*live)
	}
}

// TestWatcherStoreNoLossAcrossSearch runs deletion-heavy searches and
// checks after every Solve slice that the paged store neither lost nor
// duplicated a watcher across the attach / lazy-detach / shrink churn.
func TestWatcherStoreNoLossAcrossSearch(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		f := gen.RandomKSAT(30, 120, 3, seed)
		s := FromFormula(f, Options{MaxLearnts: 5, MaxConflicts: 40})
		for round := 0; round < 50; round++ {
			if s.Solve() != Unknown {
				break
			}
			checkWatchConsistency(t, s)
			checkWatchCompleteness(t, s)
		}
		checkWatchConsistency(t, s)
		checkWatchCompleteness(t, s)
	}
}

// TestWatcherStoreConsistentAfterForcedGC mirrors the clause-arena
// relocation tests for the watcher pages: force compactions mid-search
// and check full watcher consistency and completeness on the relocated
// references.
func TestWatcherStoreConsistentAfterForcedGC(t *testing.T) {
	f := gen.Random3SATHard(150, 9)
	s := FromFormula(f, Options{MaxLearnts: 50, MaxConflicts: 200})
	for round := 0; round < 20; round++ {
		st := s.Solve()
		s.garbageCollect()
		checkWatchConsistency(t, s)
		checkWatchCompleteness(t, s)
		checkReasonConsistency(t, s)
		if st != Unknown {
			return
		}
	}
}

// TestWatcherStorePagesShrinkUnderChurn asserts the store actually
// recycles memory on a deletion-heavy run: after solving, some pages
// must have been freed and reused (the free chains were exercised), and
// the backing slice must stay within a small multiple of the live
// watcher population.
func TestWatcherStorePagesShrinkUnderChurn(t *testing.T) {
	f := gen.Random3SATHard(150, 9)
	s := FromFormula(f, Options{MaxLearnts: 50})
	if st := s.Solve(); st == Unknown {
		t.Fatal("instance must be decided")
	}
	live := 0
	for li := range s.watches.ref {
		live += int(s.watches.ref[li].n)
	}
	slack := len(s.watches.data)
	if live > 0 && slack > 8*live+1024 {
		t.Fatalf("backing slice holds %d slots for %d live watchers: shrink/free-list reuse not working", slack, live)
	}
}

// TestPagedMatchesLegacyStore is the differential guard: the paged
// store and the slice-of-slices baseline must produce bit-identical
// searches (same verdicts, same decision/conflict/propagation counts)
// on a spread of instances, since the propagation algorithm is shared.
func TestPagedMatchesLegacyStore(t *testing.T) {
	instances := []*cnf.Formula{
		gen.Pigeonhole(6),
		gen.Random3SATHard(100, 3),
		gen.RandomKSAT(40, 160, 3, 7),
	}
	for i, f := range instances {
		paged := FromFormula(f, Options{Seed: 11})
		legacy := FromFormula(f, Options{Seed: 11, LegacyWatcherStore: true})
		stP, stL := paged.Solve(), legacy.Solve()
		if stP != stL {
			t.Fatalf("instance %d: paged=%v legacy=%v", i, stP, stL)
		}
		if paged.Stats != legacy.Stats {
			t.Fatalf("instance %d: stats diverge\npaged:  %+v\nlegacy: %+v", i, paged.Stats, legacy.Stats)
		}
	}
}

// TestWatchPageSizeKnob solves the same instance under several page
// sizes: the knob must not change the search, only the paging.
func TestWatchPageSizeKnob(t *testing.T) {
	f := gen.Random3SATHard(100, 3)
	base := FromFormula(f, Options{Seed: 3})
	baseSt := base.Solve()
	for _, ps := range []int{2, 8, 64} {
		s := FromFormula(f, Options{Seed: 3, WatchPageSize: ps})
		if st := s.Solve(); st != baseSt || s.Stats != base.Stats {
			t.Fatalf("WatchPageSize %d changed the search: %v vs %v", ps, s.Stats, base.Stats)
		}
		checkWatchConsistency(t, s)
		checkWatchCompleteness(t, s)
	}
}

// TestMidTierDemotionByTouchedBit checks the reduceDB satellite: mid
// clauses untouched between reductions move to the local tier (header
// tier bits and roster segment both), touched ones stay.
func TestMidTierDemotionByTouchedBit(t *testing.T) {
	s := New(10, Options{})
	for v := cnf.Var(1); v <= 10; v++ {
		s.assigns[v] = cnf.Undef
	}
	mk := func(lbd int, lits ...int) CRef {
		cl := make([]cnf.Lit, len(lits))
		for i, d := range lits {
			cl[i] = cnf.FromDIMACS(d)
		}
		c := s.db.alloc(cl, true, false, lbd)
		s.db.addLearnt(c)
		s.attach(c)
		return c
	}
	touched := mk(4, 1, 2, 3)  // mid tier
	idle := mk(5, 4, 5, 6)     // mid tier
	core := mk(2, 7, 8, 9)     // core tier
	local := mk(9, 1, 5, 9, 2) // local tier
	if s.db.tier(touched) != tierMid || s.db.tier(core) != tierCore || s.db.tier(local) != tierLocal {
		t.Fatal("tier assignment from learn-time LBD is wrong")
	}
	// Fresh clauses are born touched; simulate one full reduction
	// interval in which only `touched` is bumped.
	for _, c := range []CRef{touched, idle, core, local} {
		s.db.clearTouched(c)
	}
	s.bumpClause(touched)
	s.reduceDB()
	if s.db.tier(idle) != tierLocal {
		t.Fatal("idle mid clause was not demoted to the local tier")
	}
	if s.db.tier(touched) != tierMid {
		t.Fatal("touched mid clause must stay in the mid tier")
	}
	if s.db.tier(core) != tierCore {
		t.Fatal("core clause must never be demoted")
	}
	if s.Stats.Demoted != 1 {
		t.Fatalf("Demoted = %d, want 1", s.Stats.Demoted)
	}
	found := false
	for _, c := range s.db.roster[tierLocal] {
		if c == idle {
			found = true
		}
	}
	if !found && !s.db.deleted(idle) {
		t.Fatal("demoted clause on neither the local roster nor deleted")
	}
	// Touched bits are an interval measure: reduceDB must have cleared
	// the survivor's bit.
	if s.db.touched(touched) {
		t.Fatal("reduceDB did not clear the touched bit on a mid survivor")
	}
}

// TestRosterRebuiltByGC forces deletions and a compaction and checks
// the per-tier rosters come back patched, tier-pure and tombstone-free.
func TestRosterRebuiltByGC(t *testing.T) {
	f := gen.Random3SATHard(150, 9)
	s := FromFormula(f, Options{MaxLearnts: 50})
	s.Solve()
	if s.Stats.Deleted == 0 {
		t.Fatal("test needs deletions to be meaningful")
	}
	s.garbageCollect()
	for tier := range s.db.roster {
		for _, c := range s.db.roster[tier] {
			if s.db.deleted(c) {
				t.Fatalf("tombstone on tier-%d roster after GC", tier)
			}
			if !s.db.learnt(c) || s.db.temp(c) {
				t.Fatalf("non-learnt clause on tier-%d roster", tier)
			}
			if s.db.tier(c) != tier {
				t.Fatalf("clause with tier bits %d filed on roster %d", s.db.tier(c), tier)
			}
		}
	}
	checkWatchCompleteness(t, s)
}
