package hwsat

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
)

func TestAgreesWithBruteForce(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		nv := 4 + int(seed%5)
		f := gen.RandomKSAT(nv, nv*4, 3, seed)
		want, _ := cnf.BruteForce(f)
		res := Solve(f, 0)
		if res.Unknown {
			t.Fatalf("seed %d: unexpected Unknown", seed)
		}
		if res.Sat != want {
			t.Fatalf("seed %d: hw=%v brute=%v", seed, res.Sat, want)
		}
		if res.Sat && !res.Model.Satisfies(f) {
			t.Fatalf("seed %d: bad model", seed)
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	res := Solve(gen.Pigeonhole(3), 0)
	if res.Sat || res.Unknown {
		t.Fatal("PHP(3) must be UNSAT")
	}
	if res.Stats.Backtracks == 0 {
		t.Fatal("expected backtracking work")
	}
}

func TestParallelismExceedsOneOnChains(t *testing.T) {
	// Implication-chain-heavy formulas: many implications per wave ...
	// actually a single chain gives 1 impl/wave; a fanout tree gives
	// many. Build x1 → (y1..y30) directly: assigning ¬x1? We want unit
	// implications: clauses (¬x1 ∨ y_i): deciding x1=... the static
	// strategy sets x1=0 first, satisfying all clauses. Force x1 true
	// with a unit clause so the first wave implies x1 and the second
	// wave implies all 30 y's in parallel.
	f := cnf.New(31)
	f.AddDIMACS(1)
	for i := 2; i <= 31; i++ {
		f.AddDIMACS(-1, i)
	}
	res := Solve(f, 0)
	if !res.Sat {
		t.Fatal("expected SAT")
	}
	if p := res.Stats.Parallelism(); p < 5 {
		t.Fatalf("expected high deduction parallelism, got %.2f", p)
	}
	if res.Stats.Cycles >= res.Stats.Implications {
		t.Fatalf("hardware cycles (%d) should be far below implications (%d)",
			res.Stats.Cycles, res.Stats.Implications)
	}
}

func TestCycleBudget(t *testing.T) {
	res := Solve(gen.Pigeonhole(6), 100)
	if !res.Unknown {
		t.Fatal("tiny cycle budget should return Unknown")
	}
	if res.Stats.Cycles < 100 {
		t.Fatalf("cycles = %d, want >= 100", res.Stats.Cycles)
	}
}

func TestEmptyClause(t *testing.T) {
	f := cnf.New(1)
	f.AddClause(cnf.Clause{})
	res := Solve(f, 0)
	if res.Sat || res.Unknown {
		t.Fatal("empty clause must be UNSAT")
	}
}

func TestOppositeUnitsInOneWave(t *testing.T) {
	// (x1)(¬x1): the first wave latches both units → conflict → UNSAT.
	f := cnf.New(1)
	f.AddDIMACS(1)
	f.AddDIMACS(-1)
	res := Solve(f, 0)
	if res.Sat {
		t.Fatal("must be UNSAT")
	}
}

func TestSoftwareBCPStepsAccounting(t *testing.T) {
	f := gen.Random3SATHard(20, 3)
	res := Solve(f, 200000)
	if res.Unknown {
		t.Skip("budget hit; accounting still fine")
	}
	if got := SoftwareBCPSteps(res.Stats); got != res.Stats.Implications+res.Stats.Decisions+res.Stats.Backtracks {
		t.Fatalf("accounting identity broken: %d", got)
	}
}
