// Package hwsat is a cycle-level software model of a reconfigurable-
// hardware SAT accelerator (paper §6; [Abramovici, De Sousa & Saab],
// [Zhong, Ashar, Malik & Martonosi]). We have no FPGA board, so the
// hardware is substituted by a faithful cost model (see DESIGN.md):
//
//   - the formula is "mapped onto hardware" — every clause owns an
//     evaluation unit;
//   - each cycle, ALL clause units evaluate simultaneously against the
//     current assignment, latching every unit implication and any
//     conflict in that one cycle;
//   - propagation to fixpoint therefore costs one cycle per implication
//     WAVE, while a software BCP engine pays one step per implication
//     processed sequentially.
//
// As in the papers, the control strategy is deliberately unsophisticated
// (static decision order, chronological backtracking): the speedups come
// purely from deduction parallelism, which the model exposes as the
// ratio of sequential implication steps to hardware cycles.
package hwsat

import "repro/internal/cnf"

// Stats reports the hardware model's cost accounting.
type Stats struct {
	// Cycles counts hardware clock cycles: one per deduction wave, one
	// per decision and one per backtrack flip.
	Cycles int64
	// Implications counts individual implied assignments — what a
	// sequential software BCP engine would process one at a time.
	Implications int64
	// Waves counts deduction waves (cycles spent in propagation).
	Waves      int64
	Decisions  int64
	Backtracks int64
}

// Parallelism returns implications per propagation cycle — the speedup
// of the parallel deduction engine over sequential BCP on this instance.
func (s Stats) Parallelism() float64 {
	if s.Waves == 0 {
		return 1
	}
	return float64(s.Implications) / float64(s.Waves)
}

// Result is the outcome of a hardware-model run.
type Result struct {
	Sat     bool
	Unknown bool // cycle budget exhausted
	Model   cnf.Assignment
	Stats   Stats
}

// Solve runs the modeled accelerator on f. MaxCycles bounds the run
// (0 = unlimited).
func Solve(f *cnf.Formula, maxCycles int64) Result {
	n := f.NumVars()
	assign := cnf.NewAssignment(n)
	for _, c := range f.Clauses {
		if len(c) == 0 {
			return Result{}
		}
	}

	type trailEntry struct {
		lit      cnf.Lit
		decision bool
		flipped  bool
	}
	var trail []trailEntry
	var st Stats

	budget := func() bool { return maxCycles > 0 && st.Cycles >= maxCycles }

	// propagateWave evaluates every clause in parallel (one cycle),
	// returning (implied literals, conflict).
	propagateWave := func() ([]cnf.Lit, bool) {
		st.Cycles++
		st.Waves++
		var implied []cnf.Lit
		seen := map[cnf.Lit]bool{}
		for _, c := range f.Clauses {
			unit := cnf.LitUndef
			unassigned := 0
			sat := false
			for _, l := range c {
				switch assign.LitValue(l) {
				case cnf.True:
					sat = true
				case cnf.Undef:
					unassigned++
					unit = l
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			switch unassigned {
			case 0:
				return nil, true // conflict latched this cycle
			case 1:
				if seen[unit.Not()] {
					return nil, true // opposite units in one wave
				}
				if !seen[unit] {
					seen[unit] = true
					implied = append(implied, unit)
				}
			}
		}
		return implied, false
	}

	// deduce runs waves to fixpoint; true on conflict.
	deduce := func() (bool, bool) {
		for {
			if budget() {
				return false, true
			}
			implied, conflict := propagateWave()
			if conflict {
				return true, false
			}
			if len(implied) == 0 {
				return false, false
			}
			for _, l := range implied {
				assign.Assign(l)
				trail = append(trail, trailEntry{lit: l})
				st.Implications++
			}
		}
	}

	// backtrack pops to the last unflipped decision and flips it.
	backtrack := func() bool {
		for len(trail) > 0 {
			top := trail[len(trail)-1]
			trail = trail[:len(trail)-1]
			assign.Unassign(top.lit)
			if top.decision && !top.flipped {
				st.Cycles++
				st.Backtracks++
				flip := top.lit.Not()
				assign.Assign(flip)
				trail = append(trail, trailEntry{lit: flip, decision: true, flipped: true})
				return true
			}
		}
		return false
	}

	for {
		conflict, out := deduce()
		if out {
			return Result{Unknown: true, Stats: st}
		}
		if conflict {
			if !backtrack() {
				return Result{Stats: st} // UNSAT
			}
			continue
		}
		// Decide: first unassigned variable, value 0 (static order, as
		// in the hardware papers).
		var pick cnf.Var
		for v := cnf.Var(1); int(v) <= n; v++ {
			if assign.Value(v) == cnf.Undef {
				pick = v
				break
			}
		}
		if pick == cnf.VarUndef {
			return Result{Sat: true, Model: assign.Clone(), Stats: st}
		}
		if budget() {
			return Result{Unknown: true, Stats: st}
		}
		st.Cycles++
		st.Decisions++
		l := cnf.NegLit(pick)
		assign.Assign(l)
		trail = append(trail, trailEntry{lit: l, decision: true})
	}
}

// SoftwareBCPSteps estimates the sequential cost of the same search: it
// replays Solve but charges one step per implication instead of one per
// wave. Returned for convenience of the benchmark harness; equal to
// Stats.Implications + Stats.Decisions + Stats.Backtracks.
func SoftwareBCPSteps(st Stats) int64 {
	return st.Implications + st.Decisions + st.Backtracks
}
