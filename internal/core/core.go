// Package core assembles the paper's complete SAT "package": the
// Preprocess() stage of Figure 2 (simplification, equivalency reasoning,
// recursive learning on CNF) in front of the backtrack-search engine,
// with optional local-search and hardware-model back ends. It is the
// high-level entry point the EDA applications and command-line tools
// use; the individual techniques live in the solver, preprocess,
// reclearn, localsearch and hwsat packages.
package core

import (
	"context"
	"time"

	"repro/internal/cnf"
	"repro/internal/localsearch"
	"repro/internal/portfolio"
	"repro/internal/preprocess"
	"repro/internal/reclearn"
	"repro/internal/solver"
)

// Engine selects the decision procedure.
type Engine int

// Available engines.
const (
	// EngineCDCL is the modern backtrack-search solver (default).
	EngineCDCL Engine = iota
	// EngineLocalSearch is WalkSAT: incomplete, SAT answers only.
	EngineLocalSearch
)

// Options configures the pipeline.
type Options struct {
	Engine Engine
	// Preprocess enables the simplification pipeline (units, pure
	// literals, subsumption, self-subsumption, probing).
	Preprocess bool
	// EquivalencyReasoning enables variable substitution from the
	// binary implication graph (§6); implies Preprocess.
	EquivalencyReasoning bool
	// RecursiveLearning applies recursive learning of the given depth
	// to strengthen the formula before search (0 = off, §4.2).
	RecursiveLearning int
	// Solver carries backtrack-search options.
	Solver solver.Options
	// Proof, when non-nil, streams a DRAT refutation of f from the
	// search stage (the designated proof worker under a portfolio, the
	// solver itself sequentially). The stream certifies the verdict
	// only when Answer.Proved is set: it is withheld whenever a
	// formula-transforming stage runs (Preprocess, EquivalencyReasoning,
	// RecursiveLearning) or a non-CDCL engine is selected, because the
	// proof would refute the transformed formula, not f.
	Proof solver.ProofWriter
	// LocalSearch carries WalkSAT options.
	LocalSearch localsearch.Options
	// PortfolioWorkers, when greater than 1 (or 0 with PortfolioAuto
	// semantics left to the caller), routes the CDCL search stage
	// through a parallel portfolio of that many diversified workers
	// racing on goroutines. 0 or 1 keeps the sequential solver.
	PortfolioWorkers int
	// PortfolioNoShare disables learned-clause exchange between
	// portfolio workers.
	PortfolioNoShare bool
	// PortfolioAdaptive enables the adaptive scheduling supervisor:
	// clearly-losing recipes are killed after PortfolioGrace and their
	// slots respawned with fresh-seeded recipes (portfolio.Options.
	// Adaptive). Ignored unless PortfolioWorkers > 1.
	PortfolioAdaptive bool
	// PortfolioGrace is the minimum worker age before the supervisor
	// may kill it (0 = the portfolio default, 2s).
	PortfolioGrace time.Duration
	// PortfolioPoolQuantile tunes the shared pool's dynamic LBD
	// admission threshold (0 = the portfolio default, 0.5).
	PortfolioPoolQuantile float64
	// PortfolioPrefer names a recipe family a cross-run memory expects
	// to win this instance class (portfolio.Options.PreferRecipe); ""
	// leaves the schedule unbiased.
	PortfolioPrefer string
	// PortfolioMonitor, when non-nil, receives every search-stage
	// solver for live progress sampling (portfolio.Options.Monitor).
	// Setting it routes even a 1-worker search through the portfolio
	// harness — bit-identical to the sequential solver — so the probe
	// works for every CDCL job. The Monitor must be private to this
	// call.
	PortfolioMonitor *portfolio.Monitor
}

// Answer is a pipeline verdict.
type Answer struct {
	Status solver.Status
	// Proved reports that Options.Proof received a complete DRAT
	// refutation of the input formula for this Unsat answer (under a
	// portfolio: the designated proof worker's verdict was the one
	// adopted). When false for an Unsat answer, the caller may replay
	// the solve with a fresh sink to obtain a proof.
	Proved bool
	// Model is a satisfying assignment over the ORIGINAL variables
	// (preprocessing substitutions undone).
	Model cnf.Assignment
	// Preprocessing / learning statistics, when the stages ran.
	Pre   *preprocess.Stats
	Learn *reclearn.Stats
	// SolverStats is populated when the CDCL engine ran (the winning
	// worker's statistics when a portfolio ran).
	SolverStats *solver.Stats
	// Portfolio reports the full parallel run when PortfolioWorkers > 1.
	Portfolio *portfolio.Result
	// Warm is the branching warm-start profile of the solver that
	// decided the instance (the winning worker's under a portfolio):
	// its top variables by VSIDS activity with their saved phases, over
	// the variable space the search actually ran on. A serving layer's
	// recipe memory records it per instance class and replays it into
	// Options.Solver.WarmStart on the next same-class solve. The
	// sequential engine reports it even on Unknown (a budgeted probe
	// harvests it); a portfolio only with a winner. Empty when the
	// search stage never ran.
	Warm []solver.WarmVar
}

// Solve runs the configured pipeline on f.
func Solve(f *cnf.Formula, opts Options) *Answer {
	return SolveContext(context.Background(), f, opts)
}

// SolveContext runs the configured pipeline on f under ctx: cancelling
// the context interrupts the search stage (sequential or portfolio),
// which then reports Unknown. Preprocessing and recursive learning are
// not interruptible; they are cheap relative to search.
func SolveContext(ctx context.Context, f *cnf.Formula, opts Options) *Answer {
	ans := &Answer{}
	work := f

	// A proof must refute the ORIGINAL formula: any stage that rewrites
	// it (or an incomplete engine) voids the stream for certification.
	solverOpts := opts.Solver
	proofOK := opts.Proof != nil && opts.Engine == EngineCDCL &&
		!opts.Preprocess && !opts.EquivalencyReasoning && opts.RecursiveLearning == 0
	if proofOK {
		solverOpts.Proof = opts.Proof
	}

	var pre *preprocess.Result
	if opts.Preprocess || opts.EquivalencyReasoning {
		popts := preprocess.Options{
			PureLiterals:    true,
			Subsumption:     true,
			SelfSubsumption: true,
			FailedLiterals:  true,
			VarElim:         true,
			Equivalences:    opts.EquivalencyReasoning,
		}
		pre = preprocess.Simplify(work, popts)
		ans.Pre = &pre.Stats
		switch pre.Decided {
		case cnf.False:
			ans.Status = solver.Unsat
			return ans
		case cnf.True:
			ans.Status = solver.Sat
			ans.Model = pre.ExtendModel(cnf.NewAssignment(f.NumVars()))
			return ans
		}
		work = pre.Formula
	}

	if opts.RecursiveLearning > 0 {
		strengthened, res := reclearn.Strengthen(work, reclearn.Options{MaxDepth: opts.RecursiveLearning})
		ans.Learn = &res.Stats
		if res.Unsat {
			ans.Status = solver.Unsat
			return ans
		}
		work = strengthened
	}

	switch opts.Engine {
	case EngineLocalSearch:
		lsOpts := opts.LocalSearch
		userStop := lsOpts.Stop
		lsOpts.Stop = func() bool {
			return ctx.Err() != nil || (userStop != nil && userStop())
		}
		res := localsearch.Solve(work, lsOpts)
		if res.Sat {
			ans.Status = solver.Sat
			ans.Model = finishModel(f, pre, res.Model)
		} else {
			ans.Status = solver.Unknown // incomplete engine
		}
		return ans

	default:
		if opts.PortfolioWorkers > 1 || opts.PortfolioMonitor != nil {
			workers := opts.PortfolioWorkers
			if workers < 1 {
				workers = 1 // monitored sequential solve: 1-worker portfolio
			}
			res := portfolio.Solve(ctx, work, portfolio.Options{
				Workers:      workers,
				NoShare:      opts.PortfolioNoShare,
				Adaptive:     opts.PortfolioAdaptive,
				Grace:        opts.PortfolioGrace,
				PoolQuantile: opts.PortfolioPoolQuantile,
				PreferRecipe: opts.PortfolioPrefer,
				Monitor:      opts.PortfolioMonitor,
				Base:         solverOpts,
			})
			ans.Portfolio = res
			ans.Status = res.Status
			ans.Proved = proofOK && res.Proved
			ans.Warm = res.Warm
			if res.Winner >= 0 {
				stats := res.Workers[res.Winner].Stats
				ans.SolverStats = &stats
			}
			if res.Status == solver.Sat {
				ans.Model = finishModel(f, pre, res.Model)
			}
			return ans
		}
		s := solver.FromFormula(work, solverOpts)
		stopWatch := context.AfterFunc(ctx, s.Interrupt)
		st := s.Solve()
		stopWatch()
		stats := s.Stats
		ans.SolverStats = &stats
		ans.Status = st
		ans.Proved = proofOK && st == solver.Unsat
		// Captured even on Unknown: a budget-bounded probe solve's whole
		// point is harvesting the profile it accumulated before the
		// budget ran out.
		ans.Warm = s.WarmProfile(16)
		if st == solver.Sat {
			ans.Model = finishModel(f, pre, s.Model())
		}
		return ans
	}
}

// finishModel lifts a model of the (possibly simplified) formula back to
// the original variable space.
func finishModel(orig *cnf.Formula, pre *preprocess.Result, m cnf.Assignment) cnf.Assignment {
	out := cnf.NewAssignment(orig.NumVars())
	for v := 1; v < len(out) && v < len(m); v++ {
		out[v] = m[v]
	}
	if pre != nil {
		out = pre.ExtendModel(out)
	} else {
		for v := 1; v < len(out); v++ {
			if out[v] == cnf.Undef {
				out[v] = cnf.False
			}
		}
	}
	return out
}
