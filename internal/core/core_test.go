package core

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/solver"
)

func pipelines() map[string]Options {
	return map[string]Options{
		"plain":      {},
		"preprocess": {Preprocess: true},
		"equiv":      {EquivalencyReasoning: true},
		"reclearn1":  {RecursiveLearning: 1},
		"reclearn2":  {RecursiveLearning: 2},
		"full":       {EquivalencyReasoning: true, RecursiveLearning: 1},
	}
}

func TestPipelinesAgreeWithBruteForce(t *testing.T) {
	for name, opts := range pipelines() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 40; seed++ {
				nv := 5 + int(seed%5)
				f := gen.RandomKSAT(nv, nv*4, 3, seed)
				want, _ := cnf.BruteForce(f)
				ans := Solve(f, opts)
				if (ans.Status == solver.Sat) != want {
					t.Fatalf("seed %d: %v vs brute %v", seed, ans.Status, want)
				}
				if ans.Status == solver.Sat && !ans.Model.Satisfies(f) {
					t.Fatalf("seed %d: model does not satisfy original formula", seed)
				}
			}
		})
	}
}

func TestEquivalencyPipelineOnLadder(t *testing.T) {
	f := gen.EquivalenceLadder(40, 30, 3)
	ans := Solve(f, Options{EquivalencyReasoning: true})
	if ans.Status != solver.Sat {
		t.Fatalf("ladder is SAT, got %v", ans.Status)
	}
	// Failed-literal probing may collapse the single equivalence class
	// to units before substitution runs; either way the preprocessor
	// must have dissolved the ladder.
	if ans.Pre == nil || (ans.Pre.VarsSubstituted == 0 && ans.Pre.UnitsFixed == 0) {
		t.Fatal("equivalency pipeline did not simplify the ladder")
	}
	if !ans.Model.Satisfies(f) {
		t.Fatal("model broken after substitution undo")
	}
}

func TestLocalSearchEngine(t *testing.T) {
	f := gen.RandomKSAT(15, 40, 3, 2) // easy region
	want, _ := cnf.BruteForce(cnfTruncate(f))
	_ = want
	ans := Solve(f, Options{Engine: EngineLocalSearch})
	if ans.Status == solver.Sat && !ans.Model.Satisfies(f) {
		t.Fatal("local search returned bad model")
	}
	// On UNSAT input local search must never answer Unsat.
	u := gen.Pigeonhole(3)
	ans = Solve(u, Options{Engine: EngineLocalSearch})
	if ans.Status == solver.Unsat {
		t.Fatal("incomplete engine cannot prove UNSAT")
	}
}

// cnfTruncate keeps formulas under the brute-force variable cap.
func cnfTruncate(f *cnf.Formula) *cnf.Formula {
	if f.NumVars() <= 25 {
		return f
	}
	return cnf.New(1)
}

func TestDecidedByPreprocessing(t *testing.T) {
	// Pure units: decided without search.
	f := cnf.New(3)
	f.AddDIMACS(1)
	f.AddDIMACS(-1, 2)
	f.AddDIMACS(-2, 3)
	ans := Solve(f, Options{Preprocess: true})
	if ans.Status != solver.Sat || ans.SolverStats != nil {
		t.Fatalf("should be decided by preprocessing alone: %+v", ans)
	}
	if !ans.Model.Satisfies(f) {
		t.Fatal("model wrong")
	}
	// Contradiction decided by preprocessing.
	g := cnf.New(1)
	g.AddDIMACS(1)
	g.AddDIMACS(-1)
	if Solve(g, Options{Preprocess: true}).Status != solver.Unsat {
		t.Fatal("should be Unsat via preprocessing")
	}
}

func TestRecursiveLearningStats(t *testing.T) {
	f := gen.RandomKSAT(10, 35, 3, 4)
	ans := Solve(f, Options{RecursiveLearning: 2})
	if ans.Learn == nil || ans.Learn.Splits == 0 {
		t.Fatal("recursive learning did not run")
	}
}

func TestXorChainThroughPipelines(t *testing.T) {
	sat := gen.XorChain(14, false, 9)
	unsat := gen.XorChain(14, true, 9)
	for name, opts := range pipelines() {
		if opts.Engine == EngineLocalSearch {
			continue
		}
		a := Solve(sat, opts)
		if a.Status != solver.Sat {
			t.Fatalf("%s: even cycle must be SAT", name)
		}
		if !a.Model.Satisfies(sat) {
			t.Fatalf("%s: bad model", name)
		}
		if Solve(unsat, opts).Status != solver.Unsat {
			t.Fatalf("%s: odd cycle must be UNSAT", name)
		}
	}
}
