package atpg

import (
	"context"
	"testing"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/session"
)

// TestSessionATPGParity is the acceptance check for the session-backed
// engine: the whole fault list run through one resident session must
// produce per-fault verdicts identical to the one-shot path (and the
// in-process incremental path) — same detected/redundant split, and
// every generated pattern actually detects its fault.
func TestSessionATPGParity(t *testing.T) {
	circuits := map[string]*circuit.Circuit{
		"c17":  circuit.C17(),
		"dag":  circuit.RandomDAG(8, 40, 3, 7),
		"dag2": circuit.RandomDAG(6, 25, 2, 11),
	}
	for name, c := range circuits {
		t.Run(name, func(t *testing.T) {
			faults := Collapse(c, FaultUniverse(c))
			oneShot := GenerateTestsFor(c, faults, Options{})
			inProc := GenerateTestsFor(c, faults, Options{Incremental: true})

			m := session.NewManager(session.Config{})
			defer m.Close()
			viaSession, err := GenerateTestsSessionFor(context.Background(), m, c, faults, Options{})
			if err != nil {
				t.Fatal(err)
			}

			if viaSession.Detected != oneShot.Detected || viaSession.Redundant != oneShot.Redundant || viaSession.Aborted != oneShot.Aborted {
				t.Fatalf("session %d/%d/%d vs one-shot %d/%d/%d (detected/redundant/aborted)",
					viaSession.Detected, viaSession.Redundant, viaSession.Aborted,
					oneShot.Detected, oneShot.Redundant, oneShot.Aborted)
			}
			if viaSession.Detected != inProc.Detected || viaSession.Redundant != inProc.Redundant {
				t.Fatalf("session %d/%d vs incremental %d/%d (detected/redundant)",
					viaSession.Detected, viaSession.Redundant, inProc.Detected, inProc.Redundant)
			}
			// Per-fault verdict agreement, not just aggregate counts.
			verdict := make(map[string]Status, len(oneShot.Results))
			for _, fr := range oneShot.Results {
				verdict[fr.Fault.String()] = fr.Status
			}
			for _, fr := range viaSession.Results {
				if want, ok := verdict[fr.Fault.String()]; ok && want != fr.Status {
					t.Errorf("fault %s: session %s, one-shot %s", fr.Fault, fr.Status, want)
				}
			}
			// Patterns must really detect their faults (64-lane fault
			// simulation with the X bits zero-filled is sound here because
			// SAT patterns from the plain encoding are fully specified).
			for _, fr := range viaSession.Results {
				if fr.Status != Detected || fr.Pattern == nil {
					continue
				}
				words := make([]uint64, len(fr.Pattern))
				for i, v := range fr.Pattern {
					if v == cnf.True {
						words[i] = ^uint64(0)
					}
				}
				if Detects(c, fr.Fault, words) == 0 {
					t.Errorf("fault %s: session pattern does not detect it", fr.Fault)
				}
			}
			if viaSession.Conflicts < 0 || viaSession.SATCalls == 0 {
				t.Fatalf("bogus session report: %+v", viaSession)
			}
			// The engine's session was evicted on return.
			if st := m.Stats(); st.Sessions != 0 {
				t.Fatalf("session leaked: %d still registered", st.Sessions)
			}
		})
	}
}

// TestSessionATPGAddedClausesPersist checks the retire mechanism: after
// a full run, re-running the same fault list in the SAME manager (new
// session) still yields the same verdicts — i.e. one run's retirement
// units never leak into another session.
func TestSessionATPGIsolation(t *testing.T) {
	c := circuit.C17()
	faults := Collapse(c, FaultUniverse(c))
	m := session.NewManager(session.Config{})
	defer m.Close()

	first, err := GenerateTestsSessionFor(context.Background(), m, c, faults, Options{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := GenerateTestsSessionFor(context.Background(), m, c, faults, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Detected != second.Detected || first.Redundant != second.Redundant {
		t.Fatalf("run 1 %d/%d vs run 2 %d/%d", first.Detected, first.Redundant, second.Detected, second.Redundant)
	}
}

// TestFaultsContextCancel: a cancelled context aborts the remaining
// faults without SAT calls, for both engines and the session path.
func TestFaultsContextCancel(t *testing.T) {
	c := circuit.RandomDAG(8, 40, 3, 7)
	faults := Collapse(c, FaultUniverse(c))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, opts := range []Options{{}, {Incremental: true}} {
		rep := TestFaultsContext(ctx, c, faults, opts)
		if rep.Aborted != rep.Total || rep.Detected != 0 {
			t.Fatalf("opts %+v: cancelled run aborted %d of %d, detected %d", opts, rep.Aborted, rep.Total, rep.Detected)
		}
		if len(rep.Results) != rep.Total {
			t.Fatalf("cancelled run lost results: %d of %d", len(rep.Results), rep.Total)
		}
	}

	m := session.NewManager(session.Config{})
	defer m.Close()
	rep, err := GenerateTestsSessionFor(ctx, m, c, faults, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aborted != rep.Total {
		t.Fatalf("cancelled session run aborted %d of %d", rep.Aborted, rep.Total)
	}
}
