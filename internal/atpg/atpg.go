package atpg

import (
	"context"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/csat"
	"repro/internal/solver"
)

// Status classifies the outcome for one fault.
type Status int

// Fault outcomes.
const (
	// Aborted means the effort budget was exhausted.
	Aborted Status = iota
	// Detected means a test pattern was generated (or fault simulation
	// caught the fault with an earlier pattern).
	Detected
	// Redundant means the SAT instance is unsatisfiable: no input can
	// distinguish the faulty circuit, so the fault is untestable and the
	// corresponding logic is redundant (§3, [RID-GRASP]).
	Redundant
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Detected:
		return "detected"
	case Redundant:
		return "redundant"
	}
	return "aborted"
}

// Options configures test generation.
type Options struct {
	// Structural enables the §5 circuit-SAT layer: decisions by
	// backtracing and early termination on an empty justification
	// frontier, producing partially-specified patterns.
	Structural bool
	// Incremental shares a single solver across all faults using
	// activation literals (§6 iterative/incremental SAT).
	Incremental bool
	// FaultSim enables parallel-pattern fault simulation with fault
	// dropping: each generated test is simulated against the remaining
	// fault list and detected faults are dropped without SAT calls.
	FaultSim bool
	// NoCollapse disables fault collapsing.
	NoCollapse bool
	// Compact applies reverse-order static test compaction to the final
	// test set (coverage-preserving).
	Compact bool
	// MaxConflicts bounds the per-fault SAT effort (0 = 20000).
	MaxConflicts int64
	// Solver carries base solver options.
	Solver solver.Options
	// Seed drives the random completion of partial patterns.
	Seed int64
}

// FaultResult is the per-fault outcome.
type FaultResult struct {
	Fault   Fault
	Status  Status
	Pattern []cnf.LBool // primary-input pattern (nil unless SAT-generated)
	BySim   bool        // detected by fault simulation, not SAT

	satStats *solver.Stats
}

// Report aggregates a run over a fault list.
type Report struct {
	Total, Detected, Redundant, Aborted int
	BySimulation                        int // detected via fault dropping
	SATCalls                            int
	Tests                               [][]cnf.LBool // generated patterns
	UncompactedTests                    int           // test count before compaction (Compact only)
	Results                             []FaultResult
	SpecifiedBits                       int // sum over patterns of non-X inputs
	PatternBits                         int // sum over patterns of total inputs
	Conflicts                           int64
	Decisions                           int64
}

// Coverage returns detected / (total - redundant), the standard fault
// coverage metric over testable faults.
func (r *Report) Coverage() float64 {
	testable := r.Total - r.Redundant
	if testable == 0 {
		return 1
	}
	return float64(r.Detected) / float64(testable)
}

// GenerateTests runs ATPG over the full (collapsed) fault universe.
func GenerateTests(c *circuit.Circuit, opts Options) *Report {
	faults := FaultUniverse(c)
	if !opts.NoCollapse {
		faults = Collapse(c, faults)
	}
	return GenerateTestsFor(c, faults, opts)
}

// GenerateTestsFor runs ATPG over an explicit fault list.
func GenerateTestsFor(c *circuit.Circuit, faults []Fault, opts Options) *Report {
	return TestFaultsContext(context.Background(), c, faults, opts)
}

// TestFaultsContext is GenerateTestsFor under a context, mirroring
// cec.CheckContext / bmc.CheckContext: cancelling ctx interrupts the
// running SAT query cooperatively and every remaining fault is
// reported Aborted without further SAT calls.
func TestFaultsContext(ctx context.Context, c *circuit.Circuit, faults []Fault, opts Options) *Report {
	if opts.MaxConflicts == 0 {
		opts.MaxConflicts = 20000
	}
	var eng faultEngine
	if opts.Incremental {
		eng = newIncremental(c, opts)
	} else {
		eng = oneShotEngine{c: c, opts: opts}
	}
	return runFaults(ctx, c, faults, opts, eng)
}

// faultEngine decides one fault. Implementations: a fresh solver per
// fault (oneShotEngine), one shared in-process solver (incrementalATPG),
// and one resident session (sessionATPG).
type faultEngine interface {
	testFault(ctx context.Context, flt Fault) FaultResult
}

// oneShotEngine builds a miter and a fresh solver for every fault.
type oneShotEngine struct {
	c    *circuit.Circuit
	opts Options
}

func (e oneShotEngine) testFault(ctx context.Context, flt Fault) FaultResult {
	return testFaultContext(ctx, e.c, flt, e.opts)
}

// runFaults is the fault loop shared by every engine: fault dropping by
// simulation, per-fault stats aggregation, optional final compaction.
// opts.MaxConflicts must already be resolved by the caller.
func runFaults(ctx context.Context, c *circuit.Circuit, faults []Fault, opts Options, eng faultEngine) *Report {
	rep := &Report{Total: len(faults)}
	rng := rand.New(rand.NewSource(opts.Seed))

	dropped := make([]bool, len(faults))
	for i, flt := range faults {
		if dropped[i] {
			continue
		}
		if ctx.Err() != nil {
			// Cancelled: everything still pending is an abort, with no
			// SAT effort spent on it.
			rep.Aborted++
			rep.Results = append(rep.Results, FaultResult{Fault: flt, Status: Aborted})
			continue
		}
		fr := eng.testFault(ctx, flt)
		if s := fr.satStats; s != nil {
			rep.Conflicts += s.Conflicts
			rep.Decisions += s.Decisions
		}
		rep.SATCalls++
		rep.Results = append(rep.Results, fr)
		switch fr.Status {
		case Detected:
			rep.Detected++
			rep.Tests = append(rep.Tests, fr.Pattern)
			rep.SpecifiedBits += csat.CountSpecified(fr.Pattern)
			rep.PatternBits += len(fr.Pattern)
			if opts.FaultSim {
				rep.dropWithPattern(c, fr.Pattern, faults, dropped, i+1, rng)
			}
		case Redundant:
			rep.Redundant++
		default:
			rep.Aborted++
		}
	}
	if opts.Compact && len(rep.Tests) > 0 {
		rep.UncompactedTests = len(rep.Tests)
		rep.Tests = CompactTests(c, faults, rep.Tests, opts.Seed)
	}
	return rep
}

// dropWithPattern completes the pattern (X bits randomized across 64
// lanes) and fault-simulates the remaining faults, dropping detections.
func (r *Report) dropWithPattern(c *circuit.Circuit, pat []cnf.LBool, faults []Fault, dropped []bool, from int, rng *rand.Rand) {
	words := make([]uint64, len(pat))
	for i, v := range pat {
		switch v {
		case cnf.True:
			words[i] = ^uint64(0)
		case cnf.False:
			words[i] = 0
		default:
			words[i] = rng.Uint64() // 64 random completions of the X
		}
	}
	for j := from; j < len(faults); j++ {
		if dropped[j] {
			continue
		}
		if Detects(c, faults[j], words) != 0 {
			dropped[j] = true
			r.Detected++
			r.BySimulation++
			r.Results = append(r.Results, FaultResult{Fault: faults[j], Status: Detected, BySim: true})
		}
	}
}

// TestFault generates a test for one fault with a fresh solver.
func TestFault(c *circuit.Circuit, flt Fault, opts Options) FaultResult {
	return testFaultContext(context.Background(), c, flt, opts)
}

// testFaultContext is TestFault with cooperative interruption: a
// cancelled ctx stops the solve and the fault reports Aborted.
func testFaultContext(ctx context.Context, c *circuit.Circuit, flt Fault, opts Options) FaultResult {
	if opts.MaxConflicts == 0 {
		opts.MaxConflicts = 20000
	}
	fr := FaultResult{Fault: flt}
	m := BuildMiter(c, flt)
	if !m.Detectable {
		fr.Status = Redundant
		return fr
	}
	f, enc := circuit.EncodeProperty(m.C, m.Diff, true)
	sopts := opts.Solver
	sopts.MaxConflicts = opts.MaxConflicts
	s := solver.FromFormula(f, sopts)
	stopWatch := context.AfterFunc(ctx, s.Interrupt)
	defer stopWatch()
	var layer *csat.Layer
	if opts.Structural {
		layer = csat.Attach(m.C, enc, s, csat.Options{Backtrace: true})
	}
	switch s.Solve() {
	case solver.Sat:
		fr.Status = Detected
		model := s.Model()
		pat := make([]cnf.LBool, len(c.Inputs))
		for i, id := range c.Inputs {
			pat[i] = model.Value(enc.VarOf[m.GoodOf[id]])
		}
		_ = layer
		fr.Pattern = pat
	case solver.Unsat:
		fr.Status = Redundant
	default:
		fr.Status = Aborted
	}
	st := s.Stats
	fr.satStats = &st
	return fr
}
