package atpg

import (
	"context"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/session"
	"repro/internal/solver"
)

// sessionATPG is the incremental fault loop running against a resident
// solve session instead of an in-process solver: the good circuit's
// CNF lives in the session, each fault ships its guarded cone clauses
// as the query's Add set and solves under the activation assumption.
// The previous fault's retirement unit ¬a_{i-1} is folded into the next
// query's Add set, so the whole loop is one query per fault.
//
// Verdicts are identical to incrementalATPG by construction: the same
// coneQuery encoding feeds both engines.
type sessionATPG struct {
	c    *circuit.Circuit
	enc  *circuit.Encoding
	m    *session.Manager
	ss   *session.Session
	opts Options
	// numVars tracks the session solver's variable space. Every cone
	// query allocates fresh variables above it and mentions all of them,
	// so the resident solver's growth stays in lockstep.
	numVars int
	// retire is the pending ¬act unit from the previous fault.
	retire []cnf.Clause
}

// newSessionATPG opens a session on m holding c's good-circuit CNF.
// The caller owns the returned engine's session via Close.
func newSessionATPG(m *session.Manager, c *circuit.Circuit, opts Options) (*sessionATPG, error) {
	enc := circuit.Encode(c)
	ss, err := m.Open(enc.F)
	if err != nil {
		return nil, fmt.Errorf("atpg: open session: %w", err)
	}
	return &sessionATPG{c: c, enc: enc, m: m, ss: ss, opts: opts, numVars: enc.F.NumVars()}, nil
}

// Close evicts the engine's session from its manager.
func (sa *sessionATPG) Close() { sa.m.Delete(sa.ss.ID) }

func (sa *sessionATPG) testFault(ctx context.Context, flt Fault) FaultResult {
	fr := FaultResult{Fault: flt}
	q := buildConeQuery(sa.c, sa.enc, flt, sa.numVars)
	if q == nil {
		fr.Status = Redundant
		return fr
	}
	req := session.Request{
		Assume:       []cnf.Lit{cnf.PosLit(q.act)},
		Add:          append(sa.retire, q.clauses...),
		MaxConflicts: sa.opts.MaxConflicts,
	}
	query, err := sa.ss.Submit(ctx, req)
	if err != nil {
		fr.Status = Aborted
		return fr
	}
	res, err := query.Wait(ctx)
	if err != nil {
		fr.Status = Aborted
		return fr
	}
	sa.numVars = q.numVars
	sa.retire = []cnf.Clause{{cnf.NegLit(q.act)}}
	switch res.Status {
	case solver.Sat:
		fr.Status = Detected
		fr.Pattern = extractPattern(sa.c, sa.enc, res.Model)
	case solver.Unsat:
		fr.Status = Redundant
	default:
		fr.Status = Aborted
	}
	fr.satStats = &solver.Stats{Conflicts: res.Conflicts, Decisions: res.Decisions}
	if fr.Status == Detected && fr.Pattern == nil {
		fr.Status = Aborted
	}
	return fr
}

// GenerateTestsSession runs ATPG over the full (collapsed) fault
// universe through one resident session on m — the session-service
// flavor of GenerateTests with Options.Incremental.
func GenerateTestsSession(ctx context.Context, m *session.Manager, c *circuit.Circuit, opts Options) (*Report, error) {
	faults := FaultUniverse(c)
	if !opts.NoCollapse {
		faults = Collapse(c, faults)
	}
	return GenerateTestsSessionFor(ctx, m, c, faults, opts)
}

// GenerateTestsSessionFor runs the fault list through one session on m.
// The session is opened for the run and evicted before returning.
func GenerateTestsSessionFor(ctx context.Context, m *session.Manager, c *circuit.Circuit, faults []Fault, opts Options) (*Report, error) {
	if opts.MaxConflicts == 0 {
		opts.MaxConflicts = 20000
	}
	eng, err := newSessionATPG(m, c, opts)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	return runFaults(ctx, c, faults, opts, eng), nil
}
