package atpg

import (
	"testing"

	"repro/internal/bmc"
	"repro/internal/circuit"
)

func TestSequentialFaultOnCounter(t *testing.T) {
	// 3-bit counter, bad = (q == 2). A stuck-at-0 on d1 (next-state bit
	// 1) keeps the faulty machine from ever reaching 2, so good and
	// faulty "bad" outputs differ exactly when the good machine hits 2.
	q := bmc.NewCounter(3, 2)
	d1 := q.Comb.NodeByName("d1")
	if d1 == circuit.NoNode {
		t.Fatal("d1 not found")
	}
	flt := Fault{Node: d1, Pin: -1, StuckAt: false}
	res := TestSequentialFault(q, flt, SeqOptions{MaxDepth: 10})
	if res.Status != Detected {
		t.Fatalf("expected detection, got %+v", res)
	}
	if res.Depth != 2 {
		t.Fatalf("depth %d, want 2 (good machine reaches 2 at frame 2)", res.Depth)
	}
	if !VerifySequence(q, flt, res.Sequence) {
		t.Fatal("sequence fails replay verification")
	}
}

func TestSequentialFaultOnRing(t *testing.T) {
	// One-hot ring: a stuck-at-0 on the d0 buffer kills the circulating
	// token, making the faulty machine violate one-hotness (bad=1) while
	// the good machine never does.
	q := bmc.NewRingOneHot(4)
	d0 := q.Comb.NodeByName("d0")
	flt := Fault{Node: d0, Pin: -1, StuckAt: false}
	res := TestSequentialFault(q, flt, SeqOptions{MaxDepth: 10})
	if res.Status != Detected {
		t.Fatalf("expected detection: %+v", res)
	}
	if !VerifySequence(q, flt, res.Sequence) {
		t.Fatal("sequence fails replay")
	}
}

func TestSequentialUndetectableWithinBound(t *testing.T) {
	// Counter with target 7 needs 7 frames; within 3 frames a fault on
	// the bad-comparator is invisible (bad stays 0 for both machines).
	q := bmc.NewCounter(3, 7)
	bad := q.Comb.NodeByName("bad")
	flt := Fault{Node: bad, Pin: -1, StuckAt: false}
	res := TestSequentialFault(q, flt, SeqOptions{MaxDepth: 3})
	if res.Status == Detected {
		t.Fatalf("bad s-a-0 cannot be seen before frame 7: %+v", res)
	}
	if !res.Undetectable {
		t.Fatal("should be flagged bounded-undetectable")
	}
	// With a big enough bound it IS detected (good machine raises bad at
	// frame 7, faulty never does).
	res = TestSequentialFault(q, flt, SeqOptions{MaxDepth: 10})
	if res.Status != Detected || res.Depth != 7 {
		t.Fatalf("expected detection at depth 7: %+v", res)
	}
	if !VerifySequence(q, flt, res.Sequence) {
		t.Fatal("sequence fails replay")
	}
}

func TestSequentialFaultWithFreeInputs(t *testing.T) {
	// Loadable counter: detecting a fault on the load-mux requires
	// driving the free inputs correctly; the sequence must exist and
	// replay.
	q := bmc.NewLoadableCounter(3, 5)
	sel := q.Comb.NodeByName("seldat1")
	if sel == circuit.NoNode {
		t.Fatal("seldat1 missing")
	}
	flt := Fault{Node: sel, Pin: -1, StuckAt: false}
	res := TestSequentialFault(q, flt, SeqOptions{MaxDepth: 8})
	if res.Status != Detected {
		t.Fatalf("expected detection: %+v", res)
	}
	if len(res.Sequence) != res.Depth+1 {
		t.Fatalf("sequence length %d vs depth %d", len(res.Sequence), res.Depth)
	}
	if !VerifySequence(q, flt, res.Sequence) {
		t.Fatal("sequence fails replay")
	}
}

func TestSequentialBranchFault(t *testing.T) {
	// Branch fault on one input of the ring's bad-comparator OR gate.
	q := bmc.NewRingOneHot(3)
	badGate := q.Comb.NodeByName("bad")
	flt := Fault{Node: badGate, Pin: 0, StuckAt: true}
	res := TestSequentialFault(q, flt, SeqOptions{MaxDepth: 6})
	// bad = OR(none, anypair); pin0 (none) s-a-1 forces faulty bad=1
	// always, good bad=0 always → detected at frame 0.
	if res.Status != Detected || res.Depth != 0 {
		t.Fatalf("expected immediate detection: %+v", res)
	}
	if !VerifySequence(q, flt, res.Sequence) {
		t.Fatal("replay failed")
	}
}
