package atpg

import (
	"repro/internal/bmc"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/solver"
)

// Sequential ATPG by time-frame expansion (paper §3's testing
// applications applied to state machines): a single stuck-at fault in a
// sequential circuit needs a test SEQUENCE — the fault is present in
// every time frame, both machines start from the same reset state, and
// detection means some primary output differs at some frame. Each
// candidate depth unrolls one more frame of a good/faulty machine pair
// sharing the free inputs, with the query posed incrementally to one
// solver (§6), exactly like BMC.

// SeqOptions configures sequential test generation.
type SeqOptions struct {
	// MaxDepth bounds the unrolling (0 = 20).
	MaxDepth int
	// MaxConflicts bounds each depth's SAT query (0 = unlimited).
	MaxConflicts int64
	// Solver carries base solver options.
	Solver solver.Options
}

// SeqResult reports sequential test generation for one fault.
type SeqResult struct {
	Status Status // Detected, or Aborted when undecided
	// Undetectable is true when every depth up to the bound was proven
	// UNSAT; unlike the combinational case this does NOT prove
	// redundancy (a longer sequence may exist), only bounded
	// untestability.
	Undetectable bool
	// Depth is the detecting frame (when Detected).
	Depth int
	// Sequence holds the free-input vectors, one per frame 0..Depth.
	Sequence [][]bool
	SATCalls int
}

// TestSequentialFault searches for a test sequence detecting the fault.
func TestSequentialFault(q *bmc.Sequential, flt Fault, opts SeqOptions) SeqResult {
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 20
	}
	res := SeqResult{Status: Aborted}
	sopts := opts.Solver
	sopts.MaxConflicts = opts.MaxConflicts
	s := solver.New(0, sopts)

	free := q.FreeInputs()
	freeIdx := make(map[circuit.NodeID]bool, len(free))
	for _, in := range free {
		freeIdx[in] = true
	}

	type frame struct {
		good, bad []cnf.Var // node vars per copy
	}
	var frames []frame

	addCopy := func(faulty bool, shared map[circuit.NodeID]cnf.Var) []cnf.Var {
		scratch := cnf.New(s.NumVars())
		vars := make([]cnf.Var, len(q.Comb.Nodes))
		// Allocate node variables (reusing shared input vars).
		for i := range q.Comb.Nodes {
			id := circuit.NodeID(i)
			if v, ok := shared[id]; ok {
				vars[i] = v
				continue
			}
			vars[i] = scratch.NewVar()
		}
		for i := range q.Comb.Nodes {
			n := &q.Comb.Nodes[i]
			id := circuit.NodeID(i)
			if n.Type == circuit.Input {
				continue
			}
			if faulty && flt.Pin < 0 && id == flt.Node {
				// Stem fault: the node is stuck.
				scratch.Add(cnf.NewLit(vars[i], !flt.StuckAt))
				continue
			}
			ins := make([]cnf.Var, len(n.Fanin))
			for j, fn := range n.Fanin {
				ins[j] = vars[fn]
			}
			if faulty && flt.Pin >= 0 && id == flt.Node {
				pin := scratch.NewVar()
				scratch.Add(cnf.NewLit(pin, !flt.StuckAt))
				ins[flt.Pin] = pin
			}
			circuit.AppendGateCNF(scratch, n.Type, vars[i], ins)
		}
		for s.NumVars() < scratch.NumVars() {
			s.NewVar()
		}
		for _, cl := range scratch.Clauses {
			s.AddClause(cl)
		}
		return vars
	}

	tieLatches := func(cur, prev []cnf.Var) {
		for _, l := range q.Latches {
			qv, d := cur[l.Output], prev[l.Input]
			s.AddClause(cnf.Clause{cnf.NegLit(qv), cnf.PosLit(d)})
			s.AddClause(cnf.Clause{cnf.PosLit(qv), cnf.NegLit(d)})
		}
	}
	initLatches := func(vars []cnf.Var) {
		for i, l := range q.Latches {
			switch q.Init[i] {
			case cnf.True:
				s.AddClause(cnf.Clause{cnf.PosLit(vars[l.Output])})
			case cnf.False:
				s.AddClause(cnf.Clause{cnf.NegLit(vars[l.Output])})
			}
		}
	}

	for t := 0; t <= opts.MaxDepth; t++ {
		// Free inputs of this frame are shared between the copies.
		shared := make(map[circuit.NodeID]cnf.Var, len(free))
		for _, in := range free {
			shared[in] = s.NewVar()
		}
		good := addCopy(false, shared)
		bad := addCopy(true, shared)
		if t == 0 {
			initLatches(good)
			initLatches(bad)
		} else {
			tieLatches(good, frames[t-1].good)
			tieLatches(bad, frames[t-1].bad)
		}
		frames = append(frames, frame{good: good, bad: bad})

		// Detection objective at frame t: some primary output differs.
		scratch := cnf.New(s.NumVars())
		diff := make(cnf.Clause, 0, len(q.Comb.Outputs))
		for _, o := range q.Comb.Outputs {
			d := scratch.NewVar()
			circuit.AppendGateCNF(scratch, circuit.Xor, d, []cnf.Var{good[o], bad[o]})
			diff = append(diff, cnf.PosLit(d))
		}
		act := scratch.NewVar()
		for s.NumVars() < scratch.NumVars() {
			s.NewVar()
		}
		for _, cl := range scratch.Clauses {
			s.AddClause(cl)
		}
		s.AddClause(append(diff, cnf.NegLit(act)))

		res.SATCalls++
		switch s.Solve(cnf.PosLit(act)) {
		case solver.Sat:
			res.Status = Detected
			res.Depth = t
			m := s.Model()
			for ft := 0; ft <= t; ft++ {
				vec := make([]bool, len(free))
				for i, in := range free {
					// Input vars were allocated per frame in order; they
					// live in frames[ft].good (shared with bad).
					vec[i] = m.Value(frames[ft].good[in]) == cnf.True
				}
				res.Sequence = append(res.Sequence, vec)
			}
			return res
		case solver.Unsat:
			s.AddClause(cnf.Clause{cnf.NegLit(act)}) // retire this depth
		default:
			return res // budget exhausted
		}
	}
	res.Undetectable = true
	res.Status = Redundant // bounded-untestable (see Undetectable doc)
	return res
}

// VerifySequence replays a test sequence against the good and faulty
// machines and reports whether some output differs at the final frame
// (or any earlier frame).
func VerifySequence(q *bmc.Sequential, flt Fault, seq [][]bool) bool {
	free := q.FreeInputs()
	idxOf := make(map[circuit.NodeID]int)
	for i, in := range q.Comb.Inputs {
		idxOf[in] = i
	}
	goodState := q.InitialState()
	badState := q.InitialState()
	inj := flt.Inject()
	for _, vec := range seq {
		full := make([]uint64, len(q.Comb.Inputs))
		for i, in := range free {
			if vec[i] {
				full[idxOf[in]] = 1
			}
		}
		gf := make([]uint64, len(q.Comb.Inputs))
		bf := make([]uint64, len(q.Comb.Inputs))
		copy(gf, full)
		copy(bf, full)
		for i, l := range q.Latches {
			if goodState[i] {
				gf[idxOf[l.Output]] = 1
			}
			if badState[i] {
				bf[idxOf[l.Output]] = 1
			}
		}
		gv := q.Comb.Simulate(gf)
		bv := q.Comb.SimulateInject(bf, inj)
		for _, o := range q.Comb.Outputs {
			if gv[o]&1 != bv[o]&1 {
				return true
			}
		}
		for i, l := range q.Latches {
			goodState[i] = gv[l.Input]&1 == 1
			badState[i] = bv[l.Input]&1 == 1
		}
	}
	return false
}
