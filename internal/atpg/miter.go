package atpg

import (
	"fmt"

	"repro/internal/circuit"
)

// Miter is a good/faulty miter built as a plain circuit, so that both the
// plain CNF flow and the structural layer of §5 can run on it unchanged.
type Miter struct {
	// C is the miter circuit: the good circuit's nodes (same ids),
	// followed by the faulty cone and the output comparators.
	C *circuit.Circuit
	// Diff is the single output node that is 1 iff some primary output
	// differs — the ATPG objective.
	Diff circuit.NodeID
	// GoodOf maps original node ids to miter ids (identity prefix).
	// Inputs of the miter are exactly the original primary inputs.
	GoodOf []circuit.NodeID
	// Detectable is false when the fault has no path to any output, in
	// which case the fault is trivially redundant and C is nil.
	Detectable bool
}

// BuildMiter constructs the Larrabee-style miter for the fault: the good
// circuit, a copy of the fault's transitive fanout cone with the stuck
// value injected, and XOR comparators on the affected outputs feeding a
// single OR (the Diff objective).
func BuildMiter(c *circuit.Circuit, f Fault) *Miter {
	m := &Miter{GoodOf: make([]circuit.NodeID, len(c.Nodes))}
	mc := c.Clone()
	for i := range c.Nodes {
		m.GoodOf[i] = circuit.NodeID(i)
	}

	// The faulty cone starts at the fault's gate (branch faults affect
	// the gate whose input is stuck; stem faults the node itself).
	cone := c.TransitiveFanoutOf(f.Node)
	inCone := make(map[circuit.NodeID]bool, len(cone))
	for _, n := range cone {
		inCone[n] = true
	}

	// Which outputs can observe the fault?
	var affected []circuit.NodeID
	for _, o := range c.Outputs {
		if inCone[o] {
			affected = append(affected, o)
		}
	}
	if len(affected) == 0 {
		return m // Detectable stays false
	}

	stuck := mc.AddConst(f.StuckAt, fmt.Sprintf("flt_const_%v", f.StuckAt))

	faultyOf := make(map[circuit.NodeID]circuit.NodeID, len(cone))
	for _, id := range cone {
		n := &c.Nodes[id]
		if id == f.Node && f.Pin < 0 {
			// Stem fault: the faulty copy of the node is the constant.
			faultyOf[id] = stuck
			continue
		}
		fanin := make([]circuit.NodeID, len(n.Fanin))
		for pin, fn := range n.Fanin {
			if id == f.Node && pin == f.Pin {
				fanin[pin] = stuck // branch fault: this connection is stuck
			} else if fv, ok := faultyOf[fn]; ok {
				fanin[pin] = fv // cone-internal signal, already copied
			} else {
				fanin[pin] = fn // shared good node
			}
		}
		faultyOf[id] = mc.AddGate(n.Type, fmt.Sprintf("%s~f", n.Name), fanin...)
	}

	diffs := make([]circuit.NodeID, 0, len(affected))
	for _, o := range affected {
		d := mc.AddGate(circuit.Xor, fmt.Sprintf("xdiff_%s", c.Name(o)), circuit.NodeID(o), faultyOf[o])
		diffs = append(diffs, d)
	}
	var diff circuit.NodeID
	if len(diffs) == 1 {
		diff = mc.AddGate(circuit.Buf, "miter_diff", diffs[0])
	} else {
		diff = mc.AddGate(circuit.Or, "miter_diff", diffs...)
	}
	mc.Outputs = nil
	mc.MarkOutput(diff)

	m.C = mc
	m.Diff = diff
	m.Detectable = true
	return m
}
