package atpg

import (
	"context"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/solver"
)

// coneQuery is one fault's incremental SAT query: the faulty cone
// re-encoded over fresh variables, every clause guarded by the negated
// activation literal, plus the XOR objective over affected outputs.
// The same query shape feeds both the in-process incremental engine
// and the session-backed one.
type coneQuery struct {
	// act is the activation variable: solve under PosLit(act), retire
	// the cone afterwards with the top-level unit ¬act.
	act cnf.Var
	// clauses carry the guard ¬act already appended.
	clauses []cnf.Clause
	// numVars is the variable space after this query; the target solver
	// must be grown to it before the clauses are added.
	numVars int
}

// buildConeQuery encodes flt's faulty cone against enc, allocating
// fresh variables starting after numVars (the target solver's current
// variable count). It returns nil when no output is reachable from the
// fault site — the fault is trivially redundant and needs no SAT call.
func buildConeQuery(c *circuit.Circuit, enc *circuit.Encoding, flt Fault, numVars int) *coneQuery {
	cone := c.TransitiveFanoutOf(flt.Node)
	inCone := make(map[circuit.NodeID]bool, len(cone))
	for _, n := range cone {
		inCone[n] = true
	}
	var affected []circuit.NodeID
	for _, o := range c.Outputs {
		if inCone[o] {
			affected = append(affected, o)
		}
	}
	if len(affected) == 0 {
		return nil
	}

	// Scratch formula aligned with the target solver's variable space:
	// fresh variables allocated here are mirrored into the solver (or
	// implicitly grown by the session) afterwards.
	scratch := cnf.New(numVars)
	base := scratch.NumClauses()
	act := scratch.NewVar()

	valueLit := func(v cnf.Var, val bool) cnf.Lit { return cnf.NewLit(v, !val) }

	fv := make(map[circuit.NodeID]cnf.Var, len(cone))
	for _, id := range cone {
		n := &c.Nodes[id]
		if id == flt.Node && flt.Pin < 0 {
			v := scratch.NewVar()
			fv[id] = v
			scratch.Add(valueLit(v, flt.StuckAt))             // stem stuck value
			scratch.Add(valueLit(enc.VarOf[id], !flt.StuckAt)) // activation: good site opposes
			continue
		}
		var pinVar cnf.Var
		if id == flt.Node && flt.Pin >= 0 {
			pinVar = scratch.NewVar()
			scratch.Add(valueLit(pinVar, flt.StuckAt))
			w := n.Fanin[flt.Pin]
			scratch.Add(valueLit(enc.VarOf[w], !flt.StuckAt)) // branch activation
		}
		ins := make([]cnf.Var, len(n.Fanin))
		for pin, fn := range n.Fanin {
			switch {
			case id == flt.Node && pin == flt.Pin:
				ins[pin] = pinVar
			case hasKey(fv, fn):
				ins[pin] = fv[fn]
			default:
				ins[pin] = enc.VarOf[fn]
			}
		}
		out := scratch.NewVar()
		fv[id] = out
		circuit.AppendGateCNF(scratch, n.Type, out, ins)
	}
	objective := make(cnf.Clause, 0, len(affected)+1)
	for _, o := range affected {
		d := scratch.NewVar()
		circuit.AppendGateCNF(scratch, circuit.Xor, d, []cnf.Var{enc.VarOf[o], fv[o]})
		objective = append(objective, cnf.PosLit(d))
	}
	scratch.AddClause(objective)

	q := &coneQuery{act: act, numVars: scratch.NumVars()}
	for _, cl := range scratch.Clauses[base:] {
		q.clauses = append(q.clauses, append(cl.Clone(), cnf.NegLit(act)))
	}
	return q
}

// extractPattern reads the primary-input assignment out of a model.
func extractPattern(c *circuit.Circuit, enc *circuit.Encoding, model cnf.Assignment) []cnf.LBool {
	pat := make([]cnf.LBool, len(c.Inputs))
	for i, id := range c.Inputs {
		pat[i] = model.Value(enc.VarOf[id])
	}
	return pat
}

// incrementalATPG shares one solver instance across the whole fault list
// (§6: "in many applications SAT solvers tend to be used iteratively
// and/or incrementally" [Kim et al.]). The good circuit's CNF is loaded
// once; each fault's cone is added with a fresh activation literal a_i
// appended (as ¬a_i) to every cone clause, and the query is solved under
// the assumption a_i. Learned clauses over the good circuit survive
// between faults; retired cones are switched off permanently with a
// top-level unit ¬a_i.
type incrementalATPG struct {
	c    *circuit.Circuit
	enc  *circuit.Encoding
	s    *solver.Solver
	opts Options
	prev solver.Stats // snapshot for per-fault deltas
}

func newIncremental(c *circuit.Circuit, opts Options) *incrementalATPG {
	enc := circuit.Encode(c)
	sopts := opts.Solver
	sopts.MaxConflicts = opts.MaxConflicts
	s := solver.FromFormula(enc.F, sopts)
	return &incrementalATPG{c: c, enc: enc, s: s, opts: opts}
}

func (ia *incrementalATPG) testFault(ctx context.Context, flt Fault) FaultResult {
	fr := FaultResult{Fault: flt}
	q := buildConeQuery(ia.c, ia.enc, flt, ia.s.NumVars())
	if q == nil {
		fr.Status = Redundant
		return fr
	}
	for ia.s.NumVars() < q.numVars {
		ia.s.NewVar()
	}
	for _, cl := range q.clauses {
		ia.s.AddClause(cl)
	}

	stopWatch := context.AfterFunc(ctx, ia.s.Interrupt)
	switch ia.s.Solve(cnf.PosLit(q.act)) {
	case solver.Sat:
		fr.Status = Detected
		fr.Pattern = extractPattern(ia.c, ia.enc, ia.s.Model())
	case solver.Unsat:
		fr.Status = Redundant
	default:
		fr.Status = Aborted
	}
	stopWatch()
	st := ia.s.Stats
	delta := solver.Stats{
		Conflicts: st.Conflicts - ia.prev.Conflicts,
		Decisions: st.Decisions - ia.prev.Decisions,
	}
	ia.prev = st
	fr.satStats = &delta
	// Retire this fault's cone permanently.
	ia.s.AddClause(cnf.Clause{cnf.NegLit(q.act)})
	if fr.Status == Detected && fr.Pattern == nil {
		fr.Status = Aborted
	}
	return fr
}

func hasKey(m map[circuit.NodeID]cnf.Var, k circuit.NodeID) bool {
	_, ok := m[k]
	return ok
}
