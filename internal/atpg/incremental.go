package atpg

import (
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/solver"
)

// incrementalATPG shares one solver instance across the whole fault list
// (§6: "in many applications SAT solvers tend to be used iteratively
// and/or incrementally" [Kim et al.]). The good circuit's CNF is loaded
// once; each fault's cone is added with a fresh activation literal a_i
// appended (as ¬a_i) to every cone clause, and the query is solved under
// the assumption a_i. Learned clauses over the good circuit survive
// between faults; retired cones are switched off permanently with a
// top-level unit ¬a_i.
type incrementalATPG struct {
	c    *circuit.Circuit
	enc  *circuit.Encoding
	s    *solver.Solver
	opts Options
	prev solver.Stats // snapshot for per-fault deltas
}

func newIncremental(c *circuit.Circuit, opts Options) *incrementalATPG {
	enc := circuit.Encode(c)
	sopts := opts.Solver
	sopts.MaxConflicts = opts.MaxConflicts
	s := solver.FromFormula(enc.F, sopts)
	return &incrementalATPG{c: c, enc: enc, s: s, opts: opts}
}

func (ia *incrementalATPG) testFault(flt Fault) FaultResult {
	fr := FaultResult{Fault: flt}
	cone := ia.c.TransitiveFanoutOf(flt.Node)
	inCone := make(map[circuit.NodeID]bool, len(cone))
	for _, n := range cone {
		inCone[n] = true
	}
	var affected []circuit.NodeID
	for _, o := range ia.c.Outputs {
		if inCone[o] {
			affected = append(affected, o)
		}
	}
	if len(affected) == 0 {
		fr.Status = Redundant
		return fr
	}

	// Scratch formula aligned with the solver's variable space: fresh
	// variables allocated here are mirrored into the solver afterwards.
	scratch := cnf.New(ia.s.NumVars())
	base := scratch.NumClauses()
	act := scratch.NewVar()

	valueLit := func(v cnf.Var, val bool) cnf.Lit { return cnf.NewLit(v, !val) }

	fv := make(map[circuit.NodeID]cnf.Var, len(cone))
	for _, id := range cone {
		n := &ia.c.Nodes[id]
		if id == flt.Node && flt.Pin < 0 {
			v := scratch.NewVar()
			fv[id] = v
			scratch.Add(valueLit(v, flt.StuckAt))                 // stem stuck value
			scratch.Add(valueLit(ia.enc.VarOf[id], !flt.StuckAt)) // activation: good site opposes
			continue
		}
		var pinVar cnf.Var
		if id == flt.Node && flt.Pin >= 0 {
			pinVar = scratch.NewVar()
			scratch.Add(valueLit(pinVar, flt.StuckAt))
			w := n.Fanin[flt.Pin]
			scratch.Add(valueLit(ia.enc.VarOf[w], !flt.StuckAt)) // branch activation
		}
		ins := make([]cnf.Var, len(n.Fanin))
		for pin, fn := range n.Fanin {
			switch {
			case id == flt.Node && pin == flt.Pin:
				ins[pin] = pinVar
			case hasKey(fv, fn):
				ins[pin] = fv[fn]
			default:
				ins[pin] = ia.enc.VarOf[fn]
			}
		}
		out := scratch.NewVar()
		fv[id] = out
		circuit.AppendGateCNF(scratch, n.Type, out, ins)
	}
	objective := make(cnf.Clause, 0, len(affected)+1)
	for _, o := range affected {
		d := scratch.NewVar()
		circuit.AppendGateCNF(scratch, circuit.Xor, d, []cnf.Var{ia.enc.VarOf[o], fv[o]})
		objective = append(objective, cnf.PosLit(d))
	}
	scratch.AddClause(objective)

	// Mirror fresh variables into the solver, then add every scratch
	// clause guarded by ¬act.
	for ia.s.NumVars() < scratch.NumVars() {
		ia.s.NewVar()
	}
	for _, cl := range scratch.Clauses[base:] {
		guarded := append(cl.Clone(), cnf.NegLit(act))
		ia.s.AddClause(guarded)
	}

	switch ia.s.Solve(cnf.PosLit(act)) {
	case solver.Sat:
		fr.Status = Detected
		model := ia.s.Model()
		pat := make([]cnf.LBool, len(ia.c.Inputs))
		for i, id := range ia.c.Inputs {
			pat[i] = model.Value(ia.enc.VarOf[id])
		}
		fr.Pattern = pat
	case solver.Unsat:
		fr.Status = Redundant
	default:
		fr.Status = Aborted
	}
	st := ia.s.Stats
	delta := solver.Stats{
		Conflicts: st.Conflicts - ia.prev.Conflicts,
		Decisions: st.Decisions - ia.prev.Decisions,
	}
	ia.prev = st
	fr.satStats = &delta
	// Retire this fault's cone permanently.
	ia.s.AddClause(cnf.Clause{cnf.NegLit(act)})
	if fr.Status == Detected && fr.Pattern == nil {
		fr.Status = Aborted
	}
	return fr
}

func hasKey(m map[circuit.NodeID]cnf.Var, k circuit.NodeID) bool {
	_, ok := m[k]
	return ok
}
