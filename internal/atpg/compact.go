package atpg

import (
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/cnf"
)

// CompactTests performs classical static test-set compaction by
// reverse-order fault simulation: tests are replayed newest-first
// against the full fault list with fault dropping, and a test is kept
// only if it detects at least one fault not covered by the tests kept
// after it. ATPG flows emit tests in discovery order, so late tests
// (generated for hard faults) tend to cover many earlier easy faults,
// making reverse order effective. X bits are randomized across 64
// simulation lanes with the given seed.
func CompactTests(c *circuit.Circuit, faults []Fault, tests [][]cnf.LBool, seed int64) [][]cnf.LBool {
	rng := rand.New(rand.NewSource(seed))
	words := make([][]uint64, len(tests))
	for i, pat := range tests {
		w := make([]uint64, len(pat))
		for j, v := range pat {
			switch v {
			case cnf.True:
				w[j] = ^uint64(0)
			case cnf.False:
				w[j] = 0
			default:
				w[j] = rng.Uint64()
			}
		}
		words[i] = w
	}
	detected := make([]bool, len(faults))
	// Faults no test detects can never be covered; mark them up front so
	// they do not force tests to be kept.
	for fi, f := range faults {
		any := false
		for _, w := range words {
			if Detects(c, f, w) != 0 {
				any = true
				break
			}
		}
		if !any {
			detected[fi] = true // unreachable by this set: ignore
		}
	}
	keep := make([]bool, len(tests))
	for i := len(tests) - 1; i >= 0; i-- {
		fresh := false
		for fi, f := range faults {
			if detected[fi] {
				continue
			}
			if Detects(c, f, words[i]) != 0 {
				detected[fi] = true
				fresh = true
			}
		}
		keep[i] = fresh
	}
	var out [][]cnf.LBool
	for i, k := range keep {
		if k {
			out = append(out, tests[i])
		}
	}
	return out
}
