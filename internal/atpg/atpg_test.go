package atpg

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/cnf"
)

func TestFaultUniverseAndCollapse(t *testing.T) {
	c := circuit.C17()
	all := FaultUniverse(c)
	// 11 nodes (5 PI + 6 gates) → 22 stem faults, plus branch faults on
	// fanout stems (nodes 3, 11, 16 have fanout 2 in c17).
	if len(all) < 22 {
		t.Fatalf("universe too small: %d", len(all))
	}
	collapsed := Collapse(c, all)
	if len(collapsed) >= len(all) {
		t.Fatalf("collapsing removed nothing: %d vs %d", len(collapsed), len(all))
	}
	for _, f := range collapsed {
		if f.Pin >= 0 && c.Nodes[f.Node].Type == circuit.Nand && !f.StuckAt {
			t.Fatalf("NAND input s-a-0 should be collapsed: %v", f)
		}
	}
}

func TestDetectsAgainstExhaustive(t *testing.T) {
	// For every fault and every input pattern of c17, Detects must agree
	// with comparing good/faulty single-pattern simulation.
	c := circuit.C17()
	faults := FaultUniverse(c)
	nIn := len(c.Inputs)
	for _, f := range faults {
		for pat := 0; pat < 1<<nIn; pat++ {
			words := make([]uint64, nIn)
			for i := 0; i < nIn; i++ {
				if pat&(1<<i) != 0 {
					words[i] = 1
				}
			}
			got := Detects(c, f, words)&1 == 1
			good := c.Simulate(words)
			bad := c.SimulateInject(words, f.Inject())
			want := false
			for _, o := range c.Outputs {
				if (good[o]^bad[o])&1 == 1 {
					want = true
				}
			}
			if got != want {
				t.Fatalf("fault %v pattern %b: Detects=%v want %v", f, pat, got, want)
			}
		}
	}
}

// Every generated pattern must actually detect its fault under fault
// simulation — the end-to-end soundness property of ATPG.
func patternDetects(t *testing.T, c *circuit.Circuit, f Fault, pat []cnf.LBool, seed int64) bool {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	words := make([]uint64, len(pat))
	for i, v := range pat {
		switch v {
		case cnf.True:
			words[i] = ^uint64(0)
		case cnf.False:
			words[i] = 0
		default:
			words[i] = rng.Uint64()
		}
	}
	// A partial pattern must detect under EVERY completion; check all-0,
	// all-1 and random completions of the X bits.
	det := Detects(c, f, words)
	if det != ^uint64(0) {
		// Patterns with X bits: require detection in every lane.
		for i, v := range pat {
			if v == cnf.Undef {
				continue
			}
			_ = i
		}
		return false
	}
	return true
}

func TestGeneratedPatternsDetect(t *testing.T) {
	circuits := map[string]*circuit.Circuit{
		"c17":   circuit.C17(),
		"adder": circuit.RippleCarryAdder(3),
		"rand":  circuit.RandomDAG(6, 20, 3, 11),
	}
	for name, c := range circuits {
		for _, structural := range []bool{false, true} {
			rep := GenerateTests(c, Options{Structural: structural, Seed: 3})
			if rep.Detected == 0 {
				t.Fatalf("%s structural=%v: nothing detected", name, structural)
			}
			for _, fr := range rep.Results {
				if fr.Status != Detected || fr.BySim {
					continue
				}
				if !patternDetects(t, c, fr.Fault, fr.Pattern, 99) {
					t.Fatalf("%s structural=%v: pattern %v does not detect %v",
						name, structural, fr.Pattern, fr.Fault)
				}
			}
		}
	}
}

func TestModesAgreeOnVerdicts(t *testing.T) {
	// Scratch, structural and incremental ATPG must classify every fault
	// identically (detected vs redundant).
	c := circuit.RandomDAG(5, 18, 3, 7)
	faults := Collapse(c, FaultUniverse(c))
	base := GenerateTestsFor(c, faults, Options{})
	str := GenerateTestsFor(c, faults, Options{Structural: true})
	inc := GenerateTestsFor(c, faults, Options{Incremental: true})
	key := func(r *Report) map[string]Status {
		m := make(map[string]Status)
		for _, fr := range r.Results {
			m[fr.Fault.String()] = fr.Status
		}
		return m
	}
	kb, ks, ki := key(base), key(str), key(inc)
	for f, st := range kb {
		if ks[f] != st {
			t.Fatalf("fault %s: scratch=%v structural=%v", f, st, ks[f])
		}
		if ki[f] != st {
			t.Fatalf("fault %s: scratch=%v incremental=%v", f, st, ki[f])
		}
	}
}

func TestRedundantFaultDetection(t *testing.T) {
	// Build a circuit with deliberate redundancy: z = OR(AND(a,b), AND(a,b))
	// — the two AND gates are identical, so some faults inside are
	// untestable... Simpler guaranteed case: y = AND(a, NOT(a)) is
	// constant 0; the s-a-0 fault on y is undetectable.
	c := circuit.New()
	a := c.AddInput("a")
	na := c.AddGate(circuit.Not, "na", a)
	y := c.AddGate(circuit.And, "y", a, na)
	b := c.AddInput("b")
	z := c.AddGate(circuit.Or, "z", y, b)
	c.MarkOutput(z)

	fr := TestFault(c, Fault{Node: y, Pin: -1, StuckAt: false}, Options{})
	if fr.Status != Redundant {
		t.Fatalf("y s-a-0 should be redundant (y is constant 0), got %v", fr.Status)
	}
	// y s-a-1 is testable: set b=0, output flips from 0 to 1.
	fr = TestFault(c, Fault{Node: y, Pin: -1, StuckAt: true}, Options{})
	if fr.Status != Detected {
		t.Fatalf("y s-a-1 should be detected, got %v", fr.Status)
	}
	if !patternDetects(t, c, Fault{Node: y, Pin: -1, StuckAt: true}, fr.Pattern, 5) {
		t.Fatal("pattern fails to detect y s-a-1")
	}
}

func TestUnobservableFault(t *testing.T) {
	// A node with no path to any output is trivially redundant.
	c := circuit.New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	dead := c.AddGate(circuit.And, "dead", a, b)
	z := c.AddGate(circuit.Or, "z", a, b)
	c.MarkOutput(z)
	fr := TestFault(c, Fault{Node: dead, Pin: -1, StuckAt: true}, Options{})
	if fr.Status != Redundant {
		t.Fatalf("unobservable fault should be redundant, got %v", fr.Status)
	}
}

func TestFaultSimDropping(t *testing.T) {
	c := circuit.RippleCarryAdder(4)
	noSim := GenerateTests(c, Options{Seed: 1})
	withSim := GenerateTests(c, Options{FaultSim: true, Seed: 1})
	if withSim.Detected+withSim.Redundant+withSim.Aborted != withSim.Total {
		t.Fatalf("accounting broken: %+v", withSim)
	}
	if withSim.SATCalls >= noSim.SATCalls {
		t.Fatalf("fault dropping should reduce SAT calls: %d vs %d", withSim.SATCalls, noSim.SATCalls)
	}
	if withSim.Detected != noSim.Detected || withSim.Redundant != noSim.Redundant {
		t.Fatalf("fault sim changed verdicts: %+v vs %+v", withSim, noSim)
	}
	if withSim.BySimulation == 0 {
		t.Fatal("no faults dropped by simulation")
	}
}

func TestStructuralReducesSpecifiedBits(t *testing.T) {
	// The §5 claim: structural patterns are less overspecified.
	c := circuit.MuxTree(4)
	base := GenerateTests(c, Options{Seed: 2})
	str := GenerateTests(c, Options{Structural: true, Seed: 2})
	if base.PatternBits == 0 || str.PatternBits == 0 {
		t.Fatal("no patterns generated")
	}
	baseFrac := float64(base.SpecifiedBits) / float64(base.PatternBits)
	strFrac := float64(str.SpecifiedBits) / float64(str.PatternBits)
	if strFrac >= baseFrac {
		t.Fatalf("structural layer did not reduce specification: %.2f vs %.2f", strFrac, baseFrac)
	}
}

func TestCoverageAccounting(t *testing.T) {
	c := circuit.C17()
	rep := GenerateTests(c, Options{FaultSim: true, Seed: 9})
	if rep.Detected+rep.Redundant+rep.Aborted != rep.Total {
		t.Fatalf("accounting: %+v", rep)
	}
	// c17 has no redundant faults; full coverage expected.
	if rep.Redundant != 0 {
		t.Fatalf("c17 has no redundant faults, got %d", rep.Redundant)
	}
	if rep.Coverage() < 1.0 {
		t.Fatalf("coverage %.3f < 1 on c17", rep.Coverage())
	}
	if rep.Aborted != 0 {
		t.Fatalf("aborted faults on c17: %d", rep.Aborted)
	}
}

func TestFaultString(t *testing.T) {
	f := Fault{Node: 3, Pin: -1, StuckAt: true}
	if f.String() != "n3 s-a-1" {
		t.Fatalf("String = %q", f.String())
	}
	f2 := Fault{Node: 3, Pin: 2, StuckAt: false}
	if f2.String() != "n3.in2 s-a-0" {
		t.Fatalf("String = %q", f2.String())
	}
}

func TestMiterOnBranchFault(t *testing.T) {
	// Branch fault on a fanout stem must differ from the stem fault:
	// stem a feeds both AND gates; branch s-a-1 into g1 only affects g1.
	c := circuit.New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(circuit.And, "g1", a, b)
	g2 := c.AddGate(circuit.And, "g2", a, b)
	c.MarkOutput(g1)
	c.MarkOutput(g2)
	fr := TestFault(c, Fault{Node: g1, Pin: 0, StuckAt: true}, Options{})
	if fr.Status != Detected {
		t.Fatalf("branch fault should be detected: %v", fr.Status)
	}
	if !patternDetects(t, c, Fault{Node: g1, Pin: 0, StuckAt: true}, fr.Pattern, 1) {
		t.Fatal("branch fault pattern wrong")
	}
}

func TestCompactTestsPreservesCoverage(t *testing.T) {
	c := circuit.RippleCarryAdder(5)
	faults := Collapse(c, FaultUniverse(c))
	rep := GenerateTestsFor(c, faults, Options{Seed: 3})
	if len(rep.Tests) == 0 {
		t.Fatal("no tests")
	}
	compact := CompactTests(c, faults, rep.Tests, 7)
	if len(compact) > len(rep.Tests) {
		t.Fatalf("compaction grew the set: %d -> %d", len(rep.Tests), len(compact))
	}
	// Coverage must be preserved: every fault detected by the full set
	// is detected by the compacted set (same seed → same X fill).
	cover := func(tests [][]cnf.LBool, seed int64) map[string]bool {
		rng := rand.New(rand.NewSource(seed))
		var ws [][]uint64
		for _, pat := range tests {
			w := make([]uint64, len(pat))
			for j, v := range pat {
				switch v {
				case cnf.True:
					w[j] = ^uint64(0)
				case cnf.False:
					w[j] = 0
				default:
					w[j] = rng.Uint64()
				}
			}
			ws = append(ws, w)
		}
		m := map[string]bool{}
		for _, f := range faults {
			for _, w := range ws {
				if Detects(c, f, w) != 0 {
					m[f.String()] = true
					break
				}
			}
		}
		return m
	}
	// Note: different X fills between full and compacted runs can change
	// borderline detections; use fully-specified patterns (no X) from
	// the plain generator, which this config produces.
	full := cover(rep.Tests, 7)
	comp := cover(compact, 7)
	for f := range full {
		if !comp[f] {
			t.Fatalf("compaction lost coverage of %s (%d -> %d tests)", f, len(rep.Tests), len(compact))
		}
	}
	if len(compact) == len(rep.Tests) {
		t.Log("no compaction achieved on this instance (acceptable but unusual)")
	}
}

func TestCompactEmptyAndSingleton(t *testing.T) {
	c := circuit.C17()
	faults := FaultUniverse(c)
	if got := CompactTests(c, faults, nil, 1); len(got) != 0 {
		t.Fatal("empty set should stay empty")
	}
	rep := GenerateTests(c, Options{Seed: 1})
	one := rep.Tests[:1]
	got := CompactTests(c, faults, one, 1)
	if len(got) != 1 {
		t.Fatalf("singleton detecting tests should be kept, got %d", len(got))
	}
}

func TestCompactOptionInFlow(t *testing.T) {
	c := circuit.RippleCarryAdder(5)
	rep := GenerateTests(c, Options{Compact: true, Seed: 4})
	if rep.UncompactedTests == 0 {
		t.Fatal("UncompactedTests not recorded")
	}
	if len(rep.Tests) > rep.UncompactedTests {
		t.Fatalf("compaction grew set: %d -> %d", rep.UncompactedTests, len(rep.Tests))
	}
}
