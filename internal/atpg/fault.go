// Package atpg implements SAT-based automatic test pattern generation
// for single stuck-at faults (paper §3; [Larrabee], [Stephan et al.],
// [Marques-Silva & Sakallah 97]). A fault is detected by an input
// pattern on which the good and faulty circuits produce different
// outputs; the search for such a pattern is formulated as a SAT instance
// over a miter of the good circuit and the faulty cone. An UNSAT answer
// proves the fault untestable (redundant), feeding the redundancy
// removal flow of the redund package.
//
// Three modes are provided: one-shot SAT per fault, the structural-layer
// mode of §5 producing partially-specified patterns, and the
// iterative/incremental mode of §6 ([Kim et al.]) sharing one solver
// across the fault list via activation literals.
package atpg

import (
	"fmt"

	"repro/internal/circuit"
)

// Fault is a single stuck-at fault. Pin == -1 places the fault on the
// node's output (stem); Pin >= 0 places it on the connection feeding
// that fanin position (branch fault).
type Fault struct {
	Node    circuit.NodeID
	Pin     int
	StuckAt bool // stuck value
}

// String renders the fault, e.g. "g3 s-a-1" or "g3.in2 s-a-0".
func (f Fault) String() string {
	v := 0
	if f.StuckAt {
		v = 1
	}
	if f.Pin < 0 {
		return fmt.Sprintf("n%d s-a-%d", f.Node, v)
	}
	return fmt.Sprintf("n%d.in%d s-a-%d", f.Node, f.Pin, v)
}

// FaultUniverse enumerates the standard single stuck-at fault list:
// both polarities on every node output (stem faults), plus branch faults
// on gate inputs whose driving node has fanout greater than one (where
// the branch can differ from the stem).
func FaultUniverse(c *circuit.Circuit) []Fault {
	fo := c.Fanouts()
	var out []Fault
	for i := range c.Nodes {
		id := circuit.NodeID(i)
		if c.Nodes[i].Type == circuit.Const0 || c.Nodes[i].Type == circuit.Const1 {
			continue
		}
		out = append(out, Fault{Node: id, Pin: -1, StuckAt: false})
		out = append(out, Fault{Node: id, Pin: -1, StuckAt: true})
	}
	for i := range c.Nodes {
		id := circuit.NodeID(i)
		for pin, f := range c.Nodes[i].Fanin {
			if len(fo[f]) > 1 {
				out = append(out, Fault{Node: id, Pin: pin, StuckAt: false})
				out = append(out, Fault{Node: id, Pin: pin, StuckAt: true})
			}
		}
	}
	return out
}

// Collapse removes faults equivalent to others under the classic local
// equivalence rules, returning the reduced list:
//
//   - s-a-0 on any AND input ≡ s-a-0 on its output (dually OR/s-a-1),
//   - s-a-0 on a NAND input ≡ s-a-1 on its output (dually NOR),
//   - BUF input faults ≡ output faults; NOT input s-a-v ≡ output s-a-¬v.
//
// Branch faults are only collapsed when the rule applies regardless of
// the stem's other fanouts (gate-local equivalence), which holds for the
// rules above since they relate a gate's input connection to the gate's
// own output.
func Collapse(c *circuit.Circuit, faults []Fault) []Fault {
	var out []Fault
	for _, f := range faults {
		if f.Pin >= 0 && collapsible(c.Nodes[f.Node].Type, f.StuckAt) {
			continue
		}
		// Single-fanin gate stems: BUF/NOT input-side faults were already
		// excluded from the universe unless fanout > 1; the output fault
		// represents the class.
		out = append(out, f)
	}
	return out
}

func collapsible(t circuit.GateType, stuckAt bool) bool {
	switch t {
	case circuit.And, circuit.Nand:
		return !stuckAt // input s-a-0 equivalent to an output fault
	case circuit.Or, circuit.Nor:
		return stuckAt // input s-a-1 equivalent to an output fault
	case circuit.Buf, circuit.Not:
		return true // both polarities map to output faults
	}
	return false
}

// Inject converts the fault to simulation injections with the stuck
// value replicated across all 64 pattern lanes.
func (f Fault) Inject() []circuit.Injection {
	var v uint64
	if f.StuckAt {
		v = ^uint64(0)
	}
	return []circuit.Injection{{Node: f.Node, Pin: f.Pin, Value: v}}
}

// Detects reports which of the 64 packed patterns detect the fault: a
// bit is set where any primary output differs between good and faulty
// simulation.
func Detects(c *circuit.Circuit, f Fault, inputs []uint64) uint64 {
	good := c.Simulate(inputs)
	bad := c.SimulateInject(inputs, f.Inject())
	var diff uint64
	for _, o := range c.Outputs {
		diff |= good[o] ^ bad[o]
	}
	return diff
}
