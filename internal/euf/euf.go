// Package euf decides formulas in the logic of Equality with
// Uninterpreted Functions by reduction to propositional SAT (paper §3;
// [Velev & Bryant, "Superscalar Processor Verification Using Reductions
// of the Logic of Equality with Uninterpreted Functions to Propositional
// Logic"]). Datapath values are abstract terms, ALUs and memories are
// uninterpreted function applications, and pipeline-control decisions
// are term-level ITEs; correctness statements (implementation result =
// specification result) become EUF validity queries.
//
// The reduction introduces one propositional variable per unordered pair
// of terms (e_ij ⇔ "terms i and j are equal") and encodes:
//
//   - congruence: equal arguments force equal function applications,
//   - transitivity over all term triples,
//   - ITE semantics: the condition selects which branch the ITE equals,
//   - the formula's Boolean skeleton by Tseitin transformation.
package euf

import (
	"fmt"
	"strings"

	"repro/internal/cnf"
	"repro/internal/solver"
)

// Term identifies a term in a Builder's hash-consed DAG.
type Term int32

// Builder constructs terms. All terms share one untyped universe.
type Builder struct {
	nodes []termNode
	byKey map[string]Term
	ites  []iteNode
}

type termNode struct {
	fn   string
	args []Term
}

type iteNode struct {
	t         Term // the fresh ITE result term
	cond      Prop
	then, els Term
}

// NewBuilder returns an empty term builder.
func NewBuilder() *Builder {
	return &Builder{byKey: make(map[string]Term)}
}

// Var returns the 0-ary term (domain variable) with the given name.
func (b *Builder) Var(name string) Term { return b.Apply(name) }

// Apply returns the hash-consed application fn(args...).
func (b *Builder) Apply(fn string, args ...Term) Term {
	var sb strings.Builder
	sb.WriteString(fn)
	for _, a := range args {
		fmt.Fprintf(&sb, ",%d", a)
	}
	key := sb.String()
	if t, ok := b.byKey[key]; ok {
		return t
	}
	t := Term(len(b.nodes))
	b.nodes = append(b.nodes, termNode{fn: fn, args: append([]Term(nil), args...)})
	b.byKey[key] = t
	return t
}

// Ite returns a term equal to `then` when cond holds and `els`
// otherwise — the term-level multiplexer of pipeline models.
func (b *Builder) Ite(cond Prop, then, els Term) Term {
	t := Term(len(b.nodes))
	b.nodes = append(b.nodes, termNode{fn: fmt.Sprintf("$ite%d", len(b.ites))})
	b.ites = append(b.ites, iteNode{t: t, cond: cond, then: then, els: els})
	return t
}

// NumTerms returns the number of distinct terms built.
func (b *Builder) NumTerms() int { return len(b.nodes) }

// Prop is a propositional formula over equality atoms.
type Prop struct {
	kind propKind
	args []Prop
	a, b Term
}

type propKind int8

const (
	pEq propKind = iota
	pNot
	pAnd
	pOr
	pTrue
)

// Eq returns the atom a = b.
func Eq(a, b Term) Prop { return Prop{kind: pEq, a: a, b: b} }

// Neq returns the atom a ≠ b.
func Neq(a, b Term) Prop { return Not(Eq(a, b)) }

// Not negates a proposition.
func Not(p Prop) Prop { return Prop{kind: pNot, args: []Prop{p}} }

// And conjoins propositions (And() is true).
func And(ps ...Prop) Prop { return Prop{kind: pAnd, args: ps} }

// Or disjoins propositions (Or() is false).
func Or(ps ...Prop) Prop { return Prop{kind: pOr, args: ps} }

// Implies returns a → b.
func Implies(a, b Prop) Prop { return Or(Not(a), b) }

// Iff returns a ↔ b.
func Iff(a, b Prop) Prop { return And(Implies(a, b), Implies(b, a)) }

// TrueProp is the constant true.
func TrueProp() Prop { return Prop{kind: pTrue} }

// Options configures the decision procedure.
type Options struct {
	MaxConflicts int64
	Solver       solver.Options
}

// Result reports a satisfiability query.
type Result struct {
	Sat     bool
	Decided bool
	// EqualPairs lists the term pairs made equal in the satisfying
	// interpretation (a finite model sketch).
	EqualPairs [][2]Term
	Vars       int
	Clauses    int
}

// Satisfiable decides whether some interpretation of the uninterpreted
// functions satisfies p.
func (b *Builder) Satisfiable(p Prop, opts Options) *Result {
	f, atom := b.encode()
	root := b.encodeProp(f, atom, p)
	f.Add(root)
	res := &Result{Vars: f.NumVars(), Clauses: f.NumClauses()}
	sopts := opts.Solver
	sopts.MaxConflicts = opts.MaxConflicts
	s := solver.FromFormula(f, sopts)
	switch s.Solve() {
	case solver.Sat:
		res.Sat = true
		res.Decided = true
		m := s.Model()
		n := len(b.nodes)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if m.LitValue(atom(Term(i), Term(j))) == cnf.True {
					res.EqualPairs = append(res.EqualPairs, [2]Term{Term(i), Term(j)})
				}
			}
		}
	case solver.Unsat:
		res.Decided = true
	}
	return res
}

// Valid decides whether p holds under every interpretation.
func (b *Builder) Valid(p Prop, opts Options) (bool, *Result) {
	res := b.Satisfiable(Not(p), opts)
	return res.Decided && !res.Sat, res
}

// encode builds the equality skeleton: pair variables, congruence,
// transitivity and ITE constraints. It returns the formula and the atom
// accessor (literal that is true iff the two terms are equal).
func (b *Builder) encode() (*cnf.Formula, func(Term, Term) cnf.Lit) {
	n := len(b.nodes)
	f := cnf.New(0)
	// Pair variable for i<j at index i*n+j.
	pairVar := make([]cnf.Var, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairVar[i*n+j] = f.NewVar()
		}
	}
	trueVar := f.NewVar()
	f.Add(cnf.PosLit(trueVar)) // reflexivity carrier
	atom := func(a, c Term) cnf.Lit {
		if a == c {
			return cnf.PosLit(trueVar)
		}
		if a > c {
			a, c = c, a
		}
		return cnf.PosLit(pairVar[int(a)*n+int(c)])
	}

	// Congruence: same function, pairwise-equal arguments → equal.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ni, nj := &b.nodes[i], &b.nodes[j]
			if ni.fn != nj.fn || len(ni.args) != len(nj.args) || len(ni.args) == 0 {
				continue
			}
			clause := make(cnf.Clause, 0, len(ni.args)+1)
			for k := range ni.args {
				clause = append(clause, atom(ni.args[k], nj.args[k]).Not())
			}
			clause = append(clause, atom(Term(i), Term(j)))
			f.AddClause(clause)
		}
	}
	// Transitivity over all triples (three rotations each).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				ij := atom(Term(i), Term(j))
				jk := atom(Term(j), Term(k))
				ik := atom(Term(i), Term(k))
				f.Add(ij.Not(), jk.Not(), ik)
				f.Add(ij.Not(), ik.Not(), jk)
				f.Add(jk.Not(), ik.Not(), ij)
			}
		}
	}
	// ITE semantics: cond → t=then, ¬cond → t=else.
	for _, ite := range b.ites {
		condLit := b.encodeProp(f, atom, ite.cond)
		f.Add(condLit.Not(), atom(ite.t, ite.then))
		f.Add(condLit, atom(ite.t, ite.els))
	}
	return f, atom
}

// encodeProp Tseitin-encodes the proposition and returns a literal
// equivalent to it.
func (b *Builder) encodeProp(f *cnf.Formula, atom func(Term, Term) cnf.Lit, p Prop) cnf.Lit {
	switch p.kind {
	case pTrue:
		v := f.NewVar()
		f.Add(cnf.PosLit(v))
		return cnf.PosLit(v)
	case pEq:
		return atom(p.a, p.b)
	case pNot:
		return b.encodeProp(f, atom, p.args[0]).Not()
	case pAnd, pOr:
		lits := make([]cnf.Lit, len(p.args))
		for i, q := range p.args {
			lits[i] = b.encodeProp(f, atom, q)
		}
		out := cnf.PosLit(f.NewVar())
		if p.kind == pAnd {
			long := make(cnf.Clause, 0, len(lits)+1)
			for _, l := range lits {
				f.Add(out.Not(), l) // out → each
				long = append(long, l.Not())
			}
			long = append(long, out) // all → out
			f.AddClause(long)
		} else {
			long := make(cnf.Clause, 0, len(lits)+1)
			for _, l := range lits {
				f.Add(l.Not(), out) // each → out
				long = append(long, l)
			}
			long = append(long, out.Not()) // out → some
			f.AddClause(long)
		}
		return out
	}
	panic("euf: unknown prop kind")
}
