package euf

import "testing"

func TestBasicEquality(t *testing.T) {
	b := NewBuilder()
	a := b.Var("a")
	c := b.Var("c")
	// a=c is satisfiable but not valid.
	if res := b.Satisfiable(Eq(a, c), Options{}); !res.Sat {
		t.Fatal("a=c must be satisfiable")
	}
	if ok, _ := b.Valid(Eq(a, c), Options{}); ok {
		t.Fatal("a=c must not be valid")
	}
	// a=a is valid.
	if ok, _ := b.Valid(Eq(a, a), Options{}); !ok {
		t.Fatal("a=a must be valid")
	}
}

func TestTransitivityChain(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x")
	y := b.Var("y")
	z := b.Var("z")
	f := Implies(And(Eq(x, y), Eq(y, z)), Eq(x, z))
	if ok, _ := b.Valid(f, Options{}); !ok {
		t.Fatal("transitivity must be valid")
	}
}

func TestCongruence(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x")
	y := b.Var("y")
	fx := b.Apply("f", x)
	fy := b.Apply("f", y)
	if ok, _ := b.Valid(Implies(Eq(x, y), Eq(fx, fy)), Options{}); !ok {
		t.Fatal("congruence must be valid")
	}
	// The converse is not valid: f may collapse distinct arguments.
	if ok, _ := b.Valid(Implies(Eq(fx, fy), Eq(x, y)), Options{}); ok {
		t.Fatal("injectivity must not be valid for uninterpreted f")
	}
}

func TestClassicFixpoint(t *testing.T) {
	// f(f(a))=a ∧ f(f(f(a)))=a → f(a)=a — the classic EUF exercise.
	b := NewBuilder()
	a := b.Var("a")
	fa := b.Apply("f", a)
	ffa := b.Apply("f", fa)
	fffa := b.Apply("f", ffa)
	hyp := And(Eq(ffa, a), Eq(fffa, a))
	if ok, res := b.Valid(Implies(hyp, Eq(fa, a)), Options{}); !ok {
		t.Fatalf("classic fixpoint must be valid (%+v)", res)
	}
}

func TestBinaryFunctionCongruence(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x")
	y := b.Var("y")
	u := b.Var("u")
	v := b.Var("v")
	g1 := b.Apply("g", x, u)
	g2 := b.Apply("g", y, v)
	f := Implies(And(Eq(x, y), Eq(u, v)), Eq(g1, g2))
	if ok, _ := b.Valid(f, Options{}); !ok {
		t.Fatal("binary congruence must be valid")
	}
	// Only one argument equal: not valid.
	f2 := Implies(Eq(x, y), Eq(g1, g2))
	if ok, _ := b.Valid(f2, Options{}); ok {
		t.Fatal("partial congruence must not be valid")
	}
}

func TestIteSemantics(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x")
	y := b.Var("y")
	p := Eq(b.Var("c1"), b.Var("c2"))
	ite := b.Ite(p, x, y)
	if ok, _ := b.Valid(Implies(p, Eq(ite, x)), Options{}); !ok {
		t.Fatal("cond → ite=then must be valid")
	}
	if ok, _ := b.Valid(Implies(Not(p), Eq(ite, y)), Options{}); !ok {
		t.Fatal("¬cond → ite=else must be valid")
	}
	if ok, _ := b.Valid(Eq(ite, x), Options{}); ok {
		t.Fatal("ite=then unconditionally must not be valid")
	}
	// ite is always one of its branches.
	if ok, _ := b.Valid(Or(Eq(ite, x), Eq(ite, y)), Options{}); !ok {
		t.Fatal("ite ∈ {then, else} must be valid")
	}
}

// TestPipelineForwarding is the miniature processor-verification
// scenario of [Velev & Bryant]: the implementation reads its operand
// through a forwarding multiplexer (bypassing the register file when
// the previous instruction's result is still in the write-back stage);
// the specification reads the architectural register directly. Given
// the forwarding-correctness side condition — the bypassed value equals
// what the register file will hold — both compute the same ALU result.
func TestPipelineForwarding(t *testing.T) {
	b := NewBuilder()
	op := b.Var("op")
	regVal := b.Var("regVal") // architectural register value
	wbVal := b.Var("wbVal")   // value in the write-back stage
	src2 := b.Var("src2")
	useFwd := Eq(b.Var("rs1"), b.Var("rdWB")) // hazard: source = WB dest

	// Implementation: operand through the forwarding mux.
	operandImpl := b.Ite(useFwd, wbVal, regVal)
	resultImpl := b.Apply("alu", op, operandImpl, src2)
	// Specification: operand from the register file.
	resultSpec := b.Apply("alu", op, regVal, src2)

	// Forwarding correctness side condition: when the hazard is active,
	// the WB value is exactly the register's new value.
	side := Implies(useFwd, Eq(wbVal, regVal))

	ok, _ := b.Valid(Implies(side, Eq(resultImpl, resultSpec)), Options{})
	if !ok {
		t.Fatal("forwarding implementation must match the specification")
	}
	// Without the side condition the equivalence must FAIL (a real bug
	// class: forwarding the wrong value).
	ok, res := b.Valid(Eq(resultImpl, resultSpec), Options{})
	if ok {
		t.Fatal("equivalence without forwarding correctness must be invalid")
	}
	if len(res.EqualPairs) == 0 {
		t.Fatal("counterexample interpretation should relate some terms")
	}
}

func TestUnsatisfiableConjunction(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x")
	y := b.Var("y")
	fx := b.Apply("f", x)
	fy := b.Apply("f", y)
	// x=y ∧ f(x)≠f(y) is unsatisfiable.
	res := b.Satisfiable(And(Eq(x, y), Neq(fx, fy)), Options{})
	if res.Sat || !res.Decided {
		t.Fatal("congruence violation must be UNSAT")
	}
}

func TestHashConsing(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x")
	f1 := b.Apply("f", x)
	f2 := b.Apply("f", x)
	if f1 != f2 {
		t.Fatal("identical applications must be hash-consed")
	}
	if b.NumTerms() != 2 {
		t.Fatalf("NumTerms = %d, want 2", b.NumTerms())
	}
}
