package cec

import (
	"fmt"
	"testing"

	"repro/internal/circuit"
)

// optimizedAdder returns a functionally identical but structurally
// different ripple-carry adder (carry logic via NAND-NAND instead of
// AND-OR), sharing input names with circuit.RippleCarryAdder.
func optimizedAdder(n int) *circuit.Circuit {
	c := circuit.New()
	as := make([]circuit.NodeID, n)
	bs := make([]circuit.NodeID, n)
	for i := 0; i < n; i++ {
		as[i] = c.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = c.AddInput(fmt.Sprintf("b%d", i))
	}
	carry := c.AddInput("cin")
	for i := 0; i < n; i++ {
		axb := c.AddGate(circuit.Xor, fmt.Sprintf("x%d", i), as[i], bs[i])
		s := c.AddGate(circuit.Xor, fmt.Sprintf("s%d", i), axb, carry)
		c.MarkOutput(s)
		n1 := c.AddGate(circuit.Nand, fmt.Sprintf("n1_%d", i), as[i], bs[i])
		n2 := c.AddGate(circuit.Nand, fmt.Sprintf("n2_%d", i), axb, carry)
		carry = c.AddGate(circuit.Nand, fmt.Sprintf("c%d", i), n1, n2)
	}
	c.MarkOutput(carry)
	return c
}

// mutate flips one gate type to create an inequivalent copy.
func mutate(c *circuit.Circuit) *circuit.Circuit {
	d := c.Clone()
	for i := range d.Nodes {
		switch d.Nodes[i].Type {
		case circuit.And:
			d.Nodes[i].Type = circuit.Nand
			return d
		case circuit.Or:
			d.Nodes[i].Type = circuit.Nor
			return d
		case circuit.Xor:
			d.Nodes[i].Type = circuit.Xnor
			return d
		}
	}
	panic("no mutable gate")
}

func TestEquivalentAdders(t *testing.T) {
	a := circuit.RippleCarryAdder(4)
	b := optimizedAdder(4)
	for _, internal := range []bool{false, true} {
		res, err := Check(a, b, Options{Internal: internal, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Decided || !res.Equivalent {
			t.Fatalf("internal=%v: adders should be equivalent: %+v", internal, res)
		}
	}
}

func TestInequivalentDetected(t *testing.T) {
	a := circuit.RippleCarryAdder(3)
	b := mutate(a)
	for _, internal := range []bool{false, true} {
		res, err := Check(a, b, Options{Internal: internal, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Decided || res.Equivalent {
			t.Fatalf("internal=%v: mutant should differ", internal)
		}
		if res.Counterexample == nil {
			t.Fatalf("internal=%v: no counterexample", internal)
		}
		if !VerifyCounterexample(a, b, res.Counterexample) {
			t.Fatalf("internal=%v: counterexample does not distinguish", internal)
		}
	}
}

func TestSelfEquivalence(t *testing.T) {
	for _, c := range []*circuit.Circuit{
		circuit.C17(),
		circuit.ParityTree(6),
		circuit.MuxTree(3),
		circuit.RandomDAG(6, 25, 3, 4),
	} {
		res, err := Check(c, c.Clone(), Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent {
			t.Fatal("circuit must equal its clone")
		}
	}
}

func TestInternalModeProvesCandidates(t *testing.T) {
	a := circuit.RippleCarryAdder(5)
	b := optimizedAdder(5)
	res, err := Check(a, b, Options{Internal: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("adders equivalent")
	}
	if res.Candidates == 0 || res.Proven == 0 {
		t.Fatalf("internal engine found no candidates/proofs: %+v", res)
	}
}

func TestShapeMismatchErrors(t *testing.T) {
	a := circuit.RippleCarryAdder(2)
	b := circuit.RippleCarryAdder(3)
	if _, err := Check(a, b, Options{}); err == nil {
		t.Fatal("expected input-count error")
	}
	// Same inputs, different output counts.
	c1 := circuit.New()
	x := c1.AddInput("x")
	g := c1.AddGate(circuit.Not, "g", x)
	c1.MarkOutput(g)
	c2 := circuit.New()
	y := c2.AddInput("x")
	h := c2.AddGate(circuit.Not, "h", y)
	c2.MarkOutput(h)
	c2.MarkOutput(h)
	if _, err := Check(c1, c2, Options{}); err == nil {
		t.Fatal("expected output-count error")
	}
}

func TestPositionalInputMatching(t *testing.T) {
	// Different input names force positional matching.
	a := circuit.New()
	x := a.AddInput("x")
	y := a.AddInput("y")
	g := a.AddGate(circuit.And, "g", x, y)
	a.MarkOutput(g)
	b := circuit.New()
	p := b.AddInput("p")
	q := b.AddInput("q")
	h := b.AddGate(circuit.And, "h", p, q)
	b.MarkOutput(h)
	res, err := Check(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("positionally matched ANDs are equivalent")
	}
}

func TestConstantCircuits(t *testing.T) {
	// x AND NOT x == const 0.
	a := circuit.New()
	x := a.AddInput("x")
	nx := a.AddGate(circuit.Not, "nx", x)
	g := a.AddGate(circuit.And, "g", x, nx)
	a.MarkOutput(g)
	b := circuit.New()
	y := b.AddInput("x")
	k := b.AddConst(false, "zero")
	h := b.AddGate(circuit.And, "h", k, y)
	b.MarkOutput(h)
	res, err := Check(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("both circuits are constant 0")
	}
}

func TestStrashModeCEC(t *testing.T) {
	a := circuit.RippleCarryAdder(5)
	// Identical copy: strash merges everything, SAT gets a trivial
	// instance.
	plain, err := Check(a, a.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	hashed, err := Check(a, a.Clone(), Options{Strash: true})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equivalent || !hashed.Equivalent {
		t.Fatal("clone must be equivalent")
	}
	if hashed.Conflicts > plain.Conflicts {
		t.Fatalf("strash made things worse: %d vs %d conflicts", hashed.Conflicts, plain.Conflicts)
	}
	// On an inequivalent pair strash must preserve the verdict and the
	// counterexample must still distinguish.
	b := mutate(a)
	res, err := Check(a, b, Options{Strash: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("mutant must differ under strash mode")
	}
	if !VerifyCounterexample(a, b, res.Counterexample) {
		t.Fatal("strash-mode counterexample invalid")
	}
}

// TestPortfolioModeCEC: a portfolio of diversified workers on the miter
// agrees with the sequential engine in both directions, and portfolio
// counterexamples still distinguish the circuits.
func TestPortfolioModeCEC(t *testing.T) {
	a := circuit.RippleCarryAdder(6)
	b := optimizedAdder(6)
	res, err := Check(a, b, Options{PortfolioWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || !res.Equivalent {
		t.Fatalf("portfolio must prove the adders equivalent: %+v", res)
	}
	m := mutate(a)
	res, err = Check(a, m, Options{PortfolioWorkers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided || res.Equivalent {
		t.Fatal("portfolio must detect the mutant")
	}
	if !VerifyCounterexample(a, m, res.Counterexample) {
		t.Fatal("portfolio counterexample does not distinguish")
	}
}
