// Package cec implements SAT-based combinational equivalence checking
// (paper §3; [Gupta & Ashar], [Marques-Silva & Glass]). Two circuits are
// equivalent iff the miter — pairwise XORs of corresponding outputs, ORed
// together — is unsatisfiable when asked to produce 1.
//
// Two engines are provided: a plain one-shot miter check, and the
// simulation-guided internal-equivalence engine: random simulation
// proposes candidate equivalent internal node pairs, incremental SAT
// proves them front-to-back, and proven equivalences are added as
// constraints that dramatically simplify the final output check on
// structurally similar circuit pairs (the §6 incremental-SAT usage
// pattern combined with the §4.2 learning theme).
package cec

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/portfolio"
	"repro/internal/solver"
)

// Options configures an equivalence check.
type Options struct {
	// Internal enables the simulation-guided internal-equivalence
	// engine; otherwise a single monolithic SAT call decides the miter.
	Internal bool
	// Strash applies structural hashing to the miter before encoding:
	// structurally identical regions of the two designs merge away,
	// often discharging large parts of the proof without SAT.
	Strash bool
	// SimWords is the number of 64-pattern words used to form candidate
	// classes (0 = 4).
	SimWords int
	// MaxConflicts bounds each SAT query (0 = unlimited).
	MaxConflicts int64
	// PortfolioWorkers, when greater than 1, decides the miter with a
	// parallel portfolio of diversified solvers instead of a single
	// sequential one — the right choice for large hard miters. Applies
	// to the monolithic check (the Internal engine's many incremental
	// queries stay sequential).
	PortfolioWorkers int
	// PreferRecipe seeds the portfolio's diversification toward a
	// recipe family a cross-run memory expects to win
	// (portfolio.Options.PreferRecipe); "" leaves it unbiased.
	PreferRecipe string
	// PortfolioAdaptive enables the portfolio's adaptive scheduling
	// supervisor for the miter race (portfolio.Options.Adaptive).
	PortfolioAdaptive bool
	// Solver carries base solver options.
	Solver solver.Options
	// Seed drives random simulation.
	Seed int64
	// Monitor, when non-nil, receives every solver this check spawns
	// (the monolithic miter solver or the Internal engine's incremental
	// solver, and each portfolio worker) for live progress sampling
	// while CheckContext runs. The Monitor must be private to this run.
	Monitor *portfolio.Monitor
}

// Result reports an equivalence check.
type Result struct {
	// Equivalent is valid only when Status is Sat/Unsat-decided (i.e.
	// Decided is true).
	Equivalent bool
	// Decided is false if a budget was exhausted.
	Decided bool
	// Counterexample is an input assignment (ordered like a.Inputs)
	// distinguishing the circuits, when not equivalent.
	Counterexample []bool
	// Candidates / Proven count internal equivalence candidates and how
	// many were proven (Internal mode only).
	Candidates, Proven int
	SATCalls           int
	Conflicts          int64
	// Recipe names the winning portfolio recipe when the miter was
	// decided by a portfolio ("" for the sequential engines).
	Recipe string
}

// BuildMiter combines two circuits over shared inputs and returns the
// miter circuit and its single output (1 iff some output pair differs).
// Inputs are matched by name when all names coincide, else by position;
// outputs are matched by position.
func BuildMiter(a, b *circuit.Circuit) (*circuit.Circuit, circuit.NodeID, error) {
	if len(a.Inputs) != len(b.Inputs) {
		return nil, 0, fmt.Errorf("cec: input counts differ (%d vs %d)", len(a.Inputs), len(b.Inputs))
	}
	if len(a.Outputs) != len(b.Outputs) {
		return nil, 0, fmt.Errorf("cec: output counts differ (%d vs %d)", len(a.Outputs), len(b.Outputs))
	}
	m := circuit.New()
	mapA := make([]circuit.NodeID, len(a.Nodes))
	mapB := make([]circuit.NodeID, len(b.Nodes))

	// Shared inputs.
	byName := true
	for _, in := range a.Inputs {
		if b.NodeByName(a.Name(in)) == circuit.NoNode {
			byName = false
			break
		}
	}
	for i, in := range a.Inputs {
		id := m.AddInput("in_" + a.Name(in))
		mapA[in] = id
		if byName {
			mapB[b.NodeByName(a.Name(in))] = id
		} else {
			mapB[b.Inputs[i]] = id
		}
	}
	copyGates := func(src *circuit.Circuit, mp []circuit.NodeID, tag string) {
		for i := range src.Nodes {
			n := &src.Nodes[i]
			switch n.Type {
			case circuit.Input:
				continue
			case circuit.Const0, circuit.Const1:
				mp[i] = m.AddConst(n.Type == circuit.Const1, tag+n.Name)
				continue
			}
			fanin := make([]circuit.NodeID, len(n.Fanin))
			for j, f := range n.Fanin {
				fanin[j] = mp[f]
			}
			mp[i] = m.AddGate(n.Type, tag+n.Name, fanin...)
		}
	}
	copyGates(a, mapA, "A_")
	copyGates(b, mapB, "B_")

	diffs := make([]circuit.NodeID, len(a.Outputs))
	for i := range a.Outputs {
		diffs[i] = m.AddGate(circuit.Xor, fmt.Sprintf("diff%d", i), mapA[a.Outputs[i]], mapB[b.Outputs[i]])
	}
	var out circuit.NodeID
	if len(diffs) == 1 {
		out = m.AddGate(circuit.Buf, "miter", diffs[0])
	} else {
		out = m.AddGate(circuit.Or, "miter", diffs...)
	}
	m.MarkOutput(out)
	return m, out, nil
}

// Check decides whether a and b are combinationally equivalent.
func Check(a, b *circuit.Circuit, opts Options) (*Result, error) {
	return CheckContext(context.Background(), a, b, opts)
}

// CheckContext is Check under a context: cancelling ctx interrupts the
// SAT queries cooperatively and the run returns with Decided false.
func CheckContext(ctx context.Context, a, b *circuit.Circuit, opts Options) (*Result, error) {
	if opts.Internal {
		return checkInternal(ctx, a, b, opts)
	}
	return checkPlain(ctx, a, b, opts)
}

func checkPlain(ctx context.Context, a, b *circuit.Circuit, opts Options) (*Result, error) {
	m, out, err := BuildMiter(a, b)
	if err != nil {
		return nil, err
	}
	if opts.Strash {
		s := circuit.Strash(m)
		out = s.Outputs[0]
		m = s
	}
	f, enc := circuit.EncodeProperty(m, out, true)
	sopts := opts.Solver
	sopts.MaxConflicts = opts.MaxConflicts
	res := &Result{SATCalls: 1}
	// Decide the miter with whichever engine is configured; the
	// verdict→Result mapping below is shared by both branches.
	var verdict solver.Status
	var model cnf.Assignment
	if opts.PortfolioWorkers > 1 {
		pres := portfolio.Solve(ctx, f, portfolio.Options{
			Workers:      opts.PortfolioWorkers,
			Base:         sopts,
			Seed:         opts.Seed,
			Monitor:      opts.Monitor,
			PreferRecipe: opts.PreferRecipe,
			Adaptive:     opts.PortfolioAdaptive,
		})
		verdict, model = pres.Status, pres.Model
		res.Recipe = pres.Recipe
		for _, w := range pres.Workers {
			res.Conflicts += w.Stats.Conflicts
		}
	} else {
		s := solver.FromFormula(f, sopts)
		stopWatch := context.AfterFunc(ctx, s.Interrupt)
		defer stopWatch()
		detach := opts.Monitor.Attach(0, 0, "cec-miter", s)
		defer detach("")
		verdict = s.Solve()
		model = s.Model()
		res.Conflicts = s.Stats.Conflicts
	}
	switch verdict {
	case solver.Unsat:
		res.Equivalent = true
		res.Decided = true
	case solver.Sat:
		res.Decided = true
		res.Counterexample = extractInputs(m, enc, model)
	}
	return res, nil
}

func extractInputs(m *circuit.Circuit, enc *circuit.Encoding, model cnf.Assignment) []bool {
	out := make([]bool, len(m.Inputs))
	for i, id := range m.Inputs {
		out[i] = model.Value(enc.VarOf[id]) == cnf.True
	}
	return out
}

// checkInternal implements the simulation-guided engine.
func checkInternal(ctx context.Context, a, b *circuit.Circuit, opts Options) (*Result, error) {
	if opts.SimWords == 0 {
		opts.SimWords = 4
	}
	m, out, err := BuildMiter(a, b)
	if err != nil {
		return nil, err
	}
	res := &Result{}

	// Random simulation signatures over the combined circuit.
	rng := rand.New(rand.NewSource(opts.Seed))
	sigs := make([][]uint64, len(m.Nodes))
	for w := 0; w < opts.SimWords; w++ {
		in := make([]uint64, len(m.Inputs))
		for i := range in {
			in[i] = rng.Uint64()
		}
		vals := m.Simulate(in)
		for n, v := range vals {
			sigs[n] = append(sigs[n], v)
		}
	}
	key := func(n int) string {
		s := ""
		for _, w := range sigs[n] {
			s += fmt.Sprintf("%016x.", w)
		}
		return s
	}
	classes := make(map[string][]circuit.NodeID)
	levels := m.Levels()
	for n := range m.Nodes {
		if m.Nodes[n].Type == circuit.Input {
			continue
		}
		classes[key(n)] = append(classes[key(n)], circuit.NodeID(n))
	}

	// Candidate pairs: adjacent members of each signature class, proved
	// shallow-first so proven equivalences help deeper queries.
	type pair struct{ u, v circuit.NodeID }
	var pairs []pair
	for _, cls := range classes {
		if len(cls) < 2 {
			continue
		}
		sort.Slice(cls, func(i, j int) bool { return levels[cls[i]] < levels[cls[j]] })
		for i := 1; i < len(cls); i++ {
			pairs = append(pairs, pair{cls[0], cls[i]})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		li := levels[pairs[i].u] + levels[pairs[i].v]
		lj := levels[pairs[j].u] + levels[pairs[j].v]
		if li != lj {
			return li < lj
		}
		return pairs[i].v < pairs[j].v
	})
	res.Candidates = len(pairs)

	enc := circuit.Encode(m)
	sopts := opts.Solver
	sopts.MaxConflicts = opts.MaxConflicts
	s := solver.FromFormula(enc.F, sopts)
	stopWatch := context.AfterFunc(ctx, s.Interrupt)
	defer stopWatch()
	detach := opts.Monitor.Attach(0, 0, "cec-internal", s)
	defer detach("")

	// Prove candidates: u≠v is queried by assuming a fresh XOR output.
	for _, p := range pairs {
		d := s.NewVar()
		scratch := cnf.New(s.NumVars())
		circuit.AppendGateCNF(scratch, circuit.Xor, d, []cnf.Var{enc.VarOf[p.u], enc.VarOf[p.v]})
		for s.NumVars() < scratch.NumVars() {
			s.NewVar()
		}
		for _, cl := range scratch.Clauses {
			s.AddClause(cl)
		}
		res.SATCalls++
		switch s.Solve(cnf.PosLit(d)) {
		case solver.Unsat:
			// Proven equivalent: assert it permanently.
			s.AddClause(cnf.Clause{cnf.NegLit(d)})
			res.Proven++
		case solver.Sat:
			// Not equivalent; leave d free.
		default:
			// Budget exhausted on a candidate: harmless, skip.
		}
	}

	// Final output check.
	res.SATCalls++
	switch s.Solve(cnf.PosLit(enc.VarOf[out])) {
	case solver.Unsat:
		res.Equivalent = true
		res.Decided = true
	case solver.Sat:
		res.Decided = true
		res.Counterexample = extractInputs(m, enc, s.Model())
	}
	res.Conflicts = s.Stats.Conflicts
	return res, nil
}

// VerifyCounterexample checks that the returned input vector really
// distinguishes the two circuits (inputs matched as in BuildMiter).
func VerifyCounterexample(a, b *circuit.Circuit, ce []bool) bool {
	av := a.SimulateBool(ce)
	// Match inputs by name when possible, mirroring BuildMiter.
	byName := true
	for _, in := range a.Inputs {
		if b.NodeByName(a.Name(in)) == circuit.NoNode {
			byName = false
			break
		}
	}
	bIn := make([]bool, len(b.Inputs))
	if byName {
		pos := make(map[circuit.NodeID]int)
		for i, id := range b.Inputs {
			pos[id] = i
		}
		for i, id := range a.Inputs {
			bIn[pos[b.NodeByName(a.Name(id))]] = ce[i]
		}
	} else {
		copy(bIn, ce)
	}
	bv := b.SimulateBool(bIn)
	for i := range a.Outputs {
		if av[a.Outputs[i]] != bv[b.Outputs[i]] {
			return true
		}
	}
	return false
}
