// Package dpll implements the classic Davis–Logemann–Loveland backtrack
// search procedure [paper ref 11]: chronological backtracking, unit
// propagation, optional pure-literal elimination, and no clause
// recording. It is the historical baseline against which the modern
// techniques of §4.1 are measured, and doubles as a reference solver in
// the test suite.
package dpll

import "repro/internal/cnf"

// Options configures the DPLL baseline.
type Options struct {
	// PureLiterals enables the pure-literal rule.
	PureLiterals bool
	// MaxDecisions bounds the search (0 = unlimited).
	MaxDecisions int64
}

// Stats reports search effort.
type Stats struct {
	Decisions    int64
	Propagations int64
	Backtracks   int64
}

// Result is the outcome of a DPLL run.
type Result struct {
	Sat     bool
	Unknown bool // budget exhausted
	Model   cnf.Assignment
	Stats   Stats
}

type dpll struct {
	f      *cnf.Formula
	assign cnf.Assignment
	opts   Options
	stats  Stats
	occ    [][]int // clause indices by literal index
}

// Solve runs DPLL on f.
func Solve(f *cnf.Formula, opts Options) Result {
	d := &dpll{
		f:      f,
		assign: cnf.NewAssignment(f.NumVars()),
		opts:   opts,
		occ:    make([][]int, 2*(f.NumVars()+1)),
	}
	for i, c := range f.Clauses {
		if len(c) == 0 {
			return Result{Sat: false}
		}
		for _, l := range c {
			d.occ[l.Index()] = append(d.occ[l.Index()], i)
		}
	}
	sat, unknown := d.search()
	res := Result{Sat: sat, Unknown: unknown, Stats: d.stats}
	if sat {
		res.Model = d.assign.Clone()
	}
	return res
}

// search returns (sat, budgetExhausted).
func (d *dpll) search() (bool, bool) {
	trail, conflict := d.propagate()
	if conflict {
		d.undo(trail)
		d.stats.Backtracks++
		return false, false
	}
	if d.opts.PureLiterals {
		pure := d.pureLiterals()
		for _, l := range pure {
			if d.assign.LitValue(l) == cnf.Undef {
				d.assign.Assign(l)
				trail = append(trail, l)
			}
		}
	}
	v := d.pickVar()
	if v == cnf.VarUndef {
		// All variables assigned (or all clauses satisfied).
		ok := d.assign.Eval(d.f) == cnf.True
		if !ok {
			d.undo(trail)
			d.stats.Backtracks++
		}
		return ok, false
	}
	if d.opts.MaxDecisions > 0 && d.stats.Decisions >= d.opts.MaxDecisions {
		d.undo(trail)
		return false, true
	}
	d.stats.Decisions++
	for _, phase := range []bool{false, true} {
		l := cnf.NewLit(v, phase)
		d.assign.Assign(l)
		sat, unknown := d.search()
		if sat || unknown {
			return sat, unknown
		}
		d.assign.Unassign(l)
	}
	d.undo(trail)
	d.stats.Backtracks++
	return false, false
}

// propagate applies the unit clause rule to fixpoint. It returns the
// literals assigned and whether a clause became unsatisfied.
func (d *dpll) propagate() ([]cnf.Lit, bool) {
	var trail []cnf.Lit
	for {
		progress := false
		for _, c := range d.f.Clauses {
			var unit cnf.Lit
			unassigned := 0
			satisfied := false
			for _, l := range c {
				switch d.assign.LitValue(l) {
				case cnf.True:
					satisfied = true
				case cnf.Undef:
					unassigned++
					unit = l
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			switch unassigned {
			case 0:
				return trail, true // conflict
			case 1:
				d.assign.Assign(unit)
				trail = append(trail, unit)
				d.stats.Propagations++
				progress = true
			}
		}
		if !progress {
			return trail, false
		}
	}
}

// pureLiterals returns literals whose complement does not occur in any
// unresolved clause.
func (d *dpll) pureLiterals() []cnf.Lit {
	var pure []cnf.Lit
	for v := cnf.Var(1); int(v) <= d.f.NumVars(); v++ {
		if d.assign.Value(v) != cnf.Undef {
			continue
		}
		posLive := d.liveOcc(cnf.PosLit(v))
		negLive := d.liveOcc(cnf.NegLit(v))
		if posLive && !negLive {
			pure = append(pure, cnf.PosLit(v))
		} else if negLive && !posLive {
			pure = append(pure, cnf.NegLit(v))
		}
	}
	return pure
}

func (d *dpll) liveOcc(l cnf.Lit) bool {
	for _, ci := range d.occ[l.Index()] {
		if d.assign.EvalClause(d.f.Clauses[ci]) == cnf.Undef {
			return true
		}
	}
	return false
}

func (d *dpll) pickVar() cnf.Var {
	for v := cnf.Var(1); int(v) <= d.f.NumVars(); v++ {
		if d.assign.Value(v) == cnf.Undef {
			return v
		}
	}
	return cnf.VarUndef
}

func (d *dpll) undo(trail []cnf.Lit) {
	for _, l := range trail {
		d.assign.Unassign(l)
	}
}
