package dpll

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
)

func TestAgainstBruteForce(t *testing.T) {
	for _, opts := range []Options{{}, {PureLiterals: true}} {
		for seed := int64(0); seed < 40; seed++ {
			nv := 4 + int(seed%5)
			f := gen.RandomKSAT(nv, nv*4, 3, seed)
			want, _ := cnf.BruteForce(f)
			res := Solve(f, opts)
			if res.Unknown {
				t.Fatalf("seed %d: unexpected Unknown", seed)
			}
			if res.Sat != want {
				t.Fatalf("seed %d: dpll=%v brute=%v (opts %+v)", seed, res.Sat, want, opts)
			}
			if res.Sat && !res.Model.Satisfies(f) {
				t.Fatalf("seed %d: bad model", seed)
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	res := Solve(gen.Pigeonhole(3), Options{})
	if res.Sat || res.Unknown {
		t.Fatal("PHP(3) must be UNSAT")
	}
	if res.Stats.Backtracks == 0 {
		t.Fatal("expected backtracks")
	}
}

func TestEmptyClause(t *testing.T) {
	f := cnf.New(1)
	f.AddClause(cnf.Clause{})
	if Solve(f, Options{}).Sat {
		t.Fatal("formula with empty clause must be UNSAT")
	}
}

func TestDecisionBudget(t *testing.T) {
	res := Solve(gen.Pigeonhole(6), Options{MaxDecisions: 3})
	if !res.Unknown {
		t.Fatal("expected Unknown under budget")
	}
}

func TestPureLiteralRule(t *testing.T) {
	// x3 occurs only positively: pure-literal assignment satisfies both
	// clauses without branching on x3's clauses.
	f := cnf.New(3)
	f.AddDIMACS(1, 3)
	f.AddDIMACS(-1, 3)
	res := Solve(f, Options{PureLiterals: true})
	if !res.Sat || res.Model.Value(3) != cnf.True {
		t.Fatal("pure literal should set x3 true")
	}
}
