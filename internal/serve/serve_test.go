package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/portfolio"
)

// --- test fixtures -------------------------------------------------------

// dimacsSpec renders f as a DIMACS job spec.
func dimacsSpec(f *cnf.Formula) Spec {
	return Spec{Kind: KindDIMACS, DIMACS: cnf.DIMACSString(f)}
}

// satSpec / unsatSpec build small parity formulas with a known verdict;
// the seed diversifies the formula so distinct seeds are distinct jobs.
func satSpec(n int, seed int64) Spec   { return dimacsSpec(gen.XorChain(n, false, seed)) }
func unsatSpec(n int, seed int64) Spec { return dimacsSpec(gen.XorChain(n, true, seed)) }

// blockerSpec is a job guaranteed to still be solving when the test
// gets around to poking it: a pigeonhole instance far beyond the
// deadline horizon of any test.
func blockerSpec() Spec {
	sp := dimacsSpec(gen.Pigeonhole(10))
	sp.TimeoutMS = int64(5 * time.Minute / time.Millisecond)
	sp.NoCache = true
	return sp
}

// nandAdder returns a functionally identical but structurally different
// ripple-carry adder (carry via NAND-NAND), sharing input names with
// circuit.RippleCarryAdder — the classic CEC-positive pair.
func nandAdder(n int) *circuit.Circuit {
	c := circuit.New()
	as := make([]circuit.NodeID, n)
	bs := make([]circuit.NodeID, n)
	for i := 0; i < n; i++ {
		as[i] = c.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = c.AddInput(fmt.Sprintf("b%d", i))
	}
	carry := c.AddInput("cin")
	for i := 0; i < n; i++ {
		axb := c.AddGate(circuit.Xor, fmt.Sprintf("x%d", i), as[i], bs[i])
		s := c.AddGate(circuit.Xor, fmt.Sprintf("s%d", i), axb, carry)
		c.MarkOutput(s)
		n1 := c.AddGate(circuit.Nand, fmt.Sprintf("n1_%d", i), as[i], bs[i])
		n2 := c.AddGate(circuit.Nand, fmt.Sprintf("n2_%d", i), axb, carry)
		carry = c.AddGate(circuit.Nand, fmt.Sprintf("c%d", i), n1, n2)
	}
	c.MarkOutput(carry)
	return c
}

func benchText(t testing.TB, c *circuit.Circuit) string {
	t.Helper()
	s, err := circuit.BenchString(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func cecSpec(t testing.TB, equivalent bool) Spec {
	t.Helper()
	a := circuit.RippleCarryAdder(3)
	b := nandAdder(3)
	if !equivalent {
		// Flip one gate to break equivalence.
		for i := range b.Nodes {
			if b.Nodes[i].Type == circuit.Nand {
				b.Nodes[i].Type = circuit.And
				break
			}
		}
	}
	return Spec{Kind: KindCEC, Left: benchText(t, a), Right: benchText(t, b)}
}

// counterBench is a 3-bit binary counter in .bench form: latches reset
// to 0, bad fires when the count reaches 7 — so the shortest violation
// has depth exactly 7.
const counterBench = `
OUTPUT(bad)
q0 = DFF(d0)
q1 = DFF(d1)
q2 = DFF(d2)
d0 = NOT(q0)
d1 = XOR(q1, q0)
c2 = AND(q0, q1)
d2 = XOR(q2, c2)
bad = AND(q0, q1, q2)
`

func bmcSpec(depth int) Spec {
	return Spec{Kind: KindBMC, Model: counterBench, Depth: depth}
}

// waitStatus polls until the job reaches want (or t fails).
func waitStatus(t *testing.T, j *Job, want Status) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j.Status() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", j.ID, j.Status(), want)
}

func mustResult(t *testing.T, j *Job) Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job %s: %v", j.ID, err)
	}
	return res
}

// --- acceptance-criteria tests ------------------------------------------

// TestServeStressMixedKinds is the headline stress test: ≥32 concurrent
// jobs across all three kinds complete under -race with the correct
// verdicts.
func TestServeStressMixedKinds(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 4, MaxRunning: 4, QueueDepth: 128})
	defer s.Close()

	type want struct {
		spec    Spec
		verdict string
	}
	var cases []want
	for seed := int64(0); seed < 8; seed++ {
		cases = append(cases,
			want{satSpec(10, seed), "SAT"},
			want{unsatSpec(10, seed), "UNSAT"},
		)
	}
	for i := 0; i < 6; i++ {
		cases = append(cases,
			want{cecSpec(t, true), "EQUIVALENT"},
			want{cecSpec(t, false), "NOT_EQUIVALENT"},
		)
	}
	for i := 0; i < 2; i++ {
		cases = append(cases,
			want{bmcSpec(8), "VIOLATED"},
			want{bmcSpec(5), "SAFE"},
		)
	}
	if len(cases) < 32 {
		t.Fatalf("only %d cases, want ≥ 32", len(cases))
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(cases))
	for i, c := range cases {
		wg.Add(1)
		go func(i int, c want) {
			defer wg.Done()
			j, err := s.Submit(c.spec)
			if err != nil {
				errs <- fmt.Errorf("case %d: submit: %v", i, err)
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
			defer cancel()
			res, err := j.Wait(ctx)
			if err != nil {
				errs <- fmt.Errorf("case %d: wait: %v", i, err)
				return
			}
			if res.Verdict != c.verdict {
				errs <- fmt.Errorf("case %d (%s): verdict %s, want %s", i, c.spec.Kind, res.Verdict, c.verdict)
			}
		}(i, c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.Stats()
	if st.Submitted != int64(len(cases)) {
		t.Errorf("submitted %d, want %d", st.Submitted, len(cases))
	}
	if st.Completed != int64(len(cases)) {
		t.Errorf("completed %d, want %d", st.Completed, len(cases))
	}
	if st.Running != 0 || st.QueueDepth != 0 {
		t.Errorf("occupancy after drain: running %d queue %d", st.Running, st.QueueDepth)
	}
}

// TestSingleflightCoalesce proves the coalescing invariant: identical
// concurrent formulas are solved ONCE and the result fans out — asserted
// through the Solves/Coalesced/CacheHits counters.
func TestSingleflightCoalesce(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 1, QueueDepth: 16})
	defer s.Close()

	// Occupy the only executor so the identical submissions pile up
	// behind a queued leader.
	blocker, err := s.Submit(blockerSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, blocker, StatusRunning)

	// The same formula, serialized with permuted clause order per copy:
	// the canonical fingerprint must see through the permutation.
	f := gen.XorChain(10, true, 42)
	perm := f.Clone()
	perm.Clauses[0], perm.Clauses[len(perm.Clauses)-1] = perm.Clauses[len(perm.Clauses)-1], perm.Clauses[0]
	jobs := make([]*Job, 0, 10)
	for i := 0; i < 10; i++ {
		src := f
		if i%2 == 1 {
			src = perm
		}
		j, err := s.Submit(dimacsSpec(src))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	blocker.Cancel()
	for _, j := range jobs {
		if res := mustResult(t, j); res.Verdict != "UNSAT" {
			t.Fatalf("job %s: verdict %s, want UNSAT", j.ID, res.Verdict)
		}
	}
	coalescedSeen := 0
	for _, j := range jobs {
		if res, _ := j.Result(); res.Coalesced {
			coalescedSeen++
		}
	}
	st := s.Stats()
	if st.Solves != 2 { // the blocker + exactly one leader for all 10
		t.Errorf("solves %d, want 2 (identical formulas must coalesce)", st.Solves)
	}
	if st.Coalesced != 9 || coalescedSeen != 9 {
		t.Errorf("coalesced counter %d / marked results %d, want 9 / 9", st.Coalesced, coalescedSeen)
	}

	// A later identical submission is a cache hit: no new solve.
	j, err := s.Submit(dimacsSpec(perm))
	if err != nil {
		t.Fatal(err)
	}
	res := mustResult(t, j)
	if !res.Cached || res.Verdict != "UNSAT" {
		t.Fatalf("resubmission: cached=%v verdict=%s, want cached UNSAT", res.Cached, res.Verdict)
	}
	st = s.Stats()
	if st.CacheHits != 1 || st.Solves != 2 {
		t.Errorf("cache hits %d solves %d, want 1 and still 2", st.CacheHits, st.Solves)
	}
}

// TestQueueFullSheds pins load shedding: a full queue rejects with
// ErrQueueFull instead of blocking the submitter.
func TestQueueFullSheds(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 1, MaxRunning: 1, QueueDepth: 1})
	defer s.Close()

	blocker, err := s.Submit(blockerSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, blocker, StatusRunning)

	// Fills the single queue slot.
	queued, err := s.Submit(satSpec(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Next distinct submission must shed, promptly.
	start := time.Now()
	_, err = s.Submit(satSpec(10, 2))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shedding took %v; it must not block", d)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Errorf("shed counter %d, want 1", st.Shed)
	}
	// An identical copy of the QUEUED job still coalesces — coalescing
	// consumes no queue slot, so it is not shed.
	co, err := s.Submit(satSpec(10, 1))
	if err != nil {
		t.Fatalf("coalescing submit shed: %v", err)
	}

	blocker.Cancel()
	if res := mustResult(t, queued); res.Verdict != "SAT" {
		t.Fatalf("queued job verdict %s, want SAT", res.Verdict)
	}
	if res := mustResult(t, co); !res.Coalesced || res.Verdict != "SAT" {
		t.Fatalf("coalesced job: %+v, want coalesced SAT", res)
	}
}

// TestCancelMidFlight pins cooperative cancellation of a RUNNING job.
func TestCancelMidFlight(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 1})
	defer s.Close()

	j, err := s.Submit(blockerSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, StatusRunning)
	if !s.Cancel(j.ID) {
		t.Fatal("Cancel should know the job")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := j.Wait(ctx); !errors.Is(err, ErrCancelled) {
		t.Fatalf("wait err = %v, want ErrCancelled", err)
	}
	if st := j.Status(); st != StatusCancelled {
		t.Fatalf("status %s, want cancelled", st)
	}
	if st := s.Stats(); st.Cancelled != 1 {
		t.Errorf("cancelled counter %d, want 1", st.Cancelled)
	}
}

// TestShutdownNoGoroutineLeaks closes a busy scheduler and checks every
// goroutine it started has exited.
func TestShutdownNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, QueueDepth: 8})
	running, err := s.Submit(blockerSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, running, StatusRunning)
	var rest []*Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit(satSpec(10, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		rest = append(rest, j)
	}
	s.Close()

	// Every job must have reached a terminal state.
	for _, j := range append(rest, running) {
		switch j.Status() {
		case StatusDone, StatusCancelled, StatusFailed:
		default:
			t.Errorf("job %s left in %s after Close", j.ID, j.Status())
		}
	}
	// Goroutines drain back to (about) the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after shutdown", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if _, err := s.Submit(satSpec(10, 99)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: %v, want ErrClosed", err)
	}
}

// TestRecipeMemorySeedsNextJob pins the cross-run memory: a decided
// portfolio win records its recipe family for the instance class, and
// the next job of the same class is seeded with it (visible as
// Result.Preferred).
func TestRecipeMemorySeedsNextJob(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 1})
	defer s.Close()

	first := satSpec(14, 5)
	first.Workers = 2 // portfolio ⇒ a winning recipe is reported
	j1, err := s.Submit(first)
	if err != nil {
		t.Fatal(err)
	}
	r1 := mustResult(t, j1)
	if r1.Recipe == "" {
		t.Fatal("portfolio job should report a winning recipe")
	}
	family := portfolio.RecipeFamily(r1.Recipe)
	want := family
	if family == "base" {
		// Base wins are deliberately not recorded (the portfolio runs
		// base permanently on worker 0, so "prefer base" is no hint).
		want = ""
	}

	// Same class (same var magnitude and density), different formula.
	second := satSpec(14, 6)
	second.Workers = 2
	j2, err := s.Submit(second)
	if err != nil {
		t.Fatal(err)
	}
	r2 := mustResult(t, j2)
	if r2.Preferred != want {
		t.Fatalf("second job preferred %q, want remembered family %q", r2.Preferred, want)
	}

	// The memory path itself, independent of which recipe happens to
	// win the race above: a recorded diversified family seeds the next
	// same-class job.
	s.mem.record("dimacs/v4/r40", "keepall")
	if got := s.mem.best("dimacs/v4/r40"); got != "keepall" {
		t.Fatalf("recorded family not retrievable: %q", got)
	}
}

// TestBadSpecRejected covers validation of each kind.
func TestBadSpecRejected(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 1, MaxRunning: 1})
	defer s.Close()
	for _, sp := range []Spec{
		{Kind: "nope"},
		{Kind: KindDIMACS, DIMACS: "p cnf x\n"},
		{Kind: KindDIMACS},
		{Kind: KindCEC, Left: "INPUT(a)\nOUTPUT(a)\n", Right: "???"},
		{Kind: KindBMC, Model: counterBench, Depth: -1},
	} {
		if _, err := s.Submit(sp); !errors.Is(err, ErrBadJob) {
			t.Errorf("spec %+v: err %v, want ErrBadJob", sp.Kind, err)
		}
	}
}

// TestDeadlineYieldsUnknown: a tiny deadline on a hard instance ends
// decided=false rather than hanging or cancelling.
func TestDeadlineYieldsUnknown(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 1, MaxRunning: 1})
	defer s.Close()
	sp := dimacsSpec(gen.Pigeonhole(10))
	sp.TimeoutMS = 50
	j, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	res := mustResult(t, j)
	if res.Decided || res.Verdict != "UNKNOWN" {
		t.Fatalf("result %+v, want undecided UNKNOWN", res)
	}
	// Undecided results must not poison the cache.
	if st := s.Stats(); st.CacheEntries != 0 {
		t.Errorf("cache entries %d after UNKNOWN, want 0", st.CacheEntries)
	}
}

// TestFairShareClamp: with the fleet busy, a greedy worker request is
// clamped to the fair share.
func TestFairShareClamp(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 4, MaxRunning: 2})
	defer s.Close()

	blocker, err := s.Submit(blockerSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, blocker, StatusRunning)

	greedy := satSpec(10, 3)
	greedy.Workers = 64
	j, err := s.Submit(greedy)
	if err != nil {
		t.Fatal(err)
	}
	res := mustResult(t, j)
	// The blocker arrived on an idle fleet and was granted the whole
	// budget of 4; the greedy job's 64-worker request is clamped to
	// what the debit ledger has left — the one-worker floor — so the
	// fleet total (5) never exceeds budget + (MaxRunning-1).
	if res.Workers != 1 {
		t.Fatalf("granted %d workers, want the floor of 1 (budget committed)", res.Workers)
	}
	blocker.Cancel()
	<-blocker.Done()

	// With the budget released, a fresh job on the now-idle fleet gets
	// the whole budget again.
	late := satSpec(10, 4)
	late.Workers = 64
	j2, err := s.Submit(late)
	if err != nil {
		t.Fatal(err)
	}
	if res := mustResult(t, j2); res.Workers != 4 {
		t.Fatalf("granted %d workers after release, want the full budget of 4", res.Workers)
	}
}

// TestProgressSampling: a running job exposes live progress through its
// monitor; a finished job does not.
func TestProgressSampling(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 1})
	defer s.Close()

	j, err := s.Submit(blockerSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, StatusRunning)
	var pv *ProgressView
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		pv = j.Progress()
		if pv != nil && pv.Conflicts > 0 && len(pv.Workers) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if pv == nil || pv.Conflicts == 0 || len(pv.Workers) == 0 {
		t.Fatalf("no live progress observed: %+v", pv)
	}
	j.Cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	j.Wait(ctx) //nolint:errcheck // cancelled is expected
	if j.Progress() != nil {
		t.Fatal("finished job should not report progress")
	}
}

// TestResultCacheLRU covers the cache in isolation: eviction order and
// copy semantics.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	k := func(b byte) jobKey { var k jobKey; k[0] = b; return k }
	c.put(k(1), Result{Verdict: "SAT"})
	c.put(k(2), Result{Verdict: "UNSAT"})
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 should be present")
	}
	c.put(k(3), Result{Verdict: "SAT"}) // evicts k2 (k1 was just used)
	if _, ok := c.get(k(2)); ok {
		t.Fatal("k2 should have been evicted")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 should have survived")
	}
	r, _ := c.get(k(3))
	r.Verdict = "mutated"
	if r2, _ := c.get(k(3)); r2.Verdict != "SAT" {
		t.Fatal("cache must hand out copies")
	}
}

// TestRecipeMemoryTable covers the memory in isolation.
func TestRecipeMemoryTable(t *testing.T) {
	m := newRecipeMemory(2)
	if got := m.best("c1"); got != "" {
		t.Fatalf("empty memory best = %q", got)
	}
	m.record("c1", "luby-agile")
	m.record("c1", "geometric")
	m.record("c1", "geometric")
	if got := m.best("c1"); got != "geometric" {
		t.Fatalf("best = %q, want geometric", got)
	}
	m.record("c2", "base")
	m.record("c3", "keepall") // evicts c1 (capacity 2, FIFO)
	if got := m.best("c1"); got != "" {
		t.Fatalf("evicted class best = %q, want \"\"", got)
	}
	if got := m.best("c3"); got != "keepall" {
		t.Fatalf("best(c3) = %q, want keepall", got)
	}
}

// TestFollowerNotBoundByLeaderBudget pins the singleflight budget rule:
// the job key identifies only the formula, so a follower with a larger
// budget must not inherit an UNKNOWN the leader earned by exhausting
// its own tiny budget — it re-enters the queue and solves for real.
func TestFollowerNotBoundByLeaderBudget(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 1, MaxRunning: 1, QueueDepth: 8})
	defer s.Close()

	blocker, err := s.Submit(blockerSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, blocker, StatusRunning)

	f := gen.Pigeonhole(6) // needs more than 1 conflict, decides quickly
	lead := dimacsSpec(f)
	lead.MaxConflicts = 1 // guaranteed UNKNOWN
	leader, err := s.Submit(lead)
	if err != nil {
		t.Fatal(err)
	}
	follow := dimacsSpec(f) // same key, unlimited budget
	follower, err := s.Submit(follow)
	if err != nil {
		t.Fatal(err)
	}
	blocker.Cancel()

	if res := mustResult(t, leader); res.Decided {
		t.Fatalf("leader with 1-conflict budget decided: %+v", res)
	}
	res := mustResult(t, follower)
	if !res.Decided || res.Verdict != "UNSAT" {
		t.Fatalf("follower inherited the leader's budgeted UNKNOWN: %+v", res)
	}
	if res.Coalesced {
		t.Error("a re-solved follower should not be marked coalesced")
	}
	// The decided re-solve is cached; the UNKNOWN was not.
	j, err := s.Submit(dimacsSpec(f))
	if err != nil {
		t.Fatal(err)
	}
	if res := mustResult(t, j); !res.Cached || res.Verdict != "UNSAT" {
		t.Fatalf("resubmission after re-solve: %+v, want cached UNSAT", res)
	}
}

// TestResultDeepCopy pins the "caller owns every field" contract:
// mutating a returned model must not corrupt the cache.
func TestResultDeepCopy(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 1, MaxRunning: 1})
	defer s.Close()

	sp := satSpec(10, 1)
	j, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	res := mustResult(t, j)
	if len(res.Model) == 0 {
		t.Fatal("expected a model")
	}
	want := res.Model[0]
	res.Model[0] = -want // caller scribbles on its copy

	j2, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	res2 := mustResult(t, j2)
	if !res2.Cached {
		t.Fatal("second submission should hit the cache")
	}
	if res2.Model[0] != want {
		t.Fatalf("cache entry corrupted through a returned result: model[0] = %d, want %d", res2.Model[0], want)
	}
}

// TestCancelledLeaderDoesNotCancelFollower pins follower promotion: one
// client cancelling its job must not cancel another client's identical
// job — the follower takes over as the key's new leader.
func TestCancelledLeaderDoesNotCancelFollower(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 1, MaxRunning: 1, QueueDepth: 8})
	defer s.Close()

	blocker, err := s.Submit(blockerSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, blocker, StatusRunning)

	f := gen.XorChain(10, true, 77)
	leader, err := s.Submit(dimacsSpec(f))
	if err != nil {
		t.Fatal(err)
	}
	follower, err := s.Submit(dimacsSpec(f))
	if err != nil {
		t.Fatal(err)
	}
	leader.Cancel()
	blocker.Cancel()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := leader.Wait(ctx); !errors.Is(err, ErrCancelled) {
		t.Fatalf("leader wait: %v, want ErrCancelled", err)
	}
	res := mustResult(t, follower)
	if !res.Decided || res.Verdict != "UNSAT" {
		t.Fatalf("follower inherited the leader's cancel: %+v, want UNSAT", res)
	}
}

// TestFollowerDeadlineWhileCoalesced pins the lifetime-deadline
// contract: a short-deadline job coalesced behind a slower identical
// leader answers UNKNOWN within its own budget instead of blocking for
// the leader's.
func TestFollowerDeadlineWhileCoalesced(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 1, MaxRunning: 1, QueueDepth: 8})
	defer s.Close()

	blocker, err := s.Submit(blockerSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, blocker, StatusRunning)

	f := gen.Pigeonhole(9) // hard; nobody solves it in this test
	lead := dimacsSpec(f)
	lead.TimeoutMS = int64(2 * time.Minute / time.Millisecond)
	leader, err := s.Submit(lead)
	if err != nil {
		t.Fatal(err)
	}
	short := dimacsSpec(f)
	short.TimeoutMS = 100
	follower, err := s.Submit(short)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res := mustResult(t, follower)
	if res.Decided || res.Verdict != "UNKNOWN" {
		t.Fatalf("short-deadline follower: %+v, want undecided UNKNOWN", res)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("follower took %v; its 100ms deadline must not wait on the leader", d)
	}
	leader.Cancel()
	blocker.Cancel()
}
