// Package serve is the SAT-as-a-service layer: a concurrent solve
// scheduler that multiplexes a bounded CPU budget across many
// heterogeneous jobs, fronted by cmd/satserved's HTTP API. The paper
// frames SAT as the shared engine behind many EDA workloads
// (equivalence checking, ATPG, BMC, routing); operationally that means
// one solver fleet serving many concurrent queries, which is exactly
// what this package implements on top of the repository's engines:
//
//   - a job scheduler with fair-share admission: a bounded queue that
//     sheds (ErrQueueFull → HTTP 429) instead of blocking when full,
//     per-job deadlines and conflict budgets, cooperative cancellation
//     through core.SolveContext / cec.CheckContext / bmc.CheckContext,
//     and per-job portfolio sizing clamped to the fleet's current fair
//     share so one giant instance cannot starve everyone else;
//   - a result cache keyed by a canonical CNF fingerprint
//     (cnf.FormulaFingerprint) with LRU eviction, plus singleflight
//     coalescing: identical in-flight formulas are solved once and the
//     result fans out to every waiter;
//   - typed job kinds reusing the existing engines — raw DIMACS solve,
//     CEC miter check, BMC up to a depth — behind one envelope (Spec);
//   - streaming progress: every running job carries a
//     portfolio.Monitor, so status endpoints sample conflicts/s, glue
//     share and the kill/respawn lineage live while the job runs;
//   - cross-run recipe memory: decided portfolio wins are recorded per
//     instance class, and later jobs of the same class have their
//     respawn schedule's explore arm seeded toward the remembered
//     recipe family (portfolio.Options.PreferRecipe);
//   - certified results: a Spec.Proof DIMACS job answers UNSAT with a
//     streamed DRAT refutation (deletion lines included) re-checked
//     server-side by the independent RUP checker, answers SAT with a
//     server-verified model, and commits the verdict's digests to a
//     hash-chained audit log (audit.go) whose inclusion proofs survive
//     restarts when a store is configured.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/cnf"
	"repro/internal/obs"
	"repro/internal/portfolio"
	"repro/internal/session"
	"repro/internal/solver"
	"repro/internal/store"
)

// maxSheddablePayload is the payload size above which a submission may
// be shed on a full queue WITHOUT being parsed first (losing only its
// slim chance of a cache hit); see Submit.
const maxSheddablePayload = 1 << 20

// Submission errors.
var (
	// ErrQueueFull is load shedding: the backlog is at capacity. The
	// HTTP layer maps it to 429.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrBadJob marks a malformed or unparseable job spec (HTTP 400).
	ErrBadJob = errors.New("serve: bad job")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("serve: scheduler closed")
	// ErrCancelled is the terminal error of a cancelled job.
	ErrCancelled = errors.New("serve: job cancelled")
)

// Config sizes a Scheduler. The zero value is usable.
type Config struct {
	// CPUBudget is the total number of portfolio workers the scheduler
	// may have solving at once, shared fairly across running jobs
	// (0 = GOMAXPROCS). Grants are debited from the budget at job
	// start; because every running job is guaranteed at least one
	// worker, the instantaneous total can exceed CPUBudget by at most
	// MaxRunning−1 when jobs arrive on an already-committed fleet.
	CPUBudget int
	// MaxRunning is the number of jobs solving concurrently — the
	// executor count (0 = min(4, CPUBudget)). Each running job gets
	// ~CPUBudget/running portfolio workers.
	MaxRunning int
	// QueueDepth bounds the backlog beyond the running jobs; a full
	// queue sheds new submissions with ErrQueueFull (0 = 64).
	QueueDepth int
	// CacheCap bounds the result cache entries (0 = 256).
	CacheCap int
	// RetainDone bounds how many finished jobs stay queryable by ID
	// (0 = 512). Older finished jobs are forgotten FIFO.
	RetainDone int
	// DefaultTimeout is the per-job deadline when the spec does not set
	// one (0 = 30s); MaxTimeout caps every deadline (0 = 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// SessionMaxResident bounds sessions holding a live solver (0 = 32);
	// SessionIdleTTL is the idle time before a resident session is
	// demoted to its checkpoint (0 = 2m); SessionQueueDepth bounds each
	// session's pending queries (0 = 16). See internal/session.
	SessionMaxResident int
	SessionIdleTTL     time.Duration
	SessionQueueDepth  int
	// Store, when non-nil, persists the result cache, recipe memory
	// and warm-start profiles: replayed into memory before the
	// scheduler serves, written behind asynchronously on decided
	// verdicts. The scheduler flushes pending writes on Close but does
	// NOT close the store — its lifecycle belongs to the caller (who
	// may reopen it into a fresh scheduler, which is exactly what a
	// restart does).
	Store store.Store
}

func (c Config) cpuBudget() int {
	if c.CPUBudget > 0 {
		return c.CPUBudget
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) maxRunning() int {
	if c.MaxRunning > 0 {
		return c.MaxRunning
	}
	if b := c.cpuBudget(); b < 4 {
		return b
	}
	return 4
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 64
}

func (c Config) retainDone() int {
	if c.RetainDone > 0 {
		return c.RetainDone
	}
	return 512
}

func (c Config) defaultTimeout() time.Duration {
	if c.DefaultTimeout > 0 {
		return c.DefaultTimeout
	}
	return 30 * time.Second
}

func (c Config) maxTimeout() time.Duration {
	if c.MaxTimeout > 0 {
		return c.MaxTimeout
	}
	return 5 * time.Minute
}

// Stats is a point-in-time snapshot of the scheduler's counters.
type Stats struct {
	// Submitted counts accepted submissions (shed ones excluded);
	// Completed / Failed / Cancelled partition the finished jobs.
	Submitted, Completed, Failed, Cancelled int64
	// Shed counts submissions rejected with ErrQueueFull.
	Shed int64
	// Solves counts jobs that actually reached an engine; CacheHits and
	// Coalesced count jobs served without a fresh solve (from the
	// result cache, resp. an identical in-flight job). The singleflight
	// invariant under test: identical concurrent submissions yield
	// Solves == 1 with the rest Coalesced.
	Solves, CacheHits, Coalesced int64
	// CacheEvictions counts results dropped by the LRU at capacity.
	CacheEvictions int64
	// QueueDepth / Running are current occupancy; CacheEntries the
	// current cache population.
	QueueDepth, Running, CacheEntries int
	// Followers is the current number of coalesced waiters;
	// WorkersInUse the granted portfolio workers; SessionBusy the
	// session queries currently executing against the same CPU budget.
	Followers, WorkersInUse, SessionBusy int
	// Sessions snapshots the session manager's gauges and counters.
	Sessions session.Stats
	// Store snapshots the persistence layer (zero when store-less).
	Store StoreStats
	// ProofJobs / ProofReplays / ProofFailures count decided certified
	// jobs, replay-derived certificates and rejected certificates.
	ProofJobs, ProofReplays, ProofFailures int64
	// AuditRecords is the audit chain length; AuditAppendErrors counts
	// failed synchronous appends; AuditChainValid reports the boot-time
	// chain verification.
	AuditRecords      uint64
	AuditAppendErrors int64
	AuditChainValid   bool
}

// Scheduler multiplexes solve jobs over a bounded CPU budget. Create
// with NewScheduler, submit with Submit, stop with Close (which
// cancels running jobs and waits for every goroutine).
type Scheduler struct {
	cfg     Config
	baseCtx context.Context
	stop    context.CancelFunc
	queue   chan *Job
	wg      sync.WaitGroup

	cache *resultCache
	mem   *recipeMemory
	// persist is the async write-behind path into cfg.Store (nil when
	// store-less); the storeReplay* counters are written once before
	// the executors start and read-only afterwards.
	persist                                    *persister
	storeReplayedResults, storeReplayedClasses int64
	storeReplayedWarm, storeReplaySkipped      int64
	storeReplayDur                             time.Duration
	// audit is the hash-chained log of certified verdicts, backed by
	// cfg.Store (or a private MemStore when store-less); see audit.go.
	audit *auditLog
	// sessions is the resident-formula session manager; its query
	// execution is gated against this scheduler's CPU ledger.
	sessions *session.Manager
	// obs is the unified metric registry every layer registers into
	// (scheduler counters via a scrape-time collector, job/phase latency
	// histograms, session query latencies, store and fleet families).
	obs *obs.Registry

	mu       sync.Mutex
	closed   bool
	seq      int64
	jobs     map[string]*Job
	doneIDs  []string // retention ring over finished jobs
	inflight map[jobKey]*Job
	running  int
	// runningSingle counts the running jobs that can only ever use one
	// worker (BMC's sequential unroller); the fair share divides the
	// remaining budget over the portfolio-capable jobs only.
	runningSingle int
	// workersInUse is the debit ledger of granted portfolio workers:
	// grants are clamped to the budget remaining after earlier grants,
	// so running jobs can exceed CPUBudget only by the one-worker floor
	// every job is guaranteed (at most MaxRunning−1 extra).
	workersInUse int
	// followers counts live coalesced waiters; bounded by QueueDepth so
	// a flood of identical submissions cannot accumulate goroutines and
	// Job records past the same limit the queue enforces.
	followers int
	// sessionBusy counts session queries currently executing. Each holds
	// one CPU (a session query is a single sequential solver), debited
	// from the same budget the fair share divides — sessions and jobs
	// draw from one ledger.
	sessionBusy int

	submitted, completed, failed, cancelled int64
	shed, solves, cacheHits, coalesced      int64
	// proofJobs counts decided Spec.Proof jobs; proofReplays the ones
	// whose certificate came from the bounded replay solve; and
	// proofFailures the server-side certificate rejections (a "failed:"
	// checker outcome — solver-bug territory, worth alerting on).
	proofJobs, proofReplays, proofFailures int64
}

// NewScheduler starts a scheduler with cfg's executors running.
func NewScheduler(cfg Config) *Scheduler {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:      cfg,
		baseCtx:  ctx,
		stop:     cancel,
		queue:    make(chan *Job, cfg.queueDepth()),
		cache:    newResultCache(cfg.CacheCap),
		mem:      newRecipeMemory(0),
		jobs:     make(map[string]*Job),
		inflight: make(map[jobKey]*Job),
		obs:      obs.NewRegistry(),
	}
	if cfg.Store != nil {
		// Replay BEFORE the executors start: the first submission must
		// already see yesterday's cache hits and warm profiles.
		s.loadStore()
		s.persist = newPersister(cfg.Store)
		s.audit = openAudit(cfg.Store, false)
	} else {
		// Store-less schedulers still get a working audit chain for the
		// process lifetime: certification must not depend on deployment
		// configuration.
		s.audit = openAudit(store.NewMem(), true)
	}
	s.sessions = session.NewManager(session.Config{
		MaxResident: cfg.SessionMaxResident,
		IdleTTL:     cfg.SessionIdleTTL,
		QueueDepth:  cfg.SessionQueueDepth,
		Gate:        ledgerGate{s},
		Obs:         s.obs,
	})
	s.registerMetrics()
	for i := 0; i < cfg.maxRunning(); i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// Sessions exposes the scheduler's session manager (the HTTP layer's
// /v1/sessions routes and in-process consumers drive it directly).
func (s *Scheduler) Sessions() *session.Manager { return s.sessions }

// Obs exposes the scheduler's metric registry — the /metrics endpoint
// renders it, and co-located components (fleet, pprof wrappers) may
// register additional families into it.
func (s *Scheduler) Obs() *obs.Registry { return s.obs }

// WarmHint returns the recipe memory's branching warm-start profile for
// f's instance class (nil = cold start). The session-create path feeds
// it into Manager.Open, so a resident solver opened over a class the
// job path has already decided starts branching where that win's solver
// left off.
func (s *Scheduler) WarmHint(f *cnf.Formula) []solver.WarmVar {
	return s.mem.warmFor(dimacsClass(f))
}

// ledgerGate debits one CPU per executing session query from the
// scheduler's fair-share ledger: while held, portfolio shares shrink
// exactly as if another single-threaded job were running.
type ledgerGate struct{ s *Scheduler }

// Acquire implements session.Gate.
func (g ledgerGate) Acquire() func() {
	g.s.mu.Lock()
	g.s.sessionBusy++
	g.s.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			g.s.mu.Lock()
			g.s.sessionBusy--
			g.s.mu.Unlock()
		})
	}
}

// Submit validates and admits a job. It returns immediately: the job
// solves asynchronously (Job.Wait blocks for the result). Admission
// order: cache hit (no solve, returned finished), singleflight
// coalescing onto an identical in-flight job, then the bounded queue —
// which sheds with ErrQueueFull rather than blocking the caller.
func (s *Scheduler) Submit(spec Spec) (*Job, error) {
	// The trace anchor: every microsecond from here to finalize is
	// attributed to some top-level phase, parsing included.
	entry := time.Now()
	// Overload defense BEFORE the expensive parse+fingerprint: with the
	// backlog already full, a large payload is almost certainly headed
	// for the shed anyway, and parsing it first would let a burst of
	// big submissions saturate CPU despite the 429s. Small payloads
	// still parse, so cache hits and coalescing — which need no queue
	// slot — keep being served under pressure. Deliberate tradeoff: a
	// MALFORMED large payload is also answered 429-retryable here
	// instead of its terminal 400 — it gets the 400 once the queue
	// drains, and validating first would hand the overload vector
	// right back.
	if spec.payloadSize() > maxSheddablePayload && len(s.queue) >= cap(s.queue) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return nil, ErrClosed
		}
		s.shed++
		return nil, ErrQueueFull
	}
	parsed, class, err := spec.parse()
	if err != nil {
		return nil, err
	}
	// The key — and for DIMACS the canonical fingerprint behind it —
	// is only needed by the cache and singleflight; NoCache jobs skip
	// the cost entirely (their zero key never enters the inflight map,
	// and finalize's delete is identity-guarded). Probe the cache
	// before taking the scheduler lock: get() clones the stored result
	// (a model is one int per variable), and that copy must not stall
	// every executor behind s.mu.
	var key jobKey
	var cached Result
	cacheHit := false
	if !spec.NoCache {
		key = spec.cacheKey(parsed)
		cached, cacheHit = s.cache.get(key)
		// Defense in depth behind the keyspace separation: a proof job
		// must never be satisfied from an entry without a certificate
		// (a hand-edited or corrupted store could smuggle a proofless
		// result in under a proof-namespace key).
		if cacheHit && spec.Proof && cached.Proof == nil {
			cacheHit = false
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.seq++
	j := &Job{
		ID:        fmt.Sprintf("j%d", s.seq),
		spec:      spec,
		parsed:    parsed,
		key:       key,
		class:     class,
		done:      make(chan struct{}),
		status:    StatusQueued,
		submitted: time.Now(),
	}
	// The deadline covers the job's WHOLE lifetime — queue wait and
	// coalesced waiting included, not just engine execution — so a
	// short-deadline submission is answered within its budget even
	// when stuck behind a slow leader or a deep backlog. Deadline
	// expiry surfaces as context.DeadlineExceeded (→ an UNKNOWN
	// result), distinct from context.Canceled (explicit cancel or
	// shutdown → StatusCancelled).
	j.ctx, j.cancel = context.WithTimeout(s.baseCtx, s.jobTimeout(&spec))
	j.mon = portfolio.NewMonitor()
	j.trace = obs.NewTraceAt("job", 0, entry)
	j.trace.Annotate(obs.RootSpan, obs.A("id", j.ID), obs.A("kind", string(spec.Kind)))
	// The parse tile also covers the fingerprint and cache probe above —
	// all pre-admission CPU the submitter paid.
	j.phase("parse")

	if cacheHit {
		j.trace.Annotate(obs.RootSpan, obs.A("cache", "hit"))
		s.cacheHits++
		s.submitted++
		s.registerLocked(j)
		s.mu.Unlock()
		cached.Cached = true
		cached.WallMS = 0
		s.finalize(j, StatusDone, &cached, nil)
		return j, nil
	}
	if !spec.NoCache {
		if leader, ok := s.inflight[key]; ok {
			if s.followers >= s.cfg.queueDepth() {
				// Followers hold a goroutine and a Job each; unbounded,
				// a flood of identical submissions would sidestep the
				// queue bound entirely. Shed past the same depth.
				s.shed++
				s.mu.Unlock()
				j.cancel()
				return nil, ErrQueueFull
			}
			s.followers++
			s.coalesced++
			s.submitted++
			s.registerLocked(j)
			// Add under the lock: Close checks closed under the same
			// lock before wg.Wait, so the follower goroutine is always
			// inside the group Close waits on.
			s.wg.Add(1)
			s.mu.Unlock()
			go s.follow(j, leader)
			return j, nil
		}
	}

	select {
	case s.queue <- j:
		if !spec.NoCache {
			s.inflight[key] = j
		}
		s.submitted++
		s.registerLocked(j)
		s.mu.Unlock()
		return j, nil
	default:
		s.shed++
		s.mu.Unlock()
		j.cancel()
		return nil, ErrQueueFull
	}
}

// registerLocked records the job in the ID registry; caller holds mu.
func (s *Scheduler) registerLocked(j *Job) {
	s.jobs[j.ID] = j
}

// jobTimeout resolves a spec's lifetime deadline: the requested value,
// defaulted and capped by the config.
func (s *Scheduler) jobTimeout(spec *Spec) time.Duration {
	timeout := s.cfg.defaultTimeout()
	if spec.TimeoutMS > 0 {
		timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	if max := s.cfg.maxTimeout(); timeout > max {
		timeout = max
	}
	return timeout
}

// expired reports whether the job's context ended by DEADLINE — the
// budget ran out, which is an UNKNOWN result — as opposed to being
// cancelled (explicitly or by shutdown), which is StatusCancelled.
func (j *Job) expired() bool {
	return errors.Is(j.ctx.Err(), context.DeadlineExceeded)
}

// unknownResult builds the terminal result of a job whose deadline
// expired before (or while) it solved.
func (j *Job) unknownResult() *Result {
	return &Result{Kind: j.spec.Kind, Verdict: "UNKNOWN"}
}

// Get returns the job with the given ID, or nil when unknown (never
// submitted, or aged out of the finished-job retention window).
func (s *Scheduler) Get(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Cancel cooperatively cancels the job with the given ID; it reports
// whether the ID was known.
func (s *Scheduler) Cancel(id string) bool {
	if j := s.Get(id); j != nil {
		j.Cancel()
		return true
	}
	return false
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() Stats {
	// Sample the session manager and the store outside s.mu: both walk
	// their own locks and must not stall executors behind ours.
	sess := s.sessions.Stats()
	st := s.storeStats()
	auditSeq, _, auditOK := s.audit.headInfo()
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		ProofJobs: s.proofJobs, ProofReplays: s.proofReplays,
		ProofFailures:     s.proofFailures,
		AuditRecords:      auditSeq,
		AuditAppendErrors: s.audit.errs.Load(),
		AuditChainValid:   auditOK,
		Submitted: s.submitted, Completed: s.completed,
		Failed: s.failed, Cancelled: s.cancelled,
		Shed: s.shed, Solves: s.solves,
		CacheHits: s.cacheHits, Coalesced: s.coalesced,
		CacheEvictions: s.cache.evicted(),
		QueueDepth:     len(s.queue), Running: s.running,
		CacheEntries: s.cache.len(),
		Followers:    s.followers, WorkersInUse: s.workersInUse,
		SessionBusy: s.sessionBusy,
		Sessions:    sess,
		Store:       st,
	}
}

// Close stops the scheduler: running jobs are cancelled cooperatively,
// queued jobs are finished as cancelled, and Close returns only after
// every scheduler goroutine has exited. Submit afterwards returns
// ErrClosed.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.sessions.Close() // interrupts session queries, waits for runners
	s.stop()           // cancels every job ctx (they derive from baseCtx)
	s.wg.Wait()
	for {
		select {
		case j := <-s.queue:
			s.finalize(j, StatusCancelled, nil, ErrCancelled)
		default:
			// Executors are gone: no new persistence work can arrive.
			// Drain the write-behind queue so every verdict decided
			// before Close is in the store when Close returns (the
			// store itself stays open — the caller owns it).
			if s.persist != nil {
				s.persist.close()
			}
			s.audit.close()
			return
		}
	}
}

// executor is one job-running goroutine; MaxRunning of them share the
// queue.
func (s *Scheduler) executor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one dequeued job end to end.
func (s *Scheduler) runJob(j *Job) {
	// The queue tile: from the end of parse (or the last coalesce round)
	// to the moment an executor picked the job up.
	j.phase("queue")
	if j.ctx.Err() != nil {
		if j.expired() {
			// The lifetime deadline ran out while queued: an UNKNOWN
			// result, not a cancellation.
			s.finalize(j, StatusDone, j.unknownResult(), nil)
		} else {
			// Cancelled (or the scheduler closed) while queued.
			s.finalize(j, StatusCancelled, nil, ErrCancelled)
		}
		return
	}

	single := j.spec.Kind.singleThreaded()
	s.mu.Lock()
	s.running++
	if single {
		s.runningSingle++
	}
	s.solves++
	// Fair-share grant, debited from the remaining budget. The share —
	// budget minus one CPU per single-threaded job, split over the
	// portfolio-capable jobs running now — is the target; the grant is
	// additionally clamped to what earlier grants left unspent, so the
	// fleet never over-commits the budget beyond the one-worker floor
	// each job is guaranteed. A job may ask for less; it never gets
	// more, so a giant instance cannot starve its neighbours.
	workers := 1
	if !single {
		// Executing session queries hold one CPU each (sessionBusy) and
		// shrink the divisible budget exactly like single-threaded jobs.
		share := 1
		if wide := s.running - s.runningSingle; wide > 0 {
			share = (s.cfg.cpuBudget() - s.runningSingle - s.sessionBusy) / wide
			if share < 1 {
				share = 1
			}
		}
		workers = j.spec.Workers
		if workers <= 0 || workers > share {
			workers = share
		}
		if avail := s.cfg.cpuBudget() - s.runningSingle - s.sessionBusy - s.workersInUse; workers > avail {
			workers = avail
		}
		if workers < 1 {
			workers = 1 // the floor: every running job makes progress
		}
		s.workersInUse += workers
	}
	prefer := s.mem.best(j.class)
	warm := s.mem.warmFor(j.class)
	s.mu.Unlock()

	j.setRunning(workers, prefer)
	// The admit tile: fair-share grant computation and the running
	// transition (normally negligible — its growth signals s.mu
	// contention).
	j.phase("admit", obs.A("workers", fmt.Sprint(workers)))
	solveStartUS := j.phaseOffset()
	start := time.Now()
	// j.ctx already carries the lifetime deadline set at Submit.
	res, err := execute(j.ctx, j, workers, prefer, warm)
	s.traceSolve(j, solveStartUS, res)

	s.mu.Lock()
	s.running--
	if single {
		s.runningSingle--
	} else {
		s.workersInUse -= workers
	}
	s.mu.Unlock()

	switch {
	case err != nil:
		s.finalize(j, StatusFailed, nil, err)
	case j.ctx.Err() != nil && !j.expired() && !res.Decided:
		// Explicit cancel (or shutdown) beat the engine; a deadline
		// expiry stays a normal UNKNOWN result.
		s.finalize(j, StatusCancelled, nil, ErrCancelled)
	default:
		res.WallMS = time.Since(start).Milliseconds()
		if res.Decided {
			if res.Proof != nil {
				// Commit the verdict's digests to the hash-chained audit
				// log BEFORE the result becomes visible (cache, waiters):
				// a certified verdict a client can see is always already
				// in the chain. Synchronous by design — this is the one
				// persistence path correctness depends on, so it never
				// goes through the dropping write-behind queue.
				if seq, hash, err := s.audit.append(j.ID, res.Kind, res.Verdict, res.Proof); err == nil {
					res.Proof.AuditSeq = seq
					res.Proof.AuditHash = hash
				}
				s.mu.Lock()
				s.proofJobs++
				if res.Proof.Replayed {
					s.proofReplays++
				}
				if strings.HasPrefix(res.Proof.Checker, "failed") {
					s.proofFailures++
				}
				s.mu.Unlock()
			}
			if !j.spec.NoCache {
				evictedKey, evicted := s.cache.put(j.key, *res)
				// Write-behind: the verdict is durable soon after — not
				// before — the client sees it. See persist.go.
				s.persistResult(j.key, *res, evictedKey, evicted)
			}
			// Only genuinely diversified wins are signal: a 1-worker
			// portfolio always answers with the base recipe, and base
			// wins generally are "no hint" — the portfolio discards a
			// base preference anyway (worker 0 runs it permanently), so
			// recording them would only shadow the diversified families
			// the memory exists to surface.
			if fam := portfolio.RecipeFamily(res.Recipe); res.Recipe != "" && workers > 1 && fam != "base" {
				s.persistRecipe(j.class, s.mem.record(j.class, fam))
			}
			// The warm profile is useful signal even from a sequential
			// win: it describes the instance class, not the recipe.
			s.mem.recordWarm(j.class, res.warm)
			s.persistWarm(j.class, res.warm)
		}
		// The persist tile: audit append, cache put and write-behind
		// enqueue (near-zero for undecided results).
		j.phase("persist")
		s.finalize(j, StatusDone, res, nil)
	}
}

// traceSolve closes the job's solve tile and attaches its children:
// the certification sub-span (positioned at the tile's end, where
// certifyDIMACS actually ran) and one synthetic CPU-attribution span
// per solver phase, fed by the monitor's sampled live+retired phase
// totals. The CPU spans carry durations, not timeline positions — with
// N portfolio workers they may sum past the tile's wall time — so they
// start at the tile start and are marked cpu="1".
func (s *Scheduler) traceSolve(j *Job, solveStartUS int64, res *Result) {
	if j.trace == nil {
		return
	}
	attrs := []obs.Attr{}
	if res != nil {
		attrs = append(attrs, obs.A("verdict", res.Verdict),
			obs.A("conflicts", fmt.Sprint(res.Conflicts)))
	}
	solveID := j.phase("solve", attrs...)
	endUS := j.phaseOffset()
	if d := j.certifyDur.Microseconds(); d > 0 {
		startUS := endUS - d
		if startUS < solveStartUS {
			startUS = solveStartUS
		}
		j.trace.AddOffset(solveID, "certify", startUS, d)
	}
	snap := j.mon.Snapshot()
	for name, ns := range snap.PhaseTotals() {
		if ns <= 0 {
			continue
		}
		j.trace.AddOffset(solveID, "solver/"+name, solveStartUS, ns/1000, obs.A("cpu", "1"))
	}
}

// follow completes a coalesced job from its singleflight leader. A
// decided leader result fans out to the follower; a failed or
// cancelled leader propagates its outcome. An UNDECIDED leader result
// (the leader's own deadline or conflict budget expired) does not bind
// the follower — its budget may be larger, and the job key identifies
// only the formula, never the budget knobs — so the follower re-enters
// the queue as the key's new leader (or re-follows whoever beat it to
// that), inheriting the UNKNOWN only as a last resort when the
// scheduler is closing or the queue is full.
func (s *Scheduler) follow(j *Job, leader *Job) {
	defer s.wg.Done()
	// Whatever path this goroutine exits by — fan-out, propagation or
	// requeue (where the queue bound takes over) — the job stops being
	// a live follower.
	defer func() {
		s.mu.Lock()
		s.followers--
		s.mu.Unlock()
	}()
	for {
		select {
		case <-leader.done:
			// One coalesce round: waiting on this leader's outcome.
			j.phase("coalesce_wait", obs.A("leader", leader.ID))
		case <-j.ctx.Done():
			j.phase("coalesce_wait", obs.A("leader", leader.ID))
			if j.expired() {
				// The follower's own lifetime deadline ran out while
				// waiting on a slower leader: its budget, its UNKNOWN.
				s.finalize(j, StatusDone, j.unknownResult(), nil)
			} else {
				s.finalize(j, StatusCancelled, nil, ErrCancelled)
			}
			return
		}
		res, ok := leader.Result()
		if ok && res.Decided {
			res = res.clone()
			res.Coalesced = true
			s.finalize(j, StatusDone, &res, nil)
			return
		}
		if !ok {
			leader.mu.Lock()
			st, err := leader.status, leader.err
			leader.mu.Unlock()
			if st == StatusFailed {
				// An engine failure is a property of the formula/spec
				// the followers share; propagate it faithfully.
				s.finalize(j, StatusFailed, nil, err)
				return
			}
			// The leader was cancelled — by ITS client, which must not
			// cancel this one's job. Fall through to the requeue logic
			// below so the follower takes over as the key's new leader.
		}
		// The leader's answer does not bind the follower (its own
		// budget ran out, or it was cancelled by its own client): the
		// follower re-enters the queue and solves for itself. When
		// requeueing is impossible, the best available outcome is the
		// leader's UNKNOWN when there is one; otherwise shutdown means
		// cancellation and a full queue means a queue-full failure —
		// NOT a cancellation, which this client never asked for.
		fallback := func(shutdown bool) {
			switch {
			case ok:
				r := res.clone()
				r.Coalesced = true
				s.finalize(j, StatusDone, &r, nil)
			case shutdown:
				s.finalize(j, StatusCancelled, nil, ErrCancelled)
			default:
				s.finalize(j, StatusFailed, nil,
					fmt.Errorf("%w: cannot requeue after the coalesced leader was cancelled", ErrQueueFull))
			}
		}
		s.mu.Lock()
		if s.closed {
			// Checked under the same lock Close takes: no window where
			// shutdown masquerades as a queue-full failure.
			s.mu.Unlock()
			fallback(true)
			return
		}
		if next, ok := s.inflight[j.key]; ok && next != leader {
			// Another follower already took over as leader; chain onto
			// it. Each round finalizes at least one job (the previous
			// leader), so the chain is finite. next == leader means the
			// finished leader's finalize has not yet cleared its
			// inflight entry — re-adopting it would busy-spin on its
			// closed done channel, so fall through and take over
			// (finalize's delete is guarded by identity and will not
			// clobber the new entry).
			leader = next
			s.mu.Unlock()
			continue
		}
		select {
		case s.queue <- j:
			s.inflight[j.key] = j
			// The job is no longer served by coalescing — it will pay
			// a fresh solve — so give back its Coalesced count to keep
			// the documented partition (Coalesced = served WITHOUT a
			// fresh solve) true in /metrics.
			s.coalesced--
			s.mu.Unlock()
			return // still StatusQueued; an executor will run it
		default:
			s.mu.Unlock()
			fallback(false) // queue full: better than shedding a waited-on job
			return
		}
	}
}

// finalize moves a job to a terminal state, updates the counters, and
// releases its singleflight slot.
func (s *Scheduler) finalize(j *Job, st Status, res *Result, err error) {
	// Close the trace BEFORE finish() unblocks waiters, so a client that
	// fetches the trace right after Wait returns sees it complete. The
	// respond tile sweeps up whatever wall time no earlier phase claimed.
	j.traceOnce.Do(func() {
		if j.trace == nil {
			return
		}
		j.phase("respond", obs.A("status", string(st)))
		j.trace.Finish()
		s.observeJob(j)
	})
	j.finish(st, res, err)
	s.mu.Lock()
	switch st {
	case StatusDone:
		s.completed++
	case StatusFailed:
		s.failed++
	case StatusCancelled:
		s.cancelled++
	}
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.doneIDs = append(s.doneIDs, j.ID)
	if over := len(s.doneIDs) - s.cfg.retainDone(); over > 0 {
		for _, id := range s.doneIDs[:over] {
			delete(s.jobs, id)
		}
		s.doneIDs = s.doneIDs[over:]
	}
	s.mu.Unlock()
}
