package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// mustJSON marshals v or fails the test.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// fleetReplica is one in-process replica of a test fleet.
type fleetReplica struct {
	ts    *httptest.Server
	sched *Scheduler
	srv   *Server
	fleet *Fleet
}

// newTestFleet boots n replicas sharing one ring: each replica's fleet
// lists every OTHER replica as a peer (member lists agree as sets, in
// different orders — the ring must not care).
func newTestFleet(t *testing.T, n int, cfg Config) []*fleetReplica {
	t.Helper()
	reps := make([]*fleetReplica, n)
	urls := make([]string, n)
	for i := range reps {
		sched := NewScheduler(cfg)
		srv := NewServer(sched)
		srv.batchFlushWait = 10 * time.Millisecond
		ts := httptest.NewServer(srv)
		reps[i] = &fleetReplica{ts: ts, sched: sched, srv: srv}
		urls[i] = ts.URL
		t.Cleanup(func() {
			ts.Close()
			sched.Close()
		})
	}
	for i, rep := range reps {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		f, err := NewFleet(urls[i], peers, nil)
		if err != nil {
			t.Fatal(err)
		}
		rep.fleet = f
		rep.srv.SetFleet(f)
	}
	return reps
}

// ownerIndex resolves which replica owns sp's ring position, asserting
// every replica agrees.
func ownerIndex(t *testing.T, reps []*fleetReplica, sp Spec) int {
	t.Helper()
	key, ok := routingKey(&sp)
	if !ok {
		t.Fatal("routingKey failed on a valid spec")
	}
	owner := reps[0].fleet.Owner(key[:])
	for _, rep := range reps[1:] {
		if got := rep.fleet.Owner(key[:]); got != owner {
			t.Fatalf("replicas disagree on owner: %q vs %q", got, owner)
		}
	}
	for i, rep := range reps {
		if rep.ts.URL == owner {
			return i
		}
	}
	t.Fatalf("owner %q is not a replica", owner)
	return -1
}

// fleetSolves sums fresh solves across the fleet.
func fleetSolves(reps []*fleetReplica) int64 {
	var n int64
	for _, rep := range reps {
		n += rep.sched.Stats().Solves
	}
	return n
}

// TestFleetForwardSolveOnceCacheOnOwner is the 3-replica pin of the
// sharding contract: a job submitted to a non-owner is forwarded to
// its owner (X-Satserved-Owner names it), the fleet solves the formula
// exactly once no matter which replicas are hit, and resubmissions —
// from ANY replica — are cache hits on the owner.
func TestFleetForwardSolveOnceCacheOnOwner(t *testing.T) {
	reps := newTestFleet(t, 3, Config{CPUBudget: 2, MaxRunning: 2})
	sp := satSpec(10, 7)
	owner := ownerIndex(t, reps, sp)
	nonOwner := (owner + 1) % 3

	resp, v := postJob(t, reps[nonOwner].ts, submitRequest{Spec: sp})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderOwner); got != reps[owner].ts.URL {
		t.Fatalf("owner header %q, want %q", got, reps[owner].ts.URL)
	}
	if v.Status != StatusDone || v.Result == nil || v.Result.Verdict != "SAT" {
		t.Fatalf("forwarded view %+v, want done SAT", v)
	}

	// The solve happened on the owner, nowhere else.
	if got := reps[owner].sched.Stats().Solves; got != 1 {
		t.Fatalf("owner solves = %d, want 1", got)
	}
	if got := reps[nonOwner].sched.Stats().Solves; got != 0 {
		t.Fatalf("non-owner solves = %d, want 0", got)
	}
	if got := reps[nonOwner].fleet.Stats().Forwards; got != 1 {
		t.Fatalf("non-owner forwards = %d, want 1", got)
	}

	// Resubmit through every replica (owner included): all cache hits
	// on the owner, zero new solves anywhere.
	for i, rep := range reps {
		resp, v := postJob(t, rep.ts, submitRequest{Spec: sp})
		if resp.StatusCode != http.StatusOK || v.Result == nil || v.Result.Verdict != "SAT" {
			t.Fatalf("replica %d resubmit: status %d view %+v", i, resp.StatusCode, v)
		}
		if !v.Result.Cached {
			t.Fatalf("replica %d resubmit not served from cache: %+v", i, v.Result)
		}
	}
	if got := fleetSolves(reps); got != 1 {
		t.Fatalf("fleet-wide solves = %d, want 1", got)
	}
	if got := reps[owner].sched.Stats().CacheHits; got != 3 {
		t.Fatalf("owner cache hits = %d, want 3", got)
	}
}

// TestFleetForwardedRequestServedWhereItLands pins loop prevention: a
// submission already carrying X-Satserved-Forwarded is solved locally
// even by a replica that does not own it, and never re-forwarded.
func TestFleetForwardedRequestServedWhereItLands(t *testing.T) {
	reps := newTestFleet(t, 3, Config{CPUBudget: 2, MaxRunning: 2})
	sp := satSpec(10, 3)
	owner := ownerIndex(t, reps, sp)
	nonOwner := (owner + 1) % 3

	body := mustJSON(t, submitRequest{Spec: sp})
	req, err := http.NewRequest(http.MethodPost, reps[nonOwner].ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderForwarded, "http://elsewhere.invalid")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderOwner); got != reps[nonOwner].ts.URL {
		t.Fatalf("owner header %q, want the serving replica %q", got, reps[nonOwner].ts.URL)
	}
	if got := reps[nonOwner].sched.Stats().Solves; got != 1 {
		t.Fatalf("non-owner solves = %d, want 1 (served where it landed)", got)
	}
	if got := reps[owner].sched.Stats().Solves; got != 0 {
		t.Fatalf("owner solves = %d, want 0 (no re-forward)", got)
	}
}

// TestFleetFallbackWhenOwnerDown pins the availability contract:
// ownership is advisory, so a submission whose owner is unreachable is
// solved locally by whichever replica took it.
func TestFleetFallbackWhenOwnerDown(t *testing.T) {
	reps := newTestFleet(t, 3, Config{CPUBudget: 2, MaxRunning: 2})

	// Find a spec owned by replica 2, then kill replica 2.
	var sp Spec
	victim := -1
	for seed := int64(1); seed < 100; seed++ {
		sp = satSpec(10, seed)
		if victim = ownerIndex(t, reps, sp); victim == 2 {
			break
		}
	}
	if victim != 2 {
		t.Fatal("no seed in range owned by replica 2")
	}
	reps[2].ts.Close()

	resp, v := postJob(t, reps[0].ts, submitRequest{Spec: sp})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via local fallback", resp.StatusCode)
	}
	if v.Status != StatusDone || v.Result == nil || v.Result.Verdict != "SAT" {
		t.Fatalf("fallback view %+v, want done SAT", v)
	}
	if got := reps[0].sched.Stats().Solves; got != 1 {
		t.Fatalf("replica 0 solves = %d, want 1 (local fallback)", got)
	}
	fst := reps[0].fleet.Stats()
	if fst.ForwardErrors < 1 || fst.LocalFallbacks < 1 {
		t.Fatalf("fleet stats %+v, want the failed forward and the fallback counted", fst)
	}
}

// TestFleetNoCacheStaysLocal: NoCache jobs have no cache identity, so
// they are never routed — whoever receives one solves it.
func TestFleetNoCacheStaysLocal(t *testing.T) {
	reps := newTestFleet(t, 2, Config{CPUBudget: 2, MaxRunning: 2})
	sp := satSpec(10, 11)
	sp.NoCache = true

	for i, rep := range reps {
		resp, v := postJob(t, rep.ts, submitRequest{Spec: sp})
		if resp.StatusCode != http.StatusOK || v.Result == nil || v.Result.Verdict != "SAT" {
			t.Fatalf("replica %d: status %d view %+v", i, resp.StatusCode, v)
		}
		if got := rep.sched.Stats().Solves; got != 1 {
			t.Fatalf("replica %d solves = %d, want 1 (NoCache never forwards)", i, got)
		}
		if got := rep.fleet.Stats().Forwards; got != 0 {
			t.Fatalf("replica %d forwards = %d, want 0", i, got)
		}
	}
}

// TestNewFleetValidation rejects configurations that would corrupt the
// ring: no self, relative member URLs.
func TestNewFleetValidation(t *testing.T) {
	if _, err := NewFleet("", []string{"http://a:1"}, nil); err == nil {
		t.Fatal("empty self accepted")
	}
	if _, err := NewFleet("http://a:1", []string{"b:nope:"}, nil); err == nil {
		t.Fatal("relative peer URL accepted")
	}
	f, err := NewFleet("http://a:1", []string{"http://b:1", "http://a:1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().Members; got != 2 {
		t.Fatalf("members = %d, want 2 (self listed twice deduplicates)", got)
	}
}
