package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Batch submission limits and flush shape.
const (
	// maxBatchItems bounds one POST /v1/jobs/batch. The endpoint exists
	// for MANY SMALL formulas (the paper's EDA workloads fire storms of
	// tiny SAT queries — test-pattern targets, local equivalences);
	// anything bigger belongs in its own request.
	maxBatchItems = 256
	// batchFlushSize is the bounded-batch half of the flush policy: a
	// full group of finished items is flushed immediately.
	batchFlushSize = 16
	// batchFlushWaitDefault is the maxWait half: buffered results never
	// wait longer than this for their group to fill.
	batchFlushWaitDefault = 200 * time.Millisecond
)

// batchRequest is the POST /v1/jobs/batch body.
type batchRequest struct {
	// Items are the job specs, solved concurrently through the same
	// fair-share scheduler as single submissions. Each item carries its
	// own knobs — TimeoutMS in particular is a PER-ITEM deadline: one
	// slow item answers UNKNOWN without poisoning its siblings.
	Items []Spec `json:"items"`
}

// batchItemView is one NDJSON response line: the item's final job view
// tagged with its position in the request. Lines stream in COMPLETION
// order, not request order — index is the correlation handle.
type batchItemView struct {
	Index int `json:"index"`
	View
}

// handleBatch is POST /v1/jobs/batch: submit every item, stream one
// NDJSON line per item as results land. Duplicates inside a batch (and
// against other in-flight traffic) coalesce through the scheduler's
// singleflight; with fleet routing enabled each item is routed to its
// owner individually. Results are flushed in bounded batches
// (batchFlushSize) with a maxWait bound, so a trickle of slow items
// still streams promptly while a burst of cache hits costs few
// flushes. A client disconnect mid-batch cancels only the still
// unfinished items.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body over %d bytes", maxRequestBytes))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Items) > maxBatchItems {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d items over the %d limit: split it", len(req.Items), maxBatchItems))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, errors.New("streaming unsupported"))
		return
	}

	// ctx governs every per-item worker; cancelling it (disconnect, or
	// handler exit) cancels exactly the jobs still unfinished.
	ctx, cancelAll := context.WithCancel(r.Context())
	defer cancelAll()

	// Buffered to the item count: every worker delivers at most one
	// result and never blocks, so workers cannot leak behind a client
	// that stopped reading.
	results := make(chan batchItemView, len(req.Items))
	forwarded := r.Header.Get(HeaderForwarded) != ""
	for i, item := range req.Items {
		go s.runBatchItem(ctx, i, item, forwarded, results)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// Commit the 200 over the wire NOW: clients block on response
	// headers, and a batch whose first finisher is slow would otherwise
	// hold them (the status line buffers until the first flush).
	flusher.Flush()

	flushWait := s.batchFlushWait
	if flushWait <= 0 {
		flushWait = batchFlushWaitDefault
	}
	ticker := time.NewTicker(flushWait)
	defer ticker.Stop()

	enc := json.NewEncoder(w)
	pending := 0
	flush := func() {
		pending = 0
		flusher.Flush()
	}
	for remaining := len(req.Items); remaining > 0; {
		select {
		case v := <-results:
			_ = enc.Encode(v) // buffered by the ResponseWriter until Flush
			remaining--
			if pending++; pending >= batchFlushSize {
				flush()
			}
		case <-ticker.C:
			if pending > 0 {
				flush()
			}
		case <-r.Context().Done():
			// Client gone: the deferred cancelAll cancels the workers,
			// which cancel their still-running jobs. Finished items were
			// already streamed (or are lost with the connection —
			// either way the work is done and cached).
			return
		}
	}
	flush()
}

// runBatchItem solves one batch item end to end and delivers exactly
// one result line. With fleet routing, an item owned by a peer is
// forwarded as a sync single-job submission; a forwarding failure
// falls back to a local solve, mirroring routeSubmit.
func (s *Server) runBatchItem(ctx context.Context, index int, item Spec, forwarded bool, results chan<- batchItemView) {
	if f := s.fleet; f != nil && !item.NoCache && !forwarded {
		if key, ok := routingKey(&item); ok {
			if owner := f.Owner(key[:]); owner != f.self {
				if v, ok := s.forwardBatchItem(ctx, owner, item); ok {
					results <- batchItemView{Index: index, View: v}
					return
				}
				f.fallbacks.Add(1)
			}
		}
	}

	job, err := s.sched.Submit(item)
	if err != nil {
		// Admission failed (bad spec, full queue, closing): the item is
		// answered in place — batch siblings are unaffected.
		results <- batchItemView{Index: index, View: View{Kind: item.Kind, Status: StatusFailed, Error: err.Error()}}
		return
	}
	select {
	case <-job.Done():
	case <-ctx.Done():
		// Batch abandoned: cancel THIS item (still queued or running)
		// and report its terminal state for the buffered channel's
		// bookkeeping; nobody is reading the connection anymore.
		job.Cancel()
	}
	results <- batchItemView{Index: index, View: job.View()}
}

// forwardBatchItem submits one batch item synchronously to its owning
// peer and adapts the response to a job view. It reports false when
// the owner was unreachable or answered garbage — the caller solves
// locally instead.
func (s *Server) forwardBatchItem(ctx context.Context, owner string, item Spec) (View, bool) {
	f := s.fleet
	body, err := json.Marshal(submitRequest{Spec: item})
	if err != nil {
		return View{}, false
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		f.fwdErrs.Add(1)
		return View{}, false
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(HeaderForwarded, f.self)
	resp, err := f.client.Do(hreq)
	if err != nil {
		f.fwdErrs.Add(1)
		return View{}, false
	}
	defer resp.Body.Close()
	var v View
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxRequestBytes)).Decode(&v); err != nil {
		f.fwdErrs.Add(1)
		return View{}, false
	}
	f.forwards.Add(1)
	if v.Status == "" {
		// Error-shape body ({"error": ...}): a real per-item answer
		// (e.g. the owner shed it), surfaced as a failed item rather
		// than re-solved locally — the owner DID respond.
		return View{Kind: item.Kind, Status: StatusFailed, Error: v.Error}, v.Error != ""
	}
	return v, true
}
