package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/session"
)

// sessionInfo mirrors session.Info for decoding HTTP responses.
type sessionInfoView struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Vars    int    `json:"vars"`
	Clauses int    `json:"clauses"`
	Queries int64  `json:"queries"`
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp
}

func openSession(t *testing.T, ts *httptest.Server, f *cnf.Formula) sessionInfoView {
	t.Helper()
	var info sessionInfoView
	resp := postJSON(t, ts.URL+"/v1/sessions", sessionCreateRequest{DIMACS: cnf.DIMACSString(f)}, &info)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d, want 201", resp.StatusCode)
	}
	if info.ID == "" || info.State != string(session.StateOpen) {
		t.Fatalf("create info %+v", info)
	}
	return info
}

func TestHTTPSessionRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t, Config{CPUBudget: 2, MaxRunning: 2})

	// (1 ∨ 2) ∧ (¬1 ∨ 3): assuming ¬2 ∧ ¬3 forces 1 then 3 — UNSAT;
	// assuming 2 is trivially SAT.
	f, err := cnf.ParseDIMACSString("p cnf 3 2\n1 2 0\n-1 3 0\n")
	if err != nil {
		t.Fatal(err)
	}
	info := openSession(t, ts, f)
	base := ts.URL + "/v1/sessions/" + info.ID

	var sat sessionQueryResult
	if resp := postJSON(t, base+"/query", sessionQueryRequest{Assume: []int{2}}, &sat); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d, want 200", resp.StatusCode)
	}
	if sat.Verdict != "SAT" || !sat.Decided {
		t.Fatalf("assume 2: %+v, want SAT", sat)
	}
	has := func(model []int, want int) bool {
		for _, l := range model {
			if l == want {
				return true
			}
		}
		return false
	}
	if !has(sat.Model, 2) {
		t.Fatalf("model %v should set literal 2", sat.Model)
	}

	var unsat sessionQueryResult
	postJSON(t, base+"/query", sessionQueryRequest{Assume: []int{-2, -3}}, &unsat)
	if unsat.Verdict != "UNSAT" {
		t.Fatalf("assume -2 -3: %+v, want UNSAT", unsat)
	}
	if len(unsat.Core) == 0 {
		t.Fatal("UNSAT under assumptions should carry a core")
	}
	for _, l := range unsat.Core {
		if l != -2 && l != -3 {
			t.Fatalf("core %v contains non-assumption literal %d", unsat.Core, l)
		}
	}

	// Added clauses persist: pin ¬2, then the SAT query from before
	// must flip its verdict under assume 2.
	var pinned sessionQueryResult
	postJSON(t, base+"/query", sessionQueryRequest{Assume: []int{2}, Add: [][]int{{-2}}}, &pinned)
	if pinned.Verdict != "UNSAT" {
		t.Fatalf("after adding unit -2, assume 2: %+v, want UNSAT", pinned)
	}

	// Status reflects the served queries.
	var st sessionInfoView
	resp, err := http.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	_ = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Queries != 3 {
		t.Fatalf("status queries = %d, want 3", st.Queries)
	}

	// Delete, then every route must answer 404.
	req, _ := http.NewRequest(http.MethodDelete, base, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d, want 200", resp.StatusCode)
	}
	if resp, err = http.Get(base); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status after delete %d, want 404", resp.StatusCode)
		}
	}
	if resp := postJSON(t, base+"/query", sessionQueryRequest{Assume: []int{1}}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query after delete %d, want 404", resp.StatusCode)
	}
}

func TestHTTPSessionStream(t *testing.T) {
	ts, _ := newTestServer(t, Config{CPUBudget: 2, MaxRunning: 2})

	info := openSession(t, ts, gen.Pigeonhole(7))
	data, _ := json.Marshal(sessionQueryRequest{Stream: true})
	resp, err := http.Post(ts.URL+"/v1/sessions/"+info.ID+"/query", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}
	// Scan events; the last one must be a result carrying UNSAT.
	var lastEvent string
	var res sessionQueryResult
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			lastEvent = strings.TrimPrefix(line, "event: ")
			continue
		}
		if strings.HasPrefix(line, "data: ") && lastEvent == "result" {
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &res); err != nil {
				t.Fatalf("bad result event: %v", err)
			}
		}
	}
	if lastEvent != "result" {
		t.Fatalf("last event %q, want result", lastEvent)
	}
	if res.Verdict != "UNSAT" || res.Conflicts == 0 {
		t.Fatalf("streamed result %+v, want UNSAT with conflicts", res)
	}
}

func TestHTTPSessionBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, Config{CPUBudget: 1, MaxRunning: 1})

	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"bad dimacs", "/v1/sessions", sessionCreateRequest{DIMACS: "p cnf broken"}, http.StatusBadRequest},
		{"empty formula", "/v1/sessions", sessionCreateRequest{}, http.StatusBadRequest},
		{"unknown session", "/v1/sessions/nope/query", sessionQueryRequest{}, http.StatusNotFound},
	}
	for _, tc := range cases {
		if resp := postJSON(t, ts.URL+tc.url, tc.body, nil); resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// Zero literals are rejected before the query is enqueued.
	info := openSession(t, ts, gen.XorChain(5, false, 1))
	base := ts.URL + "/v1/sessions/" + info.ID
	if resp := postJSON(t, base+"/query", sessionQueryRequest{Assume: []int{0}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("zero assume literal: status %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, base+"/query", sessionQueryRequest{Add: [][]int{{1, 0}}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("zero add literal: status %d, want 400", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/v1/sessions/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown status: %d, want 404", resp.StatusCode)
		}
	}
}

// TestSchedulerSessionLedger checks that a busy session query is
// debited from the shared CPU ledger: SessionBusy rises while the
// query runs and returns to zero after, and the session gauges land in
// /metrics.
func TestSchedulerSessionLedger(t *testing.T) {
	ts, sched := newTestServer(t, Config{CPUBudget: 4, MaxRunning: 4})

	ss, err := sched.Sessions().Open(gen.Pigeonhole(9))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ss.Submit(t.Context(), session.Request{})
	if err != nil {
		t.Fatal(err)
	}
	// The query holds one ledger slot while solving.
	busy := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if sched.Stats().SessionBusy == 1 {
			busy = true
			break
		}
		select {
		case <-q.Done():
			t.Fatal("php9 finished before SessionBusy was observed")
		case <-time.After(2 * time.Millisecond):
		}
	}
	if !busy {
		t.Fatal("SessionBusy never reached 1 while a session query ran")
	}
	if _, err := q.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if sched.Stats().SessionBusy == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := sched.Stats().SessionBusy; got != 0 {
		t.Fatalf("SessionBusy = %d after query completion, want 0", got)
	}

	st := sched.Stats()
	if st.Sessions.Sessions != 1 || st.Sessions.Queries != 1 {
		t.Fatalf("session stats %+v, want 1 session / 1 query", st.Sessions)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range []string{
		"satserved_sessions 1",
		"satserved_session_queries_total 1",
		"satserved_session_busy 0",
		"satserved_sessions_resident 1",
		"satserved_session_evictions_total 0",
		"satserved_cache_evictions_total 0",
		"satserved_workers_in_use",
		"satserved_followers",
		"satserved_session_checkpoint_bytes",
	} {
		if !strings.Contains(string(body), line) {
			t.Errorf("/metrics missing %q\n%s", line, body)
		}
	}
}
