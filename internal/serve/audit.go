package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// auditRecord is one link of the hash-chained audit log: the digests of
// a certified verdict, bound to every earlier record through Hash =
// SHA-256(prev record's raw hash ‖ canonical encoding of this record's
// fields). Tampering with any stored record — or reordering records —
// breaks every later hash, so the chain head commits to the entire
// history of certified results.
type auditRecord struct {
	// Seq is the record's 1-based position in the chain.
	Seq uint64 `json:"seq"`
	// JobID / Kind / Verdict identify the certified result.
	JobID   string `json:"job_id"`
	Kind    Kind   `json:"kind"`
	Verdict string `json:"verdict"`
	// ResultDigest / ProofDigest / Checker mirror the ProofInfo fields
	// committed for the verdict.
	ResultDigest string `json:"result_digest"`
	ProofDigest  string `json:"proof_digest,omitempty"`
	Checker      string `json:"checker"`
	// UnixMS is the commit wall time.
	UnixMS int64 `json:"unix_ms"`
	// PrevHash / Hash are hex SHA-256 chain links; the genesis record's
	// PrevHash is all zeros.
	PrevHash string `json:"prev_hash"`
	Hash     string `json:"hash"`
}

// chainHash computes a record's chain hash over the previous raw hash
// and a canonical byte encoding of the record's own fields (fixed-width
// integers, NUL-terminated strings) — deliberately NOT the JSON bytes,
// so re-encoding cosmetics can never change the chain.
func chainHash(prev [sha256.Size]byte, rec *auditRecord) [sha256.Size]byte {
	h := sha256.New()
	h.Write(prev[:])
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], rec.Seq)
	h.Write(b[:])
	for _, s := range []string{rec.JobID, string(rec.Kind), rec.Verdict, rec.ResultDigest, rec.ProofDigest, rec.Checker} {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	binary.BigEndian.PutUint64(b[:], uint64(rec.UnixMS))
	h.Write(b[:])
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// auditKey encodes a sequence number as the record's store key: 8-byte
// big-endian, so the store's (Kind, Key)-sorted replay walks the chain
// in order.
func auditKey(seq uint64) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], seq)
	return k[:]
}

// auditLog is the scheduler's hash-chained audit trail of certified
// verdicts, persisted one record per store key. Unlike the write-behind
// heuristic state, audit appends are SYNCHRONOUS: a certified verdict
// is in the chain before any client can observe it, so the chain never
// under-reports what was served.
type auditLog struct {
	mu sync.Mutex
	st store.Store
	// owned marks a private in-memory store (the scheduler ran
	// store-less), closed with the log.
	owned bool
	// seq is the last assigned sequence number (0 = empty chain); head
	// the raw hash of record seq.
	seq  uint64
	head [sha256.Size]byte
	// bootOK reports whether the persisted chain verified intact at
	// open. Appends continue onto the stored head either way — the flag
	// is the tamper evidence, surfaced through /metrics and /v1/audit.
	bootOK  bool
	appends atomic.Int64
	errs    atomic.Int64
}

// openAudit loads (and verifies) the persisted chain. Verification
// failures do not block serving: the stored head is adopted so new
// appends keep extending what is actually on disk, and bootOK records
// the evidence.
func openAudit(st store.Store, owned bool) *auditLog {
	a := &auditLog{st: st, owned: owned, bootOK: true}
	var prev [sha256.Size]byte
	_ = st.Replay(func(rec store.Record) error {
		if rec.Kind != recAudit {
			return nil
		}
		var ar auditRecord
		if len(rec.Key) != 8 || json.Unmarshal(rec.Val, &ar) != nil {
			a.bootOK = false
			return nil
		}
		seq := binary.BigEndian.Uint64(rec.Key)
		want := chainHash(prev, &ar)
		if seq != a.seq+1 || ar.Seq != seq ||
			ar.PrevHash != hex.EncodeToString(prev[:]) ||
			ar.Hash != hex.EncodeToString(want[:]) {
			a.bootOK = false
		}
		if hb, err := hex.DecodeString(ar.Hash); err == nil && len(hb) == sha256.Size {
			copy(prev[:], hb)
		} else {
			prev = want
		}
		a.seq = seq
		return nil
	})
	a.head = prev
	return a
}

// append commits one certified verdict to the chain and returns its
// sequence number and hex hash. The store write happens under the log
// mutex and before the caller proceeds — the chain is durable (to the
// store's fsync cadence) by the time the verdict is visible.
func (a *auditLog) append(jobID string, kind Kind, verdict string, info *ProofInfo) (uint64, string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	rec := &auditRecord{
		Seq:          a.seq + 1,
		JobID:        jobID,
		Kind:         kind,
		Verdict:      verdict,
		ResultDigest: info.ResultDigest,
		ProofDigest:  info.ProofDigest,
		Checker:      info.Checker,
		UnixMS:       time.Now().UnixMilli(),
		PrevHash:     hex.EncodeToString(a.head[:]),
	}
	h := chainHash(a.head, rec)
	rec.Hash = hex.EncodeToString(h[:])
	val, err := json.Marshal(rec)
	if err != nil {
		a.errs.Add(1)
		return 0, "", err
	}
	if err := a.st.Put(store.Record{Kind: recAudit, Key: auditKey(rec.Seq), Val: val}); err != nil {
		a.errs.Add(1)
		return 0, "", err
	}
	a.seq = rec.Seq
	a.head = h
	a.appends.Add(1)
	return rec.Seq, rec.Hash, nil
}

// get loads the record at seq from the store.
func (a *auditLog) get(seq uint64) (*auditRecord, error) {
	val, ok := a.st.Get(recAudit, auditKey(seq))
	if !ok {
		return nil, fmt.Errorf("serve: no audit record %d", seq)
	}
	var rec auditRecord
	if err := json.Unmarshal(val, &rec); err != nil {
		return nil, fmt.Errorf("serve: bad audit record %d: %w", seq, err)
	}
	return &rec, nil
}

// verify returns the record at seq together with an inclusion check:
// the chain is recomputed hash by hash from the genesis record up to
// seq, so a verified record is provably part of the prefix every later
// record — and the current head — commits to.
func (a *auditLog) verify(seq uint64) (*auditRecord, bool, error) {
	a.mu.Lock()
	last := a.seq
	a.mu.Unlock()
	if seq == 0 || seq > last {
		return nil, false, fmt.Errorf("serve: no audit record %d (chain has %d)", seq, last)
	}
	ok := true
	var prev [sha256.Size]byte
	var target *auditRecord
	for i := uint64(1); i <= seq; i++ {
		rec, err := a.get(i)
		if err != nil {
			return nil, false, err
		}
		want := chainHash(prev, rec)
		if rec.Seq != i || rec.PrevHash != hex.EncodeToString(prev[:]) ||
			rec.Hash != hex.EncodeToString(want[:]) {
			ok = false
		}
		prev = want
		if i == seq {
			target = rec
		}
	}
	return target, ok, nil
}

// headInfo snapshots the chain: record count, hex head hash, and the
// boot-time verification flag.
func (a *auditLog) headInfo() (uint64, string, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seq, hex.EncodeToString(a.head[:]), a.bootOK
}

// close releases a privately-owned backing store; a caller-provided
// store is left open (its lifecycle belongs to the caller).
func (a *auditLog) close() {
	if a.owned {
		_ = a.st.Close()
	}
}
