package serve

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/solver"
	"repro/internal/store"
)

// Store record kinds used by the serving layer. These are part of the
// on-disk format — never renumber a live one.
const (
	// recResult stores a decided Result under its 32-byte job key.
	recResult store.Kind = 1
	// recRecipe stores a class's full recipe-family win counts under
	// the class label (whole-class last-write-wins records).
	recRecipe store.Kind = 2
	// recWarm stores a class's branching warm-start profile under the
	// class label.
	recWarm store.Kind = 3
	// recAudit stores one hash-chained audit record under its 8-byte
	// big-endian sequence number (see audit.go). Unlike the other kinds,
	// audit records are written synchronously and never tombstoned.
	recAudit store.Kind = 4
)

// --- entry codecs ---------------------------------------------------------
//
// All three codecs are strict on decode: the store is an input boundary
// (an operator can point -store-dir at anything), so malformed or
// semantically invalid values are skipped with an error, never
// installed.

// encodeResult serializes a decided result for the store. The
// delivery-path flags are cleared: Cached/Coalesced describe HOW one
// particular submission was served, not the verdict being persisted.
func encodeResult(res Result) ([]byte, error) {
	if !res.Decided {
		return nil, fmt.Errorf("serve: refusing to persist undecided result")
	}
	c := res.clone()
	c.Cached = false
	c.Coalesced = false
	return json.Marshal(c)
}

// decodeResult parses a persisted result and re-validates the
// invariant the cache depends on (only decided verdicts are stored).
func decodeResult(data []byte) (Result, error) {
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return Result{}, fmt.Errorf("serve: bad result record: %w", err)
	}
	if !res.Decided || res.Verdict == "" || res.Verdict == "UNKNOWN" {
		return Result{}, fmt.Errorf("serve: persisted result is not a decided verdict (%q)", res.Verdict)
	}
	switch res.Kind {
	case KindDIMACS, KindCEC, KindBMC:
	default:
		return Result{}, fmt.Errorf("serve: persisted result has unknown kind %q", res.Kind)
	}
	return res, nil
}

// recipeRecord is the JSON shape of a recRecipe value.
type recipeRecord struct {
	Fams map[string]int `json:"fams"`
}

func encodeFamilies(fams map[string]int) ([]byte, error) {
	return json.Marshal(recipeRecord{Fams: fams})
}

func decodeFamilies(data []byte) (map[string]int, error) {
	var rec recipeRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("serve: bad recipe record: %w", err)
	}
	if len(rec.Fams) == 0 {
		return nil, fmt.Errorf("serve: empty recipe record")
	}
	return rec.Fams, nil
}

func encodeWarm(prof []solver.WarmVar) ([]byte, error) {
	return json.Marshal(prof)
}

func decodeWarm(data []byte) ([]solver.WarmVar, error) {
	var prof []solver.WarmVar
	if err := json.Unmarshal(data, &prof); err != nil {
		return nil, fmt.Errorf("serve: bad warm record: %w", err)
	}
	if len(prof) == 0 {
		return nil, fmt.Errorf("serve: empty warm record")
	}
	for _, wv := range prof {
		if wv.Var <= 0 {
			return nil, fmt.Errorf("serve: warm record names variable %d", wv.Var)
		}
	}
	return prof, nil
}

// --- write-behind persister ----------------------------------------------

// persister is the asynchronous write-behind path from the scheduler's
// hot loop to the Store: decided verdicts, recipe wins and warm
// profiles are enqueued without blocking an executor and written by
// one background goroutine. The queue is bounded; under a write burst
// that outruns the disk, new records are DROPPED (counted in
// Stats.StoreDropped) rather than stalling solves — durability of
// heuristic state is best-effort by design, correctness never depends
// on it (see the write-behind caveats in ARCHITECTURE.md).
type persister struct {
	st      store.Store
	ch      chan store.Record
	done    chan struct{}
	writes  atomic.Int64
	dropped atomic.Int64
	errs    atomic.Int64
	once    sync.Once
}

// persistQueueDepth bounds in-flight write-behind records. 1024 ≈
// several seconds of decided-verdict throughput at service rates.
const persistQueueDepth = 1024

func newPersister(st store.Store) *persister {
	p := &persister{
		st:   st,
		ch:   make(chan store.Record, persistQueueDepth),
		done: make(chan struct{}),
	}
	go p.run()
	return p
}

func (p *persister) run() {
	defer close(p.done)
	for rec := range p.ch {
		if err := p.st.Put(rec); err != nil {
			p.errs.Add(1)
			continue
		}
		p.writes.Add(1)
	}
}

// enqueue hands a record to the writer without blocking; a full queue
// drops the record and counts it.
func (p *persister) enqueue(rec store.Record) {
	select {
	case p.ch <- rec:
	default:
		p.dropped.Add(1)
	}
}

// close drains every queued record and waits for the writer to exit.
func (p *persister) close() {
	p.once.Do(func() { close(p.ch) })
	<-p.done
}

// --- scheduler integration ------------------------------------------------

// StoreStats snapshots the persistence layer for Stats / metrics.
type StoreStats struct {
	// Enabled is false when the scheduler runs store-less.
	Enabled bool
	// ReplayedResults / ReplayedClasses / ReplayedWarm count the state
	// loaded at boot; ReplaySkipped counts records rejected by the
	// strict decoders; Replay is the serve-side load time (decode +
	// populate), on top of the store's own file replay.
	ReplayedResults, ReplayedClasses, ReplayedWarm, ReplaySkipped int64
	Replay                                                        time.Duration
	// Writes / Dropped / Errors count the write-behind path since boot.
	Writes, Dropped, Errors int64
	// Backend mirrors the store's own durability counters.
	Backend store.Metrics
}

// loadStore replays the configured store into the cache and recipe
// memory before the scheduler starts serving. Unknown kinds are
// ignored (forward compatibility); undecodable values are counted and
// skipped.
func (s *Scheduler) loadStore() {
	start := time.Now()
	_ = s.cfg.Store.Replay(func(rec store.Record) error {
		switch rec.Kind {
		case recResult:
			if len(rec.Key) != len(jobKey{}) {
				s.storeReplaySkipped++
				return nil
			}
			res, err := decodeResult(rec.Val)
			if err != nil {
				s.storeReplaySkipped++
				return nil
			}
			var key jobKey
			copy(key[:], rec.Key)
			s.cache.put(key, res)
			s.storeReplayedResults++
		case recRecipe:
			fams, err := decodeFamilies(rec.Val)
			if err != nil {
				s.storeReplaySkipped++
				return nil
			}
			s.mem.load(string(rec.Key), fams)
			s.storeReplayedClasses++
		case recWarm:
			prof, err := decodeWarm(rec.Val)
			if err != nil {
				s.storeReplaySkipped++
				return nil
			}
			s.mem.loadWarm(string(rec.Key), prof)
			s.storeReplayedWarm++
		}
		return nil
	})
	s.storeReplayDur = time.Since(start)
}

// persistResult enqueues a decided result under its job key, plus a
// tombstone for whatever entry the LRU evicted to make room — the
// store tracks the cache's live set, not an unbounded history.
func (s *Scheduler) persistResult(key jobKey, res Result, evictedKey jobKey, evicted bool) {
	if s.persist == nil {
		return
	}
	val, err := encodeResult(res)
	if err != nil {
		s.persist.errs.Add(1)
		return
	}
	s.persist.enqueue(store.Record{Kind: recResult, Key: append([]byte{}, key[:]...), Val: val})
	if evicted {
		s.persist.enqueue(store.Record{Kind: recResult, Key: append([]byte{}, evictedKey[:]...)})
	}
}

// persistRecipe enqueues a class's updated family counts.
func (s *Scheduler) persistRecipe(class string, fams map[string]int) {
	if s.persist == nil || class == "" || len(fams) == 0 {
		return
	}
	val, err := encodeFamilies(fams)
	if err != nil {
		s.persist.errs.Add(1)
		return
	}
	s.persist.enqueue(store.Record{Kind: recRecipe, Key: []byte(class), Val: val})
}

// persistWarm enqueues a class's latest warm-start profile.
func (s *Scheduler) persistWarm(class string, prof []solver.WarmVar) {
	if s.persist == nil || class == "" || len(prof) == 0 {
		return
	}
	val, err := encodeWarm(prof)
	if err != nil {
		s.persist.errs.Add(1)
		return
	}
	s.persist.enqueue(store.Record{Kind: recWarm, Key: []byte(class), Val: val})
}

// storeStats assembles the persistence snapshot for Stats.
func (s *Scheduler) storeStats() StoreStats {
	if s.cfg.Store == nil {
		return StoreStats{}
	}
	return StoreStats{
		Enabled:         true,
		ReplayedResults: s.storeReplayedResults,
		ReplayedClasses: s.storeReplayedClasses,
		ReplayedWarm:    s.storeReplayedWarm,
		ReplaySkipped:   s.storeReplaySkipped,
		Replay:          s.storeReplayDur,
		Writes:          s.persist.writes.Load(),
		Dropped:         s.persist.dropped.Load(),
		Errors:          s.persist.errs.Load(),
		Backend:         s.cfg.Store.Metrics(),
	}
}
