package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
)

// newBatchServer is newTestServer with a fast batch flush, so tests
// see streamed lines promptly.
func newBatchServer(t *testing.T, cfg Config) (*httptest.Server, *Scheduler) {
	t.Helper()
	sched := NewScheduler(cfg)
	srv := NewServer(sched)
	srv.batchFlushWait = 10 * time.Millisecond
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		sched.Close()
	})
	return ts, sched
}

// postBatch submits items and reads the whole NDJSON stream.
func postBatch(t *testing.T, ts *httptest.Server, items []Spec) []batchItemView {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs/batch", "application/json",
		strings.NewReader(mustJSON(t, batchRequest{Items: items})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q, want application/x-ndjson", ct)
	}
	var out []batchItemView
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var v batchItemView
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBatchMixedItemsCoalesce is the headline batch pin: 64 mixed
// DIMACS/CEC items with heavy duplication stream back one correct line
// per index, and the duplicates are served by coalescing and the cache
// — far fewer fresh solves than items.
func TestBatchMixedItemsCoalesce(t *testing.T) {
	ts, sched := newBatchServer(t, Config{CPUBudget: 4, MaxRunning: 4, QueueDepth: 128, DefaultTimeout: time.Minute})

	// 10 distinct payloads cycled to 64 items: 4 SAT, 2 UNSAT, 2 CEC
	// equivalent, 2 CEC inequivalent.
	distinct := []struct {
		spec Spec
		want string
	}{
		{satSpec(10, 1), "SAT"},
		{satSpec(10, 2), "SAT"},
		{satSpec(12, 3), "SAT"},
		{satSpec(12, 4), "SAT"},
		{unsatSpec(10, 5), "UNSAT"},
		{unsatSpec(12, 6), "UNSAT"},
		{cecSpec(t, true), "EQUIVALENT"},
		{cecSpec(t, true), "EQUIVALENT"},
		{cecSpec(t, false), "NOT_EQUIVALENT"},
		{cecSpec(t, false), "NOT_EQUIVALENT"},
	}
	const n = 64
	items := make([]Spec, n)
	want := make([]string, n)
	for i := range items {
		items[i] = distinct[i%len(distinct)].spec
		want[i] = distinct[i%len(distinct)].want
	}

	lines := postBatch(t, ts, items)
	if len(lines) != n {
		t.Fatalf("got %d lines, want %d", len(lines), n)
	}
	seen := make(map[int]bool, n)
	for _, v := range lines {
		if seen[v.Index] {
			t.Fatalf("index %d streamed twice", v.Index)
		}
		seen[v.Index] = true
		if v.Index < 0 || v.Index >= n {
			t.Fatalf("index %d out of range", v.Index)
		}
		if v.Status != StatusDone || v.Result == nil {
			t.Fatalf("item %d: %+v, want done with result", v.Index, v)
		}
		if v.Result.Verdict != want[v.Index] {
			t.Fatalf("item %d verdict %q, want %q", v.Index, v.Result.Verdict, want[v.Index])
		}
	}

	st := sched.Stats()
	if st.Solves > int64(len(distinct)) {
		t.Fatalf("solves = %d for %d distinct payloads: duplicates did not coalesce", st.Solves, len(distinct))
	}
	if served := st.CacheHits + st.Coalesced; served < int64(n-len(distinct)) {
		t.Fatalf("cache hits + coalesced = %d, want >= %d", served, n-len(distinct))
	}
}

// TestBatchPerItemDeadline: one item with a tiny budget answers
// UNKNOWN; its siblings decide normally — a deadline is per item,
// never per batch.
func TestBatchPerItemDeadline(t *testing.T) {
	ts, _ := newBatchServer(t, Config{CPUBudget: 2, MaxRunning: 2, QueueDepth: 16, DefaultTimeout: time.Minute})

	hard := dimacsSpec(gen.Pigeonhole(10))
	hard.TimeoutMS = 60
	items := []Spec{satSpec(10, 1), hard, satSpec(12, 2)}

	lines := postBatch(t, ts, items)
	if len(lines) != len(items) {
		t.Fatalf("got %d lines, want %d", len(lines), len(items))
	}
	for _, v := range lines {
		switch v.Index {
		case 1:
			if v.Status != StatusDone || v.Result == nil || v.Result.Verdict != "UNKNOWN" || v.Result.Decided {
				t.Fatalf("deadline item: %+v, want done UNKNOWN", v)
			}
		default:
			if v.Status != StatusDone || v.Result == nil || v.Result.Verdict != "SAT" {
				t.Fatalf("sibling %d poisoned by the deadline item: %+v", v.Index, v)
			}
		}
	}
}

// TestBatchBadItemDoesNotPoisonSiblings: an unparseable item fails in
// place; the rest of the batch is unaffected.
func TestBatchBadItemDoesNotPoisonSiblings(t *testing.T) {
	ts, _ := newBatchServer(t, Config{CPUBudget: 2, MaxRunning: 2, QueueDepth: 16})

	items := []Spec{satSpec(10, 1), {Kind: KindDIMACS, DIMACS: "p cnf nonsense"}, unsatSpec(10, 2)}
	lines := postBatch(t, ts, items)
	if len(lines) != len(items) {
		t.Fatalf("got %d lines, want %d", len(lines), len(items))
	}
	for _, v := range lines {
		switch v.Index {
		case 1:
			if v.Status != StatusFailed || v.Error == "" {
				t.Fatalf("bad item: %+v, want failed with error", v)
			}
		case 0:
			if v.Result == nil || v.Result.Verdict != "SAT" {
				t.Fatalf("sibling 0: %+v, want SAT", v)
			}
		case 2:
			if v.Result == nil || v.Result.Verdict != "UNSAT" {
				t.Fatalf("sibling 2: %+v, want UNSAT", v)
			}
		}
	}
}

// TestBatchValidation: empty and oversized batches are rejected before
// any work starts.
func TestBatchValidation(t *testing.T) {
	ts, sched := newBatchServer(t, Config{CPUBudget: 1, MaxRunning: 1})

	resp, err := http.Post(ts.URL+"/v1/jobs/batch", "application/json", strings.NewReader(`{"items":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}

	items := make([]Spec, maxBatchItems+1)
	for i := range items {
		items[i] = satSpec(10, 1)
	}
	resp, err = http.Post(ts.URL+"/v1/jobs/batch", "application/json",
		strings.NewReader(mustJSON(t, batchRequest{Items: items})))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", resp.StatusCode)
	}
	if got := sched.Stats().Submitted; got != 0 {
		t.Fatalf("rejected batches still submitted %d jobs", got)
	}
}

// TestBatchDisconnectCancelsOnlyUnfinished: a client that goes away
// mid-batch cancels the still-running items and nothing else — the
// finished ones stay completed (and cached).
func TestBatchDisconnectCancelsOnlyUnfinished(t *testing.T) {
	ts, sched := newBatchServer(t, Config{CPUBudget: 2, MaxRunning: 2, QueueDepth: 16, DefaultTimeout: time.Minute})

	blocker := dimacsSpec(gen.Pigeonhole(10))
	blocker.TimeoutMS = 60_000
	items := []Spec{satSpec(10, 1), blocker}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs/batch",
		strings.NewReader(mustJSON(t, batchRequest{Items: items})))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The fast item streams first; the blocker is still solving.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line before disconnect: %v", sc.Err())
	}
	var first batchItemView
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Index != 0 || first.Result == nil || first.Result.Verdict != "SAT" {
		t.Fatalf("first line %+v, want item 0 SAT", first)
	}

	cancel() // drop the connection mid-batch

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := sched.Stats()
		if st.Cancelled >= 1 && st.Running == 0 {
			if st.Completed < 1 {
				t.Fatalf("finished sibling lost: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker not cancelled after disconnect: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatchShutdownNoGoroutineLeaks closes the whole stack with a
// batch still in flight and checks every goroutine drains.
func TestBatchShutdownNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	sched := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, QueueDepth: 16, DefaultTimeout: time.Minute})
	srv := NewServer(sched)
	srv.batchFlushWait = 10 * time.Millisecond
	ts := httptest.NewServer(srv)

	blocker := dimacsSpec(gen.Pigeonhole(10))
	blocker.TimeoutMS = 60_000
	b2 := dimacsSpec(gen.Pigeonhole(9))
	b2.TimeoutMS = 60_000
	items := []Spec{blocker, b2, satSpec(10, 1)}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs/batch",
		strings.NewReader(mustJSON(t, batchRequest{Items: items})))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the blockers are actually running, then tear down.
	deadline := time.Now().Add(5 * time.Second)
	for sched.Stats().Running < 2 {
		if time.Now().After(deadline) {
			t.Fatal("blockers never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	resp.Body.Close()
	ts.Close()
	sched.Close()

	deadline = time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if now := runtime.NumGoroutine(); now <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after shutdown", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatchFleetRoutesItems: with fleet routing on, batch items are
// routed per item — each distinct formula is solved exactly once, on
// its owner, no matter which replica received the batch.
func TestBatchFleetRoutesItems(t *testing.T) {
	reps := newTestFleet(t, 2, Config{CPUBudget: 2, MaxRunning: 2, QueueDepth: 32, DefaultTimeout: time.Minute})

	const n = 8
	items := make([]Spec, n)
	remote := 0
	for i := range items {
		items[i] = satSpec(10, int64(100+i))
		if ownerIndex(t, reps, items[i]) == 1 {
			remote++
		}
	}
	lines := postBatch(t, reps[0].ts, items)
	if len(lines) != n {
		t.Fatalf("got %d lines, want %d", len(lines), n)
	}
	for _, v := range lines {
		if v.Status != StatusDone || v.Result == nil || v.Result.Verdict != "SAT" {
			t.Fatalf("item %d: %+v, want done SAT", v.Index, v)
		}
	}
	if got := fleetSolves([]*fleetReplica{reps[0], reps[1]}); got != n {
		t.Fatalf("fleet-wide solves = %d, want %d distinct", got, n)
	}
	if got := reps[1].sched.Stats().Solves; got != int64(remote) {
		t.Fatalf("replica 1 solves = %d, want its %d owned items", got, remote)
	}
	if got := reps[0].fleet.Stats().Forwards; got != int64(remote) {
		t.Fatalf("replica 0 forwards = %d, want %d", got, remote)
	}
}
