package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/solver"
	"repro/internal/store"
)

func proofSpec(sp Spec) Spec {
	sp.Proof = true
	return sp
}

func submitResult(t *testing.T, s *Scheduler, sp Spec) Result {
	t.Helper()
	j, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	return mustResult(t, j)
}

// TestProofJobCertifiedUnsat is the tentpole acceptance path: an UNSAT
// DIMACS job with "proof": true answers with a DRAT stream that the
// independent checker accepts against the submitted formula, digests
// that match the stream, and an audit record whose inclusion proof
// verifies.
func TestProofJobCertifiedUnsat(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2})
	defer s.Close()

	res := submitResult(t, s, proofSpec(unsatSpec(8, 1)))
	if res.Verdict != "UNSAT" || !res.Decided {
		t.Fatalf("verdict %q decided=%v, want UNSAT", res.Verdict, res.Decided)
	}
	p := res.Proof
	if p == nil {
		t.Fatal("proof job returned no certification block")
	}
	if p.Checker != "verified" {
		t.Fatalf("checker %q, want verified", p.Checker)
	}
	if p.DRAT == "" {
		t.Fatal("verified UNSAT certificate carries no DRAT stream")
	}
	// Independent re-verification of the served stream, exactly what an
	// external client would do.
	f := gen.XorChain(8, true, 1)
	if err := solver.VerifyDRAT(f, strings.NewReader(p.DRAT)); err != nil {
		t.Fatalf("served DRAT rejected by independent checker: %v", err)
	}
	sum := sha256.Sum256([]byte(p.DRAT))
	if p.ProofDigest != hex.EncodeToString(sum[:]) {
		t.Fatal("proof digest does not match the served stream")
	}
	if p.ResultDigest == "" {
		t.Fatal("no result digest")
	}
	if p.AuditSeq == 0 || p.AuditHash == "" {
		t.Fatalf("certificate not committed to the audit chain: %+v", p)
	}
	rec, ok, err := s.audit.verify(p.AuditSeq)
	if err != nil || !ok {
		t.Fatalf("audit inclusion check failed: ok=%v err=%v", ok, err)
	}
	if rec.Hash != p.AuditHash || rec.ProofDigest != p.ProofDigest || rec.Verdict != "UNSAT" {
		t.Fatalf("audit record %+v does not match certificate %+v", rec, p)
	}
	st := s.Stats()
	if st.ProofJobs != 1 || st.AuditRecords != 1 || !st.AuditChainValid {
		t.Fatalf("stats %+v, want 1 proof job, 1 audit record, valid chain", st)
	}
	if st.ProofFailures != 0 {
		t.Fatalf("unexpected proof check failures: %d", st.ProofFailures)
	}
}

// TestProofJobTrivialUnsat: a formula refuted by root-level propagation
// alone has an EMPTY refutation — no lemmas are needed, the checker's
// final database-conflicts pass certifies the formula against itself.
// The certificate must come back "verified", not "unavailable".
func TestProofJobTrivialUnsat(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2})
	defer s.Close()

	res := submitResult(t, s, proofSpec(Spec{
		Kind:   KindDIMACS,
		DIMACS: "p cnf 1 2\n1 0\n-1 0\n",
	}))
	if res.Verdict != "UNSAT" || !res.Decided {
		t.Fatalf("verdict %q decided=%v, want UNSAT", res.Verdict, res.Decided)
	}
	p := res.Proof
	if p == nil {
		t.Fatal("proof job returned no certification block")
	}
	if p.Checker != "verified" {
		t.Fatalf("checker %q, want verified (empty refutation)", p.Checker)
	}
	if p.DRAT != "" || p.Deletions != 0 {
		t.Fatalf("trivial refutation should be empty, got %d bytes, %d deletions", len(p.DRAT), p.Deletions)
	}
	if p.AuditSeq == 0 {
		t.Fatal("trivial certificate not audited")
	}
	if _, ok, err := s.audit.verify(p.AuditSeq); err != nil || !ok {
		t.Fatalf("audit inclusion proof: ok=%v err=%v", ok, err)
	}
}

// TestProofJobCertifiedSat: SAT verdicts are certified by the
// server-side model check and audited, with no DRAT payload.
func TestProofJobCertifiedSat(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2})
	defer s.Close()

	res := submitResult(t, s, proofSpec(satSpec(8, 2)))
	if res.Verdict != "SAT" {
		t.Fatalf("verdict %q, want SAT", res.Verdict)
	}
	p := res.Proof
	if p == nil || p.Checker != "verified" {
		t.Fatalf("proof block %+v, want verified", p)
	}
	if p.DRAT != "" {
		t.Fatal("SAT certificate must not carry a DRAT stream")
	}
	if p.AuditSeq == 0 {
		t.Fatal("SAT certificate not audited")
	}
}

// TestProofCacheSeparation pins the satellite bugfix: proof jobs live
// in a disjoint cache keyspace, so a certified submission is never
// satisfied from a proofless entry (and vice versa), while repeat
// certified submissions do hit — certificate intact.
func TestProofCacheSeparation(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2})
	defer s.Close()

	plain := unsatSpec(7, 3)
	r1 := submitResult(t, s, plain)
	if r1.Cached || r1.Proof != nil {
		t.Fatalf("fresh plain solve: %+v", r1)
	}
	// Same formula with proof: the proofless entry must not serve it.
	r2 := submitResult(t, s, proofSpec(plain))
	if r2.Cached {
		t.Fatal("proof job satisfied from a proofless cache entry")
	}
	if r2.Proof == nil || r2.Proof.Checker != "verified" {
		t.Fatalf("proof job not certified: %+v", r2.Proof)
	}
	// Repeat proof submission: a hit, with the certificate intact.
	r3 := submitResult(t, s, proofSpec(plain))
	if !r3.Cached {
		t.Fatal("second proof submission should hit the proof-keyed entry")
	}
	if r3.Proof == nil || r3.Proof.DRAT != r2.Proof.DRAT || r3.Proof.AuditSeq != r2.Proof.AuditSeq {
		t.Fatalf("cached certificate mangled: %+v vs %+v", r3.Proof, r2.Proof)
	}
	// The plain entry still serves plain submissions, without paying for
	// the certificate payload.
	r4 := submitResult(t, s, plain)
	if !r4.Cached || r4.Proof != nil {
		t.Fatalf("plain resubmission: %+v", r4)
	}
}

// TestProofIgnoresSmuggledProoflessEntry: even a proofless result
// planted directly under the proof-namespace key (a corrupted or
// hand-edited store) cannot satisfy a certified submission.
func TestProofIgnoresSmuggledProoflessEntry(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2})
	defer s.Close()

	sp := proofSpec(unsatSpec(6, 4))
	parsed, _, err := sp.parse()
	if err != nil {
		t.Fatal(err)
	}
	s.cache.put(sp.cacheKey(parsed), Result{Kind: KindDIMACS, Verdict: "UNSAT", Decided: true})
	res := submitResult(t, s, sp)
	if res.Cached || res.Proof == nil {
		t.Fatalf("smuggled proofless entry satisfied a proof job: %+v", res)
	}
}

// TestProofRejectedForNonDIMACS: certification is a DIMACS-only
// contract; other kinds answer ErrBadJob at submission.
func TestProofRejectedForNonDIMACS(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 1, MaxRunning: 1})
	defer s.Close()

	cec := cecSpec(t, true)
	cec.Proof = true
	if _, err := s.Submit(cec); !errors.Is(err, ErrBadJob) {
		t.Fatalf("CEC proof submission: %v, want ErrBadJob", err)
	}
	bmc := bmcSpec(3)
	bmc.Proof = true
	if _, err := s.Submit(bmc); !errors.Is(err, ErrBadJob) {
		t.Fatalf("BMC proof submission: %v, want ErrBadJob", err)
	}
}

// TestAuditChainSurvivesRestart: the chain head, the inclusion proof of
// an earlier record, and the cached certificate itself all survive a
// scheduler restart over the same store, and new appends extend the
// recovered chain.
func TestAuditChainSurvivesRestart(t *testing.T) {
	st := store.NewMem()
	s1 := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, Store: st})
	sp := proofSpec(unsatSpec(8, 5))
	r1 := submitResult(t, s1, sp)
	if r1.Proof == nil || r1.Proof.AuditSeq == 0 {
		t.Fatalf("no audited certificate: %+v", r1.Proof)
	}
	seq, hash := r1.Proof.AuditSeq, r1.Proof.AuditHash
	len1, head1, _ := s1.audit.headInfo()
	s1.Close()

	s2 := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, Store: st})
	defer s2.Close()
	len2, head2, ok := s2.audit.headInfo()
	if !ok {
		t.Fatal("recovered chain failed boot verification")
	}
	if len2 != len1 || head2 != head1 {
		t.Fatalf("chain head changed across restart: (%d,%s) vs (%d,%s)", len2, head2, len1, head1)
	}
	rec, vok, err := s2.audit.verify(seq)
	if err != nil || !vok {
		t.Fatalf("inclusion proof failed after restart: ok=%v err=%v", vok, err)
	}
	if rec.Hash != hash {
		t.Fatal("audit record hash changed across restart")
	}
	// The persisted result replays as a cache hit WITH its certificate.
	r2 := submitResult(t, s2, sp)
	if !r2.Cached || r2.Proof == nil || r2.Proof.AuditSeq != seq {
		t.Fatalf("restart lost the certified cache entry: %+v", r2)
	}
	// New appends continue the recovered chain.
	r3 := submitResult(t, s2, proofSpec(unsatSpec(8, 6)))
	if r3.Proof == nil || r3.Proof.AuditSeq != seq+1 {
		t.Fatalf("append after restart got seq %d, want %d", r3.Proof.AuditSeq, seq+1)
	}
}

// TestAuditDetectsTamper: flipping one byte of a stored record breaks
// its inclusion proof, and a restart over the tampered store reports
// the chain invalid.
func TestAuditDetectsTamper(t *testing.T) {
	st := store.NewMem()
	s1 := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, Store: st})
	r := submitResult(t, s1, proofSpec(unsatSpec(7, 7)))
	seq := r.Proof.AuditSeq
	s1.Close()

	val, okGet := st.Get(recAudit, auditKey(seq))
	if !okGet {
		t.Fatal("audit record missing from store")
	}
	tampered := bytes.Replace(val, []byte(`"UNSAT"`), []byte(`"SAT__"`), 1)
	if bytes.Equal(tampered, val) {
		t.Fatal("tamper substitution did not apply")
	}
	if err := st.Put(store.Record{Kind: recAudit, Key: auditKey(seq), Val: tampered}); err != nil {
		t.Fatal(err)
	}

	s2 := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, Store: st})
	defer s2.Close()
	if _, _, ok := s2.audit.headInfo(); ok {
		t.Fatal("tampered chain passed boot verification")
	}
	if _, vok, err := s2.audit.verify(seq); err == nil && vok {
		t.Fatal("tampered record passed its inclusion check")
	}
}

// TestHTTPProofAndAuditEndpoints drives the certification surface the
// way a client does: submit with "proof": true, fetch the certificate
// from /v1/jobs/{id}/proof, check its audit record and the chain head,
// and confirm the proof metrics are exported.
func TestHTTPProofAndAuditEndpoints(t *testing.T) {
	ts, _ := newTestServer(t, Config{CPUBudget: 2, MaxRunning: 2})

	resp, v := postJob(t, ts, submitRequest{Spec: proofSpec(unsatSpec(8, 9))})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d, want 200", resp.StatusCode)
	}
	if v.Result == nil || v.Result.Proof == nil {
		t.Fatalf("view %+v, want an inline certificate", v)
	}

	pr, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/proof")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("proof status %d, want 200", pr.StatusCode)
	}
	var proofResp struct {
		Verdict string     `json:"verdict"`
		Decided bool       `json:"decided"`
		Proof   *ProofInfo `json:"proof"`
	}
	if err := json.NewDecoder(pr.Body).Decode(&proofResp); err != nil {
		t.Fatal(err)
	}
	if proofResp.Verdict != "UNSAT" || !proofResp.Decided {
		t.Fatalf("proof endpoint verdict %+v", proofResp)
	}
	p := proofResp.Proof
	if p == nil || p.Checker != "verified" || p.DRAT == "" || p.AuditSeq == 0 {
		t.Fatalf("proof block %+v", p)
	}
	if err := solver.VerifyDRAT(gen.XorChain(8, true, 9), strings.NewReader(p.DRAT)); err != nil {
		t.Fatalf("endpoint DRAT rejected: %v", err)
	}

	ar, err := http.Get(fmt.Sprintf("%s/v1/audit/%d", ts.URL, p.AuditSeq))
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Body.Close()
	var auditResp struct {
		Record        *auditRecord `json:"record"`
		ChainVerified bool         `json:"chain_verified"`
	}
	if err := json.NewDecoder(ar.Body).Decode(&auditResp); err != nil {
		t.Fatal(err)
	}
	if ar.StatusCode != http.StatusOK || !auditResp.ChainVerified {
		t.Fatalf("audit record status %d verified=%v", ar.StatusCode, auditResp.ChainVerified)
	}
	if auditResp.Record.Hash != p.AuditHash {
		t.Fatal("audit endpoint hash does not match the certificate")
	}

	hr, err := http.Get(ts.URL + "/v1/audit/head")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var headResp struct {
		Records uint64 `json:"records"`
		Head    string `json:"head"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&headResp); err != nil {
		t.Fatal(err)
	}
	if headResp.Records == 0 || headResp.Head == "" {
		t.Fatalf("audit head %+v", headResp)
	}

	// A proofless job's /proof is a 404, not an empty certificate.
	_, v2 := postJob(t, ts, submitRequest{Spec: satSpec(6, 1)})
	nr, err := http.Get(ts.URL + "/v1/jobs/" + v2.ID + "/proof")
	if err != nil {
		t.Fatal(err)
	}
	nr.Body.Close()
	if nr.StatusCode != http.StatusNotFound {
		t.Fatalf("proofless job /proof status %d, want 404", nr.StatusCode)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	raw, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, want := range []string{
		"satserved_proof_jobs_total 1",
		"satserved_audit_records 1",
		"satserved_audit_chain_valid 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}
