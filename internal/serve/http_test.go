package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/gen"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Scheduler) {
	t.Helper()
	sched := NewScheduler(cfg)
	srv := NewServer(sched)
	srv.watchPeriod = 20 * time.Millisecond
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		sched.Close()
	})
	return ts, sched
}

func postJob(t *testing.T, ts *httptest.Server, body any) (*http.Response, View) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return resp, v
}

func TestHTTPSubmitSync(t *testing.T) {
	ts, _ := newTestServer(t, Config{CPUBudget: 2, MaxRunning: 2})

	resp, v := postJob(t, ts, submitRequest{Spec: satSpec(10, 1)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if v.Status != StatusDone || v.Result == nil || v.Result.Verdict != "SAT" {
		t.Fatalf("view %+v, want done SAT", v)
	}
	if len(v.Result.Model) == 0 {
		t.Fatal("SAT result should carry a model")
	}
	// The model must satisfy the formula.
	f := gen.XorChain(10, false, 1)
	m := cnf.NewAssignment(f.NumVars())
	for _, l := range v.Result.Model {
		lit := cnf.FromDIMACS(l)
		if lit.IsNeg() {
			m[lit.Var()] = cnf.False
		} else {
			m[lit.Var()] = cnf.True
		}
	}
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if m.LitValue(l) == cnf.True {
				sat = true
				break
			}
		}
		if !sat {
			t.Fatalf("returned model does not satisfy clause %v", c)
		}
	}
}

func TestHTTPSubmitAsyncAndStatus(t *testing.T) {
	ts, _ := newTestServer(t, Config{CPUBudget: 2, MaxRunning: 2})

	resp, v := postJob(t, ts, submitRequest{Spec: bmcSpec(8), Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	if v.ID == "" {
		t.Fatal("async submit should return a job ID")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got View
		_ = json.NewDecoder(r.Body).Decode(&got)
		r.Body.Close()
		if got.Status == StatusDone {
			if got.Result.Verdict != "VIOLATED" || got.Result.Depth != 7 {
				t.Fatalf("result %+v, want VIOLATED at depth 7", got.Result)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if r, err := http.Get(ts.URL + "/v1/jobs/nope"); err != nil || r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %v %d, want 404", err, r.StatusCode)
	}
}

func TestHTTPBadRequest(t *testing.T) {
	ts, _ := newTestServer(t, Config{CPUBudget: 1, MaxRunning: 1})
	resp, _ := postJob(t, ts, submitRequest{Spec: Spec{Kind: KindDIMACS, DIMACS: "p cnf broken"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	r, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", r.StatusCode)
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	ts, sched := newTestServer(t, Config{CPUBudget: 1, MaxRunning: 1, QueueDepth: 1})

	_, blocker := postJob(t, ts, submitRequest{Spec: blockerSpec(), Async: true})
	waitStatus(t, sched.Get(blocker.ID), StatusRunning)
	if resp, _ := postJob(t, ts, submitRequest{Spec: satSpec(10, 1), Async: true}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("filler status %d, want 202", resp.StatusCode)
	}
	resp, _ := postJob(t, ts, submitRequest{Spec: satSpec(10, 2), Async: true})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 should carry Retry-After")
	}
	sched.Get(blocker.ID).Cancel()
}

func TestHTTPCancel(t *testing.T) {
	ts, sched := newTestServer(t, Config{CPUBudget: 1, MaxRunning: 1})

	_, v := postJob(t, ts, submitRequest{Spec: blockerSpec(), Async: true})
	waitStatus(t, sched.Get(v.ID), StatusRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d, want 200", resp.StatusCode)
	}
	waitStatus(t, sched.Get(v.ID), StatusCancelled)
}

// TestHTTPWatchStreams reads the SSE progress stream of a running job
// and checks it carries live conflict counters, then a terminal event.
func TestHTTPWatchStreams(t *testing.T) {
	ts, sched := newTestServer(t, Config{CPUBudget: 2, MaxRunning: 1})

	_, v := postJob(t, ts, submitRequest{Spec: blockerSpec(), Async: true})
	job := sched.Get(v.ID)
	waitStatus(t, job, StatusRunning)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}

	// Cancel the job after a few samples so the stream terminates.
	go func() {
		time.Sleep(150 * time.Millisecond)
		job.Cancel()
	}()

	sc := bufio.NewScanner(resp.Body)
	var views []View
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev View
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		views = append(views, ev)
	}
	if len(views) < 2 {
		t.Fatalf("got %d events, want at least a progress sample and a terminal view", len(views))
	}
	sawProgress := false
	for _, ev := range views {
		if ev.Status == StatusRunning && ev.Progress != nil && len(ev.Progress.Workers) > 0 {
			sawProgress = true
		}
	}
	if !sawProgress {
		t.Error("no running event carried live worker progress")
	}
	if last := views[len(views)-1]; last.Status != StatusCancelled {
		t.Errorf("final event status %s, want cancelled", last.Status)
	}
}

func TestHTTPHealthzMetrics(t *testing.T) {
	ts, _ := newTestServer(t, Config{CPUBudget: 1, MaxRunning: 1})
	postJob(t, ts, submitRequest{Spec: satSpec(10, 1)})

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	_ = json.NewDecoder(r.Body).Decode(&hz)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || hz["status"] != "ok" {
		t.Fatalf("healthz %d %v", r.StatusCode, hz)
	}

	r, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(r.Body)
	r.Body.Close()
	body := buf.String()
	for _, want := range []string{
		"satserved_jobs_submitted_total 1",
		"satserved_jobs_completed_total 1",
		"satserved_solves_total 1",
		"satserved_queue_depth 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestHTTPCoalescedAndCachedFlags drives the dedup path end to end over
// HTTP: two concurrent identical submissions produce one solve, and a
// third later submission is served from the cache.
func TestHTTPCoalescedAndCachedFlags(t *testing.T) {
	ts, sched := newTestServer(t, Config{CPUBudget: 1, MaxRunning: 1, QueueDepth: 8})

	_, blocker := postJob(t, ts, submitRequest{Spec: blockerSpec(), Async: true})
	waitStatus(t, sched.Get(blocker.ID), StatusRunning)

	spec := unsatSpec(10, 7)
	_, lead := postJob(t, ts, submitRequest{Spec: spec, Async: true})
	_, follow := postJob(t, ts, submitRequest{Spec: spec, Async: true})
	sched.Get(blocker.ID).Cancel()

	get := func(id string) View {
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var v View
		_ = json.NewDecoder(r.Body).Decode(&v)
		return v
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		lv, fv := get(lead.ID), get(follow.ID)
		if lv.Status == StatusDone && fv.Status == StatusDone {
			if lv.Result.Coalesced || !fv.Result.Coalesced {
				t.Fatalf("coalesced flags: leader %v follower %v", lv.Result.Coalesced, fv.Result.Coalesced)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs stuck: %s / %s", lv.Status, fv.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, v := postJob(t, ts, submitRequest{Spec: spec})
	if resp.StatusCode != http.StatusOK || v.Result == nil || !v.Result.Cached {
		t.Fatalf("third submission should be a cache hit, got %d %+v", resp.StatusCode, v)
	}
	st := sched.Stats()
	if st.Coalesced != 1 || st.CacheHits != 1 {
		t.Fatalf("coalesced %d cacheHits %d, want 1 and 1", st.Coalesced, st.CacheHits)
	}
}
