package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/session"
)

// BenchmarkE34_Serve measures service throughput (jobs/s) for the three
// workload shapes the serving layer distinguishes:
//
//	cold      — every job is a new formula: every job pays a solve
//	cached    — one warm formula resubmitted: pure result-cache hits
//	coalesced — bursts of an identical fresh formula: one solve per
//	            burst, the rest fan out from the singleflight leader
//
// Comparing the three quantifies what the cache and coalescing buy over
// solving everything.
func BenchmarkE34_Serve(b *testing.B) {
	solveWait := func(b *testing.B, s *Scheduler, sp Spec) Result {
		b.Helper()
		j, err := s.Submit(sp)
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		res, err := j.Wait(ctx)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	freshSpec := func(i int) Spec {
		return dimacsSpec(gen.XorChain(20, i%2 == 0, int64(i)))
	}

	b.Run("cold", func(b *testing.B) {
		s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, QueueDepth: 1 << 16})
		defer s.Close()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			solveWait(b, s, freshSpec(i))
		}
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/s")
	})

	b.Run("cached", func(b *testing.B) {
		s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, QueueDepth: 1 << 16})
		defer s.Close()
		warm := freshSpec(0)
		solveWait(b, s, warm)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if res := solveWait(b, s, warm); !res.Cached {
				b.Fatal("expected a cache hit")
			}
		}
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/s")
	})

	b.Run("coalesced", func(b *testing.B) {
		const burst = 8
		s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, QueueDepth: 1 << 16})
		defer s.Close()
		start := time.Now()
		jobs := 0
		for i := 0; i < b.N; i++ {
			// A fresh formula per burst keeps the cache out of the
			// picture; within the burst, followers coalesce onto the
			// first submission.
			sp := dimacsSpec(gen.XorChain(20, true, int64(1_000_000+i)))
			handles := make([]*Job, burst)
			for k := range handles {
				j, err := s.Submit(sp)
				if err != nil {
					b.Fatal(err)
				}
				handles[k] = j
			}
			for _, j := range handles {
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				if _, err := j.Wait(ctx); err != nil {
					cancel()
					b.Fatal(err)
				}
				cancel()
			}
			jobs += burst
		}
		st := s.Stats()
		if st.Solves > int64(b.N) {
			b.Fatalf("%d solves for %d bursts: coalescing failed", st.Solves, b.N)
		}
		b.ReportMetric(float64(jobs)/time.Since(start).Seconds(), "jobs/s")
	})
}

// BenchmarkE35_Session compares the per-query cost of assumption
// queries against a resident session versus one-shot jobs over the
// same formula. Both arms run the same query stream: the i-th query
// asks "is the formula satisfiable with variable v pinned to a random
// polarity?". The session arm ships two literals per query and reuses
// the warm solver (arena, learnt clauses, VSIDS, phases); the one-shot
// arm re-serializes the formula with the pin as an extra unit clause —
// a fresh fingerprint every time, so the result cache cannot help, and
// the service pays parse + solver construction + cold search per query.
// The issue's acceptance bar is a ≥3× lower per-query latency for the
// session arm.
func BenchmarkE35_Session(b *testing.B) {
	// Satisfiable and non-trivial: a 3-SAT instance below the phase
	// transition, big enough that building a solver costs something.
	const vars = 150
	base := gen.RandomKSAT(vars, 4*vars, 3, 42)
	// pins maps i to a distinct two-literal assumption set: one literal
	// from the low half of the variable range, one from the high half
	// (mixed-radix decomposition of i). Disjoint halves mean no set can
	// equal another under reordering, so no two queries build the same
	// formula and the one-shot arm can never be served from the result
	// cache (its fingerprint is clause-order-insensitive).
	const half = vars / 2
	pins := func(i int) []cnf.Lit {
		mk := func(v int, neg bool) cnf.Lit {
			if neg {
				return cnf.NegLit(cnf.Var(v))
			}
			return cnf.PosLit(cnf.Var(v))
		}
		return []cnf.Lit{
			mk(i%half+1, (i/half)%2 == 0),
			mk(half+(i/(2*half))%half+1, (i/(2*half*half))%2 == 0),
		}
	}

	b.Run("session", func(b *testing.B) {
		s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, QueueDepth: 1 << 16})
		defer s.Close()
		ss, err := s.Sessions().Open(base.Clone())
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			q, err := ss.Submit(ctx, session.Request{Assume: pins(i)})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := q.Wait(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(time.Since(start).Microseconds())/float64(b.N), "µs/query")
	})

	b.Run("oneshot", func(b *testing.B) {
		s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, QueueDepth: 1 << 16})
		defer s.Close()
		ctx := context.Background()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			f := base.Clone()
			for _, l := range pins(i) {
				f.AddClause(cnf.Clause{l})
			}
			j, err := s.Submit(Spec{Kind: KindDIMACS, DIMACS: cnf.DIMACSString(f)})
			if err != nil {
				b.Fatal(err)
			}
			res, err := j.Wait(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if res.Cached {
				b.Fatal("one-shot arm must not hit the cache")
			}
		}
		b.ReportMetric(float64(time.Since(start).Microseconds())/float64(b.N), "µs/query")
	})
}
