package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/gen"
)

// BenchmarkE34_Serve measures service throughput (jobs/s) for the three
// workload shapes the serving layer distinguishes:
//
//	cold      — every job is a new formula: every job pays a solve
//	cached    — one warm formula resubmitted: pure result-cache hits
//	coalesced — bursts of an identical fresh formula: one solve per
//	            burst, the rest fan out from the singleflight leader
//
// Comparing the three quantifies what the cache and coalescing buy over
// solving everything.
func BenchmarkE34_Serve(b *testing.B) {
	solveWait := func(b *testing.B, s *Scheduler, sp Spec) Result {
		b.Helper()
		j, err := s.Submit(sp)
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		res, err := j.Wait(ctx)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	freshSpec := func(i int) Spec {
		return dimacsSpec(gen.XorChain(20, i%2 == 0, int64(i)))
	}

	b.Run("cold", func(b *testing.B) {
		s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, QueueDepth: 1 << 16})
		defer s.Close()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			solveWait(b, s, freshSpec(i))
		}
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/s")
	})

	b.Run("cached", func(b *testing.B) {
		s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, QueueDepth: 1 << 16})
		defer s.Close()
		warm := freshSpec(0)
		solveWait(b, s, warm)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if res := solveWait(b, s, warm); !res.Cached {
				b.Fatal("expected a cache hit")
			}
		}
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/s")
	})

	b.Run("coalesced", func(b *testing.B) {
		const burst = 8
		s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, QueueDepth: 1 << 16})
		defer s.Close()
		start := time.Now()
		jobs := 0
		for i := 0; i < b.N; i++ {
			// A fresh formula per burst keeps the cache out of the
			// picture; within the burst, followers coalesce onto the
			// first submission.
			sp := dimacsSpec(gen.XorChain(20, true, int64(1_000_000+i)))
			handles := make([]*Job, burst)
			for k := range handles {
				j, err := s.Submit(sp)
				if err != nil {
					b.Fatal(err)
				}
				handles[k] = j
			}
			for _, j := range handles {
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				if _, err := j.Wait(ctx); err != nil {
					cancel()
					b.Fatal(err)
				}
				cancel()
			}
			jobs += burst
		}
		st := s.Stats()
		if st.Solves > int64(b.N) {
			b.Fatalf("%d solves for %d bursts: coalescing failed", st.Solves, b.N)
		}
		b.ReportMetric(float64(jobs)/time.Since(start).Seconds(), "jobs/s")
	})
}
