package serve

import (
	"sync"

	"repro/internal/solver"
)

// recipeMemory is the service's cross-run memory of which portfolio
// recipe family wins which instance class (the ROADMAP "explore arm
// biased toward recipe families that historically win the instance
// class" follow-up, which only a long-lived service can host). It
// counts portfolio wins per (class, family) and answers the
// best-supported family for a class; the scheduler feeds the answer
// into portfolio.Options.PreferRecipe so the respawn schedule's
// explore arm — and worker 1's first draw — are seeded toward the
// remembered winner. Classes are the coarse buckets Spec.parse
// derives (kind, size magnitude, clause density), so the memory keys
// on fingerprint CLASSES, not exact formulas: an exact repeat is a
// cache hit and never reaches the solver at all.
type recipeMemory struct {
	mu  sync.Mutex
	cap int
	// classes maps class label → family → win count.
	classes map[string]map[string]int
	// warm maps class label → the branching warm-start profile of the
	// solver that most recently decided an instance of the class (latest
	// win overwrites: the profile is a hint about CURRENT same-class
	// traffic, not an aggregate — aggregating activity ranks across
	// instances would average away exactly the instance-family structure
	// the hint carries). Replayed into solver.Options.WarmStart on the
	// next same-class solve.
	warm map[string][]solver.WarmVar
	// order is insertion order for a crude bound on retained classes.
	order []string
}

func newRecipeMemory(capacity int) *recipeMemory {
	if capacity <= 0 {
		capacity = 256
	}
	return &recipeMemory{
		cap:     capacity,
		classes: make(map[string]map[string]int),
		warm:    make(map[string][]solver.WarmVar),
	}
}

// ensureClass returns the class's family-count map, admitting the class
// (and evicting the oldest one, with its warm profile) when new. Callers
// hold m.mu.
func (m *recipeMemory) ensureClass(class string) map[string]int {
	fams, ok := m.classes[class]
	if !ok {
		if len(m.order) >= m.cap {
			delete(m.classes, m.order[0])
			delete(m.warm, m.order[0])
			m.order = m.order[1:]
		}
		fams = make(map[string]int)
		m.classes[class] = fams
		m.order = append(m.order, class)
	}
	return fams
}

// record credits family with a win on class and returns a copy of the
// class's full family-count map — the write-behind persistence unit
// (whole-class last-write-wins records make replay trivially
// idempotent).
func (m *recipeMemory) record(class, family string) map[string]int {
	if class == "" || family == "" {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	fams := m.ensureClass(class)
	fams[family]++
	out := make(map[string]int, len(fams))
	for f, n := range fams {
		out[f] = n
	}
	return out
}

// load installs a replayed family-count map for class, replacing any
// previous counts (records are whole-class snapshots). Counts ≤ 0 and
// empty family names are dropped defensively — the store is an input
// boundary.
func (m *recipeMemory) load(class string, fams map[string]int) {
	if class == "" || len(fams) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ensureClass(class)
	clean := make(map[string]int, len(fams))
	for f, n := range fams {
		if f != "" && n > 0 {
			clean[f] = n
		}
	}
	m.classes[class] = clean
}

// loadWarm installs a replayed warm-start profile for class.
func (m *recipeMemory) loadWarm(class string, prof []solver.WarmVar) {
	if class == "" || len(prof) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ensureClass(class)
	m.warm[class] = append([]solver.WarmVar(nil), prof...)
}

// recordWarm stores the deciding solver's branching warm-start profile
// for class, overwriting any previous one (latest win wins). The profile
// is copied: the caller's slice stays caller-owned.
func (m *recipeMemory) recordWarm(class string, prof []solver.WarmVar) {
	if class == "" || len(prof) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ensureClass(class)
	m.warm[class] = append([]solver.WarmVar(nil), prof...)
}

// warmFor returns a copy of the class's remembered warm-start profile,
// or nil when the class has none.
func (m *recipeMemory) warmFor(class string) []solver.WarmVar {
	m.mu.Lock()
	defer m.mu.Unlock()
	prof := m.warm[class]
	if len(prof) == 0 {
		return nil
	}
	return append([]solver.WarmVar(nil), prof...)
}

// best returns the family with the most recorded wins for class, or ""
// when the class is unknown. Ties break lexicographically so the
// answer is deterministic.
func (m *recipeMemory) best(class string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var best string
	bestWins := 0
	for fam, wins := range m.classes[class] {
		if wins > bestWins || (wins == bestWins && bestWins > 0 && fam < best) {
			best, bestWins = fam, wins
		}
	}
	return best
}
