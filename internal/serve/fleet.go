package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// Fleet routing headers.
const (
	// HeaderOwner is set on every routed submission response: the base
	// URL of the replica that owns (and served, absent a fallback) the
	// job's ring position. Clients and health checks can use it to
	// learn the fleet's view of ownership without a separate endpoint.
	HeaderOwner = "X-Satserved-Owner"
	// HeaderForwarded marks a peer-forwarded submission with the
	// forwarding replica's identity. A replica NEVER re-forwards a
	// request carrying it: when two replicas disagree about ownership
	// (mismatched -peers configs mid-rollout), the disagreement must
	// degrade to a redundant local solve, not a forwarding cycle.
	HeaderForwarded = "X-Satserved-Forwarded"
)

// Fleet is the sharded-serving layer: a consistent-hash ring over the
// replicas' advertised base URLs, routing every cacheable job to the
// one replica that owns its canonical fingerprint. With all replicas
// agreeing on the member list, an identical formula submitted anywhere
// in the fleet lands on the same owner — so the owner's result cache
// and singleflight coalescing become fleet-wide: one solve, no matter
// which replica each client happened to hit.
//
// Ownership is advisory, never load-bearing for correctness: a replica
// that cannot reach the owner solves locally (counted in
// LocalFallbacks), and a forwarded request is always served where it
// lands. The worst failure mode is a duplicated solve.
type Fleet struct {
	self   string
	ring   *store.Ring
	client *http.Client

	forwards  atomic.Int64
	fwdErrs   atomic.Int64
	fallbacks atomic.Int64
}

// NewFleet builds the routing layer for one replica. self is this
// replica's advertised base URL exactly as it appears in every
// replica's peer list (ring positions hash the member STRINGS, so
// "http://a:1" and "http://a:1/" are different members); peers lists
// the other replicas' base URLs (listing self again is harmless — the
// ring deduplicates). client is the forwarding HTTP client (nil = a
// default with a 10s dial-and-headers budget; job wait time is bounded
// by the request context, not the client).
func NewFleet(self string, peers []string, client *http.Client) (*Fleet, error) {
	if self == "" {
		return nil, fmt.Errorf("serve: fleet needs an advertised self URL")
	}
	for _, m := range append([]string{self}, peers...) {
		u, err := url.Parse(m)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("serve: fleet member %q is not an absolute base URL", m)
		}
	}
	if client == nil {
		// No overall Timeout: a sync forward legitimately waits for the
		// peer's solve, bounded by the incoming request context.
		client = &http.Client{Transport: &http.Transport{ResponseHeaderTimeout: 10 * time.Second}}
	}
	members := append(append([]string(nil), peers...), self)
	return &Fleet{self: self, ring: store.NewRing(members, 0), client: client}, nil
}

// Self returns this replica's advertised base URL.
func (f *Fleet) Self() string { return f.self }

// Owner returns the base URL of the replica owning key.
func (f *Fleet) Owner(key []byte) string { return f.ring.Owner(key) }

// FleetStats snapshots the routing counters for Stats / metrics.
type FleetStats struct {
	// Members is the ring size (self included).
	Members int
	// Forwards counts submissions proxied to their owner; ForwardErrors
	// counts forward attempts that failed at the transport;
	// LocalFallbacks counts jobs solved locally after such a failure.
	Forwards, ForwardErrors, LocalFallbacks int64
}

// Stats snapshots the fleet counters.
func (f *Fleet) Stats() FleetStats {
	return FleetStats{
		Members:        len(f.ring.Members()),
		Forwards:       f.forwards.Load(),
		ForwardErrors:  f.fwdErrs.Load(),
		LocalFallbacks: f.fallbacks.Load(),
	}
}

// routingKey computes a spec's ring position: the same canonical job
// key the cache and singleflight use (for DIMACS, the formula
// fingerprint — syntactic variants route to the same owner). A spec
// that fails to parse has no position; the local path owns its 400.
func routingKey(sp *Spec) (jobKey, bool) {
	p, _, err := sp.parse()
	if err != nil {
		return jobKey{}, false
	}
	return sp.cacheKey(p), true
}

// routeSubmit applies fleet routing to a decoded submission. It
// reports true when the request was fully answered by the owning peer;
// false hands the job to the local scheduler — because this replica
// owns it, routing does not apply (no fleet, NoCache, already
// forwarded, unparseable), or the forward failed and local solving is
// the fallback.
//
// The routing parse duplicates the parse the local Submit will do for
// owned jobs — the key is needed BEFORE knowing whether to forward.
// Accepted cost: routing is for fleets of small-formula traffic, where
// the parse is cheap next to the solve.
func (s *Server) routeSubmit(w http.ResponseWriter, r *http.Request, req *submitRequest) bool {
	f := s.fleet
	if f == nil || req.NoCache {
		return false
	}
	if r.Header.Get(HeaderForwarded) != "" {
		// Loop prevention: forwarded jobs are served where they land.
		w.Header().Set(HeaderOwner, f.self)
		return false
	}
	key, ok := routingKey(&req.Spec)
	if !ok {
		return false
	}
	owner := f.Owner(key[:])
	w.Header().Set(HeaderOwner, owner)
	if owner == f.self {
		return false
	}
	if s.forwardSubmit(w, r, owner, req) {
		return true
	}
	f.fallbacks.Add(1)
	return false
}

// forwardSubmit proxies the submission to its owner and relays the
// response verbatim (status, Content-Type, Retry-After, body — a 429
// from the owner is a real answer, not a transport failure). It
// reports false only when the owner could not be reached and the
// caller should solve locally instead.
func (s *Server) forwardSubmit(w http.ResponseWriter, r *http.Request, owner string, req *submitRequest) bool {
	f := s.fleet
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	hreq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, owner+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		f.fwdErrs.Add(1)
		return false
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(HeaderForwarded, f.self)
	resp, err := f.client.Do(hreq)
	if err != nil {
		f.fwdErrs.Add(1)
		// When the CLIENT is what died (its context cancelled the
		// forward), there is nobody left to answer — claim the request
		// handled rather than solving locally for no one.
		return r.Context().Err() != nil
	}
	defer resp.Body.Close()
	f.forwards.Add(1)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}
