package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/cnf"
	"repro/internal/session"
	"repro/internal/solver"
)

// This file is the HTTP face of the session layer:
//
//	POST   /v1/sessions             load a formula into a resident solver
//	GET    /v1/sessions/{id}        session state + gauges
//	DELETE /v1/sessions/{id}        evict the session
//	POST   /v1/sessions/{id}/query  one assumption query (sync JSON by
//	                                default; "stream": true answers SSE
//	                                progress samples, final result last)
//
// Query payloads speak DIMACS literal conventions (signed non-zero
// ints), matching the dimacs job kind.

// sessionCreateRequest is the POST /v1/sessions body.
type sessionCreateRequest struct {
	// DIMACS is the CNF text of the resident formula.
	DIMACS string `json:"dimacs"`
}

// sessionQueryRequest is the POST /v1/sessions/{id}/query body.
type sessionQueryRequest struct {
	// Assume are assumption literals in DIMACS form (e.g. [3, -7]).
	Assume []int `json:"assume,omitempty"`
	// Add are clauses (DIMACS literals) added to the resident formula
	// before solving; they persist for later queries.
	Add [][]int `json:"add,omitempty"`
	// MaxConflicts bounds this query's search (0 = unlimited).
	MaxConflicts int64 `json:"max_conflicts,omitempty"`
	// TimeoutMS bounds the query's lifetime — queue wait included
	// (0 = the scheduler default; capped by the scheduler maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Stream answers server-sent events: progress samples while the
	// query runs, the final result as the last event.
	Stream bool `json:"stream,omitempty"`
}

// sessionQueryResult is the JSON shape of a finished session query.
type sessionQueryResult struct {
	ID      string `json:"id"`
	Verdict string `json:"verdict"`
	Decided bool   `json:"decided"`
	// Model is the satisfying assignment in DIMACS literals (SAT only);
	// Core the refuting subset of the assumptions (UNSAT only).
	Model     []int `json:"model,omitempty"`
	Core      []int `json:"core,omitempty"`
	Conflicts int64 `json:"conflicts"`
	Decisions int64 `json:"decisions"`
	WallMS    int64 `json:"wall_ms"`
	Cancelled bool  `json:"cancelled,omitempty"`
}

func sessionResultView(q *session.Query, res session.Result) sessionQueryResult {
	out := sessionQueryResult{
		ID:        q.ID,
		Conflicts: res.Conflicts,
		Decisions: res.Decisions,
		WallMS:    res.WallMS,
		Cancelled: res.Cancelled,
	}
	switch res.Status {
	case solver.Sat:
		out.Verdict, out.Decided = "SAT", true
		for v := cnf.Var(1); int(v) < len(res.Model); v++ {
			l := int(v)
			if res.Model.Value(v) != cnf.True {
				l = -l
			}
			out.Model = append(out.Model, l)
		}
	case solver.Unsat:
		out.Verdict, out.Decided = "UNSAT", true
		for _, l := range res.Core {
			out.Core = append(out.Core, l.DIMACS())
		}
	default:
		out.Verdict = "UNKNOWN"
	}
	return out
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req sessionCreateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	f, err := cnf.ParseDIMACSString(req.DIMACS)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad dimacs: %v", err))
		return
	}
	if f.NumClauses() == 0 && f.NumVars() == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty formula"))
		return
	}
	ss, err := s.sched.Sessions().Open(f, s.sched.WarmHint(f)...)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, session.ErrClosed) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusCreated, ss.Info())
}

func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	ss := s.sched.Sessions().Get(r.PathValue("id"))
	if ss == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown session"))
		return
	}
	writeJSON(w, http.StatusOK, ss.Info())
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sched.Sessions().Delete(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, errors.New("unknown session"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": r.PathValue("id"), "state": string(session.StateEvicted)})
}

func (s *Server) handleSessionQuery(w http.ResponseWriter, r *http.Request) {
	ss := s.sched.Sessions().Get(r.PathValue("id"))
	if ss == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown session"))
		return
	}
	var req sessionQueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	sreq := session.Request{MaxConflicts: req.MaxConflicts}
	for _, d := range req.Assume {
		if d == 0 {
			writeError(w, http.StatusBadRequest, errors.New("assume: zero literal"))
			return
		}
		sreq.Assume = append(sreq.Assume, cnf.FromDIMACS(d))
	}
	for _, cl := range req.Add {
		c := make(cnf.Clause, 0, len(cl))
		for _, d := range cl {
			if d == 0 {
				writeError(w, http.StatusBadRequest, errors.New("add: zero literal"))
				return
			}
			c = append(c, cnf.FromDIMACS(d))
		}
		sreq.Add = append(sreq.Add, c)
	}

	// The timeout covers the query's whole lifetime (queue wait
	// included), like job deadlines. Derive from the request context so
	// a dropped client connection also cancels.
	spec := Spec{TimeoutMS: req.TimeoutMS}
	ctx, cancel := context.WithTimeout(r.Context(), s.sched.jobTimeout(&spec))
	defer cancel()
	q, err := ss.Submit(ctx, sreq)
	switch {
	case errors.Is(err, session.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, session.ErrSessionClosed):
		writeError(w, http.StatusConflict, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	if req.Stream {
		s.streamSessionQuery(w, r, q)
		return
	}
	res, err := q.Wait(ctx)
	if err != nil {
		// The lifetime deadline (or the client) ended the wait; the
		// query itself keeps its slot and will be interrupted by the
		// same context.
		writeJSON(w, http.StatusOK, sessionQueryResult{ID: q.ID, Verdict: "UNKNOWN", Cancelled: true})
		return
	}
	writeJSON(w, http.StatusOK, sessionResultView(q, res))
}

// streamSessionQuery answers SSE: "progress" events sampled from the
// query's monitor while it runs, one final "result" event when it
// finishes. Reuses the job watcher's sampling cadence.
func (s *Server) streamSessionQuery(w http.ResponseWriter, r *http.Request, q *session.Query) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	period := s.watchPeriod
	if period <= 0 {
		period = 250 * time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()

	emitProgress := func() {
		snap := q.Monitor().Snapshot()
		var conflicts, restarts int64
		for _, lw := range snap.Live {
			conflicts += lw.Conflicts
			restarts += lw.Restarts
		}
		data, _ := json.Marshal(map[string]any{
			"id": q.ID, "conflicts": snap.RetiredConflicts + conflicts, "restarts": restarts,
		})
		fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data)
		flusher.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-q.Done():
			res, _ := q.Result()
			data, _ := json.Marshal(sessionResultView(q, res))
			fmt.Fprintf(w, "event: result\ndata: %s\n\n", data)
			flusher.Flush()
			return
		case <-ticker.C:
			emitProgress()
		}
	}
}
