package serve

import "sync"

// resultCache is the scheduler's LRU result cache, keyed by the
// canonical job key. Only decided verdicts are stored (an UNKNOWN is a
// budget artifact, not a property of the formula), so a hit can be
// served for any budget without re-checking it. Entries are value
// copies in both directions: the cache never aliases a caller's
// Result.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[jobKey]*cacheNode
	// Intrusive LRU list: head = most recent, tail = eviction victim.
	head, tail *cacheNode
	// evictions counts entries dropped at capacity (exported through
	// the scheduler's Stats / the /metrics endpoint).
	evictions int64
}

type cacheNode struct {
	key        jobKey
	res        Result
	prev, next *cacheNode
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &resultCache{cap: capacity, entries: make(map[jobKey]*cacheNode)}
}

// get returns a copy of the cached result and true on a hit, promoting
// the entry to most-recently-used.
func (c *resultCache) get(key jobKey) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[key]
	if !ok {
		return Result{}, false
	}
	c.unlink(n)
	c.pushFront(n)
	return n.res.clone(), true
}

// put stores a copy of res under key, evicting the least-recently-used
// entry at capacity. Storing an existing key refreshes it. It returns
// the evicted key (and true) when an entry was dropped, so a durable
// store behind the cache can tombstone it and stay bounded by the same
// LRU policy.
func (c *resultCache) put(key jobKey, res Result) (jobKey, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.entries[key]; ok {
		n.res = res.clone()
		c.unlink(n)
		c.pushFront(n)
		return jobKey{}, false
	}
	var evictedKey jobKey
	evicted := false
	if len(c.entries) >= c.cap {
		victim := c.tail
		c.unlink(victim)
		delete(c.entries, victim.key)
		c.evictions++
		evictedKey, evicted = victim.key, true
	}
	n := &cacheNode{key: key, res: res.clone()}
	c.entries[key] = n
	c.pushFront(n)
	return evictedKey, evicted
}

// len reports the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// evicted reports the lifetime eviction count.
func (c *resultCache) evicted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

func (c *resultCache) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else if c.head == n {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else if c.tail == n {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *resultCache) pushFront(n *cacheNode) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}
