package serve

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/solver"
	"repro/internal/store"
)

func TestResultCodecRoundTrip(t *testing.T) {
	in := Result{
		Kind: KindDIMACS, Verdict: "SAT", Decided: true,
		Model: []int{1, -2, 3}, Recipe: "geom/lbd", Conflicts: 42,
		Workers: 2, WallMS: 7,
		// Delivery-path flags must NOT survive encoding.
		Cached: true, Coalesced: true,
	}
	data, err := encodeResult(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cached || out.Coalesced {
		t.Fatalf("delivery flags persisted: %+v", out)
	}
	in.Cached, in.Coalesced = false, false
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}

	if _, err := encodeResult(Result{Kind: KindDIMACS, Verdict: "UNKNOWN"}); err == nil {
		t.Fatal("undecided result encoded")
	}
	for _, bad := range []string{
		`{`, // malformed
		`{"kind":"dimacs","verdict":"UNKNOWN","decided":false}`,
		`{"kind":"dimacs","verdict":"","decided":true}`,
		`{"kind":"alien","verdict":"SAT","decided":true}`,
	} {
		if _, err := decodeResult([]byte(bad)); err == nil {
			t.Fatalf("decoded invalid result %q", bad)
		}
	}
}

func TestFamilyAndWarmCodecs(t *testing.T) {
	fams := map[string]int{"geom": 3, "luby": 1}
	data, err := encodeFamilies(fams)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeFamilies(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fams, got) {
		t.Fatalf("families %v, want %v", got, fams)
	}
	if _, err := decodeFamilies([]byte(`{"fams":{}}`)); err == nil {
		t.Fatal("empty families decoded")
	}

	prof := []solver.WarmVar{{Var: 3, Phase: true}, {Var: 1, Phase: false}}
	data, err = encodeWarm(prof)
	if err != nil {
		t.Fatal(err)
	}
	gotP, err := decodeWarm(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(prof, gotP) {
		t.Fatalf("warm %v, want %v", gotP, prof)
	}
	if _, err := decodeWarm([]byte(`[]`)); err == nil {
		t.Fatal("empty warm profile decoded")
	}
	if _, err := decodeWarm([]byte(`[{"v":0,"phase":true}]`)); err == nil {
		t.Fatal("warm profile with Var 0 decoded")
	}
}

// TestRestartIsCacheHitWithWarmProfile is the PR's acceptance pin: a
// scheduler solves a formula, shuts down, and a NEW scheduler over the
// SAME store directory serves the resubmission from the replayed cache
// — with the recorded warm-start profile available for its instance
// class.
func TestRestartIsCacheHitWithWarmProfile(t *testing.T) {
	dir := t.TempDir()
	open := func() store.Store {
		st, err := store.OpenFile(dir, store.FileOptions{SyncEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	// UNSAT so the proof takes real conflicts: the warm profile is
	// harvested from VSIDS activity, which a propagation-only solve
	// never accumulates.
	f := gen.XorChain(14, true, 5)
	sp := dimacsSpec(f)

	st1 := open()
	s1 := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, Store: st1})
	j, err := s1.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	res := mustResult(t, j)
	if res.Verdict != "UNSAT" {
		t.Fatalf("verdict %q, want UNSAT", res.Verdict)
	}
	warm1 := s1.WarmHint(f)
	if len(warm1) == 0 {
		t.Fatal("decided solve recorded no warm profile")
	}
	s1.Close() // flushes the write-behind queue
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh scheduler over the same directory.
	st2 := open()
	defer st2.Close()
	s2 := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, Store: st2})
	defer s2.Close()

	stats := s2.Stats().Store
	if !stats.Enabled || stats.ReplayedResults != 1 || stats.ReplayedWarm < 1 {
		t.Fatalf("replay stats %+v, want 1 result and the warm profile", stats)
	}
	if warm2 := s2.WarmHint(f); !reflect.DeepEqual(warm1, warm2) {
		t.Fatalf("warm profile after restart %v, want %v", warm2, warm1)
	}

	j2, err := s2.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	res2 := mustResult(t, j2)
	if !res2.Cached || res2.Verdict != "UNSAT" {
		t.Fatalf("resubmission after restart: %+v, want cached UNSAT", res2)
	}
	st := s2.Stats()
	if st.CacheHits != 1 || st.Solves != 0 {
		t.Fatalf("stats after restart resubmit: hits=%d solves=%d, want 1/0", st.CacheHits, st.Solves)
	}
}

// TestEvictionTombstoneKeepsStoreBounded: the store tracks the LRU's
// live set — an evicted result is tombstoned and does not resurface on
// restart.
func TestEvictionTombstoneKeepsStoreBounded(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.OpenFile(dir, store.FileOptions{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, CacheCap: 1, Store: st1})
	for seed := int64(1); seed <= 3; seed++ {
		j, err := s1.Submit(satSpec(10, seed))
		if err != nil {
			t.Fatal(err)
		}
		mustResult(t, j)
	}
	s1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.OpenFile(dir, store.FileOptions{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2 := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, CacheCap: 1, Store: st2})
	defer s2.Close()
	if got := s2.Stats().Store.ReplayedResults; got != 1 {
		t.Fatalf("replayed %d results with CacheCap 1, want 1 (evictions tombstoned)", got)
	}
	// The survivor is the LAST solved formula.
	j, err := s2.Submit(satSpec(10, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res := mustResult(t, j); !res.Cached {
		t.Fatalf("last-solved formula not replayed: %+v", res)
	}
}

// TestReplaySkipsGarbageRecords: a store seeded with malformed and
// semantically invalid records boots a working scheduler; every bad
// record is counted, none installed.
func TestReplaySkipsGarbageRecords(t *testing.T) {
	mem := store.NewMem()
	class := "dimacs/v4/r10"
	musts := []store.Record{
		{Kind: recResult, Key: []byte("short-key"), Val: []byte(`{}`)},                                                       // bad key length
		{Kind: recResult, Key: make([]byte, 32), Val: []byte(`not json`)},                                                    // bad value
		{Kind: recResult, Key: append([]byte{1}, make([]byte, 31)...), Val: []byte(`{"kind":"dimacs","verdict":"UNKNOWN"}`)}, // undecided
		{Kind: recRecipe, Key: []byte(class), Val: []byte(`{"fams":{}}`)},                                                    // empty
		{Kind: recWarm, Key: []byte(class), Val: []byte(`[{"v":-1}]`)},                                                       // invalid var
		{Kind: store.Kind(200), Key: []byte("future"), Val: []byte("ignored")},                                               // unknown kind: silently skipped
	}
	for _, rec := range musts {
		if err := mem.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	s := NewScheduler(Config{CPUBudget: 1, MaxRunning: 1, Store: mem})
	defer s.Close()
	st := s.Stats().Store
	if st.ReplayedResults != 0 || st.ReplayedClasses != 0 || st.ReplayedWarm != 0 {
		t.Fatalf("garbage installed: %+v", st)
	}
	if st.ReplaySkipped != 5 {
		t.Fatalf("skipped = %d, want 5 (unknown kinds are not errors)", st.ReplaySkipped)
	}
	j, err := s.Submit(satSpec(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res := mustResult(t, j); res.Verdict != "SAT" {
		t.Fatalf("scheduler unusable after garbage replay: %+v", res)
	}
}

// TestRecipeReplayRestoresPreference: a persisted whole-class family
// record seeds the recipe memory on boot.
func TestRecipeReplayRestoresPreference(t *testing.T) {
	mem := store.NewMem()
	class := "dimacs/v4/r10"
	val, err := encodeFamilies(map[string]int{"geom": 3, "luby": 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Put(store.Record{Kind: recRecipe, Key: []byte(class), Val: val}); err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(Config{CPUBudget: 1, MaxRunning: 1, Store: mem})
	defer s.Close()
	if got := s.Stats().Store.ReplayedClasses; got != 1 {
		t.Fatalf("replayed classes = %d, want 1", got)
	}
	if got := s.mem.best(class); got != "geom" {
		t.Fatalf("best(%q) = %q after replay, want geom", class, got)
	}
}

// TestStoreStatsDisabled: a store-less scheduler reports a zero
// StoreStats and never touches the persistence path.
func TestStoreStatsDisabled(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 1, MaxRunning: 1})
	defer s.Close()
	j, err := s.Submit(satSpec(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	mustResult(t, j)
	if st := s.Stats().Store; st.Enabled || st.Writes != 0 {
		t.Fatalf("store-less scheduler reported store activity: %+v", st)
	}
}

// TestPersistWritesLandBeforeCloseReturns: Close drains the
// write-behind queue, so every verdict decided before Close is in the
// store when Close returns.
func TestPersistWritesLandBeforeCloseReturns(t *testing.T) {
	mem := store.NewMem()
	s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2, Store: mem})
	j, err := s.Submit(satSpec(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	mustResult(t, j)
	s.Close()
	if got := mem.Metrics().Keys; got < 1 {
		t.Fatal("decided verdict not in the store after Close")
	}
	// And the stats saw the writes (result + warm at minimum).
	// Note: Stats still works on a closed scheduler.
	if st := s.Stats().Store; st.Writes < 1 || st.Dropped != 0 || st.Errors != 0 {
		t.Fatalf("persister counters %+v, want clean writes", st)
	}
}
