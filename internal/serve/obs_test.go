package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
)

// TestTracePhaseSumMatchesWall is the attribution acceptance criterion:
// for a solved DIMACS job, the top-level phase spans tile the trace, so
// their durations sum to within 10% of the job's wall-clock latency.
func TestTracePhaseSumMatchesWall(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2})
	defer s.Close()

	// A pigeonhole instance: UNSAT with a real search, so the solve
	// phase dominates and the trace covers genuine work.
	sp := dimacsSpec(gen.Pigeonhole(7))
	j, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	res := mustResult(t, j)
	if res.Verdict != "UNSAT" {
		t.Fatalf("verdict %s, want UNSAT", res.Verdict)
	}

	v, ok := j.TraceView()
	if !ok {
		t.Fatal("job carries no trace")
	}
	if v.DurUS <= 0 {
		t.Fatalf("trace not finished: root dur %d", v.DurUS)
	}
	var sum int64
	for name, us := range v.PhaseTotals() {
		if us < 0 {
			t.Fatalf("phase %s has negative duration %d", name, us)
		}
		sum += us
	}
	lo, hi := v.DurUS*9/10, v.DurUS*11/10
	if sum < lo || sum > hi {
		t.Fatalf("phase sum %dus outside 10%% of wall %dus (phases %v)",
			sum, v.DurUS, v.PhaseTotals())
	}
	// The expected tiles are present, and the solve span carries the
	// solver's CPU-attribution children.
	totals := v.PhaseTotals()
	for _, want := range []string{"parse", "queue", "admit", "solve", "persist", "respond"} {
		if _, ok := totals[want]; !ok {
			t.Fatalf("missing top-level phase %q in %v", want, totals)
		}
	}
	solveID := 0
	for _, sp := range v.Spans {
		if sp.Parent == obs.RootSpan && sp.Name == "solve" {
			solveID = sp.ID
		}
	}
	cpu := 0
	for _, sp := range v.Spans {
		if sp.Parent == solveID && strings.HasPrefix(sp.Name, "solver/") {
			cpu++
		}
	}
	if cpu == 0 {
		t.Fatalf("no solver CPU-attribution spans under solve in %+v", v.Spans)
	}
}

// TestTraceCacheHitAndFollower checks the trace shapes of the two
// no-solve paths: a cache hit finishes with parse+respond only, and a
// coalesced follower records its coalesce_wait round.
func TestTraceCacheHitAndFollower(t *testing.T) {
	s := NewScheduler(Config{CPUBudget: 2, MaxRunning: 2})
	defer s.Close()

	j1, err := s.Submit(satSpec(12, 7))
	if err != nil {
		t.Fatal(err)
	}
	mustResult(t, j1)
	j2, err := s.Submit(satSpec(12, 7))
	if err != nil {
		t.Fatal(err)
	}
	res := mustResult(t, j2)
	if !res.Cached {
		t.Fatal("second identical submission should hit the cache")
	}
	v, _ := j2.TraceView()
	totals := v.PhaseTotals()
	if _, ok := totals["parse"]; !ok {
		t.Fatalf("cache-hit trace missing parse: %v", totals)
	}
	if _, ok := totals["solve"]; ok {
		t.Fatalf("cache-hit trace must not carry a solve phase: %v", totals)
	}
}

// TestMetricsExposition checks the registry-backed /metrics endpoint:
// the historical metric names render identically (bare "name value"
// lines CI smoke tests grep for), HELP/TYPE metadata is present, and
// the job latency histogram appears with an exemplar comment.
func TestMetricsExposition(t *testing.T) {
	ts, _ := newTestServer(t, Config{CPUBudget: 2, MaxRunning: 2})

	resp, _ := postJob(t, ts, submitRequest{Spec: satSpec(10, 3)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	out := string(body)
	for _, want := range []string{
		"satserved_solves_total 1",
		"satserved_jobs_submitted_total 1",
		"satserved_jobs_completed_total 1",
		"satserved_queue_depth 0",
		"# TYPE satserved_solves_total counter",
		"# HELP satserved_job_seconds",
		"# TYPE satserved_job_seconds histogram",
		`satserved_job_seconds_count{kind="dimacs"} 1`,
		`satserved_job_phase_seconds_count{phase="solve"} 1`,
		"# exemplar satserved_job_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in /metrics:\n%s", want, out)
		}
	}
}

// TestTraceEndpoint fetches a finished job's trace over HTTP.
func TestTraceEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, Config{CPUBudget: 2, MaxRunning: 2})

	resp, v := postJob(t, ts, submitRequest{Spec: satSpec(10, 4)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	tresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", tresp.StatusCode)
	}
	var tv obs.View
	if err := json.NewDecoder(tresp.Body).Decode(&tv); err != nil {
		t.Fatal(err)
	}
	if tv.Name != "job" || tv.DurUS <= 0 || len(tv.Spans) < 4 {
		t.Fatalf("unexpected trace view %+v", tv)
	}

	if r, err := http.Get(ts.URL + "/v1/jobs/nope/trace"); err != nil || r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace: %v %v", r.StatusCode, err)
	}
}

// TestPprofDisabledByDefault ensures the profiling endpoints are only
// reachable after EnablePprof.
func TestPprofDisabledByDefault(t *testing.T) {
	ts, _ := newTestServer(t, Config{CPUBudget: 1, MaxRunning: 1})
	r, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode == http.StatusOK {
		t.Fatal("pprof reachable without EnablePprof")
	}
}

// TestPprofProfileSmoke enables pprof and takes a 1-second CPU profile
// — the satserved -pprof flag's contract.
func TestPprofProfileSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("1s profile capture")
	}
	s := NewScheduler(Config{CPUBudget: 1, MaxRunning: 1})
	t.Cleanup(s.Close)
	srv := NewServer(s)
	srv.EnablePprof()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	r, err := http.Get(ts.URL + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	body, _ := io.ReadAll(r.Body)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("profile status %d: %s", r.StatusCode, body)
	}
	if len(body) == 0 {
		t.Fatal("empty CPU profile")
	}
}
